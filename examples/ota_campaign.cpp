// Fleet OTA campaign: a 12-vehicle fleet receives a brake-firmware update
// through the Uptane two-repository flow. Midway, an attacker who stole the
// DIRECTOR's targets key pushes a forged malicious image. Vehicles with
// full-verification primaries reject it (the image repo disagrees); the two
// legacy vehicles running partial verification accept the forgery — the
// exact asymmetry that motivates full verification on primaries.
//
// A third phase reruns the rollout as a staggered-wave CampaignRunner and
// scripts a power cut (sim::FaultKind::kPowerLoss) into every wave-2
// vehicle mid-download: the journaled flash survives the cut, boot-time
// recovery finds the journal watermark, and the refetch resumes instead of
// restarting — the per-vehicle ledger shows the bytes saved.

// A fourth phase storms the serving front itself: the same fleet dispatched
// as one synchronized wave against an ota::RepositoryServer while a
// kRepoSlowdown brown-out inflates every request — once with admission
// control ON (bounded queue, slotted retry-after, degradation ladder) and
// once OFF (the legacy unbounded queue). The per-tier degradation ledger
// shows where the hardened front spent the brown-out.

#include <cstdio>
#include <vector>

#include "ecu/flash.hpp"
#include "ota/campaign.hpp"
#include "ota/client.hpp"
#include "ota/server.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"

using namespace aseck;
using namespace aseck::ota;

int main() {
  std::printf("=== OTA fleet campaign ===\n\n");
  crypto::Drbg rng(888u);
  const util::SimTime now = util::SimTime::from_s(100);

  Repository director(rng, "director", util::SimTime::from_s(86400));
  Repository images(rng, "image-repo", util::SimTime::from_s(86400));

  const util::Bytes brake_v7(8192, 0xB7);
  director.add_target("brake-fw", brake_v7, 7, "brake-hw");
  images.add_target("brake-fw", brake_v7, 7, "brake-hw");
  director.publish(now);
  images.publish(now);

  // Fleet: 10 modern vehicles (full verification) + 2 legacy (partial).
  struct Vehicle {
    std::string vin;
    bool full_verification;
    ecu::Flash brake_flash;
    std::uint32_t installed = 6;
  };
  std::vector<Vehicle> fleet;
  for (int i = 0; i < 12; ++i) {
    Vehicle v;
    v.vin = "VIN" + std::to_string(1000 + i);
    v.full_verification = i < 10;
    v.brake_flash.provision(ecu::FirmwareImage{"brake-fw", 6, util::Bytes(8192, 0xB6)});
    fleet.push_back(std::move(v));
  }

  // --- Phase 1: legitimate campaign ------------------------------------------
  int updated = 0;
  for (auto& v : fleet) {
    if (v.full_verification) {
      FullVerificationClient client(v.vin, director.trusted_root(),
                                    images.trusted_root());
      const auto out = client.fetch_and_verify(
          director.metadata(), images.metadata(), director, images, "brake-fw",
          "brake-hw", v.installed, now);
      if (out.error == OtaError::kOk &&
          install_image(v.brake_flash, "brake-fw", out.target.version,
                        out.image, [] { return true; }) ==
              InstallResult::kCommitted) {
        v.installed = out.target.version;
        ++updated;
      }
    } else {
      PartialVerificationClient client(
          v.vin, director.role_key(Role::kTargets).public_key());
      const auto out = client.verify(director.metadata().targets, "brake-fw",
                                     "brake-hw", v.installed, now);
      if (out.error == OtaError::kOk) {
        const util::Bytes* img = images.download("brake-fw");
        if (img &&
            install_image(v.brake_flash, "brake-fw", out.target.version, *img,
                          [] { return true; }) == InstallResult::kCommitted) {
          v.installed = out.target.version;
          ++updated;
        }
      }
    }
  }
  std::printf("phase 1 (legitimate v7 rollout): %d/12 vehicles updated\n\n",
              updated);

  // --- Phase 2: director targets key compromised ------------------------------
  std::printf("!! attacker steals the director targets key and forges v8\n");
  const util::Bytes evil(8192, 0x66);
  auto& bundle = director.mutable_bundle();
  bundle.targets.body.version += 1;
  bundle.targets.body.targets["brake-fw"] =
      TargetInfo{crypto::sha256_bytes(evil), evil.size(), 8, "brake-hw"};
  director.sign_role(bundle.targets, Role::kTargets);
  bundle.snapshot.body.version += 1;
  bundle.snapshot.body.targets_version = bundle.targets.body.version;
  director.sign_role(bundle.snapshot, Role::kSnapshot);
  bundle.timestamp.body.version += 1;
  bundle.timestamp.body.snapshot_version = bundle.snapshot.body.version;
  bundle.timestamp.body.snapshot_hash =
      crypto::sha256_bytes(bundle.snapshot.body.serialize());
  director.sign_role(bundle.timestamp, Role::kTimestamp);

  int full_rejected = 0, partial_compromised = 0;
  for (auto& v : fleet) {
    if (v.full_verification) {
      FullVerificationClient client(v.vin, director.trusted_root(),
                                    images.trusted_root());
      const auto out = client.fetch_and_verify(
          director.metadata(), images.metadata(), director, images, "brake-fw",
          "brake-hw", v.installed, now + util::SimTime::from_s(60));
      if (out.error != OtaError::kOk) {
        ++full_rejected;
        if (full_rejected == 1) {
          std::printf("full-verification vehicles reject: %s\n",
                      ota_error_name(out.error));
        }
      }
    } else {
      PartialVerificationClient client(
          v.vin, director.role_key(Role::kTargets).public_key());
      const auto out =
          client.verify(director.metadata().targets, "brake-fw", "brake-hw",
                        v.installed, now + util::SimTime::from_s(60));
      if (out.error == OtaError::kOk) ++partial_compromised;
    }
  }
  std::printf("\n--- campaign outcome under compromise ---\n");
  std::printf("full verification : %d/10 vehicles REJECTED the forged image\n",
              full_rejected);
  std::printf("partial verification: %d/2 vehicles ACCEPTED the forged image\n",
              partial_compromised);
  std::printf(
      "\nconclusion: a single director-targets key compromise defeats partial\n"
      "verification but not the two-repository full verification flow.\n");

  // --- Phase 3: staggered waves with a power-loss storm in wave 2 -------------
  std::printf("\n=== phase 3: wave rollout with power cuts in wave 2 ===\n\n");
  sim::Scheduler sched;
  crypto::Drbg rng3(999u);
  Repository director3(rng3, "director", util::SimTime::from_s(500000));
  Repository images3(rng3, "image-repo", util::SimTime::from_s(500000));
  const util::Bytes brake_v9(96 * 1024, 0xB9);
  director3.add_target("brake-fw", brake_v9, 9, "brake-hw");
  images3.add_target("brake-fw", brake_v9, 9, "brake-hw");
  director3.publish(util::SimTime::from_ms(1));
  images3.publish(util::SimTime::from_ms(1));

  CampaignConfig cfg;
  cfg.wave_size = 4;  // 12 vehicles -> 3 waves; wave 2 = VIN1004..VIN1007
  cfg.wave_gap = util::SimTime::from_s(10);
  cfg.vehicle_stagger = util::SimTime::from_ms(200);
  cfg.retry.chunk_bytes = 16 * 1024;
  cfg.retry.link_bytes_per_sec = 1'000'000;
  CampaignRunner runner(sched, director3, images3, "brake-fw", "brake-hw", cfg);

  sim::FaultPlan plan(sched, 42);
  std::vector<std::unique_ptr<ecu::Flash>> flashes;
  std::vector<std::unique_ptr<FullVerificationClient>> clients;
  for (int i = 0; i < 12; ++i) {
    const std::string vin = "VIN" + std::to_string(1000 + i);
    flashes.push_back(std::make_unique<ecu::Flash>());
    flashes.back()->provision(
        ecu::FirmwareImage{"brake-fw", 7, util::Bytes(8192, 0xB7)});
    if (i >= 4 && i < 8) {
      // Scripted cut: each wave-2 vehicle loses power while programming a
      // different flash page of the 24-page image.
      sim::FaultSpec cut;
      cut.target = vin + ".flash";
      cut.kind = sim::FaultKind::kPowerLoss;
      cut.probability = 0.0;
      cut.page_index = 3 + 4 * (i - 4);
      plan.window(util::SimTime::zero(), util::SimTime::from_s(100000), cut);
      flashes.back()->set_fault_port(&plan.port(cut.target));
    }
    clients.push_back(std::make_unique<FullVerificationClient>(
        vin, director3.trusted_root(), images3.trusted_root()));
    runner.add_vehicle(vin, *flashes.back(), *clients.back());
  }
  runner.start();
  sched.run_until(util::SimTime::from_s(600));

  std::printf("%-9s %-5s %-26s %-5s %-7s %-13s %-12s\n", "vehicle", "wave",
              "outcome", "cuts", "ver", "resume_bytes", "recovery_us");
  for (const VehicleLedger& l : runner.ledger()) {
    std::printf("%-9s %-5zu %-26s %-5d v%-6u %-13zu %-12.1f\n", l.id.c_str(),
                l.wave + 1, vehicle_outcome_name(l.outcome), l.power_losses,
                l.final_version, l.resume_bytes_saved, l.recovery_us);
  }
  std::printf(
      "\ncampaign: %zu/%zu updated, %zu bricked, %zu bytes never refetched\n"
      "conclusion: scripted kPowerLoss cuts tear a page mid-install, yet the\n"
      "journaled A/B flash recovers at boot and resumes from the watermark —\n"
      "no vehicle bricks and no completed bytes are downloaded twice.\n",
      runner.updated(), runner.ledger().size(), runner.bricked(),
      runner.total_resume_bytes_saved());

  // --- Phase 4: storm wave against the serving front, admission on vs off -----
  std::printf("\n=== phase 4: storm wave vs the serving front ===\n\n");
  std::printf("one synchronized 12-vehicle wave into a 8ms/request brown-out\n"
              "(sim::FaultKind::kRepoSlowdown, t=0..5s), with and without\n"
              "admission control:\n\n");

  struct StormOutcome {
    std::size_t updated = 0;
    std::uint64_t shed = 0;
    double max_queue_ms = 0.0;
    double p99_ms = 0.0;
    std::string peak_tier;
    std::vector<ota::RepositoryServer::TierTransition> transitions;
    util::SimTime end = util::SimTime::zero();
  };
  const auto run_storm = [](bool admission) {
    sim::Scheduler sched;
    crypto::Drbg rng4(4242u);
    Repository director4(rng4, "director", util::SimTime::from_s(500000));
    Repository images4(rng4, "image-repo", util::SimTime::from_s(500000));
    const util::Bytes brake_v10(64 * 1024, 0xBA);
    director4.add_target("brake-fw", brake_v10, 10, "brake-hw");
    images4.add_target("brake-fw", brake_v10, 10, "brake-hw");
    director4.publish(util::SimTime::from_ms(1));
    images4.publish(util::SimTime::from_ms(1));

    ota::ServerConfig scfg;
    scfg.admission_enabled = admission;
    scfg.metadata_service = util::SimTime::from_ms(2);
    scfg.chunk_service = util::SimTime::from_ms(2);
    scfg.max_queue_delay = util::SimTime::from_ms(20);
    scfg.tier_window = util::SimTime::from_ms(100);
    scfg.retry_slot = util::SimTime::from_ms(5);
    ota::RepositoryServer server(director4, images4, scfg);

    sim::FaultPlan plan4(sched, 7);
    server.set_fault_port(&plan4.port("ota.server"));
    sim::FaultSpec brownout;
    brownout.target = "ota.server";
    brownout.kind = sim::FaultKind::kRepoSlowdown;
    brownout.delay = util::SimTime::from_ms(8);
    plan4.window(util::SimTime::from_ms(1), util::SimTime::from_s(5), brownout);

    CampaignConfig cfg4;
    cfg4.wave_size = 12;  // the whole fleet in one synchronized wave
    cfg4.vehicle_stagger = util::SimTime::zero();
    cfg4.retry.chunk_bytes = 16 * 1024;
    cfg4.retry.link_bytes_per_sec = 2'000'000;
    cfg4.retry.server = &server;
    CampaignRunner storm(sched, director4, images4, "brake-fw", "brake-hw",
                         cfg4);
    std::vector<std::unique_ptr<ecu::Flash>> f4;
    std::vector<std::unique_ptr<FullVerificationClient>> c4;
    for (int i = 0; i < 12; ++i) {
      const std::string vin = "VIN" + std::to_string(1000 + i);
      f4.push_back(std::make_unique<ecu::Flash>());
      f4.back()->provision(
          ecu::FirmwareImage{"brake-fw", 9, util::Bytes(8192, 0xB9)});
      c4.push_back(std::make_unique<FullVerificationClient>(
          vin, director4.trusted_root(), images4.trusted_root()));
      storm.add_vehicle(vin, *f4.back(), *c4.back());
    }
    // The wave lands mid-brown-out: every request is 5x slower than the
    // admission bound assumes.
    storm.start();
    sched.run_until(util::SimTime::from_s(120));
    server.observe(sched.now());

    StormOutcome o;
    o.updated = storm.updated();
    o.shed = server.shed();
    o.max_queue_ms = server.max_queue_delay_seen().ms();
    double worst = 0.0;
    for (const VehicleLedger& l : storm.ledger()) {
      if (l.finished_at.ms() > worst) worst = l.finished_at.ms();
    }
    o.p99_ms = worst;
    o.peak_tier = server_tier_name(server.peak_tier());
    o.transitions = server.transitions();
    o.end = sched.now();
    return o;
  };

  for (const bool admission : {true, false}) {
    const StormOutcome o = run_storm(admission);
    std::printf("admission %s: %zu/12 updated, %llu shed, worst admitted "
                "queue delay %.2f ms, fleet done by %.1f s, peak tier %s\n",
                admission ? "ON " : "OFF", o.updated,
                static_cast<unsigned long long>(o.shed), o.max_queue_ms,
                o.p99_ms / 1000.0, o.peak_tier.c_str());
    // Per-tier degradation ledger: how long the front spent in each rung.
    double tier_ms[4] = {0, 0, 0, 0};
    util::SimTime at = util::SimTime::zero();
    ota::ServerTier cur = ota::ServerTier::kNormal;
    for (const auto& tr : o.transitions) {
      tier_ms[static_cast<int>(cur)] += (tr.at - at).ms();
      at = tr.at;
      cur = tr.to;
    }
    tier_ms[static_cast<int>(cur)] += (o.end - at).ms();
    std::printf("  degradation ledger (%zu transitions):", o.transitions.size());
    for (int t = 0; t < 4; ++t) {
      std::printf("  %s %.1fs",
                  server_tier_name(static_cast<ota::ServerTier>(t)),
                  tier_ms[t] / 1000.0);
    }
    std::printf("\n");
  }
  std::printf(
      "\nconclusion: with admission control the brown-out is absorbed by the\n"
      "degradation ladder — queue delay stays under the 20ms bound and every\n"
      "vehicle still updates; without it the same storm piles into an\n"
      "unbounded queue and the delay bound is a fiction.\n");
  return runner.bricked() == 0 ? 0 : 1;
}
