// V2X intersection scenario: 24 vehicles crossing an intersection with two
// RSUs, all broadcasting IEEE 1609.2-style signed BSMs under pseudonym
// rotation. One vehicle misbehaves (teleporting ghost positions with a valid
// certificate); plausibility checking flags it, and the CRL revokes it.

#include <cstdio>

#include "v2x/cert.hpp"
#include "v2x/net.hpp"

using namespace aseck;
using namespace aseck::v2x;

int main() {
  std::printf("=== V2X intersection scenario ===\n\n");
  sim::Scheduler sched;
  crypto::Drbg rng(321u);

  // PKI: root -> pseudonym CA; every receiver trusts both.
  auto root = CertificateAuthority::make_root(rng, "oem-root",
                                              util::SimTime::from_s(1 << 20));
  auto pca = CertificateAuthority::make_sub(rng, "pseudonym-ca", root,
                                            util::SimTime::from_s(1 << 20));
  Crl crl;
  TrustStore trust;
  trust.add_root(root.certificate());
  trust.add_intermediate(pca.certificate());
  trust.set_crl(&crl);

  V2xMedium medium(sched, /*range_m=*/200.0, /*loss=*/0.05, /*seed=*/9);

  // 24 vehicles: half eastbound, half northbound, crossing at the origin.
  std::vector<std::unique_ptr<VehicleNode>> vehicles;
  PseudonymPolicy policy;
  policy.rotation_period = util::SimTime::from_s(10);
  for (int i = 0; i < 24; ++i) {
    auto batch = pca.issue_pseudonyms(rng, 4, util::SimTime::zero(),
                                      util::SimTime::from_s(10));
    const bool eastbound = i % 2 == 0;
    const double offset = -200.0 + 10.0 * (i / 2);
    Position start = eastbound ? Position{offset, 0.0} : Position{0.0, offset};
    const double speed = 13.9;  // 50 km/h
    vehicles.push_back(std::make_unique<VehicleNode>(
        sched, medium, "veh-" + std::to_string(i), start,
        eastbound ? speed : 0.0, eastbound ? 0.0 : speed, trust,
        std::move(batch), policy));
  }

  // Two RSUs at the intersection corners.
  auto make_rsu = [&](const std::string& name, Position pos) {
    auto key = crypto::EcdsaPrivateKey::generate(rng);
    auto cert = pca.issue(name, key.public_key(),
                          {Psid::kRoadsideAlert, Psid::kIntersection},
                          util::SimTime::zero(), util::SimTime::from_s(1 << 20));
    return std::make_unique<RsuNode>(sched, medium, name, pos, trust,
                                     std::move(cert), std::move(key));
  };
  auto rsu_ne = make_rsu("rsu-ne", {15, 15});
  auto rsu_sw = make_rsu("rsu-sw", {-15, -15});

  // One misbehaving vehicle: valid certificate, implausible motion.
  struct Ghost : V2xRadio {
    using V2xRadio::V2xRadio;
    Position position() const override { return {5, 5}; }
    void on_spdu(const Spdu&, util::SimTime) override {}
  } ghost_radio("ghost");
  medium.attach(&ghost_radio);
  auto ghost_key = crypto::EcdsaPrivateKey::generate(rng);
  auto ghost_cert = pca.issue("ghost", ghost_key.public_key(), {Psid::kBsm},
                              util::SimTime::zero(), util::SimTime::from_s(1 << 20));
  util::Rng ghost_rng(4);
  sim::PeriodicTask ghost_task(
      sched, util::SimTime::from_ms(100),
      [&] {
        Bsm bsm;
        bsm.temp_id = 0x6e057;
        bsm.pos = {ghost_rng.uniform_real(-200, 200),
                   ghost_rng.uniform_real(-200, 200)};  // teleporting
        bsm.speed_mps = 20;
        bsm.generated = sched.now();
        medium.broadcast(&ghost_radio,
                         Spdu::sign(Psid::kBsm, sched.now(), bsm.serialize(),
                                    ghost_cert, ghost_key));
      },
      util::SimTime::zero());

  // Run 20 s of traffic.
  for (auto& v : vehicles) v->start();
  sched.run_until(util::SimTime::from_s(8));
  for (auto& v : vehicles) v->stop();
  ghost_task.stop();
  sched.run();

  // Aggregate statistics.
  std::uint64_t sent = 0, verified = 0, flags = 0;
  std::map<VerifyStatus, std::uint64_t> rejects;
  for (const auto& v : vehicles) {
    sent += v->stats().bsm_sent;
    verified += v->stats().verified_ok;
    flags += v->stats().misbehavior_flags;
    for (const auto& [k, n] : v->stats().rejected) rejects[k] += n;
  }
  std::printf("fleet: %llu BSMs sent, %llu verifications OK\n",
              static_cast<unsigned long long>(sent),
              static_cast<unsigned long long>(verified));
  for (const auto& [k, n] : rejects) {
    std::printf("  rejected (%s): %llu\n", verify_status_name(k),
                static_cast<unsigned long long>(n));
  }
  std::printf("misbehavior flags raised: %llu (ghost vehicle detected: %s)\n",
              static_cast<unsigned long long>(flags), flags > 20 ? "yes" : "no");
  std::printf("RSU-NE verified %llu/%llu received\n",
              static_cast<unsigned long long>(rsu_ne->verified()),
              static_cast<unsigned long long>(rsu_ne->received()));
  std::printf("medium: %llu transmitted, %llu delivered, %llu lost\n",
              static_cast<unsigned long long>(medium.transmitted()),
              static_cast<unsigned long long>(medium.delivered()),
              static_cast<unsigned long long>(medium.lost()));

  // Misbehavior response: revoke the ghost's certificate. Its messages now
  // fail certificate validation everywhere.
  crl.revoke(ghost_cert.id());
  std::printf("\nghost certificate revoked; validate() now returns: %s\n",
              TrustStore::result_name(
                  trust.validate(ghost_cert, sched.now(), Psid::kBsm)));
  return 0;
}
