// Secure boot walk-through: SHE key provisioning over the M1-M5 memory
// update protocol, BOOT_MAC chain verification, a firmware-tamper attempt,
// and a voltage-glitch tamper event forcing key zeroization + limp-home.

#include <cstdio>

#include "ecu/ecu.hpp"

using namespace aseck;
using namespace aseck::ecu;
using util::Bytes;

namespace {
crypto::Block key_of(std::uint8_t b) {
  crypto::Block k;
  k.fill(b);
  return k;
}
std::string hexs(const util::Bytes& b) { return util::to_hex(b); }
}  // namespace

int main() {
  std::printf("=== SHE secure boot demo ===\n\n");
  sim::Scheduler sched;
  Ecu brake(sched, "brake-ecu", 42);

  // --- factory provisioning ---------------------------------------------------
  const crypto::Block master = key_of(0x10);
  const crypto::Block boot_key = key_of(0x20);
  const crypto::Block secoc = key_of(0x30);
  FirmwareImage fw{"brake-fw", 1, Bytes(8192, 0xB1)};
  brake.provision(fw, master, boot_key, secoc);
  std::printf("provisioned UID = %s\n", hexs(brake.she().uid()).c_str());
  std::printf("BOOT_MAC stored = %s\n",
              brake.she().has_key(SheSlot::kBootMac) ? "yes" : "no");

  // --- in-field key update via M1..M5 ------------------------------------------
  std::printf("\n-- OEM backend rolls the SecOC key (M1/M2/M3) --\n");
  const crypto::Block new_secoc = key_of(0x31);
  SheKeyFlags flags;
  flags.key_usage_mac = true;
  flags.wildcard_forbidden = true;
  const auto msgs = She::build_update(brake.she().uid(), SheSlot::kKey1,
                                      SheSlot::kMasterEcuKey, master, new_secoc,
                                      /*counter=*/1, flags);
  std::printf("M1 = %s\n", hexs(msgs.m1).c_str());
  std::printf("M2 = %s\n", hexs(msgs.m2).c_str());
  std::printf("M3 = %s\n", hexs(msgs.m3).c_str());
  SheError err;
  const auto proof = brake.she().load_key(msgs, &err);
  if (proof) {
    std::printf("CMD_LOAD_KEY: accepted, counter=%u\n",
                brake.she().counter(SheSlot::kKey1));
    std::printf("M4 = %s\n", hexs(proof->m4).c_str());
    std::printf("M5 = %s\n", hexs(proof->m5).c_str());
  } else {
    std::printf("CMD_LOAD_KEY: rejected (%d)\n", static_cast<int>(err));
  }

  // Replaying the same update must fail (counter monotonicity).
  const bool replay_ok = brake.she().load_key(msgs).has_value();
  std::printf("replay of the same M1/M2/M3: %s\n",
              replay_ok ? "ACCEPTED (bug!)" : "rejected (anti-rollback)");

  // --- secure boot --------------------------------------------------------------
  std::printf("\n-- power-on with authentic firmware --\n");
  std::printf("boot -> %s\n",
              brake.boot() == EcuState::kOperational ? "OPERATIONAL" : "DEGRADED");

  std::printf("\n-- attacker reflashes modified firmware --\n");
  FirmwareImage evil{"brake-fw", 1, Bytes(8192, 0x66)};
  brake.flash().stage(evil);
  brake.flash().activate();
  std::printf("boot -> %s (BOOT_MAC mismatch)\n",
              brake.boot() == EcuState::kOperational ? "OPERATIONAL"
                                                     : "DEGRADED/limp-home");
  brake.flash().revert();
  std::printf("revert to authentic bank, boot -> %s\n",
              brake.boot() == EcuState::kOperational ? "OPERATIONAL" : "DEGRADED");

  // --- voltage glitch tamper -----------------------------------------------------
  std::printf("\n-- voltage glitch (7.5 V on a 5 V rail) --\n");
  brake.report_voltage(7.5);
  std::printf("state = %s, SecOC key present = %s (zeroized on tamper)\n",
              brake.state() == EcuState::kDegraded ? "DEGRADED" : "OPERATIONAL",
              brake.she().has_key(SheSlot::kKey1) ? "yes" : "no");
  std::printf("diagnostics id still allowed in limp-home: %s\n",
              brake.send_frame(0x7DF, Bytes{0x02, 0x01, 0x0C}) ? "n/a (no bus)"
                                                               : "no bus attached");
  return 0;
}
