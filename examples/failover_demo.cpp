// Failover walk-through: a hot-standby gateway pair carries brake traffic
// between two CAN domains while a watchdog supervisor listens for its
// heartbeats. We crash the active unit, watch the alive supervision expire,
// let the supervisor's reset handler promote the standby, and finish with
// the repaired unit rejoining — then replay the same crash without the
// supervisor to show the outage nobody notices until the frames stop.

#include <cstdio>
#include <string>

#include "gateway/redundant.hpp"
#include "ivn/can.hpp"
#include "safety/supervisor.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"

using namespace aseck;
using sim::Scheduler;
using sim::SimTime;
using util::Bytes;

namespace {

struct Counter final : ivn::CanNode {
  using ivn::CanNode::CanNode;
  void on_frame(const ivn::CanFrame&, SimTime at) override {
    ++rx;
    last = at;
  }
  std::uint64_t rx = 0;
  SimTime last;
};

struct Rig {
  Scheduler sched;
  sim::Telemetry t;
  ivn::CanBus body{sched, "can.body", 500'000};
  ivn::CanBus chassis{sched, "can.chassis", 500'000};
  gateway::RedundantGateway rgw{sched, "gw"};
  Counter sender{"brake-pedal"};
  Counter receiver{"brake-actuator"};

  Rig() {
    body.bind_telemetry(t);
    chassis.bind_telemetry(t);
    rgw.bind_telemetry(t);
    rgw.add_domain("body", &body);
    rgw.add_domain("chassis", &chassis);
    rgw.add_route(0x100, "body", "chassis", /*safety_critical=*/true);
    rgw.start_sync(SimTime::from_ms(20));
    body.attach(&sender);
    chassis.attach(&receiver);
  }

  void send_brake() {
    ivn::CanFrame f;
    f.id = 0x100;
    f.data = Bytes{0xBB, 0x01};
    body.send(&sender, f);
  }
};

}  // namespace

int main() {
  std::printf("=== redundant gateway failover demo ===\n\n");

  // ---- act 1: supervised crash -> detect -> failover -> rejoin -------------
  Rig rig;
  safety::HealthSupervisor sup(rig.sched, "demo");
  sup.bind_telemetry(rig.t);

  safety::AliveSupervision alive;
  alive.period = SimTime::from_ms(10);  // reference cycle
  alive.expected = 10;                  // 1 ms heartbeats
  alive.min_margin = 2;
  alive.max_margin = 2;
  safety::EscalationPolicy esc;
  esc.failed_tolerance = 1;  // one bad cycle tolerated, second expires
  sup.supervise_alive("gw.active", alive, esc);
  sup.set_reset_handler("gw.active", [&](const std::string&) {
    std::printf("[%6.1f ms] watchdog reset handler -> promoting standby\n",
                rig.sched.now().ms());
    return rig.rgw.failover();
  });
  safety::HeartbeatEmitter hb(rig.sched, sup, "gw.active", SimTime::from_ms(1),
                              [&] { return !rig.rgw.active().offline(); });
  sup.start();
  hb.start();

  sim::PeriodicTask traffic(rig.sched, SimTime::from_ms(2),
                            [&] { rig.send_brake(); }, SimTime::from_ms(2));

  rig.sched.schedule_at(SimTime::from_ms(50), [&] {
    std::printf("[%6.1f ms] CRASH: active gateway unit '%s' goes dark\n",
                rig.sched.now().ms(), rig.rgw.active().trace().component().c_str());
    rig.rgw.set_active_down(true);
  });
  rig.sched.schedule_at(SimTime::from_ms(120), [&] {
    std::printf("[%6.1f ms] repaired unit reboots and rejoins as standby\n",
                rig.sched.now().ms());
    rig.rgw.set_active_down(false);
  });

  rig.sched.run_until(SimTime::from_ms(200));
  traffic.stop();
  hb.stop();
  sup.stop();

  std::printf("\nsupervised outcome:\n");
  std::printf("  failovers            : %llu\n",
              static_cast<unsigned long long>(rig.rgw.failovers()));
  std::printf("  detection latency    : %.1f ms\n",
              rig.rgw.last_detection_latency().ms());
  std::printf("  frames lost in gap   : %llu\n",
              static_cast<unsigned long long>(rig.rgw.last_failover_frames_lost()));
  std::printf("  brake frames delivered: %llu / 99 sent\n",
              static_cast<unsigned long long>(rig.receiver.rx));
  std::printf("  active unit now      : %s\n",
              rig.rgw.active().trace().component().c_str());

  // ---- act 2: the same crash, nobody watching ------------------------------
  std::printf("\n=== same crash, supervisor disabled ===\n\n");
  Rig dark;
  sim::PeriodicTask traffic2(dark.sched, SimTime::from_ms(2),
                             [&] { dark.send_brake(); }, SimTime::from_ms(2));
  dark.sched.schedule_at(SimTime::from_ms(50), [&] {
    std::printf("[%6.1f ms] CRASH: active gateway unit goes dark\n",
                dark.sched.now().ms());
    dark.rgw.set_active_down(true);
  });
  dark.sched.run_until(SimTime::from_ms(200));
  traffic2.stop();

  std::printf("\nunsupervised outcome:\n");
  std::printf("  failovers            : %llu (nobody pulled the trigger)\n",
              static_cast<unsigned long long>(dark.rgw.failovers()));
  std::printf("  brake frames delivered: %llu / 99 sent\n",
              static_cast<unsigned long long>(dark.receiver.rx));
  std::printf("  last frame seen at   : %.1f ms — silence ever since\n",
              dark.receiver.last.ms());
  return 0;
}
