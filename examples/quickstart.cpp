// Quickstart: build a small vehicle E/E architecture — two CAN domains
// joined by a security gateway, SecOC-protected sensor traffic, a signed
// security-policy update, and one OTA firmware update — then print a
// security report.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart

#include <cstdio>

#include "core/layers.hpp"
#include "core/policy.hpp"
#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"
#include "ota/client.hpp"

using namespace aseck;

int main() {
  std::printf("=== AutoSecKit quickstart ===\n\n");

  // --- 1. Vehicle bring-up ---------------------------------------------------
  sim::Scheduler sched;
  ivn::CanBus powertrain(sched, "powertrain", 500000);
  ivn::CanBus telematics(sched, "telematics", 500000);

  gateway::SecurityGateway cgw(sched, "central-gateway");
  cgw.add_domain("powertrain", &powertrain);
  cgw.add_domain("telematics", &telematics);
  cgw.add_route(0x7DF, "telematics", "powertrain");  // diagnostics only

  crypto::Block master_key;
  master_key.fill(0x11);
  crypto::Block boot_key;
  boot_key.fill(0x22);
  crypto::Block secoc_key;
  secoc_key.fill(0x33);

  ecu::Ecu engine(sched, "engine", 1);
  ecu::Ecu brake(sched, "brake", 2);
  ecu::Ecu tcu(sched, "telematics-unit", 3);
  engine.provision(ecu::FirmwareImage{"engine-fw", 1, util::Bytes(4096, 0xE1)},
                   master_key, boot_key, secoc_key);
  brake.provision(ecu::FirmwareImage{"brake-fw", 1, util::Bytes(4096, 0xB1)},
                  master_key, boot_key, secoc_key);
  tcu.provision(ecu::FirmwareImage{"tcu-fw", 1, util::Bytes(4096, 0x7C)},
                master_key, boot_key, secoc_key);
  engine.attach_to(&powertrain);
  brake.attach_to(&powertrain);
  tcu.attach_to(&telematics);

  std::printf("secure boot: engine=%s brake=%s tcu=%s\n",
              engine.boot() == ecu::EcuState::kOperational ? "OK" : "FAIL",
              brake.boot() == ecu::EcuState::kOperational ? "OK" : "FAIL",
              tcu.boot() == ecu::EcuState::kOperational ? "OK" : "FAIL");

  // --- 2. Policy-driven configuration ---------------------------------------
  crypto::Drbg authority_rng(2024u);
  const auto authority = crypto::EcdsaPrivateKey::generate(authority_rng);
  core::SecurityPolicy policy;
  policy.version = 1;
  policy.values[core::keys::kSecocMacBytes] =
      core::PolicyValue(std::int64_t{4});
  policy.values[core::keys::kGatewayRateLimit] = core::PolicyValue(100.0);

  core::LayerManager layers;
  layers.bind_gateway(&cgw, {"telematics"});
  core::PolicyStore store(authority.public_key(), policy);
  store.subscribe([&](const core::SecurityPolicy& p) { layers.apply(p); });
  layers.apply(store.active());
  std::printf("policy v%u applied (SecOC MAC = %zu bytes)\n",
              store.active().version, layers.config().secoc.mac_bytes);

  // --- 3. SecOC-protected traffic -------------------------------------------
  const ivn::SecOcChannel channel = layers.make_secoc_channel(
      util::BytesView(secoc_key.data(), secoc_key.size()));
  int verified = 0, rejected = 0;
  brake.subscribe(0x0F0, [&](const ivn::CanFrame& f, sim::SimTime) {
    if (brake.verify_secured(channel, 0x0F0, f.data).status ==
        ivn::SecOcStatus::kOk) {
      ++verified;
    } else {
      ++rejected;
    }
  });
  for (int i = 0; i < 20; ++i) {
    sched.schedule_at(sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10),
                      [&] {
                        engine.send_secured(channel, 0x0F0, 0x0F0,
                                            util::Bytes{0x10, 0x27});
                      });
  }
  sched.run();
  std::printf("SecOC wheel-speed stream: %d verified, %d rejected\n", verified,
              rejected);

  // --- 4. In-field policy update (e.g. strengthen MACs) ----------------------
  core::SecurityPolicy stronger = store.active();
  stronger.version = 2;
  stronger.values[core::keys::kSecocMacBytes] =
      core::PolicyValue(std::int64_t{8});
  const auto update_result =
      store.apply_update(core::SignedPolicy::sign(stronger, authority));
  std::printf("policy update to v2: %s (MAC now %zu bytes)\n",
              update_result == core::PolicyStore::UpdateResult::kAccepted
                  ? "accepted"
                  : "REJECTED",
              layers.config().secoc.mac_bytes);

  // --- 5. OTA firmware update via Uptane ------------------------------------
  crypto::Drbg ota_rng(55u);
  ota::Repository director(ota_rng, "director", util::SimTime::from_s(3600));
  ota::Repository images(ota_rng, "image-repo", util::SimTime::from_s(3600));
  const util::Bytes brake_v2(4096, 0xB2);
  director.add_target("brake-fw", brake_v2, 2, "brake-hw");
  images.add_target("brake-fw", brake_v2, 2, "brake-hw");
  director.publish(sched.now());
  images.publish(sched.now());

  ota::FullVerificationClient primary("tcu-primary", director.trusted_root(),
                                      images.trusted_root());
  const auto outcome = primary.fetch_and_verify(
      director.metadata(), images.metadata(), director, images, "brake-fw",
      "brake-hw", 1, sched.now());
  if (outcome.error == ota::OtaError::kOk) {
    const auto install = ota::install_image(brake.flash(), "brake-fw", 2,
                                            outcome.image, [] { return true; });
    std::printf("OTA update brake-fw v1 -> v2: verified and %s\n",
                install == ota::InstallResult::kCommitted ? "committed"
                                                          : "rolled back");
  } else {
    std::printf("OTA update failed: %s\n", ota::ota_error_name(outcome.error));
  }

  // --- 6. Report --------------------------------------------------------------
  std::printf("\n--- security report ---\n");
  std::printf("gateway: %llu forwarded, %llu dropped\n",
              static_cast<unsigned long long>(cgw.stats().forwarded),
              static_cast<unsigned long long>(cgw.stats().total_drops()));
  std::printf("powertrain bus load: %.1f%%\n",
              100.0 * powertrain.stats().bus_load(sched.now()));
  std::printf("brake fw version: %u (rollback floor %u)\n",
              brake.flash().active()->version, brake.flash().rollback_floor());
  std::printf("policy updates: %u accepted, %u rejected\n",
              store.updates_accepted(), store.updates_rejected());
  return 0;
}
