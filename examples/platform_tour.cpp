// Platform tour: the VehiclePlatform facade — build the reference vehicle
// from a declarative spec, boot it, run traffic, take an incident (flood +
// voltage glitch), respond via policy escalation and quarantine, and print
// the security posture at each step.

#include <cstdio>

#include "attacks/can_attacks.hpp"
#include "core/platform.hpp"

using namespace aseck;
using namespace aseck::core;
using util::Bytes;

namespace {
void print_posture(const char* label, const VehiclePlatform::Posture& p) {
  std::printf("%-28s | ecus: %zu op / %zu degraded | policy v%u | "
              "gw drops: %llu | quarantined: %zu\n",
              label, p.ecus_operational, p.ecus_degraded, p.policy_version,
              static_cast<unsigned long long>(p.gateway_drops),
              p.quarantined_domains);
}
}  // namespace

int main() {
  std::printf("=== VehiclePlatform tour ===\n\n");
  sim::Scheduler sched;
  crypto::Drbg rng(20260704u);
  const auto authority = crypto::EcdsaPrivateKey::generate(rng);

  SecurityPolicy policy;
  policy.version = 1;
  policy.values[keys::kSecocMacBytes] = PolicyValue(std::int64_t{4});

  VehiclePlatform car(sched, VehicleSpec::reference(), authority.public_key(),
                      policy, /*seed=*/7);
  std::printf("built '%s': %zu domains, %zu ECUs, %zu routes\n",
              car.spec().name.c_str(), car.spec().domains.size(),
              car.spec().ecus.size(), car.spec().routes.size());
  std::printf("secure boot: %zu/%zu ECUs operational\n\n", car.boot_all(),
              car.spec().ecus.size());
  print_posture("after bring-up", car.posture());

  // Normal operation: secured wheel-speed stream.
  const auto ch = car.secoc_channel();
  int verified = 0;
  car.ecu("brake").subscribe(0x0F0, [&](const ivn::CanFrame& f, sim::SimTime) {
    if (car.ecu("brake").verify_secured(ch, 0x0F0, f.data).status ==
        ivn::SecOcStatus::kOk) {
      ++verified;
    }
  });
  // engine and brake share the chassis<->powertrain boundary; route first.
  car.gateway().add_route(0x0F0, "powertrain", "chassis");
  for (int i = 0; i < 10; ++i) {
    sched.schedule_at(sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10),
                      [&] {
                        car.ecu("engine").send_secured(ch, 0x0F0, 0x0F0,
                                                       Bytes{0x10, 0x27});
                      });
  }
  sched.run();
  std::printf("secured cross-domain stream: %d/10 verified\n\n", verified);

  // Incident 1: diagnostic flood from a compromised telematics unit.
  std::printf("-- incident: 500 Hz diagnostic flood from telematics --\n");
  attacks::InjectionAttacker flood(sched, car.bus("telematics"), "flood", 0x7DF,
                                   sim::SimTime::from_ms(2),
                                   [](std::uint64_t) { return Bytes(8, 0x3E); });
  flood.start();
  sched.run_until(sched.now() + sim::SimTime::from_ms(500));
  print_posture("during flood (no response)", car.posture());

  // Response: signed policy escalation rate-limits external domains.
  SecurityPolicy hardened = car.policy().active();
  hardened.version = 2;
  hardened.values[keys::kGatewayRateLimit] = PolicyValue(5.0);
  car.policy().apply_update(SignedPolicy::sign(hardened, authority));
  sched.run_until(sched.now() + sim::SimTime::from_ms(500));
  flood.stop();
  sched.run();
  print_posture("after policy escalation", car.posture());

  // Incident 2: physical tamper on the body controller.
  std::printf("\n-- incident: voltage glitch on BCM --\n");
  car.ecu("bcm").report_voltage(8.4);
  car.gateway().quarantine("infotainment");
  print_posture("after tamper + quarantine", car.posture());

  std::printf("\nBCM SecOC key zeroized: %s; limp-home only.\n",
              car.ecu("bcm").she().has_key(ecu::SheSlot::kKey1) ? "no" : "yes");
  return 0;
}
