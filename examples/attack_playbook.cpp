// Attack playbook: runs the paper's Section 4 attack catalogue against the
// same vehicle twice — baseline (no defenses) and hardened (SecOC, gateway
// rate limiting + quarantine, IDS, distance bounding, masking) — and prints
// a scorecard.

#include <cstdio>
#include <string>
#include <vector>

#include "access/pkes.hpp"
#include "adas/fusion.hpp"
#include "attacks/can_attacks.hpp"
#include "attacks/scenarios.hpp"
#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"
#include "ids/detectors.hpp"
#include "ivn/uds.hpp"

using namespace aseck;
using util::Bytes;

namespace {

struct ScoreRow {
  std::string attack;
  std::string baseline;
  std::string hardened;
};

crypto::Block key_of(std::uint8_t b) {
  crypto::Block k;
  k.fill(b);
  return k;
}

/// CAN injection against an actuator command stream.
ScoreRow play_injection() {
  auto run = [](bool hardened) {
    sim::Scheduler sched;
    ivn::CanBus bus(sched, "chassis", 500000);
    ecu::Ecu sensor(sched, "sensor", 1), actuator(sched, "actuator", 2);
    sensor.provision(ecu::FirmwareImage{"s", 1, Bytes(64, 1)}, key_of(1),
                     key_of(2), key_of(3));
    actuator.provision(ecu::FirmwareImage{"a", 1, Bytes(64, 1)}, key_of(1),
                       key_of(2), key_of(3));
    sensor.attach_to(&bus);
    actuator.attach_to(&bus);
    sensor.boot();
    actuator.boot();
    const ivn::SecOcChannel ch(Bytes(16, 0x03));
    int malicious_accepted = 0;
    actuator.subscribe(0x0F0, [&](const ivn::CanFrame& f, sim::SimTime) {
      if (!hardened) {
        if (f.data[0] == 0x66) ++malicious_accepted;
      } else {
        const auto res = actuator.verify_secured(ch, 0x0F0, f.data);
        if (res.status == ivn::SecOcStatus::kOk && res.payload[0] == 0x66) {
          ++malicious_accepted;
        }
      }
    });
    attacks::InjectionAttacker atk(sched, bus, "attacker", 0x0F0,
                                   sim::SimTime::from_ms(10),
                                   [](std::uint64_t) { return Bytes(8, 0x66); });
    atk.start();
    sched.run_until(sim::SimTime::from_ms(200));
    atk.stop();
    sched.run();
    return malicious_accepted;
  };
  const int base = run(false), hard = run(true);
  return {"CAN command injection",
          std::to_string(base) + " forged commands executed",
          std::to_string(hard) + " accepted (SecOC)"};
}

/// Replay of a previously captured unlock command.
ScoreRow play_replay() {
  auto run = [](bool hardened) {
    sim::Scheduler sched;
    ivn::CanBus bus(sched, "body", 500000);
    ecu::Ecu sender(sched, "bcm", 1), door(sched, "door", 2);
    sender.provision(ecu::FirmwareImage{"b", 1, Bytes(64, 1)}, key_of(1),
                     key_of(2), key_of(3));
    door.provision(ecu::FirmwareImage{"d", 1, Bytes(64, 1)}, key_of(1),
                   key_of(2), key_of(3));
    sender.attach_to(&bus);
    door.attach_to(&bus);
    sender.boot();
    door.boot();
    const ivn::SecOcChannel ch(Bytes(16, 0x03));
    int unlocks = 0;
    door.subscribe(0x2A0, [&](const ivn::CanFrame& f, sim::SimTime) {
      if (!hardened) {
        ++unlocks;
      } else if (door.verify_secured(ch, 0x2A0, f.data).status ==
                 ivn::SecOcStatus::kOk) {
        ++unlocks;
      }
    });
    attacks::ReplayAttacker atk(sched, bus, "replayer",
                                sim::SimTime::from_ms(30),
                                sim::SimTime::from_ms(10));
    atk.start();
    sched.schedule_at(sim::SimTime::from_ms(10), [&] {
      if (hardened) {
        sender.send_secured(ch, 0x2A0, 0x2A0, Bytes{0x01});
      } else {
        sender.send_frame(0x2A0, Bytes{0x01});
      }
    });
    sched.run_until(sim::SimTime::from_ms(300));
    atk.stop();
    sched.run();
    return unlocks - 1;  // minus the legitimate one
  };
  const int base = run(false), hard = run(true);
  return {"unlock replay", std::to_string(base) + " replayed unlocks",
          std::to_string(hard) + " accepted (freshness)"};
}

/// External flood through the gateway.
ScoreRow play_flood() {
  auto run = [](bool hardened) {
    sim::Scheduler sched;
    ivn::CanBus external(sched, "obd", 500000), internal(sched, "chassis", 500000);
    gateway::SecurityGateway gw(sched, "cgw");
    gw.add_domain("obd", &external);
    gw.add_domain("chassis", &internal);
    gw.add_route(0x001, "obd", "chassis");
    if (hardened) {
      gw.set_domain_rate_limit("obd", gateway::RateLimit{20.0, 5.0});
    }
    ecu::Ecu chassis_ecu(sched, "chassis-ecu", 1);
    chassis_ecu.provision(ecu::FirmwareImage{"c", 1, Bytes(64, 1)}, key_of(1),
                          key_of(2), key_of(3));
    chassis_ecu.attach_to(&internal);
    chassis_ecu.boot();
    attacks::FloodAttacker atk(sched, external, "flooder", 0x001);
    atk.start();
    sched.run_until(sim::SimTime::from_ms(500));
    atk.stop();
    sched.run();
    return internal.stats().bus_load(sched.now());
  };
  const double base = run(false), hard = run(true);
  char b[64], h[64];
  std::snprintf(b, sizeof b, "%.0f%% internal bus load", base * 100);
  std::snprintf(h, sizeof h, "%.1f%% (rate-limited)", hard * 100);
  return {"external DoS flood", b, h};
}

/// PKES relay theft.
ScoreRow play_relay() {
  access::PkesCar base_car(key_of(0x77), access::PkesConfig{}, 1);
  access::PkesCar hard_car(key_of(0x77), access::PkesConfig{}, 1);
  hard_car.set_rtt_limit(310.0);
  access::KeyFob fob(key_of(0x77));
  access::RelayAttacker relay;
  relay.active = true;
  const auto base_attempt = base_car.try_unlock(fob, 40.0, relay);
  const auto hard_attempt = hard_car.try_unlock(fob, 40.0, relay);
  return {"PKES relay theft",
          base_attempt.unlocked ? "car UNLOCKED" : "blocked",
          hard_attempt.unlocked ? "car UNLOCKED"
                                : "blocked (distance bounding)"};
}

/// Side-channel key extraction -> fleet compromise.
ScoreRow play_sidechannel() {
  attacks::FleetConfig base_cfg;
  base_cfg.fleet_size = 10;
  base_cfg.shared_symmetric_keys = true;
  attacks::FleetConfig hard_cfg = base_cfg;
  hard_cfg.masking_countermeasure = true;
  hard_cfg.shared_symmetric_keys = false;
  const auto base = attacks::run_fleet_compromise(base_cfg, 7);
  const auto hard = attacks::run_fleet_compromise(hard_cfg, 7);
  return {"side-channel -> fleet OTA",
          std::to_string(base.vehicles_compromised) + "/10 vehicles compromised",
          std::to_string(hard.vehicles_compromised) +
              "/10 (masking + unique keys)"};
}

/// GPS spoofing.
ScoreRow play_gps() {
  attacks::GpsSpoofScenario::Config cfg;
  attacks::GpsSpoofScenario scenario(cfg, 11);
  const auto steps = scenario.run(120.0, 30.0);
  const double latency =
      attacks::GpsSpoofScenario::detection_latency_s(steps, 30.0);
  char h[64];
  std::snprintf(h, sizeof h, "detected after %.0f s (odometry x-check)", latency);
  char b[64];
  std::snprintf(b, sizeof b, "%.0f m position error, undetected",
                steps.back().gps_error_m);
  return {"GPS carry-off spoofing", b, h};
}

/// UDS SecurityAccess brute force: weak XOR algorithm + no lockout vs
/// CMAC algorithm + 3-attempt lockout.
ScoreRow play_uds() {
  util::Rng rng(19);
  // Baseline: leaked-constant-family XOR, effectively unlimited attempts.
  ivn::UdsServer::Config weak_cfg;
  weak_cfg.seed_key = ivn::weak_xor_algorithm(0x000000AA);  // 8-bit constant
  weak_cfg.max_attempts = 1u << 30;
  weak_cfg.lockout_s = 0;
  ivn::UdsServer weak(weak_cfg, 3);
  weak.session_control(ivn::UdsSession::kExtended, 0);
  int tries = 0;
  bool cracked = false;
  for (std::uint32_t c = 0; c < 256 && !cracked; ++c) {
    const auto seed = weak.request_seed(c);
    ++tries;
    cracked = weak.send_key(ivn::weak_xor_algorithm(c)(seed.data), c + 0.5)
                  .positive;
  }
  // Hardened: CMAC seed/key + lockout.
  ivn::UdsServer::Config strong_cfg;
  strong_cfg.seed_key = ivn::cmac_algorithm(util::Bytes(16, 0x9C));
  ivn::UdsServer strong(strong_cfg, 4);
  const auto attack = ivn::brute_force_security_access(strong, 100000, 0, rng);
  return {"UDS SecurityAccess brute force",
          cracked ? "unlocked after " + std::to_string(tries) + " tries"
                  : "survived",
          attack.unlocked ? "unlocked (bug)"
                          : "locked out after " +
                                std::to_string(attack.attempts) + " tries"};
}

/// LIDAR ghost-object phantom braking.
ScoreRow play_lidar_ghost() {
  auto run = [](bool fusion_voting) {
    adas::PerceptionSensor::Config rc, lc;
    rc.kind = adas::SensorKind::kRadar;
    lc.kind = adas::SensorKind::kLidar;
    adas::PerceptionSensor radar(rc, 1), lidar(lc, 2);
    adas::SensorFusion::Config fcfg;
    fcfg.min_corroboration = fusion_voting ? 2 : 1;
    adas::SensorFusion fusion(fcfg);
    fusion.add_sensor(&radar);
    fusion.add_sensor(&lidar);
    adas::AebController aeb;
    lidar.inject_ghost(adas::Detection{12.0, 0.0, 28.0, 1.0});
    int phantom = 0;
    for (int i = 0; i < 100; ++i) {
      if (aeb.evaluate(fusion.fuse({}).actionable).brake) ++phantom;
    }
    return phantom;
  };
  const int base = run(false), hard = run(true);
  return {"LIDAR ghost ($60 spoofer)",
          std::to_string(base) + "/100 phantom-brake frames",
          std::to_string(hard) + "/100 (2-of-3 fusion voting)"};
}

}  // namespace

int main() {
  std::printf("=== attack playbook: baseline vs hardened ===\n\n");
  const std::vector<ScoreRow> rows = {
      play_injection(), play_replay(),      play_flood(),
      play_relay(),     play_sidechannel(), play_gps(),
      play_uds(),       play_lidar_ghost(),
  };
  std::printf("%-28s | %-36s | %s\n", "attack", "baseline vehicle",
              "hardened vehicle");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (const auto& r : rows) {
    std::printf("%-28s | %-36s | %s\n", r.attack.c_str(), r.baseline.c_str(),
                r.hardened.c_str());
  }
  return 0;
}
