// Tests for the crypto verification fast path plumbing: the bounded LRU
// cache (util::LruCache) and the VerifyEngine (verify-result caching, batch
// API, crypto.verify.* metrics export).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crypto/verify_engine.hpp"
#include "sim/telemetry.hpp"
#include "util/lru.hpp"

namespace aseck {
namespace {

// ---------------------------------------------------------------------------
// util::LruCache

TEST(LruCache, UnboundedByDefault) {
  util::LruCache<int, int> c;
  for (int i = 0; i < 1000; ++i) c.put(i, i * 2);
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_EQ(c.evictions(), 0u);
  ASSERT_NE(c.find(0), nullptr);
  EXPECT_EQ(*c.find(999), 1998);
}

TEST(LruCache, BoundsSizeAndEvictsLeastRecent) {
  util::LruCache<int, std::string> c(3);
  c.put(1, "a");
  c.put(2, "b");
  c.put(3, "c");
  c.put(4, "d");  // evicts 1 (least recently used)
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.find(1), nullptr);
  EXPECT_NE(c.find(2), nullptr);
}

TEST(LruCache, FindBumpsRecency) {
  util::LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  EXPECT_NE(c.find(1), nullptr);  // 1 becomes most recent
  c.put(3, 30);                   // evicts 2, not 1
  EXPECT_NE(c.find(1), nullptr);
  EXPECT_EQ(c.find(2), nullptr);
  EXPECT_NE(c.find(3), nullptr);
}

TEST(LruCache, PutExistingUpdatesValueWithoutEviction) {
  util::LruCache<int, int> c(2);
  c.put(1, 10);
  c.put(2, 20);
  c.put(1, 11);  // update, no growth
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_EQ(*c.find(1), 11);
}

TEST(LruCache, HitMissCounters) {
  util::LruCache<int, int> c(4);
  c.put(1, 1);
  EXPECT_NE(c.find(1), nullptr);
  EXPECT_EQ(c.find(2), nullptr);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, SetCapacityEvictsDownImmediately) {
  util::LruCache<int, int> c;
  for (int i = 0; i < 10; ++i) c.put(i, i);
  c.set_capacity(4);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.evictions(), 6u);
  // The four most recent survive.
  for (int i = 6; i < 10; ++i) EXPECT_NE(c.find(i), nullptr);
  EXPECT_EQ(c.find(5), nullptr);
}

TEST(LruCache, SetCapacityZeroRebindsToUnbounded) {
  util::LruCache<int, int> c(2);
  c.put(1, 1);
  c.put(2, 2);
  c.set_capacity(0);  // 0 = unbounded, not "evict everything"
  for (int i = 3; i < 100; ++i) c.put(i, i);
  EXPECT_EQ(c.size(), 99u);
  EXPECT_EQ(c.evictions(), 0u);
  EXPECT_NE(c.find(1), nullptr);  // nothing was dropped by the rebind
}

TEST(LruCache, ClearResetsEntriesKeepsCounters) {
  util::LruCache<int, int> c(2);
  c.put(1, 1);
  c.put(2, 2);
  c.put(3, 3);
  c.clear();
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.evictions(), 1u);  // history preserved
  EXPECT_EQ(c.find(1), nullptr);
}

// ---------------------------------------------------------------------------
// crypto::VerifyEngine

crypto::EcdsaPrivateKey test_key(std::uint8_t tag) {
  std::array<std::uint8_t, 32> secret{};
  secret.fill(tag);
  secret[31] = 1;  // never zero mod n
  return crypto::EcdsaPrivateKey::from_secret(
      util::BytesView(secret.data(), secret.size()));
}

TEST(VerifyEngine, CachesRepeatVerifications) {
  const auto key = test_key(0x11);
  const util::Bytes msg = {'b', 's', 'm'};
  const crypto::EcdsaSignature sig = key.sign(msg);

  crypto::VerifyEngine eng;
  EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));
  EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));
  EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));
  EXPECT_EQ(eng.calls(), 3u);
  EXPECT_EQ(eng.cache_hits(), 2u);
  EXPECT_EQ(eng.cache_size(), 1u);
}

TEST(VerifyEngine, CachesNegativeVerdicts) {
  const auto key = test_key(0x22);
  const util::Bytes msg = {'x'};
  crypto::EcdsaSignature sig = key.sign(msg);
  sig.s = crypto::U256::from_u64(12345);  // corrupt

  crypto::VerifyEngine eng;
  EXPECT_FALSE(eng.verify(key.public_key(), msg, sig));
  EXPECT_FALSE(eng.verify(key.public_key(), msg, sig));  // cached false
  EXPECT_EQ(eng.cache_hits(), 1u);
}

TEST(VerifyEngine, DistinctInputsAreDistinctEntries) {
  const auto k1 = test_key(0x33);
  const auto k2 = test_key(0x44);
  const util::Bytes msg = {'m'};
  const auto s1 = k1.sign(msg);
  const auto s2 = k2.sign(msg);

  crypto::VerifyEngine eng;
  EXPECT_TRUE(eng.verify(k1.public_key(), msg, s1));
  EXPECT_TRUE(eng.verify(k2.public_key(), msg, s2));
  // Cross pairing: wrong key for signature must fail (and not collide with
  // the cached true verdicts).
  EXPECT_FALSE(eng.verify(k1.public_key(), msg, s2));
  EXPECT_EQ(eng.cache_hits(), 0u);
  EXPECT_EQ(eng.cache_size(), 3u);
}

TEST(VerifyEngine, EvictsWhenCapacityExceeded) {
  const auto key = test_key(0x55);
  crypto::VerifyEngine eng;
  eng.set_cache_capacity(4);
  for (int i = 0; i < 10; ++i) {
    util::Bytes msg = {static_cast<std::uint8_t>(i)};
    const auto sig = key.sign(msg);
    EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));
  }
  EXPECT_EQ(eng.cache_size(), 4u);
  EXPECT_EQ(eng.evictions(), 6u);
}

TEST(VerifyEngine, BatchMatchesScalarVerify) {
  const auto k1 = test_key(0x66);
  const auto k2 = test_key(0x77);
  const util::Bytes m1 = {'a'};
  const util::Bytes m2 = {'b'};
  const crypto::Digest d1 = crypto::sha256(m1);
  const crypto::Digest d2 = crypto::sha256(m2);
  const auto s1 = k1.sign(m1);
  const auto s2 = k2.sign(m2);
  const auto bad = k1.sign(m2);  // wrong digest for d1 slot below

  crypto::VerifyEngine eng;
  std::vector<crypto::VerifyEngine::BatchItem> items;
  items.push_back({&k1.public_key(), d1, &s1});
  items.push_back({&k2.public_key(), d2, &s2});
  items.push_back({&k1.public_key(), d1, &bad});
  const std::vector<bool> out = eng.verify_batch(items);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0]);
  EXPECT_TRUE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_EQ(eng.calls(), 3u);
}

TEST(VerifyEngine, ExportsMetricsUnderCryptoVerifyNames) {
  const auto key = test_key(0x88);
  const util::Bytes msg = {'t'};
  const auto sig = key.sign(msg);

  crypto::VerifyEngine eng;
  eng.set_cache_capacity(1);
  EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));  // pre-binding call

  sim::MetricsRegistry reg;
  eng.bind_metrics(reg);
  ASSERT_NE(reg.find_counter("crypto.verify.calls"), nullptr);
  ASSERT_NE(reg.find_counter("crypto.verify.cache_hits"), nullptr);
  ASSERT_NE(reg.find_counter("crypto.verify.evictions"), nullptr);
  // Carry-over: the pre-binding call is visible after binding.
  EXPECT_EQ(reg.find_counter("crypto.verify.calls")->value(), 1u);

  EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));  // hit
  const util::Bytes other = {'u'};
  const auto sig2 = key.sign(other);
  EXPECT_TRUE(eng.verify(key.public_key(), other, sig2));  // evicts first
  EXPECT_EQ(reg.find_counter("crypto.verify.calls")->value(), 3u);
  EXPECT_EQ(reg.find_counter("crypto.verify.cache_hits")->value(), 1u);
  EXPECT_EQ(reg.find_counter("crypto.verify.evictions")->value(), 1u);
}

// Regression (PR 9 bugfix 1): metrics export used to include wall-clock
// verify latency, which made two identical runs export different JSON and
// broke every digest diff downstream. The registry must now be a pure
// function of the verify workload.
TEST(VerifyEngine, MetricsJsonIsBitIdenticalAcrossRuns) {
  auto run = [] {
    const auto k1 = test_key(0x91);
    const auto k2 = test_key(0x92);
    crypto::VerifyEngine eng;
    eng.set_batch_kernel(true);
    sim::MetricsRegistry reg;
    eng.bind_metrics(reg);
    std::vector<crypto::Digest> digests;
    std::vector<crypto::EcdsaSignature> sigs;
    for (int i = 0; i < 8; ++i) {
      util::Bytes msg = {static_cast<std::uint8_t>(i)};
      digests.push_back(crypto::sha256(msg));
      sigs.push_back((i % 2 ? k2 : k1).sign_digest(digests.back()));
    }
    std::vector<crypto::VerifyEngine::BatchItem> items;
    for (int i = 0; i < 8; ++i) {
      items.push_back({i % 2 ? &k2.public_key() : &k1.public_key(),
                       digests[static_cast<std::size_t>(i)],
                       &sigs[static_cast<std::size_t>(i)]});
    }
    eng.verify_batch(items);
    eng.verify_batch(items);  // second pass: all cache hits
    eng.verify_digest(k1.public_key(), digests[0], sigs[0]);
    return reg.to_json();
  };
  EXPECT_EQ(run(), run());
}

// Regression (PR 9 bugfix 2): null-pointer batch items used to be dropped
// from the call accounting, so crypto.verify.calls undercounted the offered
// load whenever a producer handed over a malformed job.
TEST(VerifyEngine, MalformedBatchItemsStillCountAsCalls) {
  const auto key = test_key(0x93);
  const util::Bytes msg = {'z'};
  const crypto::Digest d = crypto::sha256(msg);
  const auto sig = key.sign_digest(d);

  crypto::VerifyEngine eng;
  sim::MetricsRegistry reg;
  eng.bind_metrics(reg);
  std::vector<crypto::VerifyEngine::BatchItem> items;
  items.push_back({&key.public_key(), d, &sig});
  items.push_back({nullptr, d, &sig});             // no key
  items.push_back({&key.public_key(), d, nullptr});  // no signature
  const std::vector<bool> out = eng.verify_batch(items);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_EQ(eng.calls(), 3u);
  EXPECT_EQ(reg.find_counter("crypto.verify.calls")->value(), 3u);
}

// Regression (PR 9 bugfix 3): rebinding to a fresh registry used to carry
// only the not-yet-exported eviction delta while calls/hits carried full
// totals, so the fresh registry disagreed with the engine's own counters.
TEST(VerifyEngine, RebindCarriesFullTotalsForEveryCounter) {
  const auto key = test_key(0x94);
  crypto::VerifyEngine eng;
  eng.set_cache_capacity(2);

  sim::MetricsRegistry first;
  eng.bind_metrics(first);
  for (int i = 0; i < 6; ++i) {
    util::Bytes msg = {static_cast<std::uint8_t>(i)};
    const auto sig = key.sign(msg);
    EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));
    EXPECT_TRUE(eng.verify(key.public_key(), msg, sig));  // immediate hit
  }
  ASSERT_GT(eng.evictions(), 0u);

  sim::MetricsRegistry fresh;
  eng.bind_metrics(fresh);
  EXPECT_EQ(fresh.find_counter("crypto.verify.calls")->value(), eng.calls());
  EXPECT_EQ(fresh.find_counter("crypto.verify.cache_hits")->value(),
            eng.cache_hits());
  EXPECT_EQ(fresh.find_counter("crypto.verify.evictions")->value(),
            eng.evictions());
  EXPECT_EQ(fresh.find_counter("crypto.verify.primitive")->value(),
            eng.primitive_calls());

  // And the first registry still agrees after more traffic on the fresh one.
  const util::Bytes extra = {'q'};
  const auto esig = key.sign(extra);
  EXPECT_TRUE(eng.verify(key.public_key(), extra, esig));
  EXPECT_EQ(fresh.find_counter("crypto.verify.calls")->value(), eng.calls());
}

TEST(VerifyEngine, BatchKernelVerdictsMatchPerItemPath) {
  const auto k1 = test_key(0x95);
  const auto k2 = test_key(0x96);
  std::vector<crypto::Digest> digests;
  std::vector<crypto::EcdsaSignature> sigs;
  for (int i = 0; i < 12; ++i) {
    util::Bytes msg = {static_cast<std::uint8_t>(i), 0x5a};
    digests.push_back(crypto::sha256(msg));
    sigs.push_back((i % 3 ? k1 : k2).sign_digest(digests.back()));
  }
  sigs[4].s = crypto::U256::from_u64(77);  // corrupt one
  auto items_for = [&](std::vector<crypto::VerifyEngine::BatchItem>& items) {
    for (int i = 0; i < 12; ++i) {
      items.push_back({i % 3 ? &k1.public_key() : &k2.public_key(),
                       digests[static_cast<std::size_t>(i)],
                       &sigs[static_cast<std::size_t>(i)]});
    }
  };
  crypto::VerifyEngine off;
  crypto::VerifyEngine on;
  on.set_batch_kernel(true);
  std::vector<crypto::VerifyEngine::BatchItem> items;
  items_for(items);
  const std::vector<bool> a = off.verify_batch(items);
  const std::vector<bool> b = on.verify_batch(items);
  EXPECT_EQ(a, b);
  EXPECT_GT(on.batched_calls(), 0u);
  EXPECT_EQ(off.batched_calls(), 0u);
}

}  // namespace
}  // namespace aseck
