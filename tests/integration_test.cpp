// Cross-module integration tests: full vehicle bring-up with the layered
// architecture, attack/defense end-to-end flows, OTA round trips through the
// cloud channel, and policy-driven reconfiguration under attack.

#include <gtest/gtest.h>

#include "attacks/can_attacks.hpp"
#include "cloud/secure_channel.hpp"
#include "core/layers.hpp"
#include "core/policy.hpp"
#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"
#include "ids/detectors.hpp"
#include "ivn/uds.hpp"
#include "ota/client.hpp"

namespace aseck {
namespace {

using util::Bytes;

crypto::Block key_of(std::uint8_t b) {
  crypto::Block k;
  k.fill(b);
  return k;
}

/// A small but complete vehicle: 2 domains, 3 ECUs, gateway, policy engine.
struct Vehicle {
  sim::Scheduler sched;
  ivn::CanBus powertrain{sched, "powertrain", 500000};
  ivn::CanBus telematics{sched, "telematics", 500000};
  gateway::SecurityGateway cgw{sched, "cgw"};
  ecu::Ecu engine{sched, "engine", 1};
  ecu::Ecu brake{sched, "brake", 2};
  ecu::Ecu tcu{sched, "tcu", 3};
  crypto::Drbg authority_rng{99u};
  crypto::EcdsaPrivateKey authority{crypto::EcdsaPrivateKey::generate(authority_rng)};
  core::LayerManager layers;
  std::unique_ptr<core::PolicyStore> store;

  Vehicle() {
    cgw.add_domain("powertrain", &powertrain);
    cgw.add_domain("telematics", &telematics);
    cgw.add_route(0x7DF, "telematics", "powertrain");
    for (ecu::Ecu* e : {&engine, &brake, &tcu}) {
      e->provision(ecu::FirmwareImage{e->name() + "-fw", 1, Bytes(1024, 0x11)},
                   key_of(0x10), key_of(0x20), key_of(0x30));
    }
    engine.attach_to(&powertrain);
    brake.attach_to(&powertrain);
    tcu.attach_to(&telematics);
    engine.boot();
    brake.boot();
    tcu.boot();

    core::SecurityPolicy initial;
    initial.version = 1;
    initial.values[core::keys::kSecocMacBytes] =
        core::PolicyValue(std::int64_t{4});
    layers.bind_gateway(&cgw, {"telematics"});
    store = std::make_unique<core::PolicyStore>(authority.public_key(), initial);
    store->subscribe(
        [this](const core::SecurityPolicy& p) { layers.apply(p); });
    layers.apply(store->active());
  }
};

TEST(Integration, VehicleBringUpAllOperational) {
  Vehicle v;
  EXPECT_EQ(v.engine.state(), ecu::EcuState::kOperational);
  EXPECT_EQ(v.brake.state(), ecu::EcuState::kOperational);
  EXPECT_EQ(v.tcu.state(), ecu::EcuState::kOperational);
  EXPECT_EQ(v.layers.config().secoc.mac_bytes, 4u);
}

TEST(Integration, SecuredStreamSurvivesReplayAttack) {
  Vehicle v;
  const auto ch = v.layers.make_secoc_channel(
      util::BytesView(key_of(0x30).data(), 16));
  int accepted = 0, rejected = 0;
  v.brake.subscribe(0x0F0, [&](const ivn::CanFrame& f, sim::SimTime) {
    if (v.brake.verify_secured(ch, 0x0F0, f.data).status ==
        ivn::SecOcStatus::kOk) {
      ++accepted;
    } else {
      ++rejected;
    }
  });
  attacks::ReplayAttacker replay(v.sched, v.powertrain, "replay",
                                 sim::SimTime::from_ms(40),
                                 sim::SimTime::from_ms(5));
  replay.start();
  for (int i = 0; i < 10; ++i) {
    v.sched.schedule_at(
        sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10), [&, i] {
          v.engine.send_secured(ch, 0x0F0, 0x0F0,
                                Bytes{static_cast<std::uint8_t>(i)});
        });
  }
  v.sched.run_until(sim::SimTime::from_ms(300));
  replay.stop();
  v.sched.run();
  EXPECT_EQ(accepted, 10);
  EXPECT_GT(rejected, 20);
}

TEST(Integration, PolicyEscalationUnderAttackHardensGateway) {
  Vehicle v;
  // Attacker floods the diagnostic route from telematics.
  attacks::InjectionAttacker atk(v.sched, v.telematics, "atk", 0x7DF,
                                 sim::SimTime::from_ms(2),
                                 [](std::uint64_t) { return Bytes(8, 0x31); });
  int brake_diag_rx = 0;
  v.brake.subscribe(0x7DF,
                    [&](const ivn::CanFrame&, sim::SimTime) { ++brake_diag_rx; });
  atk.start();
  v.sched.run_until(sim::SimTime::from_ms(200));
  const int before = brake_diag_rx;
  EXPECT_GT(before, 50);  // flood passes initially

  // Backend pushes a hardened policy (rate limit) via signed update.
  core::SecurityPolicy hardened = v.store->active();
  hardened.version = 2;
  hardened.values[core::keys::kGatewayRateLimit] = core::PolicyValue(5.0);
  ASSERT_EQ(v.store->apply_update(core::SignedPolicy::sign(hardened, v.authority)),
            core::PolicyStore::UpdateResult::kAccepted);

  v.sched.run_until(sim::SimTime::from_s(2));
  atk.stop();
  v.sched.run();
  const int during = brake_diag_rx - before;
  // ~1.8 s at <= 5 fps + burst -> bounded few dozen vs hundreds before.
  EXPECT_LT(during, 40);
  EXPECT_GT(v.cgw.stats().dropped_rate, 400u);
}

TEST(Integration, OtaPolicyDeliveryOverCloudChannel) {
  // Policy update fetched over the authenticated cloud channel, then applied
  // through the store — the full in-field reconfiguration path.
  Vehicle v;
  crypto::Drbg rng(123u);
  const auto server_id = crypto::EcdsaPrivateKey::generate(rng);
  const auto cred = cloud::ServerCredential::issue(
      "backend", server_id.public_key(), v.authority);
  cloud::ChannelServer backend(cred, server_id, rng);
  cloud::ChannelClient vehicle_client(v.authority.public_key(), rng);
  const auto sh = backend.respond(vehicle_client.hello());
  ASSERT_EQ(vehicle_client.finish(sh), cloud::ChannelClient::Result::kOk);

  // Backend serializes a signed policy and sends it through the channel.
  core::SecurityPolicy p2 = v.store->active();
  p2.version = 2;
  p2.values[core::keys::kSecocMacBytes] = core::PolicyValue(std::int64_t{8});
  const core::SignedPolicy sp = core::SignedPolicy::sign(p2, v.authority);
  Bytes wire = sp.policy.serialize();
  const Bytes sig = sp.signature.to_bytes();
  wire.insert(wire.end(), sig.begin(), sig.end());
  const auto sealed = backend.to_client().seal(wire);
  const auto received = vehicle_client.from_server().open(sealed);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, wire);

  // Vehicle applies the update (signature re-verified by the store).
  ASSERT_EQ(v.store->apply_update(sp),
            core::PolicyStore::UpdateResult::kAccepted);
  EXPECT_EQ(v.layers.config().secoc.mac_bytes, 8u);
}

TEST(Integration, FullOtaUpdateIntoEcuFlash) {
  Vehicle v;
  crypto::Drbg rng(321u);
  ota::Repository director(rng, "director", util::SimTime::from_s(3600));
  ota::Repository images(rng, "images", util::SimTime::from_s(3600));
  const Bytes fw2(1024, 0x22);
  director.add_target("brake-fw", fw2, 2, "brake-hw");
  images.add_target("brake-fw", fw2, 2, "brake-hw");
  director.publish(util::SimTime::from_s(1));
  images.publish(util::SimTime::from_s(1));

  ota::FullVerificationClient client("primary", director.trusted_root(),
                                     images.trusted_root());
  const auto out = client.fetch_and_verify(
      director.metadata(), images.metadata(), director, images, "brake-fw",
      "brake-hw", 1, util::SimTime::from_s(5));
  ASSERT_EQ(out.error, ota::OtaError::kOk);
  ASSERT_EQ(ota::install_image(v.brake.flash(), "brake-fw", 2, out.image,
                               [] { return true; }),
            ota::InstallResult::kCommitted);
  // The new image boots only after re-computing BOOT_MAC (the old MAC
  // covers v1): first boot degrades, re-bootstrap fixes it.
  EXPECT_EQ(v.brake.boot(), ecu::EcuState::kDegraded);
  ASSERT_EQ(v.brake.she().autonomous_bootstrap(v.brake.flash().active()->code),
            ecu::SheError::kNoError);
  EXPECT_EQ(v.brake.boot(), ecu::EcuState::kOperational);
  EXPECT_EQ(v.brake.flash().active()->version, 2u);
}

TEST(Integration, IdsDetectsAttackAndGatewayQuarantines) {
  Vehicle v;
  ids::IdsEnsemble ensemble = ids::make_default_ensemble();
  // Train on benign powertrain traffic shape.
  for (int i = 0; i < 100; ++i) {
    ivn::CanFrame f;
    f.id = 0x0F0;
    f.data = Bytes(8, 0x10);
    ensemble.train(f, sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10));
  }
  ensemble.finish_training();

  // IDS tap on powertrain drives quarantine of telematics when forwarded
  // traffic looks anomalous.
  struct Tap : ivn::CanNode {
    Tap(ids::IdsEnsemble& e, gateway::SecurityGateway& g, sim::Scheduler& s)
        : CanNode("ids-tap"), ensemble(e), gw(g), sched(s) {}
    void on_frame(const ivn::CanFrame& f, sim::SimTime at) override {
      if (ensemble.observe(f, at).alert && !gw.quarantined("telematics")) {
        gw.quarantine("telematics");
        ++quarantines;
      }
      (void)sched;
    }
    ids::IdsEnsemble& ensemble;
    gateway::SecurityGateway& gw;
    sim::Scheduler& sched;
    int quarantines = 0;
  } tap(ensemble, v.cgw, v.sched);
  v.powertrain.attach(&tap);

  // Attacker injects an unknown id through a (mis)configured route.
  v.cgw.add_route(0x666, "telematics", "powertrain");
  attacks::InjectionAttacker atk(v.sched, v.telematics, "atk", 0x666,
                                 sim::SimTime::from_ms(5),
                                 [](std::uint64_t) { return Bytes(8, 0x66); });
  atk.start();
  v.sched.run_until(sim::SimTime::from_s(1));
  atk.stop();
  v.sched.run();
  EXPECT_EQ(tap.quarantines, 1);
  EXPECT_TRUE(v.cgw.quarantined("telematics"));
  EXPECT_GT(v.cgw.stats().dropped_quarantine, 100u);
}

TEST(Integration, UdsOverGatewayRespectsSecurityAccess) {
  Vehicle v;
  // Diagnostic server on the brake ECU, reachable via the routed 0x7DF id.
  ivn::UdsServer::Config cfg;
  cfg.seed_key = ivn::cmac_algorithm(Bytes(16, 0x77));
  ivn::UdsServer uds(cfg, 5);
  uds.define_did(0xF190, util::from_string("VINAAA1111"), true);

  // Tester on telematics sends {read VIN, unauthorized write, auth, write}.
  std::vector<std::string> results;
  v.brake.subscribe(0x7DF, [&](const ivn::CanFrame& f, sim::SimTime at) {
    const double now = at.seconds();
    switch (f.data.empty() ? 0 : f.data[0]) {
      case 0x22:
        results.push_back(uds.read_data(0xF190).positive ? "read_ok" : "read_fail");
        break;
      case 0x2E: {
        const auto r = uds.write_data(0xF190, util::from_string("EVILVIN000"), now);
        results.push_back(r.positive ? "write_ok" : "write_denied");
        break;
      }
      case 0x10:
        uds.session_control(ivn::UdsSession::kExtended, now);
        break;
      case 0x27: {
        const auto seed = uds.request_seed(now);
        if (seed.positive) {
          const Bytes key = ivn::cmac_algorithm(Bytes(16, 0x77))(seed.data);
          results.push_back(uds.send_key(key, now).positive ? "unlocked"
                                                            : "unlock_failed");
        }
        break;
      }
      default: break;
    }
  });
  int step = 0;
  for (const std::uint8_t svc : {0x22, 0x2E, 0x10, 0x27, 0x2E}) {
    v.sched.schedule_at(
        sim::SimTime::from_ms(static_cast<std::uint64_t>(++step) * 50),
        [&v, svc] { v.tcu.send_frame(0x7DF, Bytes{svc}); });
  }
  v.sched.run();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], "read_ok");
  EXPECT_EQ(results[1], "write_denied");  // locked
  EXPECT_EQ(results[2], "unlocked");
  EXPECT_EQ(results[3], "write_ok");      // after SecurityAccess
}

TEST(Integration, BusOffAttackTriggersDegradedBrakeAndDiagStillWorks) {
  Vehicle v;
  attacks::BusOffAttacker atk(v.powertrain, "brake", 0x0B0);
  atk.arm();
  v.brake.send_frame(0x0B0, Bytes{0x01});
  v.sched.run();
  EXPECT_EQ(v.brake.ivn::CanNode::state(), ivn::CanNodeState::kBusOff);
  atk.disarm();
  // Recovery procedure restores communication.
  v.powertrain.recover(&v.brake);
  EXPECT_TRUE(v.brake.send_frame(0x0B0, Bytes{0x01}));
  v.sched.run();
}

}  // namespace
}  // namespace aseck
