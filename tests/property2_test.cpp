// Second property-test batch: LIN framing sweeps, DST40 statistical
// properties, DRBG output statistics, scheduler determinism, and
// U256/P-256 algebraic laws.

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/dst40.hpp"
#include "crypto/p256.hpp"
#include "ivn/lin.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace aseck {
namespace {

using util::Bytes;

// ---------------------------------------------------------------- LIN

class LinPidSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinPidSweep, ParityBitsDetectSingleIdBitFlips) {
  const auto id = static_cast<std::uint8_t>(GetParam());
  const std::uint8_t pid = ivn::lin_protected_id(id);
  EXPECT_EQ(pid & 0x3f, id);  // id preserved in low bits
  // Any single-bit flip of the 6 id bits changes at least one parity bit,
  // i.e. the resulting byte is never a valid PID for the flipped id with
  // unchanged parity.
  for (int bit = 0; bit < 6; ++bit) {
    const auto flipped = static_cast<std::uint8_t>(id ^ (1 << bit));
    const std::uint8_t flipped_pid = ivn::lin_protected_id(flipped);
    EXPECT_NE(flipped_pid & 0xc0, pid & 0xc0)
        << "id=" << int(id) << " bit=" << bit
        << ": parity did not change, single-bit id corruption undetectable";
  }
}

INSTANTIATE_TEST_SUITE_P(AllIds, LinPidSweep, ::testing::Range(0, 64));

class LinChecksumSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinChecksumSweep, DetectsAllSingleByteCorruptions) {
  const int len = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(len));
  const Bytes data = rng.bytes(static_cast<std::size_t>(len));
  const std::uint8_t pid = ivn::lin_protected_id(0x21);
  const std::uint8_t cs = ivn::lin_checksum(pid, data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    Bytes bad = data;
    bad[i] = static_cast<std::uint8_t>(bad[i] + 1);  // +1 mod 256 corruption
    EXPECT_NE(ivn::lin_checksum(pid, bad, true), cs) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, LinChecksumSweep, ::testing::Range(1, 9));

// ---------------------------------------------------------------- DST40

TEST(Dst40Stats, ResponseBitsBalanced) {
  // Over random challenges, each response bit should be ~50/50.
  const crypto::Dst40 t(0x39c1f27a55ULL);
  util::Rng rng(9);
  const int n = 4000;
  int ones[24] = {};
  for (int i = 0; i < n; ++i) {
    const std::uint32_t r = t.respond(rng.next_u64());
    for (int b = 0; b < 24; ++b) {
      if ((r >> b) & 1) ++ones[b];
    }
  }
  for (int b = 0; b < 24; ++b) {
    EXPECT_NEAR(ones[b], n / 2, n / 8) << "bit " << b;
  }
}

TEST(Dst40Stats, ChallengeAvalanche) {
  // Flipping one challenge bit should flip ~half the response bits on
  // average (within a loose band; it's a toy cipher).
  const crypto::Dst40 t(0x5a5a5a5a5aULL);
  util::Rng rng(10);
  util::RunningStats flipped;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t c = rng.next_u64() & crypto::Dst40::kChallengeMask;
    const int bit = static_cast<int>(rng.uniform(40));
    const std::uint32_t r1 = t.respond(c);
    const std::uint32_t r2 = t.respond(c ^ (1ULL << bit));
    flipped.add(util::hamming_weight(r1 ^ r2));
  }
  EXPECT_GT(flipped.mean(), 6.0);   // >= 25% of 24 bits
  EXPECT_LT(flipped.mean(), 18.0);  // <= 75%
}

// ---------------------------------------------------------------- DRBG

TEST(DrbgStats, ByteHistogramUniform) {
  crypto::Drbg d(424242u);
  const Bytes data = d.bytes(256 * 200);
  int counts[256] = {};
  for (std::uint8_t b : data) ++counts[b];
  for (int v = 0; v < 256; ++v) {
    EXPECT_NEAR(counts[v], 200, 80) << v;  // ~6 sigma band
  }
}

TEST(DrbgStats, MonobitAndRuns) {
  crypto::Drbg d(777777u);
  const Bytes data = d.bytes(10000);
  std::int64_t ones = 0;
  for (std::uint8_t b : data) ones += util::hamming_weight(b);
  const double total_bits = 80000;
  EXPECT_NEAR(static_cast<double>(ones) / total_bits, 0.5, 0.01);
}

// ---------------------------------------------------------------- scheduler

TEST(SchedulerDeterminism, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    sim::Scheduler sched;
    util::Rng rng(5);
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 200; ++i) {
      sched.schedule_at(sim::SimTime::from_ns(rng.uniform(1000000)),
                        [&trace, i] { trace.push_back(static_cast<std::uint64_t>(i)); });
    }
    sched.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------- algebra

TEST(U256Algebra, AddSubRoundTripRandom) {
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    crypto::U256 a, b;
    for (auto& w : a.w) w = rng.next_u32();
    for (auto& w : b.w) w = rng.next_u32();
    crypto::U256 sum, back;
    const std::uint32_t carry = crypto::add(sum, a, b);
    const std::uint32_t borrow = crypto::sub(back, sum, b);
    EXPECT_EQ(back, a);
    // carry out of add equals borrow of the inverse subtraction path.
    crypto::U256 diff;
    const std::uint32_t borrow2 = crypto::sub(diff, a, b);
    crypto::U256 restored;
    const std::uint32_t carry2 = crypto::add(restored, diff, b);
    EXPECT_EQ(restored, a);
    EXPECT_EQ(borrow2, carry2);
    (void)carry;
    (void)borrow;
  }
}

TEST(U256Algebra, MulCommutesAndDistributesModP) {
  using namespace crypto;
  util::Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    U256 a, b, c;
    for (auto& w : a.w) w = rng.next_u32();
    for (auto& w : b.w) w = rng.next_u32();
    for (auto& w : c.w) w = rng.next_u32();
    a = mod_generic(a, p256::P());
    b = mod_generic(b, p256::P());
    c = mod_generic(c, p256::P());
    EXPECT_EQ(p256::fmul(a, b), p256::fmul(b, a));
    // a*(b+c) == a*b + a*c (mod p)
    EXPECT_EQ(p256::fmul(a, p256::fadd(b, c)),
              p256::fadd(p256::fmul(a, b), p256::fmul(a, c)));
  }
}

TEST(P256Algebra, ScalarMultHomomorphic) {
  using namespace crypto;
  // k1*(k2*G) == (k1*k2 mod n)*G for random small-ish scalars.
  util::Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    const U256 k1 = U256::from_u64(rng.next_u64());
    const U256 k2 = U256::from_u64(rng.next_u64());
    const auto k2g = p256::to_affine(p256::scalar_mult_base(k2));
    const auto lhs = p256::to_affine(p256::scalar_mult(k1, k2g));
    const U256 prod = mul_mod(k1, k2, p256::N());
    const auto rhs = p256::to_affine(p256::scalar_mult_base(prod));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(P256Algebra, InverseRoundTripRandom) {
  using namespace crypto;
  util::Rng rng(14);
  for (int i = 0; i < 50; ++i) {
    U256 a;
    for (auto& w : a.w) w = rng.next_u32();
    a = mod_generic(a, p256::N());
    if (a.is_zero()) continue;
    const U256 inv = inv_mod_prime(a, p256::N());
    EXPECT_EQ(mul_mod(a, inv, p256::N()), U256::one());
    const U256 finv_a = p256::finv(mod_generic(a, p256::P()));
    EXPECT_EQ(p256::fmul(mod_generic(a, p256::P()), finv_a), U256::one());
  }
}

}  // namespace
}  // namespace aseck
