// VerifyQueue/VerifyPool: canonical drain order, outcome correctness vs the
// sequential verifier, and the headline contract — verdicts AND merged
// metrics JSON bit-identical across thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "crypto/verify_pool.hpp"
#include "crypto/sha256.hpp"

namespace aseck::crypto {
namespace {

struct Corpus {
  std::vector<EcdsaPublicKey> pubs;
  std::vector<Digest> digests;
  std::vector<EcdsaSignature> sigs;

  /// `n` signed digests over `keys` keys; every 7th signature corrupted.
  explicit Corpus(std::size_t n, std::size_t keys = 3) {
    std::vector<EcdsaPrivateKey> ks;
    for (std::size_t k = 0; k < keys; ++k) {
      util::Bytes secret(32, static_cast<std::uint8_t>(0x51 + k));
      ks.push_back(EcdsaPrivateKey::from_secret(secret));
    }
    for (std::size_t i = 0; i < n; ++i) {
      util::Bytes msg{'p', 'o', 'o', 'l'};
      util::append_be(msg, i, 4);
      const Digest d = sha256(msg);
      const EcdsaPrivateKey& k = ks[i % ks.size()];
      EcdsaSignature sig = k.sign_digest(d);
      if (i % 7 == 3) sig.s = add_mod(sig.s, U256::one(), p256::N());
      pubs.push_back(k.public_key());
      digests.push_back(d);
      sigs.push_back(sig);
    }
  }

  VerifyJob job(std::size_t i) const {
    return VerifyJob{&pubs[i], digests[i], &sigs[i], i};
  }
  std::size_t size() const { return digests.size(); }
};

VerifyPoolConfig cfg_with(unsigned threads, std::size_t producers = 2) {
  VerifyPoolConfig cfg;
  cfg.threads = threads;
  cfg.producers = producers;
  cfg.lanes = 8;
  cfg.batch_size = 16;
  return cfg;
}

TEST(VerifyQueue, DrainsInProducerThenFifoOrder) {
  VerifyQueue q(2);
  EXPECT_EQ(q.producers(), 2u);
  VerifyJob a, b, c;
  a.tag = 1;
  b.tag = 2;
  c.tag = 3;
  q.push(1, a);
  q.push(0, b);
  q.push(1, c);
  EXPECT_EQ(q.pending(), 3u);
  const auto jobs = q.drain();
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].tag, 2u);  // producer 0 first
  EXPECT_EQ(jobs[1].tag, 1u);
  EXPECT_EQ(jobs[2].tag, 3u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.add_producer(), 2u);
  EXPECT_EQ(q.producers(), 3u);
}

TEST(VerifyPool, OutcomesMatchSequentialVerifier) {
  const Corpus corpus(40);
  VerifyPool pool(cfg_with(4));
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    pool.queue().push(i % 2, corpus.job(i));
  }
  const auto outcomes = pool.flush();
  ASSERT_EQ(outcomes.size(), corpus.size());
  // Drain order: producer 0 (even i) then producer 1 (odd i).
  for (const VerifyOutcome& o : outcomes) {
    const std::size_t i = o.tag;
    EXPECT_EQ(o.ok, ecdsa_verify_digest(corpus.pubs[i], corpus.digests[i],
                                        corpus.sigs[i]))
        << "job " << i;
  }
  EXPECT_EQ(pool.flushes(), 1u);
  EXPECT_EQ(pool.jobs_done(), corpus.size());
}

TEST(VerifyPool, ThreadCountIsInvisibleInOutcomesAndMetrics) {
  const Corpus corpus(60);
  std::vector<std::vector<VerifyOutcome>> runs;
  std::vector<std::string> jsons;
  for (const unsigned threads : {1u, 2u, 4u}) {
    VerifyPool pool(cfg_with(threads, 3));
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      pool.queue().push(i % 3, corpus.job(i));
    }
    // Two flushes: the second re-submits half the jobs to exercise the
    // per-lane caches across flush boundaries.
    auto outcomes = pool.flush();
    for (std::size_t i = 0; i < corpus.size(); i += 2) {
      pool.queue().push(i % 3, corpus.job(i));
    }
    const auto second = pool.flush();
    outcomes.insert(outcomes.end(), second.begin(), second.end());
    std::vector<VerifyOutcome> flat = std::move(outcomes);
    runs.push_back(std::move(flat));
    jsons.push_back(pool.metrics_json());
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].tag, runs[0][i].tag);
      EXPECT_EQ(runs[r][i].ok, runs[0][i].ok);
    }
    EXPECT_EQ(jsons[r], jsons[0]) << "thread run " << r;
  }
}

TEST(VerifyPool, LaneCachesDedupRepeatedTraffic) {
  const Corpus corpus(24);
  VerifyPool pool(cfg_with(2));
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      pool.queue().push(0, corpus.job(i));
    }
    pool.flush();
  }
  std::uint64_t hits = 0, primitives = 0;
  for (std::size_t l = 0; l < pool.lanes(); ++l) {
    hits += pool.lane_engine(l).cache_hits();
    primitives += pool.lane_engine(l).primitive_calls();
  }
  // Round two is pure cache hits; only round one did point arithmetic.
  EXPECT_EQ(primitives, corpus.size());
  EXPECT_EQ(hits, corpus.size());
}

TEST(VerifyPool, MergedMetricsCountEveryCall) {
  const Corpus corpus(20);
  VerifyPoolConfig cfg = cfg_with(2);
  cfg.lanes = 2;  // big per-lane bursts: every miss goes through the kernel
  VerifyPool pool(cfg);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    pool.queue().push(0, corpus.job(i));
  }
  pool.flush();
  sim::MetricsRegistry merged;
  pool.merge_metrics_into(merged);
  EXPECT_EQ(merged.counter_value("crypto.verify.calls"), corpus.size());
  EXPECT_EQ(merged.counter_value("crypto.pool.jobs"), corpus.size());
  EXPECT_EQ(merged.counter_value("crypto.pool.flushes"), 1u);
  EXPECT_EQ(merged.counter_value("crypto.verify.batched"),
            merged.counter_value("crypto.verify.primitive"));
}

}  // namespace
}  // namespace aseck::crypto
