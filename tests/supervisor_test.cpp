// Tests for the health-supervision & redundant-failover stack:
// safety::HealthSupervisor (WdgM-style alive/deadline/logical supervision +
// escalation ladder), safety::HeartbeatEmitter, the hot-standby
// gateway::RedundantGateway, and the 2oo2 adas::DualChannelVoter. The
// acceptance bar is the ordered chain
//   fault inject -> missed heartbeats -> entity_expired -> failover/reset_ok
// on one shared TraceBus, with detection latency and switchover downtime
// (frames lost) measured, and zero unrecovered faults once the supervisor
// has driven recovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "adas/redundancy.hpp"
#include "gateway/redundant.hpp"
#include "ivn/can.hpp"
#include "safety/supervisor.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"

namespace aseck {
namespace {

using safety::AliveSupervision;
using safety::DeadlineSupervision;
using safety::EntityStatus;
using safety::EscalationLevel;
using safety::EscalationPolicy;
using safety::HealthSupervisor;
using safety::HeartbeatEmitter;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::SimTime;
using sim::Telemetry;
using util::Bytes;

std::uint64_t seq_of(const Telemetry& t, std::string_view component,
                     std::string_view kind) {
  const sim::TraceEvent* e = t.bus->find_first(component, kind);
  return e ? e->seq : 0;
}

// ---------------------------------------------------------------------------
// Alive supervision

TEST(Supervisor, HealthyHeartbeatsStayOk) {
  Scheduler sched;
  HealthSupervisor sup(sched, "sup");
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 10;
  cfg.min_margin = 2;
  cfg.max_margin = 2;
  sup.supervise_alive("ecu.brake", cfg);
  HeartbeatEmitter hb(sched, sup, "ecu.brake", SimTime::from_ms(1));
  hb.start();
  sup.start();
  sched.run_until(SimTime::from_ms(100));
  EXPECT_EQ(sup.status("ecu.brake"), EntityStatus::kOk);
  EXPECT_EQ(sup.escalation("ecu.brake"), EscalationLevel::kNone);
  EXPECT_EQ(sup.expirations(), 0u);
  EXPECT_GE(sup.cycles(), 9u);
  EXPECT_GE(sup.heartbeats(), 90u);
  EXPECT_EQ(hb.suppressed(), 0u);
}

TEST(Supervisor, MissedHeartbeatsFailThenExpire) {
  Scheduler sched;
  Telemetry t;
  HealthSupervisor sup(sched, "sup");
  sup.bind_telemetry(t);
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 2;  // a 5 ms producer beats twice per 10 ms window
  cfg.min_margin = 1;
  cfg.max_margin = 1;
  EscalationPolicy esc;
  esc.failed_tolerance = 1;  // one FAILED cycle tolerated, expire on the 2nd
  sup.supervise_alive("ecu.brake", cfg, esc);

  std::vector<EntityStatus> transitions;
  sup.set_status_handler([&](const std::string&, EntityStatus s) {
    transitions.push_back(s);
  });

  // Beats for the first 35 ms, then silence.
  sim::PeriodicTask beats(
      sched, SimTime::from_ms(5),
      [&] {
        if (sched.now() <= SimTime::from_ms(35)) sup.alive("ecu.brake");
      },
      SimTime::from_ms(5));
  sup.start();
  sched.run_until(SimTime::from_ms(55));
  EXPECT_EQ(sup.status("ecu.brake"), EntityStatus::kFailed);
  sched.run_until(SimTime::from_ms(100));
  beats.stop();
  EXPECT_EQ(sup.status("ecu.brake"), EntityStatus::kExpired);
  EXPECT_EQ(sup.expired_count(), 1u);
  EXPECT_EQ(sup.expirations(), 1u);
  // Cycle at 50ms fails (last beat 35ms), cycle at 60ms expires. Detection
  // latency runs from the last good beat to the expiry decision: 25 ms.
  EXPECT_EQ(sup.expired_at("ecu.brake"), SimTime::from_ms(60));
  EXPECT_EQ(sup.detection_latency("ecu.brake"), SimTime::from_ms(25));
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_EQ(transitions[transitions.size() - 2], EntityStatus::kFailed);
  EXPECT_EQ(transitions.back(), EntityStatus::kExpired);

  const std::uint64_t failed = seq_of(t, "supervisor.sup", "entity_failed");
  const std::uint64_t expired = seq_of(t, "supervisor.sup", "entity_expired");
  ASSERT_NE(failed, 0u);
  ASSERT_NE(expired, 0u);
  EXPECT_LT(failed, expired);
  EXPECT_EQ(t.metrics->counter_value("supervisor.sup.expirations"), 1u);
}

TEST(Supervisor, MarginsTolerateJitterButNotFloods) {
  Scheduler sched;
  HealthSupervisor sup(sched, "sup");
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 10;
  cfg.min_margin = 2;
  cfg.max_margin = 2;
  EscalationPolicy esc;
  esc.failed_tolerance = 0;  // expire on the first bad cycle
  sup.supervise_alive("ecu.adas", cfg, esc);
  sup.start();
  // 8 beats per cycle = expected - 2: inside the margin.
  sim::PeriodicTask ok_beats(
      sched, SimTime::from_ms(10),
      [&] {
        for (int i = 0; i < 8; ++i) sup.alive("ecu.adas");
      },
      SimTime::from_ms(1));
  sched.run_until(SimTime::from_ms(50));
  ok_beats.stop();
  EXPECT_EQ(sup.status("ecu.adas"), EntityStatus::kOk);
  // A babbling component (beyond expected + max_margin) is just as dead.
  sched.schedule_after(SimTime::from_ms(1), [&] {
    for (int i = 0; i < 30; ++i) sup.alive("ecu.adas");
  });
  sched.run_until(SimTime::from_ms(70));
  EXPECT_EQ(sup.status("ecu.adas"), EntityStatus::kExpired);
}

// ---------------------------------------------------------------------------
// Deadline + logical supervision

TEST(Supervisor, DeadlineViolationFailsTheCycle) {
  Scheduler sched;
  Telemetry t;
  HealthSupervisor sup(sched, "sup");
  sup.bind_telemetry(t);
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 1;
  cfg.max_margin = 100;  // alive indications are not under test here
  EscalationPolicy esc;
  esc.failed_tolerance = 0;
  sup.supervise_alive("task.ctrl", cfg, esc);
  sup.set_deadline("task.ctrl", {SimTime::zero(), SimTime::from_ms(2)});
  sup.start();

  sim::PeriodicTask beats(
      sched, SimTime::from_ms(5), [&] { sup.alive("task.ctrl"); },
      SimTime::from_ms(1));
  // In-budget execution: 1 ms.
  sched.schedule_at(SimTime::from_ms(2), [&] { sup.deadline_start("task.ctrl"); });
  sched.schedule_at(SimTime::from_ms(3), [&] { sup.deadline_end("task.ctrl"); });
  sched.run_until(SimTime::from_ms(10));
  EXPECT_EQ(sup.status("task.ctrl"), EntityStatus::kOk);
  // Budget blown: 5 ms > max 2 ms.
  sched.schedule_at(SimTime::from_ms(12), [&] { sup.deadline_start("task.ctrl"); });
  sched.schedule_at(SimTime::from_ms(17), [&] { sup.deadline_end("task.ctrl"); });
  sched.run_until(SimTime::from_ms(25));
  beats.stop();
  EXPECT_EQ(sup.status("task.ctrl"), EntityStatus::kExpired);
  EXPECT_EQ(t.bus->count("supervisor.sup", "deadline_violation"), 1u);
}

TEST(Supervisor, LogicalSupervisionCatchesBadTransition) {
  Scheduler sched;
  Telemetry t;
  HealthSupervisor sup(sched, "sup");
  sup.bind_telemetry(t);
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 1;
  cfg.max_margin = 100;
  EscalationPolicy esc;
  esc.failed_tolerance = 0;
  sup.supervise_alive("task.boot", cfg, esc);
  // Allowed control flow: 1 -> 2 -> 3, plus the 3 -> 1 loop edge.
  sup.add_logical_transition("task.boot", 1, 2);
  sup.add_logical_transition("task.boot", 2, 3);
  sup.add_logical_transition("task.boot", 3, 1);
  sup.start();
  sim::PeriodicTask beats(
      sched, SimTime::from_ms(5), [&] { sup.alive("task.boot"); },
      SimTime::from_ms(1));
  sched.schedule_at(SimTime::from_ms(2), [&] {
    sup.checkpoint("task.boot", 1);
    sup.checkpoint("task.boot", 2);
    sup.checkpoint("task.boot", 3);
    sup.checkpoint("task.boot", 1);
  });
  sched.run_until(SimTime::from_ms(10));
  EXPECT_EQ(sup.status("task.boot"), EntityStatus::kOk);
  // Jumping 2 -> 1 (skipping checkpoint 3) is a control-flow violation.
  sched.schedule_at(SimTime::from_ms(12), [&] {
    sup.checkpoint("task.boot", 2);  // 1 -> 2: allowed continuation
    sup.checkpoint("task.boot", 1);  // 2 -> 1: not in the graph
  });
  sched.run_until(SimTime::from_ms(25));
  beats.stop();
  EXPECT_EQ(sup.status("task.boot"), EntityStatus::kExpired);
  EXPECT_EQ(t.bus->count("supervisor.sup", "logical_violation"), 1u);
}

// ---------------------------------------------------------------------------
// Escalation ladder + reset backoff

TEST(Supervisor, EscalationClimbsLadderThenRecovers) {
  Scheduler sched;
  Telemetry t;
  HealthSupervisor sup(sched, "sup");
  sup.bind_telemetry(t);
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 2;
  cfg.min_margin = 1;
  cfg.max_margin = 1;
  EscalationPolicy esc;
  esc.failed_tolerance = 0;
  esc.max_resets = 2;  // 2 failed attempts per rung
  esc.reset_backoff = SimTime::from_ms(5);
  esc.backoff_multiplier = 2.0;
  esc.max_backoff = SimTime::from_ms(20);
  esc.domain = "body";
  sup.supervise_alive("ecu.body", cfg, esc);

  // The component stays dead until t = 120 ms; resets fail before that.
  bool component_up = false;
  sched.schedule_at(SimTime::from_ms(120), [&] { component_up = true; });
  int reset_calls = 0;
  sup.set_reset_handler("ecu.body", [&](const std::string&) {
    ++reset_calls;
    return component_up;
  });
  std::vector<std::pair<std::string, EscalationLevel>> degrades;
  sup.set_degrade_handler([&](const std::string& domain, EscalationLevel l) {
    degrades.emplace_back(domain, l);
  });
  // Heartbeats flow only while the component is up: the entity expires on
  // the first cycle and, once reset, stays healthy with no re-expiry.
  HeartbeatEmitter hb(sched, sup, "ecu.body", SimTime::from_ms(5),
                      [&] { return component_up; });
  hb.start();
  sup.start();

  sched.run_until(SimTime::from_ms(200));
  EXPECT_EQ(sup.status("ecu.body"), EntityStatus::kOk);
  EXPECT_EQ(sup.escalation("ecu.body"), EscalationLevel::kNone);
  EXPECT_FALSE(sup.limp_home());
  EXPECT_GT(reset_calls, 4);  // several storm-bounded attempts before success
  EXPECT_EQ(sup.resets_succeeded(), 1u);
  EXPECT_EQ(sup.resets_attempted(), static_cast<std::uint64_t>(reset_calls));

  // Ladder: domain degrade after 2 failed resets, limp-home after 4, and the
  // recovery hands the domain back (kNone) exactly once.
  ASSERT_GE(degrades.size(), 3u);
  EXPECT_EQ(degrades[0],
            std::make_pair(std::string("body"), EscalationLevel::kDomainDegrade));
  EXPECT_EQ(degrades[1],
            std::make_pair(std::string("body"), EscalationLevel::kLimpHome));
  EXPECT_EQ(degrades.back(),
            std::make_pair(std::string("body"), EscalationLevel::kNone));
  EXPECT_EQ(degrades.size(), 3u);

  const std::uint64_t expired = seq_of(t, "supervisor.sup", "entity_expired");
  const std::uint64_t escalate = seq_of(t, "supervisor.sup", "escalate");
  const std::uint64_t reset_ok = seq_of(t, "supervisor.sup", "reset_ok");
  const std::uint64_t recovered = seq_of(t, "supervisor.sup", "entity_recovered");
  ASSERT_NE(expired, 0u);
  ASSERT_NE(escalate, 0u);
  ASSERT_NE(reset_ok, 0u);
  ASSERT_NE(recovered, 0u);
  EXPECT_LT(expired, reset_ok);
  EXPECT_LT(escalate, reset_ok);
  EXPECT_LT(reset_ok, recovered);

  // Backoff trace must be bounded by max_backoff.
  const sim::TraceId k_backoff = t.bus->lookup("reset_backoff");
  ASSERT_NE(k_backoff, 0u);
  std::uint64_t max_seen_ns = 0;
  for (std::size_t i = 0; i < t.bus->size(); ++i) {
    const sim::TraceEvent& e = t.bus->event(i);
    if (e.kind != k_backoff) continue;
    const auto pos = e.detail.find("ns=");
    ASSERT_NE(pos, std::string::npos);
    max_seen_ns = std::max(
        max_seen_ns,
        static_cast<std::uint64_t>(std::stoull(e.detail.substr(pos + 3))));
  }
  EXPECT_GT(max_seen_ns, 0u);
  EXPECT_LE(max_seen_ns, static_cast<std::uint64_t>(SimTime::from_ms(20).ns));
}

TEST(Supervisor, RecoveredEntitySurvivesThePartialWindow) {
  // After a successful reset the partial supervision window must not be
  // evaluated (the fresh component cannot have beaten earlier in it), and
  // the resumed heartbeats must keep the entity kOk with no re-expiry.
  Scheduler sched;
  HealthSupervisor sup(sched, "sup");
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(10);
  cfg.expected = 10;
  cfg.min_margin = 2;
  cfg.max_margin = 2;
  EscalationPolicy esc;
  esc.failed_tolerance = 0;
  esc.reset_backoff = SimTime::from_ms(3);
  sup.supervise_alive("ecu.x", cfg, esc);
  bool up = true;
  sched.schedule_at(SimTime::from_ms(30), [&] { up = false; });
  sched.schedule_at(SimTime::from_ms(55), [&] { up = true; });
  sup.set_reset_handler("ecu.x", [&](const std::string&) { return up; });
  HeartbeatEmitter hb(sched, sup, "ecu.x", SimTime::from_ms(1),
                      [&] { return up; });
  hb.start();
  sup.start();
  sched.run_until(SimTime::from_ms(200));
  EXPECT_EQ(sup.status("ecu.x"), EntityStatus::kOk);
  EXPECT_EQ(sup.expirations(), 1u);  // exactly one incident, no re-expiry
  EXPECT_GT(hb.suppressed(), 0u);
}

// ---------------------------------------------------------------------------
// Hot-standby redundant gateway

struct Sink final : ivn::CanNode {
  using ivn::CanNode::CanNode;
  void on_frame(const ivn::CanFrame& f, SimTime) override { rx.push_back(f); }
  std::vector<ivn::CanFrame> rx;
};

ivn::CanFrame make_frame(std::uint32_t id) {
  ivn::CanFrame f;
  f.id = id;
  f.data = Bytes{0x11, 0x22};
  return f;
}

struct RedundantRig {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus body{sched, "can.body", 500'000};
  ivn::CanBus chassis{sched, "can.chassis", 500'000};
  gateway::RedundantGateway rgw{sched, "gw"};
  Sink sender{"sender"};
  Sink receiver{"receiver"};

  RedundantRig() {
    body.bind_telemetry(t);
    chassis.bind_telemetry(t);
    rgw.bind_telemetry(t);
    rgw.add_domain("body", &body);
    rgw.add_domain("chassis", &chassis);
    rgw.add_route(0x100, "body", "chassis", /*safety_critical=*/true);
    body.attach(&sender);
    chassis.attach(&receiver);
  }
};

TEST(RedundantGateway, StandbyShadowsWithoutDoubleDelivery) {
  RedundantRig rig;
  for (int i = 0; i < 5; ++i) {
    rig.sched.schedule_at(SimTime::from_ms(1 + i),
                          [&] { rig.body.send(&rig.sender, make_frame(0x100)); });
  }
  rig.sched.run();
  // Exactly one copy per frame reaches the destination (the active's), while
  // the standby's shadow pipeline admitted the same five frames.
  EXPECT_EQ(rig.receiver.rx.size(), 5u);
  EXPECT_EQ(rig.rgw.active().stats().forwarded, 5u);
  EXPECT_EQ(rig.rgw.standby().stats().forwarded, 0u);
  EXPECT_EQ(rig.rgw.standby().shadow_forwarded(), 5u);
}

TEST(RedundantGateway, SyncReplicatesDynamicState) {
  RedundantRig rig;
  gateway::DegradedModeConfig cfg;
  cfg.window = SimTime::from_ms(10);
  cfg.degrade_threshold = 5;
  rig.rgw.enable_degraded_mode(cfg);
  rig.rgw.start_sync(SimTime::from_ms(5));
  // A fault report lands only on the active; replication must carry the
  // resulting degraded mode to the standby before any failover needs it.
  rig.sched.schedule_at(SimTime::from_ms(1),
                        [&] { rig.rgw.active().report_domain_fault("body", 6); });
  rig.sched.schedule_at(SimTime::from_ms(11), [&] {
    EXPECT_EQ(rig.rgw.active().mode("body"), gateway::GatewayMode::kDegraded);
  });
  rig.sched.run_until(SimTime::from_ms(16));  // sync at 15ms sees the mode
  rig.rgw.stop_sync();
  EXPECT_EQ(rig.rgw.standby().mode("body"), gateway::GatewayMode::kDegraded);
  EXPECT_GT(rig.rgw.syncs(), 0u);
}

TEST(RedundantGateway, SupervisedFailoverMeasuresDowntime) {
  // The full tentpole chain: FaultPlan crashes the active gateway; missed
  // heartbeats expire the supervised entity; the reset handler promotes the
  // standby; traffic resumes; the repaired unit rejoins as standby; the
  // plan ends with zero unrecovered faults.
  RedundantRig rig;
  rig.rgw.start_sync(SimTime::from_ms(10));
  FaultPlan plan(rig.sched, 17);
  plan.bind_telemetry(rig.t);
  plan.on("gw.active", FaultKind::kCrash, [&](const FaultSpec&, bool active) {
    rig.rgw.set_active_down(active);
    if (!active) plan.notify_recovered("gw.active");
  });
  plan.window(SimTime::from_ms(50), SimTime::from_ms(60),
              {"gw.active", FaultKind::kCrash});

  HealthSupervisor sup(rig.sched, "sup");
  sup.bind_telemetry(rig.t);
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(5);
  cfg.expected = 5;
  cfg.min_margin = 2;
  cfg.max_margin = 2;
  EscalationPolicy esc;
  esc.failed_tolerance = 1;
  sup.supervise_alive("gw.active", cfg, esc);
  sup.set_reset_handler("gw.active",
                        [&](const std::string&) { return rig.rgw.failover(); });
  // Heartbeats come from whichever unit is currently active.
  HeartbeatEmitter hb(rig.sched, sup, "gw.active", SimTime::from_ms(1),
                      [&] { return !rig.rgw.active().offline(); });
  hb.start();
  sup.start();

  sim::PeriodicTask traffic(
      rig.sched, SimTime::from_ms(2),
      [&] { rig.body.send(&rig.sender, make_frame(0x100)); },
      SimTime::from_ms(2));
  rig.sched.run_until(SimTime::from_ms(200));
  traffic.stop();

  // Failover happened, the promoted unit is b, and traffic kept flowing.
  EXPECT_EQ(rig.rgw.failovers(), 1u);
  EXPECT_EQ(rig.rgw.active().trace().component(), "gw.b");
  EXPECT_TRUE(rig.rgw.active().forwarding());
  EXPECT_FALSE(rig.rgw.active().offline());
  EXPECT_EQ(sup.status("gw.active"), EntityStatus::kOk);
  EXPECT_EQ(plan.unrecovered(), 0u);

  // Downtime: the crash at 50ms was detected within a few supervision
  // cycles, and the frames sent in that gap are exactly the measured loss.
  const SimTime detect = rig.rgw.last_detection_latency();
  EXPECT_GE(detect, SimTime::from_ms(5));
  EXPECT_LE(detect, SimTime::from_ms(30));
  EXPECT_GE(rig.rgw.last_failover_frames_lost(), 2u);
  EXPECT_LE(rig.rgw.last_failover_frames_lost(), 15u);
  // Receiver missed only the downtime window out of ~100 sent frames.
  EXPECT_GE(rig.receiver.rx.size(), 80u);

  // Causal chain on the shared timeline.
  const std::uint64_t inject = seq_of(rig.t, "faultplan", "inject");
  const std::uint64_t down = seq_of(rig.t, "rgw.gw", "active_down");
  const std::uint64_t expired = seq_of(rig.t, "supervisor.sup", "entity_expired");
  const std::uint64_t failover = seq_of(rig.t, "rgw.gw", "failover");
  const std::uint64_t rejoin = seq_of(rig.t, "rgw.gw", "standby_rejoin");
  const std::uint64_t recovered = seq_of(rig.t, "faultplan", "recovered");
  ASSERT_NE(inject, 0u);
  ASSERT_NE(down, 0u);
  ASSERT_NE(expired, 0u);
  ASSERT_NE(failover, 0u);
  ASSERT_NE(rejoin, 0u);
  ASSERT_NE(recovered, 0u);
  EXPECT_LT(inject, down);
  EXPECT_LT(down, expired);
  EXPECT_LT(expired, failover);
  EXPECT_LT(failover, rejoin);
  EXPECT_LT(rejoin, recovered);
}

TEST(RedundantGateway, ShortBlipResumesWithoutFailover) {
  // A crash shorter than the detection window clears before the supervisor
  // expires the entity: the active simply resumes, no switchover.
  RedundantRig rig;
  FaultPlan plan(rig.sched, 17);
  plan.on("gw.active", FaultKind::kCrash, [&](const FaultSpec&, bool active) {
    rig.rgw.set_active_down(active);
    if (!active) plan.notify_recovered("gw.active");
  });
  plan.window(SimTime::from_ms(50), SimTime::from_ms(3),
              {"gw.active", FaultKind::kCrash});
  HealthSupervisor sup(rig.sched, "sup");
  AliveSupervision cfg;
  cfg.period = SimTime::from_ms(20);
  cfg.expected = 20;
  cfg.min_margin = 10;
  cfg.max_margin = 2;
  EscalationPolicy esc;
  esc.failed_tolerance = 2;
  sup.supervise_alive("gw.active", cfg, esc);
  sup.set_reset_handler("gw.active",
                        [&](const std::string&) { return rig.rgw.failover(); });
  HeartbeatEmitter hb(rig.sched, sup, "gw.active", SimTime::from_ms(1),
                      [&] { return !rig.rgw.active().offline(); });
  hb.start();
  sup.start();
  rig.sched.run_until(SimTime::from_ms(150));
  EXPECT_EQ(rig.rgw.failovers(), 0u);
  EXPECT_EQ(sup.expirations(), 0u);
  EXPECT_EQ(rig.rgw.active().trace().component(), "gw.a");
  EXPECT_TRUE(rig.rgw.active().forwarding());
  EXPECT_EQ(plan.unrecovered(), 0u);
}

// ---------------------------------------------------------------------------
// 2oo2 dual-channel voter

adas::PerceptionSensor::Config quiet_sensor() {
  adas::PerceptionSensor::Config c;
  c.range_noise_m = 0.01;
  c.dropout_prob = 0.0;
  return c;
}

TEST(DualChannelVoter, CorroboratedDetectionsPass) {
  adas::PerceptionSensor a(quiet_sensor(), 1), b(quiet_sensor(), 2);
  adas::DualChannelVoter voter({}, &a, &b);
  const std::vector<adas::TruthObject> truth = {{40.0, 0.0, 5.0}};
  const auto out = voter.sample(truth);
  EXPECT_EQ(out.verdict, adas::VoteVerdict::kAgree);
  ASSERT_EQ(out.detections.size(), 1u);
  EXPECT_NEAR(out.detections[0].range_m, 40.0, 0.5);
  EXPECT_EQ(out.matched, 1u);
  EXPECT_EQ(voter.suppressed_detections(), 0u);
}

TEST(DualChannelVoter, GhostInOneChannelSuppressedAndAlarms) {
  adas::PerceptionSensor a(quiet_sensor(), 1), b(quiet_sensor(), 2);
  adas::DualChannelConfig cfg;
  cfg.disagree_alarm_threshold = 3;
  adas::DualChannelVoter voter(cfg, &a, &b);
  // LIDAR spoofing on channel A only: a ghost at 8 m no real object backs.
  adas::Detection ghost;
  ghost.range_m = 8.0;
  ghost.rel_speed_mps = 12.0;
  a.inject_ghost(ghost);
  const std::vector<adas::TruthObject> truth = {{60.0, 0.0, 3.0}};
  for (int i = 0; i < 3; ++i) {
    const auto out = voter.sample(truth);
    EXPECT_EQ(out.verdict, adas::VoteVerdict::kDisagree);
    // The real object still passes; the uncorroborated ghost does not.
    ASSERT_EQ(out.detections.size(), 1u);
    EXPECT_NEAR(out.detections[0].range_m, 60.0, 0.5);
    EXPECT_EQ(out.unmatched_a, 1u);
  }
  EXPECT_EQ(voter.suppressed_detections(), 3u);
  EXPECT_TRUE(voter.plausibility_alarm());
}

TEST(DualChannelVoter, TransientDisagreementDoesNotAlarm) {
  adas::PerceptionSensor a(quiet_sensor(), 1), b(quiet_sensor(), 2);
  adas::DualChannelConfig cfg;
  cfg.disagree_alarm_threshold = 3;
  adas::DualChannelVoter voter(cfg, &a, &b);
  const std::vector<adas::TruthObject> truth = {{60.0, 0.0, 3.0}};
  adas::Detection ghost;
  ghost.range_m = 8.0;
  a.inject_ghost(ghost);
  voter.sample(truth);  // disagree x1
  voter.sample(truth);  // disagree x2
  a.inject_ghost(std::nullopt);
  voter.sample(truth);  // agree resets the streak
  a.inject_ghost(ghost);
  voter.sample(truth);
  voter.sample(truth);
  EXPECT_FALSE(voter.plausibility_alarm());
  EXPECT_EQ(voter.frames_agreed(), 1u);
  EXPECT_EQ(voter.frames_disagreed(), 4u);
}

TEST(DualChannelVoter, SupervisorDrivesDegradedSingleChannel) {
  // The supervisor's status handler is the wiring point: a failed sensor
  // channel drops the voter to 1oo1 with scaled confidence, and recovery
  // restores 2oo2.
  Scheduler sched;
  adas::PerceptionSensor a(quiet_sensor(), 1), b(quiet_sensor(), 2);
  adas::DualChannelConfig cfg;
  cfg.degraded_confidence = 0.5;
  adas::DualChannelVoter voter(cfg, &a, &b);

  HealthSupervisor sup(sched, "adas");
  AliveSupervision alive_cfg;
  alive_cfg.period = SimTime::from_ms(10);
  alive_cfg.expected = 10;
  alive_cfg.min_margin = 2;
  alive_cfg.max_margin = 2;
  EscalationPolicy esc;
  esc.failed_tolerance = 0;
  esc.reset_backoff = SimTime::from_ms(10);
  sup.supervise_alive("sensor.a", alive_cfg, esc);
  sup.set_status_handler([&](const std::string& entity, EntityStatus s) {
    if (entity == "sensor.a") {
      voter.set_channel_failed(0, s != EntityStatus::kOk);
    }
  });
  bool sensor_a_up = true;
  sched.schedule_at(SimTime::from_ms(30), [&] { sensor_a_up = false; });
  sched.schedule_at(SimTime::from_ms(80), [&] { sensor_a_up = true; });
  sup.set_reset_handler("sensor.a",
                        [&](const std::string&) { return sensor_a_up; });
  HeartbeatEmitter hb(sched, sup, "sensor.a", SimTime::from_ms(1),
                      [&] { return sensor_a_up; });
  hb.start();
  sup.start();

  const std::vector<adas::TruthObject> truth = {{50.0, 0.0, 4.0}};
  std::vector<adas::VoteVerdict> verdicts;
  std::vector<double> confidences;
  sim::PeriodicTask frames(
      sched, SimTime::from_ms(10),
      [&] {
        const auto out = voter.sample(truth);
        verdicts.push_back(out.verdict);
        if (!out.detections.empty()) {
          confidences.push_back(out.detections[0].confidence);
        }
      },
      SimTime::from_ms(7));
  sched.run_until(SimTime::from_ms(150));
  frames.stop();

  // The verdict sequence walks 2oo2 -> 1oo1 degraded -> 2oo2.
  EXPECT_EQ(verdicts.front(), adas::VoteVerdict::kAgree);
  EXPECT_NE(std::find(verdicts.begin(), verdicts.end(),
                      adas::VoteVerdict::kDegradedSingle),
            verdicts.end());
  EXPECT_EQ(verdicts.back(), adas::VoteVerdict::kAgree);
  EXPECT_GT(voter.frames_degraded(), 0u);
  // Degraded frames carry the scaled-down confidence.
  double min_conf = 1.0;
  for (double c : confidences) min_conf = std::min(min_conf, c);
  EXPECT_LE(min_conf, 0.5);
}

TEST(DualChannelVoter, BothChannelsFailedMeansNoData) {
  adas::PerceptionSensor a(quiet_sensor(), 1), b(quiet_sensor(), 2);
  adas::DualChannelVoter voter({}, &a, &b);
  voter.set_channel_failed(0, true);
  voter.set_channel_failed(1, true);
  const auto out = voter.sample({{30.0, 0.0, 2.0}});
  EXPECT_EQ(out.verdict, adas::VoteVerdict::kNoData);
  EXPECT_TRUE(out.detections.empty());
}

}  // namespace
}  // namespace aseck
