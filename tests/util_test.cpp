// Unit tests for the util module: bytes, rng, crc, stats, time.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>

#include "util/bytes.hpp"
#include "util/crc.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace aseck::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes b = {0x00, 0x01, 0xde, 0xad, 0xbe, 0xef, 0xff};
  EXPECT_EQ(to_hex(b), "0001deadbeefff");
  EXPECT_EQ(from_hex("0001DEADbeefFF"), b);
}

TEST(Bytes, FromHexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2}, b = {3}, c = {};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
}

TEST(Bytes, XorInplace) {
  Bytes a = {0xff, 0x00, 0x55};
  const Bytes b = {0x0f, 0xf0, 0x55};
  xor_inplace(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
  Bytes short_buf = {1};
  EXPECT_THROW(xor_inplace(short_buf, b), std::invalid_argument);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(Bytes, EndianLoadsStores) {
  std::uint8_t buf[8];
  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ULL);
  store_le64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ULL);
  store_be32(buf, 0xcafebabe);
  EXPECT_EQ(load_be32(buf), 0xcafebabe);
  store_le32(buf, 0xcafebabe);
  EXPECT_EQ(load_le32(buf), 0xcafebabe);
}

TEST(Bytes, AppendBe) {
  Bytes out;
  append_be(out, 0x1234, 2);
  EXPECT_EQ(out, (Bytes{0x12, 0x34}));
  append_be(out, 0xff, 1);
  EXPECT_EQ(out, (Bytes{0x12, 0x34, 0xff}));
  EXPECT_THROW(append_be(out, 1, 0), std::invalid_argument);
  EXPECT_THROW(append_be(out, 1, 9), std::invalid_argument);
}

TEST(Bytes, HammingHelpers) {
  EXPECT_EQ(hamming_weight(0), 0);
  EXPECT_EQ(hamming_weight(0xff), 8);
  EXPECT_EQ(hamming_distance(0b1010, 0b0101), 4);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.uniform(17), 17u);
  }
  EXPECT_THROW(r.uniform(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng r(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, Uniform01Range) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(r.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
}

TEST(Rng, PoissonMean) {
  Rng r(19);
  RunningStats small, large;
  for (int i = 0; i < 50000; ++i) small.add(static_cast<double>(r.poisson(3.0)));
  for (int i = 0; i < 50000; ++i) large.add(static_cast<double>(r.poisson(100.0)));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 1.0);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(23), b(23);
  EXPECT_EQ(a.bytes(17).size(), 17u);
  EXPECT_EQ(Rng(23).bytes(33), Rng(23).bytes(33));
  (void)b;
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependence) {
  Rng parent(31);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Rng, ForStreamKnownAnswers) {
  // Pinned vectors: per-shard streams must reproduce these exact draws on
  // every platform and compiler, or previously published sharded-run
  // digests (E19) silently change. Do not update without bumping the
  // experiment digests.
  struct Vec {
    std::uint64_t seed, stream;
    std::uint64_t draws[4];
  };
  const Vec vecs[] = {
      {42, 0,
       {0x5f927cfa1ad326efULL, 0x56b4cc89cfa675eeULL, 0x28ec64234f2f024aULL,
        0x9e3e9091fa2e6aeaULL}},
      {42, 1,
       {0xfb4147ce248ac583ULL, 0x91398bf6117116f2ULL, 0x92845c726e93f14fULL,
        0x7ec80fafc2ab26f5ULL}},
      {42, 2,
       {0x08df30b33e8a8439ULL, 0xce6d98fe7104d8b9ULL, 0x780bb15c7c73d9a8ULL,
        0xa8aa08525691040cULL}},
      {42, 7,
       {0x96f98e76bf2256a3ULL, 0x37b77b2dad3c89d6ULL, 0x2cf90b9b3bd8e608ULL,
        0x6ef29cbb2afc56b0ULL}},
      {0xdeadbeefULL, 1600,
       {0x9a69b2c8e4f5baeeULL, 0x4bd9396606192bf8ULL, 0xe115991cb2d97db9ULL,
        0xd915eeef7af3ccd9ULL}},
  };
  for (const Vec& v : vecs) {
    Rng r = Rng::for_stream(v.seed, v.stream);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(r.next_u64(), v.draws[i])
          << "seed " << v.seed << " stream " << v.stream << " draw " << i;
    }
  }
}

TEST(Rng, ForStreamIsPureFunctionOfSeedAndId) {
  Rng a = Rng::for_stream(42, 3);
  (void)a.next_u64();  // consuming from one instance...
  Rng b = Rng::for_stream(42, 3);  // ...must not affect a fresh derivation
  Rng c = Rng::for_stream(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b.next_u64(), c.next_u64());
}

TEST(Rng, ForStreamAdjacentStreamsDoNotOverlap) {
  // Independence proxy for per-shard streams: the first 10k draws of
  // adjacent stream ids share no value at all. With 64-bit draws a single
  // collision among 30k values has probability ~ 2^-34; any overlap here
  // means the derivation collapsed streams.
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (std::uint64_t sid : {0ULL, 1ULL, 2ULL}) {
    Rng r = Rng::for_stream(42, sid);
    for (int i = 0; i < 10000; ++i) {
      seen.insert(r.next_u64());
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Rng, ForStreamDistinctSeedsDiverge) {
  Rng a = Rng::for_stream(1, 0);
  Rng b = Rng::for_stream(2, 0);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Crc, Crc32KnownAnswer) {
  // "123456789" -> 0xCBF43926 (classic check value).
  const Bytes msg = from_string("123456789");
  EXPECT_EQ(crc32_ieee(msg), 0xCBF43926u);
}

TEST(Crc, Crc8J1850KnownAnswer) {
  // SAE J1850 check value for "123456789" is 0x4B.
  EXPECT_EQ(crc8_j1850(from_string("123456789")), 0x4B);
}

TEST(Crc, Crc15DetectsChange) {
  const Bytes a = {0x12, 0x34, 0x56};
  Bytes b = a;
  b[1] ^= 0x01;
  EXPECT_NE(crc15_can(a), crc15_can(b));
  EXPECT_LT(crc15_can(a), 1u << 15);
}

TEST(Crc, CanFdCrcWidths) {
  const Bytes msg = from_string("payload data here");
  EXPECT_LT(crc17_canfd(msg), 1u << 17);
  EXPECT_LT(crc21_canfd(msg), 1u << 21);
  EXPECT_NE(crc17_canfd(msg), crc21_canfd(msg));
}

TEST(Crc, FlexRayCrcWidths) {
  const Bytes msg = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_LT(crc11_flexray(msg), 1u << 11);
  EXPECT_LT(crc24_flexray(msg), 1u << 24);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, RunningStatsMerge) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.add(i);
    all.add(i);
  }
  for (int i = 50; i < 120; ++i) {
    b.add(i * 1.5);
    all.add(i * 1.5);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Stats, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.02);
}

TEST(Stats, HistogramBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);   // clamps to bin 0
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_THROW(Histogram(0.0, 0.0, 4), std::invalid_argument);
}

TEST(Stats, HistogramNanSampleIsCountedNotBinned) {
  // Regression: NaN fails both range guards, so the old code fell through to
  // `static_cast<std::size_t>(NaN)` — UB (caught by UBSan) and an arbitrary
  // bin. NaN must leave every bin and the total untouched.
  Histogram h(0.0, 10.0, 10);
  h.add(5.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  std::size_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.bin_count(b);
  EXPECT_EQ(binned, 1u);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.nan_count(), 2u);
}

TEST(Stats, Pearson) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
  EXPECT_THROW(pearson(x, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Stats, WelchT) {
  RunningStats a, b;
  Rng r(37);
  for (int i = 0; i < 2000; ++i) {
    a.add(r.gaussian(0.0, 1.0));
    b.add(r.gaussian(1.0, 1.0));
  }
  EXPECT_GT(std::abs(welch_t(a, b)), 4.5);  // clearly distinguishable
  RunningStats c, d;
  for (int i = 0; i < 2000; ++i) {
    c.add(r.gaussian(0.0, 1.0));
    d.add(r.gaussian(0.0, 1.0));
  }
  EXPECT_LT(std::abs(welch_t(c, d)), 4.5);
}

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimTime::from_us(5).ns, 5000u);
  EXPECT_EQ(SimTime::from_ms(2).ns, 2000000u);
  EXPECT_EQ(SimTime::from_s(1).ns, 1000000000u);
  EXPECT_DOUBLE_EQ(SimTime::from_ms(1500).seconds(), 1.5);
  const SimTime a = SimTime::from_us(10), b = SimTime::from_us(3);
  EXPECT_EQ((a + b).ns, 13000u);
  EXPECT_EQ((a - b).ns, 7000u);
  EXPECT_EQ((b * 4).ns, 12000u);
  EXPECT_LT(b, a);
}

TEST(SimTime, Str) {
  EXPECT_EQ(SimTime::from_ns(12).str(), "12ns");
  EXPECT_NE(SimTime::from_ms(3).str().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::from_s(2).str().find("s"), std::string::npos);
}

}  // namespace
}  // namespace aseck::util
