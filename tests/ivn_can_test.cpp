// Tests for the CAN bus model: frame validity, bit-accurate timing,
// arbitration, fault confinement (bus-off), and stats.

#include <gtest/gtest.h>

#include "ivn/can.hpp"

namespace aseck::ivn {
namespace {

/// Test node recording received frames.
class RecordingNode : public CanNode {
 public:
  using CanNode::CanNode;
  void on_frame(const CanFrame& frame, SimTime at) override {
    rx.push_back(frame);
    rx_at.push_back(at);
  }
  void on_tx_done(const CanFrame& frame, SimTime at) override {
    tx_done.push_back(frame);
    (void)at;
  }
  void on_bus_off(SimTime) override { bus_off_seen = true; }

  std::vector<CanFrame> rx;
  std::vector<SimTime> rx_at;
  std::vector<CanFrame> tx_done;
  bool bus_off_seen = false;
};

CanFrame make_frame(std::uint32_t id, std::initializer_list<std::uint8_t> data) {
  CanFrame f;
  f.id = id;
  f.data = util::Bytes(data);
  return f;
}

TEST(CanFrame, Validity) {
  EXPECT_TRUE(make_frame(0x7ff, {1, 2, 3}).valid());
  EXPECT_FALSE(make_frame(0x800, {}).valid());  // 11-bit overflow
  CanFrame ext = make_frame(0x1fffffff, {});
  ext.extended = true;
  EXPECT_TRUE(ext.valid());
  ext.id = 0x20000000;
  EXPECT_FALSE(ext.valid());
  CanFrame big = make_frame(1, {});
  big.data.resize(9);
  EXPECT_FALSE(big.valid());
  CanFrame remote = make_frame(1, {});
  remote.remote = true;
  EXPECT_TRUE(remote.valid());
  remote.data.push_back(1);
  EXPECT_FALSE(remote.valid());  // RTR carries no data
}

TEST(CanFrame, FdValidity) {
  CanFrame fd = make_frame(1, {});
  fd.format = CanFormat::kFd;
  fd.data.resize(64);
  EXPECT_TRUE(fd.valid());
  fd.data.resize(63);
  EXPECT_FALSE(fd.valid());  // not a legal FD size
  fd.data.resize(12);
  EXPECT_TRUE(fd.valid());
  EXPECT_EQ(CanFrame::fd_round_up(9), 12u);
  EXPECT_EQ(CanFrame::fd_round_up(13), 16u);
  EXPECT_EQ(CanFrame::fd_round_up(64), 64u);
  EXPECT_EQ(CanFrame::fd_round_up(0), 0u);
}

TEST(CanFrame, WireBitsInExpectedRange) {
  // Base frame with 8 bytes: 1+11+1+1+1+4+64+15 = 98 stuffable bits,
  // + up to ~24 stuff bits + 13 trailer -> between 111 and 135.
  const CanFrame f = make_frame(0x123, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::size_t bits = f.wire_bits();
  EXPECT_GE(bits, 111u);
  EXPECT_LE(bits, 135u);
  // Zero-payload frame is much shorter.
  EXPECT_LT(make_frame(0x123, {}).wire_bits(), 70u);
  // Extended frames are longer than base frames.
  CanFrame ext = make_frame(0x123, {1, 2, 3, 4});
  ext.extended = true;
  ext.id = 0x04123456;
  EXPECT_GT(ext.wire_bits(), make_frame(0x123, {1, 2, 3, 4}).wire_bits());
}

TEST(CanFrame, StuffBitsWorstCase) {
  // All-zero payload with a zero ID maximizes stuffing.
  CanFrame f = make_frame(0, {0, 0, 0, 0, 0, 0, 0, 0});
  const std::size_t plain = f.stuff_region_bits().size();
  const std::size_t wired = f.wire_bits();
  EXPECT_GT(wired, plain + 13);  // must contain stuff bits beyond trailer
}

TEST(CanBus, DeliversToAllOtherNodes) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a"), b("b"), c("c");
  bus.attach(&a);
  bus.attach(&b);
  bus.attach(&c);
  EXPECT_TRUE(bus.send(&a, make_frame(0x100, {0xAA})));
  sched.run();
  EXPECT_TRUE(a.rx.empty());  // sender does not hear its own frame
  ASSERT_EQ(b.rx.size(), 1u);
  ASSERT_EQ(c.rx.size(), 1u);
  EXPECT_EQ(b.rx[0].id, 0x100u);
  ASSERT_EQ(a.tx_done.size(), 1u);
  EXPECT_EQ(bus.stats().frames_ok, 1u);
}

TEST(CanBus, TimingMatchesBitrate) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  const CanFrame f = make_frame(0x123, {1, 2, 3, 4, 5, 6, 7, 8});
  const SimTime expect = bus.frame_time(f);
  bus.send(&a, f);
  sched.run();
  ASSERT_EQ(b.rx_at.size(), 1u);
  EXPECT_EQ(b.rx_at[0], expect);
  // 500 kbit/s, ~120 bits -> ~240us.
  EXPECT_NEAR(expect.us(), 240.0, 40.0);
}

TEST(CanBus, ArbitrationLowestIdWins) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode lo("lo"), hi("hi"), rx("rx");
  bus.attach(&lo);
  bus.attach(&hi);
  bus.attach(&rx);
  // Enqueue high-priority *after* low-priority but before bus goes idle:
  // first frame seizes the bus; then arbitration picks the lower ID.
  bus.send(&hi, make_frame(0x700, {1}));
  bus.send(&hi, make_frame(0x701, {2}));
  bus.send(&lo, make_frame(0x100, {3}));
  sched.run();
  ASSERT_EQ(rx.rx.size(), 3u);
  EXPECT_EQ(rx.rx[0].id, 0x700u);  // already on the wire
  EXPECT_EQ(rx.rx[1].id, 0x100u);  // wins arbitration
  EXPECT_EQ(rx.rx[2].id, 0x701u);
}

TEST(CanBus, PriorityInversionLatency) {
  // A low-priority frame already transmitting delays a high-priority one by
  // at most one frame time (the classic CAN blocking term).
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a"), b("b"), rx("rx");
  bus.attach(&a);
  bus.attach(&b);
  bus.attach(&rx);
  const CanFrame low = make_frame(0x7fe, {1, 2, 3, 4, 5, 6, 7, 8});
  const CanFrame high = make_frame(0x001, {9});
  bus.send(&a, low);
  bus.send(&b, high);
  sched.run();
  ASSERT_EQ(rx.rx_at.size(), 2u);
  const SimTime high_latency = rx.rx_at[1];
  EXPECT_LE(high_latency.ns,
            (bus.frame_time(low) + bus.frame_time(high)).ns);
}

TEST(CanBus, FdFramesFasterWithBrs) {
  sim::Scheduler sched;
  CanBus slow(sched, "can0", 500000);
  CanBus fast(sched, "canfd0", 500000, 5000000);
  CanFrame fd = make_frame(0x100, {});
  fd.format = CanFormat::kFd;
  fd.data.resize(64, 0x5a);
  fd.brs = true;
  EXPECT_LT(fast.frame_time(fd).ns, slow.frame_time(fd).ns);
}

TEST(CanBus, RejectsInvalidAndBusOffNodes) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a");
  bus.attach(&a);
  EXPECT_FALSE(bus.send(&a, make_frame(0x800, {})));
  // Drive node to bus-off via the injector.
  bus.set_error_injector([](const CanFrame&, const CanNode&) { return true; });
  EXPECT_TRUE(bus.send(&a, make_frame(0x100, {})));
  sched.run();
  EXPECT_EQ(a.state(), CanNodeState::kBusOff);
  EXPECT_TRUE(a.bus_off_seen);
  EXPECT_FALSE(bus.send(&a, make_frame(0x100, {})));
  bus.recover(&a);
  EXPECT_EQ(a.state(), CanNodeState::kErrorActive);
  bus.set_error_injector(nullptr);
  EXPECT_TRUE(bus.send(&a, make_frame(0x100, {})));
  sched.run();
}

TEST(CanBus, FaultConfinementProgression) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode victim("victim"), other("other");
  bus.attach(&victim);
  bus.attach(&other);
  int errors_to_inject = 16;  // 16 * 8 = 128 -> error passive
  bus.set_error_injector([&](const CanFrame&, const CanNode& n) {
    if (n.name() == "victim" && errors_to_inject > 0) {
      --errors_to_inject;
      return true;
    }
    return false;
  });
  bus.send(&victim, make_frame(0x100, {1}));
  sched.run();
  // 16 errors raise TEC to 128 (error passive); the final successful
  // retransmit decrements to 127, which re-enters error active per spec.
  EXPECT_EQ(victim.state(), CanNodeState::kErrorActive);
  EXPECT_EQ(victim.tec(), 128 - 1);
  EXPECT_EQ(bus.stats().frames_error, 16u);
  EXPECT_EQ(bus.stats().frames_ok, 1u);
  // Continue to bus-off: need TEC > 255.
  errors_to_inject = 17;
  bus.send(&victim, make_frame(0x100, {1}));
  sched.run();
  EXPECT_EQ(victim.state(), CanNodeState::kBusOff);
}

TEST(CanBus, BusLoadAccounting) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  for (int i = 0; i < 10; ++i) bus.send(&a, make_frame(0x200, {1, 2, 3, 4}));
  sched.run();
  const double load = bus.stats().bus_load(sched.now());
  EXPECT_GT(load, 0.95);  // back-to-back frames kept the bus saturated
  EXPECT_LE(load, 1.01);
  EXPECT_EQ(bus.stats().frames_ok, 10u);
  EXPECT_GT(bus.stats().bits_on_wire, 10u * 60);
}

TEST(CanBus, DetachStopsDelivery) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  bus.detach(&b);
  bus.send(&a, make_frame(0x100, {}));
  sched.run();
  EXPECT_TRUE(b.rx.empty());
}

TEST(CanBus, TraceRecordsEvents) {
  sim::Scheduler sched;
  CanBus bus(sched, "can0", 500000);
  RecordingNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  bus.send(&a, make_frame(0x100, {}));
  sched.run();
  EXPECT_EQ(bus.trace().count("can0", "tx"), 1u);
  EXPECT_EQ(bus.trace().count("can0", "tx_start"), 1u);
}

}  // namespace
}  // namespace aseck::ivn
