// Tests for the unified telemetry core: TraceBus interning / ring buffer /
// subscribers, MetricsRegistry instruments and JSON export, TraceScope
// binding, and the cross-layer causal timeline (CAN spoof -> gateway drop ->
// IDS alert on one shared bus).

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"
#include "ids/detectors.hpp"
#include "ivn/ethernet.hpp"
#include "ivn/flexray.hpp"
#include "ivn/lin.hpp"
#include "ivn/someip.hpp"
#include "ivn/uds.hpp"
#include "sim/telemetry.hpp"

namespace aseck::sim {
namespace {

using util::SimTime;

TEST(TraceBus, InterningIsIdempotentAndStable) {
  TraceBus bus;
  const TraceId a = bus.intern("can0");
  const TraceId b = bus.intern("tx");
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(bus.intern("can0"), a);  // same spelling -> same id
  EXPECT_EQ(bus.lookup("can0"), a);
  EXPECT_EQ(bus.lookup("never-seen"), 0u);
  EXPECT_EQ(bus.name(a), "can0");
  EXPECT_EQ(bus.name(0), "");
  EXPECT_EQ(bus.interned(), 2u);
  EXPECT_EQ(bus.intern(""), 0u);  // empty stays the reserved id
}

TEST(TraceBus, RecordsWithMonotonicSeqAndQueries) {
  TraceBus bus;
  bus.record(SimTime::from_us(1), "can0", "tx", "id=100");
  bus.record(SimTime::from_us(2), "can0", "tx_error");
  bus.record(SimTime::from_us(3), "cgw", "drop", "no_route");
  ASSERT_EQ(bus.size(), 3u);
  EXPECT_LT(bus.event(0).seq, bus.event(1).seq);
  EXPECT_LT(bus.event(1).seq, bus.event(2).seq);
  EXPECT_EQ(bus.count("can0"), 2u);
  EXPECT_EQ(bus.count("can0", "tx"), 1u);
  EXPECT_EQ(bus.count("", "drop"), 1u);
  EXPECT_EQ(bus.count("lin0"), 0u);
  const TraceEvent* e = bus.find_first("cgw");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->detail, "no_route");
  EXPECT_EQ(bus.total_recorded(), 3u);
}

TEST(TraceBus, DisabledBusRecordsNothing) {
  TraceBus bus;
  bus.set_enabled(false);
  bus.record(SimTime::from_us(1), "c", "k");
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_recorded(), 0u);
  bus.set_enabled(true);
  bus.record(SimTime::from_us(2), "c", "k");
  EXPECT_EQ(bus.size(), 1u);
}

TEST(TraceBus, RingBufferKeepsNewestAndCountsEvictions) {
  TraceBus bus;
  bus.set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    bus.record(SimTime::from_us(static_cast<std::uint64_t>(i)), "c", "k",
               "n=" + std::to_string(i));
  }
  ASSERT_EQ(bus.size(), 4u);
  EXPECT_EQ(bus.evicted(), 6u);
  EXPECT_EQ(bus.total_recorded(), 10u);
  // Oldest-first window over the newest four records.
  EXPECT_EQ(bus.event(0).detail, "n=6");
  EXPECT_EQ(bus.event(3).detail, "n=9");
  // Seq stays monotonic across the wrap.
  EXPECT_LT(bus.event(0).seq, bus.event(3).seq);
}

TEST(TraceBus, ShrinkingCapacityEvictsOldest) {
  TraceBus bus;
  for (int i = 0; i < 6; ++i) {
    bus.record(SimTime::zero(), "c", "k", std::to_string(i));
  }
  bus.set_capacity(2);
  ASSERT_EQ(bus.size(), 2u);
  EXPECT_EQ(bus.event(0).detail, "4");
  EXPECT_EQ(bus.event(1).detail, "5");
  EXPECT_EQ(bus.evicted(), 4u);
  // Growing back does not resurrect anything.
  bus.set_capacity(0);
  EXPECT_EQ(bus.size(), 2u);
}

TEST(TraceBus, SubscriberSeesEveryEventEvenInRingMode) {
  TraceBus bus;
  bus.set_capacity(2);
  std::vector<std::uint64_t> seen;
  const std::uint64_t token =
      bus.subscribe([&](const TraceEvent& e) { seen.push_back(e.seq); });
  for (int i = 0; i < 5; ++i) bus.record(SimTime::zero(), "c", "k");
  EXPECT_EQ(seen.size(), 5u);  // tap sees evicted events too
  EXPECT_EQ(bus.size(), 2u);
  bus.unsubscribe(token);
  bus.record(SimTime::zero(), "c", "k");
  EXPECT_EQ(seen.size(), 5u);  // unsubscribed: no more callbacks
}

TEST(TraceBus, TimelineFormatsFilteredOrderedLines) {
  TraceBus bus;
  bus.record(SimTime::from_us(1), "can0", "tx", "id=100");
  bus.record(SimTime::from_us(2), "cgw", "drop");
  const std::string all = bus.timeline();
  EXPECT_NE(all.find("can0 tx id=100"), std::string::npos);
  EXPECT_NE(all.find("cgw drop"), std::string::npos);
  EXPECT_LT(all.find("can0"), all.find("cgw"));  // causal order
  const std::string only_gw = bus.timeline("cgw");
  EXPECT_EQ(only_gw.find("can0"), std::string::npos);
  EXPECT_NE(only_gw.find("cgw drop"), std::string::npos);
}

TEST(TraceScope, PrivateBusByDefaultThenRebinds) {
  TraceScope scope("can0");
  const TraceId k = scope.kind("tx");
  scope.record(SimTime::from_us(1), k, "id=1");
  EXPECT_EQ(scope.count("can0", "tx"), 1u);  // legacy sink behavior

  Telemetry shared;
  scope.bind(shared.bus);
  const TraceId k2 = scope.kind("tx");
  scope.record(SimTime::from_us(2), k2);
  EXPECT_EQ(shared.bus->count("can0", "tx"), 1u);  // lands on the shared bus
  EXPECT_EQ(scope.count("can0", "tx"), 1u);  // old private events not migrated
}

TEST(TraceScope, LocalDisableGatesRecording) {
  Telemetry shared;
  TraceScope scope("v2x.car1");
  scope.bind(shared.bus);
  scope.set_enabled(false);
  EXPECT_FALSE(scope.enabled());
  scope.record(SimTime::zero(), "bsm_tx");
  EXPECT_EQ(shared.bus->size(), 0u);
  scope.set_enabled(true);
  scope.record(SimTime::zero(), "bsm_tx");
  EXPECT_EQ(shared.bus->size(), 1u);
}

TEST(Metrics, CountersAndGaugesHaveStableIdentity) {
  MetricsRegistry reg;
  Counter& c = reg.counter("can.can0.frames_ok");
  c.inc();
  c.inc(4);
  EXPECT_EQ(&reg.counter("can.can0.frames_ok"), &c);  // same instrument
  EXPECT_EQ(reg.counter_value("can.can0.frames_ok"), 5u);
  EXPECT_EQ(reg.counter_value("absent"), 0u);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);

  Gauge& g = reg.gauge("bus.load");
  g.set(0.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(reg.find_gauge("bus.load")->value(), 0.5);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Metrics, HistogramBucketsAndPercentiles) {
  MetricsRegistry reg;
  LatencyHistogram& h = reg.histogram("gw.latency_us", 0.0, 100.0, 10);
  EXPECT_EQ(&reg.histogram("gw.latency_us", 0.0, 1.0, 2), &h);  // layout fixed
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 99.5);
  EXPECT_NEAR(h.mean(), 50.0, 0.01);
  for (std::size_t b = 0; b < h.buckets(); ++b) {
    EXPECT_EQ(h.bucket_count(b), 10u);  // uniform fill, 10 per bucket
  }
  EXPECT_NEAR(h.percentile(50), 50.0, 1.0);
  EXPECT_NEAR(h.percentile(95), 95.0, 1.0);
  // Clamping: out-of-range samples land in the edge buckets.
  h.record(-5.0);
  h.record(500.0);
  EXPECT_EQ(h.bucket_count(0), 11u);
  EXPECT_EQ(h.bucket_count(9), 11u);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
}

TEST(Metrics, HistogramNanSampleIsCountedNotBinned) {
  // Regression: a NaN latency sample used to hit the UB size_t cast in the
  // bucketing path and corrupt min/max/sum. It must be counted separately.
  MetricsRegistry reg;
  LatencyHistogram& h = reg.histogram("nan.test", 0.0, 100.0, 10);
  h.record(10.0);
  h.record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.nan_count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(Metrics, ScopedTimerRecordsOneSample) {
  MetricsRegistry reg;
  LatencyHistogram& h = reg.histogram("t", 0.0, 1e6, 8);
  {
    ScopedTimer t(h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(Metrics, JsonExportIsDeterministicAndComplete) {
  MetricsRegistry reg;
  reg.counter("b.count").inc(2);
  reg.counter("a.count").inc(1);
  reg.gauge("load").set(0.5);
  reg.histogram("lat", 0.0, 10.0, 2).record(3.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\":{\"a.count\":1,\"b.count\":2}"),
            std::string::npos);  // name-sorted
  EXPECT_NE(json.find("\"gauges\":{\"load\":0.5}"), std::string::npos);
  EXPECT_NE(json.find("\"lat\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Metrics, MergeFromFoldsCountersGaugesHistograms) {
  MetricsRegistry a, b;
  a.counter("shared.count").inc(3);
  b.counter("shared.count").inc(4);
  b.counter("only_b.count").inc(7);
  a.gauge("load").add(0.25);
  b.gauge("load").add(0.5);
  a.histogram("lat", 0.0, 10.0, 5).record(1.0);
  b.histogram("lat", 0.0, 10.0, 5).record(9.0);
  b.histogram("lat", 0.0, 10.0, 5).record(3.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter_value("shared.count"), 7u);
  EXPECT_EQ(a.counter_value("only_b.count"), 7u);
  EXPECT_DOUBLE_EQ(a.find_gauge("load")->value(), 0.75);
  LatencyHistogram& h = a.histogram("lat", 0.0, 10.0, 5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_DOUBLE_EQ(h.sum(), 13.0);
  // b is untouched.
  EXPECT_EQ(b.counter_value("shared.count"), 4u);
}

TEST(Metrics, MergeRejectsHistogramLayoutMismatch) {
  MetricsRegistry a, b;
  a.histogram("lat", 0.0, 10.0, 5).record(1.0);
  b.histogram("lat", 0.0, 20.0, 5).record(1.0);
  EXPECT_THROW(a.merge_from(b), std::invalid_argument);
}

TEST(Metrics, ShardedMergeJsonEqualsSingleRegistryJson) {
  // The sharded-world telemetry contract: recording the same samples into
  // k per-shard registries and merging them in ascending shard order must
  // export byte-identical JSON to recording everything into one registry.
  MetricsRegistry single;
  MetricsRegistry shards[3];
  auto record = [](MetricsRegistry& reg, int shard, int i) {
    reg.counter("city.rx").inc(static_cast<std::uint64_t>(i + 1));
    reg.gauge("load").add(0.125 * shard);
    reg.histogram("verify_us", 0.0, 1000.0, 16)
        .record(100.0 * shard + 10.0 * i);
  };
  for (int shard = 0; shard < 3; ++shard) {
    for (int i = 0; i < 5; ++i) {
      record(single, shard, i);
      record(shards[shard], shard, i);
    }
  }
  MetricsRegistry merged;
  for (int shard = 0; shard < 3; ++shard) merged.merge_from(shards[shard]);
  EXPECT_EQ(merged.to_json(), single.to_json());
}

TEST(Metrics, MergeFromEmptyAndIntoEmptyAreIdentities) {
  MetricsRegistry empty, filled, target;
  filled.counter("c").inc(2);
  filled.histogram("h", 0.0, 1.0, 2).record(0.5);
  const std::string before = filled.to_json();
  filled.merge_from(empty);
  EXPECT_EQ(filled.to_json(), before);
  target.merge_from(filled);
  EXPECT_EQ(target.to_json(), before);
}

// ---------------------------------------------------------------------------
// Cross-substrate integration

struct VehicleFixture {
  Scheduler sched;
  Telemetry telemetry;
  ivn::CanBus powertrain{sched, "powertrain", 500000};
  ivn::CanBus infotainment{sched, "infotainment", 500000};
  gateway::SecurityGateway gw{sched, "cgw"};
  ecu::Ecu engine{sched, "engine", 1};
  ecu::Ecu radio{sched, "radio", 2};
  ids::IdsEnsemble ids = ids::make_default_ensemble();

  VehicleFixture() {
    powertrain.bind_telemetry(telemetry);
    infotainment.bind_telemetry(telemetry);
    gw.bind_telemetry(telemetry);
    ids.bind_telemetry(telemetry);
    gw.add_domain("powertrain", &powertrain);
    gw.add_domain("infotainment", &infotainment);
    provision(engine);
    provision(radio);
    engine.attach_to(&powertrain);
    radio.attach_to(&infotainment);
    engine.boot();
    radio.boot();
  }

  static void provision(ecu::Ecu& e) {
    crypto::Block k{};
    e.provision(ecu::FirmwareImage{e.name() + "-fw", 1, util::Bytes(64, 1)}, k,
                k, k);
  }
};

TEST(CrossLayer, SpoofDropAlertIsOneCausallyOrderedTimeline) {
  VehicleFixture f;
  // The IDS taps the gateway's drop stream: every dropped frame is scored.
  f.gw.set_drop_observer([&](const std::string&, const ivn::CanFrame& frame,
                             gateway::DropReason) {
    f.ids.observe(frame, f.sched.now());
  });
  // A compromised radio spoofs a powertrain id with no route: CAN tx on the
  // infotainment bus -> gateway no-route drop -> IDS alert (unknown id).
  f.radio.send_frame(0x666, util::Bytes{0xde, 0xad});
  f.sched.run();

  TraceBus& bus = *f.telemetry.bus;
  const TraceEvent* tx = bus.find_first("infotainment", "tx");
  const TraceEvent* drop = bus.find_first("cgw", "drop");
  const TraceEvent* alert = bus.find_first("ids", "alert");
  ASSERT_NE(tx, nullptr);
  ASSERT_NE(drop, nullptr);
  ASSERT_NE(alert, nullptr);
  // One stream, causally ordered: spoof happened-before drop happened-before
  // alert.
  EXPECT_LT(tx->seq, drop->seq);
  EXPECT_LT(drop->seq, alert->seq);
  EXPECT_LE(tx->at, drop->at);
  EXPECT_LE(drop->at, alert->at);

  // The shared registry holds all three substrates' counters.
  MetricsRegistry& m = *f.telemetry.metrics;
  EXPECT_EQ(m.counter_value("can.infotainment.frames_ok"), 1u);
  EXPECT_EQ(m.counter_value("gateway.cgw.dropped_no_route"), 1u);
  EXPECT_EQ(m.counter_value("ids.alerts"), 1u);

  // And the human-readable timeline shows the chain in order.
  const std::string t = bus.timeline();
  EXPECT_LT(t.find("infotainment tx"), t.find("cgw drop"));
  EXPECT_LT(t.find("cgw drop"), t.find("ids alert"));
}

TEST(CrossLayer, SubscriberTapsGatewayDropsLive) {
  VehicleFixture f;
  int taps = 0;
  const TraceId cgw = f.telemetry.bus->intern("cgw");
  const TraceId drop = f.telemetry.bus->intern("drop");
  f.telemetry.bus->subscribe([&](const TraceEvent& e) {
    if (e.component == cgw && e.kind == drop) ++taps;
  });
  f.radio.send_frame(0x666, util::Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(taps, 1);
}

TEST(CrossLayer, EverySubstrateBindsOntoOneRegistry) {
  Scheduler sched;
  Telemetry t;

  ivn::CanBus can{sched, "can0", 500000};
  ivn::LinMaster lin{sched, "lin0", 19200};
  ivn::FlexRayBus flexray{sched, "fr0"};
  ivn::EthernetSwitch eth{sched, "sw0"};
  ivn::ServiceAcl acl;
  ivn::SomeIpServer someip{eth, "srv", ivn::mac_from_u64(1), &acl};
  ivn::UdsServer uds{{ivn::weak_xor_algorithm(0xC0FFEE)}, 7};
  gateway::SecurityGateway gw{sched, "cgw"};
  ids::IdsEnsemble ids = ids::make_default_ensemble();

  can.bind_telemetry(t);
  lin.bind_telemetry(t);
  flexray.bind_telemetry(t);
  eth.bind_telemetry(t);
  someip.bind_telemetry(t);
  uds.bind_telemetry(t);
  gw.bind_telemetry(t);
  ids.bind_telemetry(t);

  const std::string json = t.metrics->to_json();
  for (const char* key :
       {"can.can0.frames_ok", "lin.lin0.frames_ok", "flexray.fr0.static_frames",
        "ethernet.sw0.forwarded", "someip.srv.served", "uds.unlock_ok",
        "gateway.cgw.forwarded", "ids.alerts"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Rebinding carried the (zero) counters over without duplicating them.
  EXPECT_EQ(t.metrics->counter_value("can.can0.frames_ok"), 0u);
}

TEST(CrossLayer, RebindCarriesAccumulatedCountersOver) {
  Scheduler sched;
  ivn::CanBus can{sched, "can0", 500000};
  ecu::Ecu a{sched, "a", 1}, b{sched, "b", 2};
  VehicleFixture::provision(a);
  VehicleFixture::provision(b);
  a.attach_to(&can);
  b.attach_to(&can);
  a.boot();
  b.boot();
  a.send_frame(0x100, util::Bytes{0x01});
  sched.run();
  ASSERT_EQ(can.stats().frames_ok, 1u);

  // Late bind (e.g. a bus built before the platform existed): the counter
  // value must survive onto the shared registry.
  Telemetry t;
  can.bind_telemetry(t);
  EXPECT_EQ(t.metrics->counter_value("can.can0.frames_ok"), 1u);
  EXPECT_EQ(can.stats().frames_ok, 1u);
  a.send_frame(0x101, util::Bytes{0x02});
  sched.run();
  EXPECT_EQ(t.metrics->counter_value("can.can0.frames_ok"), 2u);
}

}  // namespace
}  // namespace aseck::sim
