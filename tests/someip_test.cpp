// Tests for the SOME/IP-style service layer: discovery-less request/response
// over the Ethernet switch, service ACLs, and MAC-authenticated methods.

#include <gtest/gtest.h>

#include "ivn/someip.hpp"

namespace aseck::ivn {
namespace {

using util::Bytes;

struct Fixture {
  sim::Scheduler sched;
  EthernetSwitch sw{sched, "sw0"};
  ServiceAcl acl;
  SomeIpServer server{sw, "adas-host", mac_from_u64(0x10), &acl};
  SomeIpClient display{sw, "display", mac_from_u64(0x20), /*client_id=*/0x0001};
  SomeIpClient rogue{sw, "rogue", mac_from_u64(0x30), /*client_id=*/0x0666};

  static constexpr ServiceId kSpeedService = 0x1001;
  static constexpr MethodId kGetSpeed = 0x0001;

  Fixture() {
    acl.allow(kSpeedService, 0x0001);
    server.offer(kSpeedService, kGetSpeed,
                 [](util::BytesView) { return Bytes{0x00, 0x64}; });
  }
};

TEST(SomeIp, MessageSerializeParseRoundTrip) {
  SomeIpMessage m;
  m.service = 0x1234;
  m.method = 0x5678;
  m.client = 0x9ABC;
  m.session = 0x0042;
  m.type = SomeIpMessage::Type::kNotification;
  m.payload = Bytes{1, 2, 3, 4, 5};
  const auto parsed = SomeIpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->service, m.service);
  EXPECT_EQ(parsed->method, m.method);
  EXPECT_EQ(parsed->client, m.client);
  EXPECT_EQ(parsed->session, m.session);
  EXPECT_EQ(parsed->type, m.type);
  EXPECT_EQ(parsed->payload, m.payload);
  EXPECT_FALSE(SomeIpMessage::parse(Bytes(5)).has_value());
}

TEST(SomeIp, RequestResponseHappyPath) {
  Fixture f;
  SomeIpError got_err = SomeIpError::kNotReachable;
  Bytes got_payload;
  f.display.call(mac_from_u64(0x10), Fixture::kSpeedService, Fixture::kGetSpeed,
                 {}, [&](SomeIpError e, util::BytesView p) {
                   got_err = e;
                   got_payload.assign(p.begin(), p.end());
                 });
  f.sched.run();
  EXPECT_EQ(got_err, SomeIpError::kOk);
  EXPECT_EQ(got_payload, (Bytes{0x00, 0x64}));
  EXPECT_EQ(f.server.served(), 1u);
}

TEST(SomeIp, AclBlocksUnauthorizedClient) {
  Fixture f;
  SomeIpError got_err = SomeIpError::kOk;
  f.rogue.call(mac_from_u64(0x10), Fixture::kSpeedService, Fixture::kGetSpeed,
               {}, [&](SomeIpError e, util::BytesView) { got_err = e; });
  f.sched.run();
  EXPECT_EQ(got_err, SomeIpError::kAccessDenied);
  EXPECT_EQ(f.server.denied_acl(), 1u);
  EXPECT_EQ(f.server.served(), 0u);
}

TEST(SomeIp, UnknownServiceAndMethod) {
  Fixture f;
  SomeIpError e1 = SomeIpError::kOk, e2 = SomeIpError::kOk;
  f.display.call(mac_from_u64(0x10), 0x9999, 1, {},
                 [&](SomeIpError e, util::BytesView) { e1 = e; });
  f.display.call(mac_from_u64(0x10), Fixture::kSpeedService, 0x9999, {},
                 [&](SomeIpError e, util::BytesView) { e2 = e; });
  f.sched.run();
  EXPECT_EQ(e1, SomeIpError::kUnknownService);
  EXPECT_EQ(e2, SomeIpError::kUnknownMethod);
}

TEST(SomeIp, AuthenticatedMethodRequiresMac) {
  Fixture f;
  const Bytes key(16, 0x5A);
  f.acl.allow(0x2001, 0x0001);
  f.acl.allow(0x2001, 0x0666);  // rogue is ACL-permitted but keyless
  f.server.offer(0x2001, 0x0001,
                 [](util::BytesView) { return Bytes{0xAA}; }, key);

  SomeIpError good_err = SomeIpError::kNotReachable;
  f.display.call(mac_from_u64(0x10), 0x2001, 0x0001, Bytes{0x01},
                 [&](SomeIpError e, util::BytesView) { good_err = e; }, key);
  SomeIpError bad_err = SomeIpError::kOk;
  f.rogue.call(mac_from_u64(0x10), 0x2001, 0x0001, Bytes{0x01},
               [&](SomeIpError e, util::BytesView) { bad_err = e; });
  SomeIpError wrong_key_err = SomeIpError::kOk;
  f.rogue.call(mac_from_u64(0x10), 0x2001, 0x0001, Bytes{0x01},
               [&](SomeIpError e, util::BytesView) { wrong_key_err = e; },
               Bytes(16, 0x77));
  f.sched.run();
  EXPECT_EQ(good_err, SomeIpError::kOk);
  EXPECT_EQ(bad_err, SomeIpError::kBadMac);
  EXPECT_EQ(wrong_key_err, SomeIpError::kBadMac);
  EXPECT_EQ(f.server.denied_mac(), 2u);
}

TEST(SomeIp, ResponseMacVerifiedByClient) {
  // A MITM switch port altering the response payload is detected because the
  // response trailer no longer verifies. We emulate by calling with the
  // right key but registering a server handler under a *different* key.
  Fixture f;
  const Bytes client_key(16, 0x5A);
  const Bytes server_key(16, 0x5B);
  f.acl.allow(0x2002, 0x0001);
  f.server.offer(0x2002, 0x0001,
                 [](util::BytesView) { return Bytes{0xBB}; }, server_key);
  SomeIpError err = SomeIpError::kOk;
  // Request MAC'd with the client's (wrong) key is rejected at the server
  // already; so instead test response-side verification via matching request
  // keys but a client that checks with a mismatched key variant.
  f.display.call(mac_from_u64(0x10), 0x2002, 0x0001, Bytes{0x01},
                 [&](SomeIpError e, util::BytesView) { err = e; }, client_key);
  f.sched.run();
  EXPECT_EQ(err, SomeIpError::kBadMac);
}

TEST(SomeIp, SessionsKeepConcurrentCallsApart) {
  Fixture f;
  f.acl.allow(0x3001, 0x0001);
  f.server.offer(0x3001, 0x0001, [](util::BytesView p) {
    Bytes out(p.begin(), p.end());
    out.push_back(0xEE);
    return out;
  });
  std::vector<Bytes> responses;
  for (int i = 0; i < 5; ++i) {
    f.display.call(mac_from_u64(0x10), 0x3001, 0x0001,
                   Bytes{static_cast<std::uint8_t>(i)},
                   [&](SomeIpError e, util::BytesView p) {
                     ASSERT_EQ(e, SomeIpError::kOk);
                     responses.emplace_back(p.begin(), p.end());
                   });
  }
  f.sched.run();
  ASSERT_EQ(responses.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)],
              (Bytes{static_cast<std::uint8_t>(i), 0xEE}));
  }
}

TEST(SomeIp, VlanIsolationStillApplies) {
  // Service-layer ACL composes with L2 VLAN separation: a client on the
  // wrong VLAN cannot even reach the server.
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0");
  ServiceAcl acl;
  acl.allow(0x1001, 0x0001);
  SomeIpServer server(sw, "srv", mac_from_u64(0x10), &acl);
  SomeIpClient client(sw, "cli", mac_from_u64(0x20), 0x0001);
  server.offer(0x1001, 1, [](util::BytesView) { return Bytes{1}; });
  sw.set_port_vlans(server.port(), {10});
  sw.set_port_vlans(client.port(), {20});
  bool called = false;
  client.call(mac_from_u64(0x10), 0x1001, 1, {},
              [&](SomeIpError, util::BytesView) { called = true; });
  sched.run();
  EXPECT_FALSE(called);  // frame never crossed the VLAN boundary
  EXPECT_EQ(server.served(), 0u);
}

}  // namespace
}  // namespace aseck::ivn
