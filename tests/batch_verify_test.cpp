// Differential and adversarial tests for the batch ECDSA verifier: every
// verdict must match the per-item slow oracle bit-for-bit, no matter how the
// batch is poisoned (corrupt signatures, stripped or tampered parity hints,
// null items, out-of-range scalars).

#include <gtest/gtest.h>

#include <vector>

#include "crypto/batch_verify.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"

namespace aseck::crypto {
namespace {

EcdsaPrivateKey test_key(std::uint8_t tag) {
  util::Bytes secret(32, tag);
  secret[0] = 0x11;  // keep the scalar nonzero for tag == 0
  return EcdsaPrivateKey::from_secret(secret);
}

Digest test_digest(std::uint32_t i) {
  util::Bytes msg{'b', 'a', 't', 'c', 'h'};
  util::append_be(msg, i, 4);
  return sha256(msg);
}

struct Signed {
  EcdsaPublicKey pub;
  Digest digest;
  EcdsaSignature sig;
};

std::vector<Signed> make_corpus(std::size_t n, std::size_t keys = 4) {
  std::vector<EcdsaPrivateKey> ks;
  for (std::size_t k = 0; k < keys; ++k) {
    ks.push_back(test_key(static_cast<std::uint8_t>(0x20 + k)));
  }
  std::vector<Signed> out;
  for (std::size_t i = 0; i < n; ++i) {
    const EcdsaPrivateKey& k = ks[i % ks.size()];
    const Digest d = test_digest(static_cast<std::uint32_t>(i));
    out.push_back({k.public_key(), d, k.sign_digest(d)});
  }
  return out;
}

std::vector<BatchVerifyItem> items_of(const std::vector<Signed>& corpus) {
  std::vector<BatchVerifyItem> items;
  for (const Signed& s : corpus) items.push_back({&s.pub, s.digest, &s.sig});
  return items;
}

void expect_matches_slow_oracle(const std::vector<BatchVerifyItem>& items,
                                const std::vector<bool>& got) {
  ASSERT_EQ(got.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const bool expected =
        items[i].pub && items[i].sig &&
        ecdsa_verify_digest_slow(*items[i].pub, items[i].digest,
                                 *items[i].sig);
    EXPECT_EQ(got[i], expected) << "item " << i;
  }
}

TEST(BatchVerify, SignerAttachesParityHint) {
  const auto corpus = make_corpus(8);
  for (const Signed& s : corpus) {
    ASSERT_TRUE(s.sig.has_r_parity());
    // The hint must decompress to a point whose x is exactly r.
    const auto R = p256::decompress(s.sig.r, s.sig.r_parity == 1);
    ASSERT_TRUE(R.has_value());
    EXPECT_EQ(R->x, s.sig.r);
  }
}

TEST(BatchVerify, ParityHintSurvivesEqualityAndNotSerialization) {
  const auto corpus = make_corpus(1);
  const EcdsaSignature& sig = corpus[0].sig;
  const auto round = EcdsaSignature::from_bytes(sig.to_bytes());
  ASSERT_TRUE(round.has_value());
  EXPECT_FALSE(round->has_r_parity());  // wire format is bare r||s
  EXPECT_EQ(*round, sig);               // equality ignores the hint
}

TEST(BatchVerify, AllValidBatchIsOneRlcCheck) {
  const auto corpus = make_corpus(32);
  const auto items = items_of(corpus);
  BatchVerifyStats st;
  const auto got = ecdsa_verify_batch(items, {}, &st);
  expect_matches_slow_oracle(items, got);
  EXPECT_EQ(st.items, 32u);
  EXPECT_EQ(st.rlc_checks, 1u);
  EXPECT_EQ(st.bisections, 0u);
  EXPECT_EQ(st.single_checks, 0u);
}

TEST(BatchVerify, BisectionIsolatesCorruptedSignatures) {
  auto corpus = make_corpus(16);
  // Corrupt two signatures in different halves.
  corpus[3].sig.s = add_mod(corpus[3].sig.s, U256::one(), p256::N());
  corpus[12].digest[0] ^= 0xff;
  const auto items = items_of(corpus);
  BatchVerifyStats st;
  const auto got = ecdsa_verify_batch(items, {}, &st);
  expect_matches_slow_oracle(items, got);
  EXPECT_GT(st.bisections, 0u);
  EXPECT_GT(st.single_checks, 0u);
}

TEST(BatchVerify, StrippedHintFallsBackPerItemButStaysCorrect) {
  auto corpus = make_corpus(8);
  for (std::size_t i = 0; i < corpus.size(); i += 2) {
    corpus[i].sig.r_parity = EcdsaSignature::kNoRParity;
  }
  const auto items = items_of(corpus);
  BatchVerifyStats st;
  const auto got = ecdsa_verify_batch(items, {}, &st);
  expect_matches_slow_oracle(items, got);
  EXPECT_EQ(st.single_checks, 4u);  // the stripped half
  EXPECT_EQ(st.rlc_checks, 1u);     // the hinted half still batches
}

TEST(BatchVerify, TamperedHintCostsWorkNotCorrectness) {
  auto corpus = make_corpus(8);
  corpus[5].sig.r_parity ^= 1;  // lie about R's parity on a VALID signature
  const auto items = items_of(corpus);
  BatchVerifyStats st;
  const auto got = ecdsa_verify_batch(items, {}, &st);
  // The flipped hint decompresses to -R, fails the RLC, and the singleton
  // leaf re-verifies with the standard (hint-free) path: still accepted.
  expect_matches_slow_oracle(items, got);
  EXPECT_TRUE(got[5]);
  EXPECT_GT(st.bisections, 0u);
}

TEST(BatchVerify, MalformedItemsMatchOracle) {
  auto corpus = make_corpus(10);
  std::vector<BatchVerifyItem> items = items_of(corpus);
  items[0].pub = nullptr;
  items[1].sig = nullptr;
  EcdsaSignature zero_r = corpus[2].sig;
  zero_r.r = U256{};
  items[2].sig = &zero_r;
  EcdsaSignature big_s = corpus[3].sig;
  big_s.s = p256::N();
  items[3].sig = &big_s;
  EcdsaPublicKey off_curve = corpus[4].pub;
  off_curve.point.y = add_mod(off_curve.point.y, U256::one(), p256::P());
  items[4].pub = &off_curve;
  const auto got = ecdsa_verify_batch(items);
  expect_matches_slow_oracle(items, got);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(got[static_cast<std::size_t>(i)]);
}

TEST(BatchVerify, DeterministicAcrossRunsAndSaltSensitive) {
  auto corpus = make_corpus(12);
  corpus[7].sig.r = add_mod(corpus[7].sig.r, U256::one(), p256::N());
  const auto items = items_of(corpus);
  BatchVerifyStats a, b;
  const auto run1 = ecdsa_verify_batch(items, {}, &a);
  const auto run2 = ecdsa_verify_batch(items, {}, &b);
  EXPECT_EQ(run1, run2);
  EXPECT_EQ(a.rlc_checks, b.rlc_checks);
  EXPECT_EQ(a.bisections, b.bisections);
  EXPECT_EQ(a.single_checks, b.single_checks);
  // A different salt changes the randomizers, never the verdicts.
  const util::Bytes salt{0xde, 0xad};
  const auto run3 = ecdsa_verify_batch(items, salt);
  EXPECT_EQ(run1, run3);
}

TEST(BatchVerify, EmptyBatch) {
  BatchVerifyStats st;
  EXPECT_TRUE(ecdsa_verify_batch({}, {}, &st).empty());
  EXPECT_EQ(st.rlc_checks, 0u);
}

TEST(P256Decompress, RoundTripsPublicKeysAndRejectsNonResidues) {
  for (std::uint8_t tag = 1; tag < 6; ++tag) {
    const auto pt = test_key(tag).public_key().point;
    const auto even = p256::decompress(pt.x, pt.y.is_odd());
    ASSERT_TRUE(even.has_value());
    EXPECT_EQ(even->x, pt.x);
    EXPECT_EQ(even->y, pt.y);
    const auto other = p256::decompress(pt.x, !pt.y.is_odd());
    ASSERT_TRUE(other.has_value());
    EXPECT_EQ(sub_mod(U256{}, other->y, p256::P()), pt.y);
  }
  // x >= p is rejected outright.
  EXPECT_FALSE(p256::decompress(p256::P(), false).has_value());
}

TEST(P256MultiScalar, MatchesNaiveSum) {
  const auto k1 = test_key(0x31);
  const auto k2 = test_key(0x32);
  const U256 g_coeff = U256::from_u64(0x1234567890abcdefULL);
  const U256 s1 = mod_generic(U256::from_bytes(sha256(util::from_string("a"))),
                              p256::N());
  const U256 s2 = mod_generic(U256::from_bytes(sha256(util::from_string("b"))),
                              p256::N());
  std::vector<p256::MultiScalarTerm> terms{
      {s1, k1.public_key().point},
      {s2, k2.public_key().point},
  };
  const auto got = p256::to_affine(p256::multi_scalar_mult(g_coeff, terms));
  p256::JacobianPoint want = p256::scalar_mult_base(g_coeff);
  want = p256::add(want, p256::scalar_mult(s1, k1.public_key().point));
  want = p256::add(want, p256::scalar_mult(s2, k2.public_key().point));
  EXPECT_EQ(got, p256::to_affine(want));
}

TEST(P256MultiScalar, HandlesZeroAndInfinityTerms) {
  const auto k1 = test_key(0x41);
  std::vector<p256::MultiScalarTerm> terms{
      {U256{}, k1.public_key().point},                    // zero scalar
      {U256::from_u64(7), p256::AffinePoint::make_infinity()},
  };
  EXPECT_TRUE(p256::multi_scalar_mult(U256{}, terms).is_infinity());
  const auto only_g = p256::multi_scalar_mult(U256::from_u64(5), terms);
  EXPECT_EQ(p256::to_affine(only_g),
            p256::to_affine(p256::scalar_mult_base(U256::from_u64(5))));
}

}  // namespace
}  // namespace aseck::crypto
