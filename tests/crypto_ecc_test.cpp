// Tests for the 256-bit integer layer, P-256 curve arithmetic, ECDSA, ECDH.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "crypto/p256.hpp"
#include "crypto/u256.hpp"
#include "util/rng.hpp"

namespace aseck::crypto {
namespace {

using util::Bytes;

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("deadbeef00112233445566778899aabbccddeeff");
  EXPECT_EQ(v.to_hex(),
            "000000000000000000000000deadbeef00112233445566778899aabbccddeeff");
  EXPECT_EQ(U256::from_hex(v.to_hex()), v);
  EXPECT_THROW(U256::from_hex(std::string(65, 'f')), std::invalid_argument);
  EXPECT_THROW(U256::from_hex("xyz"), std::invalid_argument);
}

TEST(U256, BytesRoundTrip) {
  const U256 v = U256::from_u64(0x1122334455667788ULL);
  const Bytes b = v.to_bytes();
  EXPECT_EQ(b.size(), 32u);
  EXPECT_EQ(U256::from_bytes(b), v);
  // Short input left-pads.
  EXPECT_EQ(U256::from_bytes(Bytes{0x01, 0x02}), U256::from_u64(0x0102));
}

TEST(U256, CompareAndBits) {
  const U256 a = U256::from_u64(5), b = U256::from_u64(9);
  EXPECT_TRUE(a < b);
  EXPECT_EQ(cmp(a, a), 0);
  EXPECT_EQ(cmp(b, a), 1);
  EXPECT_TRUE(U256::zero().is_zero());
  EXPECT_EQ(U256::from_u64(0x100).top_bit(), 8);
  EXPECT_EQ(U256::zero().top_bit(), -1);
  EXPECT_TRUE(U256::from_u64(3).is_odd());
  EXPECT_FALSE(U256::from_u64(4).is_odd());
}

TEST(U256, AddSubCarry) {
  U256 max;
  for (auto& w : max.w) w = 0xffffffffu;
  U256 r;
  EXPECT_EQ(add(r, max, U256::one()), 1u);  // wraps with carry
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(sub(r, U256::zero(), U256::one()), 1u);  // borrows
  EXPECT_EQ(r, max);
  EXPECT_EQ(add(r, U256::from_u64(7), U256::from_u64(8)), 0u);
  EXPECT_EQ(r, U256::from_u64(15));
}

TEST(U256, ShiftOps) {
  U256 v = U256::from_u64(1);
  for (int i = 0; i < 255; ++i) EXPECT_EQ(shl1(v), 0u);
  EXPECT_EQ(v.top_bit(), 255);
  EXPECT_EQ(shl1(v), 1u);  // shifts out
  EXPECT_TRUE(v.is_zero());
  v = U256::from_u64(6);
  shr1(v);
  EXPECT_EQ(v, U256::from_u64(3));
}

TEST(U256, MulAgainstNative) {
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t a = rng.next_u64() >> 1;
    const std::uint64_t b = rng.next_u64() >> 1;
    const U512 p = mul(U256::from_u64(a), U256::from_u64(b));
    const __uint128_t expect = static_cast<__uint128_t>(a) * b;
    std::uint64_t lo = (std::uint64_t{p.w[1]} << 32) | p.w[0];
    std::uint64_t hi = (std::uint64_t{p.w[3]} << 32) | p.w[2];
    EXPECT_EQ(lo, static_cast<std::uint64_t>(expect));
    EXPECT_EQ(hi, static_cast<std::uint64_t>(expect >> 64));
    for (std::size_t j = 4; j < 16; ++j) EXPECT_EQ(p.w[j], 0u);
  }
}

TEST(U256, ModGenericMatchesNative) {
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t x = rng.next_u64();
    const std::uint64_t m = (rng.next_u64() >> 20) + 1;
    EXPECT_EQ(mod_generic(U256::from_u64(x), U256::from_u64(m)),
              U256::from_u64(x % m));
  }
  EXPECT_THROW(mod_generic(U256::one(), U256::zero()), std::invalid_argument);
}

TEST(U256, ModularOpsSmall) {
  const U256 m = U256::from_u64(97);
  EXPECT_EQ(add_mod(U256::from_u64(90), U256::from_u64(10), m), U256::from_u64(3));
  EXPECT_EQ(sub_mod(U256::from_u64(5), U256::from_u64(10), m), U256::from_u64(92));
  EXPECT_EQ(mul_mod(U256::from_u64(13), U256::from_u64(15), m),
            U256::from_u64(13 * 15 % 97));
  EXPECT_EQ(pow_mod(U256::from_u64(2), U256::from_u64(10), m),
            U256::from_u64(1024 % 97));
  EXPECT_EQ(pow_mod(U256::from_u64(5), U256::zero(), m), U256::one());
}

TEST(U256, InverseModPrime) {
  const U256 m = U256::from_u64(101);
  for (std::uint64_t a = 1; a < 101; ++a) {
    const U256 inv = inv_mod_prime(U256::from_u64(a), m);
    EXPECT_EQ(mul_mod(U256::from_u64(a), inv, m), U256::one()) << a;
  }
}

TEST(P256, FastReductionMatchesGeneric) {
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    U512 x;
    for (auto& w : x.w) w = rng.next_u32();
    EXPECT_EQ(p256::reduce_p(x), mod_generic(x, p256::P())) << "iter " << i;
  }
}

TEST(P256, GeneratorOnCurve) {
  EXPECT_TRUE(p256::on_curve(p256::generator()));
}

TEST(P256, DoubleGKnownAnswer) {
  // 2G for P-256 (public test value).
  const auto two_g = p256::to_affine(
      p256::dbl(p256::JacobianPoint::from_affine(p256::generator())));
  EXPECT_EQ(two_g.x.to_hex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(two_g.y.to_hex(),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
  EXPECT_TRUE(p256::on_curve(two_g));
}

TEST(P256, OrderTimesGIsInfinity) {
  EXPECT_TRUE(p256::scalar_mult_base(p256::N()).is_infinity());
}

TEST(P256, NMinusOneGIsMinusG) {
  U256 nm1;
  sub(nm1, p256::N(), U256::one());
  const auto p = p256::to_affine(p256::scalar_mult_base(nm1));
  EXPECT_EQ(p.x, p256::Gx());
  U256 neg_y;
  sub(neg_y, p256::P(), p256::Gy());
  EXPECT_EQ(p.y, neg_y);
}

TEST(P256, ScalarMultDistributes) {
  // (a+b)G == aG + bG for random small scalars.
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const U256 a = U256::from_u64(rng.next_u64());
    const U256 b = U256::from_u64(rng.next_u64());
    U256 ab;
    add(ab, a, b);
    const auto lhs = p256::to_affine(p256::scalar_mult_base(ab));
    const auto rhs = p256::to_affine(
        p256::add(p256::scalar_mult_base(a), p256::scalar_mult_base(b)));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(P256, MixedAddSpecialCases) {
  const auto g = p256::generator();
  const auto gj = p256::JacobianPoint::from_affine(g);
  // P + infinity-affine semantics via add(): inf + G = G.
  const auto sum = p256::add(p256::JacobianPoint::make_infinity(), gj);
  EXPECT_EQ(p256::to_affine(sum), g);
  // G + G via add_mixed must equal dbl(G).
  const auto via_add = p256::to_affine(p256::add_mixed(gj, g));
  const auto via_dbl = p256::to_affine(p256::dbl(gj));
  EXPECT_EQ(via_add, via_dbl);
  // G + (-G) = infinity.
  p256::AffinePoint neg_g = g;
  U256 ny;
  sub(ny, p256::P(), g.y);
  neg_g.y = ny;
  EXPECT_TRUE(p256::add_mixed(gj, neg_g).is_infinity());
}

TEST(P256, OnCurveRejects) {
  p256::AffinePoint bogus{U256::from_u64(1), U256::from_u64(1), false};
  EXPECT_FALSE(p256::on_curve(bogus));
  EXPECT_FALSE(p256::on_curve(p256::AffinePoint::make_infinity()));
  p256::AffinePoint big = p256::generator();
  big.x = p256::P();
  EXPECT_FALSE(p256::on_curve(big));
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  Drbg rng(2024u);
  const auto key = EcdsaPrivateKey::generate(rng);
  EXPECT_TRUE(key.public_key().valid());
  const Bytes msg = util::from_string("basic safety message");
  const EcdsaSignature sig = key.sign(msg);
  EXPECT_TRUE(ecdsa_verify(key.public_key(), msg, sig));
}

TEST(Ecdsa, RejectsWrongMessageAndKey) {
  Drbg rng(2025u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const auto other = EcdsaPrivateKey::generate(rng);
  const Bytes msg = util::from_string("hello");
  const EcdsaSignature sig = key.sign(msg);
  EXPECT_FALSE(ecdsa_verify(key.public_key(), util::from_string("hellp"), sig));
  EXPECT_FALSE(ecdsa_verify(other.public_key(), msg, sig));
  EcdsaSignature bad = sig;
  bad.r = add_mod(bad.r, U256::one(), p256::N());
  EXPECT_FALSE(ecdsa_verify(key.public_key(), msg, bad));
  bad = sig;
  bad.s = U256::zero();
  EXPECT_FALSE(ecdsa_verify(key.public_key(), msg, bad));
}

TEST(Ecdsa, DeterministicSignatures) {
  Drbg rng(2026u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const Bytes msg = util::from_string("idempotent");
  EXPECT_EQ(key.sign(msg), key.sign(msg));
  EXPECT_NE(key.sign(msg).to_bytes(),
            key.sign(util::from_string("different")).to_bytes());
}

TEST(Ecdsa, SerializationRoundTrips) {
  Drbg rng(2027u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const Bytes pub_bytes = key.public_key().to_bytes();
  EXPECT_EQ(pub_bytes.size(), 65u);
  const auto pub2 = EcdsaPublicKey::from_bytes(pub_bytes);
  ASSERT_TRUE(pub2.has_value());
  EXPECT_EQ(*pub2, key.public_key());

  const EcdsaSignature sig = key.sign(util::from_string("x"));
  const auto sig2 = EcdsaSignature::from_bytes(sig.to_bytes());
  ASSERT_TRUE(sig2.has_value());
  EXPECT_EQ(*sig2, sig);

  EXPECT_FALSE(EcdsaPublicKey::from_bytes(Bytes(64)).has_value());
  Bytes off_curve = pub_bytes;
  off_curve[10] ^= 1;
  EXPECT_FALSE(EcdsaPublicKey::from_bytes(off_curve).has_value());
  EXPECT_FALSE(EcdsaSignature::from_bytes(Bytes(63)).has_value());
}

TEST(Ecdsa, FromSecretDeterministic) {
  const Bytes secret(32, 0x42);
  const auto k1 = EcdsaPrivateKey::from_secret(secret);
  const auto k2 = EcdsaPrivateKey::from_secret(secret);
  EXPECT_EQ(k1.public_key(), k2.public_key());
  EXPECT_THROW(EcdsaPrivateKey::from_secret(Bytes(32, 0)), std::invalid_argument);
}

TEST(Ecdh, SharedSecretAgreement) {
  Drbg rng(2028u);
  const auto alice = EcdsaPrivateKey::generate(rng);
  const auto bob = EcdsaPrivateKey::generate(rng);
  const Bytes info = util::from_string("smart-key session v1");
  const auto s1 = ecdh_shared(alice, bob.public_key(), info, 32);
  const auto s2 = ecdh_shared(bob, alice.public_key(), info, 32);
  ASSERT_TRUE(s1.has_value());
  ASSERT_TRUE(s2.has_value());
  EXPECT_EQ(*s1, *s2);
  EXPECT_EQ(s1->size(), 32u);

  const auto eve = EcdsaPrivateKey::generate(rng);
  const auto s3 = ecdh_shared(eve, bob.public_key(), info, 32);
  ASSERT_TRUE(s3.has_value());
  EXPECT_NE(*s1, *s3);
}

}  // namespace
}  // namespace aseck::crypto

namespace aseck::crypto {
namespace {

TEST(P256Ladder, MatchesDoubleAndAdd) {
  util::Rng rng(2029);
  for (int i = 0; i < 5; ++i) {
    U256 k;
    for (auto& w : k.w) w = rng.next_u32();
    k = mod_generic(k, p256::N());
    const auto a = p256::to_affine(p256::scalar_mult(k, p256::generator()));
    const auto b = p256::to_affine(
        p256::scalar_mult_ladder(k, p256::generator()));
    EXPECT_EQ(a, b);
  }
  // Edge scalars.
  EXPECT_TRUE(p256::scalar_mult_ladder(U256::zero(), p256::generator())
                  .is_infinity());
  EXPECT_EQ(p256::to_affine(p256::scalar_mult_ladder(U256::one(),
                                                     p256::generator())),
            p256::generator());
}

TEST(P256Ladder, OpCountIndependentOfHammingWeight) {
  // The §4.2 timing-leakage demonstration: double-and-add's field-op count
  // tracks HW(k); the ladder's does not (for fixed bit length).
  const p256::AffinePoint g = p256::generator();
  // Two same-bit-length scalars with very different Hamming weights.
  U256 sparse = U256::zero();
  sparse.w[7] = 0x80000000u;  // bit 255
  sparse.w[0] = 1;            // HW = 2
  U256 dense;
  for (auto& w : dense.w) w = 0xffffffffu;
  dense = mod_generic(dense, p256::N());  // still ~bit 255, high HW
  dense.w[7] |= 0x80000000u;

  p256::reset_fieldop_count();
  (void)p256::scalar_mult(sparse, g);
  const std::uint64_t da_sparse = p256::fieldop_count();
  p256::reset_fieldop_count();
  (void)p256::scalar_mult(dense, g);
  const std::uint64_t da_dense = p256::fieldop_count();
  // Double-and-add: dense scalar costs substantially more (extra adds).
  EXPECT_GT(da_dense, da_sparse + 500);

  p256::reset_fieldop_count();
  (void)p256::scalar_mult_ladder(sparse, g);
  const std::uint64_t l_sparse = p256::fieldop_count();
  p256::reset_fieldop_count();
  (void)p256::scalar_mult_ladder(dense, g);
  const std::uint64_t l_dense = p256::fieldop_count();
  // Ladder: identical op counts for identical bit lengths.
  EXPECT_EQ(l_sparse, l_dense);
}

// ---------------------------------------------------------------------------
// Fast-path equivalence and crypto edge cases (PR: verification fast path).

U256 rand_u256(util::Rng& rng) {
  U256 v;
  for (std::size_t i = 0; i < v.w.size(); ++i) v.w[i] = rng.next_u32();
  return v;
}

TEST(P256FastPath, ScalarMultBaseMatchesGenericDoubleAndAdd) {
  // The comb-table fixed-base path must agree with the generic scalar_mult
  // for raw (unreduced) 256-bit scalars and for every boundary scalar.
  util::Rng rng(0xfb17);
  std::vector<U256> cases;
  for (int i = 0; i < 50; ++i) cases.push_back(rand_u256(rng));
  cases.push_back(U256::zero());
  cases.push_back(U256::one());
  U256 n_minus_1, n_plus_1;
  sub(n_minus_1, p256::N(), U256::one());
  add(n_plus_1, p256::N(), U256::one());
  cases.push_back(n_minus_1);
  cases.push_back(p256::N());
  cases.push_back(n_plus_1);
  U256 all_ones;
  for (auto& w : all_ones.w) w = 0xffffffffu;
  cases.push_back(all_ones);
  for (const U256& k : cases) {
    const auto fast = p256::scalar_mult_base(k);
    const auto slow = p256::scalar_mult(k, p256::generator());
    ASSERT_EQ(fast.is_infinity(), slow.is_infinity()) << k.to_hex();
    if (!fast.is_infinity()) {
      ASSERT_EQ(p256::to_affine(fast), p256::to_affine(slow)) << k.to_hex();
    }
  }
}

TEST(P256FastPath, DoubleScalarMultMatchesShamirOnRandomInputs) {
  util::Rng rng(0xd5c0);
  for (int i = 0; i < 40; ++i) {
    const U256 u1 = mod_generic(rand_u256(rng), p256::N());
    const U256 u2 = mod_generic(rand_u256(rng), p256::N());
    const U256 d = mod_generic(rand_u256(rng), p256::N());
    const auto q = p256::to_affine(p256::scalar_mult_base(d));
    const auto fast = p256::double_scalar_mult(u1, u2, q);
    const auto slow = p256::double_scalar_mult_shamir(u1, u2, q);
    ASSERT_EQ(fast.is_infinity(), slow.is_infinity());
    if (!fast.is_infinity()) {
      ASSERT_EQ(p256::to_affine(fast), p256::to_affine(slow));
    }
  }
}

TEST(P256FastPath, DoubleScalarMultWithQEqualsMinusG) {
  // q == -G makes the Shamir precomputation G + Q the point at infinity —
  // the table entry both implementations must special-case.
  p256::AffinePoint neg_g = p256::generator();
  U256 ny;
  sub(ny, p256::P(), neg_g.y);
  neg_g.y = ny;

  // u1 == u2: u1*G + u1*(-G) = infinity.
  const U256 u = U256::from_u64(0x1234567);
  EXPECT_TRUE(p256::double_scalar_mult(u, u, neg_g).is_infinity());
  EXPECT_TRUE(p256::double_scalar_mult_shamir(u, u, neg_g).is_infinity());

  // u1 != u2: result is (u1 - u2)*G.
  const U256 u1 = U256::from_u64(1000);
  const U256 u2 = U256::from_u64(1);
  const auto expect = p256::to_affine(p256::scalar_mult_base(U256::from_u64(999)));
  EXPECT_EQ(p256::to_affine(p256::double_scalar_mult(u1, u2, neg_g)), expect);
  EXPECT_EQ(p256::to_affine(p256::double_scalar_mult_shamir(u1, u2, neg_g)),
            expect);
}

TEST(P256FastPath, DoubleScalarMultWithZeroScalars) {
  util::Rng rng(0x0517);
  const U256 d = mod_generic(rand_u256(rng), p256::N());
  const auto q = p256::to_affine(p256::scalar_mult_base(d));
  const U256 u = U256::from_u64(77);

  // u1 = 0: result is u2*Q.
  const auto uq = p256::to_affine(p256::scalar_mult(u, q));
  EXPECT_EQ(p256::to_affine(p256::double_scalar_mult(U256::zero(), u, q)), uq);
  EXPECT_EQ(p256::to_affine(p256::double_scalar_mult_shamir(U256::zero(), u, q)),
            uq);
  // u2 = 0: result is u1*G.
  const auto ug = p256::to_affine(p256::scalar_mult_base(u));
  EXPECT_EQ(p256::to_affine(p256::double_scalar_mult(u, U256::zero(), q)), ug);
  EXPECT_EQ(p256::to_affine(p256::double_scalar_mult_shamir(u, U256::zero(), q)),
            ug);
  // Both zero: infinity.
  EXPECT_TRUE(
      p256::double_scalar_mult(U256::zero(), U256::zero(), q).is_infinity());
}

TEST(P256FastPath, BatchToAffineSkipsInfinityEntries) {
  // Montgomery batch inversion must skip z == 0 entries: inv_mod_prime(0)
  // does not terminate, so an unguarded prefix-product chain would hang.
  std::vector<p256::JacobianPoint> pts;
  pts.push_back(p256::JacobianPoint::make_infinity());
  pts.push_back(p256::scalar_mult_base(U256::from_u64(2)));
  pts.push_back(p256::JacobianPoint::make_infinity());
  pts.push_back(p256::scalar_mult_base(U256::from_u64(3)));
  pts.push_back(p256::scalar_mult_base(U256::from_u64(4)));
  const auto out = p256::batch_to_affine(pts);
  ASSERT_EQ(out.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].is_infinity()) {
      EXPECT_TRUE(out[i].infinity);
    } else {
      EXPECT_EQ(out[i], p256::to_affine(pts[i]));
    }
  }
  EXPECT_TRUE(p256::batch_to_affine({}).empty());
}

TEST(Ecdsa, RejectsOutOfRangeSignatureComponents) {
  Drbg rng(77u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const Digest digest = sha256(util::from_string("edge"));
  const EcdsaSignature good = key.sign_digest(digest);
  ASSERT_TRUE(ecdsa_verify_digest(key.public_key(), digest, good));

  EcdsaSignature bad = good;
  bad.r = U256::zero();
  EXPECT_FALSE(ecdsa_verify_digest(key.public_key(), digest, bad));
  EXPECT_FALSE(ecdsa_verify_digest_slow(key.public_key(), digest, bad));
  bad = good;
  bad.s = U256::zero();
  EXPECT_FALSE(ecdsa_verify_digest(key.public_key(), digest, bad));
  bad = good;
  bad.r = p256::N();  // r must be in [1, n-1]
  EXPECT_FALSE(ecdsa_verify_digest(key.public_key(), digest, bad));
  bad = good;
  add(bad.s, p256::N(), U256::one());  // s = n + 1
  EXPECT_FALSE(ecdsa_verify_digest(key.public_key(), digest, bad));
}

TEST(Ecdsa, FastAndSlowVerifyAgreeOnThousandRandomPairs) {
  // Bit-for-bit equivalence of the wNAF fast path and the Shamir reference
  // across 1000 seeded (key, digest) pairs, plus corrupted variants.
  util::Rng rng(0x1609);
  for (int i = 0; i < 1000; ++i) {
    std::array<std::uint8_t, 32> secret{};
    const U256 s = rand_u256(rng);
    for (int b = 0; b < 32; ++b) {
      secret[b] = static_cast<std::uint8_t>(s.w[b / 4] >> (8 * (b % 4)));
    }
    secret[31] |= 1;  // never zero
    const auto key =
        EcdsaPrivateKey::from_secret(util::BytesView(secret.data(), 32));
    Digest digest;
    for (int b = 0; b < 32; ++b) digest[b] = static_cast<std::uint8_t>(rng.next_u32());
    const EcdsaSignature sig = key.sign_digest(digest);
    const bool fast = ecdsa_verify_digest(key.public_key(), digest, sig);
    const bool slow = ecdsa_verify_digest_slow(key.public_key(), digest, sig);
    ASSERT_TRUE(fast) << "pair " << i;
    ASSERT_EQ(fast, slow) << "pair " << i;
    if (i % 10 == 0) {  // corrupted digest must fail identically
      Digest mutated = digest;
      mutated[i % 32] ^= 0x01;
      const bool f2 = ecdsa_verify_digest(key.public_key(), mutated, sig);
      const bool s2 = ecdsa_verify_digest_slow(key.public_key(), mutated, sig);
      ASSERT_FALSE(f2) << "pair " << i;
      ASSERT_EQ(f2, s2) << "pair " << i;
    }
  }
}

TEST(Ecdsa, NonceCounterDoesNotWrapAt256) {
  // Regression: the retry counter was a uint8_t, so candidate 256 aliased
  // candidate 0 — a degenerate HMAC stream would loop forever on the same
  // rejected nonce. Candidates must stay distinct past the byte boundary.
  Drbg rng(99u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const Digest digest = sha256(util::from_string("nonce"));
  EXPECT_NE(detail::nonce_candidate(key.scalar(), digest, 0),
            detail::nonce_candidate(key.scalar(), digest, 256));
  std::set<std::string> seen;
  for (std::uint32_t c = 0; c <= 300; ++c) {
    seen.insert(detail::nonce_candidate(key.scalar(), digest, c).to_hex());
  }
  EXPECT_EQ(seen.size(), 301u);
}

}  // namespace
}  // namespace aseck::crypto
