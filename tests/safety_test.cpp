// Tests for ISO 26262 ASIL determination, hazard registry, SPF analysis,
// fault injection, and attack criticality mapping.

#include <gtest/gtest.h>

#include "safety/asil.hpp"
#include "safety/fault.hpp"

namespace aseck::safety {
namespace {

TEST(Asil, Iso26262TableCorners) {
  // Worst case: severe, high exposure, uncontrollable -> D.
  EXPECT_EQ(determine_asil(Severity::kS3, Exposure::kE4, Controllability::kC3),
            Asil::kD);
  // One step reductions.
  EXPECT_EQ(determine_asil(Severity::kS3, Exposure::kE4, Controllability::kC2),
            Asil::kC);
  EXPECT_EQ(determine_asil(Severity::kS3, Exposure::kE3, Controllability::kC3),
            Asil::kC);
  EXPECT_EQ(determine_asil(Severity::kS2, Exposure::kE4, Controllability::kC3),
            Asil::kC);
  EXPECT_EQ(determine_asil(Severity::kS3, Exposure::kE2, Controllability::kC3),
            Asil::kB);
  EXPECT_EQ(determine_asil(Severity::kS1, Exposure::kE4, Controllability::kC3),
            Asil::kB);
  EXPECT_EQ(determine_asil(Severity::kS1, Exposure::kE3, Controllability::kC3),
            Asil::kA);
  EXPECT_EQ(determine_asil(Severity::kS2, Exposure::kE2, Controllability::kC3),
            Asil::kA);
  // Low combinations bottom out at QM.
  EXPECT_EQ(determine_asil(Severity::kS1, Exposure::kE1, Controllability::kC1),
            Asil::kQM);
  EXPECT_EQ(determine_asil(Severity::kS1, Exposure::kE2, Controllability::kC2),
            Asil::kQM);
}

TEST(Asil, ZeroClassesAreQm) {
  EXPECT_EQ(determine_asil(Severity::kS0, Exposure::kE4, Controllability::kC3),
            Asil::kQM);
  EXPECT_EQ(determine_asil(Severity::kS3, Exposure::kE0, Controllability::kC3),
            Asil::kQM);
  EXPECT_EQ(determine_asil(Severity::kS3, Exposure::kE4, Controllability::kC0),
            Asil::kQM);
}

TEST(Asil, Names) {
  EXPECT_STREQ(asil_name(Asil::kQM), "QM");
  EXPECT_STREQ(asil_name(Asil::kD), "D");
}

HazardRegistry make_registry() {
  HazardRegistry reg;
  reg.add(Hazard{"unintended full braking at speed", "brake-by-wire",
                 Severity::kS3, Exposure::kE4, Controllability::kC3});
  reg.add(Hazard{"loss of braking assist", "brake-by-wire", Severity::kS2,
                 Exposure::kE3, Controllability::kC2});
  reg.add(Hazard{"wrong speed display", "instrument-cluster", Severity::kS1,
                 Exposure::kE4, Controllability::kC1});
  reg.add(Hazard{"steering lock engages while driving", "steering",
                 Severity::kS3, Exposure::kE2, Controllability::kC3});
  return reg;
}

TEST(HazardRegistry, FunctionQueries) {
  const HazardRegistry reg = make_registry();
  EXPECT_EQ(reg.for_function("brake-by-wire").size(), 2u);
  EXPECT_EQ(reg.function_asil("brake-by-wire"), Asil::kD);
  EXPECT_EQ(reg.function_asil("instrument-cluster"), Asil::kQM);
  EXPECT_EQ(reg.function_asil("nonexistent"), Asil::kQM);
  const auto hist = reg.histogram();
  EXPECT_EQ(hist.at(Asil::kD), 1u);
}

TEST(AttackCriticality, MapsAttacksToAsil) {
  const HazardRegistry reg = make_registry();
  const auto crit = attack_criticality(
      reg, {{"CAN injection of brake command", "unintended full braking at speed"},
            {"cluster spoofing", "wrong speed display"},
            {"unknown attack", "no such hazard"}});
  ASSERT_EQ(crit.size(), 3u);
  EXPECT_EQ(crit[0].second, Asil::kD);  // a pure-software attack reaches ASIL D
  EXPECT_EQ(crit[1].second, Asil::kQM);
  EXPECT_EQ(crit[2].second, Asil::kQM);
}

FunctionModel braking_function(bool redundant_sensor) {
  FunctionModel fn;
  fn.name = "braking";
  fn.components = {"brake-ecu", "brake-actuator"};
  if (redundant_sensor) {
    fn.redundancy_groups = {{"wheel-sensor-a", "wheel-sensor-b"}};
  } else {
    fn.components.push_back("wheel-sensor-a");
  }
  return fn;
}

TEST(Spf, IdentifiesSimplexComponents) {
  const FunctionModel fn = braking_function(false);
  const auto spf = single_points_of_failure(fn);
  EXPECT_EQ(spf, (std::vector<std::string>{"brake-actuator", "brake-ecu",
                                           "wheel-sensor-a"}));
}

TEST(Spf, RedundancyRemovesSensorSpf) {
  const FunctionModel fn = braking_function(true);
  const auto spf = single_points_of_failure(fn);
  EXPECT_EQ(spf, (std::vector<std::string>{"brake-actuator", "brake-ecu"}));
  // Both sensors failing still kills the function.
  EXPECT_FALSE(fn.operational({"wheel-sensor-a", "wheel-sensor-b"}));
  EXPECT_TRUE(fn.operational({"wheel-sensor-a"}));
}

TEST(FaultCampaign, RedundancyLowersFailureRate) {
  const std::vector<FunctionModel> fns{braking_function(false),
                                       [&] {
                                         auto f = braking_function(true);
                                         f.name = "braking-redundant";
                                         return f;
                                       }()};
  const auto r = run_fault_campaign(fns, 0.02, 20000, 77);
  EXPECT_EQ(r.trials, 20000u);
  const double simplex = r.failure_rate("braking");
  const double redundant = r.failure_rate("braking-redundant");
  EXPECT_GT(simplex, redundant);
  // Simplex: ~3 * 0.02 = 6%; redundant: ~2 * 0.02 + 0.02^2.
  EXPECT_NEAR(simplex, 0.059, 0.012);
  EXPECT_NEAR(redundant, 0.040, 0.010);
}

TEST(FaultCampaign, ZeroProbabilityNeverFails) {
  const auto r = run_fault_campaign({braking_function(false)}, 0.0, 1000, 1);
  EXPECT_EQ(r.failure_rate("braking"), 0.0);
}

}  // namespace
}  // namespace aseck::safety
