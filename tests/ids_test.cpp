// Tests for the CAN IDS detectors and ensemble scoring.

#include <gtest/gtest.h>

#include "ids/detectors.hpp"
#include "util/rng.hpp"

namespace aseck::ids {
namespace {

using util::Bytes;

CanFrame frame(std::uint32_t id, Bytes data) {
  CanFrame f;
  f.id = id;
  f.data = std::move(data);
  return f;
}

SimTime ms(std::uint64_t v) { return SimTime::from_ms(v); }

/// Trains a detector with periodic benign traffic on id 0x100 every 10 ms.
void train_periodic(Detector& d, std::uint32_t id, int count,
                    std::uint64_t period_ms, util::Rng* rng = nullptr) {
  for (int i = 0; i < count; ++i) {
    Bytes data(8, 0);
    data[0] = 0x10;                       // constant mode byte
    data[1] = static_cast<std::uint8_t>(40 + (i % 20));  // slow-varying speed
    if (rng) data[7] = static_cast<std::uint8_t>(rng->next_u64());  // noise
    d.train(frame(id, data), ms(static_cast<std::uint64_t>(i) * period_ms));
  }
  d.finish_training();
}

TEST(FrequencyDetector, FlagsInjectionBurst) {
  FrequencyDetector d;
  train_periodic(d, 0x100, 200, 10);
  // Live: normal cadence scores low.
  SimTime t = ms(3000);
  EXPECT_LT(d.observe(frame(0x100, Bytes(8)), t), 1.0);
  t = t + ms(10);
  EXPECT_LT(d.observe(frame(0x100, Bytes(8)), t), 1.0);
  // Burst: 1 ms apart -> far below the learned floor.
  t = t + SimTime::from_ms(1);
  EXPECT_GE(d.observe(frame(0x100, Bytes(8)), t), 1.0);
}

TEST(FrequencyDetector, UnknownIdIsAnomalous) {
  FrequencyDetector d;
  train_periodic(d, 0x100, 50, 10);
  EXPECT_GE(d.observe(frame(0x7FF, Bytes(8)), ms(1000)), 1.0);
}

TEST(FrequencyDetector, ToleratesJitter) {
  FrequencyDetector d(4.0);
  util::Rng rng(1);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 500; ++i) {
    d.train(frame(0x100, Bytes(8)), t);
    t = t + SimTime::from_us(10000 + static_cast<std::uint64_t>(rng.uniform(500)));
  }
  d.finish_training();
  // Live traffic with the same jitter should (almost) never alert.
  int alerts = 0;
  for (int i = 0; i < 500; ++i) {
    if (d.observe(frame(0x100, Bytes(8)), t) >= 1.0) ++alerts;
    t = t + SimTime::from_us(10000 + static_cast<std::uint64_t>(rng.uniform(500)));
  }
  EXPECT_LE(alerts, 5);
}

TEST(PayloadDetector, FlagsStructuredByteChange) {
  PayloadEntropyDetector d;
  util::Rng rng(2);
  train_periodic(d, 0x100, 100, 10, &rng);
  // Benign-looking frame: constant byte intact.
  Bytes ok(8, 0);
  ok[0] = 0x10;
  ok[1] = 45;
  ok[7] = 0xEE;  // noise byte may be novel -> low score
  EXPECT_LT(d.observe(frame(0x100, ok), ms(0)), 1.0);
  // Attack: flips the constant mode byte.
  Bytes evil = ok;
  evil[0] = 0xFF;
  EXPECT_GE(d.observe(frame(0x100, evil), ms(0)), 1.0);
}

TEST(PayloadDetector, FlagsDlcChangeAndUnknownId) {
  PayloadEntropyDetector d;
  train_periodic(d, 0x100, 100, 10);
  EXPECT_GE(d.observe(frame(0x100, Bytes(4)), ms(0)), 1.0);  // DLC change
  EXPECT_GE(d.observe(frame(0x200, Bytes(8)), ms(0)), 1.0);  // unknown id
}

TEST(PayloadDetector, InsufficientTrainingStaysQuiet) {
  PayloadEntropyDetector d;
  d.train(frame(0x100, Bytes(8, 1)), ms(0));
  d.train(frame(0x100, Bytes(8, 1)), ms(10));
  EXPECT_EQ(d.observe(frame(0x100, Bytes(8, 9)), ms(20)), 0.0);
}

TEST(SpecDetector, AllowlistAndDlc) {
  SpecRuleDetector d;
  d.train(frame(0x100, Bytes(8)), ms(0));
  EXPECT_LT(d.observe(frame(0x100, Bytes(8)), ms(1)), 1.0);
  EXPECT_GE(d.observe(frame(0x101, Bytes(8)), ms(2)), 1.0);  // not allowlisted
  EXPECT_GE(d.observe(frame(0x100, Bytes(2)), ms(3)), 1.0);  // wrong DLC
}

TEST(SpecDetector, ByteRangeRules) {
  SpecRuleDetector d;
  SpecRuleDetector::Rule r;
  r.dlc = 2;
  r.byte_ranges[0] = {0, 120};  // e.g. speed <= 120
  d.add_rule(0x300, r);
  EXPECT_LT(d.observe(frame(0x300, Bytes{100, 0}), ms(0)), 1.0);
  EXPECT_GE(d.observe(frame(0x300, Bytes{200, 0}), ms(0)), 1.0);  // implausible
}

TEST(Ensemble, CombinesDetectorsAndAttributes) {
  IdsEnsemble e = make_default_ensemble();
  EXPECT_EQ(e.detector_count(), 3u);
  for (int i = 0; i < 100; ++i) {
    e.train(frame(0x100, Bytes(8, 0x10)), ms(static_cast<std::uint64_t>(i) * 10));
  }
  e.finish_training();
  // Unknown id triggers (spec gives the strongest signal, 2.0).
  const auto v = e.observe(frame(0x555, Bytes(8)), ms(2000));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.detector, "spec");
  EXPECT_GE(v.max_score, 2.0);
}

TEST(Ensemble, LabeledScoring) {
  IdsEnsemble e = make_default_ensemble();
  for (int i = 0; i < 100; ++i) {
    e.train(frame(0x100, Bytes(8, 0x10)), ms(static_cast<std::uint64_t>(i) * 10));
  }
  e.finish_training();
  SimTime t = ms(2000);
  // 50 benign at the learned cadence.
  for (int i = 0; i < 50; ++i) {
    e.observe_labeled(frame(0x100, Bytes(8, 0x10)), t, false);
    t = t + ms(10);
  }
  // 20 attack frames: unknown id.
  for (int i = 0; i < 20; ++i) {
    e.observe_labeled(frame(0x666, Bytes(8)), t, true);
    t = t + ms(1);
  }
  const IdsScore& s = e.score();
  EXPECT_EQ(s.tp, 20u);
  EXPECT_EQ(s.fn, 0u);
  EXPECT_EQ(s.tn, 50u);
  EXPECT_EQ(s.fp, 0u);
  EXPECT_DOUBLE_EQ(s.precision(), 1.0);
  EXPECT_DOUBLE_EQ(s.recall(), 1.0);
  EXPECT_DOUBLE_EQ(s.f1(), 1.0);
  EXPECT_DOUBLE_EQ(s.fpr(), 0.0);
  e.reset_score();
  EXPECT_EQ(e.score().tp, 0u);
}

TEST(Ensemble, SpoofedFrameAtNormalRateCaughtByPayload) {
  // Attacker sends a frame with the victim's id at the right cadence but a
  // wrong structured byte: only the payload detector can catch this.
  IdsEnsemble e = make_default_ensemble();
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    Bytes data(8, 0);
    data[0] = 0x10;
    data[7] = static_cast<std::uint8_t>(rng.next_u64());
    e.train(frame(0x100, data), ms(static_cast<std::uint64_t>(i) * 10));
  }
  e.finish_training();
  Bytes spoof(8, 0);
  spoof[0] = 0x99;  // wrong mode byte
  const auto v = e.observe(frame(0x100, spoof), ms(5000));
  EXPECT_TRUE(v.alert);
  EXPECT_EQ(v.detector, "payload");
}

TEST(IdsScore, EdgeCases) {
  IdsScore s;
  EXPECT_DOUBLE_EQ(s.precision(), 0.0);
  EXPECT_DOUBLE_EQ(s.recall(), 0.0);
  EXPECT_DOUBLE_EQ(s.f1(), 0.0);
  EXPECT_DOUBLE_EQ(s.fpr(), 0.0);
}

}  // namespace
}  // namespace aseck::ids

namespace aseck::ids {
namespace {

using util::Bytes;

TEST(SequenceDetector, LearnsScheduleAndFlagsBreaks) {
  SequenceDetector d;
  // Deterministic schedule: 0x100 -> 0x200 -> 0x300 repeating.
  const std::uint32_t schedule[] = {0x100, 0x200, 0x300};
  SimTime t = SimTime::zero();
  for (int i = 0; i < 120; ++i) {
    CanFrame f;
    f.id = schedule[i % 3];
    f.data = Bytes(8);
    d.train(f, t);
    t = t + SimTime::from_ms(5);
  }
  d.finish_training();
  // Live traffic following the schedule stays quiet.
  for (int i = 0; i < 30; ++i) {
    CanFrame f;
    f.id = schedule[i % 3];
    f.data = Bytes(8);
    EXPECT_LT(d.observe(f, t), 1.0) << i;
    t = t + SimTime::from_ms(5);
  }
  // A duplicated 0x100 right after a legitimate 0x100 (classic back-to-back
  // injection) creates the never-seen transition 0x100 -> 0x100.
  CanFrame f1;
  f1.id = 0x100;
  f1.data = Bytes(8);
  d.observe(f1, t);  // 0x300 -> 0x100: known, quiet
  CanFrame inj;
  inj.id = 0x100;
  inj.data = Bytes(8);
  EXPECT_GE(d.observe(inj, t), 1.0);
}

TEST(SequenceDetector, InjectionBetweenScheduledFramesCaught) {
  SequenceDetector d;
  const std::uint32_t schedule[] = {0x100, 0x200, 0x300};
  SimTime t = SimTime::zero();
  for (int i = 0; i < 120; ++i) {
    CanFrame f;
    f.id = schedule[i % 3];
    f.data = Bytes(8);
    d.train(f, t);
  }
  // live: 0x100, then injected 0x300 (legitimate id, wrong position).
  CanFrame a;
  a.id = 0x100;
  a.data = Bytes(8);
  EXPECT_LT(d.observe(a, t), 1.0);
  CanFrame b;
  b.id = 0x300;
  b.data = Bytes(8);
  EXPECT_GE(d.observe(b, t), 1.0);  // 0x100 -> 0x300 never seen in training
}

TEST(SequenceDetector, QuietWithoutEnoughTraining) {
  SequenceDetector d(1000);
  CanFrame f;
  f.id = 1;
  f.data = Bytes(8);
  d.train(f, SimTime::zero());
  d.train(f, SimTime::zero());
  EXPECT_EQ(d.observe(f, SimTime::zero()), 0.0);
  EXPECT_EQ(d.observe(f, SimTime::zero()), 0.0);
}

}  // namespace
}  // namespace aseck::ids
