// Unit tests for the discrete-event scheduler and trace sink.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace aseck::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(SimTime::from_us(30), [&] { order.push_back(3); });
  s.schedule_at(SimTime::from_us(10), [&] { order.push_back(1); });
  s.schedule_at(SimTime::from_us(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), SimTime::from_us(30));
}

TEST(Scheduler, FifoTieBreakAtSameTime) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    s.schedule_at(SimTime::from_us(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler s;
  SimTime seen = SimTime::zero();
  s.schedule_in(SimTime::from_us(10), [&] {
    s.schedule_in(SimTime::from_us(5), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, SimTime::from_us(15));
}

TEST(Scheduler, RejectsPast) {
  Scheduler s;
  s.schedule_at(SimTime::from_us(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(SimTime::from_us(5), [] {}), std::invalid_argument);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_in(SimTime::from_us(1), [&] { ran = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, CancelIsIdempotentAndSafeAfterFire) {
  Scheduler s;
  int count = 0;
  const EventId id = s.schedule_in(SimTime::from_us(1), [&] { ++count; });
  s.run();
  s.cancel(id);  // already fired; must not corrupt state
  s.schedule_in(SimTime::from_us(1), [&] { ++count; });
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, CancelAfterFireDoesNotAffectBookkeeping) {
  Scheduler s;
  int count = 0;
  const EventId id = s.schedule_in(SimTime::from_us(1), [&] { ++count; });
  s.schedule_in(SimTime::from_us(2), [&] { ++count; });
  EXPECT_EQ(s.pending(), 2u);
  s.run(1);  // fires `id`
  EXPECT_EQ(s.pending(), 1u);
  s.cancel(id);  // fired already: must be a true no-op
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, DoubleCancelIsHarmless) {
  Scheduler s;
  bool ran = false;
  const EventId id = s.schedule_in(SimTime::from_us(1), [&] { ran = true; });
  s.cancel(id);
  EXPECT_EQ(s.pending(), 0u);
  s.cancel(id);  // second cancel of the same id
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
  s.run();
  EXPECT_FALSE(ran);
  // A cancelled seq must not poison later events.
  s.schedule_in(SimTime::from_us(1), [&] { ran = true; });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, RunUntilKeepsBeyondHorizonEventLive) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(SimTime::from_us(100), [&] { ran = true; });
  s.run_until(SimTime::from_us(50));
  // The event was popped and re-pushed internally; it must still count as
  // pending and must still fire on the next run.
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.empty());
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunUntilStopsAtHorizonAndAdvancesClock) {
  Scheduler s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.schedule_at(SimTime::from_us(static_cast<std::uint64_t>(i) * 10),
                  [&] { ++count; });
  }
  s.run_until(SimTime::from_us(45));
  EXPECT_EQ(count, 4);
  EXPECT_EQ(s.now(), SimTime::from_us(45));
  s.run_until(SimTime::from_us(200));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(s.now(), SimTime::from_us(200));
}

TEST(Scheduler, RunWithLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_in(SimTime::from_us(1), [&] { ++count; });
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(SimTime::from_us(1), recurse);
  };
  s.schedule_in(SimTime::from_us(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), SimTime::from_us(5));
}

TEST(PeriodicTask, FiresAtPeriodUntilStopped) {
  Scheduler s;
  int fires = 0;
  PeriodicTask task(s, SimTime::from_ms(10), [&] { ++fires; }, SimTime::zero());
  s.run_until(SimTime::from_ms(35));
  EXPECT_EQ(fires, 4);  // t=0,10,20,30
  task.stop();
  s.run_until(SimTime::from_ms(100));
  EXPECT_EQ(fires, 4);
}

TEST(PeriodicTask, FirstDelayOffset) {
  Scheduler s;
  std::vector<std::uint64_t> at;
  PeriodicTask task(s, SimTime::from_ms(10), [&] { at.push_back(s.now().ns); },
                    SimTime::from_ms(3));
  s.run_until(SimTime::from_ms(25));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_EQ(at[0], SimTime::from_ms(3).ns);
  EXPECT_EQ(at[1], SimTime::from_ms(13).ns);
  EXPECT_EQ(at[2], SimTime::from_ms(23).ns);
  EXPECT_THROW(PeriodicTask(s, SimTime::zero(), [] {}, SimTime::zero()),
               std::invalid_argument);
}

TEST(PeriodicTask, DestructorStops) {
  Scheduler s;
  int fires = 0;
  {
    PeriodicTask task(s, SimTime::from_ms(1), [&] { ++fires; }, SimTime::zero());
    s.run_until(SimTime::from_ms(2));
  }
  s.run_until(SimTime::from_ms(50));
  EXPECT_EQ(fires, 3);
}

TEST(ScheduleAfter, RelativeToNowAtCallTime) {
  Scheduler s;
  SimTime fired_at = SimTime::zero();
  s.schedule_at(SimTime::from_ms(10), [&] {
    // Relative to now() *inside* the running event, not to schedule time.
    s.schedule_after(SimTime::from_ms(5), [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, SimTime::from_ms(15));
}

TEST(ScheduleAfter, ZeroDelaySelfRescheduleInterleavesFifo) {
  // Regression: a zero-delay self-rescheduling chain must land *behind*
  // already-queued events at the same timestamp, so concurrent work
  // interleaves instead of starving.
  Scheduler s;
  std::vector<char> order;
  int a_runs = 0;
  std::function<void()> chain = [&] {
    order.push_back('A');
    if (++a_runs < 3) s.schedule_after(SimTime::zero(), chain);
  };
  s.schedule_at(SimTime::from_ms(1), chain);
  s.schedule_at(SimTime::from_ms(1), [&] { order.push_back('B'); });
  s.schedule_at(SimTime::from_ms(1), [&] { order.push_back('C'); });
  s.run();
  ASSERT_EQ(order.size(), 5u);
  // First A, then the events that were already queued at 1ms, then the
  // rescheduled As.
  EXPECT_EQ(order[0], 'A');
  EXPECT_EQ(order[1], 'B');
  EXPECT_EQ(order[2], 'C');
  EXPECT_EQ(order[3], 'A');
  EXPECT_EQ(order[4], 'A');
}

TEST(ScheduleAfter, PerpetualZeroDelayChainHonorsRunLimit) {
  Scheduler s;
  std::uint64_t runs = 0;
  std::function<void()> forever = [&] {
    ++runs;
    s.schedule_after(SimTime::zero(), forever);
  };
  s.schedule_at(SimTime::zero(), forever);
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_EQ(runs, 100u);
  EXPECT_FALSE(s.empty());  // the chain is still pending, not lost
}

TEST(ScheduleAfter, SaturatesInsteadOfWrappingOnOverflow) {
  Scheduler s;
  s.schedule_at(SimTime::from_ms(1), [&] {
    // now + delay would wrap uint64; must clamp to the far future instead
    // of wrapping to the past (which schedule_at would reject).
    EXPECT_NO_THROW(s.schedule_after(SimTime::from_ns(UINT64_MAX), [] {}));
  });
  s.run(1);
  EXPECT_FALSE(s.empty());
  // The saturated event is parked at t=UINT64_MAX, not at now-1.
  s.run();
  EXPECT_EQ(s.now().ns, UINT64_MAX);
}

TEST(Scheduler, CancelThenRescheduleAfterKeepsSurvivorOrder) {
  // Determinism-contract regression (see scheduler.hpp): cancelling an
  // event must not perturb the relative order of the survivors, and an
  // event re-scheduled via schedule_after at the same timestamp gets a
  // fresh seq — it lands *behind* every event queued before the cancel,
  // including ones scheduled after the victim.
  Scheduler s;
  std::vector<char> order;
  s.schedule_at(SimTime::from_ms(1), [&] { order.push_back('a'); });
  const EventId victim =
      s.schedule_at(SimTime::from_ms(1), [&] { order.push_back('X'); });
  s.schedule_at(SimTime::from_ms(1), [&] { order.push_back('b'); });
  s.schedule_at(SimTime::from_ms(1), [&] { order.push_back('c'); });
  s.cancel(victim);
  // "Re-schedule" the cancelled work relative to now (t=0): same firing
  // time as the survivors, but a later seq.
  s.schedule_after(SimTime::from_ms(1), [&] { order.push_back('x'); });
  s.run();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b', 'c', 'x'}));
}

TEST(Scheduler, CancelRescheduleInterleavingsAreSeqStable) {
  // Exhaustive small-scale check: for every victim position k, cancelling
  // event k and re-issuing it leaves the other events in their original
  // relative order, with the replacement strictly last. The cancelled seq
  // is consumed, never recycled.
  for (int k = 0; k < 4; ++k) {
    Scheduler s;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 4; ++i) {
      ids.push_back(
          s.schedule_at(SimTime::from_us(7), [&order, i] { order.push_back(i); }));
    }
    s.cancel(ids[static_cast<std::size_t>(k)]);
    const EventId re =
        s.schedule_at(SimTime::from_us(7), [&order, k] { order.push_back(10 + k); });
    EXPECT_GT(re.seq, ids.back().seq)
        << "seq of a cancelled event must not be reused";
    s.run();
    std::vector<int> expect;
    for (int i = 0; i < 4; ++i) {
      if (i != k) expect.push_back(i);
    }
    expect.push_back(10 + k);
    EXPECT_EQ(order, expect) << "victim position " << k;
  }
}

TEST(Scheduler, CancelInsideRunningEventAffectsSameTimestampBatch) {
  // An event may cancel a later event that shares its timestamp; the
  // cancel wins because (time, seq) order guarantees the canceller runs
  // first. A schedule_after issued from the same event fires after the
  // surviving batch.
  Scheduler s;
  std::vector<char> order;
  EventId doomed{};
  s.schedule_at(SimTime::from_ms(2), [&] {
    order.push_back('A');
    s.cancel(doomed);
    s.schedule_after(SimTime::zero(), [&] { order.push_back('Z'); });
  });
  doomed = s.schedule_at(SimTime::from_ms(2), [&] { order.push_back('X'); });
  s.schedule_at(SimTime::from_ms(2), [&] { order.push_back('B'); });
  s.run();
  EXPECT_EQ(order, (std::vector<char>{'A', 'B', 'Z'}));
}

TEST(TraceSink, RecordsAndQueries) {
  TraceSink t;
  t.record(SimTime::from_us(1), "can0", "tx", "id=0x100");
  t.record(SimTime::from_us(2), "can0", "rx", "id=0x100");
  t.record(SimTime::from_us(3), "gateway", "drop", "rule=fw1");
  EXPECT_EQ(t.records().size(), 3u);
  EXPECT_EQ(t.count("can0"), 2u);
  EXPECT_EQ(t.count("can0", "tx"), 1u);
  EXPECT_EQ(t.count("", "drop"), 1u);
  ASSERT_NE(t.find_first("gateway"), nullptr);
  EXPECT_EQ(t.find_first("gateway")->detail, "rule=fw1");
  EXPECT_EQ(t.find_first("nosuch"), nullptr);
}

TEST(TraceSink, DisabledRecordsNothing) {
  TraceSink t;
  t.set_enabled(false);
  t.record(SimTime::zero(), "x", "y");
  EXPECT_TRUE(t.records().empty());
}

}  // namespace
}  // namespace aseck::sim
