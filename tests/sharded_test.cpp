// Tests for the sharded world: fork-join thread pool, epoch barrier
// semantics, canonical cross-shard merge order, per-shard RNG streams,
// deterministic telemetry merge, and thread-count invariance of the city
// model (MetroWorld digests must be byte-identical for 1 vs N threads).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sharded.hpp"
#include "sim/threadpool.hpp"
#include "util/smallfn.hpp"
#include "v2x/citynet.hpp"

namespace aseck::sim {
namespace {

using util::SimTime;

// ---------------------------------------------------------------------------
// SmallFn

TEST(SmallFn, InvokesAndMoves) {
  int hits = 0;
  util::SmallFn<void(int), 32> f([&hits](int k) { hits += k; });
  ASSERT_TRUE(static_cast<bool>(f));
  f(2);
  EXPECT_EQ(hits, 2);
  util::SmallFn<void(int), 32> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  g(3);
  EXPECT_EQ(hits, 5);
  g.reset();
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(SmallFn, MoveOnlyCaptureAndReturnValue) {
  auto p = std::make_unique<int>(7);
  util::SmallFn<int(), 16> f([q = std::move(p)] { return *q; });
  EXPECT_EQ(f(), 7);
  util::SmallFn<int(), 16> g;
  g = std::move(f);
  EXPECT_EQ(g(), 7);
}

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, ParallelForRunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossCallsAndEmptyRange) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(8, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i));
    });
  }
  EXPECT_EQ(sum.load(), 50 * 28);
  pool.parallel_for(0, [&](std::size_t) { sum.fetch_add(1000); });
  EXPECT_EQ(sum.load(), 50 * 28);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool survives an exception and keeps working.
  std::atomic<int> ok{0};
  pool.parallel_for(16, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 16);
}

TEST(ThreadPool, FirstExceptionWinsWhenSeveralBatchesThrow) {
  // With threads == 1 parallel_for is an inline loop, so "first caught" is
  // deterministic: the lowest throwing index must be the one rethrown even
  // though later indices throw too.
  ThreadPool pool(1);
  try {
    pool.parallel_for(32, [&](std::size_t i) {
      if (i == 5 || i == 20) throw std::runtime_error("idx " + std::to_string(i));
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "idx 5");
  }

  // Multi-threaded: every index still runs or is abandoned cleanly, some
  // exception surfaces, and the pool stays reusable afterwards.
  ThreadPool wide(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(wide.parallel_for(64,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i % 7 == 3) {
                                     throw std::runtime_error("mid-batch");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_GT(ran.load(), 0);
  std::atomic<int> after{0};
  wide.parallel_for(64, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

// ---------------------------------------------------------------------------
// ShardedWorld

ShardedWorldConfig grid_cfg(double w, double h, double cell, unsigned threads) {
  ShardedWorldConfig cfg;
  cfg.width_m = w;
  cfg.height_m = h;
  cfg.cell_m = cell;
  cfg.threads = threads;
  cfg.epoch = SimTime::from_ms(100);
  cfg.seed = 42;
  return cfg;
}

TEST(ShardedWorld, GridGeometryAndIndexing) {
  ShardedWorld w(grid_cfg(1000, 500, 250, 1));
  EXPECT_EQ(w.cols(), 4u);
  EXPECT_EQ(w.rows(), 2u);
  EXPECT_EQ(w.shard_count(), 8u);
  EXPECT_EQ(w.shard_index_at(0, 0), 0u);
  EXPECT_EQ(w.shard_index_at(999, 499), 7u);
  EXPECT_EQ(w.shard_index_at(-50, -50), 0u);       // clamps
  EXPECT_EQ(w.shard_index_at(5000, 5000), 7u);     // clamps
  EXPECT_EQ(w.shard(5).col(), 1u);
  EXPECT_EQ(w.shard(5).row(), 1u);
  EXPECT_EQ(w.shard(5).index(), 5u);
}

TEST(ShardedWorld, PostDeliversAtNextEpochBoundary) {
  ShardedWorld w(grid_cfg(500, 250, 250, 1));  // 2x1 shards
  SimTime seen = SimTime::zero();
  w.shard(0).sched().schedule_at(SimTime::from_ms(30), [&w, &seen] {
    w.shard(0).post(1, w.shard(0).sched().now(), [&seen](Shard& dst) {
      seen = dst.sched().now();
    });
  });
  w.run_until(SimTime::from_ms(100));
  // Posted at t=30ms inside epoch [0, 100ms): handled at the boundary.
  EXPECT_EQ(seen, SimTime::from_ms(100));
  EXPECT_EQ(w.shard(1).messages_in(), 1u);
  EXPECT_EQ(w.messages(), 1u);
}

TEST(ShardedWorld, LateDeliverAtSchedulesIntoDestinationQueue) {
  ShardedWorld w(grid_cfg(500, 250, 250, 1));
  SimTime seen = SimTime::zero();
  w.shard(0).sched().schedule_at(SimTime::from_ms(10), [&w, &seen] {
    w.shard(0).post(1, SimTime::from_ms(350), [&seen](Shard& dst) {
      seen = dst.sched().now();
    });
  });
  w.run_until(SimTime::from_s(1));
  EXPECT_EQ(seen, SimTime::from_ms(350));
}

TEST(ShardedWorld, RejectsBadDestination) {
  ShardedWorld w(grid_cfg(500, 250, 250, 1));
  w.shard(0).sched().schedule_at(SimTime::zero(), [&w] {
    EXPECT_THROW(
        w.shard(0).post(99, SimTime::zero(), [](Shard&) {}),
        std::out_of_range);
  });
  w.run_until(SimTime::from_ms(100));
}

TEST(ShardedWorld, CanonicalMergeOrderAscendingSourceThenPostOrder) {
  // 3x3 grid; every shard (including the center itself) posts two tagged
  // messages to the center shard 4 during epoch 0. Arrival order must be
  // (source shard ascending, post order within source) regardless of
  // thread count.
  for (unsigned threads : {1u, 4u}) {
    ShardedWorld w(grid_cfg(300, 300, 100, threads));
    ASSERT_EQ(w.shard_count(), 9u);
    std::vector<int> arrivals;
    for (std::uint32_t s = 0; s < 9; ++s) {
      w.shard(s).sched().schedule_at(SimTime::from_ms(1), [&w, &arrivals, s] {
        for (int k = 0; k < 2; ++k) {
          const int tag = static_cast<int>(s) * 10 + k;
          w.shard(s).post(4, w.shard(s).sched().now(),
                          [&arrivals, tag](Shard&) { arrivals.push_back(tag); });
        }
      });
    }
    w.run_until(SimTime::from_ms(100));
    const std::vector<int> expect{0,  1,  10, 11, 20, 21, 30, 31, 40,
                                  41, 50, 51, 60, 61, 70, 71, 80, 81};
    EXPECT_EQ(arrivals, expect) << "threads=" << threads;
  }
}

TEST(ShardedWorld, FarMessagesArriveAfterNeighborsInSourceOrder) {
  // 5x1 strip: shard 2 has neighbors {1, 2, 3}; shards 0 and 4 are "far".
  ShardedWorld w(grid_cfg(500, 100, 100, 1));
  ASSERT_EQ(w.shard_count(), 5u);
  std::vector<int> arrivals;
  for (std::uint32_t s : {4u, 0u, 3u, 1u}) {  // scramble the posting order
    w.shard(s).sched().schedule_at(SimTime::from_ms(1), [&w, &arrivals, s] {
      w.shard(s).post(2, w.shard(s).sched().now(),
                      [&arrivals, s](Shard&) { arrivals.push_back(static_cast<int>(s)); });
    });
  }
  w.run_until(SimTime::from_ms(100));
  // Neighbors (1, 3) first in ascending order, then far sources (0, 4).
  EXPECT_EQ(arrivals, (std::vector<int>{1, 3, 0, 4}));
}

TEST(ShardedWorld, HandlerPostsDeliverNextEpoch) {
  ShardedWorld w(grid_cfg(500, 250, 250, 1));
  std::vector<std::uint64_t> at_ms;
  w.shard(0).sched().schedule_at(SimTime::from_ms(5), [&w] {
    w.shard(0).post(1, w.shard(0).sched().now(), [&w](Shard& dst) {
      // Posting from a merge handler: lands at the *following* boundary.
      dst.post(0, dst.sched().now(), [](Shard&) {});
    });
  });
  w.run_until(SimTime::from_ms(300));
  EXPECT_EQ(w.messages(), 2u);
}

TEST(ShardedWorld, PerShardRngMatchesForStream) {
  ShardedWorld w(grid_cfg(300, 300, 100, 1));
  for (std::uint32_t i = 0; i < w.shard_count(); ++i) {
    util::Rng expect = util::Rng::for_stream(42, i);
    EXPECT_EQ(w.shard(i).rng().next_u64(), expect.next_u64()) << "shard " << i;
  }
}

TEST(ShardedWorld, MergedMetricsEqualSingleRegistry) {
  ShardedWorld w(grid_cfg(300, 300, 100, 1));
  MetricsRegistry single;
  for (std::uint32_t i = 0; i < w.shard_count(); ++i) {
    w.shard(i).metrics().counter("events").inc(i + 1);
    w.shard(i).metrics().histogram("lat", 0.0, 100.0, 4).record(10.0 * i);
    single.counter("events").inc(i + 1);
    single.histogram("lat", 0.0, 100.0, 4).record(10.0 * i);
  }
  EXPECT_EQ(w.merged_metrics_json(), single.to_json());
}

TEST(ShardedWorld, EpochCountAndClockAdvance) {
  ShardedWorld w(grid_cfg(300, 300, 100, 1));
  w.run_until(SimTime::from_ms(250));
  // The final epoch clamps to `until` (Scheduler::run_until semantics), so
  // the world stops exactly at the requested horizon.
  EXPECT_EQ(w.now(), SimTime::from_ms(250));
  EXPECT_EQ(w.epochs(), 3u);  // [0,100) [100,200) [200,250)
  w.run_until(SimTime::from_ms(250));  // no-op: already there
  EXPECT_EQ(w.epochs(), 3u);
  w.run_until(SimTime::from_ms(300));
  EXPECT_EQ(w.now(), SimTime::from_ms(300));
  EXPECT_EQ(w.epochs(), 4u);
}

// ---------------------------------------------------------------------------
// MetroWorld (city model) — thread-count invariance

v2x::MetroConfig metro_cfg(unsigned threads) {
  v2x::MetroConfig cfg;
  cfg.vehicles = 3000;
  cfg.width_m = 3000;
  cfg.height_m = 3000;
  cfg.cell_m = 500;
  cfg.range_m = 300;
  cfg.threads = threads;
  cfg.seed = 7;
  cfg.pseudonym_period = util::SimTime::from_ms(900);
  // These tests exercise the sharded substrate at 3000 vehicles; modeled
  // crypto keeps them fast. RealCryptoDigestMatchesAcrossThreads below runs
  // the genuine pipeline on a smaller city.
  cfg.real_crypto = false;
  return cfg;
}

TEST(MetroWorld, DigestIsByteIdenticalAcrossThreadCounts) {
  v2x::MetroWorld one(metro_cfg(1));
  one.run_until(SimTime::from_s(2));
  const std::string d1 = one.digest_json();

  v2x::MetroWorld four(metro_cfg(4));
  four.run_until(SimTime::from_s(2));
  EXPECT_EQ(four.digest_json(), d1);

  // And the digest actually covers a busy simulation, not a trivial one.
  const auto t = one.totals();
  EXPECT_GT(t.bsm_tx, 10000u);
  EXPECT_GT(t.rx, t.bsm_tx);        // dense city: >1 receiver per tx
  EXPECT_GT(t.rx_cross, 0u);        // cross-shard spill exercised
  EXPECT_GT(t.migrations, 0u);      // vehicles crossed cells
  EXPECT_GT(t.rotations, 0u);       // pseudonym churn exercised
  EXPECT_GT(t.lost, 0u);            // channel loss exercised
}

TEST(MetroWorld, RunsAreReproducibleAndSeedSensitive) {
  v2x::MetroConfig cfg = metro_cfg(2);
  cfg.vehicles = 500;
  cfg.width_m = 1500;
  cfg.height_m = 1500;
  v2x::MetroWorld a(cfg), b(cfg);
  a.run_until(SimTime::from_s(1));
  b.run_until(SimTime::from_s(1));
  EXPECT_EQ(a.state_hash(), b.state_hash());
  EXPECT_EQ(a.digest_json(), b.digest_json());

  cfg.seed = 8;
  v2x::MetroWorld c(cfg);
  c.run_until(SimTime::from_s(1));
  EXPECT_NE(c.state_hash(), a.state_hash());
}

TEST(MetroWorld, VehicleCountIsConservedAcrossMigrations) {
  v2x::MetroConfig cfg = metro_cfg(2);
  cfg.vehicles = 800;
  cfg.width_m = 1500;
  cfg.height_m = 1500;
  v2x::MetroWorld m(cfg);
  m.run_until(SimTime::from_s(3));
  std::size_t count = 0;
  auto& w = m.world();
  // All vehicles still exist exactly once (state hash walks the same lists;
  // here we just recount through totals-independent state).
  EXPECT_GT(m.totals().migrations, 0u);
  EXPECT_EQ(w.now(), SimTime::from_s(3));
  count = cfg.vehicles;  // conservation asserted via digest equality below
  v2x::MetroWorld n(cfg);
  n.run_until(SimTime::from_s(3));
  EXPECT_EQ(n.digest_json(), m.digest_json());
  EXPECT_EQ(count, cfg.vehicles);
}

TEST(MetroWorld, RejectsCellSmallerThanRange) {
  v2x::MetroConfig cfg;
  cfg.cell_m = 100;
  cfg.range_m = 300;
  EXPECT_THROW(v2x::MetroWorld{cfg}, std::invalid_argument);
}

TEST(MetroWorld, RealCryptoDigestMatchesAcrossThreads) {
  auto cfg = [](unsigned threads) {
    v2x::MetroConfig c;
    c.vehicles = 400;
    c.width_m = 1500;
    c.height_m = 1500;
    c.cell_m = 500;
    c.range_m = 300;
    c.threads = threads;
    c.seed = 11;
    c.pseudonym_period = util::SimTime::from_ms(700);
    c.real_crypto = true;
    c.crypto_batch = 32;
    return c;
  };
  v2x::MetroWorld one(cfg(1));
  one.run_until(SimTime::from_s(1));
  const std::string d1 = one.digest_json();

  v2x::MetroWorld two(cfg(2));
  two.run_until(SimTime::from_s(1));
  EXPECT_EQ(two.digest_json(), d1);

  // Genuine crypto actually ran: signatures were produced, real batches
  // verified, the admitted cache amortized repeat receptions, and every
  // honest beacon passed.
  const auto t = one.totals();
  EXPECT_GT(t.beacon_signs, 400u);     // >1 rotation each
  EXPECT_GT(t.verify_enqueued, 0u);
  EXPECT_GT(t.admit_hits, t.verify_enqueued);  // cache carries the load
  EXPECT_EQ(t.verify_fail, 0u);
  EXPECT_GT(t.rx_cross, 0u);  // spill path carried signatures too
}

TEST(MetroWorld, BeaconKeyAndDigestArePure) {
  const auto k1 = v2x::MetroWorld::beacon_key(7, 2);
  const auto k2 = v2x::MetroWorld::beacon_key(7, 2);
  EXPECT_EQ(k1.public_key(), k2.public_key());
  EXPECT_FALSE(v2x::MetroWorld::beacon_key(7, 3).public_key() ==
               k1.public_key());
  const auto d = v2x::MetroWorld::beacon_digest(7, 2, 99);
  EXPECT_EQ(d, v2x::MetroWorld::beacon_digest(7, 2, 99));
  EXPECT_NE(d, v2x::MetroWorld::beacon_digest(7, 2, 100));
  // The signature over the beacon verifies under the derived public key.
  const auto sig = k1.sign_digest(d);
  EXPECT_TRUE(crypto::ecdsa_verify_digest(k1.public_key(), d, sig));
}

TEST(MetroWorld, TempIdDerivationIsPure) {
  EXPECT_EQ(v2x::MetroWorld::temp_id_for(12, 3), v2x::MetroWorld::temp_id_for(12, 3));
  EXPECT_NE(v2x::MetroWorld::temp_id_for(12, 3), v2x::MetroWorld::temp_id_for(12, 4));
  EXPECT_NE(v2x::MetroWorld::temp_id_for(12, 3), v2x::MetroWorld::temp_id_for(13, 3));
}

}  // namespace
}  // namespace aseck::sim
