// Fleet campaign tests: staggered-wave rollout with abort threshold,
// power-loss resume through the staging journal, the confirm watchdog, and
// the retry policy's backoff clamp / jitter determinism.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ecu/flash.hpp"
#include "ota/campaign.hpp"
#include "safety/supervisor.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"

namespace aseck::ota {
namespace {

using ecu::FirmwareImage;
using ecu::Flash;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::Telemetry;
using util::Bytes;

Bytes patterned(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31 + salt) & 0xFF);
  }
  return b;
}

/// A fleet harness: two published repos, N provisioned vehicles, a runner.
struct FleetFixture {
  Scheduler sched;
  crypto::Drbg rng{2026u};
  Repository director{rng, "director", SimTime::from_s(500000)};
  Repository images{rng, "image-repo", SimTime::from_s(500000)};
  Bytes fw = patterned(6 * Flash::kPageSize, 0x42);  // v2, 6 full pages
  std::vector<std::unique_ptr<Flash>> flashes;
  std::vector<std::unique_ptr<FullVerificationClient>> clients;

  FleetFixture() {
    director.add_target("vecu-fw", fw, 2, "vecu-hw");
    images.add_target("vecu-fw", fw, 2, "vecu-hw");
    director.publish(SimTime::from_ms(1));
    images.publish(SimTime::from_ms(1));
  }

  void add_vehicles(CampaignRunner& runner, std::size_t n,
                    std::function<bool()> self_test = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      flashes.push_back(std::make_unique<Flash>());
      flashes.back()->provision(
          FirmwareImage{"vecu-fw", 1, patterned(2 * Flash::kPageSize, 0x11)});
      clients.push_back(std::make_unique<FullVerificationClient>(
          "vm" + std::to_string(i), director.trusted_root(),
          images.trusted_root()));
      runner.add_vehicle("vm" + std::to_string(i), *flashes.back(),
                         *clients.back(), self_test);
    }
  }

  CampaignConfig config() {
    CampaignConfig cfg;
    cfg.wave_size = 2;
    cfg.wave_gap = SimTime::from_s(5);
    cfg.vehicle_stagger = SimTime::from_ms(200);
    cfg.wave_abort_ratio = 0.5;
    cfg.retry.chunk_bytes = 8 * 1024;
    cfg.retry.link_bytes_per_sec = 1'000'000;
    return cfg;
  }
};

TEST(Campaign, StaggeredWavesUpdateWholeFleet) {
  FleetFixture f;
  CampaignRunner runner(f.sched, f.director, f.images, "vecu-fw", "vecu-hw",
                        f.config());
  f.add_vehicles(runner, 5);  // wave_size 2 -> 3 waves
  bool done = false;
  runner.start([&] { done = true; });
  f.sched.run_until(SimTime::from_s(300));

  EXPECT_TRUE(done);
  EXPECT_TRUE(runner.finished());
  EXPECT_FALSE(runner.aborted());
  EXPECT_EQ(runner.waves_dispatched(), 3u);
  EXPECT_EQ(runner.updated(), 5u);
  EXPECT_EQ(runner.bricked(), 0u);
  EXPECT_DOUBLE_EQ(runner.completion_rate(), 1.0);
  for (const VehicleLedger& l : runner.ledger()) {
    EXPECT_EQ(l.outcome, VehicleOutcome::kUpdated) << l.id;
    EXPECT_EQ(l.final_version, 2u) << l.id;
    EXPECT_EQ(l.fetch_sessions, 1) << l.id;
  }
  // Vehicles in one wave start staggered, so they finish at distinct times.
  EXPECT_NE(runner.ledger()[0].finished_at.ns, runner.ledger()[1].finished_at.ns);
}

TEST(Campaign, FailedSelfTestsAbortAfterFirstWave) {
  FleetFixture f;
  CampaignRunner runner(f.sched, f.director, f.images, "vecu-fw", "vecu-hw",
                        f.config());
  f.add_vehicles(runner, 5, [] { return false; });  // bad image everywhere
  runner.start();
  f.sched.run_until(SimTime::from_s(300));

  EXPECT_TRUE(runner.finished());
  EXPECT_TRUE(runner.aborted());
  EXPECT_EQ(runner.waves_dispatched(), 1u);
  EXPECT_EQ(runner.count(VehicleOutcome::kRevertedSelfTest), 2u);
  EXPECT_EQ(runner.count(VehicleOutcome::kSkipped), 3u);
  EXPECT_EQ(runner.updated(), 0u);
  // Every vehicle — reverted or skipped — still runs the old image.
  for (const VehicleLedger& l : runner.ledger()) {
    EXPECT_EQ(l.final_version, 1u) << l.id;
  }
}

TEST(Campaign, PowerLossDuringFetchResumesFromJournalWatermark) {
  FleetFixture f;
  FaultPlan plan(f.sched, 7);
  FaultSpec spec;
  spec.target = "vm.flash";
  spec.kind = FaultKind::kPowerLoss;
  spec.probability = 0.0;
  spec.page_index = 3;  // ops: 0 = staging header, 1..6 = pages; tear page 3
  plan.window(SimTime::zero(), SimTime::from_s(100000), spec);

  Flash flash;
  flash.provision(
      FirmwareImage{"vecu-fw", 1, patterned(2 * Flash::kPageSize, 0x11)});
  flash.set_fault_port(&plan.port("vm.flash"));
  FullVerificationClient client("vm0", f.director.trusted_root(),
                                f.images.trusted_root());
  FullVerificationClient::RetryPolicy policy;
  policy.chunk_bytes = Flash::kPageSize;
  policy.link_bytes_per_sec = 1'000'000;

  // First session dies at the injected cut.
  std::optional<FullVerificationClient::RetryOutcome> first;
  f.sched.schedule_at(SimTime::from_ms(10), [&] {
    client.fetch_and_stage_with_retry(
        f.sched, f.director, f.images, "vecu-fw", "vecu-hw", 1, policy, flash,
        [&](const FullVerificationClient::RetryOutcome& ro) { first = ro; });
  });
  f.sched.run_until(SimTime::from_s(10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->outcome.error, OtaError::kPowerLoss);
  EXPECT_TRUE(flash.lost_power());

  // Reboot: pages 1-2 survived the journal; page 3 is torn and discarded.
  const Flash::BootReport rep = flash.boot(f.sched.now());
  ASSERT_TRUE(rep.bootable);
  EXPECT_TRUE(rep.staging_resumable);
  EXPECT_EQ(rep.resume_watermark, 2 * Flash::kPageSize);

  // Second session resumes: exactly the surviving bytes are never refetched.
  std::optional<FullVerificationClient::RetryOutcome> second;
  f.sched.schedule_after(SimTime::from_ms(10), [&] {
    client.fetch_and_stage_with_retry(
        f.sched, f.director, f.images, "vecu-fw", "vecu-hw", 1, policy, flash,
        [&](const FullVerificationClient::RetryOutcome& ro) { second = ro; });
  });
  f.sched.run_until(f.sched.now() + SimTime::from_s(10));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->outcome.error, OtaError::kOk);
  EXPECT_EQ(second->resume_bytes_saved, 2 * Flash::kPageSize);

  EXPECT_EQ(install_staged(flash, f.sched.now(), SimTime::from_s(30), {}),
            InstallResult::kCommitted);
  ASSERT_NE(flash.active(), nullptr);
  EXPECT_EQ(flash.active()->version, 2u);
  EXPECT_EQ(flash.active()->code, f.fw);
}

TEST(Campaign, ConfirmWatchdogAutoRevertsUnconfirmedActivation) {
  Scheduler sched;
  safety::HealthSupervisor sup(sched, "vehicle");
  Flash flash;
  const FirmwareImage oldf{"vecu-fw", 1, patterned(4096, 0x11)};
  flash.provision(oldf);
  ota::ConfirmWatchdog wd(sched, sup, flash, "flash.confirm",
                          SimTime::from_ms(500));
  ASSERT_TRUE(flash.stage(FirmwareImage{"vecu-fw", 2, patterned(8192, 0x22)}));
  ASSERT_TRUE(flash.activate(SimTime::zero(), SimTime::from_s(2)));
  wd.start();  // commit() never happens: the self-test hung
  sched.run_until(SimTime::from_s(10));

  EXPECT_GE(wd.auto_reverts(), 1u);
  ASSERT_NE(flash.active(), nullptr);
  EXPECT_EQ(flash.active()->version, 1u);
  EXPECT_EQ(flash.active()->code, oldf.code);
}

// Satellite: the max_backoff clamp applies to every attempt past the point
// where the exponential schedule crosses it.
TEST(RetryPolicy, MaxBackoffClampBoundsTotalBackoff) {
  FleetFixture f;
  Telemetry t;
  FaultPlan plan(f.sched, 3);
  plan.bind_telemetry(t);
  f.director.set_fault_port(&plan.port("ota"));
  f.images.set_fault_port(&plan.port("ota"));
  FaultSpec outage;
  outage.target = "ota";
  outage.kind = FaultKind::kOutage;
  plan.window(SimTime::from_ms(1), SimTime::from_s(100000), outage);

  FullVerificationClient client("primary", f.director.trusted_root(),
                                f.images.trusted_root());
  client.bind_telemetry(t);
  FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.initial_backoff = SimTime::from_s(1);
  policy.multiplier = 10.0;
  policy.max_backoff = SimTime::from_s(2);  // clamps attempts 2..5

  std::optional<FullVerificationClient::RetryOutcome> out;
  f.sched.schedule_at(SimTime::from_ms(10), [&] {
    client.fetch_and_verify_with_retry(
        f.sched, f.director, f.images, "vecu-fw", "vecu-hw", 1, policy,
        [&](const FullVerificationClient::RetryOutcome& ro) { out = ro; });
  });
  f.sched.run_until(SimTime::from_s(1000));

  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->outcome.error, OtaError::kRetriesExhausted);
  EXPECT_EQ(out->attempts, 6);
  // Unclamped: 1 + 10 + 100 + 1000 + 10000 s. Clamped: 1 + 2 + 2 + 2 + 2 s.
  EXPECT_EQ(t.metrics->counter_value("ota.primary.backoffs"), 5u);
  EXPECT_EQ(t.metrics->counter_value("ota.primary.backoff_ns_total"),
            9'000'000'000u);
}

// Satellite: jittered backoff draws from a seeded RNG — the schedule varies
// between backoffs but is bit-identical across runs with the same seed.
std::vector<std::string> jittered_backoff_run(std::uint64_t seed) {
  FleetFixture f;
  Telemetry t;
  FaultPlan plan(f.sched, 3);
  f.director.set_fault_port(&plan.port("ota"));
  f.images.set_fault_port(&plan.port("ota"));
  FaultSpec outage;
  outage.target = "ota";
  outage.kind = FaultKind::kOutage;
  plan.window(SimTime::from_ms(1), SimTime::from_s(100000), outage);

  FullVerificationClient client("primary", f.director.trusted_root(),
                                f.images.trusted_root());
  client.bind_telemetry(t);
  std::vector<std::string> backoff_ns;
  const sim::TraceId k_backoff = t.bus->intern("backoff");
  t.bus->subscribe([&](const sim::TraceEvent& e) {
    if (e.kind == k_backoff) backoff_ns.push_back(e.detail);
  });

  util::Rng jitter_rng(seed);
  FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = SimTime::from_s(1);
  policy.multiplier = 1.0;  // flat base: any variation IS the jitter
  policy.jitter = 0.3;
  policy.jitter_rng = &jitter_rng;

  f.sched.schedule_at(SimTime::from_ms(10), [&] {
    client.fetch_and_verify_with_retry(
        f.sched, f.director, f.images, "vecu-fw", "vecu-hw", 1, policy,
        [&](const FullVerificationClient::RetryOutcome&) {});
  });
  f.sched.run_until(SimTime::from_s(1000));
  return backoff_ns;
}

TEST(RetryPolicy, JitterSequenceIsBitIdenticalPerSeed) {
  const std::vector<std::string> a = jittered_backoff_run(99);
  const std::vector<std::string> b = jittered_backoff_run(99);
  ASSERT_EQ(a.size(), 7u);  // max_attempts 8 -> 7 backoffs
  EXPECT_EQ(a, b);
  // The jitter actually perturbs the schedule (flat base, varying draws).
  bool varied = false;
  for (std::size_t i = 1; i < a.size(); ++i) varied |= a[i] != a[0];
  EXPECT_TRUE(varied);
  // A different seed produces a different (still deterministic) sequence.
  const std::vector<std::string> c = jittered_backoff_run(100);
  EXPECT_NE(a, c);
}

TEST(Campaign, ConfigPushSurvivesPowerCutAndBoundsRetries) {
  FleetFixture f;
  CampaignRunner runner(f.sched, f.director, f.images, "vecu-fw", "vecu-hw",
                        f.config());
  // Three vehicles with provisioning stores, one legacy vehicle without.
  std::vector<std::unique_ptr<ecu::KvStore>> kvs;
  for (std::size_t i = 0; i < 4; ++i) {
    f.flashes.push_back(std::make_unique<Flash>());
    f.flashes.back()->provision(
        FirmwareImage{"vecu-fw", 1, patterned(Flash::kPageSize, 0x11)});
    f.clients.push_back(std::make_unique<FullVerificationClient>(
        "vm" + std::to_string(i), f.director.trusted_root(),
        f.images.trusted_root()));
    if (i < 3) {
      kvs.push_back(std::make_unique<ecu::KvStore>());
      kvs.back()->mount();
    }
    runner.add_vehicle("vm" + std::to_string(i), *f.flashes.back(),
                       *f.clients.back(), {}, i < 3 ? kvs[i].get() : nullptr);
  }

  // Vehicle 1's commit is cut mid-transaction: it must reboot (remount) and
  // retry; by the kvstore's atomicity contract the cut attempt is invisible.
  FaultPlan plan{f.sched, 1};
  FaultSpec cut;
  cut.target = "kv1";
  cut.kind = FaultKind::kPowerLoss;
  cut.probability = 0.0;
  cut.page_index = 1;
  plan.window(SimTime::zero(), SimTime::from_s(3600), cut);
  f.sched.run_until(SimTime::from_ms(1));
  kvs[1]->set_fault_port(&plan.port("kv1"));

  ecu::KvTransaction txn;
  txn.put("boot.anchor", Bytes(65, 0x04));
  txn.put("campaign.wave", Bytes{2});
  const auto rep = runner.push_config(txn);
  EXPECT_EQ(rep.vehicles, 3u);  // the kv-less vehicle is not counted
  EXPECT_EQ(rep.committed, 3u);
  EXPECT_EQ(rep.retried, 1u);
  EXPECT_EQ(rep.failed, 0u);
  for (const auto& kv : kvs) {
    ASSERT_NE(kv->get("boot.anchor"), nullptr);
    EXPECT_EQ(*kv->get("campaign.wave"), Bytes{2});
  }

  // A store cut on EVERY write can never commit: the retry loop is bounded
  // and reports the failure instead of spinning.
  FaultSpec storm = cut;
  storm.target = "kv0";
  storm.probability = 1.0;
  storm.page_index = -1;
  plan.window(SimTime::from_ms(2), SimTime::from_s(3600), storm);
  f.sched.run_until(SimTime::from_ms(3));
  kvs[0]->set_fault_port(&plan.port("kv0"));
  const auto rep2 = runner.push_config(txn, /*max_reboots=*/2);
  EXPECT_EQ(rep2.committed, 2u);
  EXPECT_EQ(rep2.failed, 1u);
}

}  // namespace
}  // namespace aseck::ota
