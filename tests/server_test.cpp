// Tests for the campaign-storm-hardened serving front (ota::RepositoryServer):
// admission control and slotted retry-after, metadata snapshot coalescing,
// the chunk cache, delta encoding, the normal -> shed_delta -> shed_refresh
// -> shed_admission degradation ladder under kRepoSlowdown, client-side
// kRetryAfter honoring (the thundering-herd fix), wave-level campaign
// backpressure, the session-ticket frontend, and ota.repo.* metric survival
// across MetricsRegistry::merge_from.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "attacks/corpus.hpp"
#include "cloud/frontend.hpp"
#include "ecu/flash.hpp"
#include "ota/campaign.hpp"
#include "ota/client.hpp"
#include "ota/repository.hpp"
#include "ota/server.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"

namespace aseck::ota {
namespace {

using ecu::FirmwareImage;
using ecu::Flash;
using sim::FaultKind;
using sim::FaultPlan;
using sim::Scheduler;
using sim::Telemetry;
using util::Bytes;
using util::SimTime;

Bytes patterned(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31 + salt) & 0xFF);
  }
  return b;
}

/// Two published repos + a serving front wired to a fault plan.
struct ServerRig {
  Scheduler sched;
  Telemetry t;
  crypto::Drbg rng{777u};
  Repository director{rng, "director", SimTime::from_s(500000)};
  Repository images{rng, "image-repo", SimTime::from_s(500000)};
  Bytes fw = patterned(64 * 1024, 0xF2);
  FaultPlan plan{sched, 21};
  std::unique_ptr<RepositoryServer> server;

  explicit ServerRig(ServerConfig cfg = {}) {
    director.add_target("brake-fw", fw, 2, "brake-hw");
    images.add_target("brake-fw", fw, 2, "brake-hw");
    director.publish(SimTime::from_ms(1));
    images.publish(SimTime::from_ms(1));
    plan.bind_telemetry(t);
    server = std::make_unique<RepositoryServer>(director, images, cfg);
    server->set_fault_port(&plan.port("ota.server"));
    server->bind_telemetry(t);
  }

  FullVerificationClient make_client(const std::string& name) {
    FullVerificationClient c(name, director.trusted_root(),
                             images.trusted_root());
    c.bind_telemetry(t);
    return c;
  }
};

// ---------------------------------------------------------------------------
// Satellite: Repository copy-on-write snapshot

TEST(RepositorySnapshot, SharedUntilRepublish) {
  crypto::Drbg rng(1u);
  Repository repo(rng, "director", SimTime::from_s(3600));
  const std::uint64_t gen = repo.generation();
  auto a = repo.snapshot();
  auto b = repo.snapshot();
  // One copy per generation: every fetch shares the same immutable bundle.
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(repo.generation(), gen);

  repo.publish(SimTime::from_s(1));
  EXPECT_GT(repo.generation(), gen);
  auto c = repo.snapshot();
  EXPECT_NE(a.get(), c.get());
  // The old snapshot is still alive and still carries the old version.
  EXPECT_LT(a->timestamp.body.version, c->timestamp.body.version);
}

TEST(RepositorySnapshot, MutableBundleInvalidates) {
  crypto::Drbg rng(2u);
  Repository repo(rng, "director", SimTime::from_s(3600));
  auto a = repo.snapshot();
  (void)repo.mutable_bundle();  // attack hook: must assume mutation
  EXPECT_NE(a.get(), repo.snapshot().get());
}

// ---------------------------------------------------------------------------
// Admission control

TEST(RepositoryServer, TokenBucketShedsWithSlottedRetryAfter) {
  ServerConfig cfg;
  cfg.bucket_burst = 2.0;
  cfg.campaign_rps = 1.0;
  ServerRig rig(cfg);
  const SimTime t0 = SimTime::from_ms(10);
  const MetadataResponse r1 =
      rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  const MetadataResponse r2 =
      rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  const MetadataResponse r3 =
      rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  const MetadataResponse r4 =
      rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  EXPECT_EQ(r1.status, ServeStatus::kOk);
  EXPECT_EQ(r2.status, ServeStatus::kOk);
  EXPECT_EQ(r3.status, ServeStatus::kRetryAfter);
  EXPECT_EQ(r4.status, ServeStatus::kRetryAfter);
  EXPECT_GT(r3.retry_after, SimTime::zero());
  // Successive sheds get successive future slots — the herd de-synchronizer.
  EXPECT_GT(r4.retry_after, r3.retry_after);
  EXPECT_EQ(rig.server->shed(), 2u);
  EXPECT_EQ(rig.server->requests(), 4u);
}

TEST(RepositoryServer, QueueDelayBoundSheds) {
  ServerConfig cfg;
  cfg.metadata_service = SimTime::from_ms(10);
  cfg.max_queue_delay = SimTime::from_ms(15);
  ServerRig rig(cfg);
  const SimTime t0 = SimTime::from_ms(10);
  // Each admitted request extends the virtual queue by 10ms; the third would
  // wait 20ms > 15ms bound.
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kCampaign, t0).status,
            ServeStatus::kOk);
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kCampaign, t0).status,
            ServeStatus::kOk);
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kCampaign, t0).status,
            ServeStatus::kRetryAfter);
  EXPECT_GT(rig.server->max_queue_delay_seen(), SimTime::zero());
}

TEST(RepositoryServer, BackgroundQueueBoundTighterThanCampaign) {
  ServerConfig cfg;
  cfg.metadata_service = SimTime::from_ms(10);
  cfg.max_queue_delay = SimTime::from_ms(40);
  cfg.background_queue_share = 0.25;  // 10ms for background
  ServerRig rig(cfg);
  const SimTime t0 = SimTime::from_ms(10);
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kCampaign, t0).status,
            ServeStatus::kOk);
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kCampaign, t0).status,
            ServeStatus::kOk);
  // 20ms of queue ahead: background (bound 10ms) is shed, campaign
  // (bound 40ms) still gets in — safety-critical traffic preempts polls.
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kBackground, t0).status,
            ServeStatus::kRetryAfter);
  EXPECT_EQ(rig.server->fetch_metadata(ServeClass::kCampaign, t0).status,
            ServeStatus::kOk);
  EXPECT_EQ(rig.server->shed_background(), 1u);
}

TEST(RepositoryServer, AdmissionDisabledNeverSheds) {
  ServerConfig cfg;
  cfg.admission_enabled = false;
  cfg.metadata_service = SimTime::from_ms(10);
  cfg.max_queue_delay = SimTime::from_ms(1);
  cfg.bucket_burst = 1.0;
  ServerRig rig(cfg);
  const SimTime t0 = SimTime::from_ms(10);
  SimTime last = SimTime::zero();
  for (int i = 0; i < 20; ++i) {
    const MetadataResponse r =
        rig.server->fetch_metadata(ServeClass::kCampaign, t0);
    EXPECT_EQ(r.status, ServeStatus::kOk);
    EXPECT_GT(r.latency, last);  // unbounded queue just keeps growing
    last = r.latency;
  }
  EXPECT_EQ(rig.server->shed(), 0u);
}

TEST(RepositoryServer, OutageAnswersRetryAfterOnlyWithAdmission) {
  for (const bool admission : {true, false}) {
    ServerConfig cfg;
    cfg.admission_enabled = admission;
    ServerRig rig(cfg);
    rig.plan.window(SimTime::from_ms(5), SimTime::from_ms(100),
                    {"ota.server", FaultKind::kOutage});
    rig.sched.run_until(SimTime::from_ms(10));
    const MetadataResponse r =
        rig.server->fetch_metadata(ServeClass::kCampaign, SimTime::from_ms(10));
    if (admission) {
      // The front is overloaded/dark but still directs the herd.
      EXPECT_EQ(r.status, ServeStatus::kRetryAfter);
      EXPECT_GT(r.retry_after, SimTime::zero());
    } else {
      EXPECT_EQ(r.status, ServeStatus::kUnavailable);
    }
  }
}

// ---------------------------------------------------------------------------
// Coalescing + chunk cache + delta

TEST(RepositoryServer, MetadataCoalescedPerGeneration) {
  ServerRig rig;
  const SimTime t0 = SimTime::from_ms(10);
  const MetadataResponse r1 =
      rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  const MetadataResponse r2 =
      rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  ASSERT_EQ(r1.status, ServeStatus::kOk);
  ASSERT_EQ(r2.status, ServeStatus::kOk);
  EXPECT_FALSE(r1.coalesced);
  EXPECT_TRUE(r2.coalesced);
  // Identical shared_ptr, not an equal copy: one bundle serves the wave.
  EXPECT_EQ(r1.snapshot.director.get(), r2.snapshot.director.get());
  EXPECT_EQ(r1.snapshot.generation, r2.snapshot.generation);

  rig.director.publish(SimTime::from_ms(20));
  const MetadataResponse r3 =
      rig.server->fetch_metadata(ServeClass::kCampaign, SimTime::from_ms(30));
  ASSERT_EQ(r3.status, ServeStatus::kOk);
  EXPECT_FALSE(r3.coalesced);
  EXPECT_GT(r3.snapshot.generation, r2.snapshot.generation);
  EXPECT_NE(r3.snapshot.director.get(), r2.snapshot.director.get());
  EXPECT_EQ(rig.server->coalesced(), 1u);
  EXPECT_EQ(rig.server->snapshot_refreshes(), 2u);
}

TEST(RepositoryServer, ChunkCacheHitsRepeatedRanges) {
  ServerRig rig;
  const SimTime t0 = SimTime::from_ms(10);
  const ChunkResponse miss =
      rig.server->fetch_chunk(ServeClass::kCampaign, "brake-fw", 0, 8192, t0);
  // Later instant so the virtual queue is drained: the comparison below is
  // pure service time, not queueing.
  const ChunkResponse hit = rig.server->fetch_chunk(
      ServeClass::kCampaign, "brake-fw", 0, 8192, SimTime::from_ms(11));
  ASSERT_EQ(miss.status, ServeStatus::kOk);
  ASSERT_EQ(hit.status, ServeStatus::kOk);
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.chunk, miss.chunk);
  EXPECT_LT(hit.latency, miss.latency);  // RAM serve is cheaper
  EXPECT_DOUBLE_EQ(rig.server->cache_hit_rate(), 0.5);

  // Republishing the image bumps the generation: the cache can never serve
  // stale bytes.
  rig.images.publish(SimTime::from_ms(20));
  const ChunkResponse after = rig.server->fetch_chunk(
      ServeClass::kCampaign, "brake-fw", 0, 8192, SimTime::from_ms(30));
  ASSERT_EQ(after.status, ServeStatus::kOk);
  EXPECT_FALSE(after.cache_hit);
}

TEST(RepositoryServer, DeltaEncodingSavesWireBytes) {
  ServerRig rig;
  Bytes base = rig.fw;
  for (std::size_t i = 100; i < 110; ++i) base[i] ^= 0xFF;  // 10 bytes differ
  rig.server->register_delta_base("brake-fw", base);
  const ChunkResponse r = rig.server->fetch_chunk(
      ServeClass::kCampaign, "brake-fw", 0, 8192, SimTime::from_ms(10));
  ASSERT_EQ(r.status, ServeStatus::kOk);
  EXPECT_TRUE(r.delta);
  EXPECT_EQ(r.wire_bytes, 10u + 16u);  // differing bytes + frame header
  EXPECT_EQ(r.chunk.size(), 8192u);    // payload is still the full range
  EXPECT_EQ(rig.server->delta_bytes_saved(), 8192u - 26u);
  EXPECT_EQ(rig.server->bytes_sent(), 26u);
}

TEST(RepositoryServer, UnknownImageIsUnavailable) {
  ServerRig rig;
  const ChunkResponse r = rig.server->fetch_chunk(
      ServeClass::kCampaign, "no-such-fw", 0, 8192, SimTime::from_ms(10));
  EXPECT_EQ(r.status, ServeStatus::kUnavailable);
}

// ---------------------------------------------------------------------------
// Degradation ladder under kRepoSlowdown

ServerConfig ladder_config() {
  ServerConfig cfg;
  cfg.metadata_service = SimTime::from_ms(1);
  cfg.max_queue_delay = SimTime::from_ms(2);
  cfg.tier_window = SimTime::from_ms(50);
  cfg.campaign_rps = 100000.0;
  cfg.background_rps = 100000.0;
  cfg.bucket_burst = 100000.0;
  return cfg;
}

TEST(RepositoryServer, SlowdownWalksLadderAndRecovers) {
  ServerRig rig(ladder_config());
  sim::FaultSpec slow{"ota.server", FaultKind::kRepoSlowdown};
  slow.delay = SimTime::from_ms(20);
  rig.plan.window(SimTime::from_ms(1), SimTime::from_ms(400), slow);

  bool background_shed_at_refresh_tier = false;
  for (std::uint64_t ms = 2; ms <= 400; ms += 2) {
    const SimTime t = SimTime::from_ms(ms);
    rig.sched.run_until(t);
    (void)rig.server->fetch_metadata(ServeClass::kCampaign, t);
    if (!background_shed_at_refresh_tier &&
        rig.server->tier() >= ServerTier::kShedRefresh) {
      // At shed_refresh+ the background class is rejected outright while
      // campaign traffic still competes for the (tightened) queue.
      const MetadataResponse bg =
          rig.server->fetch_metadata(ServeClass::kBackground, t);
      EXPECT_EQ(bg.status, ServeStatus::kRetryAfter);
      background_shed_at_refresh_tier = true;
    }
  }
  EXPECT_TRUE(background_shed_at_refresh_tier);
  EXPECT_EQ(rig.server->peak_tier(), ServerTier::kShedAdmission);
  EXPECT_GE(rig.server->degraded_transitions(), 3u);

  // Slowdown window over: idle observation windows walk the ladder back to
  // normal — each transition mirrored on the trace bus.
  rig.sched.run_until(SimTime::from_s(1));
  for (std::uint64_t ms = 1000; ms <= 1500; ms += 10) {
    rig.server->observe(SimTime::from_ms(ms));
  }
  EXPECT_EQ(rig.server->tier(), ServerTier::kNormal);
  ASSERT_FALSE(rig.server->transitions().empty());
  EXPECT_EQ(rig.server->transitions().back().to, ServerTier::kNormal);
  EXPECT_GT(rig.t.bus->count("ota.repo", "tier_up"), 0u);
  EXPECT_GT(rig.t.bus->count("ota.repo", "tier_down"), 0u);
}

TEST(RepositoryServer, ShedDeltaTierDisablesDeltaEncoding) {
  ServerRig rig(ladder_config());
  Bytes base = rig.fw;
  base[0] ^= 0xFF;
  rig.server->register_delta_base("brake-fw", base);
  sim::FaultSpec slow{"ota.server", FaultKind::kRepoSlowdown};
  slow.delay = SimTime::from_ms(20);
  rig.plan.window(SimTime::from_ms(1), SimTime::from_ms(400), slow);
  // Drive the ladder up with metadata traffic...
  std::uint64_t ms = 2;
  for (; ms <= 200 && rig.server->tier() == ServerTier::kNormal; ms += 2) {
    rig.sched.run_until(SimTime::from_ms(ms));
    (void)rig.server->fetch_metadata(ServeClass::kCampaign,
                                     SimTime::from_ms(ms));
  }
  ASSERT_GE(rig.server->tier(), ServerTier::kShedDelta);
  // ...then, still inside the brown-out, keep asking until a chunk is
  // admitted: it must NOT be delta-encoded (delta CPU is the first
  // capability shed).
  for (; ms <= 390; ms += 2) {
    rig.sched.run_until(SimTime::from_ms(ms));
    const ChunkResponse r = rig.server->fetch_chunk(
        ServeClass::kCampaign, "brake-fw", 0, 8192, SimTime::from_ms(ms));
    if (r.status == ServeStatus::kOk) {
      EXPECT_GE(rig.server->tier(), ServerTier::kShedDelta);
      EXPECT_FALSE(r.delta);
      EXPECT_EQ(r.wire_bytes, r.chunk.size());
      return;
    }
  }
  FAIL() << "no chunk was ever admitted";
}

// ---------------------------------------------------------------------------
// Client cooperation: kRetryAfter honored, deferrals != attempts

TEST(OtaServerClient, FullFetchThroughServingFront) {
  ServerRig rig;
  FullVerificationClient client = rig.make_client("primary");
  FullVerificationClient::RetryPolicy policy;
  policy.chunk_bytes = 8192;
  policy.server = rig.server.get();
  bool done = false;
  FullVerificationClient::RetryOutcome result;
  rig.sched.schedule_at(SimTime::from_ms(10), [&] {
    client.fetch_and_verify_with_retry(
        rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1, policy,
        [&](const FullVerificationClient::RetryOutcome& ro) {
          result = ro;
          done = true;
        });
  });
  rig.sched.run_until(SimTime::from_s(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.outcome.error, OtaError::kOk);
  EXPECT_EQ(result.outcome.image, rig.fw);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.server_deferrals, 0);
  EXPECT_EQ(result.wire_bytes, rig.fw.size());
  EXPECT_GT(rig.server->served(), 0u);
}

TEST(OtaServerClient, DeltaBaseShrinksWireBytes) {
  ServerRig rig;
  Bytes base = rig.fw;
  for (std::size_t i = 0; i < base.size(); i += 1024) base[i] ^= 0x55;
  rig.server->register_delta_base("brake-fw", base);
  FullVerificationClient client = rig.make_client("primary");
  FullVerificationClient::RetryPolicy policy;
  policy.chunk_bytes = 8192;
  policy.server = rig.server.get();
  bool done = false;
  FullVerificationClient::RetryOutcome result;
  rig.sched.schedule_at(SimTime::from_ms(10), [&] {
    client.fetch_and_verify_with_retry(
        rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1, policy,
        [&](const FullVerificationClient::RetryOutcome& ro) {
          result = ro;
          done = true;
        });
  });
  rig.sched.run_until(SimTime::from_s(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.outcome.error, OtaError::kOk);
  EXPECT_EQ(result.outcome.image, rig.fw);  // payload reassembled losslessly
  EXPECT_LT(result.wire_bytes, rig.fw.size() / 10);  // only diffs crossed
  EXPECT_EQ(rig.server->delta_chunks(), rig.fw.size() / 8192);
}

TEST(OtaServerClient, RetryAfterDefersWithoutBurningAttempts) {
  ServerRig rig;
  // Outage across the fetch start: with admission control the client is
  // slotted, not failed, so attempt #1 happens after recovery.
  rig.plan.window(SimTime::from_ms(5), SimTime::from_s(2),
                  {"ota.server", FaultKind::kOutage});
  FullVerificationClient client = rig.make_client("primary");
  FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 2;  // would be fatal if deferrals burned attempts
  policy.chunk_bytes = 8192;
  policy.server = rig.server.get();
  bool done = false;
  FullVerificationClient::RetryOutcome result;
  rig.sched.schedule_at(SimTime::from_ms(10), [&] {
    client.fetch_and_verify_with_retry(
        rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1, policy,
        [&](const FullVerificationClient::RetryOutcome& ro) {
          result = ro;
          done = true;
        });
  });
  rig.sched.run_until(SimTime::from_s(60));
  ASSERT_TRUE(done);
  EXPECT_EQ(result.outcome.error, OtaError::kOk);
  EXPECT_GT(result.server_deferrals, 0);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_GT(result.finished_at, SimTime::from_s(2));  // after the outage
}

// ---------------------------------------------------------------------------
// Thundering herd: server-directed backoff de-synchronizes identical clients

struct HerdResult {
  std::vector<SimTime> finished;
  std::size_t failed = 0;
  std::uint64_t digest = 0;
};

HerdResult run_herd(bool admission, std::size_t n) {
  ServerConfig cfg;
  cfg.admission_enabled = admission;
  ServerRig rig(cfg);
  rig.plan.window(SimTime::from_ms(5), SimTime::from_s(2),
                  {"ota.server", FaultKind::kOutage});
  std::vector<std::unique_ptr<FullVerificationClient>> clients;
  HerdResult hr;
  hr.finished.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<FullVerificationClient>(
        "v" + std::to_string(i), rig.director.trusted_root(),
        rig.images.trusted_root()));
    clients.back()->bind_telemetry(rig.t);
  }
  for (std::size_t i = 0; i < n; ++i) {
    FullVerificationClient* c = clients[i].get();
    // Identical retry state on purpose: same policy, same start instant, no
    // local jitter — the worst-case synchronized herd.
    FullVerificationClient::RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff = SimTime::from_ms(100);
    policy.chunk_bytes = 8192;
    policy.server = rig.server.get();
    rig.sched.schedule_at(SimTime::from_ms(10), [&rig, &hr, i, c, policy] {
      c->fetch_and_verify_with_retry(
          rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1,
          policy, [&hr, i](const FullVerificationClient::RetryOutcome& ro) {
            hr.finished[i] = ro.finished_at;
            if (ro.outcome.error != OtaError::kOk) ++hr.failed;
          });
    });
  }
  rig.sched.run_until(SimTime::from_s(120));
  hr.digest = attacks::timeline_digest(*rig.t.bus);
  return hr;
}

TEST(ThunderingHerd, ServerDirectedBackoffDesynchronizesAndRecoversAll) {
  const HerdResult on = run_herd(true, 8);
  EXPECT_EQ(on.failed, 0u) << "admission control must recover every vehicle";
  // De-synchronized: every client finishes at a distinct instant.
  std::set<std::uint64_t> distinct;
  for (const SimTime& f : on.finished) {
    EXPECT_GT(f, SimTime::zero());
    distinct.insert(f.ns);
  }
  EXPECT_EQ(distinct.size(), on.finished.size());

  // Control arm: same storm, admission off — blind exponential backoff
  // exhausts inside the outage and vehicles are left behind.
  const HerdResult off = run_herd(false, 8);
  EXPECT_GT(off.failed, 0u);
}

TEST(ThunderingHerd, TimelineDigestBitIdenticalAcrossRuns) {
  const HerdResult a = run_herd(true, 6);
  const HerdResult b = run_herd(true, 6);
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.finished.size(), b.finished.size());
  for (std::size_t i = 0; i < a.finished.size(); ++i) {
    EXPECT_EQ(a.finished[i].ns, b.finished[i].ns);
  }
}

// ---------------------------------------------------------------------------
// Campaign wave backpressure

TEST(CampaignBackpressure, PausesWavesWhileServerSheds) {
  ServerConfig cfg;
  cfg.tier_window = SimTime::from_ms(500);
  ServerRig rig(cfg);
  // A slowdown brown-out spanning wave 0 and the inter-wave gap keeps the
  // shed ratio up at gating time.
  sim::FaultSpec slow{"ota.server", FaultKind::kRepoSlowdown};
  slow.delay = SimTime::from_ms(300);
  rig.plan.window(SimTime::from_ms(1), SimTime::from_s(30), slow);
  // Fleet-wide background pollers (every 100ms for 40s): while the brown-out
  // lasts they keep being shed, which is the live signal the wave gate reads.
  for (int k = 0; k < 400; ++k) {
    rig.sched.schedule_at(SimTime::from_ms(5 + 100 * std::uint64_t(k)),
                          [&rig] {
                            (void)rig.server->fetch_metadata(
                                ServeClass::kBackground, rig.sched.now());
                          });
  }

  CampaignConfig ccfg;
  ccfg.wave_size = 2;
  ccfg.wave_gap = SimTime::from_s(1);
  ccfg.vehicle_stagger = SimTime::from_ms(200);
  ccfg.wave_abort_ratio = 1.1;  // never abort; backpressure should carry it
  ccfg.retry.chunk_bytes = 8192;
  ccfg.retry.server = rig.server.get();
  ccfg.retry.max_attempts = 8;
  ccfg.pause_shed_ratio = 0.3;
  ccfg.resume_shed_ratio = 0.05;
  ccfg.backpressure_poll = SimTime::from_s(1);
  ccfg.max_backpressure_polls = 300;

  std::vector<std::unique_ptr<Flash>> flashes;
  std::vector<std::unique_ptr<FullVerificationClient>> clients;
  CampaignRunner runner(rig.sched, rig.director, rig.images, "brake-fw",
                        "brake-hw", ccfg);
  for (std::size_t i = 0; i < 4; ++i) {
    flashes.push_back(std::make_unique<Flash>());
    flashes.back()->provision(
        FirmwareImage{"brake-fw", 1, patterned(2 * Flash::kPageSize, 0x11)});
    clients.push_back(std::make_unique<FullVerificationClient>(
        "bp" + std::to_string(i), rig.director.trusted_root(),
        rig.images.trusted_root()));
    clients.back()->bind_telemetry(rig.t);
    runner.add_vehicle("bp" + std::to_string(i), *flashes.back(),
                       *clients.back());
  }
  bool done = false;
  runner.start([&] { done = true; });
  rig.sched.run_until(SimTime::from_s(600));

  ASSERT_TRUE(done);
  EXPECT_TRUE(runner.finished());
  EXPECT_FALSE(runner.aborted());
  EXPECT_EQ(runner.updated(), 4u);
  // Wave 1's dispatch was held back at least once while the front was
  // shedding, and the pause shows up in the deterministic JSON export.
  EXPECT_GT(runner.backpressure_pauses(), 0u);
  EXPECT_NE(runner.to_json().find("\"backpressure_pauses\":"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Session frontend (cloud): ticket cache amortizes real handshakes

TEST(SessionFrontend, TicketCacheAmortizesHandshakes) {
  crypto::Drbg rng(99u);
  crypto::EcdsaPrivateKey authority = crypto::EcdsaPrivateKey::generate(rng);
  cloud::FrontendConfig fcfg;
  fcfg.ticket_lifetime = SimTime::from_s(100);
  cloud::SessionFrontend front =
      cloud::SessionFrontend::create("ota-front", authority, rng, fcfg);

  const cloud::ConnectResult first = front.connect("veh-0", SimTime::from_s(1));
  ASSERT_TRUE(first.ok);
  EXPECT_FALSE(first.resumed);
  const cloud::ConnectResult again = front.connect("veh-0", SimTime::from_s(2));
  ASSERT_TRUE(again.ok);
  EXPECT_TRUE(again.resumed);
  EXPECT_EQ(again.ticket_id, first.ticket_id);
  EXPECT_LT(again.latency, first.latency);

  // Expired ticket forces a fresh handshake with a new ticket.
  const cloud::ConnectResult late =
      front.connect("veh-0", SimTime::from_s(200));
  ASSERT_TRUE(late.ok);
  EXPECT_FALSE(late.resumed);
  EXPECT_NE(late.ticket_id, first.ticket_id);
  EXPECT_EQ(front.handshakes(), 2u);
  EXPECT_EQ(front.resumptions(), 1u);
}

// ---------------------------------------------------------------------------
// Satellite: ota.repo.* metrics survive merge_from (sharded runs)

TEST(RepositoryServerMetrics, SurviveMergeFrom) {
  ServerRig rig;
  const SimTime t0 = SimTime::from_ms(10);
  (void)rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  (void)rig.server->fetch_metadata(ServeClass::kCampaign, t0);
  (void)rig.server->fetch_chunk(ServeClass::kCampaign, "brake-fw", 0, 8192, t0);
  (void)rig.server->fetch_chunk(ServeClass::kCampaign, "brake-fw", 0, 8192, t0);

  sim::MetricsRegistry merged;
  merged.merge_from(*rig.t.metrics);
  EXPECT_EQ(merged.counter_value("ota.repo.requests"), rig.server->requests());
  EXPECT_EQ(merged.counter_value("ota.repo.served"), rig.server->served());
  EXPECT_EQ(merged.counter_value("ota.repo.coalesced"),
            rig.server->coalesced());
  EXPECT_EQ(merged.counter_value("ota.repo.cache_hits"),
            rig.server->cache_hits());
  EXPECT_EQ(merged.counter_value("ota.repo.cache_misses"),
            rig.server->cache_misses());
  EXPECT_GT(merged.counter_value("ota.repo.requests"), 0u);

  // Merging a second shard's worth adds (counters are additive), exactly as
  // the sharded metro run folds per-shard registries.
  sim::MetricsRegistry second;
  second.merge_from(*rig.t.metrics);
  merged.merge_from(second);
  EXPECT_EQ(merged.counter_value("ota.repo.requests"),
            2 * rig.server->requests());
}

}  // namespace
}  // namespace aseck::ota
