// Known-answer and property tests for AES, CMAC, GCM, and the SHE KDF.

#include <gtest/gtest.h>

#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/gcm.hpp"
#include "crypto/kdf.hpp"
#include "util/rng.hpp"

namespace aseck::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

Block block_from_hex(std::string_view h) {
  const Bytes b = from_hex(h);
  Block out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

std::string hex(const Block& b) {
  return to_hex(util::BytesView(b.data(), b.size()));
}

TEST(Aes, Fips197Aes128) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  const Block ct = aes.encrypt(pt);
  EXPECT_EQ(hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.decrypt(ct), pt);
}

TEST(Aes, Fips197Aes192) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  const Block ct = aes.encrypt(pt);
  EXPECT_EQ(hex(ct), "dda97ca4864cdfe06eaf70a0ec0d7191");
  EXPECT_EQ(aes.decrypt(ct), pt);
}

TEST(Aes, Fips197Aes256) {
  const Aes aes(from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  const Block pt = block_from_hex("00112233445566778899aabbccddeeff");
  const Block ct = aes.encrypt(pt);
  EXPECT_EQ(hex(ct), "8ea2b7ca516745bfeafc49904b496089");
  EXPECT_EQ(aes.decrypt(ct), pt);
}

TEST(Aes, Sp80038aEcbVector) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block pt = block_from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(hex(aes.encrypt(pt)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(17)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
}

TEST(Aes, EncryptDecryptRoundTripRandom) {
  util::Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    for (std::size_t ks : {16u, 24u, 32u}) {
      const Aes aes(rng.bytes(ks));
      Block pt;
      const Bytes r = rng.bytes(16);
      std::copy(r.begin(), r.end(), pt.begin());
      EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
    }
  }
}

TEST(Aes, SboxInverseProperty) {
  for (int x = 0; x < 256; ++x) {
    const auto b = static_cast<std::uint8_t>(x);
    EXPECT_EQ(aes_inv_sbox(aes_sbox(b)), b);
  }
  // Spot values from FIPS 197 table.
  EXPECT_EQ(aes_sbox(0x00), 0x63);
  EXPECT_EQ(aes_sbox(0x01), 0x7c);
  EXPECT_EQ(aes_sbox(0x53), 0xed);
  EXPECT_EQ(aes_sbox(0xff), 0x16);
}

TEST(Aes, GfMulProperties) {
  EXPECT_EQ(gf_mul(0x57, 0x83), 0xc1);  // FIPS 197 example
  EXPECT_EQ(gf_mul(0x57, 0x13), 0xfe);  // FIPS 197 example
  for (int a = 1; a < 256; a += 7) {
    EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf_mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(AesCtr, Sp80038aVector) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block iv = block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes ct = aes_ctr(aes, iv, pt);
  EXPECT_EQ(to_hex(ct),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff");
  // CTR is an involution with the same IV.
  EXPECT_EQ(aes_ctr(aes, iv, ct), pt);
}

TEST(AesCtr, NonBlockMultipleLength) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block iv{};
  util::Rng rng(5);
  const Bytes pt = rng.bytes(23);
  const Bytes ct = aes_ctr(aes, iv, pt);
  EXPECT_EQ(ct.size(), 23u);
  EXPECT_EQ(aes_ctr(aes, iv, ct), pt);
}

TEST(AesCbc, RoundTripAndPadding) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block iv = block_from_hex("000102030405060708090a0b0c0d0e0f");
  util::Rng rng(6);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u}) {
    const Bytes pt = rng.bytes(len);
    const Bytes ct = aes_cbc_encrypt(aes, iv, pt);
    EXPECT_EQ(ct.size() % 16, 0u);
    EXPECT_GT(ct.size(), len);  // padding always added
    EXPECT_EQ(aes_cbc_decrypt(aes, iv, ct), pt);
  }
}

TEST(AesCbc, DecryptRejectsCorruption) {
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Block iv{};
  EXPECT_THROW(aes_cbc_decrypt(aes, iv, Bytes(15)), std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(aes, iv, Bytes{}), std::invalid_argument);
}

TEST(Cmac, Rfc4493Vectors) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Cmac cmac(key);
  EXPECT_EQ(hex(cmac.tag(Bytes{})), "bb1d6929e95937287fa37d129b756746");
  EXPECT_EQ(hex(cmac.tag(from_hex("6bc1bee22e409f96e93d7e117393172a"))),
            "070a16b46b4d4144f79bdd9dd04a287c");
  EXPECT_EQ(hex(cmac.tag(from_hex(
                "6bc1bee22e409f96e93d7e117393172a"
                "ae2d8a571e03ac9c9eb76fac45af8e51"
                "30c81c46a35ce411"))),
            "dfa66747de9ae63030ca32611497c827");
  EXPECT_EQ(hex(cmac.tag(from_hex(
                "6bc1bee22e409f96e93d7e117393172a"
                "ae2d8a571e03ac9c9eb76fac45af8e51"
                "30c81c46a35ce411e5fbc1191a0a52ef"
                "f69f2445df4f9b17ad2b417be66c3710"))),
            "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, TruncationAndVerify) {
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Cmac cmac(key);
  const Bytes msg = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes t4 = cmac.tag_truncated(msg, 4);
  EXPECT_EQ(to_hex(t4), "070a16b4");
  EXPECT_TRUE(cmac.verify(msg, t4));
  Bytes bad = t4;
  bad[0] ^= 1;
  EXPECT_FALSE(cmac.verify(msg, bad));
  EXPECT_FALSE(cmac.verify(msg, Bytes{}));
  EXPECT_THROW(cmac.tag_truncated(msg, 0), std::invalid_argument);
  EXPECT_THROW(cmac.tag_truncated(msg, 17), std::invalid_argument);
}

TEST(Cmac, DifferentKeysDifferentTags) {
  const Bytes msg = from_hex("00112233");
  const Block t1 = aes_cmac(from_hex("2b7e151628aed2a6abf7158809cf4f3c"), msg);
  const Block t2 = aes_cmac(from_hex("2b7e151628aed2a6abf7158809cf4f3d"), msg);
  EXPECT_NE(hex(t1), hex(t2));
}

TEST(Gcm, EmptyKnownAnswer) {
  // McGrew-Viega test case 1: all-zero key/IV, no AAD, no plaintext.
  const Aes aes(Bytes(16, 0));
  const Bytes iv(12, 0);
  const GcmResult r = aes_gcm_encrypt(aes, iv, {}, {});
  EXPECT_TRUE(r.ciphertext.empty());
  EXPECT_EQ(to_hex(util::BytesView(r.tag.data(), 16)),
            "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, RoundTripWithAad) {
  util::Rng rng(77);
  const Aes aes(rng.bytes(16));
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(20);
  const Bytes pt = rng.bytes(100);
  const GcmResult r = aes_gcm_encrypt(aes, iv, aad, pt);
  const auto back =
      aes_gcm_decrypt(aes, iv, aad, r.ciphertext, util::BytesView(r.tag.data(), 16));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pt);
}

TEST(Gcm, RejectsTamper) {
  util::Rng rng(78);
  const Aes aes(rng.bytes(16));
  const Bytes iv = rng.bytes(12);
  const Bytes aad = rng.bytes(8);
  const Bytes pt = rng.bytes(32);
  const GcmResult r = aes_gcm_encrypt(aes, iv, aad, pt);
  const util::BytesView tag(r.tag.data(), 16);

  Bytes bad_ct = r.ciphertext;
  bad_ct[3] ^= 1;
  EXPECT_FALSE(aes_gcm_decrypt(aes, iv, aad, bad_ct, tag).has_value());

  Bytes bad_aad = aad;
  bad_aad[0] ^= 1;
  EXPECT_FALSE(aes_gcm_decrypt(aes, iv, bad_aad, r.ciphertext, tag).has_value());

  Bytes bad_tag(r.tag.begin(), r.tag.end());
  bad_tag[15] ^= 1;
  EXPECT_FALSE(aes_gcm_decrypt(aes, iv, aad, r.ciphertext, bad_tag).has_value());

  EXPECT_FALSE(
      aes_gcm_decrypt(aes, iv, aad, r.ciphertext, Bytes(4)).has_value());
}

TEST(Gcm, RejectsBadIvLength) {
  const Aes aes(Bytes(16, 0));
  EXPECT_THROW(aes_gcm_encrypt(aes, Bytes(11, 0), {}, {}), std::invalid_argument);
}

TEST(SheKdf, CompressionDeterministicAndSensitive) {
  Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  const Block k1 = she_kdf(key, she_key_update_enc_c());
  const Block k2 = she_kdf(key, she_key_update_mac_c());
  EXPECT_NE(hex(k1), hex(k2));
  EXPECT_EQ(hex(k1), hex(she_kdf(key, she_key_update_enc_c())));
  key[15] ^= 1;
  EXPECT_NE(hex(k1), hex(she_kdf(key, she_key_update_enc_c())));
}

TEST(SheKdf, SpecExampleVectors) {
  // SHE / AUTOSAR memory-update example: AuthKey = 000102..0f gives
  // K1 = KDF(K, KEY_UPDATE_ENC_C), K2 = KDF(K, KEY_UPDATE_MAC_C).
  const Block key = block_from_hex("000102030405060708090a0b0c0d0e0f");
  EXPECT_EQ(hex(she_kdf(key, she_key_update_enc_c())),
            "118a46447a770d87828a69c222e2d17e");
  EXPECT_EQ(hex(she_kdf(key, she_key_update_mac_c())),
            "2ebb2a3da62dbd64b18ba6493e9fbe22");
}

TEST(SheKdf, MpCompressRejectsUnalignedWithoutPadding) {
  EXPECT_THROW(mp_compress(Bytes(17), /*she_padding=*/false),
               std::invalid_argument);
  // With padding, any length works and length is authenticated.
  const Block a = mp_compress(Bytes(17, 0xaa));
  const Block b = mp_compress(Bytes(18, 0xaa));
  EXPECT_NE(hex(a), hex(b));
}

}  // namespace
}  // namespace aseck::crypto
