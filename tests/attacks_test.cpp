// Tests for the attack harness: CAN attackers, GPS spoofing, and the
// side-channel -> fleet OTA compromise chain.

#include <gtest/gtest.h>

#include "attacks/can_attacks.hpp"
#include "attacks/scenarios.hpp"
#include "ecu/ecu.hpp"
#include "ivn/secoc.hpp"

namespace aseck::attacks {
namespace {

using util::Bytes;

struct BusFixture {
  sim::Scheduler sched;
  ivn::CanBus bus{sched, "can0", 500000};
  ecu::Ecu victim{sched, "victim", 1};
  ecu::Ecu consumer{sched, "consumer", 2};

  BusFixture() {
    crypto::Block k{};
    victim.provision(ecu::FirmwareImage{"v", 1, Bytes(16, 1)}, k, k, k);
    consumer.provision(ecu::FirmwareImage{"c", 1, Bytes(16, 1)}, k, k, k);
    victim.attach_to(&bus);
    consumer.attach_to(&bus);
    victim.boot();
    consumer.boot();
  }
};

TEST(Injection, SpoofedFramesReachConsumer) {
  BusFixture f;
  int received = 0;
  f.consumer.subscribe(0x0B0, [&](const ivn::CanFrame& fr, sim::SimTime) {
    ++received;
    EXPECT_EQ(fr.data[0], 0xEE);
  });
  InjectionAttacker atk(f.sched, f.bus, "attacker", 0x0B0,
                        sim::SimTime::from_ms(10),
                        [](std::uint64_t) { return Bytes(8, 0xEE); });
  atk.start();
  f.sched.run_until(sim::SimTime::from_ms(95));
  atk.stop();
  f.sched.run();
  EXPECT_EQ(atk.injected(), 10u);
  EXPECT_EQ(received, 10);
}

TEST(Injection, SecOcBlocksSpoofedFrames) {
  // Same attack against a SecOC-protected stream: consumer rejects all
  // spoofed frames (attacker has no key).
  BusFixture f;
  const ivn::SecOcChannel ch(Bytes(16, 0x42));
  int accepted = 0, rejected = 0;
  f.consumer.subscribe(0x0B0, [&](const ivn::CanFrame& fr, sim::SimTime) {
    if (f.consumer.verify_secured(ch, 0x0B0, fr.data).status ==
        ivn::SecOcStatus::kOk) {
      ++accepted;
    } else {
      ++rejected;
    }
  });
  InjectionAttacker atk(f.sched, f.bus, "attacker", 0x0B0,
                        sim::SimTime::from_ms(10),
                        [](std::uint64_t) { return Bytes(8, 0xEE); });
  atk.start();
  f.sched.run_until(sim::SimTime::from_ms(50));
  atk.stop();
  // Legitimate secured frame still accepted.
  f.victim.send_secured(ch, 0x0B0, 0x0B0, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(accepted, 1);
  EXPECT_GE(rejected, 5);
}

TEST(Flood, StarvesLowPriorityTraffic) {
  BusFixture f;
  int received = 0;
  f.consumer.subscribe(0x400, [&](const ivn::CanFrame&, sim::SimTime) {
    ++received;
  });
  FloodAttacker atk(f.sched, f.bus, "flooder");
  atk.start();
  // Victim tries to send while the flood runs.
  for (int i = 0; i < 20; ++i) {
    f.sched.schedule_at(sim::SimTime::from_ms(static_cast<std::uint64_t>(i)),
                        [&] { f.victim.send_frame(0x400, Bytes{1}); });
  }
  f.sched.run_until(sim::SimTime::from_ms(30));
  atk.stop();
  f.sched.run();
  // The flood (id 0) wins every arbitration; victim frames drain only after
  // the attacker stops.
  EXPECT_GT(atk.sent(), 50u);
  const double bus_load = f.bus.stats().bus_load(f.sched.now());
  EXPECT_GT(bus_load, 0.9);
  EXPECT_LE(received, 20);
}

TEST(Replay, RecordsAndReplays) {
  BusFixture f;
  ReplayAttacker atk(f.sched, f.bus, "replayer", sim::SimTime::from_ms(50),
                     sim::SimTime::from_ms(5));
  atk.start();
  // Victim emits frames during the recording window.
  for (int i = 0; i < 5; ++i) {
    f.sched.schedule_at(sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10),
                        [&] { f.victim.send_frame(0x123, Bytes{0xAB}); });
  }
  int consumer_rx = 0;
  f.consumer.subscribe(0x123, [&](const ivn::CanFrame&, sim::SimTime) {
    ++consumer_rx;
  });
  f.sched.run_until(sim::SimTime::from_ms(200));
  atk.stop();
  f.sched.run();
  EXPECT_EQ(atk.recorded(), 5u);
  EXPECT_GT(atk.replayed(), 10u);
  EXPECT_GT(consumer_rx, 10);  // consumer saw originals + replays
}

TEST(Replay, SecOcFreshnessBlocksReplays) {
  BusFixture f;
  const ivn::SecOcChannel ch(Bytes(16, 0x42));
  int accepted = 0, replay_rejected = 0;
  f.consumer.subscribe(0x123, [&](const ivn::CanFrame& fr, sim::SimTime) {
    const auto res = f.consumer.verify_secured(ch, 0x123, fr.data);
    if (res.status == ivn::SecOcStatus::kOk) {
      ++accepted;
    } else {
      ++replay_rejected;
    }
  });
  ReplayAttacker atk(f.sched, f.bus, "replayer", sim::SimTime::from_ms(50),
                     sim::SimTime::from_ms(5));
  atk.start();
  for (int i = 0; i < 5; ++i) {
    f.sched.schedule_at(sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10),
                        [&] { f.victim.send_secured(ch, 0x123, 0x123, Bytes{0xAB}); });
  }
  f.sched.run_until(sim::SimTime::from_ms(200));
  atk.stop();
  f.sched.run();
  EXPECT_EQ(accepted, 5);        // only the 5 originals
  EXPECT_GT(replay_rejected, 10);  // every replay rejected
}

TEST(Fuzz, SendsRandomFrames) {
  BusFixture f;
  FuzzAttacker atk(f.sched, f.bus, "fuzzer", sim::SimTime::from_ms(1), 33);
  atk.start();
  f.sched.run_until(sim::SimTime::from_ms(100));
  atk.stop();
  f.sched.run();
  EXPECT_GT(atk.sent(), 90u);
  EXPECT_GT(f.consumer.frames_received(), 50u);
}

TEST(BusOff, DisconnectsVictim) {
  BusFixture f;
  BusOffAttacker atk(f.bus, "victim", 0x100);
  atk.arm();
  // Victim keeps transmitting; every attempt is corrupted; TEC escalates.
  f.victim.send_frame(0x100, Bytes{1});
  f.sched.run();
  EXPECT_EQ(f.victim.ivn::CanNode::state(), ivn::CanNodeState::kBusOff);
  EXPECT_GE(atk.corruptions(), 32u);  // 32 * 8 = 256 > 255
  // Victim can no longer send.
  EXPECT_FALSE(f.bus.send(&f.victim, ivn::CanFrame{0x100, false, false,
                                                   ivn::CanFormat::kClassic,
                                                   false, Bytes{1}}));
  atk.disarm();
  f.bus.recover(&f.victim);
  EXPECT_TRUE(f.victim.send_frame(0x100, Bytes{1}));
  f.sched.run();
}

TEST(BusOff, OnlyTargetsVictimId) {
  BusFixture f;
  BusOffAttacker atk(f.bus, "victim", 0x100);
  atk.arm();
  f.victim.send_frame(0x200, Bytes{1});  // different id: untouched
  f.sched.run();
  EXPECT_EQ(f.victim.ivn::CanNode::state(), ivn::CanNodeState::kErrorActive);
  EXPECT_EQ(atk.corruptions(), 0u);
}

TEST(GpsSpoof, DriftDetectedByOdometryCrossCheck) {
  GpsSpoofScenario::Config cfg;
  GpsSpoofScenario scenario(cfg, 5);
  const auto steps = scenario.run(120.0, 30.0);
  ASSERT_EQ(steps.size(), 120u);
  // Before the spoof: no detection, small error.
  for (std::size_t i = 0; i < 29; ++i) {
    EXPECT_FALSE(steps[i].detected) << i;
    EXPECT_LT(steps[i].gps_error_m, 15.0);
  }
  // Spoof drags the fix away; detection fires within a bounded delay.
  const double latency = GpsSpoofScenario::detection_latency_s(steps, 30.0);
  EXPECT_GT(latency, 0.0);
  EXPECT_LT(latency, 60.0);
  EXPECT_GT(steps.back().gps_error_m, 100.0);
}

TEST(GpsSpoof, NoSpoofNoDetection) {
  GpsSpoofScenario::Config cfg;
  GpsSpoofScenario scenario(cfg, 6);
  const auto steps = scenario.run(100.0, 1e9);  // never spoof
  int false_alarms = 0;
  for (const auto& s : steps) {
    if (s.detected) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 2);
}

TEST(FleetCompromise, SharedKeysCompromiseWholeFleet) {
  FleetConfig cfg;
  cfg.fleet_size = 10;
  cfg.shared_symmetric_keys = true;
  cfg.masking_countermeasure = false;
  const auto r = run_fleet_compromise(cfg, 101);
  ASSERT_TRUE(r.key_extracted);
  EXPECT_EQ(r.vehicles_compromised, 10u);  // the paper's fleet-wide scenario
  EXPECT_GT(r.traces_used, 0u);
}

TEST(FleetCompromise, PerVehicleKeysContainBreach) {
  FleetConfig cfg;
  cfg.fleet_size = 10;
  cfg.shared_symmetric_keys = false;
  const auto r = run_fleet_compromise(cfg, 102);
  ASSERT_TRUE(r.key_extracted);
  EXPECT_EQ(r.vehicles_compromised, 1u);  // only the probed vehicle
}

TEST(FleetCompromise, MaskingStopsExtraction) {
  FleetConfig cfg;
  cfg.fleet_size = 10;
  cfg.masking_countermeasure = true;
  cfg.max_traces = 2000;
  const auto r = run_fleet_compromise(cfg, 103);
  EXPECT_FALSE(r.key_extracted);
  EXPECT_EQ(r.vehicles_compromised, 0u);
}

}  // namespace
}  // namespace aseck::attacks
