// Tests for the VehiclePlatform facade: declarative assembly, boot, policy
// flow, routing, and posture reporting.

#include <gtest/gtest.h>

#include "core/platform.hpp"

namespace aseck::core {
namespace {

using util::Bytes;

struct Fixture {
  sim::Scheduler sched;
  crypto::Drbg rng{31337u};
  crypto::EcdsaPrivateKey authority{crypto::EcdsaPrivateKey::generate(rng)};

  SecurityPolicy initial() {
    SecurityPolicy p;
    p.version = 1;
    p.values[keys::kSecocMacBytes] = PolicyValue(std::int64_t{4});
    return p;
  }
};

TEST(Platform, ReferenceSpecBuildsAndBoots) {
  Fixture f;
  VehiclePlatform car(f.sched, VehicleSpec::reference(),
                      f.authority.public_key(), f.initial());
  EXPECT_EQ(car.boot_all(), 6u);
  const auto posture = car.posture();
  EXPECT_EQ(posture.ecus_operational, 6u);
  EXPECT_EQ(posture.ecus_degraded, 0u);
  EXPECT_EQ(posture.policy_version, 1u);
  EXPECT_EQ(posture.quarantined_domains, 0u);
}

TEST(Platform, AccessorsAndValidation) {
  Fixture f;
  VehiclePlatform car(f.sched, VehicleSpec::reference(),
                      f.authority.public_key(), f.initial());
  EXPECT_EQ(car.bus("powertrain").name(), "powertrain");
  EXPECT_EQ(car.ecu("brake").name(), "brake");
  EXPECT_THROW(car.bus("nope"), std::invalid_argument);
  EXPECT_THROW(car.ecu("nope"), std::invalid_argument);

  VehicleSpec bad;
  bad.domains = {{"a", 500000, false}};
  bad.ecus = {{"x", "missing-domain", 1, 64}};
  EXPECT_THROW(VehiclePlatform(f.sched, bad, f.authority.public_key(),
                               f.initial()),
               std::invalid_argument);
}

TEST(Platform, RoutedDiagnosticsReachAllDomains) {
  Fixture f;
  VehiclePlatform car(f.sched, VehicleSpec::reference(),
                      f.authority.public_key(), f.initial());
  car.boot_all();
  int hits = 0;
  car.ecu("engine").subscribe(0x7DF, [&](const ivn::CanFrame&, sim::SimTime) {
    ++hits;
  });
  car.ecu("brake").subscribe(0x7DF, [&](const ivn::CanFrame&, sim::SimTime) {
    ++hits;
  });
  car.ecu("bcm").subscribe(0x7DF, [&](const ivn::CanFrame&, sim::SimTime) {
    ++hits;
  });
  car.ecu("tcu").send_frame(0x7DF, Bytes{0x3E});
  f.sched.run();
  EXPECT_EQ(hits, 3);  // fanned out across three internal domains
}

TEST(Platform, SecocChannelTracksPolicy) {
  Fixture f;
  VehiclePlatform car(f.sched, VehicleSpec::reference(),
                      f.authority.public_key(), f.initial());
  EXPECT_EQ(car.secoc_channel().config().mac_bytes, 4u);
  SecurityPolicy p2 = f.initial();
  p2.version = 2;
  p2.values[keys::kSecocMacBytes] = PolicyValue(std::int64_t{16});
  ASSERT_EQ(car.policy().apply_update(SignedPolicy::sign(p2, f.authority)),
            PolicyStore::UpdateResult::kAccepted);
  EXPECT_EQ(car.secoc_channel().config().mac_bytes, 16u);
  EXPECT_EQ(car.posture().policy_version, 2u);

  // Channels from the same platform interoperate end-to-end.
  ivn::FreshnessManager tx, rx;
  const auto ch = car.secoc_channel();
  const Bytes pdu = ch.protect(0x10, Bytes{0x01}, tx);
  EXPECT_EQ(ch.verify(0x10, pdu, rx).status, ivn::SecOcStatus::kOk);
}

TEST(Platform, PostureReflectsIncidents) {
  Fixture f;
  VehiclePlatform car(f.sched, VehicleSpec::reference(),
                      f.authority.public_key(), f.initial());
  car.boot_all();
  // Voltage glitch degrades one ECU; quarantine one domain.
  car.ecu("bcm").report_voltage(8.0);
  car.gateway().quarantine("infotainment");
  const auto p = car.posture();
  EXPECT_EQ(p.ecus_operational, 5u);
  EXPECT_EQ(p.ecus_degraded, 1u);
  EXPECT_EQ(p.quarantined_domains, 1u);
}

TEST(Platform, PerVehicleKeysDiffer) {
  // Two vehicles built from the same spec but different seeds must not share
  // SecOC keys (the E5 anti-fleet-compromise requirement).
  Fixture f;
  VehiclePlatform car1(f.sched, VehicleSpec::reference(),
                       f.authority.public_key(), f.initial(), /*seed=*/1);
  VehiclePlatform car2(f.sched, VehicleSpec::reference(),
                       f.authority.public_key(), f.initial(), /*seed=*/2);
  ivn::FreshnessManager tx, rx;
  const Bytes pdu = car1.secoc_channel().protect(0x10, Bytes{0x01}, tx);
  EXPECT_NE(car2.secoc_channel().verify(0x10, pdu, rx).status,
            ivn::SecOcStatus::kOk);
}

}  // namespace
}  // namespace aseck::core
