// PSA-style CryptoService: partition ownership, usage policies, the
// sealed/measured lifecycle, SHE-style boot protection, and the compile-time
// isolation properties (unforgeable handles, unnameable raw-key type).

#include <gtest/gtest.h>

#include <type_traits>

#include "crypto/drbg.hpp"
#include "crypto/service.hpp"

namespace aseck::crypto {
namespace {

// The O4 isolation boundary, pinned at compile time: a handle cannot be
// forged from an integer, a service cannot be copied out from under its
// keys, and KeyHandle is the only currency callers hold.
static_assert(!std::is_constructible_v<KeyHandle, std::uint32_t>,
              "KeyHandle must not be forgeable from an id");
static_assert(std::is_default_constructible_v<KeyHandle>,
              "the invalid handle must remain constructible");
static_assert(!std::is_copy_constructible_v<CryptoService>,
              "CryptoService must be unique per device");
static_assert(!std::is_copy_assignable_v<CryptoService>);

Block block(std::uint8_t fill) {
  Block b{};
  b.fill(fill);
  return b;
}

TEST(CryptoService, PartitionOwnershipIsEnforced) {
  CryptoService svc;
  const PartitionId ota = svc.register_partition("ota");
  const PartitionId v2x = svc.register_partition("v2x");
  ASSERT_NE(ota, 0);
  ASSERT_NE(v2x, 0);
  EXPECT_EQ(svc.partition_name(ota), "ota");

  Drbg rng(1);
  KeyPolicy sign_only;
  sign_only.usage = kUsageSign;
  const KeyHandle h = svc.generate_ecdsa(ota, rng, sign_only);
  ASSERT_TRUE(h.valid());

  EcdsaSignature sig;
  EXPECT_EQ(svc.sign(ota, h, util::from_string("msg"), &sig),
            ServiceStatus::kOk);
  // Another partition cannot use the key, even knowing the handle.
  EXPECT_EQ(svc.sign(v2x, h, util::from_string("msg"), &sig),
            ServiceStatus::kNotOwner);
  // Public halves are not secret: any caller may fetch them.
  EcdsaPublicKey pub;
  EXPECT_EQ(svc.export_public(h, &pub), ServiceStatus::kOk);
  EXPECT_TRUE(ecdsa_verify(pub, util::from_string("msg"), sig));
  EXPECT_EQ(svc.denials(ServiceStatus::kNotOwner), 1u);
}

TEST(CryptoService, UsagePolicyGatesEachOperation) {
  CryptoService svc;
  const PartitionId p = svc.register_partition("app");
  Drbg rng(2);
  KeyPolicy sign_only;
  sign_only.usage = kUsageSign;
  const KeyHandle ecdsa = svc.generate_ecdsa(p, rng, sign_only);
  KeyPolicy mac_only;
  mac_only.usage = kUsageMac;
  const KeyHandle cmac = svc.import_mac(p, block(0x11), mac_only);

  EcdsaSignature sig;
  Block tag;
  util::Bytes secret;
  // Sign-only ECDSA key: no export, and MAC is the wrong algorithm.
  EXPECT_EQ(svc.export_secret(p, ecdsa, &secret), ServiceStatus::kUsageDenied);
  EXPECT_EQ(svc.mac(p, ecdsa, util::from_string("m"), &tag),
            ServiceStatus::kUsageDenied);
  // MAC-only key: works for MAC, wrong algo for sign.
  EXPECT_EQ(svc.mac(p, cmac, util::from_string("m"), &tag), ServiceStatus::kOk);
  EXPECT_EQ(svc.sign(p, cmac, util::from_string("m"), &sig),
            ServiceStatus::kUsageDenied);
  // An exportable key round-trips its exact material.
  KeyPolicy exportable;
  exportable.usage = kUsageMac | kUsageExport;
  const KeyHandle exp = svc.import_mac(p, block(0x22), exportable);
  ASSERT_EQ(svc.export_secret(p, exp, &secret), ServiceStatus::kOk);
  EXPECT_EQ(secret, util::Bytes(16, 0x22));
}

TEST(CryptoService, ExportedEcdsaKeySignsBitIdentically) {
  // The E5 compromise primitive: deterministic ECDSA means a stolen
  // (exported) scalar reproduces the service's signatures exactly.
  CryptoService svc;
  const PartitionId p = svc.register_partition("uptane");
  Drbg rng(3);
  KeyPolicy policy;
  policy.usage = kUsageSign | kUsageExport;
  const KeyHandle h = svc.generate_ecdsa(p, rng, policy);

  util::Bytes secret;
  ASSERT_EQ(svc.export_secret(p, h, &secret), ServiceStatus::kOk);
  const EcdsaPrivateKey stolen = EcdsaPrivateKey::from_secret(secret);

  EcdsaSignature from_service;
  ASSERT_EQ(svc.sign(p, h, util::from_string("payload"), &from_service),
            ServiceStatus::kOk);
  EXPECT_EQ(stolen.sign(util::from_string("payload")), from_service);
}

TEST(CryptoService, SealedServiceRefusesEverythingUntilMeasured) {
  CryptoService svc;
  const PartitionId p = svc.register_partition("boot");
  Drbg rng(4);
  KeyPolicy policy;
  policy.usage = kUsageSign;
  const KeyHandle h = svc.generate_ecdsa(p, rng, policy);
  svc.seal();
  EXPECT_EQ(svc.state(), CryptoService::State::kSealed);

  EcdsaSignature sig;
  EXPECT_EQ(svc.sign(p, h, util::from_string("m"), &sig),
            ServiceStatus::kSealed);
  // Creation is over, too: sealing ends provisioning for good.
  EXPECT_FALSE(svc.generate_ecdsa(p, rng, policy).valid());
  EXPECT_EQ(svc.register_partition("late"), 0);

  svc.on_measurement(true);
  EXPECT_EQ(svc.state(), CryptoService::State::kOperational);
  EXPECT_EQ(svc.sign(p, h, util::from_string("m"), &sig), ServiceStatus::kOk);
  // A second (forged) measurement cannot change the verdict.
  svc.on_measurement(false);
  EXPECT_EQ(svc.state(), CryptoService::State::kOperational);
}

TEST(CryptoService, FailedMeasurementLocksOnlyBootProtectedKeys) {
  CryptoService svc;
  const PartitionId p = svc.register_partition("ecu");
  KeyPolicy protected_mac;
  protected_mac.usage = kUsageMac;
  protected_mac.boot_protected = true;
  KeyPolicy plain_mac;
  plain_mac.usage = kUsageMac;
  const KeyHandle locked = svc.import_mac(p, block(0x33), protected_mac);
  const KeyHandle diag = svc.import_mac(p, block(0x44), plain_mac);
  svc.seal();
  svc.on_measurement(false);
  EXPECT_EQ(svc.state(), CryptoService::State::kFailedBoot);

  Block tag;
  // SHE semantics: boot-protected keys stay dark, limp-home diag keys work.
  EXPECT_EQ(svc.mac(p, locked, util::from_string("m"), &tag),
            ServiceStatus::kBootLocked);
  EXPECT_EQ(svc.mac(p, diag, util::from_string("m"), &tag), ServiceStatus::kOk);

  // Reboot (relock) + passing measurement unlocks the protected key.
  svc.relock();
  EXPECT_EQ(svc.state(), CryptoService::State::kSealed);
  svc.on_measurement(true);
  EXPECT_EQ(svc.mac(p, locked, util::from_string("m"), &tag),
            ServiceStatus::kOk);
}

TEST(CryptoService, InvalidAndDestroyedHandlesAreRejected) {
  CryptoService svc;
  const PartitionId p = svc.register_partition("app");
  Drbg rng(5);
  KeyPolicy policy;
  policy.usage = kUsageSign;
  const KeyHandle h = svc.generate_ecdsa(p, rng, policy);
  EcdsaSignature sig;
  EXPECT_EQ(svc.sign(p, KeyHandle{}, util::from_string("m"), &sig),
            ServiceStatus::kBadHandle);
  EXPECT_EQ(svc.destroy(p, h), ServiceStatus::kOk);
  EXPECT_EQ(svc.sign(p, h, util::from_string("m"), &sig),
            ServiceStatus::kBadHandle);
  EXPECT_EQ(svc.key_count(), 0u);
}

TEST(CryptoService, DeterministicJsonExport) {
  CryptoService a("svc"), b("svc");
  for (CryptoService* s : {&a, &b}) {
    const PartitionId p = s->register_partition("app");
    Drbg rng(6);
    KeyPolicy policy;
    policy.usage = kUsageSign;
    const KeyHandle h = s->generate_ecdsa(p, rng, policy);
    s->seal();
    EcdsaSignature sig;
    s->sign(p, h, util::from_string("denied"), &sig);  // kSealed denial
    s->on_measurement(true);
    s->sign(p, h, util::from_string("ok"), &sig);
  }
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("\"sealed\":1"), std::string::npos);
}

}  // namespace
}  // namespace aseck::crypto
