// Tests for the E20 coverage-guided fuzzer: coverage hook semantics, mutator
// and campaign determinism, oracle wiring, and the frozen minimized
// reproducers for every parser fix the fuzzer motivated (SOME/IP length
// wrap, UDS length/ALFID validation, CAN wire-DLC validation, OTA metadata
// strict round-trip).

#include <gtest/gtest.h>

#include "fuzz/fuzzer.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/targets.hpp"
#include "ivn/can.hpp"
#include "ivn/someip.hpp"
#include "ivn/uds.hpp"
#include "ota/metadata.hpp"

namespace aseck::fuzz {
namespace {

using util::Bytes;

// --- coverage hook ----------------------------------------------------------

TEST(Coverage, SiteIdIsFnv1a64) {
  // Known-answer: FNV-1a 64 of "" is the offset basis; "a" is the classic
  // published vector.
  static_assert(util::cov::site_id("") == 14695981039346656037ULL);
  static_assert(util::cov::site_id("a") == 0xaf63dc4c8601ec8cULL);
  static_assert(util::cov::site_id("someip.parse.ok") !=
                util::cov::site_id("someip.parse.too_short"));
}

class CountingSink final : public util::cov::Sink {
 public:
  void on_site(std::uint64_t site) override { sites.push_back(site); }
  std::vector<std::uint64_t> sites;
};

TEST(Coverage, ScopedSinkInstallsAndRestores) {
  EXPECT_EQ(util::cov::current(), nullptr);
  CountingSink outer;
  {
    util::cov::ScopedSink g1(&outer);
    EXPECT_EQ(util::cov::current(), &outer);
    ASECK_COV("test.site.one");
    {
      CountingSink inner;
      util::cov::ScopedSink g2(&inner);
      ASECK_COV("test.site.two");
      EXPECT_EQ(inner.sites.size(), 1u);
    }
    EXPECT_EQ(util::cov::current(), &outer);
  }
  EXPECT_EQ(util::cov::current(), nullptr);
  ASSERT_EQ(outer.sites.size(), 1u);
  EXPECT_EQ(outer.sites[0], util::cov::site_id("test.site.one"));
}

TEST(Coverage, InstrumentedParserReportsSites) {
  CountingSink sink;
  util::cov::ScopedSink guard(&sink);
  ivn::SomeIpMessage::parse(Bytes{0x01});  // too short
  ASSERT_FALSE(sink.sites.empty());
  EXPECT_EQ(sink.sites.back(), util::cov::site_id("someip.parse.too_short"));
}

TEST(Coverage, MapDigestReflectsEdgesAndBuckets) {
  CoverageMap a;
  a.begin_exec();
  a.on_site(1);
  a.on_site(2);
  EXPECT_TRUE(a.commit_exec());
  const std::uint64_t d1 = a.digest();
  // Same edges again: no new coverage, digest unchanged.
  a.begin_exec();
  a.on_site(1);
  a.on_site(2);
  EXPECT_FALSE(a.commit_exec());
  EXPECT_EQ(a.digest(), d1);
  // A new edge changes the digest.
  a.begin_exec();
  a.on_site(3);
  EXPECT_TRUE(a.commit_exec());
  EXPECT_NE(a.digest(), d1);
}

// --- mutator ---------------------------------------------------------------

TEST(Mutator, DeterministicGivenRngState) {
  Mutator m;
  const Bytes base{0x10, 0x20, 0x30, 0x40, 0x50};
  util::Rng r1(7), r2(7), r3(8);
  std::vector<Bytes> a, b, c;
  for (int i = 0; i < 64; ++i) {
    a.push_back(m.mutate(base, r1));
    b.push_back(m.mutate(base, r2));
    c.push_back(m.mutate(base, r3));
  }
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different stream, different mutations
}

TEST(Mutator, RespectsMaxLenAndHandlesEmpty) {
  Mutator m({/*max_len=*/16, /*max_stack=*/4});
  util::Rng rng(1);
  for (int i = 0; i < 256; ++i) {
    EXPECT_LE(m.mutate(Bytes(12, 0xAA), rng).size(), 16u);
    const Bytes from_empty = m.mutate({}, rng);
    EXPECT_LE(from_empty.size(), 16u);
  }
}

// --- fuzzer engine ---------------------------------------------------------

FuzzTarget toy_target() {
  FuzzTarget t;
  t.name = "toy";
  t.max_input = 16;
  t.seeds = {Bytes{0xBA, 0x00, 0x00}};
  t.dictionary = {Bytes{0xBA, 0xD0}};
  t.execute = [](util::BytesView b) -> ExecResult {
    ASECK_COV("toy.enter");
    if (b.size() >= 2 && b[0] == 0xBA) {
      ASECK_COV("toy.prefix");
      if (b[1] == 0xD0) return {true, "toy.planted"};
      return {true, ""};
    }
    return {false, ""};
  };
  return t;
}

TEST(Fuzzer, FindsPlantedBugAndMinimizes) {
  Fuzzer fuzzer({/*seed=*/42, /*iterations=*/2000, /*minimize=*/true, {}});
  const FuzzTarget t = toy_target();
  const CampaignResult r = fuzzer.run(t);
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].violation, "toy.planted");
  // ddmin-lite reduces to the 2-byte essence.
  EXPECT_EQ(r.findings[0].minimized, (Bytes{0xBA, 0xD0}));
  // The minimized input still reproduces.
  EXPECT_EQ(t.execute(r.findings[0].minimized).violation, "toy.planted");
  EXPECT_GT(r.edges, 0u);
  EXPECT_GE(r.corpus_size, t.seeds.size());
}

TEST(Fuzzer, CampaignIsBitReproducible) {
  for (const FuzzTarget& t : builtin_targets()) {
    Fuzzer::Config cfg;
    cfg.seed = 1234;
    cfg.iterations = 200;
    const CampaignResult r1 = Fuzzer(cfg).run(t);
    const CampaignResult r2 = Fuzzer(cfg).run(t);
    EXPECT_EQ(r1.to_json(), r2.to_json()) << "target " << t.name;
    EXPECT_EQ(r1.coverage_digest, r2.coverage_digest) << "target " << t.name;
  }
}

TEST(Fuzzer, DifferentSeedsDiverge) {
  const FuzzTarget t = someip_target();
  Fuzzer::Config a, b;
  a.seed = 1;
  b.seed = 2;
  a.iterations = b.iterations = 300;
  EXPECT_NE(Fuzzer(a).run(t).to_json(), Fuzzer(b).run(t).to_json());
}

TEST(Fuzzer, BuiltinTargetsAcceptTheirOwnSeeds) {
  for (const FuzzTarget& t : builtin_targets()) {
    ASSERT_FALSE(t.seeds.empty()) << t.name;
    for (const Bytes& s : t.seeds) {
      const ExecResult r = t.execute(s);
      EXPECT_TRUE(r.violation.empty())
          << t.name << " seed breaches oracle: " << r.violation;
      EXPECT_TRUE(r.accepted) << t.name << " rejects its own seed";
    }
  }
}

// --- frozen reproducers: SOME/IP length handling ---------------------------

TEST(FrozenRepro, SomeIpLengthWrapRejected) {
  // 13-byte header with length 0xFFFFFFF6: 13 + len wraps to a small value
  // in 32-bit arithmetic, so the pre-fix parser read ~4 GiB out of bounds.
  const Bytes wrap{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                   0x00, 0xFF, 0xFF, 0xFF, 0xF6};
  EXPECT_FALSE(ivn::SomeIpMessage::parse(wrap).has_value());
}

TEST(FrozenRepro, SomeIpOversizedLengthRejected) {
  ivn::SomeIpMessage m;
  m.payload = {1, 2, 3};
  Bytes b = m.serialize();
  b[12] = 0x09;  // declared payload 9 > actual 3
  EXPECT_FALSE(ivn::SomeIpMessage::parse(b).has_value());
  b[12] = 0x02;  // shorter than actual is fine (MAC trailers ride behind)
  const auto short_ok = ivn::SomeIpMessage::parse(b);
  ASSERT_TRUE(short_ok.has_value());
  EXPECT_EQ(short_ok->payload.size(), 2u);
}

TEST(FrozenRepro, SomeIpUnknownTypeRejected) {
  ivn::SomeIpMessage m;
  Bytes b = m.serialize();
  b[8] = 0x7E;  // not a known message type
  EXPECT_FALSE(ivn::SomeIpMessage::parse(b).has_value());
}

// --- frozen reproducers: UDS byte-level request validation -----------------

class UdsFixture {
 public:
  UdsFixture()
      : server_({ivn::cmac_algorithm(Bytes(16, 0x42)), 3, 600.0, 4}, 99) {
    server_.define_did(0xF190, {0x01}, false);
  }
  Bytes req(std::initializer_list<std::uint8_t> r, double now_s = 0.0) {
    return server_.handle_request(Bytes(r), now_s);
  }
  ivn::UdsServer& server() { return server_; }

 private:
  ivn::UdsServer server_;
};

TEST(FrozenRepro, UdsAlfidSmuggleRejected) {
  UdsFixture f;
  // alfid 0x88: 8-byte address/size descriptors — out of range, not clamped.
  EXPECT_EQ(f.req({0x34, 0x00, 0x88}), (Bytes{0x7F, 0x34, 0x31}));
  // alfid 0x40: zero-width address field.
  EXPECT_EQ(f.req({0x34, 0x00, 0x40}), (Bytes{0x7F, 0x34, 0x31}));
}

TEST(FrozenRepro, UdsDownloadHugeSizeRejected) {
  UdsFixture f;
  // memorySize 0xFFFFFFFF with 64-bit accumulation: out of range, no wrap.
  EXPECT_EQ(f.req({0x34, 0x00, 0x44, 0x00, 0x00, 0x10, 0x00, 0xFF, 0xFF, 0xFF,
                   0xFF}),
            (Bytes{0x7F, 0x34, 0x31}));
  // Body length disagreeing with the ALFID is a format error (NRC 0x13).
  EXPECT_EQ(f.req({0x34, 0x00, 0x44, 0x00, 0x00, 0x10, 0x00, 0xFF}),
            (Bytes{0x7F, 0x34, 0x13}));
}

TEST(FrozenRepro, UdsTruncatedSecurityAccessRejected) {
  UdsFixture f;
  EXPECT_EQ(f.req({0x10, 0x03}), (Bytes{0x50, 0x03}));  // extended session
  // sendKey with a 1-byte key against a 4-byte seed: reject, never clamp.
  EXPECT_EQ(f.req({0x27, 0x02, 0x01}), (Bytes{0x7F, 0x27, 0x13}));
  EXPECT_FALSE(f.server().unlocked());
  // requestSeed with trailing garbage is malformed too.
  EXPECT_EQ(f.req({0x27, 0x01, 0xAA}), (Bytes{0x7F, 0x27, 0x13}));
}

TEST(FrozenRepro, UdsWrongLengthReadWriteRejected) {
  UdsFixture f;
  EXPECT_EQ(f.req({0x22, 0xF1}), (Bytes{0x7F, 0x22, 0x13}));
  EXPECT_EQ(f.req({0x22, 0xF1, 0x90, 0x00}), (Bytes{0x7F, 0x22, 0x13}));
  EXPECT_EQ(f.req({0x22, 0xF1, 0x90}), (Bytes{0x62, 0xF1, 0x90, 0x01}));
  EXPECT_EQ(f.req({0x2E, 0xF1, 0x90}), (Bytes{0x7F, 0x2E, 0x13}));  // no value
  EXPECT_EQ(f.req({0x10}), (Bytes{0x7F, 0x10, 0x13}));
  EXPECT_EQ(f.req({0x99}), (Bytes{0x7F, 0x99, 0x11}));  // unknown service
}

TEST(FrozenRepro, UdsHandleRequestFullUnlockFlow) {
  UdsFixture f;
  EXPECT_EQ(f.req({0x10, 0x03}), (Bytes{0x50, 0x03}));
  const Bytes seed_resp = f.req({0x27, 0x01});
  ASSERT_EQ(seed_resp.size(), 2u + 4u);  // [0x67, level, seed x4]
  ASSERT_EQ(seed_resp[0], 0x67);
  const Bytes seed(seed_resp.begin() + 2, seed_resp.end());
  const Bytes key = ivn::cmac_algorithm(Bytes(16, 0x42))(seed);
  Bytes send_key{0x27, 0x02};
  send_key.insert(send_key.end(), key.begin(), key.end());
  const Bytes key_resp = f.server().handle_request(send_key, 0.0);
  EXPECT_EQ(key_resp, (Bytes{0x67, 0x02}));
  EXPECT_TRUE(f.server().unlocked());
}

// --- frozen reproducers: CAN wire decode -----------------------------------

TEST(FrozenRepro, CanClassicDlcOverflowRejected) {
  // V10: classic frame declaring dlc 15 — a lenient decoder reads 15 bytes
  // from an 8-byte body.
  const Bytes v10{0x00, 0x00, 0x00, 0x01, 0x23, 0x0F,
                  0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  EXPECT_FALSE(ivn::CanFrame::decode_wire(v10).has_value());
}

TEST(FrozenRepro, CanWireValidationAndRoundTrip) {
  // BRS without FD.
  EXPECT_FALSE(ivn::CanFrame::decode_wire(
                   Bytes{0x08, 0x00, 0x00, 0x01, 0x23, 0x00})
                   .has_value());
  // Payload length disagreeing with the DLC code.
  EXPECT_FALSE(ivn::CanFrame::decode_wire(
                   Bytes{0x00, 0x00, 0x00, 0x01, 0x23, 0x02, 0xAA})
                   .has_value());
  // Base id out of 11-bit range without the extended flag.
  EXPECT_FALSE(ivn::CanFrame::decode_wire(
                   Bytes{0x00, 0x00, 0x00, 0x08, 0x00, 0x00})
                   .has_value());
  // A legal FD frame round-trips exactly.
  ivn::CanFrame f;
  f.id = 0x1ABCDE;
  f.extended = true;
  f.format = ivn::CanFormat::kFd;
  f.brs = true;
  f.data.assign(24, 0x5A);
  const auto back = ivn::CanFrame::decode_wire(f.encode_wire());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->valid());
  EXPECT_EQ(back->encode_wire(), f.encode_wire());
}

// --- frozen reproducers: OTA metadata strict parsing -----------------------

TEST(FrozenRepro, OtaTruncatedMetadataRejected) {
  EXPECT_FALSE(ota::RootMeta::parse(Bytes{'R'}).has_value());
  EXPECT_FALSE(ota::TargetsMeta::parse(Bytes{'T', 0x00}).has_value());
  EXPECT_FALSE(ota::SnapshotMeta::parse(Bytes{'S'}).has_value());
  EXPECT_FALSE(ota::TimestampMeta::parse(Bytes{'M'}).has_value());
  // V12-style: targets entry declaring a huge image length, truncated header.
  Bytes v12;
  v12.push_back('T');
  util::append_be(v12, 7, 4);
  util::append_be(v12, 2'000'000'000ULL, 8);
  const char* name = "brake.img";
  v12.insert(v12.end(), name, name + 9);
  v12.push_back(0);
  v12.insert(v12.end(), 32, 0xCD);
  util::append_be(v12, ~std::uint64_t{0}, 8);
  EXPECT_FALSE(ota::TargetsMeta::parse(v12).has_value());
}

TEST(FrozenRepro, OtaMetadataTrailingBytesRejected) {
  ota::SnapshotMeta snap;
  snap.version = 3;
  snap.targets_version = 3;
  Bytes b = snap.serialize();
  ASSERT_TRUE(ota::SnapshotMeta::parse(b).has_value());
  b.push_back(0x00);
  EXPECT_FALSE(ota::SnapshotMeta::parse(b).has_value());
}

TEST(FrozenRepro, OtaRootMetaParseRoundTrip) {
  const auto k1 = crypto::EcdsaPrivateKey::from_secret(Bytes(32, 0x31));
  const auto k2 = crypto::EcdsaPrivateKey::from_secret(Bytes(32, 0x32));
  ota::RootMeta root;
  root.version = 5;
  root.expires.ns = 42;
  root.roles[ota::Role::kRoot] = {2, {ota::key_id(k1.public_key()),
                                      ota::key_id(k2.public_key())}};
  root.roles[ota::Role::kTimestamp] = {1, {ota::key_id(k2.public_key())}};
  root.keys[ota::key_id_hex(ota::key_id(k1.public_key()))] = k1.public_key();
  root.keys[ota::key_id_hex(ota::key_id(k2.public_key()))] = k2.public_key();
  const Bytes b = root.serialize();
  const auto parsed = ota::RootMeta::parse(b);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, root);
  EXPECT_EQ(parsed->serialize(), b);
  // Flipping a key byte off the curve rejects.
  Bytes bad = b;
  bad[bad.size() - 1] ^= 0x01;
  EXPECT_FALSE(ota::RootMeta::parse(bad).has_value());
}

}  // namespace
}  // namespace aseck::fuzz
