// Tests for the replayable attack corpus (E20): stable text serialization,
// strict parsing, deterministic replay onto a live CAN bus (same corpus ->
// identical TraceBus timeline digest), and malformed-frame chaos splicing
// via FaultKind::kMalformedFrame.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "attacks/corpus.hpp"
#include "ivn/can.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"

namespace aseck::attacks {
namespace {

using sim::Scheduler;
using sim::SimTime;
using util::Bytes;

class RecordingNode : public ivn::CanNode {
 public:
  using ivn::CanNode::CanNode;
  void on_frame(const ivn::CanFrame& frame, sim::SimTime at) override {
    rx.push_back(frame);
    rx_at.push_back(at);
  }
  std::vector<ivn::CanFrame> rx;
  std::vector<sim::SimTime> rx_at;
};

// --- serialization ---------------------------------------------------------

TEST(ScenarioCorpus, BuiltinRoundTripsExactly) {
  const ScenarioCorpus c = ScenarioCorpus::builtin();
  ASSERT_GE(c.size(), 10u);
  const std::string text = c.serialize();
  const auto back = ScenarioCorpus::parse(text);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back->entries()[i], c.entries()[i]) << "entry " << i;
  }
  // Serialization is a fixpoint.
  EXPECT_EQ(back->serialize(), text);
}

TEST(ScenarioCorpus, BuiltinCoversFiveAttackClasses) {
  const ScenarioCorpus c = ScenarioCorpus::builtin();
  EXPECT_GE(c.classes().size(), 5u);
  // The V-matrix anchors must all be present.
  EXPECT_FALSE(c.by_class(AttackClass::kUdsSecurityBypass).empty());
  EXPECT_FALSE(c.by_class(AttackClass::kUdsIntegerOverflow).empty());
  EXPECT_FALSE(c.by_class(AttackClass::kCanDlcOverflow).empty());
  EXPECT_FALSE(c.by_class(AttackClass::kFirmwareHeaderOverflow).empty());
  EXPECT_FALSE(c.by_class(AttackClass::kReplay).empty());
  EXPECT_FALSE(c.by_class(AttackClass::kFlood).empty());
}

TEST(ScenarioCorpus, ParseIsStrict) {
  EXPECT_FALSE(ScenarioCorpus::parse("").has_value());
  EXPECT_FALSE(ScenarioCorpus::parse("not-a-corpus\n").has_value());
  const std::string hdr = "aseck-corpus v1\n";
  // Too few fields.
  EXPECT_FALSE(ScenarioCorpus::parse(hdr + "x|replay|can\n").has_value());
  // Unknown class / protocol names.
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "x|warp|can|1|1|1|AA|o|n\n").has_value());
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "x|replay|tcp|1|1|1|AA|o|n\n").has_value());
  // Bad hex, bad numbers, illegal can id, zero repeat, empty id.
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "x|replay|can|1|1|1|ZZ|o|n\n").has_value());
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "x|replay|can|-1|1|1|AA|o|n\n").has_value());
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "x|replay|can|536870912|1|1|AA|o|n\n")
          .has_value());
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "x|replay|can|1|1|0|AA|o|n\n").has_value());
  EXPECT_FALSE(
      ScenarioCorpus::parse(hdr + "|replay|can|1|1|1|AA|o|n\n").has_value());
  // A minimal valid corpus parses (empty payload allowed, blank lines ok).
  const auto ok =
      ScenarioCorpus::parse(hdr + "x|replay|can|1|1|1||o|n\n\n");
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->size(), 1u);
  EXPECT_EQ(ok->entries()[0].id, "x");
  EXPECT_TRUE(ok->entries()[0].payload.empty());
}

// --- replay ----------------------------------------------------------------

struct ReplayRun {
  std::uint64_t digest = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t rx_frames = 0;
};

ReplayRun replay_builtin_once() {
  Scheduler sched;
  sim::Telemetry tel;
  ivn::CanBus bus(sched, "can0", 500000);
  bus.bind_telemetry(tel);
  RecordingNode sink("sink");
  bus.attach(&sink);
  CorpusReplayer rep(sched, bus, "corpus");
  rep.bind_telemetry(tel);
  rep.schedule_all(ScenarioCorpus::builtin(), SimTime::from_ms(1),
                   SimTime::from_ms(2));
  sched.run();
  ReplayRun r;
  r.digest = timeline_digest(*tel.bus);
  r.frames_sent = rep.frames_sent();
  r.rx_frames = sink.rx.size();
  return r;
}

TEST(CorpusReplayer, ReplayIsDeterministic) {
  const ReplayRun a = replay_builtin_once();
  const ReplayRun b = replay_builtin_once();
  EXPECT_GT(a.frames_sent, 0u);
  EXPECT_GT(a.rx_frames, 0u);
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.rx_frames, b.rx_frames);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(CorpusReplayer, ChunksLongPayloadsAndUsesCarrierId) {
  Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500000);
  RecordingNode sink("sink");
  bus.attach(&sink);
  CorpusReplayer rep(sched, bus, "corpus");
  ScenarioEntry e;
  e.id = "long";
  e.cls = AttackClass::kFlood;
  e.can_id = 0x321;
  e.payload = Bytes(20, 0xEE);  // 20 bytes -> 3 classic frames (8+8+4)
  rep.schedule(e, SimTime::from_ms(1));
  sched.run();
  ASSERT_EQ(sink.rx.size(), 3u);
  EXPECT_EQ(sink.rx[0].id, 0x321u);
  EXPECT_EQ(sink.rx[0].data.size(), 8u);
  EXPECT_EQ(sink.rx[2].data.size(), 4u);
  EXPECT_EQ(rep.frames_sent(), 3u);
  EXPECT_EQ(rep.frames_rejected(), 0u);
  // Replay events land on the replayer's trace.
  EXPECT_EQ(rep.trace().count("corpus", "corpus_tx"), 3u);
  EXPECT_EQ(rep.trace().count("corpus", "corpus_schedule"), 1u);
}

// --- malformed-frame chaos splicing ----------------------------------------

TEST(FaultPlan, MalformedFrameSplicesPayloadInsideWindow) {
  Scheduler sched;
  sim::FaultPlan plan(sched, 7);
  ivn::CanBus bus(sched, "can0", 500000);
  bus.set_fault_port(&plan.port("can0"));
  RecordingNode tx("tx"), sink("sink");
  bus.attach(&tx);
  bus.attach(&sink);

  sim::FaultSpec spec;
  spec.target = "can0";
  spec.kind = sim::FaultKind::kMalformedFrame;
  spec.payload = Bytes{0xDE, 0xAD};
  plan.window(SimTime::from_ms(10), SimTime::from_ms(20), spec);

  ivn::CanFrame f;
  f.id = 0x100;
  f.data = Bytes{0x01, 0x02, 0x03, 0x04};
  // One frame inside the window, one after it clears.
  sched.schedule_at(SimTime::from_ms(12), [&] { bus.send(&tx, f); });
  sched.schedule_at(SimTime::from_ms(30), [&] { bus.send(&tx, f); });
  sched.run();

  ASSERT_EQ(sink.rx.size(), 2u);
  // Inside the window the delivered frame carries the spliced payload.
  EXPECT_EQ(sink.rx[0].data, (Bytes{0xDE, 0xAD}));
  EXPECT_EQ(sink.rx[0].id, 0x100u);  // id untouched — payload-level chaos
  // Outside the window traffic is pristine again.
  EXPECT_EQ(sink.rx[1].data, f.data);
  EXPECT_GT(bus.trace().count("can0", "fault_malformed"), 0u);
  // Frame-level faults auto-recover when the window clears.
  EXPECT_EQ(plan.unrecovered(), 0u);
}

TEST(FaultPlan, MalformedPayloadClampedToFrameCapacity) {
  Scheduler sched;
  sim::FaultPlan plan(sched, 7);
  ivn::CanBus bus(sched, "can0", 500000);
  bus.set_fault_port(&plan.port("can0"));
  RecordingNode tx("tx"), sink("sink");
  bus.attach(&tx);
  bus.attach(&sink);

  // A 20-byte malformed payload spliced into classic traffic must be
  // truncated to 8 bytes so the frame stays schedulable.
  sim::FaultSpec spec;
  spec.target = "can0";
  spec.kind = sim::FaultKind::kMalformedFrame;
  spec.payload = Bytes(20, 0xBB);
  plan.window(SimTime::from_ms(1), SimTime::from_ms(5), spec);

  ivn::CanFrame f;
  f.id = 0x200;
  f.data = Bytes{0x11};
  sched.schedule_at(SimTime::from_ms(2), [&] { bus.send(&tx, f); });
  sched.run();

  ASSERT_EQ(sink.rx.size(), 1u);
  EXPECT_EQ(sink.rx[0].data.size(), 8u);
  EXPECT_EQ(sink.rx[0].data[0], 0xBB);
  EXPECT_TRUE(sink.rx[0].valid());
}

}  // namespace
}  // namespace aseck::attacks
