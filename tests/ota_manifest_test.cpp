// Tests for the Uptane vehicle version manifest path.

#include <gtest/gtest.h>

#include "ota/manifest.hpp"

namespace aseck::ota {
namespace {

using util::Bytes;

struct Fixture {
  crypto::Drbg rng{4321u};
  crypto::EcdsaPrivateKey brake_key{crypto::EcdsaPrivateKey::generate(rng)};
  crypto::EcdsaPrivateKey engine_key{crypto::EcdsaPrivateKey::generate(rng)};
  crypto::EcdsaPrivateKey primary_key{crypto::EcdsaPrivateKey::generate(rng)};
  crypto::EcdsaPrivateKey attacker_key{crypto::EcdsaPrivateKey::generate(rng)};
  ManifestProcessor processor;
  Bytes brake_digest = crypto::sha256_bytes(util::from_string("brake-fw-v7"));
  Bytes engine_digest = crypto::sha256_bytes(util::from_string("engine-fw-v3"));

  Fixture() {
    processor.register_ecu("BRK001", brake_key.public_key());
    processor.register_ecu("ENG001", engine_key.public_key());
    processor.register_primary("VIN123", primary_key.public_key());
    processor.expect("VIN123", "brake-fw", 7, brake_digest);
    processor.expect("VIN123", "engine-fw", 3, engine_digest);
  }

  EcuVersionReport brake_report(std::uint32_t v, const Bytes& digest) {
    return EcuVersionReport::make("BRK001", "brake-fw", v, digest,
                                  util::SimTime::from_s(100), brake_key);
  }
  EcuVersionReport engine_report(std::uint32_t v, const Bytes& digest) {
    return EcuVersionReport::make("ENG001", "engine-fw", v, digest,
                                  util::SimTime::from_s(100), engine_key);
  }
};

TEST(Manifest, AllCurrent) {
  Fixture f;
  const auto m = VehicleManifest::assemble(
      "VIN123", {f.brake_report(7, f.brake_digest), f.engine_report(3, f.engine_digest)},
      f.primary_key);
  const auto result = f.processor.process(m);
  EXPECT_TRUE(result.manifest_authentic);
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(result.findings[0].status, ManifestProcessor::ReportStatus::kCurrent);
  EXPECT_EQ(result.findings[1].status, ManifestProcessor::ReportStatus::kCurrent);
  EXPECT_EQ(result.alarms(), 0u);
}

TEST(Manifest, OutdatedEcuDetectedWithoutAlarm) {
  Fixture f;
  // Engine has not yet applied v3 (still on v2): a campaign-progress signal,
  // not an attack.
  const Bytes old_digest = crypto::sha256_bytes(util::from_string("engine-fw-v2"));
  const auto m = VehicleManifest::assemble(
      "VIN123", {f.brake_report(7, f.brake_digest), f.engine_report(2, old_digest)},
      f.primary_key);
  const auto result = f.processor.process(m);
  EXPECT_EQ(result.findings[1].status, ManifestProcessor::ReportStatus::kOutdated);
  EXPECT_EQ(result.alarms(), 0u);
}

TEST(Manifest, UnexpectedVersionAlarms) {
  Fixture f;
  // Brake claims a version newer than directed (rogue install).
  const Bytes rogue = crypto::sha256_bytes(util::from_string("brake-fw-v99"));
  const auto m = VehicleManifest::assemble(
      "VIN123", {f.brake_report(99, rogue)}, f.primary_key);
  const auto result = f.processor.process(m);
  EXPECT_EQ(result.findings[0].status,
            ManifestProcessor::ReportStatus::kUnexpectedVersion);
  EXPECT_EQ(result.alarms(), 1u);
}

TEST(Manifest, DigestMismatchAtExpectedVersionAlarms) {
  Fixture f;
  // Right version number, wrong bytes: tampered image pretending to be v7.
  const Bytes tampered = crypto::sha256_bytes(util::from_string("evil-bytes"));
  const auto m = VehicleManifest::assemble("VIN123", {f.brake_report(7, tampered)},
                                           f.primary_key);
  const auto result = f.processor.process(m);
  EXPECT_EQ(result.findings[0].status,
            ManifestProcessor::ReportStatus::kUnexpectedVersion);
}

TEST(Manifest, ForgedEcuReportDetected) {
  Fixture f;
  // A compromised primary fabricates the brake report with its own key.
  EcuVersionReport forged = EcuVersionReport::make(
      "BRK001", "brake-fw", 7, f.brake_digest, util::SimTime::from_s(100),
      f.attacker_key);
  const auto m = VehicleManifest::assemble("VIN123", {forged}, f.primary_key);
  const auto result = f.processor.process(m);
  EXPECT_TRUE(result.manifest_authentic);  // envelope is fine...
  EXPECT_EQ(result.findings[0].status,
            ManifestProcessor::ReportStatus::kBadSignature);  // ...report isn't
  EXPECT_EQ(result.alarms(), 1u);
}

TEST(Manifest, TamperedReportInsideManifestBreaksEnvelope) {
  Fixture f;
  auto m = VehicleManifest::assemble("VIN123", {f.brake_report(7, f.brake_digest)},
                                     f.primary_key);
  m.reports[0].installed_version = 6;  // MITM edit after primary signed
  const auto result = f.processor.process(m);
  EXPECT_FALSE(result.manifest_authentic);
  // The edited report's own signature also fails.
  EXPECT_EQ(result.findings[0].status,
            ManifestProcessor::ReportStatus::kBadSignature);
}

TEST(Manifest, UnknownEcuAndUnknownPrimary) {
  Fixture f;
  const auto ghost = EcuVersionReport::make("GHOST9", "brake-fw", 7,
                                            f.brake_digest,
                                            util::SimTime::from_s(1),
                                            f.attacker_key);
  const auto m = VehicleManifest::assemble("VIN999", {ghost}, f.attacker_key);
  const auto result = f.processor.process(m);
  EXPECT_FALSE(result.manifest_authentic);  // VIN999 primary not registered
  EXPECT_EQ(result.findings[0].status,
            ManifestProcessor::ReportStatus::kUnknownEcu);
}

}  // namespace
}  // namespace aseck::ota
