// Tests for the security gateway: routing, firewall, rate limiting,
// quarantine, and latency overhead.

#include <gtest/gtest.h>

#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"

namespace aseck::gateway {
namespace {

using ecu::Ecu;
using util::Bytes;

struct Fixture {
  sim::Scheduler sched;
  ivn::CanBus powertrain{sched, "powertrain", 500000};
  ivn::CanBus infotainment{sched, "infotainment", 500000};
  SecurityGateway gw{sched, "cgw"};
  Ecu engine{sched, "engine", 1};
  Ecu radio{sched, "radio", 2};

  Fixture() {
    gw.add_domain("powertrain", &powertrain);
    gw.add_domain("infotainment", &infotainment);
    provision(engine);
    provision(radio);
    engine.attach_to(&powertrain);
    radio.attach_to(&infotainment);
    engine.boot();
    radio.boot();
  }

  static void provision(Ecu& e) {
    crypto::Block k{};
    e.provision(ecu::FirmwareImage{e.name() + "-fw", 1, Bytes(64, 1)}, k, k, k);
  }
};

TEST(Gateway, RoutesAcrossDomains) {
  Fixture f;
  f.gw.add_route(0x100, "powertrain", "infotainment");
  int got = 0;
  f.radio.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.engine.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.gw.stats().forwarded, 1u);
}

TEST(Gateway, NoRouteMeansIsolation) {
  Fixture f;
  int got = 0;
  f.radio.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.engine.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.gw.stats().dropped_no_route, 1u);
}

TEST(Gateway, RoutesAreDirectional) {
  Fixture f;
  f.gw.add_route(0x100, "powertrain", "infotainment");
  int engine_got = 0;
  f.engine.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++engine_got; });
  // Same id from the infotainment side must NOT reach powertrain.
  f.radio.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(engine_got, 0);
  EXPECT_EQ(f.gw.stats().dropped_no_route, 1u);
}

TEST(Gateway, FirewallDenyRuleBlocks) {
  Fixture f;
  f.gw.add_route(0x200, "infotainment", "powertrain");
  FirewallRule deny;
  deny.from_domain = "infotainment";
  deny.to_domain = "powertrain";
  deny.id_min = 0x000;
  deny.id_max = 0x6FF;
  deny.allow = false;
  f.gw.add_rule(deny);
  int got = 0;
  f.engine.subscribe(0x200, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.radio.send_frame(0x200, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(f.gw.stats().dropped_firewall, 1u);
}

TEST(Gateway, FirstMatchingRuleWins) {
  Fixture f;
  f.gw.add_route(0x200, "infotainment", "powertrain");
  FirewallRule allow_diag;
  allow_diag.id_min = 0x200;
  allow_diag.id_max = 0x200;
  allow_diag.allow = true;
  FirewallRule deny_all;
  deny_all.allow = false;
  f.gw.add_rule(allow_diag);
  f.gw.add_rule(deny_all);
  int got = 0;
  f.engine.subscribe(0x200, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.radio.send_frame(0x200, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 1);
}

TEST(Gateway, MaxDlcRule) {
  Fixture f;
  f.gw.add_route(0x300, "infotainment", "powertrain");
  FirewallRule small_only;
  small_only.id_min = 0x300;
  small_only.id_max = 0x300;
  small_only.allow = true;
  small_only.max_dlc = 2;
  f.gw.add_rule(small_only);
  int got = 0;
  f.engine.subscribe(0x300, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.radio.send_frame(0x300, Bytes{0x01, 0x02});
  f.radio.send_frame(0x300, Bytes{0x01, 0x02, 0x03});  // too big
  f.sched.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(f.gw.stats().dropped_firewall, 1u);
}

TEST(Gateway, RateLimitDropsFlood) {
  Fixture f;
  f.gw.add_route(0x400, "infotainment", "powertrain");
  f.gw.set_rate_limit("infotainment", 0x400, RateLimit{10.0, 5.0});
  int got = 0;
  f.engine.subscribe(0x400, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  for (int i = 0; i < 100; ++i) f.radio.send_frame(0x400, Bytes{0x01});
  f.sched.run();
  // Burst of 5 plus a handful of refills during the bus drain (~13ms).
  EXPECT_LE(got, 8);
  EXPECT_GE(got, 5);
  EXPECT_GE(f.gw.stats().dropped_rate, 90u);
}

TEST(Gateway, DomainWideRateLimit) {
  Fixture f;
  f.gw.add_route(0x500, "infotainment", "powertrain");
  f.gw.add_route(0x501, "infotainment", "powertrain");
  f.gw.set_domain_rate_limit("infotainment", RateLimit{5.0, 2.0});
  int got = 0;
  f.engine.subscribe(0x500, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.engine.subscribe(0x501, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  for (int i = 0; i < 20; ++i) {
    f.radio.send_frame(0x500, Bytes{0x01});
    f.radio.send_frame(0x501, Bytes{0x01});
  }
  f.sched.run();
  // Each flow gets its own bucket from the domain default: 2 burst each.
  EXPECT_LE(got, 6);
  EXPECT_GT(f.gw.stats().dropped_rate, 30u);
}

TEST(Gateway, QuarantineStopsCompromisedDomain) {
  Fixture f;
  f.gw.add_route(0x100, "infotainment", "powertrain");
  int got = 0;
  f.engine.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.radio.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 1);
  f.gw.quarantine("infotainment");
  EXPECT_TRUE(f.gw.quarantined("infotainment"));
  f.radio.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 1);  // blocked
  EXPECT_EQ(f.gw.stats().dropped_quarantine, 1u);
  f.gw.quarantine("infotainment", false);
  f.radio.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 2);
}

TEST(Gateway, QuarantinedDestinationAlsoBlocked) {
  Fixture f;
  f.gw.add_route(0x100, "powertrain", "infotainment");
  f.gw.quarantine("infotainment");
  int got = 0;
  f.radio.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.engine.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  EXPECT_EQ(got, 0);
}

TEST(Gateway, ProcessingDelayAddsLatency) {
  Fixture f;
  f.gw.set_processing_delay(sim::SimTime::from_us(500));
  f.gw.add_route(0x100, "powertrain", "infotainment");
  sim::SimTime arrival = sim::SimTime::zero();
  f.radio.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime at) {
    arrival = at;
  });
  f.engine.send_frame(0x100, Bytes{0x01});
  f.sched.run();
  // Two bus serializations (~100us each at 500kbit) + 500us gateway.
  EXPECT_GT(arrival.us(), 600.0);
}

TEST(Gateway, DropObserverInvoked) {
  Fixture f;
  std::vector<DropReason> reasons;
  f.gw.set_drop_observer([&](const std::string&, const ivn::CanFrame&,
                             DropReason r) { reasons.push_back(r); });
  f.engine.send_frame(0x123, Bytes{0x01});  // no route
  f.sched.run();
  ASSERT_EQ(reasons.size(), 1u);
  EXPECT_EQ(reasons[0], DropReason::kNoRoute);
}

TEST(Gateway, RejectsBadConfig) {
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "a", 500000);
  SecurityGateway gw(sched, "gw");
  gw.add_domain("a", &bus);
  EXPECT_THROW(gw.add_domain("a", &bus), std::invalid_argument);
  EXPECT_THROW(gw.add_route(1, "a", "missing"), std::invalid_argument);
  EXPECT_THROW(gw.quarantine("missing"), std::out_of_range);
}

TEST(Gateway, MulticastRoute) {
  sim::Scheduler sched;
  ivn::CanBus a(sched, "a", 500000), b(sched, "b", 500000), c(sched, "c", 500000);
  SecurityGateway gw(sched, "gw");
  gw.add_domain("a", &a);
  gw.add_domain("b", &b);
  gw.add_domain("c", &c);
  gw.add_route(0x100, "a", "b");
  gw.add_route(0x100, "a", "c");
  Ecu src(sched, "src", 1), rx_b(sched, "rx_b", 2), rx_c(sched, "rx_c", 3);
  crypto::Block k{};
  src.provision(ecu::FirmwareImage{"f", 1, Bytes(16, 1)}, k, k, k);
  rx_b.provision(ecu::FirmwareImage{"f", 1, Bytes(16, 1)}, k, k, k);
  rx_c.provision(ecu::FirmwareImage{"f", 1, Bytes(16, 1)}, k, k, k);
  src.attach_to(&a);
  rx_b.attach_to(&b);
  rx_c.attach_to(&c);
  src.boot();
  rx_b.boot();
  rx_c.boot();
  int got = 0;
  rx_b.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  rx_c.subscribe(0x100, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  src.send_frame(0x100, Bytes{1});
  sched.run();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(gw.stats().forwarded, 2u);
}

TEST(Gateway, LimpHomeRecoveryRestoresShedRoutes) {
  // The recovery direction of graceful degradation: a fault burst drives the
  // domain straight to limp-home, calm health windows then step it down one
  // level at a time, and a previously shed non-critical route carries
  // traffic again only once the domain is back to normal. The whole walk
  // must appear ordered on the trace bus:
  // mode_limp_home < mode_degraded < mode_normal < forward.
  Fixture f;
  sim::Telemetry t;
  f.gw.bind_telemetry(t);
  f.gw.add_route(0x200, "powertrain", "infotainment", /*safety_critical=*/false);
  DegradedModeConfig cfg;
  cfg.window = sim::SimTime::from_ms(10);
  cfg.degrade_threshold = 5;
  cfg.limp_threshold = 15;
  cfg.healthy_windows = 2;
  f.gw.enable_degraded_mode(cfg);

  int got = 0;
  f.radio.subscribe(0x200, [&](const ivn::CanFrame&, sim::SimTime) { ++got; });
  f.sched.schedule_at(sim::SimTime::from_ms(1),
                      [&] { f.gw.report_domain_fault("powertrain", 20); });
  // Shed while limp-home...
  f.sched.schedule_at(sim::SimTime::from_ms(12),
                      [&] { f.engine.send_frame(0x200, Bytes{0x01}); });
  // ...forwarded again after limp -> degraded -> normal (2 calm windows per
  // step: normal from t = 50 ms).
  f.sched.schedule_at(sim::SimTime::from_ms(55),
                      [&] { f.engine.send_frame(0x200, Bytes{0x02}); });
  f.sched.run_until(sim::SimTime::from_ms(100));

  EXPECT_EQ(f.gw.mode("powertrain"), GatewayMode::kNormal);
  EXPECT_EQ(got, 1);  // only the post-recovery frame made it across
  EXPECT_EQ(f.gw.stats().dropped_degraded, 1u);
  EXPECT_EQ(f.gw.stats().forwarded, 1u);

  const auto seq = [&](std::string_view kind) -> std::uint64_t {
    const sim::TraceEvent* e = t.bus->find_first("cgw", kind);
    return e ? e->seq : 0;
  };
  const std::uint64_t limp = seq("mode_limp_home");
  const std::uint64_t degraded = seq("mode_degraded");
  const std::uint64_t normal = seq("mode_normal");
  const std::uint64_t forward = seq("forward");
  ASSERT_NE(limp, 0u);
  ASSERT_NE(degraded, 0u);
  ASSERT_NE(normal, 0u);
  ASSERT_NE(forward, 0u);
  EXPECT_LT(limp, degraded);
  EXPECT_LT(degraded, normal);
  EXPECT_LT(normal, forward);
}

}  // namespace
}  // namespace aseck::gateway
