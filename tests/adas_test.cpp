// Tests for the ADAS substrate: sensors, fusion voting, AEB, and the §4.1
// sensor attacks (LIDAR ghost injection, blinding, acoustic MEMS bias,
// TPMS spoofing).

#include <gtest/gtest.h>

#include "adas/fusion.hpp"
#include "adas/sensors.hpp"

namespace aseck::adas {
namespace {

PerceptionSensor make_sensor(SensorKind kind, std::uint64_t seed) {
  PerceptionSensor::Config cfg;
  cfg.kind = kind;
  cfg.dropout_prob = 0.0;
  return PerceptionSensor(cfg, seed);
}

TEST(Sensors, DetectsObjectsInRangeWithNoise) {
  PerceptionSensor radar = make_sensor(SensorKind::kRadar, 1);
  const std::vector<TruthObject> truth{{50.0, 0.0, 10.0}, {200.0, 0.0, 5.0}};
  const auto dets = radar.sense(truth);
  ASSERT_EQ(dets.size(), 1u);  // 200 m object out of range
  EXPECT_NEAR(dets[0].range_m, 50.0, 3.0);
  EXPECT_NEAR(dets[0].rel_speed_mps, 10.0, 1.0);
}

TEST(Sensors, GhostInjectionAndBlinding) {
  PerceptionSensor lidar = make_sensor(SensorKind::kLidar, 2);
  lidar.inject_ghost(Detection{15.0, 0.0, 20.0, 1.0});
  auto dets = lidar.sense({});
  ASSERT_EQ(dets.size(), 1u);  // pure ghost
  EXPECT_DOUBLE_EQ(dets[0].range_m, 15.0);
  lidar.set_blinded(true);
  dets = lidar.sense({{30.0, 0.0, 5.0}});
  ASSERT_EQ(dets.size(), 1u);  // real object suppressed, ghost persists
  EXPECT_DOUBLE_EQ(dets[0].range_m, 15.0);
  lidar.inject_ghost(std::nullopt);
  EXPECT_TRUE(lidar.sense({{30.0, 0.0, 5.0}}).empty());
}

TEST(Fusion, CorroboratedObjectsActionable) {
  PerceptionSensor radar = make_sensor(SensorKind::kRadar, 3);
  PerceptionSensor lidar = make_sensor(SensorKind::kLidar, 4);
  PerceptionSensor camera = make_sensor(SensorKind::kCamera, 5);
  SensorFusion fusion;
  fusion.add_sensor(&radar);
  fusion.add_sensor(&lidar);
  fusion.add_sensor(&camera);
  const auto out = fusion.fuse({{40.0, 0.0, 8.0}});
  ASSERT_EQ(out.actionable.size(), 1u);
  EXPECT_EQ(out.actionable[0].corroboration, 3);
  EXPECT_NEAR(out.actionable[0].range_m, 40.0, 2.0);
  EXPECT_EQ(out.single_source_rejected, 0u);
}

TEST(Fusion, SingleSensorGhostOutvoted) {
  PerceptionSensor radar = make_sensor(SensorKind::kRadar, 6);
  PerceptionSensor lidar = make_sensor(SensorKind::kLidar, 7);
  SensorFusion fusion;
  fusion.add_sensor(&radar);
  fusion.add_sensor(&lidar);
  // LIDAR spoofer injects a phantom braking target [7].
  lidar.inject_ghost(Detection{12.0, 0.0, 25.0, 1.0});
  const auto out = fusion.fuse({{60.0, 0.0, 3.0}});
  // The phantom is a track but NOT actionable.
  ASSERT_EQ(out.actionable.size(), 1u);
  EXPECT_NEAR(out.actionable[0].range_m, 60.0, 2.0);
  EXPECT_GE(out.single_source_rejected, 1u);
}

TEST(Fusion, CoordinatedMultiSensorSpoofDefeatsVoting) {
  // Residual risk: ghosts injected into BOTH sensors within the gate fuse
  // into an actionable phantom.
  PerceptionSensor radar = make_sensor(SensorKind::kRadar, 8);
  PerceptionSensor lidar = make_sensor(SensorKind::kLidar, 9);
  SensorFusion fusion;
  fusion.add_sensor(&radar);
  fusion.add_sensor(&lidar);
  radar.inject_ghost(Detection{12.0, 0.0, 25.0, 1.0});
  lidar.inject_ghost(Detection{13.0, 0.0, 25.0, 1.0});
  const auto out = fusion.fuse({});
  ASSERT_EQ(out.actionable.size(), 1u);
  EXPECT_EQ(out.actionable[0].corroboration, 2);
}

TEST(Aeb, BrakesOnImminentCollisionOnly) {
  AebController aeb;
  // 30 m at 20 m/s closing: TTC 1.5 s < 1.8 -> brake.
  EXPECT_TRUE(aeb.evaluate({{30.0, 20.0, 2}}).brake);
  // 60 m at 20 m/s: TTC 3 s -> no brake.
  EXPECT_FALSE(aeb.evaluate({{60.0, 20.0, 2}}).brake);
  // Opening range: never brake.
  EXPECT_FALSE(aeb.evaluate({{30.0, -5.0, 2}}).brake);
  EXPECT_FALSE(aeb.evaluate({}).brake);
}

TEST(Aeb, PhantomBrakingPreventedByFusion) {
  // End-to-end: LIDAR-only ghost at 10 m would trigger AEB if trusted, but
  // fusion refuses to actionize it.
  PerceptionSensor radar = make_sensor(SensorKind::kRadar, 10);
  PerceptionSensor lidar = make_sensor(SensorKind::kLidar, 11);
  SensorFusion fusion;
  fusion.add_sensor(&radar);
  fusion.add_sensor(&lidar);
  AebController aeb;
  lidar.inject_ghost(Detection{10.0, 0.0, 30.0, 1.0});
  const auto out = fusion.fuse({});
  EXPECT_FALSE(aeb.evaluate(out.actionable).brake);
  // Unfused (naive single-sensor) consumer would have braked:
  EXPECT_TRUE(aeb.evaluate({{10.0, 30.0, 1}}).brake);
}

TEST(Imu, AcousticInjectionDetected) {
  MemsAccelerometer imu(0.05, 12);
  WheelSpeedSensor wheel(0.002, 13);
  ImuPlausibilityMonitor monitor;
  // Constant 20 m/s cruise, no acceleration; attacker injects 3 m/s^2 bias.
  double speed = 20.0;
  bool detected = false;
  imu.set_acoustic_attack(3.0);
  for (int i = 0; i < 50 && !detected; ++i) {
    detected = monitor.feed(imu.sense(0.0), wheel.sense(speed), 0.1);
  }
  EXPECT_TRUE(detected);
}

TEST(Imu, NoFalseAlarmDuringHonestDriving) {
  MemsAccelerometer imu(0.05, 14);
  WheelSpeedSensor wheel(0.002, 15);
  ImuPlausibilityMonitor monitor;
  double speed = 15.0;
  for (int i = 0; i < 300; ++i) {
    const double accel = (i % 100 < 50) ? 1.0 : -1.0;  // gentle speed waves
    speed += accel * 0.1;
    EXPECT_FALSE(monitor.feed(imu.sense(accel), wheel.sense(speed), 0.1)) << i;
  }
}

TEST(Tpms, SpoofingUnauthenticated) {
  TpmsReceiver tpms;
  EXPECT_DOUBLE_EQ(tpms.sense(), 240.0);
  // Attacker broadcasts a fake low-pressure alarm (paper ref [11]).
  tpms.spoof(80.0);
  EXPECT_DOUBLE_EQ(tpms.sense(), 80.0);  // accepted without authentication
  tpms.spoof(std::nullopt);
  EXPECT_DOUBLE_EQ(tpms.sense(), 240.0);
}

TEST(Sensors, KindNames) {
  EXPECT_STREQ(sensor_kind_name(SensorKind::kRadar), "radar");
  EXPECT_STREQ(sensor_kind_name(SensorKind::kLidar), "lidar");
  EXPECT_STREQ(sensor_kind_name(SensorKind::kCamera), "camera");
}

}  // namespace
}  // namespace aseck::adas
