// Tests for the Uptane-style OTA framework: metadata signing, repository
// publication, full/partial verification, attack resistance, installation.

#include <gtest/gtest.h>

#include "ota/client.hpp"

namespace aseck::ota {
namespace {

using util::Bytes;

struct OtaFixture {
  crypto::Drbg rng{777u};
  Repository director{rng, "director", SimTime::from_s(3600)};
  Repository images{rng, "image-repo", SimTime::from_s(3600)};
  Bytes fw_v2 = Bytes(2048, 0xF2);

  OtaFixture() {
    director.add_target("brake-fw", fw_v2, 2, "brake-hw");
    images.add_target("brake-fw", fw_v2, 2, "brake-hw");
    director.publish(SimTime::from_s(1));
    images.publish(SimTime::from_s(1));
  }

  FullVerificationClient make_client() {
    return FullVerificationClient("primary", director.trusted_root(),
                                  images.trusted_root());
  }

  FullVerificationClient::Outcome run_client(FullVerificationClient& c,
                                             SimTime now = SimTime::from_s(10)) {
    return c.fetch_and_verify(director.metadata(), images.metadata(), director,
                              images, "brake-fw", "brake-hw",
                              /*installed=*/1, now);
  }
};

TEST(OtaMeta, KeyIdDerivedFromKey) {
  crypto::Drbg rng(1u);
  const auto k1 = crypto::EcdsaPrivateKey::generate(rng);
  const auto k2 = crypto::EcdsaPrivateKey::generate(rng);
  EXPECT_EQ(key_id(k1.public_key()), key_id(k1.public_key()));
  EXPECT_NE(key_id_hex(key_id(k1.public_key())),
            key_id_hex(key_id(k2.public_key())));
}

TEST(OtaMeta, ThresholdVerification) {
  crypto::Drbg rng(2u);
  const auto k1 = crypto::EcdsaPrivateKey::generate(rng);
  const auto k2 = crypto::EcdsaPrivateKey::generate(rng);
  const auto rogue = crypto::EcdsaPrivateKey::generate(rng);
  const Bytes payload = util::from_string("metadata");

  RootMeta::RoleKeys rk;
  rk.threshold = 2;
  rk.key_ids = {key_id(k1.public_key()), key_id(k2.public_key())};
  std::map<std::string, crypto::EcdsaPublicKey> keys{
      {key_id_hex(rk.key_ids[0]), k1.public_key()},
      {key_id_hex(rk.key_ids[1]), k2.public_key()}};

  std::vector<Signature> sigs{sign_payload(k1, payload)};
  EXPECT_FALSE(verify_threshold(payload, sigs, rk, keys));  // 1 of 2
  sigs.push_back(sign_payload(k2, payload));
  EXPECT_TRUE(verify_threshold(payload, sigs, rk, keys));  // 2 of 2
  // Duplicate signatures from one key do not count twice.
  std::vector<Signature> dup{sign_payload(k1, payload), sign_payload(k1, payload)};
  EXPECT_FALSE(verify_threshold(payload, dup, rk, keys));
  // Unauthorized key does not count.
  std::vector<Signature> bad{sign_payload(k1, payload), sign_payload(rogue, payload)};
  EXPECT_FALSE(verify_threshold(payload, bad, rk, keys));
}

TEST(Ota, HappyPathUpdate) {
  OtaFixture f;
  auto client = f.make_client();
  const auto out = f.run_client(client);
  ASSERT_EQ(out.error, OtaError::kOk) << ota_error_name(out.error);
  EXPECT_EQ(out.target.version, 2u);
  EXPECT_EQ(out.image, f.fw_v2);
}

TEST(Ota, ExpiredMetadataRejected) {
  OtaFixture f;
  auto client = f.make_client();
  const auto out = f.run_client(client, SimTime::from_s(4000));
  EXPECT_EQ(out.error, OtaError::kTimestampExpired);
}

TEST(Ota, UnknownTargetAndHardwareMismatch) {
  OtaFixture f;
  auto client = f.make_client();
  auto out = client.fetch_and_verify(f.director.metadata(), f.images.metadata(),
                                     f.director, f.images, "missing-fw",
                                     "brake-hw", 1, SimTime::from_s(10));
  EXPECT_EQ(out.error, OtaError::kTargetUnknown);
  out = client.fetch_and_verify(f.director.metadata(), f.images.metadata(),
                                f.director, f.images, "brake-fw", "engine-hw",
                                1, SimTime::from_s(10));
  EXPECT_EQ(out.error, OtaError::kHardwareMismatch);
}

TEST(Ota, RollbackRejected) {
  OtaFixture f;
  auto client = f.make_client();
  const auto out = client.fetch_and_verify(
      f.director.metadata(), f.images.metadata(), f.director, f.images,
      "brake-fw", "brake-hw", /*installed=*/5, SimTime::from_s(10));
  EXPECT_EQ(out.error, OtaError::kImageRollback);
}

TEST(Ota, TamperedImageRejected) {
  // Man-in-the-middle swaps the downloadable image bytes; metadata in both
  // repos is untouched, so the hash check catches the swap.
  OtaFixture f;
  Bytes evil = f.fw_v2;
  evil[7] ^= 1;
  // Both repos agree on the *original* metadata; only the image repo's
  // stored bytes are swapped (storage/transport compromise, no keys).
  auto targets_backup = f.images.metadata().targets;
  auto snap_backup = f.images.metadata().snapshot;
  auto ts_backup = f.images.metadata().timestamp;
  f.images.add_target("brake-fw", evil, 2, "brake-hw");  // swaps bytes + meta
  f.images.mutable_bundle().targets = targets_backup;    // restore metadata
  f.images.mutable_bundle().snapshot = snap_backup;
  f.images.mutable_bundle().timestamp = ts_backup;

  auto client = f.make_client();
  const auto out = f.run_client(client);
  EXPECT_EQ(out.error, OtaError::kImageHashMismatch);
}

TEST(Ota, ImageHashMismatchDirect) {
  OtaFixture f;
  // Forge: metadata advertises fw_v2's hash, but the downloadable image is
  // corrupted. Achieve this by editing the published targets hash to a
  // different value than the stored bytes, then re-signing with the real
  // key (i.e. a repo bug / storage corruption, not a key compromise).
  auto& bundle = f.images.mutable_bundle();
  bundle.targets.body.targets["brake-fw"].sha256 = Bytes(32, 0xEE);
  f.images.sign_role(bundle.targets, Role::kTargets);
  bundle.snapshot.body.targets_version = bundle.targets.body.version;
  f.images.sign_role(bundle.snapshot, Role::kSnapshot);
  bundle.timestamp.body.snapshot_hash =
      crypto::sha256_bytes(bundle.snapshot.body.serialize());
  f.images.sign_role(bundle.timestamp, Role::kTimestamp);

  // Director still advertises the correct hash -> repos disagree.
  auto client = f.make_client();
  const auto out = f.run_client(client);
  EXPECT_EQ(out.error, OtaError::kReposDisagree);
}

TEST(Ota, MixAndMatchBlockedBySnapshot) {
  OtaFixture f;
  auto client = f.make_client();
  ASSERT_EQ(f.run_client(client).error, OtaError::kOk);
  // Attacker replays an old targets file with newer snapshot/timestamp.
  MetadataBundle forged = f.images.metadata();
  const auto old_targets = forged.targets;
  f.images.add_target("brake-fw", Bytes(2048, 0xF3), 3, "brake-hw");
  f.images.publish(SimTime::from_s(20));
  forged = f.images.metadata();
  forged.targets = old_targets;  // splice stale targets
  auto out = client.fetch_and_verify(f.director.metadata(), forged, f.director,
                                     f.images, "brake-fw", "brake-hw", 1,
                                     SimTime::from_s(30));
  EXPECT_EQ(out.error, OtaError::kTargetsVersionMismatch);
}

TEST(Ota, FreezeAttackDetectedByExpiry) {
  OtaFixture f;
  auto client = f.make_client();
  // Attacker withholds new metadata ("freeze"): the old bundle keeps
  // verifying until its timestamp expires — bounded staleness.
  ASSERT_EQ(f.run_client(client, SimTime::from_s(100)).error, OtaError::kOk);
  EXPECT_EQ(f.run_client(client, SimTime::from_s(3700)).error,
            OtaError::kTimestampExpired);
}

TEST(Ota, CompromisedDirectorTargetsAloneCannotForgeForFullVerification) {
  OtaFixture f;
  // Attacker steals the DIRECTOR targets key and forges a malicious image
  // entry. Full verification still requires the image repo to agree.
  const Bytes evil(2048, 0x66);
  auto& bundle = f.director.mutable_bundle();
  bundle.targets.body.targets["brake-fw"] =
      TargetInfo{crypto::sha256_bytes(evil), evil.size(), 3, "brake-hw"};
  f.director.sign_role(bundle.targets, Role::kTargets);
  bundle.snapshot.body.targets_version = bundle.targets.body.version;
  f.director.sign_role(bundle.snapshot, Role::kSnapshot);
  bundle.timestamp.body.snapshot_hash =
      crypto::sha256_bytes(bundle.snapshot.body.serialize());
  f.director.sign_role(bundle.timestamp, Role::kTimestamp);

  auto client = f.make_client();
  const auto out = f.run_client(client);
  EXPECT_EQ(out.error, OtaError::kReposDisagree);
}

TEST(Ota, WrongKeySignatureRejected) {
  OtaFixture f;
  // Attacker signs targets with a random key.
  crypto::Drbg rng(55u);
  const auto rogue = crypto::EcdsaPrivateKey::generate(rng);
  auto& bundle = f.director.mutable_bundle();
  bundle.targets.body.targets["brake-fw"].version = 9;
  bundle.targets.signatures = {
      sign_payload(rogue, bundle.targets.body.serialize())};
  auto client = f.make_client();
  const auto out = f.run_client(client);
  // Snapshot hash check fires first (targets changed without republish) or
  // signature check — either way the forgery fails.
  EXPECT_NE(out.error, OtaError::kOk);
}

TEST(Ota, KeyRotationAcceptedViaChainedRoot) {
  OtaFixture f;
  auto client = f.make_client();
  ASSERT_EQ(f.run_client(client).error, OtaError::kOk);
  f.director.rotate_key(f.rng, Role::kTargets, SimTime::from_s(50));
  EXPECT_EQ(f.run_client(client, SimTime::from_s(60)).error, OtaError::kOk);
  f.director.rotate_key(f.rng, Role::kRoot, SimTime::from_s(70));
  EXPECT_EQ(f.run_client(client, SimTime::from_s(80)).error, OtaError::kOk);
}

TEST(Ota, PartialVerificationAcceptsDirectorForgery) {
  // THE key asymmetry: a partial-verification secondary trusts the director
  // targets key alone, so a director-targets compromise defeats it, while
  // the full-verification primary catches the same forgery (test above).
  OtaFixture f;
  PartialVerificationClient secondary(
      "secondary", f.director.role_key(Role::kTargets).public_key());
  const Bytes evil(1024, 0x66);
  auto& bundle = f.director.mutable_bundle();
  bundle.targets.body.version += 1;
  bundle.targets.body.targets["brake-fw"] =
      TargetInfo{crypto::sha256_bytes(evil), evil.size(), 3, "brake-hw"};
  f.director.sign_role(bundle.targets, Role::kTargets);

  const auto out =
      secondary.verify(bundle.targets, "brake-fw", "brake-hw", 1,
                       SimTime::from_s(10));
  EXPECT_EQ(out.error, OtaError::kOk);  // forgery accepted: partial is weaker
  EXPECT_EQ(out.target.version, 3u);
}

TEST(Ota, PartialVerificationBasicChecks) {
  OtaFixture f;
  PartialVerificationClient secondary(
      "secondary", f.director.role_key(Role::kTargets).public_key());
  const auto& targets = f.director.metadata().targets;
  EXPECT_EQ(secondary.verify(targets, "brake-fw", "brake-hw", 1, SimTime::from_s(5))
                .error,
            OtaError::kOk);
  EXPECT_EQ(secondary.verify(targets, "brake-fw", "other-hw", 1, SimTime::from_s(5))
                .error,
            OtaError::kHardwareMismatch);
  EXPECT_EQ(secondary.verify(targets, "brake-fw", "brake-hw", 9, SimTime::from_s(5))
                .error,
            OtaError::kImageRollback);
  EXPECT_EQ(
      secondary.verify(targets, "brake-fw", "brake-hw", 1, SimTime::from_s(9999))
          .error,
      OtaError::kTargetsExpired);
  // Wrong key: a different repository's targets.
  PartialVerificationClient wrong(
      "wrong", f.images.role_key(Role::kSnapshot).public_key());
  EXPECT_EQ(wrong.verify(targets, "brake-fw", "brake-hw", 1, SimTime::from_s(5))
                .error,
            OtaError::kTargetsSignature);
}

TEST(Ota, InstallFlow) {
  ecu::Flash flash;
  flash.provision(ecu::FirmwareImage{"brake-fw", 1, Bytes(128, 1)});
  const Bytes img(256, 2);
  EXPECT_EQ(install_image(flash, "brake-fw", 2, img, [] { return true; }),
            InstallResult::kCommitted);
  EXPECT_EQ(flash.active()->version, 2u);
  EXPECT_EQ(flash.rollback_floor(), 2u);
  // Failed self-test reverts.
  EXPECT_EQ(install_image(flash, "brake-fw", 3, img, [] { return false; }),
            InstallResult::kRevertedSelfTest);
  EXPECT_EQ(flash.active()->version, 2u);
  // Downgrade rejected at stage time.
  EXPECT_EQ(install_image(flash, "brake-fw", 1, img, [] { return true; }),
            InstallResult::kStageRejected);
}

}  // namespace
}  // namespace aseck::ota
