// Known-answer tests for SHA-256, HMAC, HKDF, ChaCha20 DRBG, and DST40.

#include <gtest/gtest.h>

#include "crypto/drbg.hpp"
#include "crypto/dst40.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace aseck::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::from_string;
using util::to_hex;

std::string hex(const Digest& d) {
  return to_hex(util::BytesView(d.data(), d.size()));
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(hex(sha256(from_string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256(from_string(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Rng rng(1);
  const Bytes data = rng.bytes(301);
  Sha256 h;
  h.update(util::BytesView(data.data(), 100));
  h.update(util::BytesView(data.data() + 100, 1));
  h.update(util::BytesView(data.data() + 101, 200));
  EXPECT_EQ(hex(h.finalize()), hex(sha256(data)));
}

TEST(Sha256, BoundaryLengths) {
  // Exercise padding around the 55/56/64 byte boundaries.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes data(len, 0x61);
    Sha256 h;
    h.update(data);
    EXPECT_EQ(hex(h.finalize()), hex(sha256(data))) << len;
  }
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha256(key, from_string("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hex(hmac_sha256(from_string("Jefe"),
                            from_string("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(hmac_sha256(key, from_string(
                    "Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyTruncated) {
  const Bytes key = from_string("key");
  const Bytes msg = from_string("message");
  const Digest tag = hmac_sha256(key, msg);
  EXPECT_TRUE(hmac_verify(key, msg, util::BytesView(tag.data(), 16)));
  EXPECT_FALSE(hmac_verify(key, msg, util::BytesView(tag.data(), 4)));  // too short
  Bytes bad(tag.begin(), tag.begin() + 16);
  bad[0] ^= 1;
  EXPECT_FALSE(hmac_verify(key, msg, bad));
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Digest prk = hkdf_extract(salt, ikm);
  EXPECT_EQ(hex(prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ExpandLimits) {
  const Bytes prk(32, 1);
  EXPECT_EQ(hkdf_expand(prk, {}, 0).size(), 0u);
  EXPECT_EQ(hkdf_expand(prk, {}, 33).size(), 33u);
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), std::invalid_argument);
}

TEST(ChaCha20, Rfc8439BlockVector) {
  std::array<std::uint32_t, 8> key{};
  const Bytes kb = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  for (int i = 0; i < 8; ++i) {
    key[static_cast<std::size_t>(i)] =
        util::load_le32(&kb[4 * static_cast<std::size_t>(i)]);
  }
  const std::array<std::uint32_t, 3> nonce{0x09000000, 0x4a000000, 0x00000000};
  std::uint8_t out[64];
  chacha20_block(key, 1, nonce, out);
  EXPECT_EQ(to_hex(util::BytesView(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Drbg, DeterministicAndSeedSensitive) {
  Drbg a(from_string("seed")), b(from_string("seed")), c(from_string("other"));
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_NE(Drbg(from_string("seed")).bytes(64), c.bytes(64));
}

TEST(Drbg, IntSeedConstructor) {
  Drbg a(1234u), b(1234u), c(1235u);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(Drbg(1234u).next_u64(), c.next_u64());
}

TEST(Drbg, UniformBound) {
  Drbg d(99u);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(d.uniform(13), 13u);
  EXPECT_EQ(d.uniform(0), 0u);
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(7u), b(7u);
  (void)a.bytes(16);
  (void)b.bytes(16);
  a.reseed(from_string("fresh entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Drbg, StreamSpansBlocks) {
  Drbg a(5u);
  const Bytes big = a.bytes(200);  // > 3 ChaCha blocks
  Drbg b(5u);
  Bytes parts;
  for (int i = 0; i < 8; ++i) {
    const Bytes p = b.bytes(25);
    parts.insert(parts.end(), p.begin(), p.end());
  }
  EXPECT_EQ(big, parts);
}

TEST(Dst40, DeterministicResponses) {
  const Dst40 t(0x123456789aULL);
  EXPECT_EQ(t.respond(0xdeadbeef42ULL), t.respond(0xdeadbeef42ULL));
  EXPECT_LE(t.respond(0xdeadbeef42ULL), Dst40::kResponseMask);
}

TEST(Dst40, KeyMasking) {
  // Only the low 40 bits of the key matter.
  const Dst40 a(0x123456789aULL);
  const Dst40 b(0xff123456789aULL);
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a.respond(1), b.respond(1));
}

TEST(Dst40, ChallengeSensitivity) {
  const Dst40 t(0x5555555555ULL);
  int diffs = 0;
  for (std::uint64_t c = 0; c < 64; ++c) {
    if (t.respond(c) != t.respond(c + 1)) ++diffs;
  }
  EXPECT_GT(diffs, 60);  // nearly every challenge change flips the response
}

TEST(Dst40, KeySensitivity) {
  util::Rng rng(4242);
  int collisions = 0;
  const std::uint64_t challenge = 0xabcdef0123ULL;
  const Dst40 ref(0x1111111111ULL);
  for (int i = 0; i < 200; ++i) {
    const Dst40 other(rng.next_u64() & Dst40::kKeyMask);
    if (other.key() != ref.key() && other.respond(challenge) == ref.respond(challenge)) {
      ++collisions;
    }
  }
  // 24-bit responses: a couple of random collisions are possible, many are not.
  EXPECT_LT(collisions, 5);
}

}  // namespace
}  // namespace aseck::crypto
