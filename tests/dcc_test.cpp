// Tests for the V2X decentralized congestion control.

#include <gtest/gtest.h>

#include "v2x/dcc.hpp"

namespace aseck::v2x {
namespace {

using util::SimTime;

TEST(Dcc, EscalatesImmediately) {
  DccController dcc;
  EXPECT_EQ(dcc.state(), DccState::kRelaxed);
  EXPECT_EQ(dcc.update(0.45, SimTime::from_ms(100)), DccState::kActive2);
  EXPECT_EQ(dcc.update(0.80, SimTime::from_ms(200)), DccState::kRestrictive);
  EXPECT_EQ(dcc.beacon_interval(), SimTime::from_ms(1000));
}

TEST(Dcc, RampsDownOneStateAtATimeWithDwell) {
  DccController dcc;
  dcc.update(0.9, SimTime::from_ms(0));  // -> restrictive
  // CBR falls, but the first low sample only arms the dwell timer.
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(100)), DccState::kRestrictive);
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(500)), DccState::kRestrictive);
  // After the 1 s dwell: one step down per dwell period, not a jump.
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(1200)), DccState::kActive2);
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(1500)), DccState::kActive2);
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(2300)), DccState::kActive1);
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(3400)), DccState::kRelaxed);
  EXPECT_EQ(dcc.beacon_interval(), SimTime::from_ms(100));
}

TEST(Dcc, ReboundCancelsRampDown) {
  DccController dcc;
  dcc.update(0.9, SimTime::from_ms(0));
  dcc.update(0.1, SimTime::from_ms(100));  // arm ramp-down
  dcc.update(0.9, SimTime::from_ms(200));  // congestion returns
  // Dwell restarts at t=300; no step-down before t=1300.
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(300)), DccState::kRestrictive);
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(1200)), DccState::kRestrictive);
  EXPECT_EQ(dcc.update(0.1, SimTime::from_ms(1400)), DccState::kActive2);
}

TEST(Dcc, BeaconIntervalsMonotone) {
  DccController dcc;
  SimTime last = SimTime::zero();
  for (double cbr : {0.1, 0.35, 0.45, 0.9}) {
    DccController fresh;
    fresh.update(cbr, SimTime::from_ms(1));
    EXPECT_GE(fresh.beacon_interval().ns, last.ns);
    last = fresh.beacon_interval();
  }
}

TEST(Dcc, FloodingAttackForcesFleetBackoff) {
  // Security interaction: an attacker occupying 60% of the channel pushes
  // every honest vehicle to 1 Hz beacons — a 10x situational-awareness loss
  // without breaking any cryptography.
  DccController honest;
  CbrEstimator est;
  SimTime t = SimTime::zero();
  // Attacker transmits 600 us of every 1 ms.
  for (int i = 0; i < 300; ++i) {
    est.on_air(t, SimTime::from_us(600));
    t = t + SimTime::from_ms(1);
    honest.update(est.cbr(t), t);
  }
  EXPECT_EQ(honest.state(), DccState::kRestrictive);
  EXPECT_EQ(honest.beacon_interval(), SimTime::from_ms(1000));
}

TEST(Cbr, WindowedMeasurement) {
  CbrEstimator est(SimTime::from_ms(100));
  // 30 ms of airtime in the first 100 ms window.
  est.on_air(SimTime::from_ms(10), SimTime::from_ms(10));
  est.on_air(SimTime::from_ms(50), SimTime::from_ms(20));
  EXPECT_NEAR(est.cbr(SimTime::from_ms(100)), 0.30, 1e-9);
  // Quiet second window.
  EXPECT_NEAR(est.cbr(SimTime::from_ms(200)), 0.0, 1e-9);
  // Saturation clamps to 1.
  est.on_air(SimTime::from_ms(210), SimTime::from_ms(500));
  EXPECT_DOUBLE_EQ(est.cbr(SimTime::from_ms(320)), 1.0);
}

}  // namespace
}  // namespace aseck::v2x
