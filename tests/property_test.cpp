// Property-style parameterized sweeps (TEST_P) over protocol and crypto
// invariants: these pin down behavior across whole parameter ranges rather
// than single examples.

#include <gtest/gtest.h>

#include <tuple>

#include "core/verification.hpp"
#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/gcm.hpp"
#include "ivn/can.hpp"
#include "ivn/secoc.hpp"
#include "safety/asil.hpp"
#include "util/rng.hpp"

namespace aseck {
namespace {

using util::Bytes;

// ---------------------------------------------------------------- SecOC

class SecOcConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SecOcConfigSweep, RoundTripReplayAndTamper) {
  const auto [mac_bytes, freshness_bytes] = GetParam();
  const Bytes key(16, 0x42);
  const ivn::SecOcChannel ch(key,
                             ivn::SecOcConfig{mac_bytes, freshness_bytes, 32});
  ivn::FreshnessManager tx_fm, rx_fm;
  // 50 messages round-trip, with periodic drops inside the window.
  for (int i = 0; i < 50; ++i) {
    const Bytes payload{static_cast<std::uint8_t>(i), 0x7F};
    const Bytes pdu = ch.protect(0x42, payload, tx_fm);
    ASSERT_EQ(pdu.size(), payload.size() + mac_bytes + freshness_bytes);
    if (i % 7 == 3) continue;  // drop
    const auto res = ch.verify(0x42, pdu, rx_fm);
    ASSERT_EQ(res.status, ivn::SecOcStatus::kOk)
        << "mac=" << mac_bytes << " fresh=" << freshness_bytes << " i=" << i;
    ASSERT_EQ(res.payload, payload);
    // Replay must fail — except in the degenerate (1-byte MAC, implicit
    // freshness) configuration, where the receiver's window scan can match
    // the replayed MAC against a *future* freshness value by collision
    // (32 candidates x 2^-8 ~ 12% per replay). That weakness is exactly why
    // SecOC deployments do not pair minimum MACs with implicit freshness.
    if (mac_bytes >= 2 || freshness_bytes >= 1) {
      ASSERT_NE(ch.verify(0x42, pdu, rx_fm).status, ivn::SecOcStatus::kOk);
    }
  }
  // Tamper must fail (except the vanishing 2^-8 chance with 1-byte MACs is
  // avoided by flipping payload AND checking status != Ok on mac>=2).
  if (mac_bytes >= 2) {
    const Bytes pdu = ch.protect(0x42, Bytes{0x01}, tx_fm);
    Bytes bad = pdu;
    bad[0] ^= 0x80;
    EXPECT_EQ(ch.verify(0x42, bad, rx_fm).status,
              ivn::SecOcStatus::kMacMismatch);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SecOcConfigSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(0u, 1u, 2u, 4u, 8u)));

// ---------------------------------------------------------------- CAN frames

class CanFrameSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(CanFrameSweep, WireBitsBounds) {
  const auto [dlc, extended] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(dlc) * 31 + extended);
  for (int trial = 0; trial < 20; ++trial) {
    ivn::CanFrame f;
    f.extended = extended;
    f.id = static_cast<std::uint32_t>(
        rng.uniform(extended ? 0x20000000ull : 0x800ull));
    f.data = rng.bytes(static_cast<std::size_t>(dlc));
    ASSERT_TRUE(f.valid());
    const std::size_t plain = f.stuff_region_bits().size();
    const std::size_t wire = f.wire_bits();
    // Trailer is 13 bits; stuffing adds at most ceil((plain-1)/4).
    EXPECT_GE(wire, plain + 13);
    EXPECT_LE(wire, plain + 13 + (plain - 1) / 4 + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDlcs, CanFrameSweep,
                         ::testing::Combine(::testing::Range(0, 9),
                                            ::testing::Bool()));

TEST(CanFrameFd, WireBitsMonotoneInPayload) {
  std::size_t last = 0;
  for (std::size_t n : {0u, 8u, 16u, 32u, 64u}) {
    ivn::CanFrame f;
    f.format = ivn::CanFormat::kFd;
    f.id = 0x100;
    f.data = Bytes(n, 0x55);
    ASSERT_TRUE(f.valid());
    const std::size_t bits = f.wire_bits();
    EXPECT_GT(bits, last);
    last = bits;
  }
}

// ---------------------------------------------------------------- ASIL table

class AsilSweep
    : public ::testing::TestWithParam<
          std::tuple<safety::Severity, safety::Exposure, safety::Controllability>> {
};

TEST_P(AsilSweep, MatchesClosedFormAndMonotonicity) {
  using namespace safety;
  const auto [s, e, c] = GetParam();
  const Asil a = determine_asil(s, e, c);
  // Zero classes force QM.
  if (s == Severity::kS0 || e == Exposure::kE0 || c == Controllability::kC0) {
    EXPECT_EQ(a, Asil::kQM);
    return;
  }
  // Closed form: index = S + E + C (1-based), D at 10 down to QM <= 6.
  const int idx = static_cast<int>(s) + static_cast<int>(e) + static_cast<int>(c);
  const Asil expect = idx >= 10  ? Asil::kD
                      : idx == 9 ? Asil::kC
                      : idx == 8 ? Asil::kB
                      : idx == 7 ? Asil::kA
                                 : Asil::kQM;
  EXPECT_EQ(a, expect);
  // Monotonicity: increasing any factor never lowers the ASIL.
  if (s != Severity::kS3) {
    const Asil up = determine_asil(static_cast<Severity>(static_cast<int>(s) + 1), e, c);
    EXPECT_GE(static_cast<int>(up), static_cast<int>(a));
  }
  if (e != Exposure::kE4) {
    const Asil up = determine_asil(s, static_cast<Exposure>(static_cast<int>(e) + 1), c);
    EXPECT_GE(static_cast<int>(up), static_cast<int>(a));
  }
  if (c != Controllability::kC3) {
    const Asil up =
        determine_asil(s, e, static_cast<Controllability>(static_cast<int>(c) + 1));
    EXPECT_GE(static_cast<int>(up), static_cast<int>(a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    FullTable, AsilSweep,
    ::testing::Combine(
        ::testing::Values(safety::Severity::kS0, safety::Severity::kS1,
                          safety::Severity::kS2, safety::Severity::kS3),
        ::testing::Values(safety::Exposure::kE0, safety::Exposure::kE1,
                          safety::Exposure::kE2, safety::Exposure::kE3,
                          safety::Exposure::kE4),
        ::testing::Values(safety::Controllability::kC0,
                          safety::Controllability::kC1,
                          safety::Controllability::kC2,
                          safety::Controllability::kC3)));

// ---------------------------------------------------------------- crypto

class CipherLengthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CipherLengthSweep, CtrCbcGcmRoundTrips) {
  const std::size_t len = GetParam();
  util::Rng rng(len * 7 + 1);
  const Bytes key = rng.bytes(16);
  const crypto::Aes aes(key);
  const Bytes plain = rng.bytes(len);

  crypto::Block iv{};
  std::copy_n(rng.bytes(16).begin(), 16, iv.begin());
  EXPECT_EQ(crypto::aes_ctr(aes, iv, crypto::aes_ctr(aes, iv, plain)), plain);
  EXPECT_EQ(crypto::aes_cbc_decrypt(aes, iv, crypto::aes_cbc_encrypt(aes, iv, plain)),
            plain);
  const Bytes nonce = rng.bytes(12);
  const auto sealed = crypto::aes_gcm_encrypt(aes, nonce, {}, plain);
  const auto opened = crypto::aes_gcm_decrypt(
      aes, nonce, {}, sealed.ciphertext, util::BytesView(sealed.tag.data(), 16));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plain);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CipherLengthSweep,
                         ::testing::Values(0u, 1u, 15u, 16u, 17u, 31u, 32u,
                                           63u, 64u, 100u, 255u, 1000u));

class CmacTruncationSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmacTruncationSweep, TruncatedTagVerifies) {
  const std::size_t tag_len = GetParam();
  const Bytes key(16, 0x2B);
  const crypto::Cmac cmac(key);
  util::Rng rng(tag_len);
  for (int i = 0; i < 10; ++i) {
    const Bytes msg = rng.bytes(rng.uniform(100));
    const Bytes tag = cmac.tag_truncated(msg, tag_len);
    EXPECT_EQ(tag.size(), tag_len);
    EXPECT_TRUE(cmac.verify(msg, tag));
    // Truncated tag is a prefix of the full tag.
    const crypto::Block full = cmac.tag(msg);
    EXPECT_TRUE(std::equal(tag.begin(), tag.end(), full.begin()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllLengths, CmacTruncationSweep,
                         ::testing::Range<std::size_t>(1, 17));

// ------------------------------------------------------ covering arrays

class CoveringArraySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoveringArraySweep, AlwaysCompleteAndSmallerThanExhaustive) {
  const auto [params, cardinality] = GetParam();
  core::ConfigSpace space;
  for (int i = 0; i < params; ++i) {
    space.add({"p" + std::to_string(i), static_cast<std::size_t>(cardinality),
               false});
  }
  const auto rows = space.pairwise_array(static_cast<std::uint64_t>(
      params * 100 + cardinality));
  EXPECT_TRUE(space.covers_all_pairs(rows));
  // Lower bound: at least cardinality^2 rows needed for any 2 params.
  EXPECT_GE(rows.size(), static_cast<std::size_t>(cardinality * cardinality));
  if (params > 2) {
    EXPECT_LT(rows.size(), space.exhaustive_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CoveringArraySweep,
                         ::testing::Combine(::testing::Values(3, 5, 8),
                                            ::testing::Values(2, 3, 4)));

}  // namespace
}  // namespace aseck
