// Tests for the side-channel models: CPA key recovery, countermeasures,
// TVLA leakage assessment, and the timing attack.

#include <gtest/gtest.h>

#include "sidechannel/power_model.hpp"
#include "sidechannel/timing.hpp"

namespace aseck::sidechannel {
namespace {

crypto::Block test_key() {
  crypto::Block k;
  for (std::size_t i = 0; i < 16; ++i) k[i] = static_cast<std::uint8_t>(0x11 * i + 3);
  return k;
}

TEST(Cpa, RecoversKeyFromLowNoiseTraces) {
  LeakyAesDevice dev(test_key(), LeakageConfig{0.5, Countermeasure::kNone}, 1);
  util::Rng rng(2);
  std::vector<Trace> traces;
  for (int i = 0; i < 300; ++i) traces.push_back(dev.capture(rng));
  const CpaResult r = cpa_attack(traces);
  EXPECT_EQ(r.correct_bytes(test_key()), 16);
  EXPECT_GT(r.best_correlation[0], 0.5);
}

TEST(Cpa, MoreNoiseNeedsMoreTraces) {
  util::Rng rng(3);
  LeakyAesDevice quiet(test_key(), LeakageConfig{0.5, Countermeasure::kNone}, 4);
  LeakyAesDevice noisy(test_key(), LeakageConfig{4.0, Countermeasure::kNone}, 5);
  const std::vector<std::size_t> schedule{50, 100, 200, 400, 800, 1600, 3200};
  const std::size_t quiet_n = cpa_traces_needed(quiet, rng, schedule);
  const std::size_t noisy_n = cpa_traces_needed(noisy, rng, schedule);
  ASSERT_GT(quiet_n, 0u);
  ASSERT_GT(noisy_n, 0u);
  EXPECT_LT(quiet_n, noisy_n);
}

TEST(Cpa, MaskingDefeatsFirstOrderAttack) {
  LeakyAesDevice dev(test_key(), LeakageConfig{0.5, Countermeasure::kMasking}, 6);
  util::Rng rng(7);
  std::vector<Trace> traces;
  for (int i = 0; i < 2000; ++i) traces.push_back(dev.capture(rng));
  const CpaResult r = cpa_attack(traces);
  // With fresh masks, recovering more than a couple of bytes by luck is
  // essentially impossible.
  EXPECT_LT(r.correct_bytes(test_key()), 4);
}

TEST(Cpa, ShufflingRaisesTraceCount) {
  util::Rng rng(8);
  LeakyAesDevice plain(test_key(), LeakageConfig{0.5, Countermeasure::kNone}, 9);
  LeakyAesDevice shuffled(test_key(),
                          LeakageConfig{0.5, Countermeasure::kShuffling}, 10);
  const std::vector<std::size_t> schedule{100, 400, 1600, 6400};
  const std::size_t plain_n = cpa_traces_needed(plain, rng, schedule);
  const std::size_t shuf_n = cpa_traces_needed(shuffled, rng, schedule);
  ASSERT_GT(plain_n, 0u);
  // Shuffling pushes the requirement beyond plain's (often beyond schedule).
  EXPECT_TRUE(shuf_n == 0 || shuf_n > plain_n);
}

TEST(Tvla, DetectsLeakageOnUnprotectedDevice) {
  LeakyAesDevice dev(test_key(), LeakageConfig{1.0, Countermeasure::kNone}, 11);
  util::Rng rng(12);
  EXPECT_GT(tvla_max_t(dev, rng, 800), 4.5);
}

TEST(Tvla, MaskedDeviceBelowThreshold) {
  LeakyAesDevice dev(test_key(), LeakageConfig{1.0, Countermeasure::kMasking}, 13);
  util::Rng rng(14);
  EXPECT_LT(tvla_max_t(dev, rng, 800), 6.0);  // no systematic first-order leak
}

TEST(Trace, ChosenPlaintextDeterministicShape) {
  LeakyAesDevice dev(test_key(), LeakageConfig{0.0, Countermeasure::kNone}, 15);
  std::array<std::uint8_t, 16> pt{};
  const Trace t = dev.capture_chosen(pt);
  ASSERT_EQ(t.samples.size(), 16u);
  // Noise-free samples are exact Hamming weights of sbox(key[i]).
  for (std::size_t i = 0; i < 16; ++i) {
    const int hw = util::hamming_weight(crypto::aes_sbox(test_key()[i]));
    EXPECT_DOUBLE_EQ(t.samples[i], static_cast<double>(hw));
  }
}

TEST(Timing, AttackRecoversSecretFromLeakyVerifier) {
  const util::Bytes secret{0x4a, 0x90, 0x17, 0x3c};
  TimingLeakyVerifier dev(secret, /*per_byte_ns=*/1000.0, /*jitter_ns=*/50.0,
                          /*constant_time=*/false);
  const util::Bytes recovered = timing_attack(dev, secret.size(), 5);
  EXPECT_EQ(recovered, secret);
}

TEST(Timing, ConstantTimeDefeatsAttack) {
  const util::Bytes secret{0x4a, 0x90, 0x17, 0x3c};
  TimingLeakyVerifier dev(secret, 1000.0, 50.0, /*constant_time=*/true);
  const util::Bytes recovered = timing_attack(dev, secret.size(), 5);
  EXPECT_NE(recovered, secret);
}

TEST(Timing, HighJitterSlowsAttack) {
  const util::Bytes secret{0x4a, 0x90};
  // With noise >> signal and few samples, recovery usually fails.
  TimingLeakyVerifier dev(secret, 10.0, 10000.0, false);
  const util::Bytes recovered = timing_attack(dev, secret.size(), 3);
  // (Probabilistic, but with 2 bytes the chance of luck is ~2^-16.)
  EXPECT_NE(recovered, secret);
}

TEST(Timing, AcceptsCorrectCode) {
  const util::Bytes secret{1, 2, 3};
  TimingLeakyVerifier dev(secret, 100.0, 0.0, false);
  EXPECT_TRUE(dev.try_code(secret).accepted);
  EXPECT_FALSE(dev.try_code(util::Bytes{1, 2, 4}).accepted);
  EXPECT_FALSE(dev.try_code(util::Bytes{1, 2}).accepted);
  EXPECT_EQ(dev.attempts(), 3u);
}

}  // namespace
}  // namespace aseck::sidechannel
