// Measured boot chain: staged ROM -> SHE boot-MAC -> signed app slot,
// the CryptoService measurement gate, attestation evidence (frozen wire
// vector, forgery/truncation rejection), BootGuard escalation of a hung
// stage, and the thread-safety of a CryptoService shared with VerifyPool
// producers (the tsan job runs this binary).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "crypto/service.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_pool.hpp"
#include "ecu/boot.hpp"
#include "ecu/ecu.hpp"
#include "safety/bootguard.hpp"
#include "safety/supervisor.hpp"
#include "sim/scheduler.hpp"

namespace aseck::ecu {
namespace {

using crypto::Block;
using crypto::CryptoService;
using crypto::KeyHandle;
using crypto::KeyPolicy;
using crypto::ServiceStatus;
using util::Bytes;
using util::SimTime;

Block key_of(std::uint8_t fill) {
  Block k;
  k.fill(fill);
  return k;
}

SheKeyFlags mac_flags() {
  SheKeyFlags f;
  f.key_usage_mac = true;
  return f;
}

/// A fully-provisioned single ECU: SHE boot-MAC over the bootloader, one
/// signed app image, anchor + signature in the kvstore, sealed service with
/// an attestation key and one boot-protected SecOC-style MAC key.
struct BootBench {
  She she{Bytes(15, 0xA5), 42};
  Flash flash;
  CryptoService svc{"ecu-crypto"};
  KvStore kv;
  crypto::Drbg rng{7};
  crypto::EcdsaPrivateKey oem = crypto::EcdsaPrivateKey::generate(rng);
  Bytes bootloader = Bytes(256, 0x5A);
  FirmwareImage app{"app", 1, Bytes(2 * Flash::kPageSize, 0x01)};
  crypto::PartitionId part = 0;
  KeyHandle attest_key{};
  KeyHandle secoc_key{};

  explicit BootBench(bool sign_app = true) {
    she.provision_key(SheSlot::kBootMacKey, key_of(0xB0), mac_flags());
    EXPECT_EQ(she.autonomous_bootstrap(bootloader), SheError::kNoError);
    flash.provision(app);
    kv.mount();
    KvTransaction txn;
    txn.put(kKvAppAnchorKey, oem.public_key().to_bytes());
    if (sign_app) {
      txn.put(boot_sig_key(app.digest()),
              oem.sign_digest(app.digest()).to_bytes());
    }
    EXPECT_TRUE(kv.commit(txn));
    part = svc.register_partition("boot");
    KeyPolicy sign;
    sign.usage = crypto::kUsageSign;
    attest_key = svc.generate_ecdsa(part, rng, sign);
    KeyPolicy protected_mac;
    protected_mac.usage = crypto::kUsageMac;
    protected_mac.boot_protected = true;
    secoc_key = svc.import_mac(part, key_of(0x51), protected_mac);
    svc.seal();
  }

  BootChainConfig config() const {
    BootChainConfig cfg;
    cfg.bootloader = bootloader;
    cfg.rom_anchor = crypto::sha256(bootloader);
    cfg.recovery_image = FirmwareImage{"limp", 1, Bytes(64, 0xEE)};
    return cfg;
  }

  BootChain chain() {
    BootChain c(she, flash, svc, &kv, config());
    c.set_attestation_key(part, attest_key);
    return c;
  }

  crypto::EcdsaPublicKey attest_pub() const {
    crypto::EcdsaPublicKey pub;
    EXPECT_EQ(svc.export_public(attest_key, &pub), ServiceStatus::kOk);
    return pub;
  }
};

TEST(BootChain, NormalBootUnlocksBootProtectedKeys) {
  BootBench b;
  BootChain chain = b.chain();
  const BootChain::Report rep = chain.run();

  EXPECT_EQ(rep.mode, BootMode::kNormal);
  EXPECT_TRUE(rep.measured_ok);
  EXPECT_TRUE(rep.keys_unlocked);
  EXPECT_FALSE(rep.hung);
  EXPECT_EQ(rep.boot_count, 1u);
  ASSERT_EQ(rep.stages.size(), 3u);
  for (const auto& s : rep.stages) EXPECT_TRUE(s.passed);
  EXPECT_GT(rep.boot_us, 0.0);
  EXPECT_TRUE(rep.flash.bootable);
  EXPECT_TRUE(rep.kv.mounted);

  EXPECT_EQ(b.svc.state(), CryptoService::State::kOperational);
  Block tag;
  EXPECT_EQ(b.svc.mac(b.part, b.secoc_key, util::from_string("frame"), &tag),
            ServiceStatus::kOk);
}

TEST(BootChain, RunIsDeterministic) {
  BootBench a, b;
  const BootChain::Report ra = a.chain().run();
  const BootChain::Report rb = b.chain().run();
  EXPECT_EQ(ra.boot_us, rb.boot_us);
  EXPECT_EQ(ra.mode, rb.mode);
  EXPECT_EQ(ra.flash.scan_us, rb.flash.scan_us);
  EXPECT_EQ(ra.kv.scan_us, rb.kv.scan_us);
}

// Satellite regression: SHE must reject a zero-length bootloader loudly
// instead of happily CMACing nothing (a blank boot flash would "verify").
TEST(She, EmptyBootloaderIsRejectedLoudly) {
  She she(Bytes(15, 0xA5), 1);
  she.provision_key(SheSlot::kBootMacKey, key_of(0xB0), mac_flags());
  EXPECT_EQ(she.autonomous_bootstrap(Bytes{}), SheError::kSequenceError);

  Bytes fw(128, 0x11);
  ASSERT_EQ(she.autonomous_bootstrap(fw), SheError::kNoError);
  EXPECT_FALSE(she.secure_boot(Bytes{}));
  EXPECT_FALSE(she.boot_ok());
  EXPECT_EQ(she.last_boot_error(), SheError::kSequenceError);
  // A proper boot afterwards still works and clears the error.
  EXPECT_TRUE(she.secure_boot(fw));
  EXPECT_EQ(she.last_boot_error(), SheError::kNoError);
}

TEST(BootChain, BootMacMismatchContinuesButKeysStayLocked) {
  BootBench b;
  // Re-bootstrap the BOOT_MAC over a different image: the chain's ROM stage
  // still passes (digest anchor matches) but SHE's MAC check fails.
  ASSERT_EQ(b.she.autonomous_bootstrap(Bytes(256, 0x77)), SheError::kNoError);
  BootChain chain = b.chain();
  const BootChain::Report rep = chain.run();

  // SHE semantics: the MAC mismatch does NOT halt boot...
  EXPECT_EQ(rep.mode, BootMode::kNormal);
  EXPECT_FALSE(rep.hung);
  // ...but the measurement verdict fails and boot-protected keys stay dark.
  EXPECT_FALSE(rep.measured_ok);
  EXPECT_FALSE(rep.keys_unlocked);
  EXPECT_EQ(b.svc.state(), CryptoService::State::kFailedBoot);
  Block tag;
  EXPECT_EQ(b.svc.mac(b.part, b.secoc_key, util::from_string("frame"), &tag),
            ServiceStatus::kBootLocked);

  // Attestation still works (the attestation key is not boot-protected —
  // reporting the failed measurement is the point) and verifies.
  const Bytes nonce = util::from_string("challenge-1");
  const auto ev = chain.attest(nonce);
  ASSERT_TRUE(ev.has_value());
  EXPECT_FALSE(ev->measured_ok);
  EXPECT_TRUE(verify_evidence(*ev, b.attest_pub(), nonce));
}

TEST(BootChain, UnsignedActiveImageFallsBackToSignedSlot) {
  BootBench b;
  // Stage and activate a v2 image that was never signed into the kvstore.
  const FirmwareImage v2{"app", 2, Bytes(Flash::kPageSize, 0x02)};
  ASSERT_TRUE(b.flash.stage(v2));
  ASSERT_TRUE(b.flash.activate());
  BootChain chain = b.chain();
  const BootChain::Report rep = chain.run();

  EXPECT_EQ(rep.mode, BootMode::kFallback);
  EXPECT_TRUE(rep.fallback_used);
  EXPECT_TRUE(rep.measured_ok);  // the slot we ended up in is fully verified
  EXPECT_TRUE(rep.keys_unlocked);
  ASSERT_NE(b.flash.active(), nullptr);
  EXPECT_EQ(b.flash.active()->version, 1u);
}

TEST(BootChain, NoVerifiableImageLimpsHomeInRecovery) {
  BootBench b(/*sign_app=*/false);
  BootChain chain = b.chain();
  const BootChain::Report rep = chain.run();

  // Never bricked: no verifiable slot still yields a bootable mode.
  EXPECT_EQ(rep.mode, BootMode::kRecovery);
  EXPECT_TRUE(rep.recovery_used);
  EXPECT_FALSE(rep.measured_ok);
  EXPECT_FALSE(rep.keys_unlocked);
  EXPECT_EQ(b.svc.state(), CryptoService::State::kFailedBoot);
  // Recovery mode is attestable too — the fleet learns about the limp-home.
  const Bytes nonce = util::from_string("challenge-2");
  const auto ev = chain.attest(nonce);
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->mode, static_cast<std::uint8_t>(BootMode::kRecovery));
  EXPECT_TRUE(verify_evidence(*ev, b.attest_pub(), nonce));
}

// Frozen wire vector: the exact byte layout of AttestationEvidence is a
// fleet-facing contract (verifiers parse it), so pin it to a hand-computed
// hex string and require the strict parse to round-trip byte-identically.
TEST(AttestationEvidence, FrozenWireVectorRoundTrips) {
  AttestationEvidence ev;
  ev.uid = {0xAA, 0xBB};
  ev.boot_count = 3;
  ev.mode = static_cast<std::uint8_t>(BootMode::kNormal);
  ev.measured_ok = true;
  ev.nonce = {0x01, 0x02};
  Measurement m;
  m.stage = BootStage::kApp;
  m.passed = true;
  m.digest.fill(0x22);
  ev.measurements.push_back(m);
  ev.pcr.fill(0x11);
  const auto sig = crypto::EcdsaSignature::from_bytes(Bytes(64, 0x33));
  ASSERT_TRUE(sig.has_value());
  ev.signature = *sig;

  std::string expect;
  expect += "41544556";            // magic "ATEV"
  expect += "01";                  // version
  expect += "02" "aabb";           // uid_len | uid
  expect += "00000003";            // boot_count be32
  expect += "01";                  // mode = kNormal
  expect += "01";                  // measured_ok
  expect += "0002" "0102";         // nonce_len be16 | nonce
  expect += "01";                  // n_measurements
  expect += "02" "01";             // stage = kApp | passed
  expect += std::string(64, '2');  // measurement digest, 32 x 0x22
  expect += std::string(64, '1');  // pcr, 32 x 0x11
  expect += std::string(128, '3'); // signature r||s, 64 x 0x33
  EXPECT_EQ(util::to_hex(ev.serialize()), expect);

  const auto back = AttestationEvidence::parse(util::from_hex(expect));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->uid, ev.uid);
  EXPECT_EQ(back->boot_count, ev.boot_count);
  EXPECT_EQ(back->mode, ev.mode);
  EXPECT_EQ(back->measured_ok, ev.measured_ok);
  EXPECT_EQ(back->nonce, ev.nonce);
  EXPECT_EQ(back->measurements, ev.measurements);
  EXPECT_EQ(back->pcr, ev.pcr);
  EXPECT_EQ(back->signature, ev.signature);
  EXPECT_EQ(util::to_hex(back->serialize()), expect);
}

TEST(AttestationEvidence, ForgedAndTruncatedBlobsAreRejected) {
  BootBench b;
  BootChain chain = b.chain();
  chain.run();
  const Bytes nonce = util::from_string("fresh-nonce");
  const auto ev = chain.attest(nonce);
  ASSERT_TRUE(ev.has_value());
  const crypto::EcdsaPublicKey pub = b.attest_pub();
  ASSERT_TRUE(verify_evidence(*ev, pub, nonce));

  // Stale/wrong nonce.
  EXPECT_FALSE(verify_evidence(*ev, pub, util::from_string("old-nonce")));
  // Lying about the verdict breaks log consistency.
  AttestationEvidence forged = *ev;
  forged.measured_ok = !forged.measured_ok;
  EXPECT_FALSE(verify_evidence(forged, pub, nonce));
  // Flipping one measurement verdict breaks the PCR replay.
  forged = *ev;
  ASSERT_FALSE(forged.measurements.empty());
  forged.measurements[0].passed = !forged.measurements[0].passed;
  EXPECT_FALSE(verify_evidence(forged, pub, nonce));
  // A doctored PCR fails replay.
  forged = *ev;
  forged.pcr[0] ^= 0x01;
  EXPECT_FALSE(verify_evidence(forged, pub, nonce));
  // Dropping the log entirely cannot claim measured_ok.
  forged = *ev;
  forged.measurements.clear();
  EXPECT_FALSE(verify_evidence(forged, pub, nonce));
  // Signature bit-flip fails ECDSA.
  const Bytes blob = ev->serialize();
  Bytes bad_sig = blob;
  bad_sig[bad_sig.size() - 1] ^= 0x01;
  const auto parsed = AttestationEvidence::parse(bad_sig);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(verify_evidence(*parsed, pub, nonce));

  // Every strict prefix fails to parse, as does one trailing byte.
  for (std::size_t n = 0; n < blob.size(); ++n) {
    EXPECT_FALSE(
        AttestationEvidence::parse(util::BytesView(blob.data(), n)).has_value())
        << "prefix length " << n;
  }
  Bytes extended = blob;
  extended.push_back(0x00);
  EXPECT_FALSE(AttestationEvidence::parse(extended).has_value());
}

TEST(BootGuard, HungStageEscalatesToSupervisedReboot) {
  sim::Scheduler sched;
  safety::HealthSupervisor sup(sched, "wdgm");
  BootBench b;
  BootChain chain = b.chain();
  int hangs = 1;
  chain.set_stage_hook([&](BootStage, int) {
    if (hangs > 0) {
      --hangs;
      return true;
    }
    return false;
  });

  // First power-on wedges in ROM: no verdict, service stays sealed.
  const BootChain::Report rep = chain.run();
  EXPECT_TRUE(rep.hung);
  EXPECT_EQ(rep.hung_stage, BootStage::kRom);
  EXPECT_FALSE(rep.keys_unlocked);
  EXPECT_EQ(b.svc.state(), CryptoService::State::kSealed);

  safety::BootGuard guard(sched, sup, chain, "boot-chain",
                          SimTime::from_ms(10));
  guard.start();
  sched.run_until(SimTime::from_s(2));

  // The silent heartbeat expired the entity; the reset handler re-ran the
  // chain, which now completes and unlocks the keys.
  EXPECT_GE(guard.reboots(), 1u);
  EXPECT_GE(guard.reboots_recovered(), 1u);
  EXPECT_FALSE(chain.hung());
  EXPECT_TRUE(chain.last().measured_ok);
  EXPECT_EQ(b.svc.state(), CryptoService::State::kOperational);
}

TEST(Ecu, InstalledBootChainGatesOperationalState) {
  sim::Scheduler sched;
  Ecu ecu(sched, "brake", 1);
  ecu.provision(FirmwareImage{"brake-fw", 1, Bytes(1024, 0x10)}, key_of(0x01),
                key_of(0xB0), key_of(0x51));
  const Bytes& code = ecu.flash().active()->code;

  // Provision the chain's trust material through the ECU's own kvstore.
  crypto::Drbg rng(11);
  const auto oem = crypto::EcdsaPrivateKey::generate(rng);
  ecu.kvstore().mount();
  KvTransaction txn;
  txn.put(kKvAppAnchorKey, oem.public_key().to_bytes());
  txn.put(boot_sig_key(ecu.flash().active()->digest()),
          oem.sign_digest(ecu.flash().active()->digest()).to_bytes());
  ASSERT_TRUE(ecu.kvstore().commit(txn));
  ecu.crypto_service().seal();

  BootChainConfig cfg;
  cfg.bootloader = code;
  cfg.rom_anchor = crypto::sha256(code);
  ecu.install_boot_chain(cfg);
  EXPECT_EQ(ecu.boot(), EcuState::kOperational);
  EXPECT_EQ(ecu.crypto_service().state(), CryptoService::State::kOperational);

  // Tamper with the stored boot MAC: the next measured boot degrades.
  ASSERT_EQ(ecu.she().autonomous_bootstrap(Bytes(64, 0x99)),
            SheError::kNoError);
  EXPECT_EQ(ecu.boot(), EcuState::kDegraded);
  EXPECT_EQ(ecu.crypto_service().state(), CryptoService::State::kFailedBoot);
}

// The tsan target: N producer threads sign through ONE shared CryptoService
// and enqueue into VerifyPool's per-producer lanes; flush() then verifies on
// worker threads. Any missing lock in the service shows up here.
TEST(CryptoServiceThreads, SharedServiceFeedsVerifyPoolRaceFree) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 16;

  CryptoService svc("shared-hsm");
  const crypto::PartitionId part = svc.register_partition("app");
  crypto::Drbg rng(3);
  KeyPolicy sign;
  sign.usage = crypto::kUsageSign;
  const KeyHandle key = svc.generate_ecdsa(part, rng, sign);
  crypto::EcdsaPublicKey pub;
  ASSERT_EQ(svc.export_public(key, &pub), ServiceStatus::kOk);
  svc.seal();
  svc.on_measurement(true);

  crypto::VerifyPoolConfig cfg;
  cfg.threads = 2;
  cfg.producers = kProducers;
  crypto::VerifyPool pool(cfg);

  // Preallocate stable storage for the jobs' pointers before any thread runs.
  std::vector<std::vector<crypto::Digest>> digests(kProducers);
  std::vector<std::vector<crypto::EcdsaSignature>> sigs(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    sigs[p].resize(kPerProducer);
    for (std::size_t i = 0; i < kPerProducer; ++i) {
      digests[p].push_back(crypto::sha256(util::from_string(
          "msg-" + std::to_string(p) + "-" + std::to_string(i))));
    }
  }

  std::vector<std::thread> threads;
  for (std::size_t p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(svc.sign_digest(part, key, digests[p][i], &sigs[p][i]),
                  ServiceStatus::kOk);
        crypto::VerifyJob job;
        job.pub = &pub;
        job.digest = digests[p][i];
        job.sig = &sigs[p][i];
        job.tag = p * kPerProducer + i;
        pool.queue().push(p, job);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto outcomes = pool.flush();
  ASSERT_EQ(outcomes.size(), kProducers * kPerProducer);
  for (const auto& o : outcomes) EXPECT_TRUE(o.ok) << "tag " << o.tag;
  EXPECT_EQ(svc.ops(), kProducers * kPerProducer + 1);  // signs + export
}

}  // namespace
}  // namespace aseck::ecu
