// Tests for the deterministic fault-injection engine (sim::FaultPlan) and
// the paired resilience mechanisms: substrate fault ports, CAN bus-off
// auto-recovery, gateway graceful degradation, OTA retry/resume, and the
// shared safety-campaign schema. The acceptance bar is the ordered
// inject -> degrade -> recover chain on one shared TraceBus per substrate.

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "gateway/gateway.hpp"
#include "ivn/can.hpp"
#include "ivn/ethernet.hpp"
#include "ivn/flexray.hpp"
#include "ivn/lin.hpp"
#include "ota/client.hpp"
#include "ota/repository.hpp"
#include "safety/fault.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"
#include "v2x/net.hpp"

namespace aseck {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::SimTime;
using sim::Telemetry;
using util::Bytes;

std::uint64_t seq_of(const Telemetry& t, std::string_view component,
                     std::string_view kind) {
  const sim::TraceEvent* e = t.bus->find_first(component, kind);
  return e ? e->seq : 0;
}

// ---------------------------------------------------------------------------
// Engine core

TEST(FaultPlan, WindowArmsAndClearsPort) {
  Scheduler sched;
  FaultPlan plan(sched, 1);
  sim::FaultPort& port = plan.port("can.x");
  plan.window(SimTime::from_ms(1), SimTime::from_ms(2),
              {"can.x", FaultKind::kFrameDrop, 1.0});
  EXPECT_FALSE(port.active());
  sched.run_until(SimTime::from_ms(1));
  EXPECT_TRUE(port.active());
  EXPECT_TRUE(port.roll_drop());
  sched.run_until(SimTime::from_ms(4));
  EXPECT_FALSE(port.active());
  EXPECT_FALSE(port.roll_drop());
  // Frame-level kinds auto-recover the moment the window clears.
  EXPECT_EQ(plan.injected(), 1u);
  EXPECT_EQ(plan.recovered(), 1u);
  EXPECT_EQ(plan.unrecovered(), 0u);
  ASSERT_EQ(plan.records().size(), 1u);
  EXPECT_EQ(plan.records()[0].recovery_latency(), SimTime::from_ms(2));
}

TEST(FaultPlan, OverlappingDownWindowsNest) {
  Scheduler sched;
  FaultPlan plan(sched, 1);
  sim::FaultPort& port = plan.port("ota.repo");
  plan.window(SimTime::from_ms(1), SimTime::from_ms(3),
              {"ota.repo", FaultKind::kOutage});
  plan.window(SimTime::from_ms(2), SimTime::from_ms(4),
              {"ota.repo", FaultKind::kOutage});
  sched.run_until(SimTime::from_ms(3));  // inside both
  EXPECT_TRUE(port.down());
  sched.run_until(SimTime::from_ms(5));  // first cleared, second still active
  EXPECT_TRUE(port.down());
  sched.run_until(SimTime::from_ms(7));  // both cleared
  EXPECT_FALSE(port.down());
}

TEST(FaultPlan, HandlerSeesBeginAndEnd) {
  Scheduler sched;
  FaultPlan plan(sched, 1);
  std::vector<bool> calls;
  std::string target;
  plan.on("gw.body", FaultKind::kPartition,
          [&](const FaultSpec& spec, bool active) {
            calls.push_back(active);
            target = spec.target;
          });
  plan.window(SimTime::from_ms(1), SimTime::from_ms(2),
              {"gw.body", FaultKind::kPartition});
  sched.run();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_TRUE(calls[0]);
  EXPECT_FALSE(calls[1]);
  EXPECT_EQ(target, "gw.body");
}

TEST(FaultPlan, StatefulFaultNeedsNotifyRecovered) {
  Scheduler sched;
  FaultPlan plan(sched, 1);
  plan.window(SimTime::from_ms(1), SimTime::from_ms(1),
              {"ecu.brake", FaultKind::kCrash});
  sched.run();
  // Window cleared but the component has not reported back yet.
  EXPECT_EQ(plan.injected(), 1u);
  EXPECT_EQ(plan.recovered(), 0u);
  EXPECT_EQ(plan.unrecovered(), 1u);
  // Component observed healthy at t=5ms (scheduler already drained to 2ms;
  // model the reboot completing later by advancing the clock).
  sched.schedule_at(SimTime::from_ms(5),
                    [&] { EXPECT_EQ(plan.notify_recovered("ecu.brake"), 1u); });
  sched.run();
  EXPECT_EQ(plan.unrecovered(), 0u);
  ASSERT_EQ(plan.records().size(), 1u);
  EXPECT_EQ(plan.records()[0].recovery_latency(), SimTime::from_ms(4));
}

TEST(FaultPlan, JsonExportIsSeedDeterministic) {
  const auto run_once = [](std::uint64_t seed) {
    Scheduler sched;
    FaultPlan plan(sched, seed);
    const std::vector<FaultSpec> specs = {
        {"can0", FaultKind::kFrameDrop, 0.5},
        {"ota.repo", FaultKind::kOutage},
        {"gw.body", FaultKind::kPartition},
    };
    plan.random_campaign(SimTime::zero(), SimTime::from_s(2), 20.0,
                         SimTime::from_ms(10), specs);
    sched.run();
    return plan.to_json();
  };
  const std::string a = run_once(42);
  EXPECT_EQ(a, run_once(42));
  EXPECT_NE(a, run_once(43));
}

TEST(FaultPlan, SafetyCampaignSharesRngAndTraces) {
  std::vector<safety::FunctionModel> fns(1);
  fns[0].name = "braking";
  fns[0].components = {"ecu.brake", "sensor.wheel"};
  fns[0].redundancy_groups = {{"ecu.brake", "ecu.brake.backup"}};

  const auto run_once = [&](std::uint64_t seed) {
    Scheduler sched;
    FaultPlan plan(sched, seed);
    return safety::run_fault_campaign(fns, 0.3, 500, plan);
  };
  const safety::FaultCampaignResult a = run_once(7);
  const safety::FaultCampaignResult b = run_once(7);
  EXPECT_EQ(a.trials, 500u);
  EXPECT_GT(a.function_failures.at("braking"), 0u);
  EXPECT_EQ(a.function_failures, b.function_failures);
  EXPECT_NEAR(a.failure_rate("braking"),
              static_cast<double>(a.function_failures.at("braking")) / 500.0,
              1e-12);

  // The campaign lands on the plan's trace timeline.
  Scheduler sched;
  FaultPlan plan(sched, 7);
  safety::run_fault_campaign(fns, 0.3, 10, plan);
  EXPECT_EQ(plan.trace().count("faultplan", "campaign"), 1u);

  // Both overloads report through the same schema.
  const safety::FaultCampaignResult seeded =
      safety::run_fault_campaign(fns, 0.3, 500, std::uint64_t{99});
  EXPECT_EQ(seeded.trials, a.trials);
}

// ---------------------------------------------------------------------------
// CAN: frame faults + bus-off auto-recovery

struct TestCanNode : ivn::CanNode {
  using ivn::CanNode::CanNode;
  void on_frame(const ivn::CanFrame& frame, SimTime) override {
    rx.push_back(frame);
  }
  void on_tx_done(const ivn::CanFrame&, SimTime) override { ++tx_done; }
  void on_bus_off(SimTime) override { ++bus_off_seen; }
  std::vector<ivn::CanFrame> rx;
  int tx_done = 0;
  int bus_off_seen = 0;
};

ivn::CanFrame make_frame(std::uint32_t id, Bytes data = {0x11, 0x22}) {
  ivn::CanFrame f;
  f.id = id;
  f.data = std::move(data);
  return f;
}

TEST(CanFault, DropWindowLosesFramesOnOneTimeline) {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus bus(sched, "can0", 500'000);
  bus.bind_telemetry(t);
  TestCanNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  FaultPlan plan(sched, 5);
  plan.bind_telemetry(t);
  bus.set_fault_port(&plan.port("can0"));

  plan.window(SimTime::from_ms(1), SimTime::from_ms(100),
              {"can0", FaultKind::kFrameDrop, 1.0});
  for (int i = 0; i < 3; ++i) {
    sched.schedule_at(SimTime::from_ms(2 + i),
                      [&] { bus.send(&a, make_frame(0x100)); });
  }
  sched.run();
  EXPECT_TRUE(b.rx.empty());
  EXPECT_EQ(t.metrics->counter_value("can.can0.frames_dropped_fault"), 3u);
  // Causal chain: injection strictly precedes the first dropped frame.
  const std::uint64_t inject = seq_of(t, "faultplan", "inject");
  const std::uint64_t drop = seq_of(t, "can0", "fault_drop");
  ASSERT_NE(inject, 0u);
  ASSERT_NE(drop, 0u);
  EXPECT_LT(inject, drop);
}

TEST(CanFault, DuplicateWindowDeliversTwice) {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus bus(sched, "can0", 500'000);
  bus.bind_telemetry(t);
  TestCanNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  FaultPlan plan(sched, 5);
  bus.set_fault_port(&plan.port("can0"));
  plan.window(SimTime::from_ms(1), SimTime::from_ms(100),
              {"can0", FaultKind::kFrameDuplicate, 1.0});
  sched.schedule_at(SimTime::from_ms(2), [&] { bus.send(&a, make_frame(0x7)); });
  sched.run();
  EXPECT_EQ(b.rx.size(), 2u);
  EXPECT_EQ(a.tx_done, 1);
  EXPECT_EQ(t.metrics->counter_value("can.can0.frames_duplicated"), 1u);
}

TEST(CanFault, BusOffAutoRecoveryOrderedTimeline) {
  // Satellite 3: injected transmission errors drive the sender into bus-off;
  // the auto-recovery timer brings it back after the fault window clears and
  // traffic resumes. The whole chain must appear in order on one TraceBus:
  // inject < bus_off < recover < tx.
  Scheduler sched;
  Telemetry t;
  ivn::CanBus bus(sched, "can0", 500'000);
  bus.bind_telemetry(t);
  bus.set_auto_recovery(SimTime::from_ms(20));
  TestCanNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  FaultPlan plan(sched, 5);
  plan.bind_telemetry(t);
  bus.set_fault_port(&plan.port("can0"));

  // Every TX attempt inside the window suffers a bit error: TEC += 8 per
  // attempt, so the pending frame marches the sender to bus-off (TEC > 255).
  plan.window(SimTime::from_ms(1), SimTime::from_ms(10),
              {"can0", FaultKind::kFrameCorrupt, 1.0});
  sched.schedule_at(SimTime::from_ms(2), [&] { bus.send(&a, make_frame(0x50)); });
  sched.run_until(SimTime::from_ms(15));
  EXPECT_EQ(a.state(), ivn::CanNodeState::kBusOff);
  EXPECT_EQ(a.bus_off_seen, 1);
  EXPECT_TRUE(b.rx.empty());

  // Auto-recovery fires ~20ms after bus-off, well past the window end, and
  // a fresh frame then goes through cleanly.
  sched.schedule_at(SimTime::from_ms(40), [&] {
    EXPECT_EQ(a.state(), ivn::CanNodeState::kErrorActive);
    EXPECT_EQ(a.tec(), 0);
    EXPECT_TRUE(bus.send(&a, make_frame(0x51)));
  });
  sched.run();
  ASSERT_EQ(b.rx.size(), 1u);
  EXPECT_EQ(b.rx[0].id, 0x51u);
  EXPECT_EQ(a.tx_done, 1);

  const std::uint64_t inject = seq_of(t, "faultplan", "inject");
  const std::uint64_t bus_off = seq_of(t, "can0", "bus_off");
  const std::uint64_t recover = seq_of(t, "can0", "recover");
  const std::uint64_t tx = seq_of(t, "can0", "tx");
  ASSERT_NE(inject, 0u);
  ASSERT_NE(bus_off, 0u);
  ASSERT_NE(recover, 0u);
  ASSERT_NE(tx, 0u);
  EXPECT_LT(inject, bus_off);
  EXPECT_LT(bus_off, recover);
  EXPECT_LT(recover, tx);
}

TEST(CanFault, BusDownWindowStallsThenResumes) {
  Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500'000);
  TestCanNode a("a"), b("b");
  bus.attach(&a);
  bus.attach(&b);
  FaultPlan plan(sched, 5);
  bus.set_fault_port(&plan.port("can0"));
  plan.window(SimTime::from_ms(1), SimTime::from_ms(10),
              {"can0", FaultKind::kCrash});
  sched.schedule_at(SimTime::from_ms(2), [&] { bus.send(&a, make_frame(0x9)); });
  sched.run_until(SimTime::from_ms(10));
  EXPECT_TRUE(b.rx.empty());  // nothing transmits while the bus is down
  // Queued frame resumes on the next send after the window clears.
  sched.schedule_at(SimTime::from_ms(20),
                    [&] { bus.send(&a, make_frame(0xA)); });
  sched.run();
  plan.notify_recovered("can0");
  EXPECT_EQ(b.rx.size(), 2u);
  EXPECT_EQ(plan.unrecovered(), 0u);
}

// ---------------------------------------------------------------------------
// LIN / FlexRay / Ethernet

struct TestLinSlave : ivn::LinSlave {
  using ivn::LinSlave::LinSlave;
  std::optional<Bytes> respond(std::uint8_t id) override {
    return id == 0x10 ? std::optional<Bytes>(Bytes{0xAA, 0xBB}) : std::nullopt;
  }
  void on_frame(const ivn::LinFrame&, SimTime) override { ++rx; }
  int rx = 0;
};

TEST(LinFault, DropWindowLosesResponses) {
  Scheduler sched;
  Telemetry t;
  ivn::LinMaster master(sched, "lin0");
  master.bind_telemetry(t);
  TestLinSlave slave("seat");
  master.attach(&slave);
  master.set_schedule({{0x10, SimTime::from_ms(10)}});
  FaultPlan plan(sched, 3);
  plan.bind_telemetry(t);
  master.set_fault_port(&plan.port("lin0"));
  plan.window(SimTime::from_ms(5), SimTime::from_ms(40),
              {"lin0", FaultKind::kFrameDrop, 1.0});
  master.start();
  sched.run_until(SimTime::from_ms(60));
  master.stop();
  // Slot 0 (t=0) completes before the window; slots at 10..40ms are eaten.
  EXPECT_GE(master.frames_ok(), 1u);
  EXPECT_GE(master.dropped_fault(), 3u);
  EXPECT_LT(seq_of(t, "faultplan", "inject"), seq_of(t, "lin0", "fault_drop"));
}

TEST(LinFault, CorruptWindowFeedsChecksumPath) {
  Scheduler sched;
  ivn::LinMaster master(sched, "lin0");
  TestLinSlave slave("seat");
  master.attach(&slave);
  master.set_schedule({{0x10, SimTime::from_ms(10)}});
  FaultPlan plan(sched, 3);
  master.set_fault_port(&plan.port("lin0"));
  plan.window(SimTime::from_ms(5), SimTime::from_ms(40),
              {"lin0", FaultKind::kFrameCorrupt, 1.0});
  master.start();
  sched.run_until(SimTime::from_ms(60));
  master.stop();
  EXPECT_GE(master.checksum_errors(), 3u);
  EXPECT_EQ(master.dropped_fault(), 0u);
}

struct TestFlexNode : ivn::FlexRayNode {
  using ivn::FlexRayNode::FlexRayNode;
  std::optional<Bytes> static_payload(std::uint16_t, std::uint8_t) override {
    return Bytes{0x01, 0x02};
  }
  void on_frame(const ivn::FlexRayFrame&, SimTime) override { ++rx; }
  int rx = 0;
};

TEST(FlexRayFault, DropWindowBurnsSlots) {
  Scheduler sched;
  Telemetry t;
  ivn::FlexRayBus bus(sched, "fr0");
  bus.bind_telemetry(t);
  TestFlexNode owner("steer"), listener("listener");
  bus.assign_static_slot(1, &owner);
  bus.attach_listener(&listener);
  FaultPlan plan(sched, 3);
  plan.bind_telemetry(t);
  bus.set_fault_port(&plan.port("fr0"));
  const SimTime cycle = bus.config().cycle_length();
  plan.window(cycle * 2, cycle * 3, {"fr0", FaultKind::kFrameDrop, 1.0});
  bus.start();
  sched.run_until(cycle * 8);
  bus.stop();
  // Cycles 0-1 deliver; the faulted cycles consume the slot without a frame.
  EXPECT_GE(listener.rx, 2);
  EXPECT_GE(bus.dropped_fault(), 2u);
  EXPECT_LT(static_cast<std::uint64_t>(listener.rx) + bus.dropped_fault() - 1,
            static_cast<std::uint64_t>(bus.static_frames() + bus.dropped_fault()));
  EXPECT_LT(seq_of(t, "faultplan", "inject"), seq_of(t, "fr0", "fault_drop"));
}

struct TestEthEndpoint : ivn::EthernetEndpoint {
  using ivn::EthernetEndpoint::EthernetEndpoint;
  void on_frame(const ivn::EthernetFrame& frame, SimTime) override {
    rx.push_back(frame);
  }
  std::vector<ivn::EthernetFrame> rx;
};

TEST(EthernetFault, DropCorruptAndDuplicate) {
  Scheduler sched;
  Telemetry t;
  ivn::EthernetSwitch sw(sched, "sw0");
  TestEthEndpoint a("a", ivn::mac_from_u64(1)), b("b", ivn::mac_from_u64(2));
  const std::size_t pa = sw.connect(&a);
  const std::size_t pb = sw.connect(&b);
  sw.bind_telemetry(t);
  FaultPlan plan(sched, 9);
  plan.bind_telemetry(t);
  sw.set_fault_port(&plan.port("sw0"));

  const auto frame_to_b = [&] {
    ivn::EthernetFrame f;
    f.src = a.mac();
    f.dst = b.mac();
    f.payload = Bytes{0x10, 0x20};
    return f;
  };
  // Teach the FDB both MACs before any faults.
  {
    ivn::EthernetFrame f;
    f.src = b.mac();
    f.dst = ivn::kBroadcastMac;
    sw.send(pb, f);
    sw.send(pa, frame_to_b());
  }
  sched.run();
  ASSERT_EQ(b.rx.size(), 1u);
  b.rx.clear();

  // Drop window: discarded at ingress, send() reports it.
  const std::uint64_t drop_id = plan.window(
      SimTime::from_ms(10), SimTime::from_ms(5), {"sw0", FaultKind::kFrameDrop, 1.0});
  sched.schedule_at(SimTime::from_ms(12),
                    [&] { EXPECT_FALSE(sw.send(pa, frame_to_b())); });
  sched.run();
  EXPECT_TRUE(b.rx.empty());
  EXPECT_EQ(sw.dropped_fault(), 1u);
  (void)drop_id;

  // Corrupt window: delivered, payload mangled.
  plan.window(SimTime::from_ms(20), SimTime::from_ms(5),
              {"sw0", FaultKind::kFrameCorrupt, 1.0});
  sched.schedule_at(SimTime::from_ms(22),
                    [&] { EXPECT_TRUE(sw.send(pa, frame_to_b())); });
  sched.run();
  ASSERT_EQ(b.rx.size(), 1u);
  EXPECT_NE(b.rx[0].payload[0], 0x10);
  EXPECT_EQ(sw.corrupted_fault(), 1u);
  b.rx.clear();

  // Duplicate window: forwarded twice.
  plan.window(SimTime::from_ms(30), SimTime::from_ms(5),
              {"sw0", FaultKind::kFrameDuplicate, 1.0});
  sched.schedule_at(SimTime::from_ms(32),
                    [&] { EXPECT_TRUE(sw.send(pa, frame_to_b())); });
  sched.run();
  EXPECT_EQ(b.rx.size(), 2u);
  EXPECT_EQ(sw.duplicated_fault(), 1u);
  EXPECT_EQ(plan.unrecovered(), 0u);  // frame kinds all auto-recover
}

TEST(EthernetFault, DelayWindowStretchesLatency) {
  Scheduler sched;
  ivn::EthernetSwitch sw(sched, "sw0");
  TestEthEndpoint a("a", ivn::mac_from_u64(1)), b("b", ivn::mac_from_u64(2));
  const std::size_t pa = sw.connect(&a);
  sw.connect(&b);
  FaultPlan plan(sched, 9);
  sw.set_fault_port(&plan.port("sw0"));
  FaultSpec spec{"sw0", FaultKind::kFrameDelay, 1.0};
  spec.delay = SimTime::from_ms(7);
  plan.window(SimTime::from_ms(1), SimTime::from_ms(100), spec);

  ivn::EthernetFrame f;
  f.src = a.mac();
  f.dst = ivn::kBroadcastMac;
  SimTime delivered_at = SimTime::zero();
  sched.schedule_at(SimTime::from_ms(2), [&] { sw.send(pa, f); });
  sched.run();
  ASSERT_EQ(b.rx.size(), 1u);
  delivered_at = sched.now();
  EXPECT_GE(delivered_at, SimTime::from_ms(9));  // 2ms send + 7ms injected
}

// ---------------------------------------------------------------------------
// V2X radio-loss burst

struct StubRadio : v2x::V2xRadio {
  StubRadio(std::string n, v2x::Position p)
      : v2x::V2xRadio(std::move(n)), pos(p) {}
  v2x::Position position() const override { return pos; }
  void on_spdu(const v2x::Spdu&, SimTime) override { ++rx; }
  v2x::Position pos;
  int rx = 0;
};

TEST(V2xFault, RadioLossBurstBlacksOutReceivers) {
  Scheduler sched;
  v2x::V2xMedium medium(sched, 300.0, 0.0, 1);
  StubRadio tx("tx", {0, 0}), rx("rx", {10, 0}), sniffer("mon", {50, 0});
  medium.attach(&tx);
  medium.attach(&rx);
  medium.attach_monitor(&sniffer);
  FaultPlan plan(sched, 11);
  medium.set_fault_port(&plan.port("v2x"));
  plan.window(SimTime::from_ms(5), SimTime::from_ms(10),
              {"v2x", FaultKind::kRadioLoss});

  sched.schedule_at(SimTime::from_ms(7),
                    [&] { medium.broadcast(&tx, v2x::Spdu{}); });
  sched.schedule_at(SimTime::from_ms(30),
                    [&] { medium.broadcast(&tx, v2x::Spdu{}); });
  sched.run();
  EXPECT_EQ(rx.rx, 1);  // only the post-burst broadcast arrives
  EXPECT_EQ(sniffer.rx, 2);  // monitors are unaffected by the fault plane
  EXPECT_EQ(medium.lost_fault(), 1u);
  EXPECT_EQ(medium.delivered(), 1u);
  EXPECT_EQ(plan.unrecovered(), 0u);  // radio-loss bursts auto-recover
}

// ---------------------------------------------------------------------------
// Gateway graceful degradation

struct GatewayRig {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus body{sched, "can.body", 500'000};
  ivn::CanBus chassis{sched, "can.chassis", 500'000};
  gateway::SecurityGateway gw{sched, "gw"};
  TestCanNode sender{"sender"};
  TestCanNode receiver{"receiver"};

  GatewayRig() {
    body.bind_telemetry(t);
    chassis.bind_telemetry(t);
    gw.bind_telemetry(t);
    gw.add_domain("body", &body);
    gw.add_domain("chassis", &chassis);
    body.attach(&sender);
    chassis.attach(&receiver);
  }
};

TEST(GatewayDegraded, ModeEscalatesAndStepsDown) {
  GatewayRig rig;
  gateway::DegradedModeConfig cfg;
  cfg.window = SimTime::from_ms(10);
  cfg.degrade_threshold = 5;
  cfg.limp_threshold = 15;
  cfg.healthy_windows = 2;
  rig.gw.enable_degraded_mode(cfg);

  rig.sched.schedule_at(SimTime::from_ms(1),
                        [&] { rig.gw.report_domain_fault("body", 6); });
  rig.sched.run_until(SimTime::from_ms(10));
  EXPECT_EQ(rig.gw.mode("body"), gateway::GatewayMode::kDegraded);

  rig.sched.schedule_at(SimTime::from_ms(11),
                        [&] { rig.gw.report_domain_fault("body", 20); });
  rig.sched.run_until(SimTime::from_ms(20));
  EXPECT_EQ(rig.gw.mode("body"), gateway::GatewayMode::kLimpHome);

  // Two calm windows step down one level at a time: limp -> degraded ->
  // normal, never skipping straight to normal.
  rig.sched.run_until(SimTime::from_ms(40));
  EXPECT_EQ(rig.gw.mode("body"), gateway::GatewayMode::kDegraded);
  rig.sched.run_until(SimTime::from_ms(60));
  EXPECT_EQ(rig.gw.mode("body"), gateway::GatewayMode::kNormal);
  EXPECT_EQ(rig.gw.mode("chassis"), gateway::GatewayMode::kNormal);

  const std::uint64_t degraded = seq_of(rig.t, "gw", "mode_degraded");
  const std::uint64_t limp = seq_of(rig.t, "gw", "mode_limp_home");
  const std::uint64_t normal = seq_of(rig.t, "gw", "mode_normal");
  ASSERT_NE(degraded, 0u);
  ASSERT_NE(limp, 0u);
  ASSERT_NE(normal, 0u);
  EXPECT_LT(degraded, limp);
  EXPECT_LT(limp, normal);
}

TEST(GatewayDegraded, ShedsOnlyNonCriticalRoutes) {
  GatewayRig rig;
  rig.gw.add_route(0x100, "body", "chassis", /*safety_critical=*/true);
  rig.gw.add_route(0x200, "body", "chassis", /*safety_critical=*/false);
  gateway::DegradedModeConfig cfg;
  cfg.window = SimTime::from_ms(10);
  cfg.degrade_threshold = 5;
  cfg.limp_threshold = 1000;
  rig.gw.enable_degraded_mode(cfg);
  rig.sched.schedule_at(SimTime::from_ms(1),
                        [&] { rig.gw.report_domain_fault("body", 6); });
  rig.sched.run_until(SimTime::from_ms(10));
  ASSERT_EQ(rig.gw.mode("body"), gateway::GatewayMode::kDegraded);

  rig.sched.schedule_at(SimTime::from_ms(12), [&] {
    rig.body.send(&rig.sender, make_frame(0x100));
    rig.body.send(&rig.sender, make_frame(0x200));
  });
  // Keep feeding faults so the mode holds through the forwarding delay.
  rig.sched.schedule_at(SimTime::from_ms(18),
                        [&] { rig.gw.report_domain_fault("body", 6); });
  rig.sched.run_until(SimTime::from_ms(25));

  ASSERT_EQ(rig.receiver.rx.size(), 1u);  // critical route survives
  EXPECT_EQ(rig.receiver.rx[0].id, 0x100u);
  const gateway::GatewayStats s = rig.gw.stats();
  EXPECT_EQ(s.dropped_degraded, 1u);  // non-critical route shed
  EXPECT_EQ(s.forwarded, 1u);
}

TEST(GatewayDegraded, LinkPartitionViaFaultPlanHandler) {
  GatewayRig rig;
  rig.gw.add_route(0x100, "body", "chassis", true);
  FaultPlan plan(rig.sched, 13);
  plan.bind_telemetry(rig.t);
  // Handler integration: the partition window toggles the gateway link, and
  // the gateway reports recovery back to the plan when the link returns.
  plan.on("gw.body", FaultKind::kPartition,
          [&](const FaultSpec&, bool active) {
            rig.gw.set_link_up("body", !active);
            if (!active) plan.notify_recovered("gw.body");
          });
  plan.window(SimTime::from_ms(5), SimTime::from_ms(20),
              {"gw.body", FaultKind::kPartition});

  rig.sched.schedule_at(SimTime::from_ms(10),
                        [&] { rig.body.send(&rig.sender, make_frame(0x100)); });
  rig.sched.schedule_at(SimTime::from_ms(30),
                        [&] { rig.body.send(&rig.sender, make_frame(0x100)); });
  rig.sched.run();

  ASSERT_EQ(rig.receiver.rx.size(), 1u);  // only the post-partition frame
  EXPECT_EQ(rig.gw.stats().dropped_link_down, 1u);
  EXPECT_TRUE(rig.gw.link_up("body"));
  EXPECT_EQ(plan.unrecovered(), 0u);

  const std::uint64_t inject = seq_of(rig.t, "faultplan", "inject");
  const std::uint64_t down = seq_of(rig.t, "gw", "link_down");
  const std::uint64_t drop = seq_of(rig.t, "gw", "drop");
  const std::uint64_t up = seq_of(rig.t, "gw", "link_up");
  const std::uint64_t recovered = seq_of(rig.t, "faultplan", "recovered");
  ASSERT_NE(inject, 0u);
  ASSERT_NE(down, 0u);
  ASSERT_NE(drop, 0u);
  ASSERT_NE(up, 0u);
  ASSERT_NE(recovered, 0u);
  EXPECT_LT(inject, down);
  EXPECT_LT(down, drop);
  EXPECT_LT(drop, up);
  EXPECT_LT(up, recovered);
}

TEST(GatewayDegraded, BusFaultWatchDrivesDegradation) {
  GatewayRig rig;
  gateway::DegradedModeConfig cfg;
  cfg.window = SimTime::from_ms(10);
  cfg.degrade_threshold = 5;
  rig.gw.enable_degraded_mode(cfg);
  rig.gw.enable_bus_fault_watch(rig.t);

  // Six tx_error events on the watched body bus within one health window.
  rig.sched.schedule_at(SimTime::from_ms(1), [&] {
    for (int i = 0; i < 6; ++i) {
      rig.t.bus->record(rig.sched.now(), "can.body", "tx_error", "n");
    }
  });
  rig.sched.run_until(SimTime::from_ms(10));
  EXPECT_EQ(rig.gw.mode("body"), gateway::GatewayMode::kDegraded);
  EXPECT_EQ(rig.gw.mode("chassis"), gateway::GatewayMode::kNormal);
}

// ---------------------------------------------------------------------------
// OTA retry / resume

struct RetryRig {
  Scheduler sched;
  Telemetry t;
  crypto::Drbg rng{777u};
  ota::Repository director{rng, "director", SimTime::from_s(3600)};
  ota::Repository images{rng, "image-repo", SimTime::from_s(3600)};
  Bytes fw = Bytes(65536, 0xF2);
  FaultPlan plan{sched, 21};

  RetryRig() {
    director.add_target("brake-fw", fw, 2, "brake-hw");
    images.add_target("brake-fw", fw, 2, "brake-hw");
    director.publish(SimTime::from_s(1));
    images.publish(SimTime::from_s(1));
    plan.bind_telemetry(t);
    director.set_fault_port(&plan.port("ota.director"));
    images.set_fault_port(&plan.port("ota.image"));
  }

  ota::FullVerificationClient make_client() {
    ota::FullVerificationClient c("primary", director.trusted_root(),
                                  images.trusted_root());
    c.bind_telemetry(t);
    return c;
  }

  // Outage on both mirrors (the client falls back to the director for bytes,
  // so a believable outage takes out both).
  void outage(SimTime at, SimTime dur) {
    plan.window(at, dur, {"ota.director", FaultKind::kOutage});
    plan.window(at, dur, {"ota.image", FaultKind::kOutage});
  }
};

TEST(OtaRetry, ResumesDownloadAfterOutage) {
  RetryRig rig;
  ota::FullVerificationClient client = rig.make_client();
  ota::FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = SimTime::from_ms(2);
  policy.multiplier = 2.0;
  policy.chunk_bytes = 8192;
  policy.link_bytes_per_sec = 1'000'000;  // 8.192ms per chunk

  const SimTime start = SimTime::from_s(10);
  // Chunks complete at start + k*8.192ms; the outage eats the mid-transfer
  // fetch, leaving a partial buffer to resume from.
  rig.outage(start + SimTime::from_ms(20), SimTime::from_ms(20));

  std::optional<ota::FullVerificationClient::RetryOutcome> result;
  rig.sched.schedule_at(start, [&] {
    client.fetch_and_verify_with_retry(
        rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1, policy,
        [&](const ota::FullVerificationClient::RetryOutcome& ro) {
          result = ro;
          rig.plan.notify_recovered("ota.director");
          rig.plan.notify_recovered("ota.image");
        });
  });
  rig.sched.run();

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outcome.error, ota::OtaError::kOk);
  EXPECT_EQ(result->outcome.image, rig.fw);
  EXPECT_GT(result->attempts, 1);
  EXPECT_GE(result->resumed_from, 8192u);  // partial download survived
  EXPECT_LT(result->resumed_from, rig.fw.size());
  EXPECT_EQ(rig.plan.unrecovered(), 0u);

  // Degradation -> recovery chain on the shared timeline.
  const std::uint64_t inject = seq_of(rig.t, "faultplan", "inject");
  const std::uint64_t interrupted = seq_of(rig.t, "ota.primary", "fetch_interrupted");
  const std::uint64_t backoff = seq_of(rig.t, "ota.primary", "backoff");
  const std::uint64_t resume = seq_of(rig.t, "ota.primary", "fetch_resume");
  const std::uint64_t ok = seq_of(rig.t, "ota.primary", "verify_ok");
  ASSERT_NE(inject, 0u);
  ASSERT_NE(interrupted, 0u);
  ASSERT_NE(backoff, 0u);
  ASSERT_NE(resume, 0u);
  ASSERT_NE(ok, 0u);
  EXPECT_LT(inject, interrupted);
  EXPECT_LT(interrupted, backoff);
  EXPECT_LT(backoff, resume);
  EXPECT_LT(resume, ok);
}

TEST(OtaRetry, ExhaustsRetriesUnderPermanentOutage) {
  RetryRig rig;
  ota::FullVerificationClient client = rig.make_client();
  ota::FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = SimTime::from_ms(1);

  const SimTime start = SimTime::from_s(10);
  rig.outage(start, SimTime::from_s(100));

  std::optional<ota::FullVerificationClient::RetryOutcome> result;
  rig.sched.schedule_at(start + SimTime::from_ms(1), [&] {
    client.fetch_and_verify_with_retry(
        rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1, policy,
        [&](const ota::FullVerificationClient::RetryOutcome& ro) { result = ro; });
  });
  rig.sched.run_until(start + SimTime::from_s(1));

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->outcome.error, ota::OtaError::kRetriesExhausted);
  EXPECT_EQ(result->attempts, 3);
  EXPECT_EQ(rig.t.bus->count("ota.primary", "retries_exhausted"), 1u);
  EXPECT_EQ(client.verify_fail(), 1u);
}

TEST(OtaRetry, JitteredBackoffDeterministicAndMetered) {
  // Jitter decorrelates fleet-wide retry storms but must stay
  // bit-deterministic per seed, and the backoff schedule must land in the
  // metrics registry (counters + histogram) for the E16 overhead report.
  struct RunResult {
    SimTime finished_at;
    std::uint64_t backoffs = 0;
    std::uint64_t backoff_ns = 0;
  };
  const auto run_once = [](double jitter, std::uint64_t rng_seed) {
    RetryRig rig;
    util::Rng jrng(rng_seed);
    ota::FullVerificationClient client = rig.make_client();
    ota::FullVerificationClient::RetryPolicy policy;
    policy.max_attempts = 10;
    policy.initial_backoff = SimTime::from_ms(4);
    policy.multiplier = 2.0;
    policy.chunk_bytes = 8192;
    policy.jitter = jitter;
    policy.jitter_rng = jitter > 0 ? &jrng : nullptr;

    const SimTime start = SimTime::from_s(10);
    rig.outage(start + SimTime::from_ms(20), SimTime::from_ms(40));
    RunResult res;
    rig.sched.schedule_at(start, [&] {
      client.fetch_and_verify_with_retry(
          rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1,
          policy, [&](const ota::FullVerificationClient::RetryOutcome& ro) {
            EXPECT_EQ(ro.outcome.error, ota::OtaError::kOk);
            res.finished_at = ro.finished_at;
            rig.plan.notify_recovered("ota.director");
            rig.plan.notify_recovered("ota.image");
          });
    });
    rig.sched.run();
    res.backoffs = rig.t.metrics->counter_value("ota.primary.backoffs");
    res.backoff_ns = rig.t.metrics->counter_value("ota.primary.backoff_ns_total");
    // The registry counter and the trace stream agree event for event.
    EXPECT_EQ(res.backoffs, rig.t.bus->count("ota.primary", "backoff"));
    return res;
  };

  const RunResult a = run_once(0.5, 99);
  const RunResult b = run_once(0.5, 99);
  const RunResult plain = run_once(0.0, 99);
  // Same seed -> bit-identical schedule; jitter perturbs the plain one.
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.backoff_ns, b.backoff_ns);
  EXPECT_EQ(a.backoffs, b.backoffs);
  EXPECT_GT(a.backoffs, 0u);
  EXPECT_GT(plain.backoffs, 0u);
  EXPECT_NE(a.backoff_ns, plain.backoff_ns);
}

TEST(OtaRetry, MetadataFailureIsFinalNotRetried) {
  RetryRig rig;
  ota::FullVerificationClient client = rig.make_client();
  ota::FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = SimTime::from_ms(1);

  // Repos disagree on the target -> metadata error, no transport retry.
  rig.images.add_target("brake-fw", Bytes(1024, 0xEE), 2, "brake-hw");
  rig.images.publish(SimTime::from_s(2));

  std::optional<ota::FullVerificationClient::RetryOutcome> result;
  rig.sched.schedule_at(SimTime::from_s(10), [&] {
    client.fetch_and_verify_with_retry(
        rig.sched, rig.director, rig.images, "brake-fw", "brake-hw", 1, policy,
        [&](const ota::FullVerificationClient::RetryOutcome& ro) { result = ro; });
  });
  rig.sched.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->outcome.error, ota::OtaError::kOk);
  EXPECT_NE(result->outcome.error, ota::OtaError::kRetriesExhausted);
  EXPECT_EQ(result->attempts, 1);  // a retry cannot fix a bad signature
}

}  // namespace
}  // namespace aseck
