// Tests for the vehicle-to-cloud secure channel: handshake, record
// protection, replay/tamper rejection, and MITM resistance.

#include <gtest/gtest.h>

#include "cloud/secure_channel.hpp"

namespace aseck::cloud {
namespace {

using util::Bytes;

struct Pki {
  crypto::Drbg rng{555u};
  crypto::EcdsaPrivateKey authority = crypto::EcdsaPrivateKey::generate(rng);
  crypto::EcdsaPrivateKey server_id = crypto::EcdsaPrivateKey::generate(rng);
  ServerCredential cred = ServerCredential::issue("ota.oem.example",
                                                  server_id.public_key(),
                                                  authority);
};

TEST(CloudChannel, HandshakeAndEcho) {
  Pki pki;
  ChannelServer server(pki.cred, pki.server_id, pki.rng);
  ChannelClient client(pki.authority.public_key(), pki.rng);

  const ClientHello ch = client.hello();
  const ServerHello sh = server.respond(ch);
  ASSERT_EQ(client.finish(sh), ChannelClient::Result::kOk);

  // client -> server
  const Bytes msg = util::from_string("GET /fleet/policy v2");
  const auto sealed = client.to_server().seal(msg);
  const auto opened = server.from_client().open(sealed);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);

  // server -> client
  const Bytes resp = util::from_string("policy-v2-payload");
  const auto sealed2 = server.to_client().seal(resp);
  const auto opened2 = client.from_server().open(sealed2);
  ASSERT_TRUE(opened2.has_value());
  EXPECT_EQ(*opened2, resp);
}

TEST(CloudChannel, SequencedRecordsAndReplay) {
  Pki pki;
  ChannelServer server(pki.cred, pki.server_id, pki.rng);
  ChannelClient client(pki.authority.public_key(), pki.rng);
  const auto sh = server.respond(client.hello());
  ASSERT_EQ(client.finish(sh), ChannelClient::Result::kOk);

  const auto r1 = client.to_server().seal(util::from_string("one"));
  const auto r2 = client.to_server().seal(util::from_string("two"));
  EXPECT_EQ(r1.seq, 0u);
  EXPECT_EQ(r2.seq, 1u);
  ASSERT_TRUE(server.from_client().open(r1).has_value());
  ASSERT_TRUE(server.from_client().open(r2).has_value());
  // A replayed record with a forged sequence number fails (nonce mismatch).
  auto replay = r1;
  replay.seq = 5;
  EXPECT_FALSE(server.from_client().open(replay).has_value());
}

TEST(CloudChannel, TamperedRecordRejected) {
  Pki pki;
  ChannelServer server(pki.cred, pki.server_id, pki.rng);
  ChannelClient client(pki.authority.public_key(), pki.rng);
  const auto sh = server.respond(client.hello());
  ASSERT_EQ(client.finish(sh), ChannelClient::Result::kOk);
  auto rec = client.to_server().seal(util::from_string("firmware-block-1"));
  rec.ciphertext[3] ^= 1;
  EXPECT_FALSE(server.from_client().open(rec).has_value());
}

TEST(CloudChannel, AadBindsContext) {
  Pki pki;
  ChannelServer server(pki.cred, pki.server_id, pki.rng);
  ChannelClient client(pki.authority.public_key(), pki.rng);
  const auto sh = server.respond(client.hello());
  ASSERT_EQ(client.finish(sh), ChannelClient::Result::kOk);
  const Bytes aad = util::from_string("session-42");
  const auto rec = client.to_server().seal(util::from_string("x"), aad);
  EXPECT_FALSE(server.from_client().open(rec, util::from_string("session-43"))
                   .has_value());
}

TEST(CloudChannel, RogueServerRejected) {
  Pki pki;
  // Attacker has a self-made credential not signed by the pinned authority.
  crypto::Drbg attacker_rng(666u);
  const auto rogue_authority = crypto::EcdsaPrivateKey::generate(attacker_rng);
  const auto rogue_id = crypto::EcdsaPrivateKey::generate(attacker_rng);
  const ServerCredential rogue_cred = ServerCredential::issue(
      "ota.oem.example", rogue_id.public_key(), rogue_authority);
  ChannelServer rogue(rogue_cred, rogue_id, attacker_rng);
  ChannelClient client(pki.authority.public_key(), pki.rng);
  const auto sh = rogue.respond(client.hello());
  EXPECT_EQ(client.finish(sh), ChannelClient::Result::kBadCredential);
}

TEST(CloudChannel, MitmKeySubstitutionRejected) {
  Pki pki;
  ChannelServer server(pki.cred, pki.server_id, pki.rng);
  ChannelClient client(pki.authority.public_key(), pki.rng);
  const ClientHello ch = client.hello();
  ServerHello sh = server.respond(ch);
  // MITM swaps the server's ECDHE share with its own.
  crypto::Drbg mitm_rng(777u);
  const auto mitm_key = crypto::EcdsaPrivateKey::generate(mitm_rng);
  sh.ecdhe = mitm_key.public_key();
  EXPECT_EQ(client.finish(sh), ChannelClient::Result::kBadTranscriptSig);
}

TEST(CloudChannel, StolenCredentialWithoutKeyFails) {
  Pki pki;
  // Attacker replays the genuine credential but cannot sign the transcript.
  crypto::Drbg attacker_rng(888u);
  const auto attacker_id = crypto::EcdsaPrivateKey::generate(attacker_rng);
  ChannelServer fake(pki.cred, attacker_id, attacker_rng);  // wrong key
  ChannelClient client(pki.authority.public_key(), pki.rng);
  const auto sh = fake.respond(client.hello());
  EXPECT_EQ(client.finish(sh), ChannelClient::Result::kBadTranscriptSig);
}

TEST(CloudChannel, IndependentSessionsDeriveDifferentKeys) {
  Pki pki;
  ChannelServer server(pki.cred, pki.server_id, pki.rng);
  ChannelClient c1(pki.authority.public_key(), pki.rng);
  ChannelClient c2(pki.authority.public_key(), pki.rng);
  const auto sh1 = server.respond(c1.hello());
  ASSERT_EQ(c1.finish(sh1), ChannelClient::Result::kOk);
  const auto rec1 = c1.to_server().seal(util::from_string("hello"));
  const auto sh2 = server.respond(c2.hello());
  ASSERT_EQ(c2.finish(sh2), ChannelClient::Result::kOk);
  // Session-2 server context cannot open session-1 records.
  EXPECT_FALSE(server.from_client().open(rec1).has_value());
}

}  // namespace
}  // namespace aseck::cloud
