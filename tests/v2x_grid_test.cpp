// Tests for the uniform-grid spatial index and V2xMedium's grid-backed
// neighbor discovery: query correctness against brute force, and the
// bit-identity contract — grid-mode delivery (counts AND per-delivery RNG
// draws) must exactly reproduce the linear scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "v2x/grid.hpp"
#include "v2x/net.hpp"

namespace aseck::v2x {
namespace {

using sim::Scheduler;
using util::SimTime;

TEST(SpatialGrid, QueryMatchesBruteForceOnRandomPoints) {
  util::Rng rng(99);
  SpatialGrid grid(50.0);
  struct Pt {
    std::uint64_t id;
    double x, y;
  };
  std::vector<Pt> pts;
  for (std::uint64_t i = 0; i < 500; ++i) {
    Pt p{i, rng.uniform_real(0, 1000), rng.uniform_real(0, 1000)};
    pts.push_back(p);
    grid.update(p.id, p.x, p.y);
  }
  std::vector<std::uint64_t> got, want;
  for (int q = 0; q < 50; ++q) {
    const double qx = rng.uniform_real(-100, 1100);
    const double qy = rng.uniform_real(-100, 1100);
    const double r = rng.uniform_real(0, 250);
    grid.query(qx, qy, r, got);
    want.clear();
    for (const Pt& p : pts) {
      const double dx = p.x - qx, dy = p.y - qy;
      if (dx * dx + dy * dy <= r * r) want.push_back(p.id);
    }
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(SpatialGrid, UpdateMovesAcrossCellsAndRemoveDrops) {
  SpatialGrid grid(10.0);
  grid.update(1, 5, 5);
  grid.update(2, 6, 5);
  std::vector<std::uint64_t> out;
  grid.query(5, 5, 3, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1, 2}));

  grid.update(1, 95, 95);  // crosses many cell boundaries
  grid.query(5, 5, 3, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2}));
  grid.query(95, 95, 1, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1}));

  grid.remove(2);
  grid.remove(2);  // idempotent
  grid.query(5, 5, 3, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(grid.size(), 1u);

  // In-cell moves keep the recorded position fresh.
  grid.update(1, 96, 96);
  grid.query(96, 96, 0.5, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{1}));
}

TEST(SpatialGrid, NegativeCoordinatesAndZeroRadius) {
  SpatialGrid grid(25.0);
  grid.update(7, -40.0, -3.0);
  std::vector<std::uint64_t> out;
  grid.query(-40.0, -3.0, 0.0, out);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{7}));
  grid.query(-40.0, -3.0, -1.0, out);  // negative radius: empty, no throw
  EXPECT_TRUE(out.empty());
  EXPECT_THROW(SpatialGrid(0.0), std::invalid_argument);
}

// A positionable radio that counts receptions.
class ProbeRadio : public V2xRadio {
 public:
  ProbeRadio(std::string name, Position pos)
      : V2xRadio(std::move(name)), pos_(pos) {}
  Position position() const override { return pos_; }
  void on_spdu(const Spdu&, SimTime) override { ++received_; }
  void move_to(Position p) { pos_ = p; }
  std::uint64_t received() const { return received_; }

 private:
  Position pos_;
  std::uint64_t received_ = 0;
};

struct Field {
  Scheduler sched;
  V2xMedium medium;
  std::vector<std::unique_ptr<ProbeRadio>> radios;

  explicit Field(double loss, std::uint64_t seed, std::size_t n, double side)
      : medium(sched, 300.0, loss, seed) {
    util::Rng place(4242);
    for (std::size_t i = 0; i < n; ++i) {
      radios.push_back(std::make_unique<ProbeRadio>(
          "r" + std::to_string(i),
          Position{place.uniform_real(0, side), place.uniform_real(0, side)}));
      medium.attach(radios.back().get());
    }
  }

  std::vector<std::uint64_t> run_broadcasts() {
    // Every 10th radio broadcasts twice; deliveries are scheduled events.
    for (std::size_t i = 0; i < radios.size(); i += 10) {
      medium.broadcast(radios[i].get(), Spdu{});
      medium.broadcast(radios[i].get(), Spdu{});
    }
    sched.run();
    std::vector<std::uint64_t> counts;
    for (auto& r : radios) counts.push_back(r->received());
    return counts;
  }
};

TEST(V2xMediumGrid, GridDeliveryBitIdenticalToLinearScan) {
  // Same seed, same topology, loss_prob > 0: every per-delivery RNG draw
  // must happen in the same order, so per-radio reception counts and
  // medium totals match exactly between linear and grid modes.
  Field linear(0.3, 11, 400, 2000.0);
  Field grid(0.3, 11, 400, 2000.0);
  grid.medium.enable_grid_index();
  ASSERT_TRUE(grid.medium.grid_enabled());
  ASSERT_FALSE(linear.medium.grid_enabled());

  const auto counts_linear = linear.run_broadcasts();
  const auto counts_grid = grid.run_broadcasts();
  EXPECT_EQ(counts_grid, counts_linear);
  EXPECT_EQ(grid.medium.transmitted(), linear.medium.transmitted());
  EXPECT_EQ(grid.medium.delivered(), linear.medium.delivered());
  EXPECT_EQ(grid.medium.lost(), linear.medium.lost());

  // The whole point: the grid checks far fewer candidates.
  EXPECT_LT(grid.medium.receivers_checked(), linear.medium.receivers_checked());
  EXPECT_GT(grid.medium.receivers_checked(), 0u);
}

TEST(V2xMediumGrid, ReindexKeepsMovedRadiosExact) {
  Field f(0.0, 5, 60, 800.0);
  f.medium.enable_grid_index(0.0, /*slack_m=*/60.0);
  // Drift everyone by less than the slack: still exact without reindex.
  for (auto& r : f.radios) {
    Position p = r->position();
    r->move_to(Position{p.x + 40.0, p.y});
  }
  f.medium.reindex_grid();  // after reindex, recorded == actual again
  Field ref(0.0, 5, 60, 800.0);
  for (auto& r : ref.radios) {
    Position p = r->position();
    r->move_to(Position{p.x + 40.0, p.y});
  }
  EXPECT_EQ(f.run_broadcasts(), ref.run_broadcasts());
  EXPECT_EQ(f.medium.delivered(), ref.medium.delivered());
}

TEST(V2xMediumGrid, DetachRemovesFromIndex) {
  Field f(0.0, 3, 30, 500.0);
  f.medium.enable_grid_index();
  ProbeRadio* victim = f.radios[1].get();
  f.medium.detach(victim);
  f.medium.broadcast(f.radios[0].get(), Spdu{});
  f.sched.run();
  EXPECT_EQ(victim->received(), 0u);
}

TEST(V2xMediumGrid, MonitorsHearEverythingInGridMode) {
  Field f(0.0, 3, 30, 500.0);
  f.medium.enable_grid_index();
  ProbeRadio sniffer("sniffer", Position{1e6, 1e6});  // far out of range
  f.medium.attach_monitor(&sniffer);
  f.medium.broadcast(f.radios[0].get(), Spdu{});
  f.sched.run();
  EXPECT_EQ(sniffer.received(), 1u);
}

}  // namespace
}  // namespace aseck::v2x
