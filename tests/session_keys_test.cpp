// Tests for in-vehicle session-key distribution via SHE.

#include <gtest/gtest.h>

#include "ecu/session_keys.hpp"
#include "ivn/secoc.hpp"

namespace aseck::ecu {
namespace {

using util::Bytes;

crypto::Block key_of(std::uint8_t b) {
  crypto::Block k;
  k.fill(b);
  return k;
}

struct Fixture {
  She she_a{Bytes(15, 0xA1), 1};
  She she_b{Bytes(15, 0xB2), 2};
  SessionKeyMaster master{99};
  SessionKeyClient client_a{"ecu-a", she_a};
  SessionKeyClient client_b{"ecu-b", she_b};

  Fixture() {
    SheKeyFlags enc_flags;                 // enc usage
    SheKeyFlags mac_flags;
    mac_flags.key_usage_mac = true;
    she_a.provision_key(SheSlot::kKey2, key_of(0xA2), enc_flags);
    she_a.provision_key(SheSlot::kKey3, key_of(0xA3), mac_flags);
    she_b.provision_key(SheSlot::kKey2, key_of(0xB3), enc_flags);
    she_b.provision_key(SheSlot::kKey3, key_of(0xB4), mac_flags);
    master.register_ecu("ecu-a", key_of(0xA2), key_of(0xA3));
    master.register_ecu("ecu-b", key_of(0xB3), key_of(0xB4));
  }
};

TEST(SessionKeys, DistributionInstallsSameKeyEverywhere) {
  Fixture f;
  const auto wraps = f.master.rotate();
  ASSERT_EQ(wraps.size(), 2u);
  for (const auto& w : wraps) {
    SessionKeyClient& c = w.ecu_name == "ecu-a" ? f.client_a : f.client_b;
    EXPECT_EQ(c.install(w), SessionKeyClient::Result::kInstalled);
  }
  // Both RAM keys now equal the master's session key: MACs agree.
  const Bytes msg{0x01, 0x02};
  crypto::Block mac_a, mac_b;
  ASSERT_EQ(f.she_a.generate_mac(SheSlot::kRamKey, msg, &mac_a),
            SheError::kNoError);
  ASSERT_EQ(f.she_b.generate_mac(SheSlot::kRamKey, msg, &mac_b),
            SheError::kNoError);
  EXPECT_EQ(mac_a, mac_b);
  const crypto::Block expect = crypto::aes_cmac(
      util::BytesView(f.master.current_key().data(), 16), msg);
  EXPECT_EQ(mac_a, expect);
}

TEST(SessionKeys, EpochReplayRejected) {
  Fixture f;
  const auto epoch1 = f.master.rotate();
  const auto epoch2 = f.master.rotate();
  auto wrap1_a = epoch1[0].ecu_name == "ecu-a" ? epoch1[0] : epoch1[1];
  auto wrap2_a = epoch2[0].ecu_name == "ecu-a" ? epoch2[0] : epoch2[1];
  EXPECT_EQ(f.client_a.install(wrap2_a), SessionKeyClient::Result::kInstalled);
  // Replaying the older epoch must fail.
  EXPECT_EQ(f.client_a.install(wrap1_a),
            SessionKeyClient::Result::kReplayedEpoch);
  EXPECT_EQ(f.client_a.epoch(), 2u);
}

TEST(SessionKeys, TamperAndMisdirectionRejected) {
  Fixture f;
  auto wraps = f.master.rotate();
  auto& wrap_a = wraps[0].ecu_name == "ecu-a" ? wraps[0] : wraps[1];
  auto& wrap_b = wraps[0].ecu_name == "ecu-b" ? wraps[0] : wraps[1];
  // Wrong recipient.
  EXPECT_EQ(f.client_a.install(wrap_b), SessionKeyClient::Result::kWrongEcu);
  // Tampered ciphertext.
  SessionKeyWrap bad = wrap_a;
  bad.wrapped_key[5] ^= 1;
  EXPECT_EQ(f.client_a.install(bad), SessionKeyClient::Result::kBadMac);
  // Tampered epoch (privilege of a fresh number without re-MAC).
  bad = wrap_a;
  bad.epoch = 99;
  EXPECT_EQ(f.client_a.install(bad), SessionKeyClient::Result::kBadMac);
  // Original still installs.
  EXPECT_EQ(f.client_a.install(wrap_a), SessionKeyClient::Result::kInstalled);
}

TEST(SessionKeys, UnprovisionedEcuCannotInstall) {
  She bare(Bytes(15, 0xCC), 3);
  SessionKeyClient client("ecu-a", bare);
  SessionKeyMaster master(7);
  master.register_ecu("ecu-a", key_of(1), key_of(2));
  const auto wraps = master.rotate();
  EXPECT_EQ(client.install(wraps[0]), SessionKeyClient::Result::kBadMac);
}

TEST(SessionKeys, RotationFeedsSecOcEpochChannel) {
  // End-to-end: each epoch's session key drives a SecOC channel; after
  // rotation, PDUs from the old epoch's key no longer verify.
  Fixture f;
  auto wraps1 = f.master.rotate();
  for (const auto& w : wraps1) {
    (w.ecu_name == "ecu-a" ? f.client_a : f.client_b).install(w);
  }
  const Bytes sk1(f.master.current_key().begin(), f.master.current_key().end());
  ivn::SecOcChannel ch1(sk1);
  ivn::FreshnessManager tx, rx;
  const Bytes pdu = ch1.protect(0x10, Bytes{0x42}, tx);
  EXPECT_EQ(ch1.verify(0x10, pdu, rx).status, ivn::SecOcStatus::kOk);

  auto wraps2 = f.master.rotate();
  const Bytes sk2(f.master.current_key().begin(), f.master.current_key().end());
  EXPECT_NE(sk1, sk2);
  ivn::SecOcChannel ch2(sk2);
  ivn::FreshnessManager rx2;
  EXPECT_EQ(ch2.verify(0x10, pdu, rx2).status, ivn::SecOcStatus::kMacMismatch);
}

}  // namespace
}  // namespace aseck::ecu
