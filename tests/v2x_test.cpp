// Tests for the V2X stack: certificates/PKI, signed messages, the radio
// medium, vehicles/RSUs, misbehavior detection, and the tracking adversary.

#include <gtest/gtest.h>

#include "v2x/cert.hpp"
#include "v2x/message.hpp"
#include "v2x/net.hpp"

namespace aseck::v2x {
namespace {

using util::Bytes;

struct Pki {
  crypto::Drbg rng{12345u};
  CertificateAuthority root =
      CertificateAuthority::make_root(rng, "root-ca", SimTime::from_s(100000));
  CertificateAuthority pca = CertificateAuthority::make_sub(
      rng, "pseudonym-ca", root, SimTime::from_s(100000));
  Crl crl;
  TrustStore trust;

  Pki() {
    trust.add_root(root.certificate());
    trust.add_intermediate(pca.certificate());
    trust.set_crl(&crl);
  }

  struct Entity {
    crypto::EcdsaPrivateKey key;
    Certificate cert;
  };
  Entity make_entity(const std::string& name, std::set<Psid> psids,
                     SimTime until = SimTime::from_s(100000)) {
    auto key = crypto::EcdsaPrivateKey::generate(rng);
    auto cert =
        pca.issue(name, key.public_key(), std::move(psids), SimTime::zero(), until);
    return Entity{std::move(key), std::move(cert)};
  }
};

TEST(Cert, ChainValidation) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(10), Psid::kBsm),
            TrustStore::Result::kOk);
}

TEST(Cert, RootSelfValidates) {
  Pki pki;
  EXPECT_EQ(pki.trust.validate(pki.root.certificate(), SimTime::from_s(1),
                               Psid::kBsm),
            TrustStore::Result::kOk);
}

TEST(Cert, ExpiryEnforced) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm}, SimTime::from_s(50));
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(51), Psid::kBsm),
            TrustStore::Result::kExpired);
}

TEST(Cert, PermissionEnforced) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kOtaDistribution),
            TrustStore::Result::kPermissionDenied);
}

TEST(Cert, RevocationEnforced) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kOk);
  pki.crl.revoke(v.cert.id());
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kRevoked);
  EXPECT_EQ(pki.crl.size(), 1u);
}

TEST(Cert, RevokedIntermediatePoisonsChildren) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  pki.crl.revoke(pki.pca.certificate().id());
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kRevoked);
}

TEST(Cert, ForgedCertificateRejected) {
  Pki pki;
  auto v = pki.make_entity("veh1", {Psid::kBsm});
  // Attacker swaps the public key but cannot re-sign.
  crypto::Drbg attacker_rng(666u);
  const auto attacker_key = crypto::EcdsaPrivateKey::generate(attacker_rng);
  v.cert.verify_key = attacker_key.public_key();
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kBadSignature);
}

TEST(Cert, UnknownIssuerRejected) {
  Pki pki;
  crypto::Drbg other_rng(777u);
  auto rogue_ca = CertificateAuthority::make_root(other_rng, "rogue",
                                                  SimTime::from_s(100000));
  auto key = crypto::EcdsaPrivateKey::generate(other_rng);
  const auto cert = rogue_ca.issue("veh-evil", key.public_key(), {Psid::kBsm},
                                   SimTime::zero(), SimTime::from_s(1000));
  EXPECT_EQ(pki.trust.validate(cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kUnknownIssuer);
}

TEST(Cert, IdStableAndBindsContent) {
  Pki pki;
  auto v = pki.make_entity("veh1", {Psid::kBsm});
  const CertId id1 = v.cert.id();
  EXPECT_EQ(id1, v.cert.id());
  Certificate mutated = v.cert;
  mutated.subject = "other";
  EXPECT_NE(cert_id_hex(id1), cert_id_hex(mutated.id()));
}

TEST(Cert, PseudonymBatchProperties) {
  Pki pki;
  const auto batch = pki.pca.issue_pseudonyms(pki.rng, 5, SimTime::from_s(0),
                                              SimTime::from_s(60));
  ASSERT_EQ(batch.certs.size(), 5u);
  ASSERT_EQ(batch.keys.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    // Back-to-back validity.
    EXPECT_EQ(batch.certs[i].valid_from, SimTime::from_s(60 * i));
    EXPECT_TRUE(batch.certs[i].permits(Psid::kBsm));
    // Keys are distinct (unlinkable).
    for (std::size_t j = i + 1; j < 5; ++j) {
      EXPECT_NE(cert_id_hex(batch.certs[i].id()), cert_id_hex(batch.certs[j].id()));
    }
    // Each cert validates during its own window.
    EXPECT_EQ(pki.trust.validate(batch.certs[i],
                                 SimTime::from_s(60 * i + 30), Psid::kBsm),
              TrustStore::Result::kOk);
  }
}

TEST(Bsm, SerializeParseRoundTrip) {
  Bsm b;
  b.temp_id = 0xdeadbeef;
  b.pos = {123.5, -44.25};
  b.speed_mps = 27.8;
  b.heading_rad = 1.5708;
  b.generated = SimTime::from_ms(12345);
  const auto parsed = Bsm::parse(b.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->temp_id, b.temp_id);
  EXPECT_DOUBLE_EQ(parsed->pos.x, b.pos.x);
  EXPECT_DOUBLE_EQ(parsed->pos.y, b.pos.y);
  EXPECT_DOUBLE_EQ(parsed->speed_mps, b.speed_mps);
  EXPECT_EQ(parsed->generated, b.generated);
  EXPECT_FALSE(Bsm::parse(Bytes(10)).has_value());
}

TEST(Spdu, SignVerifyOk) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  const Spdu msg = Spdu::sign(Psid::kBsm, SimTime::from_ms(100),
                              Bytes{1, 2, 3}, v.cert, v.key);
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_ms(150), VerifyPolicy{}),
            VerifyStatus::kOk);
}

TEST(Spdu, StaleAndFutureRejected) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  const Spdu msg = Spdu::sign(Psid::kBsm, SimTime::from_s(10), Bytes{1},
                              v.cert, v.key);
  VerifyPolicy policy;
  policy.max_age = SimTime::from_ms(500);
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_s(12), policy),
            VerifyStatus::kStale);  // too old
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_s(9), policy),
            VerifyStatus::kStale);  // from the future
}

TEST(Spdu, TamperedPayloadRejected) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  Spdu msg = Spdu::sign(Psid::kBsm, SimTime::from_ms(100), Bytes{1, 2, 3},
                        v.cert, v.key);
  msg.payload[0] ^= 1;
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_ms(150), VerifyPolicy{}),
            VerifyStatus::kBadSignature);
}

TEST(Spdu, PsidMismatchRejected) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  // Vehicle signs an OTA-distribution message its cert does not permit.
  const Spdu msg = Spdu::sign(Psid::kOtaDistribution, SimTime::from_ms(100),
                              Bytes{1}, v.cert, v.key);
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_ms(150), VerifyPolicy{}),
            VerifyStatus::kCertInvalid);
}

TEST(Spdu, RelevanceCheck) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  const Spdu msg = Spdu::sign(Psid::kBsm, SimTime::from_ms(100), Bytes{1},
                              v.cert, v.key);
  VerifyPolicy policy;
  policy.max_relevance_m = 500;
  const Position me{0, 0};
  const Position near{100, 100};
  const Position far{5000, 5000};
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_ms(150), policy, &me, &near),
            VerifyStatus::kOk);
  EXPECT_EQ(verify_spdu(msg, pki.trust, SimTime::from_ms(150), policy, &me, &far),
            VerifyStatus::kIrrelevant);
}

TEST(Medium, RangeLimitsDelivery) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched, /*range=*/300.0);
  const auto batch1 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(),
                                               SimTime::from_s(1000));
  auto batch_near = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(),
                                             SimTime::from_s(1000));
  auto batch_far = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(),
                                            SimTime::from_s(1000));
  VehicleNode sender(sched, medium, "sender", {0, 0}, 0, 0, pki.trust,
                     std::move(const_cast<CertificateAuthority::PseudonymBatch&>(batch1)));
  VehicleNode near(sched, medium, "near", {100, 0}, 0, 0, pki.trust,
                   std::move(batch_near));
  VehicleNode far(sched, medium, "far", {1000, 0}, 0, 0, pki.trust,
                  std::move(batch_far));
  sender.start();
  sched.run_until(SimTime::from_ms(450));
  sender.stop();
  sched.run();
  EXPECT_GE(near.stats().spdu_received, 4u);
  EXPECT_EQ(far.stats().spdu_received, 0u);
  EXPECT_GT(medium.delivered(), 0u);
}

TEST(Medium, LossProbability) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched, 300.0, /*loss=*/0.5, /*seed=*/7);
  auto b1 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  auto b2 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  VehicleNode sender(sched, medium, "s", {0, 0}, 0, 0, pki.trust, std::move(b1));
  VehicleNode rx(sched, medium, "r", {50, 0}, 0, 0, pki.trust, std::move(b2));
  sender.start();
  sched.run_until(SimTime::from_s(20));
  sender.stop();
  sched.run();
  const double loss_rate = static_cast<double>(medium.lost()) /
                           static_cast<double>(medium.lost() + medium.delivered());
  EXPECT_NEAR(loss_rate, 0.5, 0.1);
  EXPECT_LT(rx.stats().spdu_received, 160u);
  EXPECT_GT(rx.stats().spdu_received, 40u);
}

TEST(Vehicle, BroadcastsVerifiedBsms) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  auto b1 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  auto b2 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  VehicleNode a(sched, medium, "a", {0, 0}, 14.0, 0, pki.trust, std::move(b1));
  VehicleNode b(sched, medium, "b", {50, 0}, -14.0, 0, pki.trust, std::move(b2));
  int sink_calls = 0;
  b.set_bsm_sink([&](const Bsm& bsm, const Spdu&, SimTime) {
    ++sink_calls;
    EXPECT_GT(bsm.speed_mps, 13.9);
  });
  a.start();
  b.start();
  sched.run_until(SimTime::from_s(2));
  a.stop();
  b.stop();
  sched.run();
  EXPECT_GE(a.stats().bsm_sent, 20u);
  EXPECT_GT(b.stats().verified_ok, 15u);
  EXPECT_EQ(b.stats().misbehavior_flags, 0u);
  EXPECT_GT(sink_calls, 15);
  // Vehicles moved as expected (clock drains slightly past 2 s).
  EXPECT_NEAR(a.position().x, 28.0, 2.0);
}

TEST(Vehicle, PseudonymRotation) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  auto batch = pki.pca.issue_pseudonyms(pki.rng, 4, SimTime::zero(),
                                        SimTime::from_s(10));
  PseudonymPolicy policy;
  policy.rotation_period = SimTime::from_s(10);
  VehicleNode v(sched, medium, "v", {0, 0}, 10, 0, pki.trust, std::move(batch),
                policy);
  const std::uint32_t first_id = v.current_temp_id();
  v.start();
  sched.run_until(SimTime::from_s(35));
  v.stop();
  sched.run();
  EXPECT_EQ(v.pseudonym_index(), 3u);
  EXPECT_NE(v.current_temp_id(), first_id);
}

TEST(Vehicle, RotationDisabled) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  auto batch = pki.pca.issue_pseudonyms(pki.rng, 4, SimTime::zero(),
                                        SimTime::from_s(1000));
  PseudonymPolicy policy;
  policy.enabled = false;
  VehicleNode v(sched, medium, "v", {0, 0}, 10, 0, pki.trust, std::move(batch),
                policy);
  v.start();
  sched.run_until(SimTime::from_s(30));
  v.stop();
  sched.run();
  EXPECT_EQ(v.pseudonym_index(), 0u);
}

TEST(Misbehavior, FlagsImplausibleSpeedAndJump) {
  MisbehaviorDetector det;
  Bsm ok;
  ok.temp_id = 1;
  ok.pos = {0, 0};
  ok.speed_mps = 30;
  EXPECT_EQ(det.check(ok, SimTime::from_ms(0)), "");
  Bsm fast = ok;
  fast.speed_mps = 200;  // 720 km/h
  EXPECT_EQ(det.check(fast, SimTime::from_ms(100)), "implausible_speed");
  Bsm teleport = ok;
  teleport.pos = {5000, 0};
  EXPECT_EQ(det.check(teleport, SimTime::from_ms(200)), "position_jump");
  EXPECT_EQ(det.flagged(), 2u);
}

TEST(Misbehavior, SpoofingVehicleDetectedEndToEnd) {
  // A vehicle signs valid BSMs (good cert) but lies about position wildly:
  // crypto passes, plausibility catches it.
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  auto victim_batch = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(),
                                               SimTime::from_s(1000));
  VehicleNode victim(sched, medium, "victim", {0, 0}, 0, 0, pki.trust,
                     std::move(victim_batch));
  const auto ghost = pki.make_entity("ghost", {Psid::kBsm});

  // Attacker broadcasts teleporting ghost BSMs every 100 ms.
  struct Attacker : V2xRadio {
    using V2xRadio::V2xRadio;
    Position position() const override { return {10, 10}; }
    void on_spdu(const Spdu&, SimTime) override {}
  } attacker("attacker");
  medium.attach(&attacker);

  sim::PeriodicTask task(
      sched, SimTime::from_ms(100),
      [&] {
        // Teleports 500 m back and forth every 100 ms — inside the relevance
        // radius so only plausibility can catch it.
        static bool flip = false;
        flip = !flip;
        Bsm bsm;
        bsm.temp_id = 0x66666666;
        bsm.pos = {flip ? 100.0 : 600.0, 0};
        bsm.speed_mps = 25;
        bsm.generated = sched.now();
        medium.broadcast(&attacker,
                         Spdu::sign(Psid::kBsm, sched.now(), bsm.serialize(),
                                    ghost.cert, ghost.key));
      },
      SimTime::zero());
  sched.run_until(SimTime::from_s(1));
  task.stop();
  sched.run();
  // First ghost BSM may pass (no history), subsequent ones are flagged.
  EXPECT_GE(victim.stats().misbehavior_flags, 5u);
}

TEST(Rsu, VerifiesAndAlerts) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  const auto rsu_id = pki.make_entity("rsu-1", {Psid::kRoadsideAlert});
  RsuNode rsu(sched, medium, "rsu-1", {0, 0}, pki.trust, rsu_id.cert, rsu_id.key);
  auto batch = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(),
                                        SimTime::from_s(1000));
  VehicleNode v(sched, medium, "v", {100, 0}, 0, 0, pki.trust, std::move(batch));
  v.start();
  sched.run_until(SimTime::from_s(1));
  v.stop();
  sched.run();
  EXPECT_GT(rsu.received(), 5u);
  EXPECT_EQ(rsu.received(), rsu.verified());

  rsu.broadcast_alert(Bytes{0x01});
  sched.run();
  // Alert is not a BSM; vehicle verifies it but sink is not called.
  EXPECT_GE(v.stats().verified_ok, 1u);
}

TEST(Adversary, LinksWithoutRotation) {
  // One vehicle, no rotation: a single chain containing one temp id.
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched, 10000.0);
  auto batch = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(),
                                        SimTime::from_s(1000));
  VehicleNode v(sched, medium, "v", {0, 0}, 20, 0, pki.trust, std::move(batch));
  TrackingAdversary adv("adv", {0, 0}, SimTime::from_s(5), 100.0);
  medium.attach(&adv);
  v.start();
  sched.run_until(SimTime::from_s(5));
  v.stop();
  sched.run();
  EXPECT_GT(adv.observed(), 40u);
  const auto chains = adv.link_chains();
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].size(), 1u);
}

TEST(Adversary, LinksAcrossSingleRotation) {
  // One vehicle rotating once: adversary should link both pseudonyms into a
  // single chain by kinematic continuity.
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched, 10000.0);
  auto batch = pki.pca.issue_pseudonyms(pki.rng, 2, SimTime::zero(),
                                        SimTime::from_s(10));
  PseudonymPolicy policy;
  policy.rotation_period = SimTime::from_s(10);
  VehicleNode v(sched, medium, "v", {0, 0}, 20, 0, pki.trust, std::move(batch),
                policy);
  TrackingAdversary adv("adv", {0, 0}, SimTime::from_s(5), 100.0);
  medium.attach(&adv);
  v.start();
  sched.run_until(SimTime::from_s(20));
  v.stop();
  sched.run();
  const auto chains = adv.link_chains();
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].size(), 2u);  // both pseudonyms linked: privacy lost
}

TEST(Cert, ChainCacheHitsOnRepeatValidation) {
  Pki pki;
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kOk);
  const std::uint64_t h0 = pki.trust.cache_hits();
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(2), Psid::kBsm),
            TrustStore::Result::kOk);
  EXPECT_GT(pki.trust.cache_hits(), h0);
}

TEST(Cert, ChainCacheBoundedUnderPseudonymChurn) {
  // Regression: chain_cache_ was an unbounded std::map keyed by cert id, so
  // a fleet rotating pseudonyms grew the TrustStore without limit. With an
  // LRU bound the cache must stay at capacity and evict, while verdicts stay
  // correct for both resident and evicted certs.
  Pki pki;
  pki.trust.set_chain_cache_capacity(8);
  std::vector<Pki::Entity> certs;
  for (int i = 0; i < 64; ++i) {
    certs.push_back(pki.make_entity("p" + std::to_string(i), {Psid::kBsm}));
  }
  for (const auto& e : certs) {
    EXPECT_EQ(pki.trust.validate(e.cert, SimTime::from_s(1), Psid::kBsm),
              TrustStore::Result::kOk);
  }
  EXPECT_LE(pki.trust.chain_cache_size(), 8u);
  // 64 leaf certs + intermediates through an 8-entry cache must evict.
  EXPECT_GT(pki.trust.cache_evictions(), 0u);
  // An evicted cert re-validates correctly (cache miss, full chain walk).
  EXPECT_EQ(pki.trust.validate(certs[0].cert, SimTime::from_s(2), Psid::kBsm),
            TrustStore::Result::kOk);
}

TEST(Opportunistic, AdmitsProvisionallyAndConfirmsHonestTraffic) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  auto b1 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  auto b2 = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  VehicleNode a(sched, medium, "a", {0, 0}, 14.0, 0, pki.trust, std::move(b1));
  VehicleNode b(sched, medium, "b", {50, 0}, -14.0, 0, pki.trust, std::move(b2));
  DeferredSpduVerifier verifier(sched);
  b.enable_opportunistic(verifier);
  ASSERT_TRUE(b.opportunistic());
  int sink_calls = 0;
  b.set_bsm_sink([&](const Bsm&, const Spdu&, SimTime) { ++sink_calls; });

  verifier.start();
  a.start();
  b.start();
  sched.run_until(SimTime::from_s(2));
  a.stop();
  b.stop();
  // Drain in-flight radio deliveries before the verifier's final flush.
  sched.run_until(SimTime::from_ms(2100));
  verifier.stop();  // drains: nothing may stay provisionally trusted
  sched.run();

  EXPECT_GT(b.stats().admitted_provisional, 15u);
  EXPECT_EQ(b.stats().revoked_late, 0u);
  EXPECT_GT(b.stats().verified_ok, 15u);
  EXPECT_GT(sink_calls, 15);  // the sink fired at admit time
  EXPECT_EQ(verifier.revoked(), 0u);
  EXPECT_EQ(verifier.confirmed(), verifier.submitted());
  EXPECT_EQ(verifier.pending_count(), 0u);
  // The exposure window is real but bounded by the flush period (10 ms).
  ASSERT_GT(b.stats().exposure_window_us.count(), 0u);
  EXPECT_LE(b.stats().exposure_window_us.max(), 10001.0);
}

TEST(Opportunistic, RevokesForgedSignatureAfterActingOnIt) {
  sim::Scheduler sched;
  Pki pki;
  V2xMedium medium(sched);
  auto batch = pki.pca.issue_pseudonyms(pki.rng, 1, SimTime::zero(), SimTime::from_s(1000));
  VehicleNode b(sched, medium, "b", {50, 0}, 0, 0, pki.trust, std::move(batch));
  DeferredSpduVerifier verifier(sched);
  b.enable_opportunistic(verifier);
  int sink_calls = 0;
  b.set_bsm_sink([&](const Bsm&, const Spdu&, SimTime) { ++sink_calls; });
  std::uint32_t revoked_tid = 0;
  SimTime revoked_at;
  b.set_revoke_sink([&](std::uint32_t tid, SimTime, SimTime at) {
    revoked_tid = tid;
    revoked_at = at;
  });

  struct Injector : V2xRadio {
    Injector() : V2xRadio("inj") {}
    Position position() const override { return {10, 0}; }
    void on_spdu(const Spdu&, SimTime) override {}
  } inj;
  medium.attach(&inj);

  verifier.start();
  sched.run_until(SimTime::from_ms(5));
  // Valid certificate, fresh timestamp, plausible position — every check
  // the receiver can afford at admit time passes. Only the signature is
  // forged, and that check has been deferred.
  const auto ent = pki.make_entity("mallory", {Psid::kBsm});
  Bsm fake;
  fake.temp_id = 999;
  fake.pos = {10, 0};
  fake.speed_mps = 10.0;
  fake.generated = sched.now();
  Spdu msg = Spdu::sign(Psid::kBsm, sched.now(), fake.serialize(), ent.cert,
                        ent.key);
  msg.signature.s = crypto::U256::from_u64(5);  // forge
  medium.broadcast(&inj, msg);
  sched.run_until(SimTime::from_ms(50));
  verifier.stop();
  sched.run();

  EXPECT_EQ(b.stats().admitted_provisional, 1u);
  EXPECT_EQ(sink_calls, 1);  // the ADAS consumer acted on the forgery
  EXPECT_EQ(b.stats().revoked_late, 1u);
  EXPECT_EQ(b.stats().rejected.at(VerifyStatus::kBadSignature), 1u);
  EXPECT_EQ(revoked_tid, 999u);
  EXPECT_GT(revoked_at, SimTime::from_ms(5));
  EXPECT_EQ(verifier.revoked(), 1u);
}

TEST(Cert, ValidateRoutesThroughVerifyEngine) {
  Pki pki;
  crypto::VerifyEngine engine;
  pki.trust.set_verify_engine(&engine);
  const auto v = pki.make_entity("veh1", {Psid::kBsm});
  EXPECT_EQ(pki.trust.validate(v.cert, SimTime::from_s(1), Psid::kBsm),
            TrustStore::Result::kOk);
  EXPECT_GT(engine.calls(), 0u);
}

}  // namespace
}  // namespace aseck::v2x
