// Tests for UDS diagnostics security and AUTOSAR E2E protection.

#include <gtest/gtest.h>

#include "ivn/can.hpp"
#include "ivn/e2e.hpp"
#include "ivn/uds.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"

namespace aseck::ivn {
namespace {

using util::Bytes;

UdsServer make_server(SeedKeyFn algo) {
  UdsServer::Config cfg;
  cfg.seed_key = std::move(algo);
  cfg.max_attempts = 3;
  cfg.lockout_s = 600.0;
  return UdsServer(cfg, 42);
}

TEST(Uds, SeedKeyHappyPath) {
  const std::uint32_t secret = 0xCAFEBABE;
  UdsServer server = make_server(weak_xor_algorithm(secret));
  EXPECT_TRUE(server.session_control(UdsSession::kExtended, 0).positive);
  const UdsResponse seed = server.request_seed(0);
  ASSERT_TRUE(seed.positive);
  EXPECT_EQ(seed.data.size(), 4u);
  const Bytes key = weak_xor_algorithm(secret)(seed.data);
  EXPECT_TRUE(server.send_key(key, 1).positive);
  EXPECT_TRUE(server.unlocked());
}

TEST(Uds, DefaultSessionRefusesSeed) {
  UdsServer server = make_server(weak_xor_algorithm(1));
  const UdsResponse r = server.request_seed(0);
  EXPECT_FALSE(r.positive);
  EXPECT_EQ(r.nrc, UdsNrc::kConditionsNotCorrect);
}

TEST(Uds, WrongKeyCountsAndLocksOut) {
  UdsServer server = make_server(weak_xor_algorithm(0x11223344));
  server.session_control(UdsSession::kExtended, 0);
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(server.request_seed(0).positive);
    const UdsResponse r = server.send_key(Bytes(4, 0xFF), 1);
    EXPECT_FALSE(r.positive);
    EXPECT_EQ(r.nrc, UdsNrc::kInvalidKey);
  }
  ASSERT_TRUE(server.request_seed(2).positive);
  const UdsResponse third = server.send_key(Bytes(4, 0xFF), 3);
  EXPECT_EQ(third.nrc, UdsNrc::kExceededAttempts);
  // Locked out now.
  EXPECT_EQ(server.request_seed(10).nrc, UdsNrc::kRequiredTimeDelayNotExpired);
  // After the lockout expires, access works again.
  EXPECT_TRUE(server.request_seed(700).positive);
}

TEST(Uds, KeyWithoutSeedRejected) {
  UdsServer server = make_server(weak_xor_algorithm(1));
  server.session_control(UdsSession::kExtended, 0);
  EXPECT_EQ(server.send_key(Bytes(4, 0), 0).nrc, UdsNrc::kConditionsNotCorrect);
  // One attempt per seed: the seed is consumed by a failed try.
  ASSERT_TRUE(server.request_seed(0).positive);
  server.send_key(Bytes(4, 0xFF), 1);
  EXPECT_EQ(server.send_key(Bytes(4, 0xFF), 2).nrc,
            UdsNrc::kConditionsNotCorrect);
}

TEST(Uds, ProgrammingSessionGatedOnUnlock) {
  const std::uint32_t secret = 0x5A5A5A5A;
  UdsServer server = make_server(weak_xor_algorithm(secret));
  server.session_control(UdsSession::kExtended, 0);
  EXPECT_EQ(server.session_control(UdsSession::kProgramming, 0).nrc,
            UdsNrc::kSecurityAccessDenied);
  EXPECT_EQ(server.request_download(0).nrc, UdsNrc::kConditionsNotCorrect);
  const auto seed = server.request_seed(0);
  server.send_key(weak_xor_algorithm(secret)(seed.data), 1);
  EXPECT_TRUE(server.session_control(UdsSession::kProgramming, 1).positive);
  EXPECT_TRUE(server.request_download(1).positive);
  // Returning to default re-locks.
  server.session_control(UdsSession::kDefault, 2);
  EXPECT_FALSE(server.unlocked());
}

TEST(Uds, DidReadWriteProtection) {
  const std::uint32_t secret = 0x22446688;
  UdsServer server = make_server(weak_xor_algorithm(secret));
  server.define_did(0xF190, util::from_string("VIN1234567"), true);
  server.define_did(0x0101, Bytes{0x01}, false);

  EXPECT_TRUE(server.read_data(0xF190).positive);
  EXPECT_EQ(server.read_data(0x9999).nrc, UdsNrc::kRequestOutOfRange);
  // Unprotected DID writable without unlock; protected one is not.
  EXPECT_TRUE(server.write_data(0x0101, Bytes{0x02}, 0).positive);
  EXPECT_EQ(server.write_data(0xF190, util::from_string("HACKEDVIN0"), 0).nrc,
            UdsNrc::kSecurityAccessDenied);
  // After unlock the protected DID becomes writable.
  server.session_control(UdsSession::kExtended, 0);
  const auto seed = server.request_seed(0);
  server.send_key(weak_xor_algorithm(secret)(seed.data), 1);
  EXPECT_TRUE(server.write_data(0xF190, util::from_string("NEWVIN0000"), 2).positive);
  EXPECT_EQ(server.read_data(0xF190).data, util::from_string("NEWVIN0000"));
}

TEST(Uds, CmacAlgorithmStrongerThanXor) {
  Bytes key16(16, 0x5C);
  UdsServer server = make_server(cmac_algorithm(key16));
  server.session_control(UdsSession::kExtended, 0);
  const auto seed = server.request_seed(0);
  const Bytes good = cmac_algorithm(key16)(seed.data);
  EXPECT_EQ(good.size(), 4u);
  EXPECT_TRUE(server.send_key(good, 1).positive);
}

TEST(Uds, BruteForceBlockedByLockout) {
  UdsServer server = make_server(weak_xor_algorithm(0xDEADBEEF));
  util::Rng rng(7);
  const UdsAttackResult r = brute_force_security_access(server, 100000, 0, rng);
  EXPECT_FALSE(r.unlocked);
  EXPECT_TRUE(r.locked_out);
  EXPECT_LE(r.attempts, 3u);  // attempt counter + lockout cap the attack
}

TEST(Uds, BruteForceSucceedsWithoutLockout) {
  // Misconfigured server: effectively no attempt limit, weak algorithm with
  // a tiny constant space (models servers whose constants were leaked).
  UdsServer::Config cfg;
  cfg.seed_key = weak_xor_algorithm(0x000000FF);
  cfg.max_attempts = 1u << 30;
  cfg.lockout_s = 0;
  UdsServer server(cfg, 1);
  // Attacker knows the constant is 8-bit: enumerate.
  server.session_control(UdsSession::kExtended, 0);
  bool unlocked = false;
  for (std::uint32_t c = 0; c < 256 && !unlocked; ++c) {
    const auto seed = server.request_seed(static_cast<double>(c));
    ASSERT_TRUE(seed.positive);
    unlocked = server
                   .send_key(weak_xor_algorithm(c)(seed.data),
                             static_cast<double>(c) + 0.5)
                   .positive;
  }
  EXPECT_TRUE(unlocked);
}

// ---------------------------------------------------------------- E2E

TEST(E2e, ProtectCheckRoundTrip) {
  const E2eConfig cfg{0x1234, 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  for (int i = 0; i < 40; ++i) {
    const Bytes payload{static_cast<std::uint8_t>(i), 0x55};
    const auto r = rx.check(tx.protect(payload));
    ASSERT_EQ(r.status, E2eStatus::kOk) << i;
    EXPECT_EQ(r.payload, payload);
  }
}

TEST(E2e, DetectsCorruption) {
  const E2eConfig cfg{0x1234, 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  Bytes pdu = tx.protect(Bytes{0x01, 0x02});
  pdu[3] ^= 0x40;
  EXPECT_EQ(rx.check(pdu).status, E2eStatus::kWrongCrc);
  EXPECT_EQ(rx.check(Bytes{0x01}).status, E2eStatus::kWrongCrc);
}

TEST(E2e, DetectsRepeatAndLoss) {
  const E2eConfig cfg{0x0042, 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  const Bytes pdu1 = tx.protect(Bytes{0x01});
  EXPECT_EQ(rx.check(pdu1).status, E2eStatus::kOk);
  EXPECT_EQ(rx.check(pdu1).status, E2eStatus::kRepeated);  // replayed frame
  (void)tx.protect(Bytes{0x02});                            // lost
  const Bytes pdu3 = tx.protect(Bytes{0x03});
  EXPECT_EQ(rx.check(pdu3).status, E2eStatus::kOkSomeLost);
  // Drop more than max_delta -> sequence error.
  for (int i = 0; i < 5; ++i) (void)tx.protect(Bytes{0x04});
  EXPECT_EQ(rx.check(tx.protect(Bytes{0x05})).status, E2eStatus::kWrongSequence);
  // Resynchronized after the break.
  EXPECT_EQ(rx.check(tx.protect(Bytes{0x06})).status, E2eStatus::kOk);
}

TEST(E2e, DataIdMismatchDetected) {
  E2eProtector tx(E2eConfig{0x1111, 2});
  E2eChecker rx(E2eConfig{0x2222, 2});  // different data id (masquerade)
  EXPECT_EQ(rx.check(tx.protect(Bytes{0x01})).status, E2eStatus::kWrongCrc);
}

TEST(E2e, NotASecurityMechanism) {
  // An adversary who knows the data id forges a perfectly valid E2E frame —
  // the CRC is unkeyed. This is the safety-vs-security distinction.
  const E2eConfig cfg{0x0F0, 2};
  E2eChecker rx(cfg);
  E2eProtector honest(cfg);
  EXPECT_EQ(rx.check(honest.protect(Bytes{0x10})).status, E2eStatus::kOk);
  // Forger crafts counter+crc for malicious payload.
  const Bytes evil{0x66};
  const std::uint8_t forged_counter = 1;  // next expected
  Bytes forged;
  forged.push_back(e2e_crc(cfg, forged_counter, evil));
  forged.push_back(forged_counter);
  forged.insert(forged.end(), evil.begin(), evil.end());
  EXPECT_EQ(rx.check(forged).status, E2eStatus::kOk);  // accepted!
}

TEST(E2e, FlagsChaosPlaneFrameDuplicates) {
  // Regression for the fault-injection integration: a FaultPlan
  // kFrameDuplicate window on a CAN bus delivers every frame twice, and the
  // E2E layer must catch the echo — each duplicate carries the same alive
  // counter, so the checker flags exactly one kRepeated per bus-level
  // duplication. This is how a supervision layer tells replay/echo from
  // plain loss.
  sim::Scheduler sched;
  sim::Telemetry t;
  CanBus bus(sched, "can0", 500'000);
  bus.bind_telemetry(t);
  struct Node final : CanNode {
    using CanNode::CanNode;
    E2eChecker* chk = nullptr;
    std::vector<E2eStatus> statuses;
    void on_frame(const CanFrame& f, util::SimTime) override {
      if (chk) statuses.push_back(chk->check(f.data).status);
    }
  };
  Node tx_node("tx"), rx_node("rx");
  const E2eConfig cfg{0x0321, 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  rx_node.chk = &rx;
  bus.attach(&tx_node);
  bus.attach(&rx_node);

  sim::FaultPlan plan(sched, 5);
  bus.set_fault_port(&plan.port("can0"));
  plan.window(sim::SimTime::from_ms(1), sim::SimTime::from_ms(100),
              {"can0", sim::FaultKind::kFrameDuplicate, 1.0});
  for (int i = 0; i < 5; ++i) {
    sched.schedule_at(sim::SimTime::from_ms(2 + 2 * i), [&, i] {
      CanFrame f;
      f.id = 0x18;
      f.data = tx.protect(Bytes{static_cast<std::uint8_t>(i)});
      bus.send(&tx_node, f);
    });
  }
  sched.run();

  // Every frame arrived twice: original checks kOk, echo checks kRepeated,
  // and the E2E-layer count matches the bus-layer duplication count.
  ASSERT_EQ(rx_node.statuses.size(), 10u);
  EXPECT_EQ(rx.ok(), 5u);
  EXPECT_EQ(rx.repeated(), 5u);
  EXPECT_EQ(rx.wrong_crc(), 0u);
  EXPECT_EQ(rx.wrong_sequence(), 0u);
  EXPECT_EQ(t.metrics->counter_value("can.can0.frames_duplicated"),
            rx.repeated());
  EXPECT_EQ(plan.unrecovered(), 0u);
}

TEST(E2e, CounterWrapsAt15) {
  const E2eConfig cfg{0x7, 2};
  E2eProtector tx(cfg);
  E2eChecker rx(cfg);
  for (int i = 0; i < 100; ++i) {
    const auto r = rx.check(tx.protect(Bytes{0x01}));
    ASSERT_EQ(r.status, E2eStatus::kOk) << i;  // wrap must look seamless
  }
}

}  // namespace
}  // namespace aseck::ivn
