// Tests for the SHE module, flash A/B model, and the ECU (secure boot,
// tamper, partitions, SecOC messaging over CAN).

#include <gtest/gtest.h>

#include "ecu/ecu.hpp"
#include "ecu/flash.hpp"
#include "ecu/she.hpp"

namespace aseck::ecu {
namespace {

using crypto::Block;
using util::Bytes;

Block key_of(std::uint8_t fill) {
  Block k;
  k.fill(fill);
  return k;
}

util::Bytes test_uid() { return Bytes(15, 0xA5); }

She make_she() { return She(test_uid(), 42); }

SheKeyFlags mac_flags() {
  SheKeyFlags f;
  f.key_usage_mac = true;
  return f;
}

TEST(She, RejectsBadUid) {
  EXPECT_THROW(She(Bytes(14), 1), std::invalid_argument);
  EXPECT_THROW(She(Bytes(16), 1), std::invalid_argument);
}

TEST(She, ProvisionAndUseEncKey) {
  She she = make_she();
  EXPECT_FALSE(she.has_key(SheSlot::kKey1));
  EXPECT_EQ(she.provision_key(SheSlot::kKey1, key_of(1), {}), SheError::kNoError);
  EXPECT_TRUE(she.has_key(SheSlot::kKey1));
  Block pt = key_of(0x77), ct, back;
  EXPECT_EQ(she.enc_ecb(SheSlot::kKey1, pt, &ct), SheError::kNoError);
  EXPECT_EQ(she.dec_ecb(SheSlot::kKey1, ct, &back), SheError::kNoError);
  EXPECT_EQ(back, pt);
  EXPECT_NE(ct, pt);
}

TEST(She, KeyUsageEnforced) {
  She she = make_she();
  she.provision_key(SheSlot::kKey1, key_of(1), mac_flags());
  Block out;
  EXPECT_EQ(she.enc_ecb(SheSlot::kKey1, key_of(0), &out), SheError::kKeyInvalid);
  EXPECT_EQ(she.generate_mac(SheSlot::kKey1, Bytes{1, 2, 3}, &out),
            SheError::kNoError);
  // Enc-only key cannot MAC.
  she.provision_key(SheSlot::kKey2, key_of(2), {});
  EXPECT_EQ(she.generate_mac(SheSlot::kKey2, Bytes{1}, &out),
            SheError::kKeyInvalid);
}

TEST(She, EmptySlotErrors) {
  She she = make_she();
  Block out;
  EXPECT_EQ(she.enc_ecb(SheSlot::kKey5, key_of(0), &out), SheError::kKeyEmpty);
  bool ok = false;
  EXPECT_EQ(she.verify_mac(SheSlot::kKey5, Bytes{}, Bytes(16), &ok),
            SheError::kKeyEmpty);
}

TEST(She, MacGenerateVerify) {
  She she = make_she();
  she.provision_key(SheSlot::kKey1, key_of(9), mac_flags());
  const Bytes msg{0xde, 0xad};
  Block mac;
  ASSERT_EQ(she.generate_mac(SheSlot::kKey1, msg, &mac), SheError::kNoError);
  bool ok = false;
  ASSERT_EQ(she.verify_mac(SheSlot::kKey1, msg,
                           util::BytesView(mac.data(), 16), &ok),
            SheError::kNoError);
  EXPECT_TRUE(ok);
  ASSERT_EQ(she.verify_mac(SheSlot::kKey1, Bytes{0xde, 0xae},
                           util::BytesView(mac.data(), 16), &ok),
            SheError::kNoError);
  EXPECT_FALSE(ok);
}

TEST(She, MemoryUpdateProtocolRoundTrip) {
  She she = make_she();
  const Block master = key_of(0x11);
  she.provision_key(SheSlot::kMasterEcuKey, master, {});
  const Block new_key = key_of(0x22);
  const auto msgs = She::build_update(test_uid(), SheSlot::kKey3,
                                      SheSlot::kMasterEcuKey, master, new_key,
                                      /*counter=*/1, mac_flags());
  SheError err;
  const auto proof = she.load_key(msgs, &err);
  ASSERT_TRUE(proof.has_value()) << static_cast<int>(err);
  EXPECT_TRUE(she.has_key(SheSlot::kKey3));
  EXPECT_EQ(she.counter(SheSlot::kKey3), 1u);
  EXPECT_TRUE(she.flags(SheSlot::kKey3).key_usage_mac);
  EXPECT_EQ(proof->m4.size(), 32u);
  EXPECT_EQ(proof->m5.size(), 16u);
  // The loaded key works.
  Block mac;
  EXPECT_EQ(she.generate_mac(SheSlot::kKey3, Bytes{1}, &mac), SheError::kNoError);
  Block expect = crypto::aes_cmac(util::BytesView(new_key.data(), 16), Bytes{1});
  EXPECT_EQ(mac, expect);
}

TEST(She, MemoryUpdateRejectsWrongAuthKey) {
  She she = make_she();
  she.provision_key(SheSlot::kMasterEcuKey, key_of(0x11), {});
  // Sender uses the wrong master key (attacker guessing).
  const auto msgs =
      She::build_update(test_uid(), SheSlot::kKey3, SheSlot::kMasterEcuKey,
                        key_of(0x99), key_of(0x22), 1, {});
  SheError err;
  EXPECT_FALSE(she.load_key(msgs, &err).has_value());
  EXPECT_EQ(err, SheError::kKeyUpdateError);
  EXPECT_FALSE(she.has_key(SheSlot::kKey3));
}

TEST(She, MemoryUpdateRejectsWrongUid) {
  She she = make_she();
  const Block master = key_of(0x11);
  she.provision_key(SheSlot::kMasterEcuKey, master, {});
  // Message built for a different vehicle's UID: must not load here. This is
  // the per-device key diversification the paper calls out as missing when
  // fleets share keys.
  const auto msgs = She::build_update(Bytes(15, 0x77), SheSlot::kKey3,
                                      SheSlot::kMasterEcuKey, master,
                                      key_of(0x22), 1, {});
  SheError err;
  EXPECT_FALSE(she.load_key(msgs, &err).has_value());
  EXPECT_EQ(err, SheError::kKeyUpdateError);
}

TEST(She, MemoryUpdateWildcardUid) {
  She she = make_she();
  const Block master = key_of(0x11);
  she.provision_key(SheSlot::kMasterEcuKey, master, {});
  // Wildcard (all-zero UID) fleet-wide update is accepted for a fresh slot...
  const auto msgs = She::build_update(Bytes(15, 0x00), SheSlot::kKey4,
                                      SheSlot::kMasterEcuKey, master,
                                      key_of(0x22), 1, {});
  EXPECT_TRUE(she.load_key(msgs).has_value());
  // ...but rejected once the slot sets wildcard_forbidden.
  SheKeyFlags wf;
  wf.wildcard_forbidden = true;
  const auto msgs2 = She::build_update(Bytes(15, 0x00), SheSlot::kKey4,
                                       SheSlot::kMasterEcuKey, master,
                                       key_of(0x23), 2, wf);
  EXPECT_TRUE(she.load_key(msgs2).has_value());
  const auto msgs3 = She::build_update(Bytes(15, 0x00), SheSlot::kKey4,
                                       SheSlot::kMasterEcuKey, master,
                                       key_of(0x24), 3, {});
  SheError err;
  EXPECT_FALSE(she.load_key(msgs3, &err).has_value());
  EXPECT_EQ(err, SheError::kKeyUpdateError);
}

TEST(She, RollbackProtectionByCounter) {
  She she = make_she();
  const Block master = key_of(0x11);
  she.provision_key(SheSlot::kMasterEcuKey, master, {});
  EXPECT_TRUE(she.load_key(She::build_update(test_uid(), SheSlot::kKey3,
                                             SheSlot::kMasterEcuKey, master,
                                             key_of(0x22), 5, {}))
                  .has_value());
  // Replaying an older (or equal) counter fails.
  SheError err;
  EXPECT_FALSE(she.load_key(She::build_update(test_uid(), SheSlot::kKey3,
                                              SheSlot::kMasterEcuKey, master,
                                              key_of(0x33), 5, {}),
                            &err)
                   .has_value());
  EXPECT_EQ(err, SheError::kKeyUpdateError);
  EXPECT_TRUE(she.load_key(She::build_update(test_uid(), SheSlot::kKey3,
                                             SheSlot::kMasterEcuKey, master,
                                             key_of(0x33), 6, {}))
                  .has_value());
}

TEST(She, WriteProtectionPermanent) {
  She she = make_she();
  const Block master = key_of(0x11);
  she.provision_key(SheSlot::kMasterEcuKey, master, {});
  SheKeyFlags wp;
  wp.write_protection = true;
  EXPECT_TRUE(she.load_key(She::build_update(test_uid(), SheSlot::kKey2,
                                             SheSlot::kMasterEcuKey, master,
                                             key_of(0x55), 1, wp))
                  .has_value());
  SheError err;
  EXPECT_FALSE(she.load_key(She::build_update(test_uid(), SheSlot::kKey2,
                                              SheSlot::kMasterEcuKey, master,
                                              key_of(0x66), 2, {}),
                            &err)
                   .has_value());
  EXPECT_EQ(err, SheError::kKeyWriteProtected);
  EXPECT_EQ(she.provision_key(SheSlot::kKey2, key_of(0x77), {}),
            SheError::kKeyWriteProtected);
}

TEST(She, SecretKeyNeverUpdatable) {
  EXPECT_THROW(She::build_update(test_uid(), SheSlot::kSecretKey,
                                 SheSlot::kMasterEcuKey, key_of(1), key_of(2), 1,
                                 {}),
               std::invalid_argument);
}

TEST(She, SecureBootFlow) {
  She she = make_she();
  she.provision_key(SheSlot::kBootMacKey, key_of(0xB0), mac_flags());
  const Bytes bootloader(1024, 0x5A);
  EXPECT_EQ(she.autonomous_bootstrap(bootloader), SheError::kNoError);
  EXPECT_TRUE(she.secure_boot(bootloader));
  EXPECT_TRUE(she.boot_ok());
  // Tampered bootloader fails.
  Bytes evil = bootloader;
  evil[100] ^= 1;
  EXPECT_FALSE(she.secure_boot(evil));
  EXPECT_FALSE(she.boot_ok());
}

TEST(She, BootProtectedKeyLockedUntilBootOk) {
  She she = make_she();
  she.provision_key(SheSlot::kBootMacKey, key_of(0xB0), mac_flags());
  SheKeyFlags bp = mac_flags();
  bp.boot_protection = true;
  she.provision_key(SheSlot::kKey1, key_of(0x01), bp);
  const Bytes fw(64, 1);
  she.autonomous_bootstrap(fw);
  Block mac;
  EXPECT_EQ(she.generate_mac(SheSlot::kKey1, Bytes{1}, &mac),
            SheError::kKeyNotAvailable);
  EXPECT_TRUE(she.secure_boot(fw));
  EXPECT_EQ(she.generate_mac(SheSlot::kKey1, Bytes{1}, &mac), SheError::kNoError);
}

TEST(She, DebuggerErasesProtectedKeys) {
  She she = make_she();
  SheKeyFlags dp;
  dp.debugger_protection = true;
  she.provision_key(SheSlot::kKey1, key_of(1), dp);
  she.provision_key(SheSlot::kKey2, key_of(2), {});
  she.attach_debugger();
  EXPECT_FALSE(she.has_key(SheSlot::kKey1));  // erased
  EXPECT_TRUE(she.has_key(SheSlot::kKey2));   // unprotected key survives
}

TEST(She, RamKeyPlainLoadAndUse) {
  She she = make_she();
  EXPECT_EQ(she.load_plain_key(key_of(0xAA)), SheError::kNoError);
  Block ct;
  EXPECT_EQ(she.enc_ecb(SheSlot::kRamKey, key_of(0), &ct), SheError::kNoError);
  Block mac;
  EXPECT_EQ(she.generate_mac(SheSlot::kRamKey, Bytes{1}, &mac), SheError::kNoError);
}

TEST(She, RndProducesVaryingBlocks) {
  She she = make_she();
  EXPECT_NE(she.rnd(), she.rnd());
  // Same seed -> same stream (deterministic simulation).
  She she2(test_uid(), 42);
  She she3(test_uid(), 42);
  EXPECT_EQ(she2.rnd(), she3.rnd());
}

TEST(She, LatencyModelMonotone) {
  EXPECT_GT(She::cmd_latency_us(256), She::cmd_latency_us(16));
  EXPECT_GT(She::cmd_latency_us(16), 0.0);
}

TEST(Flash, ProvisionStageActivate) {
  Flash flash;
  flash.provision(FirmwareImage{"fw", 1, Bytes(100, 1)});
  ASSERT_NE(flash.active(), nullptr);
  EXPECT_EQ(flash.active()->version, 1u);
  EXPECT_TRUE(flash.stage(FirmwareImage{"fw", 2, Bytes(100, 2)}));
  ASSERT_NE(flash.staged(), nullptr);
  EXPECT_EQ(flash.staged()->version, 2u);
  EXPECT_TRUE(flash.activate());
  EXPECT_EQ(flash.active()->version, 2u);
  EXPECT_EQ(flash.staged(), nullptr);
}

TEST(Flash, RollbackFloorBlocksDowngradeAfterCommit) {
  Flash flash;
  flash.provision(FirmwareImage{"fw", 5, Bytes(10, 1)});
  EXPECT_TRUE(flash.stage(FirmwareImage{"fw", 6, {}}));
  flash.activate();
  flash.commit();
  EXPECT_EQ(flash.rollback_floor(), 6u);
  EXPECT_FALSE(flash.stage(FirmwareImage{"fw", 5, {}}));  // downgrade
  EXPECT_FALSE(flash.revert());  // old v5 bank below floor
}

TEST(Flash, RevertBeforeCommitAllowed) {
  Flash flash;
  flash.provision(FirmwareImage{"fw", 5, Bytes(10, 1)});
  flash.stage(FirmwareImage{"fw", 6, {}});
  flash.activate();
  // Self-test failed before commit: we can fall back to v5.
  EXPECT_TRUE(flash.revert());
  EXPECT_EQ(flash.active()->version, 5u);
  EXPECT_EQ(flash.rollback_floor(), 5u);
}

TEST(Flash, ActivateWithoutStageFails) {
  Flash flash;
  flash.provision(FirmwareImage{"fw", 1, {}});
  EXPECT_FALSE(flash.activate());
}

TEST(Flash, DigestBindsNameVersionCode) {
  const FirmwareImage a{"fw", 1, Bytes{1, 2, 3}};
  FirmwareImage b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.version = 2;
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.name = "fw2";
  EXPECT_NE(a.digest(), b.digest());
  b = a;
  b.code[0] ^= 1;
  EXPECT_NE(a.digest(), b.digest());
}

// ---------------------------------------------------------------- Ecu

Ecu make_provisioned_ecu(sim::Scheduler& sched, const std::string& name,
                         std::uint64_t seed) {
  Ecu ecu(sched, name, seed);
  ecu.provision(FirmwareImage{name + "-fw", 1, Bytes(256, 0x42)}, key_of(0x10),
                key_of(0x20), key_of(0x30));
  return ecu;
}

TEST(Ecu, SecureBootToOperational) {
  sim::Scheduler sched;
  Ecu ecu = make_provisioned_ecu(sched, "brake", 1);
  EXPECT_EQ(ecu.state(), EcuState::kOff);
  EXPECT_EQ(ecu.boot(), EcuState::kOperational);
  EXPECT_TRUE(ecu.she().boot_ok());
}

TEST(Ecu, TamperedFirmwareDegrades) {
  sim::Scheduler sched;
  Ecu ecu = make_provisioned_ecu(sched, "brake", 1);
  // Attacker modifies flash contents after boot-MAC provisioning.
  FirmwareImage evil{"brake-fw", 1, Bytes(256, 0x66)};
  ecu.flash().stage(evil);
  ecu.flash().activate();
  EXPECT_EQ(ecu.boot(), EcuState::kDegraded);
}

TEST(Ecu, TamperMonitorZeroizes) {
  sim::Scheduler sched;
  Ecu ecu = make_provisioned_ecu(sched, "brake", 1);
  ecu.boot();
  ecu.report_voltage(5.0);  // in range
  EXPECT_EQ(ecu.state(), EcuState::kOperational);
  ecu.report_voltage(7.2);  // glitch attack
  EXPECT_EQ(ecu.state(), EcuState::kDegraded);
  EXPECT_TRUE(ecu.tamper().tripped);
  EXPECT_FALSE(ecu.she().has_key(SheSlot::kKey1));  // zeroized
}

TEST(Ecu, ClockTamper) {
  sim::Scheduler sched;
  Ecu ecu = make_provisioned_ecu(sched, "brake", 1);
  ecu.boot();
  ecu.report_clock(101.0);
  EXPECT_EQ(ecu.state(), EcuState::kOperational);
  ecu.report_clock(180.0);  // overclock glitch
  EXPECT_EQ(ecu.state(), EcuState::kDegraded);
}

TEST(Ecu, PartitionIsolation) {
  sim::Scheduler sched;
  Ecu ecu = make_provisioned_ecu(sched, "infotainment", 1);
  const auto radio = ecu.add_partition("radio");
  const auto nav = ecu.add_partition("nav");
  ecu.compromise_partition(radio);
  EXPECT_TRUE(ecu.partitions()[radio].compromised);
  EXPECT_FALSE(ecu.partitions()[nav].compromised);  // isolated
  // Without hypervisor isolation, compromise spreads.
  Ecu weak = make_provisioned_ecu(sched, "weak", 2);
  weak.set_isolation(false);
  const auto a = weak.add_partition("a");
  weak.add_partition("b");
  weak.compromise_partition(a);
  EXPECT_TRUE(weak.partitions()[1].compromised);
}

TEST(Ecu, SecuredCanMessaging) {
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500000);
  Ecu sender = make_provisioned_ecu(sched, "sensor", 1);
  Ecu receiver = make_provisioned_ecu(sched, "actuator", 2);
  sender.attach_to(&bus);
  receiver.attach_to(&bus);
  sender.boot();
  receiver.boot();

  const ivn::SecOcChannel ch(Bytes(16, 0x30));
  int verified = 0;
  receiver.subscribe(0x0F0, [&](const ivn::CanFrame& f, SimTime) {
    if (receiver.verify_secured(ch, 0x0F0, f.data).status ==
        ivn::SecOcStatus::kOk) {
      ++verified;
    }
  });
  EXPECT_TRUE(sender.send_secured(ch, 0x0F0, 0x0F0, Bytes{0x01, 0x02}));
  sched.run();
  EXPECT_EQ(verified, 1);
  EXPECT_EQ(receiver.frames_received(), 1u);
}

TEST(Ecu, DegradedModeBlocksNormalTraffic) {
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500000);
  Ecu ecu = make_provisioned_ecu(sched, "brake", 1);
  ecu.attach_to(&bus);
  ecu.boot();
  ecu.report_voltage(9.0);  // degrade
  EXPECT_FALSE(ecu.send_frame(0x100, Bytes{1}));
  EXPECT_TRUE(ecu.send_frame(0x7DF, Bytes{1}));  // diagnostics still allowed
  sched.run();
}

TEST(Ecu, OffEcuSendsNothing) {
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500000);
  Ecu ecu = make_provisioned_ecu(sched, "brake", 1);
  ecu.attach_to(&bus);
  EXPECT_FALSE(ecu.send_frame(0x100, Bytes{1}));
  ecu.boot();
  EXPECT_TRUE(ecu.send_frame(0x100, Bytes{1}));
  ecu.power_off();
  EXPECT_FALSE(ecu.send_frame(0x100, Bytes{1}));
  sched.run();
}

TEST(Ecu, LargePayloadUsesFd) {
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500000, 2000000);
  Ecu a = make_provisioned_ecu(sched, "a", 1);
  Ecu b = make_provisioned_ecu(sched, "b", 2);
  a.attach_to(&bus);
  b.attach_to(&bus);
  a.boot();
  b.boot();
  bool got = false;
  b.subscribe(0x200, [&](const ivn::CanFrame& f, SimTime) {
    got = true;
    EXPECT_EQ(f.format, ivn::CanFormat::kFd);
    EXPECT_EQ(f.data.size(), 24u);  // 22 rounded up to the next FD size
  });
  EXPECT_TRUE(a.send_frame(0x200, Bytes(22, 0x11)));
  sched.run();
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace aseck::ecu

namespace aseck::ecu {
namespace {

TEST(Ecu, SecuredMessagingSurvivesFdPadding) {
  // A 16-byte MAC pushes the PDU past 8 bytes; CAN FD pads to the next DLC
  // size. The length-prefixed adaptation must still verify.
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "can0", 500000, 2000000);
  crypto::Block k{};
  k.fill(0x30);
  Ecu sender(sched, "sensor", 11), receiver(sched, "actuator", 12);
  sender.provision(FirmwareImage{"s", 1, util::Bytes(64, 1)}, k, k, k);
  receiver.provision(FirmwareImage{"r", 1, util::Bytes(64, 1)}, k, k, k);
  sender.attach_to(&bus);
  receiver.attach_to(&bus);
  sender.boot();
  receiver.boot();
  const ivn::SecOcChannel ch(util::Bytes(16, 0x30),
                             ivn::SecOcConfig{16, 4, 16});
  int verified = 0;
  receiver.subscribe(0x1A0, [&](const ivn::CanFrame& f, sim::SimTime) {
    // Frame was padded to an FD size strictly larger than the PDU.
    EXPECT_GT(f.data.size(), 1u + 4u + 16u + 4u);
    if (receiver.verify_secured(ch, 0x1A0, f.data).status ==
        ivn::SecOcStatus::kOk) {
      ++verified;
    }
  });
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(sender.send_secured(ch, 0x1A0, 0x1A0, util::Bytes{1, 2, 3, 4}));
  }
  sched.run();
  EXPECT_EQ(verified, 5);
}

TEST(Ecu, VerifySecuredRejectsGarbage) {
  sim::Scheduler sched;
  Ecu e(sched, "x", 1);
  crypto::Block k{};
  e.provision(FirmwareImage{"f", 1, util::Bytes(16, 1)}, k, k, k);
  const ivn::SecOcChannel ch(util::Bytes(16, 0x30));
  EXPECT_EQ(e.verify_secured(ch, 1, util::Bytes{}).status,
            ivn::SecOcStatus::kTooShort);
  EXPECT_EQ(e.verify_secured(ch, 1, util::Bytes{200, 1, 2}).status,
            ivn::SecOcStatus::kTooShort);  // claimed length exceeds frame
}

}  // namespace
}  // namespace aseck::ecu
