// Tests for the core extensible architecture: policy engine, signed policy
// updates, suite registry / crypto agility, trade-off controller, layer
// manager, and the verification configuration-space model.

#include <gtest/gtest.h>

#include "core/layers.hpp"
#include "core/policy.hpp"
#include "core/registry.hpp"
#include "core/verification.hpp"

namespace aseck::core {
namespace {

using util::Bytes;

SecurityPolicy base_policy(std::uint32_t version = 1) {
  SecurityPolicy p;
  p.version = version;
  p.name = "test";
  p.values[keys::kSecocMacBytes] = PolicyValue(std::int64_t{8});
  p.values[keys::kIdsSensitivity] = PolicyValue(3.0);
  p.values[keys::kSecocSuite] = PolicyValue(std::string("cmac-aes128"));
  p.values[keys::kGatewayDefaultDeny] = PolicyValue(true);
  p.values[keys::kV2xMaxAgeMs] = PolicyValue(std::int64_t{250});
  p.values[keys::kPkesRttLimitUs] = PolicyValue(320.0);
  return p;
}

TEST(PolicyValue, TypedAccess) {
  EXPECT_EQ(PolicyValue(std::int64_t{5}).as_int(), 5);
  EXPECT_EQ(PolicyValue(2.5).as_double(), 2.5);
  EXPECT_EQ(PolicyValue(std::string("x")).as_string(), "x");
  EXPECT_EQ(PolicyValue(true).as_bool(), true);
  // Int promotes to double but not vice versa.
  EXPECT_EQ(PolicyValue(std::int64_t{5}).as_double(), 5.0);
  EXPECT_FALSE(PolicyValue(2.5).as_int().has_value());
  EXPECT_FALSE(PolicyValue(std::string("x")).as_bool().has_value());
}

TEST(Policy, GettersWithDefaults) {
  const SecurityPolicy p = base_policy();
  EXPECT_EQ(p.get_int(keys::kSecocMacBytes, 4), 8);
  EXPECT_EQ(p.get_int("missing.key", 42), 42);
  EXPECT_DOUBLE_EQ(p.get_double(keys::kIdsSensitivity, 4.0), 3.0);
  EXPECT_EQ(p.get_string(keys::kSecocSuite, "z"), "cmac-aes128");
  EXPECT_TRUE(p.get_bool(keys::kGatewayDefaultDeny, false));
}

TEST(Policy, SerializationBindsContent) {
  const SecurityPolicy a = base_policy();
  SecurityPolicy b = base_policy();
  EXPECT_EQ(a.serialize(), b.serialize());
  b.values[keys::kSecocMacBytes] = PolicyValue(std::int64_t{16});
  EXPECT_NE(a.serialize(), b.serialize());
  b = base_policy();
  b.version = 2;
  EXPECT_NE(a.serialize(), b.serialize());
}

TEST(PolicyStore, SignedUpdateLifecycle) {
  crypto::Drbg rng(1u);
  const auto authority = crypto::EcdsaPrivateKey::generate(rng);
  const auto rogue = crypto::EcdsaPrivateKey::generate(rng);
  PolicyStore store(authority.public_key(), base_policy(1));

  int notified = 0;
  store.subscribe([&](const SecurityPolicy& p) {
    ++notified;
    EXPECT_GE(p.version, 2u);
  });

  // Valid update.
  EXPECT_EQ(store.apply_update(SignedPolicy::sign(base_policy(2), authority)),
            PolicyStore::UpdateResult::kAccepted);
  EXPECT_EQ(store.active().version, 2u);
  EXPECT_EQ(notified, 1);

  // Version rollback.
  EXPECT_EQ(store.apply_update(SignedPolicy::sign(base_policy(2), authority)),
            PolicyStore::UpdateResult::kVersionRollback);
  EXPECT_EQ(store.apply_update(SignedPolicy::sign(base_policy(1), authority)),
            PolicyStore::UpdateResult::kVersionRollback);

  // Forged update.
  EXPECT_EQ(store.apply_update(SignedPolicy::sign(base_policy(3), rogue)),
            PolicyStore::UpdateResult::kBadSignature);
  EXPECT_EQ(store.active().version, 2u);

  // Tampered-after-signing update.
  SignedPolicy tampered = SignedPolicy::sign(base_policy(3), authority);
  tampered.policy.values[keys::kSecocMacBytes] = PolicyValue(std::int64_t{1});
  EXPECT_EQ(store.apply_update(tampered), PolicyStore::UpdateResult::kBadSignature);

  EXPECT_EQ(store.updates_accepted(), 1u);
  EXPECT_EQ(store.updates_rejected(), 4u);
}

TEST(Registry, BuiltinsAndRoundTrip) {
  const SuiteRegistry reg = SuiteRegistry::with_builtins();
  EXPECT_TRUE(reg.known("cmac-aes128"));
  EXPECT_TRUE(reg.known("hmac-sha256"));
  EXPECT_FALSE(reg.known("post-quantum-mac"));

  const Bytes key(16, 0x42);
  const Bytes msg = util::from_string("payload");
  for (const auto& name : reg.names()) {
    const auto suite = reg.create(name, key, 8);
    ASSERT_NE(suite, nullptr) << name;
    const Bytes tag = suite->tag(msg);
    EXPECT_EQ(tag.size(), 8u);
    EXPECT_TRUE(suite->verify(msg, tag));
    Bytes bad = tag;
    bad[0] ^= 1;
    EXPECT_FALSE(suite->verify(msg, bad));
    EXPECT_FALSE(suite->verify(util::from_string("other"), tag));
  }
  EXPECT_EQ(reg.create("nope", key, 8), nullptr);
}

TEST(Registry, RuntimeExtension) {
  // The extensibility story: a suite that did not exist at SOP is
  // registered in-field and becomes selectable by policy.
  SuiteRegistry reg = SuiteRegistry::with_builtins();
  class XorSuite : public MacSuite {  // toy "future" algorithm
   public:
    XorSuite(util::BytesView key, std::size_t n) : key_(key.begin(), key.end()), n_(n) {}
    std::string name() const override { return "xor-demo"; }
    std::size_t tag_bytes() const override { return n_; }
    util::Bytes tag(util::BytesView msg) const override {
      util::Bytes t(n_, 0);
      for (std::size_t i = 0; i < msg.size(); ++i) t[i % n_] ^= msg[i] ^ key_[i % key_.size()];
      return t;
    }
    bool verify(util::BytesView msg, util::BytesView tag_in) const override {
      return util::ct_equal(tag(msg), tag_in);
    }
   private:
    util::Bytes key_;
    std::size_t n_;
  };
  EXPECT_TRUE(reg.register_suite("xor-demo", [](util::BytesView k, std::size_t n) {
    return std::unique_ptr<MacSuite>(new XorSuite(k, n));
  }));
  EXPECT_TRUE(reg.known("xor-demo"));
  const auto suite = reg.create("xor-demo", Bytes(16, 1), 4);
  EXPECT_TRUE(suite->verify(Bytes{1, 2, 3}, suite->tag(Bytes{1, 2, 3})));
  // Re-registration replaces.
  EXPECT_FALSE(reg.register_suite("xor-demo", [](util::BytesView k, std::size_t n) {
    return std::unique_ptr<MacSuite>(new XorSuite(k, n));
  }));
}

TEST(Modes, SecurityIndexOrdering) {
  TradeoffController ctl;
  const double parked = ctl.mode_for(Environment::kParked).security_index();
  const double highway = ctl.mode_for(Environment::kHighway).security_index();
  const double urban = ctl.mode_for(Environment::kUrban).security_index();
  const double intersection =
      ctl.mode_for(Environment::kIntersection).security_index();
  EXPECT_LT(parked, highway);
  EXPECT_LT(highway, urban);
  EXPECT_LT(urban, intersection);
}

TEST(Modes, EnvironmentSwitchingWithHysteresis) {
  TradeoffController ctl;
  using util::SimTime;
  EXPECT_EQ(ctl.update(Environment::kHighway, 0.0, SimTime::from_s(1)).name,
            "highway");
  // Down-transition within the dwell window is suppressed...
  EXPECT_EQ(ctl.update(Environment::kParked, 0.0, SimTime::from_s(2)).name,
            "highway");
  // ...but allowed after the dwell expires.
  EXPECT_EQ(ctl.update(Environment::kParked, 0.0, SimTime::from_s(5)).name,
            "parked");
  // Up-transition (escalation) is immediate.
  EXPECT_EQ(ctl.update(Environment::kIntersection, 0.0, SimTime::from_s(5)).name,
            "intersection");
}

TEST(Modes, ThreatEscalationOverridesEnvironment) {
  TradeoffController ctl;
  using util::SimTime;
  EXPECT_EQ(ctl.update(Environment::kHighway, 0.9, SimTime::from_s(1)).name,
            "lockdown");
  EXPECT_EQ(ctl.current().secoc_mac_bytes, 16u);
  // Threat clears: back to environment mode after dwell.
  EXPECT_EQ(ctl.update(Environment::kHighway, 0.0, SimTime::from_s(10)).name,
            "highway");
}

TEST(Layers, CompilePolicyToTypedConfig) {
  const CompiledConfig cfg = compile_policy(base_policy());
  EXPECT_EQ(cfg.secoc.mac_bytes, 8u);
  EXPECT_DOUBLE_EQ(cfg.ids_sensitivity, 3.0);
  EXPECT_TRUE(cfg.gateway_default_deny);
  EXPECT_EQ(cfg.v2x_policy.max_age, util::SimTime::from_ms(250));
  EXPECT_DOUBLE_EQ(cfg.pkes_rtt_limit_us, 320.0);
  // Defaults for unspecified keys.
  EXPECT_EQ(cfg.mac_suite, "cmac-aes128");
  EXPECT_DOUBLE_EQ(cfg.gateway_rate_limit_fps, 0.0);
}

TEST(Layers, AppliesToBoundComponents) {
  sim::Scheduler sched;
  ivn::CanBus external(sched, "telematics", 500000);
  ivn::CanBus internal(sched, "powertrain", 500000);
  gateway::SecurityGateway gw(sched, "cgw");
  gw.add_domain("telematics", &external);
  gw.add_domain("powertrain", &internal);

  crypto::Block k{};
  k.fill(0x70);
  access::PkesCar pkes(k, access::PkesConfig{}, 1);

  LayerManager mgr;
  mgr.bind_gateway(&gw, {"telematics"});
  mgr.bind_pkes(&pkes);

  SecurityPolicy p = base_policy();
  p.values[keys::kGatewayRateLimit] = PolicyValue(50.0);
  gateway::FirewallRule allow_diag;
  allow_diag.id_min = 0x700;
  allow_diag.id_max = 0x7FF;
  allow_diag.allow = true;
  p.firewall_rules.push_back(allow_diag);
  mgr.apply(p);

  EXPECT_EQ(mgr.applications(), 1u);
  EXPECT_DOUBLE_EQ(pkes.config().rtt_limit_us, 320.0);

  // SecOC channels honor the policy's MAC length.
  const auto ch = mgr.make_secoc_channel(Bytes(16, 0x11));
  EXPECT_EQ(ch.config().mac_bytes, 8u);
  EXPECT_EQ(ch.overhead(), 8u + 1u);
}

TEST(Layers, CryptoAgilityMigration) {
  LayerManager mgr;
  SecurityPolicy p1 = base_policy(1);
  mgr.apply(p1);
  const Bytes key(16, 0x42);
  auto suite1 = mgr.make_mac_suite(key);
  EXPECT_EQ(suite1->name(), "cmac-aes128");

  // In-field migration: policy v2 flips the suite.
  SecurityPolicy p2 = base_policy(2);
  p2.values[keys::kSecocSuite] = PolicyValue(std::string("hmac-sha256"));
  mgr.apply(p2);
  auto suite2 = mgr.make_mac_suite(key);
  EXPECT_EQ(suite2->name(), "hmac-sha256");
  // Old tags no longer verify under the new suite (clean cutover).
  const Bytes msg = util::from_string("m");
  EXPECT_FALSE(suite2->verify(msg, suite1->tag(msg)));

  // Unknown suite in policy falls back to baseline instead of failing.
  SecurityPolicy p3 = base_policy(3);
  p3.values[keys::kSecocSuite] = PolicyValue(std::string("pqc-dilithium-mac"));
  mgr.apply(p3);
  EXPECT_EQ(mgr.make_mac_suite(key)->name(), "cmac-aes128");
}

TEST(Verification, CountsAndReduction) {
  ConfigSpace space;
  space.add({"mac_len", 4, false});
  space.add({"suite", 2, false});
  space.add({"ids_mode", 3, true});
  space.add({"pseudonym", 5, true});
  EXPECT_EQ(space.exhaustive_count(), 4u * 2 * 3 * 5);
  EXPECT_EQ(space.reduced_count(), 4u * 2 + 3 + 5);
}

TEST(Verification, PairwiseArrayCoversAllPairs) {
  ConfigSpace space;
  space.add({"a", 3, false});
  space.add({"b", 3, false});
  space.add({"c", 2, false});
  space.add({"d", 2, false});
  const auto rows = space.pairwise_array(7);
  EXPECT_TRUE(space.covers_all_pairs(rows));
  // Pairwise must beat exhaustive (36) and be at least max_i*max_j (9).
  EXPECT_LT(rows.size(), 36u);
  EXPECT_GE(rows.size(), 9u);
}

TEST(Verification, PairwiseScalesSubExponentially) {
  ConfigSpace small, large;
  for (int i = 0; i < 4; ++i) small.add({"p" + std::to_string(i), 2, false});
  for (int i = 0; i < 10; ++i) large.add({"p" + std::to_string(i), 2, false});
  const auto rows_small = small.pairwise_array(1);
  const auto rows_large = large.pairwise_array(1);
  EXPECT_TRUE(small.covers_all_pairs(rows_small));
  EXPECT_TRUE(large.covers_all_pairs(rows_large));
  // Exhaustive grows 16 -> 1024; pairwise grows far slower.
  EXPECT_LT(rows_large.size(), rows_small.size() * 8);
  EXPECT_LT(rows_large.size(), 30u);
}

TEST(Verification, EdgeCases) {
  ConfigSpace empty;
  EXPECT_EQ(empty.exhaustive_count(), 1u);
  EXPECT_TRUE(empty.pairwise_array(1).empty());
  ConfigSpace one;
  one.add({"only", 3, false});
  EXPECT_EQ(one.pairwise_array(1).size(), 3u);
}

}  // namespace
}  // namespace aseck::core
