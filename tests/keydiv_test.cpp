// Tests for fleet key diversification.

#include <gtest/gtest.h>

#include "ecu/keydiv.hpp"

namespace aseck::ecu {
namespace {

using util::Bytes;

crypto::Block master() {
  crypto::Block m;
  m.fill(0xF1);
  return m;
}

TEST(KeyDiv, DeterministicPerUidAndPurpose) {
  const Bytes uid_a(15, 0x01), uid_b(15, 0x02);
  const auto k1 = derive_vehicle_key(master(), uid_a, "secoc");
  EXPECT_EQ(k1, derive_vehicle_key(master(), uid_a, "secoc"));
  // Distinct per UID...
  EXPECT_NE(k1, derive_vehicle_key(master(), uid_b, "secoc"));
  // ...and per purpose...
  EXPECT_NE(k1, derive_vehicle_key(master(), uid_a, "ota-auth"));
  // ...and per fleet master.
  crypto::Block other = master();
  other[0] ^= 1;
  EXPECT_NE(k1, derive_vehicle_key(other, uid_a, "secoc"));
}

TEST(KeyDiv, NoAmbiguityBetweenUidAndPurposeBoundary) {
  // uid || purpose concatenation must not collide across a shifted split.
  // With fixed 15-byte UIDs this cannot happen structurally; verify a
  // constructed near-collision differs anyway.
  Bytes uid1(15, 0x41);          // "AAAAAAAAAAAAAAA"
  Bytes uid2 = uid1;
  uid2[14] = 0x42;               // ...B
  const auto k1 = derive_vehicle_key(master(), uid1, "Bx");
  const auto k2 = derive_vehicle_key(master(), uid2, "x");  // shifted content
  // Same concatenated bytes except for length; SHE padding includes the
  // length, but here lengths match — the contents do too except order.
  // Either way the keys must differ because the byte streams differ... they
  // are actually identical streams: uid1+"Bx" == uid2+"x"? uid1 ends 'A',
  // so streams differ at byte 14 ('A' vs 'B'). Assert inequality.
  EXPECT_NE(k1, k2);
}

TEST(KeyDiv, ProvisionDiversifiedBootsAndIsolates) {
  sim::Scheduler sched;
  Ecu a(sched, "a", 1), b(sched, "b", 2);
  provision_diversified(a, master(), FirmwareImage{"fw", 1, Bytes(256, 0x11)});
  provision_diversified(b, master(), FirmwareImage{"fw", 1, Bytes(256, 0x11)});
  EXPECT_EQ(a.boot(), EcuState::kOperational);
  EXPECT_EQ(b.boot(), EcuState::kOperational);

  // SecOC keys differ between the two ECUs: a MAC from A fails on B.
  crypto::Block mac_a, mac_b;
  ASSERT_EQ(a.she().generate_mac(SheSlot::kKey1, Bytes{0x01}, &mac_a),
            SheError::kNoError);
  ASSERT_EQ(b.she().generate_mac(SheSlot::kKey1, Bytes{0x01}, &mac_b),
            SheError::kNoError);
  EXPECT_NE(mac_a, mac_b);
}

TEST(KeyDiv, BackendCanRederiveWithoutDatabase) {
  // The backend, knowing only fleet master + UID, re-derives the exact key
  // the vehicle holds (tested via a successful SHE key update).
  sim::Scheduler sched;
  Ecu unit(sched, "unit", 7);
  provision_diversified(unit, master(), FirmwareImage{"fw", 1, Bytes(64, 1)});
  const crypto::Block backend_master =
      derive_vehicle_key(master(), unit.she().uid(), "master-ecu");
  crypto::Block new_key;
  new_key.fill(0x33);
  const auto msgs = She::build_update(unit.she().uid(), SheSlot::kKey2,
                                      SheSlot::kMasterEcuKey, backend_master,
                                      new_key, 1, SheKeyFlags{});
  EXPECT_TRUE(unit.she().load_key(msgs).has_value());
}

}  // namespace
}  // namespace aseck::ecu
