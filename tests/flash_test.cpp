// Journaled flash: streaming installs, power-loss atomicity, boot-time
// recovery, watermark resume semantics, and the anti-rollback edge cases.

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "ecu/flash.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"

namespace aseck::ecu {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using util::Bytes;
using util::SimTime;

Bytes patterned(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 37 + salt) & 0xFF);
  }
  return b;
}

FirmwareImage image(std::uint32_t version, std::size_t bytes,
                    std::uint8_t salt) {
  return FirmwareImage{"fw", version, patterned(bytes, salt)};
}

Flash::StageRequest request_for(const FirmwareImage& img) {
  Flash::StageRequest req;
  req.name = img.name;
  req.version = img.version;
  req.total_bytes = img.code.size();
  req.sha256 = crypto::sha256_bytes(img.code);
  return req;
}

/// Arms a single kPowerLoss window cutting at exactly write-op `k`.
struct CutRig {
  Scheduler sched;
  FaultPlan plan{sched, 1};
  sim::FaultPort* arm(std::int64_t k) {
    FaultSpec spec;
    spec.target = "flash";
    spec.kind = FaultKind::kPowerLoss;
    spec.probability = 0.0;
    spec.page_index = k;
    plan.window(SimTime::zero(), SimTime::from_s(3600), spec);
    sched.run_until(SimTime::from_ms(1));
    return &plan.port("flash");
  }
};

TEST(FlashJournal, StreamingInstallTracksWatermarkPerPage) {
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  const FirmwareImage next = image(2, 2 * Flash::kPageSize + 100, 0x02);
  ASSERT_TRUE(flash.stage_begin(request_for(next)));
  EXPECT_EQ(flash.staging_watermark(), 0u);

  // Half a page: buffered volatile, nothing durable yet.
  util::BytesView view(next.code);
  ASSERT_EQ(flash.stage_write(view.subspan(0, Flash::kPageSize / 2)),
            FlashWrite::kOk);
  EXPECT_EQ(flash.staging_watermark(), 0u);
  // Completing the page programs it.
  ASSERT_EQ(flash.stage_write(view.subspan(Flash::kPageSize / 2,
                                           Flash::kPageSize / 2)),
            FlashWrite::kOk);
  EXPECT_EQ(flash.staging_watermark(), Flash::kPageSize);
  // The rest (one full page + a 100-byte tail page).
  ASSERT_EQ(flash.stage_write(view.subspan(Flash::kPageSize)), FlashWrite::kOk);
  EXPECT_EQ(flash.staging_watermark(), next.code.size());

  ASSERT_EQ(flash.stage_finish(), FlashWrite::kOk);
  ASSERT_NE(flash.staged(), nullptr);
  EXPECT_EQ(flash.staged()->code, next.code);
  EXPECT_TRUE(flash.activate());
  EXPECT_EQ(flash.active()->version, 2u);
}

TEST(FlashJournal, OverflowingDeclaredLengthIsRejected) {
  Flash flash;
  const FirmwareImage next = image(2, 100, 0x02);
  ASSERT_TRUE(flash.stage_begin(request_for(next)));
  const Bytes too_much(101, 0xEE);
  EXPECT_EQ(flash.stage_write(too_much), FlashWrite::kRejected);
}

TEST(FlashJournal, FinishRejectsWrongBytesAndErasesJournal) {
  Flash flash;
  const FirmwareImage next = image(2, 600, 0x02);
  ASSERT_TRUE(flash.stage_begin(request_for(next)));
  ASSERT_EQ(flash.stage_write(patterned(600, 0x77)), FlashWrite::kOk);
  EXPECT_EQ(flash.stage_finish(), FlashWrite::kRejected);
  EXPECT_EQ(flash.staged(), nullptr);
  EXPECT_EQ(flash.staging_watermark(), 0u);
}

// Satellite: re-staging the same image digest resumes at the watermark;
// a different digest resets the journal (no stale-watermark resume).
TEST(FlashJournal, RestageSameDigestResumesAtWatermark) {
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  const FirmwareImage next = image(2, 3 * Flash::kPageSize, 0x02);
  ASSERT_TRUE(flash.stage_begin(request_for(next)));
  ASSERT_EQ(flash.stage_write(
                util::BytesView(next.code).subspan(0, 2 * Flash::kPageSize)),
            FlashWrite::kOk);
  EXPECT_EQ(flash.staging_watermark(), 2 * Flash::kPageSize);

  // Re-open with the same digest: the two durable pages survive.
  ASSERT_TRUE(flash.stage_begin(request_for(next)));
  EXPECT_EQ(flash.staging_watermark(), 2 * Flash::kPageSize);
  ASSERT_EQ(flash.stage_write(
                util::BytesView(next.code).subspan(2 * Flash::kPageSize)),
            FlashWrite::kOk);
  EXPECT_EQ(flash.stage_finish(), FlashWrite::kOk);
  EXPECT_EQ(flash.staged()->code, next.code);
}

TEST(FlashJournal, RestageDifferentDigestResetsJournal) {
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  const FirmwareImage a = image(2, 3 * Flash::kPageSize, 0x02);
  ASSERT_TRUE(flash.stage_begin(request_for(a)));
  ASSERT_EQ(flash.stage_write(
                util::BytesView(a.code).subspan(0, 2 * Flash::kPageSize)),
            FlashWrite::kOk);
  EXPECT_EQ(flash.staging_watermark(), 2 * Flash::kPageSize);

  // Same version/name/length, different bytes: the old watermark must NOT
  // leak into this install.
  const FirmwareImage b = image(2, 3 * Flash::kPageSize, 0x99);
  ASSERT_TRUE(flash.stage_begin(request_for(b)));
  EXPECT_EQ(flash.staging_watermark(), 0u);
  ASSERT_EQ(flash.stage_write(b.code), FlashWrite::kOk);
  ASSERT_EQ(flash.stage_finish(), FlashWrite::kOk);
  EXPECT_EQ(flash.staged()->code, b.code);
}

TEST(FlashJournal, LegacyStageOverwritesPreviouslyStagedImage) {
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  ASSERT_TRUE(flash.stage(image(2, 5000, 0x02)));
  ASSERT_NE(flash.staged(), nullptr);
  const FirmwareImage replacement = image(3, 7000, 0x03);
  ASSERT_TRUE(flash.stage(replacement));
  ASSERT_NE(flash.staged(), nullptr);
  EXPECT_EQ(flash.staged()->version, 3u);
  EXPECT_EQ(flash.staged()->code, replacement.code);
}

// Satellite: revert() must fail once commit() raised the rollback floor
// above the previous bank's version.
TEST(FlashJournal, RevertFailsAfterCommitRaisesFloorAbovePreviousBank) {
  Flash flash;
  flash.provision(image(5, 1000, 0x05));
  ASSERT_TRUE(flash.stage(image(6, 1200, 0x06)));
  ASSERT_TRUE(flash.activate());
  flash.commit();
  EXPECT_EQ(flash.rollback_floor(), 6u);
  // The previous bank holds v5 < floor 6: reverting is a permanent failure.
  EXPECT_FALSE(flash.revert());
  EXPECT_EQ(flash.active()->version, 6u);
}

TEST(FlashPowerLoss, CutMidPageLeavesTornPageDiscardedAtBoot) {
  CutRig rig;
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  // Ops: 0 = staging header, 1..N = pages. Cut inside page 2 (op index 2).
  flash.set_fault_port(rig.arm(2));
  const FirmwareImage next = image(2, 4 * Flash::kPageSize, 0x02);
  EXPECT_FALSE(flash.stage(next));
  EXPECT_TRUE(flash.lost_power());
  // Down until boot: every write is refused.
  EXPECT_FALSE(flash.stage(next));

  const Flash::BootReport rep = flash.boot();
  EXPECT_TRUE(rep.bootable);
  EXPECT_EQ(rep.active_version, 1u);
  EXPECT_EQ(rep.torn_pages_discarded, 1u);
  EXPECT_TRUE(rep.staging_resumable);
  EXPECT_EQ(rep.resume_watermark, Flash::kPageSize);  // page 1 survived

  // Resume completes with only the missing pages rewritten.
  ASSERT_TRUE(flash.stage(next));
  ASSERT_TRUE(flash.activate());
  flash.commit();
  EXPECT_EQ(flash.active()->code, next.code);
}

TEST(FlashPowerLoss, CutAtActivationMarkerKeepsStagedState) {
  CutRig rig;
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  const FirmwareImage next = image(2, Flash::kPageSize, 0x02);
  ASSERT_TRUE(flash.stage(next));
  // Attach the port after staging: the very next write op (index 0) is the
  // ACTIVE header itself.
  flash.set_fault_port(rig.arm(0));
  EXPECT_FALSE(flash.activate());
  EXPECT_TRUE(flash.lost_power());

  const Flash::BootReport rep = flash.boot();
  EXPECT_TRUE(rep.bootable);
  EXPECT_EQ(rep.active_version, 1u);  // old image still boots
  EXPECT_EQ(rep.torn_headers_discarded, 1u);
  // The STAGED image survived the torn header copy intact.
  ASSERT_NE(flash.staged(), nullptr);
  EXPECT_EQ(flash.staged()->version, 2u);
  ASSERT_TRUE(flash.activate());
  flash.commit();
  EXPECT_EQ(flash.active()->version, 2u);
}

TEST(FlashPowerLoss, CutAtCommitMarkerRebootBeforeDeadlineStaysActive) {
  CutRig rig;
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  const FirmwareImage next = image(2, Flash::kPageSize, 0x02);
  ASSERT_TRUE(flash.stage(next));
  const SimTime t0 = SimTime::from_s(1);
  ASSERT_TRUE(flash.activate(t0, SimTime::from_s(30)));
  flash.set_fault_port(rig.arm(0));  // next write op = commit marker
  flash.commit();
  EXPECT_TRUE(flash.lost_power());
  EXPECT_EQ(flash.rollback_floor(), 1u);  // fuse write never happened

  const Flash::BootReport rep = flash.boot(t0 + SimTime::from_s(5));
  EXPECT_TRUE(rep.bootable);
  EXPECT_FALSE(rep.auto_reverted);
  EXPECT_EQ(rep.active_version, 2u);  // still inside the confirm window
  EXPECT_TRUE(flash.confirm_pending());
  flash.commit();
  EXPECT_EQ(flash.rollback_floor(), 2u);
}

TEST(FlashPowerLoss, LapsedConfirmDeadlineAutoRevertsAtBoot) {
  Flash flash;
  const FirmwareImage oldf = image(1, 1000, 0x01);
  flash.provision(oldf);
  ASSERT_TRUE(flash.stage(image(2, Flash::kPageSize, 0x02)));
  const SimTime t0 = SimTime::from_s(1);
  ASSERT_TRUE(flash.activate(t0, SimTime::from_s(30)));
  // Never confirmed; reboot lands after the deadline.
  const Flash::BootReport rep = flash.boot(t0 + SimTime::from_s(31));
  EXPECT_TRUE(rep.bootable);
  EXPECT_TRUE(rep.auto_reverted);
  EXPECT_EQ(rep.active_version, 1u);
  ASSERT_NE(flash.active(), nullptr);
  EXPECT_EQ(flash.active()->code, oldf.code);
}

TEST(FlashPowerLoss, BootRepairsRollbackFloorFromConfirmedSlot) {
  Flash flash;
  flash.provision(image(3, 1000, 0x03));
  ASSERT_TRUE(flash.stage(image(4, 2000, 0x04)));
  ASSERT_TRUE(flash.activate());
  flash.commit();
  EXPECT_EQ(flash.rollback_floor(), 4u);
  // boot() must keep (or re-derive) the floor from the CONFIRMED slot.
  const Flash::BootReport rep = flash.boot();
  EXPECT_TRUE(rep.bootable);
  EXPECT_EQ(rep.active_version, 4u);
  EXPECT_EQ(flash.rollback_floor(), 4u);
}

TEST(FlashPowerLoss, ExhaustiveCutSweepNeverBricksAndAlwaysConverges) {
  const FirmwareImage oldf = image(1, 2 * Flash::kPageSize + 11, 0x01);
  const FirmwareImage next = image(2, 3 * Flash::kPageSize + 500, 0x02);
  for (std::int64_t k = 0; k < 32; ++k) {
    CutRig rig;
    Flash flash;
    flash.provision(oldf);
    flash.set_fault_port(rig.arm(k));
    const SimTime t0 = SimTime::from_s(1);
    bool cut = false;
    if (!flash.stage(next)) {
      ASSERT_TRUE(flash.lost_power()) << "k=" << k;
      cut = true;
    } else if (!flash.activate(t0, SimTime::from_s(30))) {
      ASSERT_TRUE(flash.lost_power()) << "k=" << k;
      cut = true;
    } else {
      flash.commit();
      cut = flash.lost_power();
    }
    if (cut) {
      const Flash::BootReport rep = flash.boot(t0 + SimTime::from_s(2));
      ASSERT_TRUE(rep.bootable) << "bricked at k=" << k;
      const FirmwareImage* a = flash.active();
      ASSERT_NE(a, nullptr) << "k=" << k;
      ASSERT_TRUE(a->code == oldf.code || a->code == next.code)
          << "torn image booted at k=" << k;
      if (flash.confirm_pending()) {
        flash.commit();
      } else if (a->version != next.version) {
        ASSERT_TRUE(flash.stage(next)) << "k=" << k;
        ASSERT_TRUE(flash.activate(t0 + SimTime::from_s(2))) << "k=" << k;
        flash.commit();
      }
    }
    ASSERT_NE(flash.active(), nullptr) << "k=" << k;
    EXPECT_EQ(flash.active()->code, next.code) << "k=" << k;
    EXPECT_EQ(flash.rollback_floor(), 2u) << "k=" << k;
  }
}

TEST(FlashPowerLoss, PoissonPerWriteCutsAreSurvivable) {
  // Bernoulli(p) per write op, many trials: every trial must end bootable.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scheduler sched;
    FaultPlan plan(sched, seed);
    FaultSpec spec;
    spec.target = "flash";
    spec.kind = FaultKind::kPowerLoss;
    spec.probability = 0.05;
    plan.window(SimTime::zero(), SimTime::from_s(3600), spec);
    sched.run_until(SimTime::from_ms(1));

    const FirmwareImage oldf = image(1, Flash::kPageSize, 0x01);
    const FirmwareImage next = image(2, 6 * Flash::kPageSize, 0x02);
    Flash flash;
    flash.provision(oldf);
    flash.set_fault_port(&plan.port("flash"));
    const SimTime t0 = SimTime::from_s(1);
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (flash.active() && flash.active()->version == 2 &&
          !flash.confirm_pending()) {
        break;
      }
      if (flash.lost_power()) {
        const Flash::BootReport rep = flash.boot(t0);
        ASSERT_TRUE(rep.bootable) << "seed=" << seed;
        const FirmwareImage* a = flash.active();
        ASSERT_TRUE(a->code == oldf.code || a->code == next.code)
            << "seed=" << seed;
        continue;
      }
      if (flash.confirm_pending()) {
        flash.commit();
      } else if (flash.staged()) {
        flash.activate(t0, SimTime::from_s(30));
      } else {
        flash.stage(next);
      }
    }
    ASSERT_NE(flash.active(), nullptr) << "seed=" << seed;
  }
}

TEST(FlashPowerLoss, TornHeaderCopiesAreChargedInScanLatency) {
  // Pin the closed form: four intact header copies plus one read per torn
  // spare copy examined and discarded, then the per-page CRC scan.
  EXPECT_EQ(Flash::scan_latency_us(10), 5.0 * 4 + 8.0 * 10);
  EXPECT_EQ(Flash::scan_latency_us(10, 1), 5.0 * 5 + 8.0 * 10);
  EXPECT_EQ(Flash::scan_latency_us(0, 2), 5.0 * 6);

  // End to end: a cut at the activation header leaves one torn spare, so
  // that recovery boot must report exactly one header-read more than the
  // clean re-boot right after it (which has no torn copy left to examine).
  CutRig rig;
  Flash flash;
  flash.provision(image(1, 1000, 0x01));
  ASSERT_TRUE(flash.stage(image(2, Flash::kPageSize, 0x02)));
  flash.set_fault_port(rig.arm(0));
  ASSERT_FALSE(flash.activate());

  const Flash::BootReport torn = flash.boot();
  EXPECT_EQ(torn.torn_headers_discarded, 1u);
  const Flash::BootReport clean = flash.boot();
  EXPECT_EQ(clean.torn_headers_discarded, 0u);
  EXPECT_EQ(torn.scan_us, clean.scan_us + Flash::kHeaderReadUs);
}

}  // namespace
}  // namespace aseck::ecu
