// Tests for LIN, FlexRay, Ethernet switch, and SecOC.

#include <gtest/gtest.h>

#include <cmath>

#include "ivn/ethernet.hpp"
#include "ivn/flexray.hpp"
#include "ivn/lin.hpp"
#include "ivn/secoc.hpp"
#include "util/rng.hpp"

namespace aseck::ivn {
namespace {

// ---------------------------------------------------------------- LIN

class EchoSlave : public LinSlave {
 public:
  EchoSlave(std::string name, std::uint8_t owned_id, util::Bytes payload)
      : LinSlave(std::move(name)), id_(owned_id), payload_(std::move(payload)) {}
  std::optional<util::Bytes> respond(std::uint8_t id) override {
    if (id == id_) {
      ++polled;
      return payload_;
    }
    return std::nullopt;
  }
  void on_frame(const LinFrame& frame, SimTime) override {
    observed.push_back(frame);
  }
  int polled = 0;
  std::vector<LinFrame> observed;

 private:
  std::uint8_t id_;
  util::Bytes payload_;
};

TEST(Lin, ProtectedIdParity) {
  // Known PIDs: id 0x00 -> 0x80, id 0x01 -> 0xC1, id 0x3C -> 0x3C.
  EXPECT_EQ(lin_protected_id(0x00), 0x80);
  EXPECT_EQ(lin_protected_id(0x01), 0xC1);
  EXPECT_EQ(lin_protected_id(0x3C), 0x3C);
  // Parity bits ignore upper input bits.
  EXPECT_EQ(lin_protected_id(0x40), lin_protected_id(0x00));
}

TEST(Lin, ChecksumInvertedSum) {
  // Classic checksum over {0x02, 0x03} = ~(0x05) = 0xFA.
  EXPECT_EQ(lin_checksum(0, util::Bytes{0x02, 0x03}, false), 0xFA);
  // Enhanced includes PID; carry wraps.
  const std::uint8_t pid = lin_protected_id(0x10);
  const std::uint8_t cs = lin_checksum(pid, util::Bytes{0xFF, 0xFF}, true);
  std::uint32_t sum = pid;
  for (int i = 0; i < 2; ++i) {
    sum += 0xFF;
    if (sum >= 256) sum -= 255;
  }
  EXPECT_EQ(cs, static_cast<std::uint8_t>(~sum & 0xff));
}

TEST(Lin, ScheduleCyclesAndDelivers) {
  sim::Scheduler sched;
  LinMaster master(sched, "lin0");
  EchoSlave s1("window", 0x10, {0x01});
  EchoSlave s2("seat", 0x11, {0x02, 0x03});
  master.attach(&s1);
  master.attach(&s2);
  master.set_schedule({{0x10, SimTime::from_ms(10)}, {0x11, SimTime::from_ms(10)}});
  master.start();
  sched.run_until(SimTime::from_ms(95));
  master.stop();
  sched.run();
  EXPECT_EQ(s1.polled, 5);  // slots at 0,20,40,60,80
  EXPECT_EQ(s2.polled, 5);
  EXPECT_EQ(master.frames_ok(), 10u);
  EXPECT_EQ(master.no_response(), 0u);
  EXPECT_FALSE(s1.observed.empty());  // heard the other slave's frames
}

TEST(Lin, NoResponderCounted) {
  sim::Scheduler sched;
  LinMaster master(sched, "lin0");
  EchoSlave s1("only", 0x10, {0x01});
  master.attach(&s1);
  master.set_schedule({{0x22, SimTime::from_ms(10)}});
  master.start();
  sched.run_until(SimTime::from_ms(25));
  master.stop();
  sched.run();
  EXPECT_EQ(master.no_response(), 3u);
  EXPECT_THROW(LinMaster(sched, "x", 0), std::invalid_argument);
}

TEST(Lin, CorruptionDetectedByChecksum) {
  sim::Scheduler sched;
  LinMaster master(sched, "lin0");
  EchoSlave s1("sensor", 0x10, {0xAA, 0xBB});
  EchoSlave s2("consumer", 0x3F, {});
  master.attach(&s1);
  master.attach(&s2);
  master.set_schedule({{0x10, SimTime::from_ms(10)}});
  master.set_corruptor([](util::Bytes& data) {
    data[0] ^= 0xFF;
    return true;
  });
  master.start();
  sched.run_until(SimTime::from_ms(35));
  master.stop();
  sched.run();
  EXPECT_EQ(master.checksum_errors(), 4u);
  EXPECT_EQ(master.frames_ok(), 0u);
  EXPECT_TRUE(s2.observed.empty());  // corrupted frames are not delivered
}

// ---------------------------------------------------------------- FlexRay

class StaticSender : public FlexRayNode {
 public:
  StaticSender(std::string name, util::Bytes payload)
      : FlexRayNode(std::move(name)), payload_(std::move(payload)) {}
  std::optional<util::Bytes> static_payload(std::uint16_t, std::uint8_t) override {
    ++asked;
    return send_null ? std::nullopt : std::optional<util::Bytes>(payload_);
  }
  void on_frame(const FlexRayFrame& f, SimTime at) override {
    rx.push_back(f);
    rx_at.push_back(at);
  }
  int asked = 0;
  bool send_null = false;
  std::vector<FlexRayFrame> rx;
  std::vector<SimTime> rx_at;

 private:
  util::Bytes payload_;
};

TEST(FlexRay, StaticSlotsDeterministicTiming) {
  sim::Scheduler sched;
  FlexRayConfig cfg;
  cfg.static_slots = 4;
  cfg.dynamic_minislots = 10;
  FlexRayBus bus(sched, "fr0", cfg);
  StaticSender steering("steering", {0x01});
  StaticSender braking("braking", {0x02});
  bus.assign_static_slot(1, &steering);
  bus.assign_static_slot(3, &braking);
  bus.start();
  sched.run_until(cfg.cycle_length());
  bus.stop();
  sched.run();
  // steering hears braking's slot-3 frame at slot offset 2*50us each cycle.
  ASSERT_FALSE(steering.rx.empty());
  EXPECT_EQ(steering.rx[0].slot_id, 3);
  EXPECT_EQ(steering.rx_at[0], cfg.static_slot_len * 2);
  ASSERT_FALSE(braking.rx.empty());
  EXPECT_EQ(braking.rx[0].slot_id, 1);
  EXPECT_EQ(braking.rx_at[0], SimTime::zero());
}

TEST(FlexRay, SlotOwnershipExclusive) {
  sim::Scheduler sched;
  FlexRayBus bus(sched, "fr0");
  StaticSender a("a", {}), b("b", {});
  bus.assign_static_slot(1, &a);
  EXPECT_THROW(bus.assign_static_slot(1, &b), std::invalid_argument);
  EXPECT_THROW(bus.assign_static_slot(0, &b), std::invalid_argument);
  EXPECT_THROW(bus.assign_static_slot(999, &b), std::invalid_argument);
}

TEST(FlexRay, NullFramesCounted) {
  sim::Scheduler sched;
  FlexRayConfig cfg;
  cfg.static_slots = 2;
  FlexRayBus bus(sched, "fr0", cfg);
  StaticSender a("a", {0x01});
  a.send_null = true;
  bus.assign_static_slot(1, &a);
  bus.start();
  sched.run_until(cfg.cycle_length() * 3);
  bus.stop();
  sched.run();
  EXPECT_GE(bus.null_frames(), 3u);
  EXPECT_EQ(bus.static_frames(), 0u);
}

TEST(FlexRay, DynamicSegmentPriorityAndOverflow) {
  sim::Scheduler sched;
  FlexRayConfig cfg;
  cfg.static_slots = 1;
  cfg.dynamic_minislots = 6;
  FlexRayBus bus(sched, "fr0", cfg);
  StaticSender a("a", {0x01});
  StaticSender listener("l", {});
  bus.assign_static_slot(1, &a);
  bus.attach_listener(&listener);
  // Two small frames fit; queue a big one that overflows the segment.
  bus.send_dynamic(&a, 2, util::Bytes(4, 0xBB));
  bus.send_dynamic(&a, 1, util::Bytes(4, 0xAA));
  bus.send_dynamic(&a, 3, util::Bytes(200, 0xCC));  // too big this cycle
  bus.start();
  sched.run_until(cfg.cycle_length());
  bus.stop();
  sched.run();
  ASSERT_GE(listener.rx.size(), 3u);  // slot1 static + two dynamic
  // Dynamic frames arrive in priority order: dyn 1 before dyn 2.
  EXPECT_EQ(listener.rx[1].payload[0], 0xAA);
  EXPECT_EQ(listener.rx[2].payload[0], 0xBB);
  EXPECT_GE(bus.dynamic_dropped(), 1u);  // re-counted every cycle it defers
  EXPECT_THROW(bus.send_dynamic(&a, 0, {}), std::invalid_argument);
}

TEST(FlexRay, CycleCounterWraps64) {
  sim::Scheduler sched;
  FlexRayConfig cfg;
  cfg.static_slots = 1;
  cfg.dynamic_minislots = 1;
  FlexRayBus bus(sched, "fr0", cfg);
  StaticSender a("a", {0x01});
  bus.assign_static_slot(1, &a);
  bus.start();
  sched.run_until(cfg.cycle_length() * 70);
  bus.stop();
  sched.run();
  EXPECT_LT(bus.cycle(), 64);
  EXPECT_GE(a.asked, 70);
}

// ---------------------------------------------------------------- Ethernet

class EthSink : public EthernetEndpoint {
 public:
  using EthernetEndpoint::EthernetEndpoint;
  void on_frame(const EthernetFrame& f, SimTime at) override {
    rx.push_back(f);
    rx_at.push_back(at);
  }
  std::vector<EthernetFrame> rx;
  std::vector<SimTime> rx_at;
};

EthernetFrame eth_frame(const MacAddress& src, const MacAddress& dst,
                        std::uint16_t vlan, std::size_t len) {
  EthernetFrame f;
  f.src = src;
  f.dst = dst;
  f.vlan = vlan;
  f.payload.resize(len, 0xEE);
  return f;
}

TEST(Ethernet, MacHelpers) {
  const MacAddress m = mac_from_u64(0x0000112233445566ULL >> 8);
  EXPECT_EQ(mac_to_string(mac_from_u64(0xa1b2c3d4e5f6ULL)), "a1:b2:c3:d4:e5:f6");
  (void)m;
}

TEST(Ethernet, FloodsUnknownThenLearns) {
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0");
  EthSink a("a", mac_from_u64(1)), b("b", mac_from_u64(2)), c("c", mac_from_u64(3));
  const auto pa = sw.connect(&a);
  const auto pb = sw.connect(&b);
  sw.connect(&c);
  // a -> b: b unknown, flood to b and c.
  EXPECT_TRUE(sw.send(pa, eth_frame(a.mac(), b.mac(), 0, 10)));
  sched.run();
  EXPECT_EQ(b.rx.size(), 1u);
  EXPECT_EQ(c.rx.size(), 1u);
  EXPECT_EQ(sw.flooded(), 1u);
  ASSERT_TRUE(sw.learned_port(a.mac()).has_value());
  // b -> a: a is learned, unicast only.
  EXPECT_TRUE(sw.send(pb, eth_frame(b.mac(), a.mac(), 0, 10)));
  sched.run();
  EXPECT_EQ(a.rx.size(), 1u);
  EXPECT_EQ(c.rx.size(), 1u);  // unchanged
  // a -> b again: now unicast.
  EXPECT_TRUE(sw.send(pa, eth_frame(a.mac(), b.mac(), 0, 10)));
  sched.run();
  EXPECT_EQ(b.rx.size(), 2u);
  EXPECT_EQ(c.rx.size(), 1u);
}

TEST(Ethernet, BroadcastReachesAll) {
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0");
  EthSink a("a", mac_from_u64(1)), b("b", mac_from_u64(2)), c("c", mac_from_u64(3));
  const auto pa = sw.connect(&a);
  sw.connect(&b);
  sw.connect(&c);
  sw.send(pa, eth_frame(a.mac(), kBroadcastMac, 0, 10));
  sched.run();
  EXPECT_EQ(b.rx.size(), 1u);
  EXPECT_EQ(c.rx.size(), 1u);
  EXPECT_TRUE(a.rx.empty());
}

TEST(Ethernet, VlanIsolation) {
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0");
  EthSink adas("adas", mac_from_u64(1)), info("info", mac_from_u64(2));
  const auto p_adas = sw.connect(&adas);
  const auto p_info = sw.connect(&info);
  sw.set_port_vlans(p_adas, {10});
  sw.set_port_vlans(p_info, {20});
  // Infotainment cannot inject into the ADAS VLAN...
  EXPECT_FALSE(sw.send(p_info, eth_frame(info.mac(), kBroadcastMac, 10, 10)));
  EXPECT_EQ(sw.dropped_vlan(), 1u);
  // ...and ADAS broadcasts do not leak to the infotainment port.
  EXPECT_TRUE(sw.send(p_adas, eth_frame(adas.mac(), kBroadcastMac, 10, 10)));
  sched.run();
  EXPECT_TRUE(info.rx.empty());
  EXPECT_GE(sw.dropped_vlan(), 2u);
}

TEST(Ethernet, PolicerLimitsIngress) {
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0");
  EthSink a("a", mac_from_u64(1)), b("b", mac_from_u64(2));
  const auto pa = sw.connect(&a);
  sw.connect(&b);
  sw.set_policer(pa, 1000.0, 200.0);  // tiny budget
  int admitted = 0;
  for (int i = 0; i < 50; ++i) {
    if (sw.send(pa, eth_frame(a.mac(), kBroadcastMac, 0, 64))) ++admitted;
  }
  EXPECT_LT(admitted, 5);
  EXPECT_GT(sw.dropped_policer(), 45u);
  sched.run();
}

TEST(Ethernet, PortDownQuarantine) {
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0");
  EthSink a("a", mac_from_u64(1)), b("b", mac_from_u64(2));
  const auto pa = sw.connect(&a);
  sw.connect(&b);
  sw.set_port_enabled(pa, false);
  EXPECT_FALSE(sw.port_enabled(pa));
  EXPECT_FALSE(sw.send(pa, eth_frame(a.mac(), kBroadcastMac, 0, 10)));
  EXPECT_EQ(sw.dropped_port_down(), 1u);
  sw.set_port_enabled(pa, true);
  EXPECT_TRUE(sw.send(pa, eth_frame(a.mac(), kBroadcastMac, 0, 10)));
  sched.run();
  EXPECT_EQ(b.rx.size(), 1u);
}

TEST(Ethernet, LatencyIncludesStoreAndForward) {
  sim::Scheduler sched;
  EthernetSwitch sw(sched, "sw0", 100'000'000, SimTime::from_us(5));
  EthSink a("a", mac_from_u64(1)), b("b", mac_from_u64(2));
  const auto pa = sw.connect(&a);
  sw.connect(&b);
  sw.send(pa, eth_frame(a.mac(), kBroadcastMac, 0, 100));
  sched.run();
  ASSERT_EQ(b.rx_at.size(), 1u);
  // 2x serialization (~11.04us for 138 wire bytes) + 5us processing.
  EXPECT_GT(b.rx_at[0].us(), 15.0);
  EXPECT_LT(b.rx_at[0].us(), 40.0);
}

// ---------------------------------------------------------------- SecOC

TEST(SecOc, ProtectVerifyRoundTrip) {
  const util::Bytes key(16, 0x42);
  SecOcChannel tx_ch(key), rx_ch(key);
  FreshnessManager tx_fm, rx_fm;
  const util::Bytes payload{0xde, 0xad, 0xbe, 0xef};
  const util::Bytes pdu = tx_ch.protect(0x0101, payload, tx_fm);
  EXPECT_EQ(pdu.size(), payload.size() + tx_ch.overhead());
  const auto res = rx_ch.verify(0x0101, pdu, rx_fm);
  EXPECT_EQ(res.status, SecOcStatus::kOk);
  EXPECT_EQ(res.payload, payload);
}

TEST(SecOc, RejectsReplay) {
  const util::Bytes key(16, 0x42);
  SecOcChannel ch(key);
  FreshnessManager tx_fm, rx_fm;
  const util::Bytes pdu = ch.protect(1, util::Bytes{0x01}, tx_fm);
  EXPECT_EQ(ch.verify(1, pdu, rx_fm).status, SecOcStatus::kOk);
  const auto replay = ch.verify(1, pdu, rx_fm);
  EXPECT_NE(replay.status, SecOcStatus::kOk);
}

TEST(SecOc, RejectsTamperedPayloadAndMac) {
  const util::Bytes key(16, 0x42);
  SecOcChannel ch(key);
  FreshnessManager tx_fm, rx_fm;
  util::Bytes pdu = ch.protect(1, util::Bytes{0x01, 0x02, 0x03}, tx_fm);
  util::Bytes bad = pdu;
  bad[0] ^= 1;
  EXPECT_EQ(ch.verify(1, bad, rx_fm).status, SecOcStatus::kMacMismatch);
  bad = pdu;
  bad.back() ^= 1;
  EXPECT_EQ(ch.verify(1, bad, rx_fm).status, SecOcStatus::kMacMismatch);
  // Wrong data id also fails.
  EXPECT_EQ(ch.verify(2, pdu, rx_fm).status, SecOcStatus::kMacMismatch);
  // Too-short PDU.
  EXPECT_EQ(ch.verify(1, util::Bytes(2), rx_fm).status, SecOcStatus::kTooShort);
}

TEST(SecOc, WrongKeyFails) {
  SecOcChannel tx_ch(util::Bytes(16, 0x42)), rx_ch(util::Bytes(16, 0x43));
  FreshnessManager tx_fm, rx_fm;
  const util::Bytes pdu = tx_ch.protect(1, util::Bytes{0x01}, tx_fm);
  EXPECT_EQ(rx_ch.verify(1, pdu, rx_fm).status, SecOcStatus::kMacMismatch);
}

TEST(SecOc, FreshnessTruncationRollover) {
  // 1-byte freshness: after 256 messages the truncated value wraps; the
  // receiver must reconstruct correctly as long as it stays in sync.
  const util::Bytes key(16, 0x11);
  SecOcChannel ch(key, SecOcConfig{4, 1, 16});
  FreshnessManager tx_fm, rx_fm;
  for (int i = 0; i < 600; ++i) {
    const util::Bytes pdu = ch.protect(7, util::Bytes{0xAB}, tx_fm);
    ASSERT_EQ(ch.verify(7, pdu, rx_fm).status, SecOcStatus::kOk) << i;
  }
}

TEST(SecOc, LossWithinWindowTolerated) {
  const util::Bytes key(16, 0x11);
  SecOcChannel ch(key, SecOcConfig{4, 1, 16});
  FreshnessManager tx_fm, rx_fm;
  for (int i = 0; i < 100; ++i) {
    const util::Bytes pdu = ch.protect(7, util::Bytes{0x01}, tx_fm);
    if (i % 3 == 0) continue;  // drop a third of the traffic
    ASSERT_EQ(ch.verify(7, pdu, rx_fm).status, SecOcStatus::kOk) << i;
  }
}

TEST(SecOc, GapBeyondWindowRejected) {
  const util::Bytes key(16, 0x11);
  SecOcChannel ch(key, SecOcConfig{4, 2, 8});
  FreshnessManager tx_fm, rx_fm;
  const util::Bytes first = ch.protect(7, util::Bytes{0x01}, tx_fm);
  ASSERT_EQ(ch.verify(7, first, rx_fm).status, SecOcStatus::kOk);
  for (int i = 0; i < 50; ++i) (void)ch.protect(7, util::Bytes{0x01}, tx_fm);
  const util::Bytes late = ch.protect(7, util::Bytes{0x01}, tx_fm);
  EXPECT_EQ(ch.verify(7, late, rx_fm).status, SecOcStatus::kFreshnessOutOfWindow);
}

TEST(SecOc, ImplicitFreshnessMode) {
  // freshness_bytes = 0: nothing on the wire, receiver scans the window.
  const util::Bytes key(16, 0x11);
  SecOcChannel ch(key, SecOcConfig{4, 0, 8});
  FreshnessManager tx_fm, rx_fm;
  for (int i = 0; i < 20; ++i) {
    const util::Bytes pdu = ch.protect(9, util::Bytes{0x55}, tx_fm);
    EXPECT_EQ(pdu.size(), 1u + 4u);
    if (i % 4 == 0) continue;  // drops force window scanning
    ASSERT_EQ(ch.verify(9, pdu, rx_fm).status, SecOcStatus::kOk) << i;
  }
}

TEST(SecOc, ForgeryProbabilityAndConfigValidation) {
  const util::Bytes key(16, 0x11);
  EXPECT_DOUBLE_EQ(SecOcChannel(key, SecOcConfig{1, 1, 8}).forgery_probability(),
                   1.0 / 256.0);
  EXPECT_DOUBLE_EQ(SecOcChannel(key, SecOcConfig{4, 1, 8}).forgery_probability(),
                   std::pow(2.0, -32));
  EXPECT_THROW(SecOcChannel(key, SecOcConfig{0, 1, 8}), std::invalid_argument);
  EXPECT_THROW(SecOcChannel(key, SecOcConfig{17, 1, 8}), std::invalid_argument);
  EXPECT_THROW(SecOcChannel(key, SecOcConfig{4, 9, 8}), std::invalid_argument);
}

TEST(SecOc, RandomForgeryRateMatchesTruncation) {
  // Empirical forgery: with a 1-byte MAC, ~1/256 random MACs verify.
  const util::Bytes key(16, 0x77);
  SecOcChannel ch(key, SecOcConfig{1, 1, 1u << 20});
  FreshnessManager tx_fm;
  util::Rng rng(99);
  int accepted = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    FreshnessManager rx_fm;  // fresh receiver each attempt
    util::Bytes forged{0x01};                       // payload
    forged.push_back(static_cast<std::uint8_t>(1));  // freshness guess
    forged.push_back(static_cast<std::uint8_t>(rng.next_u64()));  // random MAC
    if (ch.verify(3, forged, rx_fm).status == SecOcStatus::kOk) ++accepted;
  }
  const double rate = static_cast<double>(accepted) / trials;
  EXPECT_NEAR(rate, 1.0 / 256.0, 3.0 / 256.0);
  EXPECT_GT(accepted, 0);  // 1-byte MACs are actually forgeable
}

}  // namespace
}  // namespace aseck::ivn
