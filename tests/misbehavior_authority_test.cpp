// Tests for the misbehavior authority: report validation, threshold
// revocation, defamation resistance, and the closed detection->revocation
// loop.

#include <gtest/gtest.h>

#include "v2x/misbehavior_authority.hpp"
#include "v2x/net.hpp"

namespace aseck::v2x {
namespace {

struct Fixture {
  crypto::Drbg rng{2468u};
  CertificateAuthority root =
      CertificateAuthority::make_root(rng, "root", SimTime::from_s(1 << 20));
  CertificateAuthority pca =
      CertificateAuthority::make_sub(rng, "pca", root, SimTime::from_s(1 << 20));
  Crl crl;
  TrustStore trust;
  MisbehaviorAuthority authority{crl, trust, {}};

  struct Entity {
    crypto::EcdsaPrivateKey key;
    Certificate cert;
  };
  std::vector<Entity> reporters;
  Entity accused = make_entity("evil");

  Fixture() {
    trust.add_root(root.certificate());
    trust.add_intermediate(pca.certificate());
    trust.set_crl(&crl);
    for (int i = 0; i < 5; ++i) {
      reporters.push_back(make_entity("rep" + std::to_string(i)));
    }
  }

  Entity make_entity(const std::string& name) {
    auto key = crypto::EcdsaPrivateKey::generate(rng);
    auto cert = pca.issue(name, key.public_key(), {Psid::kBsm},
                          SimTime::zero(), SimTime::from_s(1 << 20));
    return Entity{std::move(key), std::move(cert)};
  }

  Spdu make_report(const Entity& reporter, std::uint32_t reporter_id,
                   SimTime at) {
    MisbehaviorReport r;
    r.accused = accused.cert.id();
    r.reason = "position_jump";
    r.reporter_temp_id = reporter_id;
    return Spdu::sign(Psid::kMisbehaviorReport, at, r.serialize(),
                      reporter.cert, reporter.key);
  }
};

TEST(MisbehaviorReport, SerializeParseRoundTrip) {
  MisbehaviorReport r;
  r.accused.fill(0xAB);
  r.reason = "implausible_speed";
  r.reporter_temp_id = 0xDEADBEEF;
  const auto p = MisbehaviorReport::parse(r.serialize());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->accused, r.accused);
  EXPECT_EQ(p->reason, r.reason);
  EXPECT_EQ(p->reporter_temp_id, r.reporter_temp_id);
  EXPECT_FALSE(MisbehaviorReport::parse(util::Bytes(5)).has_value());
}

TEST(Authority, ThresholdRevocation) {
  Fixture f;
  const SimTime t = SimTime::from_s(10);
  EXPECT_EQ(f.authority.submit(f.make_report(f.reporters[0], 100, t), t),
            MisbehaviorAuthority::Outcome::kAccepted);
  EXPECT_EQ(f.authority.submit(f.make_report(f.reporters[1], 101, t), t),
            MisbehaviorAuthority::Outcome::kAccepted);
  EXPECT_FALSE(f.crl.is_revoked(f.accused.cert.id()));
  EXPECT_EQ(f.authority.distinct_reporters(f.accused.cert.id()), 2u);
  // Third distinct reporter crosses the threshold.
  EXPECT_EQ(f.authority.submit(f.make_report(f.reporters[2], 102, t), t),
            MisbehaviorAuthority::Outcome::kAcceptedAndRevoked);
  EXPECT_TRUE(f.crl.is_revoked(f.accused.cert.id()));
  EXPECT_EQ(f.authority.revocations(), 1u);
  // Further reports are moot.
  EXPECT_EQ(f.authority.submit(f.make_report(f.reporters[3], 103, t), t),
            MisbehaviorAuthority::Outcome::kAlreadyRevoked);
  // The revoked cert no longer validates anywhere.
  EXPECT_EQ(f.trust.validate(f.accused.cert, t, Psid::kBsm),
            TrustStore::Result::kRevoked);
}

TEST(Authority, DefamationResistance) {
  // One attacker spamming reports under one pseudonym cannot revoke a
  // victim: duplicate reporter ids do not count twice.
  Fixture f;
  const SimTime t = SimTime::from_s(10);
  EXPECT_EQ(f.authority.submit(f.make_report(f.reporters[0], 100, t), t),
            MisbehaviorAuthority::Outcome::kAccepted);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.authority.submit(f.make_report(f.reporters[0], 100, t), t),
              MisbehaviorAuthority::Outcome::kDuplicateReporter);
  }
  EXPECT_FALSE(f.crl.is_revoked(f.accused.cert.id()));
  EXPECT_EQ(f.authority.distinct_reporters(f.accused.cert.id()), 1u);
}

TEST(Authority, SybilCaveat) {
  // A lone attacker WITH multiple pseudonyms can still cross the threshold
  // (Sybil) — the residual risk pseudonymity creates for revocation systems;
  // we assert the behavior so the limitation is explicit.
  Fixture f;
  const SimTime t = SimTime::from_s(10);
  f.authority.submit(f.make_report(f.reporters[0], 200, t), t);
  f.authority.submit(f.make_report(f.reporters[0], 201, t), t);  // same cert,
  const auto out = f.authority.submit(f.make_report(f.reporters[0], 202, t), t);
  EXPECT_EQ(out, MisbehaviorAuthority::Outcome::kAcceptedAndRevoked);
}

TEST(Authority, RejectsForgedAndStaleReports) {
  Fixture f;
  const SimTime t = SimTime::from_s(100);
  // Tampered payload.
  Spdu forged = f.make_report(f.reporters[0], 100, t);
  forged.payload[9] ^= 1;
  EXPECT_EQ(f.authority.submit(forged, t),
            MisbehaviorAuthority::Outcome::kInvalidEnvelope);
  // Wrong PSID.
  Spdu wrong_psid = f.make_report(f.reporters[0], 100, t);
  wrong_psid.psid = Psid::kBsm;
  EXPECT_EQ(f.authority.submit(wrong_psid, t),
            MisbehaviorAuthority::Outcome::kInvalidEnvelope);
  // Stale report (> 60 s old).
  const Spdu stale = f.make_report(f.reporters[0], 100, SimTime::from_s(10));
  EXPECT_EQ(f.authority.submit(stale, SimTime::from_s(100)),
            MisbehaviorAuthority::Outcome::kInvalidEnvelope);
  // Unknown issuer.
  crypto::Drbg rogue_rng(13u);
  auto rogue_ca = CertificateAuthority::make_root(rogue_rng, "rogue",
                                                  SimTime::from_s(1 << 20));
  auto rogue_key = crypto::EcdsaPrivateKey::generate(rogue_rng);
  auto rogue_cert = rogue_ca.issue("r", rogue_key.public_key(), {Psid::kBsm},
                                   SimTime::zero(), SimTime::from_s(1 << 20));
  MisbehaviorReport r;
  r.accused = f.accused.cert.id();
  r.reporter_temp_id = 300;
  const Spdu rogue_report = Spdu::sign(Psid::kMisbehaviorReport, t,
                                       r.serialize(), rogue_cert, rogue_key);
  EXPECT_EQ(f.authority.submit(rogue_report, t),
            MisbehaviorAuthority::Outcome::kInvalidEnvelope);
  EXPECT_EQ(f.authority.distinct_reporters(f.accused.cert.id()), 0u);
}

TEST(Authority, EndToEndDetectionToRevocation) {
  // Vehicles flag a ghost via their misbehavior detectors and report; after
  // the third distinct reporter the ghost's cert is dead fleet-wide.
  Fixture f;
  sim::Scheduler sched;
  V2xMedium medium(sched, 1000.0);
  std::vector<std::unique_ptr<VehicleNode>> cars;
  for (int i = 0; i < 3; ++i) {
    auto batch = f.pca.issue_pseudonyms(f.rng, 1, SimTime::zero(),
                                        SimTime::from_s(1 << 20));
    cars.push_back(std::make_unique<VehicleNode>(
        sched, medium, "car" + std::to_string(i),
        Position{static_cast<double>(10 * i), 0}, 0.0, 0.0, f.trust,
        std::move(batch)));
  }
  // Ghost broadcasts implausible BSMs.
  struct GhostRadio : V2xRadio {
    using V2xRadio::V2xRadio;
    Position position() const override { return {0, 5}; }
    void on_spdu(const Spdu&, SimTime) override {}
  } ghost_radio("ghost");
  medium.attach(&ghost_radio);
  double x = 0;
  sim::PeriodicTask ghost_task(
      sched, SimTime::from_ms(100),
      [&] {
        x = (x == 100) ? 500 : 100;  // teleport within relevance radius
        Bsm bsm;
        bsm.temp_id = 0x6e05;
        bsm.pos = {x, 0};
        bsm.speed_mps = 20;
        bsm.generated = sched.now();
        medium.broadcast(&ghost_radio,
                         Spdu::sign(Psid::kBsm, sched.now(), bsm.serialize(),
                                    f.accused.cert, f.accused.key));
      },
      SimTime::zero());
  sched.run_until(SimTime::from_s(2));
  ghost_task.stop();
  sched.run();

  // Each car that flagged misbehavior files one report.
  std::size_t filed = 0;
  for (const auto& car : cars) {
    if (car->stats().misbehavior_flags == 0) continue;
    MisbehaviorReport r;
    r.accused = f.accused.cert.id();
    r.reason = "position_jump";
    r.reporter_temp_id = car->current_temp_id();
    // Each vehicle signs with its own pseudonym (index `filed`).
    const Spdu env = Spdu::sign(Psid::kMisbehaviorReport, sched.now(),
                                r.serialize(), f.reporters[filed].cert,
                                f.reporters[filed].key);
    f.authority.submit(env, sched.now());
    ++filed;
  }
  EXPECT_GE(filed, 3u);
  EXPECT_TRUE(f.crl.is_revoked(f.accused.cert.id()));
}

}  // namespace
}  // namespace aseck::v2x
