// Tests for access security: immobilizer + DST crack, PKES relay attack and
// distance bounding, smart-device access tokens.

#include <gtest/gtest.h>

#include "access/immobilizer.hpp"
#include "access/pkes.hpp"
#include "access/smartkey.hpp"

namespace aseck::access {
namespace {

TEST(Immobilizer, AuthorizesPairedKeyOnly) {
  const std::uint64_t key = 0x1234567890ULL & crypto::Dst40::kKeyMask;
  Immobilizer immo(key, 42);
  Transponder good(key), bad(key ^ 0x1);
  int good_ok = 0, bad_ok = 0;
  for (int i = 0; i < 50; ++i) {
    if (immo.authorize(good)) ++good_ok;
    if (immo.authorize(bad)) ++bad_ok;
  }
  EXPECT_EQ(good_ok, 50);
  EXPECT_LE(bad_ok, 1);  // 24-bit response: negligible collision chance
  EXPECT_EQ(immo.rounds(), 100u);
}

TEST(Immobilizer, CrackRecoversKeyInSubspace) {
  const std::uint64_t key = 0x00000a3f17ULL;  // low 20 bits unknown
  Transponder victim(key);
  // Eavesdrop two challenge/response pairs.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs;
  util::Rng rng(1);
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t c = rng.next_u64() & crypto::Dst40::kChallengeMask;
    pairs.emplace_back(c, victim.respond(c));
  }
  const CrackResult r = crack_transponder(pairs, key, /*key_bits=*/20);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.key, key);
  EXPECT_LE(r.keys_tried, 1ULL << 20);
  EXPECT_EQ(r.pairs_needed, 2u);
  // The cracked key clones the fob.
  Immobilizer immo(key, 7);
  Transponder clone(r.key);
  EXPECT_TRUE(immo.authorize(clone));
}

TEST(Immobilizer, CrackNeedsTwoPairsToDisambiguate) {
  // With one pair there can be false positives (2^20 keys vs 2^24 responses
  // -> expected ~0.06 collisions, usually none, but the key itself is found).
  const std::uint64_t key = 0x0000012345ULL;
  Transponder victim(key);
  util::Rng rng(2);
  const std::uint64_t c = rng.next_u64() & crypto::Dst40::kChallengeMask;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> one_pair{
      {c, victim.respond(c)}};
  const CrackResult r = crack_transponder(one_pair, key, 16);
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.pairs_needed, 1u);
}

TEST(Immobilizer, CrackHandlesEmptyAndBadInput) {
  EXPECT_FALSE(crack_transponder({}, 0, 16).found);
  EXPECT_FALSE(crack_transponder({{1, 2}}, 0, 41).found);
}

crypto::Block pkes_key() {
  crypto::Block k;
  k.fill(0x77);
  return k;
}

TEST(Pkes, NormalUnlockInRange) {
  PkesCar car(pkes_key(), PkesConfig{}, 1);
  KeyFob fob(pkes_key());
  const auto a = car.try_unlock(fob, 1.0);
  EXPECT_TRUE(a.unlocked);
  EXPECT_TRUE(a.response_valid);
  EXPECT_FALSE(a.out_of_range);
  // RTT dominated by fob processing (~300 us).
  EXPECT_NEAR(a.rtt_us, 300.0, 5.0);
}

TEST(Pkes, OutOfRangeWithoutRelay) {
  PkesCar car(pkes_key(), PkesConfig{}, 1);
  KeyFob fob(pkes_key());
  const auto a = car.try_unlock(fob, 30.0);
  EXPECT_FALSE(a.unlocked);
  EXPECT_TRUE(a.out_of_range);
}

TEST(Pkes, WrongKeyFobRejected) {
  PkesCar car(pkes_key(), PkesConfig{}, 1);
  crypto::Block other;
  other.fill(0x78);
  KeyFob wrong(other);
  const auto a = car.try_unlock(wrong, 1.0);
  EXPECT_FALSE(a.unlocked);
  EXPECT_FALSE(a.response_valid);
}

TEST(Pkes, RelayAttackSucceedsWithoutDistanceBounding) {
  // Fob is 30 m away (owner in a cafe); relay stations bridge the gap.
  PkesCar car(pkes_key(), PkesConfig{}, 1);
  KeyFob fob(pkes_key());
  RelayAttacker relay;
  relay.active = true;
  const auto a = car.try_unlock(fob, 30.0, relay);
  EXPECT_TRUE(a.unlocked);  // the Francillon et al. result
  EXPECT_GT(a.rtt_us, 300.0 + 2 * relay.link_latency_us - 5.0);
}

TEST(Pkes, DistanceBoundingBlocksRelay) {
  PkesCar car(pkes_key(), PkesConfig{}, 1);
  // Budget: fob processing + small margin. Relay adds >= 50 us.
  car.set_rtt_limit(310.0);
  KeyFob fob(pkes_key());
  RelayAttacker relay;
  relay.active = true;
  const auto attack = car.try_unlock(fob, 30.0, relay);
  EXPECT_FALSE(attack.unlocked);
  EXPECT_TRUE(attack.rtt_rejected);
  // Legitimate use still works under the same budget.
  const auto legit = car.try_unlock(fob, 1.0);
  EXPECT_TRUE(legit.unlocked);
}

TEST(Pkes, RelayStationsMustBeNearCarAndFob) {
  PkesCar car(pkes_key(), PkesConfig{}, 1);
  KeyFob fob(pkes_key());
  RelayAttacker relay;
  relay.active = true;
  relay.station_to_fob_m = 10.0;  // station too far from the fob
  const auto a = car.try_unlock(fob, 30.0, relay);
  EXPECT_FALSE(a.unlocked);
  EXPECT_TRUE(a.out_of_range);
}

TEST(SmartKey, TokenLifecycle) {
  crypto::Drbg rng(99u);
  KeyServer server(rng);
  const auto phone = crypto::EcdsaPrivateKey::generate(rng);
  const AccessToken token =
      server.issue("phone-1", phone.public_key(),
                   {Capability::kUnlock, Capability::kStart}, SimTime::from_s(3600));
  SmartAccess car(server.public_key(), &server);

  const util::Bytes challenge = util::from_string("nonce-123");
  const auto proof = phone.sign(challenge);
  EXPECT_EQ(car.request(token, Capability::kUnlock, SimTime::from_s(10),
                        challenge, proof),
            SmartAccess::Result::kGranted);
  // Capability not granted.
  EXPECT_EQ(car.request(token, Capability::kTrunkOnly, SimTime::from_s(10),
                        challenge, proof),
            SmartAccess::Result::kNoCapability);
  // Expired.
  EXPECT_EQ(car.request(token, Capability::kUnlock, SimTime::from_s(4000),
                        challenge, proof),
            SmartAccess::Result::kExpired);
  // Revoked (lost phone).
  server.revoke("phone-1");
  EXPECT_EQ(car.request(token, Capability::kUnlock, SimTime::from_s(10),
                        challenge, proof),
            SmartAccess::Result::kRevoked);
}

TEST(SmartKey, StolenTokenUselessWithoutDeviceKey) {
  crypto::Drbg rng(100u);
  KeyServer server(rng);
  const auto phone = crypto::EcdsaPrivateKey::generate(rng);
  const auto thief = crypto::EcdsaPrivateKey::generate(rng);
  const AccessToken token = server.issue("phone-1", phone.public_key(),
                                         {Capability::kUnlock}, SimTime::from_s(3600));
  SmartAccess car(server.public_key(), &server);
  const util::Bytes challenge = util::from_string("nonce-456");
  // Thief has the token bytes but not the phone's private key.
  EXPECT_EQ(car.request(token, Capability::kUnlock, SimTime::from_s(10),
                        challenge, thief.sign(challenge)),
            SmartAccess::Result::kBadSignature);
}

TEST(SmartKey, ForgedTokenRejected) {
  crypto::Drbg rng(101u);
  KeyServer server(rng);
  const auto phone = crypto::EcdsaPrivateKey::generate(rng);
  AccessToken forged = server.issue("phone-1", phone.public_key(),
                                    {Capability::kUnlock}, SimTime::from_s(100));
  forged.capabilities.insert(Capability::kStart);  // escalate without re-sign
  SmartAccess car(server.public_key(), &server);
  const util::Bytes challenge = util::from_string("x");
  EXPECT_EQ(car.request(forged, Capability::kStart, SimTime::from_s(10),
                        challenge, phone.sign(challenge)),
            SmartAccess::Result::kBadToken);
}

}  // namespace
}  // namespace aseck::access
