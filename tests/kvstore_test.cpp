// Journaled KV provisioning store: transactional multi-key atomicity under
// power cuts at every write index, dual-region compaction, deterministic
// mount recovery, and the fleet-wide campaign config push.

#include <gtest/gtest.h>

#include "ecu/kvstore.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"

namespace aseck::ecu {
namespace {

using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using util::Bytes;
using util::SimTime;

/// Arms a single kPowerLoss window cutting at exactly write-op `k`.
struct CutRig {
  Scheduler sched;
  FaultPlan plan{sched, 1};
  sim::FaultPort* arm(std::int64_t k) {
    FaultSpec spec;
    spec.target = "kv";
    spec.kind = FaultKind::kPowerLoss;
    spec.probability = 0.0;
    spec.page_index = k;
    plan.window(SimTime::zero(), SimTime::from_s(3600), spec);
    sched.run_until(SimTime::from_ms(1));
    return &plan.port("kv");
  }
};

Bytes val(std::uint8_t b) { return Bytes(4, b); }

TEST(KvStore, MountPutGetEraseRoundTrip) {
  KvStore kv;
  const auto rep = kv.mount();
  EXPECT_TRUE(rep.mounted);
  EXPECT_EQ(rep.live_keys, 0u);
  EXPECT_TRUE(kv.put("a", val(1)));
  EXPECT_TRUE(kv.put("b", val(2)));
  ASSERT_NE(kv.get("a"), nullptr);
  EXPECT_EQ(*kv.get("a"), val(1));
  EXPECT_TRUE(kv.erase("a"));
  EXPECT_EQ(kv.get("a"), nullptr);
  EXPECT_EQ(kv.size(), 1u);
  // Remount replays to the same state.
  const auto rep2 = kv.mount();
  EXPECT_EQ(rep2.live_keys, 1u);
  EXPECT_EQ(*kv.get("b"), val(2));
}

TEST(KvStore, ReadsAndWritesRequireMount) {
  KvStore kv;
  EXPECT_FALSE(kv.put("a", val(1)));
  EXPECT_EQ(kv.get("a"), nullptr);
  EXPECT_EQ(kv.size(), 0u);
}

TEST(KvStore, TransactionIsAtomicAtEveryCutIndex) {
  // A 3-op transaction costs 4 record writes (3 ops + commit). Cut at each
  // index: after remount the store must hold either ALL of the transaction
  // or NONE of it — never a prefix.
  for (std::int64_t cut = 0; cut < 4; ++cut) {
    CutRig rig;
    KvStore kv;
    kv.mount();
    ASSERT_TRUE(kv.put("keep", val(9)));
    kv.set_fault_port(rig.arm(cut));

    KvTransaction txn;
    txn.put("a", val(1));
    txn.put("b", val(2));
    txn.erase("keep");
    EXPECT_FALSE(kv.commit(txn)) << "cut=" << cut;
    EXPECT_TRUE(kv.lost_power());
    // Down until mount: writes refused, RAM state untouched.
    EXPECT_FALSE(kv.put("c", val(3)));
    EXPECT_EQ(kv.get("a"), nullptr) << "cut=" << cut;

    const auto rep = kv.mount();
    EXPECT_EQ(kv.get("a"), nullptr) << "cut=" << cut;
    EXPECT_EQ(kv.get("b"), nullptr) << "cut=" << cut;
    ASSERT_NE(kv.get("keep"), nullptr) << "cut=" << cut;
    EXPECT_EQ(rep.torn_records_discarded, 1u);
    // After recovery the same transaction commits cleanly.
    EXPECT_TRUE(kv.commit(txn));
    EXPECT_EQ(*kv.get("a"), val(1));
    EXPECT_EQ(kv.get("keep"), nullptr);
  }
}

TEST(KvStore, CommitCostsOneWriteOpPerRecord) {
  CutRig rig;
  KvStore kv;
  kv.mount();
  sim::FaultPort* port = rig.arm(1000);  // far past anything we write
  kv.set_fault_port(port);
  KvTransaction txn;
  txn.put("a", val(1));
  txn.put("b", val(2));
  ASSERT_TRUE(kv.commit(txn));
  EXPECT_EQ(port->write_ops(), 3u);  // 2 ops + 1 commit record
}

TEST(KvStore, CompactionSurvivesCutsAtEveryIndex) {
  // Build a store whose next commit triggers compaction, then sweep cuts
  // through the compaction rewrite; the pre-compaction state must survive
  // every one of them, and an uncut run must land in the other region.
  const auto build = [](KvStore& kv) {
    kv.mount();
    kv.set_compaction_threshold(8);
    for (std::uint8_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(kv.put("k" + std::to_string(i), val(i)));
    }
  };
  // Uncut baseline: the 4th single-key commit (8 records logged) compacts.
  KvStore base;
  build(base);
  ASSERT_TRUE(base.put("k3", val(3)));
  ASSERT_TRUE(base.put("k4", val(4)));
  ASSERT_EQ(base.compactions(), 1u);
  EXPECT_EQ(base.epoch(), 2u);
  EXPECT_EQ(base.size(), 5u);

  for (std::int64_t cut = 0; cut < 7; ++cut) {
    CutRig rig;
    KvStore kv;
    build(kv);
    ASSERT_TRUE(kv.put("k3", val(3)));
    // Arm past the k4 commit (2 ops), sweeping the compaction rewrite's 7
    // ops: 5 live pairs + commit record + epoch-header flip.
    kv.set_fault_port(rig.arm(2 + cut));
    const bool committed = kv.commit([] {
      KvTransaction t;
      t.put("k4", val(4));
      return t;
    }());
    // The triggering commit lands BEFORE compaction starts, so it must have
    // applied; only the rewrite was cut.
    EXPECT_TRUE(committed) << "cut=" << cut;
    EXPECT_TRUE(kv.lost_power());
    const auto rep = kv.mount();
    EXPECT_TRUE(rep.mounted);
    EXPECT_EQ(kv.size(), 5u) << "cut=" << cut;
    EXPECT_EQ(*kv.get("k4"), val(4)) << "cut=" << cut;
    EXPECT_EQ(kv.epoch(), 1u) << "old region must stay live, cut=" << cut;
    EXPECT_EQ(kv.compactions(), 0u);
  }
}

TEST(KvStore, MountIsDeterministicAndIdempotent) {
  KvStore a, b;
  for (KvStore* kv : {&a, &b}) {
    kv->mount();
    KvTransaction txn;
    txn.put("anchor", val(7));
    txn.put("cfg", val(8));
    ASSERT_TRUE(kv->commit(txn));
    kv->mount();
    kv->mount();
  }
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.scan_latency_us(3), 16.0);  // 10 + 2*3, pinned
}

}  // namespace
}  // namespace aseck::ecu
