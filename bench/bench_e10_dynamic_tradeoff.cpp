// Experiment E10 — dynamic security/performance trade-off controller
// (paper §5 "Dynamic Trade-offs between Security, Smartness,
// Communication").
//
// A 40-minute drive cycle (parked -> highway -> urban -> intersection ->
// urban -> highway, with one mid-drive IDS threat spike) is replayed
// against three configurations: static-minimal, static-maximal, and the
// dynamic controller. We report the security index integral, total V2X
// verification compute, and cloud bandwidth — the envelope the paper argues
// only an adaptive, extensible architecture can cover.

#include <cstdio>

#include "bench_util.hpp"
#include "core/modes.hpp"

using namespace aseck;
using namespace aseck::core;

namespace {

struct Phase {
  Environment env;
  double minutes;
  double neighbors;    // vehicles in radio range (drives verify load)
  double threat = 0.0;
};

const std::vector<Phase> kDriveCycle{
    {Environment::kParked, 2, 2},
    {Environment::kHighway, 12, 8},
    {Environment::kUrban, 8, 25},
    {Environment::kIntersection, 2, 40},
    {Environment::kUrban, 6, 25, 0.9},  // IDS spike: injected traffic seen
    {Environment::kUrban, 4, 25},
    {Environment::kHighway, 6, 8},
};

struct Totals {
  double security_integral = 0;  // index-minutes
  double verify_ops = 0;         // ECDSA verifications
  double bandwidth_mb = 0;
  double min_index = 1.0;
};

Totals run_static(const SecurityMode& mode) {
  Totals t;
  for (const Phase& p : kDriveCycle) {
    const double msgs = p.neighbors * 10.0 * p.minutes * 60.0;
    t.verify_ops += msgs * mode.v2x_verify_fraction;
    t.bandwidth_mb += mode.cloud_bandwidth_kbps * p.minutes * 60.0 / 8000.0;
    t.security_integral += mode.security_index() * p.minutes;
    t.min_index = std::min(t.min_index, mode.security_index());
  }
  return t;
}

Totals run_dynamic(TradeoffController& ctl) {
  Totals t;
  double clock_s = 0;
  for (const Phase& p : kDriveCycle) {
    const SecurityMode mode =
        ctl.update(p.env, p.threat, util::SimTime::from_seconds_f(clock_s));
    const double msgs = p.neighbors * 10.0 * p.minutes * 60.0;
    t.verify_ops += msgs * mode.v2x_verify_fraction;
    t.bandwidth_mb += mode.cloud_bandwidth_kbps * p.minutes * 60.0 / 8000.0;
    t.security_integral += mode.security_index() * p.minutes;
    t.min_index = std::min(t.min_index, mode.security_index());
    clock_s += p.minutes * 60.0;
  }
  return t;
}

}  // namespace

int main() {
  std::printf("E10: dynamic security-mode controller over a drive cycle\n");
  std::printf("(40 min: parked/highway/urban/intersection, one threat spike)\n\n");

  TradeoffController ctl;
  const SecurityMode minimal = ctl.mode_for(Environment::kParked);
  const SecurityMode maximal{"always-max", 1.0, 2.0, 16, 3, 1000};

  benchutil::Table table({"configuration", "security_index_min",
                          "security_idx*min", "ecdsa_verifies",
                          "hsm_seconds", "cloud_MB"});
  struct Row {
    const char* name;
    Totals t;
  };
  TradeoffController dyn;
  const std::vector<Row> rows{
      {"static minimal (parked profile)", run_static(minimal)},
      {"static maximal (lockdown)", run_static(maximal)},
      {"dynamic controller", run_dynamic(dyn)},
  };
  for (const auto& r : rows) {
    table.add_row({r.name, benchutil::fmt("%.2f", r.t.min_index),
                   benchutil::fmt("%.1f", r.t.security_integral),
                   benchutil::fmt("%.0f", r.t.verify_ops),
                   benchutil::fmt("%.0f", r.t.verify_ops * 350e-6),
                   benchutil::fmt("%.0f", r.t.bandwidth_mb)});
  }
  table.print();

  std::printf("\nPer-phase trace of the dynamic controller:\n\n");
  benchutil::Table trace({"phase", "threat", "mode", "verify_frac",
                          "mac_bytes", "sec_index"});
  TradeoffController ctl2;
  double clock_s = 0;
  for (const Phase& p : kDriveCycle) {
    const SecurityMode& m =
        ctl2.update(p.env, p.threat, util::SimTime::from_seconds_f(clock_s));
    trace.add_row({environment_name(p.env), benchutil::fmt("%.1f", p.threat),
                   m.name, benchutil::fmt("%.1f", m.v2x_verify_fraction),
                   std::to_string(m.secoc_mac_bytes),
                   benchutil::fmt("%.2f", m.security_index())});
    clock_s += p.minutes * 60.0;
  }
  trace.print();
  std::printf("(controller transitions: %u)\n", ctl2.transitions());
  std::printf(
      "\nReading: the dynamic controller tracks the maximal profile's\n"
      "security where it matters (intersection, threat spike: index rises to\n"
      "lockdown) at a fraction of the compute/bandwidth — the static-minimal\n"
      "profile is cheap but its index floor is unacceptable in the city, and\n"
      "static-maximal burns ~%.0f%% more HSM time than the controller.\n",
      100.0 * (rows[1].t.verify_ops - rows[2].t.verify_ops) /
          rows[2].t.verify_ops);
  return 0;
}
