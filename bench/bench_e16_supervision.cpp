// Experiment E16 — health supervision & redundant failover (paper §6
// optimization-vs-extensibility and §7 assurance architecture: faults must
// be *detected and isolated*, and the detection machinery itself costs
// bus/CPU budget).
//
// Scenario per row: a hot-standby gateway::RedundantGateway carries
// safety-critical traffic between two CAN domains while a seeded
// sim::FaultPlan crash campaign repeatedly kills the active unit. A
// safety::HealthSupervisor watches gateway heartbeats (alive supervision,
// reference cycle = 5 heartbeat periods, one tolerated FAILED cycle); on
// expiry its reset handler promotes the standby, and the repaired unit
// rejoins as the new standby when the fault window clears. Each row sweeps
// the heartbeat period and reports the paper's trade-off triangle:
//
//   * detection latency  (crash -> supervisor expiry -> failover),
//   * switchover downtime in frames lost (the standby's shadow pipeline
//     counts what it would have forwarded during the gap),
//   * supervision overhead (heartbeat + supervision-cycle events, and the
//     heartbeat share of total frame traffic if the beats rode the bus).
//
// Every row also replays the identical campaign with the supervisor
// disabled: crashed units then stay down (nobody resets them), so the
// campaign ends with every crash unrecovered — the supervised runs must end
// with zero. The run is bit-deterministic: `--seed N` (default 42) fixes
// every draw and the report contains no wall-clock time, so the chaos-smoke
// CI job runs `--smoke --seed 42` twice and diffs byte-identical outputs.
// Exit code = unrecovered faults across the supervised runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gateway/redundant.hpp"
#include "ivn/can.hpp"
#include "safety/supervisor.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"

using namespace aseck;
using safety::AliveSupervision;
using safety::EscalationPolicy;
using safety::HealthSupervisor;
using safety::HeartbeatEmitter;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::SimTime;
using sim::Telemetry;
using util::Bytes;

namespace {

constexpr SimTime kCampaignStart = SimTime::from_s(1);
constexpr SimTime kCrashDuration = SimTime::from_ms(500);
constexpr SimTime kTrafficPeriod = SimTime::from_ms(2);

struct RowResult {
  double hb_ms = 0;
  std::size_t crashes = 0;
  std::uint64_t failovers = 0;
  double detect_ms_mean = 0;
  double frames_lost_mean = 0;
  std::size_t unrecovered_sup = 0;
  std::size_t unrecovered_unsup = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t sup_cycles = 0;
  double overhead_pct = 0;  // heartbeat share of total frame traffic
  std::uint64_t sent = 0;
  std::uint64_t lost_sup = 0;
  std::uint64_t lost_unsup = 0;
};

struct RunOutcome {
  std::size_t injected = 0;
  std::size_t unrecovered = 0;
  std::uint64_t failovers = 0;
  std::vector<double> detect_ms;
  std::vector<double> frames_lost;
  std::uint64_t heartbeats = 0;
  std::uint64_t sup_cycles = 0;
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
};

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0;
  double sum = 0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

struct Sink final : ivn::CanNode {
  using ivn::CanNode::CanNode;
  void on_frame(const ivn::CanFrame&, SimTime) override { ++rx; }
  std::uint64_t rx = 0;
};

RunOutcome run_once(SimTime hb_period, double crash_rate_hz, std::uint64_t seed,
                    SimTime horizon, bool supervised) {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus body(sched, "can.body", 500'000);
  ivn::CanBus chassis(sched, "can.chassis", 500'000);
  body.bind_telemetry(t);
  chassis.bind_telemetry(t);
  gateway::RedundantGateway rgw(sched, "gw");
  rgw.bind_telemetry(t);
  rgw.add_domain("body", &body);
  rgw.add_domain("chassis", &chassis);
  rgw.add_route(0x100, "body", "chassis", /*safety_critical=*/true);
  rgw.start_sync(SimTime::from_ms(50));
  Sink sender("sender"), receiver("receiver");
  body.attach(&sender);
  chassis.attach(&receiver);

  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  // Crash semantics: a dead unit stays dead until something restarts it.
  // With supervision, the watchdog failover restores service and the window
  // end models the repaired unit rebooting and rejoining as standby (which
  // closes the fault record). Without supervision, nobody reboots anything.
  plan.on("gw.active", FaultKind::kCrash, [&](const FaultSpec&, bool active) {
    if (active) {
      rgw.set_active_down(true);
    } else if (supervised && !plan.port("gw.active").down()) {
      rgw.set_active_down(false);
      plan.notify_recovered("gw.active");
    }
  });
  plan.random_campaign(kCampaignStart, horizon, crash_rate_hz, kCrashDuration,
                       {{"gw.active", FaultKind::kCrash}});

  RunOutcome out;
  HealthSupervisor sup(sched, "e16");
  sup.bind_telemetry(t);
  HeartbeatEmitter hb(sched, sup, "gw.active", hb_period,
                      [&] { return !rgw.active().offline(); });
  if (supervised) {
    AliveSupervision alive_cfg;
    alive_cfg.period = hb_period * 5;  // WdgM reference cycle: 5 beats
    alive_cfg.expected = 5;
    alive_cfg.min_margin = 2;
    alive_cfg.max_margin = 2;
    EscalationPolicy esc;
    esc.failed_tolerance = 1;
    esc.reset_backoff = hb_period;
    sup.supervise_alive("gw.active", alive_cfg, esc);
    sup.set_reset_handler("gw.active", [&](const std::string&) {
      if (!rgw.failover()) return false;
      out.detect_ms.push_back(rgw.last_detection_latency().ms());
      out.frames_lost.push_back(
          static_cast<double>(rgw.last_failover_frames_lost()));
      return true;
    });
    sup.start();
    hb.start();
  }

  sim::PeriodicTask traffic(
      sched, kTrafficPeriod,
      [&] {
        ++out.sent;
        ivn::CanFrame f;
        f.id = 0x100;
        f.data = Bytes{0x01, 0x02, 0x03, 0x04};
        body.send(&sender, f);
      },
      kTrafficPeriod);
  sched.run_until(horizon + SimTime::from_s(2));
  traffic.stop();
  hb.stop();
  sup.stop();

  out.injected = plan.injected();
  out.unrecovered = plan.unrecovered();
  out.failovers = rgw.failovers();
  out.heartbeats = sup.heartbeats();
  out.sup_cycles = sup.cycles();
  out.lost = out.sent - receiver.rx;
  return out;
}

RowResult run_row(SimTime hb_period, double crash_rate_hz, std::uint64_t seed,
                  SimTime horizon) {
  const RunOutcome sup = run_once(hb_period, crash_rate_hz, seed, horizon, true);
  const RunOutcome unsup =
      run_once(hb_period, crash_rate_hz, seed, horizon, false);

  RowResult row;
  row.hb_ms = hb_period.ms();
  row.crashes = sup.injected;
  row.failovers = sup.failovers;
  row.detect_ms_mean = mean(sup.detect_ms);
  row.frames_lost_mean = mean(sup.frames_lost);
  row.unrecovered_sup = sup.unrecovered;
  row.unrecovered_unsup = unsup.unrecovered;
  row.heartbeats = sup.heartbeats;
  row.sup_cycles = sup.sup_cycles;
  const double frames = static_cast<double>(sup.heartbeats + sup.sent);
  row.overhead_pct =
      frames > 0 ? 100.0 * static_cast<double>(sup.heartbeats) / frames : 0;
  row.sent = sup.sent;
  row.lost_sup = sup.lost;
  row.lost_unsup = unsup.lost;
  return row;
}

std::string rows_to_json(std::uint64_t seed, const std::vector<RowResult>& rows) {
  std::string out = "{\"experiment\":\"e16_supervision\",\"seed\":" +
                    std::to_string(seed) + ",\"rows\":[";
  char buf[384];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"hb_ms\":%.1f,\"crashes\":%zu,\"failovers\":%llu,"
        "\"detect_ms_mean\":%.3f,\"frames_lost_mean\":%.2f,"
        "\"unrecovered_sup\":%zu,\"unrecovered_unsup\":%zu,"
        "\"heartbeats\":%llu,\"sup_cycles\":%llu,\"overhead_pct\":%.3f,"
        "\"sent\":%llu,\"lost_sup\":%llu,\"lost_unsup\":%llu}",
        i ? "," : "", r.hb_ms, r.crashes,
        static_cast<unsigned long long>(r.failovers), r.detect_ms_mean,
        r.frames_lost_mean, r.unrecovered_sup, r.unrecovered_unsup,
        static_cast<unsigned long long>(r.heartbeats),
        static_cast<unsigned long long>(r.sup_cycles), r.overhead_pct,
        static_cast<unsigned long long>(r.sent),
        static_cast<unsigned long long>(r.lost_sup),
        static_cast<unsigned long long>(r.lost_unsup));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::vector<SimTime> hb_periods =
      smoke ? std::vector<SimTime>{SimTime::from_ms(1), SimTime::from_ms(5),
                                   SimTime::from_ms(20)}
            : std::vector<SimTime>{SimTime::from_ms(1), SimTime::from_ms(2),
                                   SimTime::from_ms(5), SimTime::from_ms(10),
                                   SimTime::from_ms(20)};
  const SimTime horizon = smoke ? SimTime::from_s(6) : SimTime::from_s(20);
  const double crash_rate_hz = smoke ? 0.5 : 0.4;

  std::printf("E16: health supervision & redundant gateway failover\n");
  std::printf(
      "(seed %llu, horizon %llu s, crash rate %.1f Hz, crash windows of "
      "%llu ms, traffic every %llu ms)\n\n",
      static_cast<unsigned long long>(seed),
      static_cast<unsigned long long>(horizon.ns / 1'000'000'000ULL),
      crash_rate_hz,
      static_cast<unsigned long long>(kCrashDuration.ns / 1'000'000ULL),
      static_cast<unsigned long long>(kTrafficPeriod.ns / 1'000'000ULL));

  benchutil::Table table({"hb_ms", "crashes", "failovers", "detect_ms_mean",
                          "frames_lost_mean", "unrec_sup", "unrec_unsup",
                          "heartbeats", "sup_cycles", "overhead_%", "sent",
                          "lost_sup", "lost_unsup"});
  std::vector<RowResult> rows;
  std::uint64_t row_idx = 0;
  std::size_t total_unrecovered = 0;
  for (const SimTime hb : hb_periods) {
    const RowResult r = run_row(hb, crash_rate_hz, seed * 1000 + row_idx, horizon);
    ++row_idx;
    total_unrecovered += r.unrecovered_sup;
    table.add_row({benchutil::fmt("%.1f", r.hb_ms), benchutil::fmt_u(r.crashes),
                   benchutil::fmt_u(r.failovers),
                   benchutil::fmt("%.2f", r.detect_ms_mean),
                   benchutil::fmt("%.1f", r.frames_lost_mean),
                   benchutil::fmt_u(r.unrecovered_sup),
                   benchutil::fmt_u(r.unrecovered_unsup),
                   benchutil::fmt_u(r.heartbeats), benchutil::fmt_u(r.sup_cycles),
                   benchutil::fmt("%.3f", r.overhead_pct),
                   benchutil::fmt_u(r.sent), benchutil::fmt_u(r.lost_sup),
                   benchutil::fmt_u(r.lost_unsup)});
    rows.push_back(r);
  }
  table.print();
  std::printf("\n%s\n", rows_to_json(seed, rows).c_str());
  std::printf("\nsupervised unrecovered faults: %zu\n", total_unrecovered);
  return total_unrecovered > 255 ? 255 : static_cast<int>(total_unrecovered);
}
