// Micro-benchmarks for the crypto substrate (google-benchmark). These are
// the calibration baselines the experiment benches' cost models refer to.

#include <benchmark/benchmark.h>

#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/drbg.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/gcm.hpp"
#include "crypto/hmac.hpp"
#include "crypto/kdf.hpp"
#include "crypto/sha256.hpp"

using namespace aseck;
using namespace aseck::crypto;
using util::Bytes;

namespace {

const Bytes kKey16(16, 0x42);

void BM_AesEncryptBlock(benchmark::State& state) {
  const Aes aes(kKey16);
  Block in{}, out;
  for (auto _ : state) {
    aes.encrypt_block(in.data(), out.data());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesCtr(benchmark::State& state) {
  const Aes aes(kKey16);
  const Block iv{};
  const Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes_ctr(aes, iv, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Cmac(benchmark::State& state) {
  const Cmac cmac(kKey16);
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cmac.tag(msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Cmac)->Arg(8)->Arg(64)->Arg(1024);

void BM_Sha256(benchmark::State& state) {
  const Bytes msg(static_cast<std::size_t>(state.range(0)), 0xEF);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(msg));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes msg(256, 0x11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(kKey16, msg));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_AesGcmEncrypt(benchmark::State& state) {
  const Aes aes(kKey16);
  const Bytes iv(12, 0x01);
  const Bytes pt(static_cast<std::size_t>(state.range(0)), 0x22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes_gcm_encrypt(aes, iv, {}, pt));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AesGcmEncrypt)->Arg(64)->Arg(1024);

void BM_SheKdf(benchmark::State& state) {
  Block key{};
  key.fill(0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(she_kdf(key, she_key_update_enc_c()));
  }
}
BENCHMARK(BM_SheKdf);

void BM_EcdsaSign(benchmark::State& state) {
  Drbg rng(7u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const Digest digest = sha256(util::from_string("bench message"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign_digest(digest));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  Drbg rng(7u);
  const auto key = EcdsaPrivateKey::generate(rng);
  const Digest digest = sha256(util::from_string("bench message"));
  const EcdsaSignature sig = key.sign_digest(digest);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdsa_verify_digest(key.public_key(), digest, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdhShared(benchmark::State& state) {
  Drbg rng(8u);
  const auto a = EcdsaPrivateKey::generate(rng);
  const auto b = EcdsaPrivateKey::generate(rng);
  const Bytes info = util::from_string("kdf");
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecdh_shared(a, b.public_key(), info, 32));
  }
}
BENCHMARK(BM_EcdhShared);

void BM_DrbgBytes(benchmark::State& state) {
  Drbg rng(9u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.bytes(static_cast<std::size_t>(state.range(0))));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DrbgBytes)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
