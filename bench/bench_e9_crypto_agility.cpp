// Experiment E9 — crypto agility: in-field algorithm migration cost
// (paper §5 "Long In-field Lifetime": crypto assurance horizons of 5-7
// years vs 15-year vehicle life).
//
// Scenario: year 6, the fleet must move all onboard authentication off
// suite A (weakened) to suite B. Compare:
//  (a) policy-driven migration (this library's extensible architecture):
//      one signed policy document per vehicle, applied at next ignition;
//  (b) fixed-function firmware: every ECU that embeds the algorithm needs
//      a full OTA firmware campaign (download + flash + reboot + self-test).
// We model per-vehicle costs and fleet exposure time, and measure the
// runtime overhead the suite indirection costs on every message.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/layers.hpp"
#include "ecu/flash.hpp"

using namespace aseck;
using util::Bytes;

int main() {
  std::printf("E9: in-field crypto migration — policy-driven vs firmware\n\n");

  // --- per-vehicle migration cost model ------------------------------------
  // Policy path: download 2 KiB signed policy + verify (1 ECDSA) + apply.
  // Firmware path: per affected ECU: download image, flash write, reboot,
  // self-test. 12 of ~40 ECUs embed the MAC algorithm in fixed code.
  const double policy_bytes = 2048;
  const double fw_bytes_per_ecu = 512.0 * 1024;
  const int ecus_affected = 12;
  const double link_bps = 1e6;            // telematics downlink
  const double flash_us_per_ecu = ecu::Flash::write_latency_us(
      static_cast<std::size_t>(fw_bytes_per_ecu));
  const double reboot_s_per_ecu = 15.0;
  const double selftest_s_per_ecu = 30.0;

  const double policy_vehicle_s = policy_bytes * 8 / link_bps + 0.5 /*verify+apply*/;
  const double fw_vehicle_s =
      ecus_affected * (fw_bytes_per_ecu * 8 / link_bps +
                       flash_us_per_ecu / 1e6 + reboot_s_per_ecu +
                       selftest_s_per_ecu);

  // Fleet rollout: 1M vehicles, 2% daily connect rate for policy pushes;
  // firmware campaigns are staged at 0.5% daily (dealer/backoff limits).
  const double fleet = 1e6;
  const double policy_days = 1.0 / 0.02;   // 98% coverage in ~50 days -> use
  const double fw_days = 1.0 / 0.005;      // characteristic time constants

  benchutil::Table table({"migration_path", "per_vehicle_time",
                          "downtime/vehicle", "fleet_1/e_time_days",
                          "campaign_risk"});
  table.add_row({"policy update (extensible)",
                 benchutil::fmt("%.1f s", policy_vehicle_s), "none (hot apply)",
                 benchutil::fmt("%.0f", policy_days),
                 "low: config only, rollback = old policy"});
  table.add_row({"firmware redeploy (fixed-function)",
                 benchutil::fmt("%.0f s", fw_vehicle_s),
                 benchutil::fmt("%.0f s", ecus_affected * (reboot_s_per_ecu +
                                                           selftest_s_per_ecu)),
                 benchutil::fmt("%.0f", fw_days),
                 "high: 12 ECU images, brick/rollback risk"});
  table.print();
  std::printf("(fleet size %.0fk vehicles)\n", fleet / 1000);

  // --- runtime cost of the suite indirection --------------------------------
  std::printf("\nRuntime cost of the registry indirection (1e5 MAC ops):\n\n");
  benchutil::Table rt({"suite", "tag_us_per_op", "verify_us_per_op",
                       "relative_cost"});
  core::SuiteRegistry reg = core::SuiteRegistry::with_builtins();
  const Bytes key(16, 0x42);
  const Bytes msg(32, 0xAB);
  for (const auto& name : reg.names()) {
    const auto suite = reg.create(name, key, 8);
    const int n = 100000;
    auto t0 = std::chrono::steady_clock::now();
    Bytes tag;
    for (int i = 0; i < n; ++i) tag = suite->tag(msg);
    auto t1 = std::chrono::steady_clock::now();
    const double tag_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / n;
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      volatile bool ok = suite->verify(msg, tag);
      (void)ok;
    }
    t1 = std::chrono::steady_clock::now();
    const double ver_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / n;
    rt.add_row({name, benchutil::fmt("%.2f", tag_us),
                benchutil::fmt("%.2f", ver_us),
                benchutil::fmt("%.1fx", suite->cost_factor())});
  }
  rt.print();

  // --- migration correctness demo -------------------------------------------
  core::LayerManager mgr;
  core::SecurityPolicy p1;
  p1.version = 1;
  p1.values[core::keys::kSecocSuite] =
      core::PolicyValue(std::string("cmac-aes128"));
  mgr.apply(p1);
  auto old_suite = mgr.make_mac_suite(key);
  core::SecurityPolicy p2 = p1;
  p2.version = 2;
  p2.values[core::keys::kSecocSuite] =
      core::PolicyValue(std::string("hmac-sha256"));
  mgr.apply(p2);
  auto new_suite = mgr.make_mac_suite(key);
  std::printf("\nmigration cutover: old suite '%s' -> new suite '%s'; old tags "
              "verify under new suite: %s\n",
              old_suite->name().c_str(), new_suite->name().c_str(),
              new_suite->verify(msg, old_suite->tag(msg)) ? "YES (bug)"
                                                          : "no (clean)");
  std::printf(
      "\nReading: the extensible path migrates a vehicle ~%.0fx faster with\n"
      "no reboot window, at a ~2x per-message cost only when the heavier\n"
      "suite is selected — the indirection itself is a virtual call.\n",
      fw_vehicle_s / policy_vehicle_s);
  return 0;
}
