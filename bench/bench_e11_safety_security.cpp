// Experiment E11 — safety/security interplay (paper §3: "an external hack
// can cause the system to fail in a way that harms other agents, reducing
// functional safety to a security issue").
//
// Part A: hazard analysis of a reference vehicle's functions and the ASIL
// each electronic attack surface can reach.
// Part B: Monte-Carlo random-fault campaign comparing simplex vs redundant
// architectures (the SPF requirement), and the same functions under a
// *targeted* attack (bus-off of one ECU) — showing why random-fault
// redundancy does not automatically provide attack tolerance.

#include <cstdio>

#include "attacks/can_attacks.hpp"
#include "bench_util.hpp"
#include "ecu/ecu.hpp"
#include "safety/asil.hpp"
#include "safety/fault.hpp"

using namespace aseck;
using namespace aseck::safety;
using util::Bytes;

int main() {
  std::printf("E11: safety/security interplay\n\n");

  // --- Part A: hazards and attack criticality --------------------------------
  HazardRegistry reg;
  reg.add({"unintended full braking at speed", "brake-by-wire", Severity::kS3,
           Exposure::kE4, Controllability::kC3});
  reg.add({"loss of braking assist", "brake-by-wire", Severity::kS2,
           Exposure::kE3, Controllability::kC2});
  reg.add({"steering lock while driving", "steer-by-wire", Severity::kS3,
           Exposure::kE2, Controllability::kC3});
  reg.add({"unintended acceleration", "powertrain", Severity::kS3,
           Exposure::kE3, Controllability::kC2});
  reg.add({"airbag non-deployment", "restraint", Severity::kS3, Exposure::kE1,
           Controllability::kC3});
  reg.add({"wrong speed display", "cluster", Severity::kS1, Exposure::kE4,
           Controllability::kC1});
  reg.add({"headlight failure at night", "lighting", Severity::kS2,
           Exposure::kE2, Controllability::kC2});

  std::printf("Hazard registry (ISO 26262 ASIL determination):\n\n");
  benchutil::Table hz({"hazard", "function", "S/E/C", "ASIL"});
  for (const auto& h : reg.all()) {
    char sec[16];
    std::snprintf(sec, sizeof sec, "S%d/E%d/C%d",
                  static_cast<int>(h.severity), static_cast<int>(h.exposure),
                  static_cast<int>(h.controllability));
    hz.add_row({h.name, h.function, sec, asil_name(h.asil())});
  }
  hz.print();

  std::printf("\nASIL reachable through each electronic attack surface:\n\n");
  benchutil::Table atk({"attack surface", "hazard triggered", "ASIL"});
  const std::vector<SecuritySafetyLink> links{
      {"CAN injection of brake cmd", "unintended full braking at speed"},
      {"bus-off of brake ECU", "loss of braking assist"},
      {"OTA malicious powertrain fw", "unintended acceleration"},
      {"cluster spoofing", "wrong speed display"},
      {"body-domain compromise", "headlight failure at night"},
  };
  for (const auto& [name, asil] : attack_criticality(reg, links)) {
    std::string hazard;
    for (const auto& l : links) {
      if (l.attack == name) hazard = l.hazard_name;
    }
    atk.add_row({name, hazard, asil_name(asil)});
  }
  atk.print();

  // --- Part B: random faults vs targeted attack -------------------------------
  FunctionModel simplex;
  simplex.name = "braking-simplex";
  simplex.components = {"brake-ecu", "brake-actuator", "wheel-sensor",
                        "can-chassis"};
  FunctionModel redundant;
  redundant.name = "braking-redundant";
  redundant.components = {"brake-actuator"};
  redundant.redundancy_groups = {{"brake-ecu-a", "brake-ecu-b"},
                                 {"wheel-sensor-a", "wheel-sensor-b"},
                                 {"can-chassis", "flexray-backup"}};

  std::printf("\nRandom-fault campaign (p = 1e-2 per component, 200k trials):\n\n");
  benchutil::Table fc({"architecture", "SPFs", "failure_rate_%"});
  const auto campaign =
      run_fault_campaign({simplex, redundant}, 0.01, 200000, 99);
  fc.add_row({"simplex",
              std::to_string(single_points_of_failure(simplex).size()),
              benchutil::fmt("%.3f", campaign.failure_rate("braking-simplex") * 100)});
  fc.add_row({"redundant",
              std::to_string(single_points_of_failure(redundant).size()),
              benchutil::fmt("%.3f",
                             campaign.failure_rate("braking-redundant") * 100)});
  fc.print();

  // Targeted attack: adversary picks components, not coin flips. The
  // redundant design still fails if BOTH redundant ECUs run the same
  // firmware (common-mode compromise).
  std::printf("\nTargeted attack vs the same architectures:\n\n");
  benchutil::Table ta({"scenario", "simplex", "redundant(diverse)",
                       "redundant(common fw)"});
  // Bus-off one ECU:
  ta.add_row({"bus-off brake ECU", "function LOST",
              "survives (ECU-B takes over)", "survives"});
  // Malicious OTA exploiting one firmware bug:
  ta.add_row({"one fw exploit on brake ECUs", "function LOST",
              "survives (diverse fw)", "function LOST (common mode)"});
  ta.print();

  // Live demonstration: bus-off attack flips redundancy availability.
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "chassis", 500000);
  crypto::Block k{};
  ecu::Ecu ecu_a(sched, "brake-a", 1), ecu_b(sched, "brake-b", 2);
  ecu_a.provision(ecu::FirmwareImage{"a", 1, Bytes(16, 1)}, k, k, k);
  ecu_b.provision(ecu::FirmwareImage{"b", 1, Bytes(16, 1)}, k, k, k);
  ecu_a.attach_to(&bus);
  ecu_b.attach_to(&bus);
  ecu_a.boot();
  ecu_b.boot();
  attacks::BusOffAttacker atk_a(bus, "brake-a", 0x0F0);
  atk_a.arm();
  ecu_a.send_frame(0x0F0, Bytes{1});
  ecu_b.send_frame(0x0F0, Bytes{1});
  sched.run();
  std::set<std::string> failed;
  if (ecu_a.ivn::CanNode::state() == ivn::CanNodeState::kBusOff) {
    failed.insert("brake-ecu-a");
  }
  if (ecu_b.ivn::CanNode::state() == ivn::CanNodeState::kBusOff) {
    failed.insert("brake-ecu-b");
  }
  std::printf("\nlive bus-off attack on brake-a: failed={%s}; redundant "
              "function operational: %s\n",
              failed.count("brake-ecu-a") ? "brake-ecu-a" : "",
              redundant.operational(failed) ? "yes" : "NO");
  std::printf(
      "\nReading: attacks reach ASIL-D hazards through software alone (the\n"
      "paper's core interplay point); redundancy sized for random faults\n"
      "only covers attacks if the redundant channels are also *diverse* —\n"
      "a security requirement, not a safety one.\n");
  return 0;
}
