// Experiment E5 — OTA role-compromise matrix (paper §4.2's OTA key-
// compromise scenario, built out to the full Uptane analysis).
//
// For each single compromised signing key, the attacker forges the best
// metadata that key allows and attempts (a) arbitrary malicious install,
// (b) rollback to an old vulnerable image, (c) freeze (indefinitely serving
// stale metadata). We report which attacks succeed against the
// full-verification primary vs the partial-verification secondary, plus the
// fleet outcome of the shared-key side-channel chain.

#include <cstdio>

#include "attacks/scenarios.hpp"
#include "bench_util.hpp"
#include "ota/client.hpp"

using namespace aseck;
using namespace aseck::ota;
using util::Bytes;

namespace {

struct World {
  crypto::Drbg rng{4242u};
  Repository director{rng, "director", util::SimTime::from_s(3600)};
  Repository images{rng, "image-repo", util::SimTime::from_s(3600)};
  Bytes good = Bytes(4096, 0xAA);
  Bytes evil = Bytes(4096, 0x66);

  World() {
    director.add_target("fw", good, 5, "hw");
    images.add_target("fw", good, 5, "hw");
    director.publish(util::SimTime::from_s(1));
    images.publish(util::SimTime::from_s(1));
  }
};

/// Re-signs the downstream chain of a repo after tampering with targets,
/// using only the keys in `stolen` (others keep stale signatures).
void forge_targets(Repository& repo, const Bytes& evil, std::uint32_t version,
                   bool has_targets_key, bool has_snapshot_key,
                   bool has_timestamp_key) {
  auto& b = repo.mutable_bundle();
  b.targets.body.version += 1;
  b.targets.body.targets["fw"] =
      TargetInfo{crypto::sha256_bytes(evil), evil.size(), version, "hw"};
  if (has_targets_key) repo.sign_role(b.targets, Role::kTargets);
  b.snapshot.body.version += 1;
  b.snapshot.body.targets_version = b.targets.body.version;
  if (has_snapshot_key) repo.sign_role(b.snapshot, Role::kSnapshot);
  b.timestamp.body.version += 1;
  b.timestamp.body.snapshot_version = b.snapshot.body.version;
  b.timestamp.body.snapshot_hash =
      crypto::sha256_bytes(b.snapshot.body.serialize());
  if (has_timestamp_key) repo.sign_role(b.timestamp, Role::kTimestamp);
}

std::string attempt_full(World& w) {
  FullVerificationClient client("primary", w.director.trusted_root(),
                                w.images.trusted_root());
  const auto out = client.fetch_and_verify(
      w.director.metadata(), w.images.metadata(), w.director, w.images, "fw",
      "hw", 5, util::SimTime::from_s(10));
  if (out.error == OtaError::kOk && out.image == w.evil) return "COMPROMISED";
  if (out.error == OtaError::kOk) return "ok(genuine)";
  return std::string("blocked: ") + ota_error_name(out.error);
}

std::string attempt_partial(World& w) {
  PartialVerificationClient client(
      "secondary", w.director.role_key(Role::kTargets).public_key());
  const auto out = client.verify(w.director.metadata().targets, "fw", "hw", 5,
                                 util::SimTime::from_s(10));
  if (out.error == OtaError::kOk &&
      out.target.sha256 == crypto::sha256_bytes(w.evil)) {
    return "COMPROMISED";
  }
  if (out.error == OtaError::kOk) return "ok(genuine)";
  return std::string("blocked: ") + ota_error_name(out.error);
}

}  // namespace

int main() {
  std::printf("E5: Uptane single-key compromise matrix\n\n");
  benchutil::Table table({"compromised_key", "attack", "full_verification",
                          "partial_verification"});

  // 1. Director targets key.
  {
    World w;
    forge_targets(w.director, w.evil, 6, true, true, true);
    table.add_row({"director targets(+online)", "malicious install",
                   attempt_full(w), attempt_partial(w)});
  }
  // 2. Image-repo targets key only (director untouched).
  {
    World w;
    forge_targets(w.images, w.evil, 6, true, true, true);
    table.add_row({"image-repo targets(+online)", "malicious install",
                   attempt_full(w), attempt_partial(w)});
  }
  // 3. Timestamp key only: freeze attack (serve stale, re-signed timestamp).
  {
    World w;
    // New genuine release happens, but attacker freezes clients on v5 by
    // re-signing old metadata with fresh expiry using the timestamp key.
    auto& b = w.director.mutable_bundle();
    b.timestamp.body.version += 1;
    b.timestamp.body.expires = util::SimTime::from_s(7200);
    w.director.sign_role(b.timestamp, Role::kTimestamp);
    FullVerificationClient client("primary", w.director.trusted_root(),
                                  w.images.trusted_root());
    // Within the other roles' expiry the stale view verifies...
    const auto inside = client.fetch_and_verify(
        w.director.metadata(), w.images.metadata(), w.director, w.images, "fw",
        "hw", 5, util::SimTime::from_s(2000));
    // ...but past snapshot/targets expiry the freeze is detected.
    FullVerificationClient client2("primary2", w.director.trusted_root(),
                                   w.images.trusted_root());
    const auto beyond = client2.fetch_and_verify(
        w.director.metadata(), w.images.metadata(), w.director, w.images, "fw",
        "hw", 5, util::SimTime::from_s(5000));
    const std::string verdict =
        std::string(inside.error == OtaError::kOk ? "stale ok <= expiry; "
                                                  : "blocked early; ") +
        "then " + ota_error_name(beyond.error);
    table.add_row({"timestamp only", "freeze (bounded)", verdict,
                   "same (expiry-bounded)"});
  }
  // 4. Rollback attempt with full key set but an older version number.
  {
    World w;
    forge_targets(w.director, w.evil, 3, true, true, true);  // version 3 < 5
    forge_targets(w.images, w.evil, 3, true, true, true);
    table.add_row({"both repos (all online keys)", "rollback to v3",
                   attempt_full(w), attempt_partial(w)});
  }
  // 5. Root key compromise: game over (can rotate everything).
  {
    World w;
    // With the root key, attacker re-keys all roles and signs a consistent
    // malicious view of BOTH repos; nothing below root can stop it.
    table.add_row({"root (either repo)", "malicious install",
                   "COMPROMISED (by construction)", "COMPROMISED"});
  }
  table.print();

  std::printf("\nFleet outcome of the §4.2 side-channel -> OTA chain:\n\n");
  benchutil::Table fleet({"key_policy", "sidechannel_cm", "key_extracted",
                          "vehicles_compromised"});
  struct Cfg {
    bool shared;
    bool masking;
  };
  for (const Cfg c : {Cfg{true, false}, Cfg{false, false}, Cfg{true, true}}) {
    attacks::FleetConfig fc;
    fc.fleet_size = 20;
    fc.shared_symmetric_keys = c.shared;
    fc.masking_countermeasure = c.masking;
    const auto r = attacks::run_fleet_compromise(fc, 777);
    fleet.add_row({c.shared ? "shared key" : "per-vehicle keys",
                   c.masking ? "masking" : "none",
                   r.key_extracted ? "yes (" + std::to_string(r.traces_used) +
                                         " traces)"
                                   : "no",
                   std::to_string(r.vehicles_compromised) + "/20"});
  }
  fleet.print();
  std::printf(
      "\nReading: no single online-key compromise defeats full verification\n"
      "(two-repo agreement + snapshot pinning + rollback counters); partial\n"
      "verification falls to a director-targets compromise. Shared symmetric\n"
      "keys turn one physical side-channel breach into a fleet-wide one.\n");
  return 0;
}
