// Experiment E3 — pseudonym rotation vs tracking success (paper §4.2
// "Privacy Scenario").
//
// A passive adversary with city-wide coverage records all BSMs and links
// pseudonyms by kinematic continuity. We sweep the rotation period and
// measure linkability: the fraction of actual pseudonym hand-offs the
// adversary correctly chains. Rotation alone (predictable trajectories)
// does little; adding a silent period around each rotation breaks the
// kinematic link — the trade-off architects must tune.

#include <cmath>
#include <cstdio>
#include <set>

#include "bench_util.hpp"
#include "v2x/cert.hpp"
#include "v2x/net.hpp"

using namespace aseck;
using namespace aseck::v2x;

namespace {

struct Scenario {
  double linked_fraction;  // of true consecutive pseudonym pairs
  std::size_t chains;
  std::size_t observed;
};

Scenario run(int n_vehicles, std::uint64_t rotation_s, bool silent_period,
             std::uint64_t seed) {
  sim::Scheduler sched;
  crypto::Drbg rng(seed);
  auto root = CertificateAuthority::make_root(rng, "root",
                                              util::SimTime::from_s(1 << 20));
  auto pca = CertificateAuthority::make_sub(rng, "pca", root,
                                            util::SimTime::from_s(1 << 20));
  TrustStore trust;
  trust.add_root(root.certificate());
  trust.add_intermediate(pca.certificate());

  V2xMedium medium(sched, 300.0, 0.0, seed);
  TrackingAdversary adv("adversary", {0, 0}, util::SimTime::from_s(20), 80.0);
  medium.attach_monitor(&adv);

  util::Rng layout(seed ^ 0x99);
  const std::size_t pseudonyms = 4;
  std::vector<std::unique_ptr<VehicleNode>> vehicles;
  std::vector<std::vector<std::uint32_t>> truth;  // per-vehicle temp id seq
  for (int i = 0; i < n_vehicles; ++i) {
    auto batch = pca.issue_pseudonyms(rng, pseudonyms, util::SimTime::zero(),
                                      util::SimTime::from_s(1 << 20));
    std::vector<std::uint32_t> ids;
    for (const auto& c : batch.certs) {
      ids.push_back(util::load_be32(c.id().data()));
    }
    truth.push_back(ids);
    PseudonymPolicy policy;
    policy.rotation_period = util::SimTime::from_s(rotation_s);
    // Vehicles on spread-out lanes with varied headings.
    const double angle = layout.uniform_real(0, 6.28318);
    vehicles.push_back(std::make_unique<VehicleNode>(
        sched, medium, "v" + std::to_string(i),
        Position{layout.uniform_real(-5000, 5000),
                 layout.uniform_real(-5000, 5000)},
        20.0 * std::cos(angle), 20.0 * std::sin(angle), trust,
        std::move(batch), policy));
  }

  const std::uint64_t total_s = rotation_s * pseudonyms;
  for (auto& v : vehicles) v->start();
  if (!silent_period) {
    sched.run_until(util::SimTime::from_s(total_s));
  } else {
    // Silent period: vehicles stop broadcasting for 5 s around rotations.
    for (std::uint64_t t = 0; t < total_s; t += rotation_s) {
      sched.run_until(util::SimTime::from_s(t + rotation_s - 5));
      for (auto& v : vehicles) v->stop();
      sched.run_until(util::SimTime::from_s(t + rotation_s + 1));
      for (auto& v : vehicles) v->start();
    }
  }
  for (auto& v : vehicles) v->stop();
  sched.run();

  // Score: which true consecutive (id_k -> id_{k+1}) pairs appear
  // consecutively in some adversary chain?
  const auto chains = adv.link_chains();
  std::set<std::pair<std::uint32_t, std::uint32_t>> linked;
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      linked.insert({chain[i], chain[i + 1]});
    }
  }
  std::size_t total_pairs = 0, hit = 0;
  for (const auto& ids : truth) {
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      ++total_pairs;
      if (linked.count({ids[i], ids[i + 1]})) ++hit;
    }
  }
  Scenario s;
  s.linked_fraction =
      total_pairs ? static_cast<double>(hit) / static_cast<double>(total_pairs) : 0;
  s.chains = chains.size();
  s.observed = adv.observed();
  return s;
}

}  // namespace

int main() {
  std::printf("E3: pseudonym rotation vs adversary tracking success\n");
  std::printf("(10 vehicles, 4 pseudonyms each, city-wide passive adversary)\n\n");

  benchutil::Table table({"rotation_s", "silent_period", "linked_%",
                          "adversary_chains", "bsm_observed"});
  for (const std::uint64_t rot : {10u, 30u, 60u}) {
    for (const bool silent : {false, true}) {
      const Scenario s = run(10, rot, silent, 1000 + rot);
      table.add_row({std::to_string(rot), silent ? "5s" : "none",
                     benchutil::fmt("%.0f", s.linked_fraction * 100),
                     benchutil::fmt_u(s.chains), benchutil::fmt_u(s.observed)});
    }
  }
  table.print();
  std::printf(
      "\nReading: with continuous broadcasting, kinematic linking defeats\n"
      "rotation at any period (~100%% linked). A 5 s silent period around\n"
      "each rotation collapses linkability, at the cost of a safety-message\n"
      "gap — the authentication-vs-anonymity conundrum of Section 4.2.\n");
  return 0;
}
