// Experiment E7 — CAN IDS detection quality vs attack type and intensity
// (paper §7 "Secure Networks": next-generation IVN intrusion detection).
//
// The ensemble (frequency + payload + specification detectors) is trained on
// benign traffic from a 6-stream vehicle workload, then evaluated against
// injection, spoofing, fuzzing, and low-and-slow variants, reporting
// precision / recall / F1 / false-positive rate per attack intensity.

#include <cstdio>

#include "bench_util.hpp"
#include "ids/detectors.hpp"
#include "util/rng.hpp"

using namespace aseck;
using util::Bytes;

namespace {

struct Stream {
  std::uint32_t id;
  std::uint64_t period_ms;
  std::uint8_t mode_byte;  // constant per stream
};

const std::vector<Stream> kStreams{
    {0x0F0, 10, 0x10}, {0x110, 20, 0x20}, {0x1A0, 50, 0x01},
    {0x2C0, 100, 0x7F}, {0x300, 100, 0x02}, {0x4B0, 200, 0x00},
};

ivn::CanFrame benign_frame(const Stream& s, util::Rng& rng) {
  ivn::CanFrame f;
  f.id = s.id;
  f.data = Bytes(8, 0);
  f.data[0] = s.mode_byte;
  f.data[1] = static_cast<std::uint8_t>(40 + rng.uniform(20));  // signal
  f.data[7] = static_cast<std::uint8_t>(rng.next_u64());        // counter/noise
  return f;
}

/// Generates interleaved benign traffic for `seconds`, calling `sink`.
template <typename Fn>
void benign_traffic(double seconds, util::Rng& rng, double jitter_frac, Fn sink) {
  for (const Stream& s : kStreams) {
    std::uint64_t t_us = rng.uniform(1000);
    while (t_us < seconds * 1e6) {
      sink(benign_frame(s, rng), sim::SimTime::from_us(t_us));
      const double jitter = 1.0 + rng.gaussian(0.0, jitter_frac);
      t_us += static_cast<std::uint64_t>(
          static_cast<double>(s.period_ms) * 1000.0 * std::max(0.5, jitter));
    }
  }
}

struct EvalResult {
  ids::IdsScore score;
};

EvalResult evaluate(const std::string& attack, double intensity_hz,
                    std::uint64_t seed, bool extended = false) {
  util::Rng rng(seed);
  ids::IdsEnsemble ensemble =
      extended ? ids::make_extended_ensemble() : ids::make_default_ensemble();

  // Train on 60 s of benign traffic (collect + sort by time).
  std::vector<std::pair<sim::SimTime, ivn::CanFrame>> train;
  benign_traffic(60.0, rng, 0.02, [&](const ivn::CanFrame& f, sim::SimTime at) {
    train.emplace_back(at, f);
  });
  std::sort(train.begin(), train.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [at, f] : train) ensemble.train(f, at);
  ensemble.finish_training();

  // Live: 30 s benign + attack frames at `intensity_hz`.
  std::vector<std::tuple<sim::SimTime, ivn::CanFrame, bool>> live;
  benign_traffic(30.0, rng, 0.02, [&](const ivn::CanFrame& f, sim::SimTime at) {
    live.emplace_back(at, f, false);
  });
  const auto n_attack = static_cast<std::uint64_t>(30.0 * intensity_hz);
  for (std::uint64_t i = 0; i < n_attack; ++i) {
    const auto at = sim::SimTime::from_us(
        rng.uniform(static_cast<std::uint64_t>(30e6)));
    ivn::CanFrame f;
    if (attack == "injection") {
      // High-rate duplicate of the brake stream with malicious payload.
      f.id = 0x0F0;
      f.data = Bytes(8, 0);
      f.data[0] = 0x10;
      f.data[1] = 0xFF;  // implausible but matching DLC
    } else if (attack == "spoof_payload") {
      f.id = 0x110;
      f.data = Bytes(8, 0);
      f.data[0] = 0x99;  // wrong mode byte, correct cadence
      f.data[1] = 50;
    } else if (attack == "fuzz") {
      f.id = static_cast<std::uint32_t>(rng.uniform(0x800));
      f.data = rng.bytes(rng.uniform(9));
    } else {  // "unknown_id"
      f.id = 0x6E6;
      f.data = Bytes(8, 0x42);
    }
    live.emplace_back(at, f, true);
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return std::get<0>(a) < std::get<0>(b); });
  for (const auto& [at, f, is_attack] : live) {
    ensemble.observe_labeled(f, at, is_attack);
  }
  return EvalResult{ensemble.score()};
}

}  // namespace

int main() {
  std::printf("E7: IDS precision/recall vs attack type and intensity\n");
  std::printf("(6 benign streams, 60 s training, 30 s evaluation)\n\n");

  benchutil::Table table({"attack", "rate_hz", "precision", "recall", "f1",
                          "fpr_%"});
  const std::vector<std::string> attacks{"injection", "spoof_payload", "fuzz",
                                         "unknown_id"};
  for (const auto& attack : attacks) {
    for (const double hz : {1.0, 10.0, 100.0}) {
      const auto r = evaluate(attack, hz, 5000 + static_cast<std::uint64_t>(hz));
      table.add_row({attack, benchutil::fmt("%.0f", hz),
                     benchutil::fmt("%.2f", r.score.precision()),
                     benchutil::fmt("%.2f", r.score.recall()),
                     benchutil::fmt("%.2f", r.score.f1()),
                     benchutil::fmt("%.2f", r.score.fpr() * 100)});
    }
  }
  table.print();

  // Ablation: adding the sequence (Markov-transition) detector.
  std::printf("\nAblation: default 3-detector ensemble vs + sequence detector\n");
  std::printf("(injection attack, the hardest case above)\n\n");
  benchutil::Table abl({"ensemble", "rate_hz", "recall", "fpr_%"});
  for (const double hz : {1.0, 10.0}) {
    const auto base = evaluate("injection", hz,
                               7000 + static_cast<std::uint64_t>(hz), false);
    const auto ext = evaluate("injection", hz,
                              7000 + static_cast<std::uint64_t>(hz), true);
    abl.add_row({"default(3)", benchutil::fmt("%.0f", hz),
                 benchutil::fmt("%.2f", base.score.recall()),
                 benchutil::fmt("%.2f", base.score.fpr() * 100)});
    abl.add_row({"+sequence(4)", benchutil::fmt("%.0f", hz),
                 benchutil::fmt("%.2f", ext.score.recall()),
                 benchutil::fmt("%.2f", ext.score.fpr() * 100)});
  }
  abl.print();

  std::printf(
      "\nReading: unknown-id and fuzzing attacks are near-perfectly caught by\n"
      "the specification detector (F1 ~ 1.0). Injection and payload spoofing\n"
      "on *legitimate* ids are caught via payload anomalies (recall 1.0) but\n"
      "with lower precision; note the alert-storm effect: heavy injection\n"
      "contaminates the timing model of the attacked id, so the benign-frame\n"
      "false-positive rate grows with attack intensity — the classic\n"
      "anomaly-IDS operational cost the literature reports.\n");
  return 0;
}
