// Micro-benchmark — per-event cost of the telemetry core.
//
// The legacy TraceSink::record copies three std::strings (component, kind,
// detail) per event. The TraceBus fast path takes two interned 32-bit
// TraceIds plus the detail string, so the steady-state cost is one string
// move and a vector push. This bench verifies the refactor's contract:
// the interned path must not be slower than the old string-copying one,
// and a disabled scope behind ASECK_TRACE must be near-free because the
// detail string is never built.

#include <benchmark/benchmark.h>

#include <string>

#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace {

using aseck::sim::MetricsRegistry;
using aseck::sim::TraceBus;
using aseck::sim::TraceScope;
using aseck::sim::TraceSink;
using aseck::util::SimTime;

// Drain storage every 64Ki events so unbounded sinks don't grow without
// limit across benchmark iterations. Both baseline and new path pay the
// same (amortised ~0) cost, so the comparison stays fair.
constexpr std::uint64_t kDrainMask = (1u << 16) - 1;

void BM_LegacySinkRecord(benchmark::State& state) {
  TraceSink sink;
  std::uint64_t i = 0;
  for (auto _ : state) {
    sink.record(SimTime::from_us(i), "can0", "tx", "id=291 dlc=8");
    if ((++i & kDrainMask) == 0) sink.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LegacySinkRecord);

void BM_BusRecordInterned(benchmark::State& state) {
  TraceBus bus;
  const auto cid = bus.intern("can0");
  const auto kid = bus.intern("tx");
  std::uint64_t i = 0;
  for (auto _ : state) {
    bus.record(SimTime::from_us(i), cid, kid, "id=291 dlc=8");
    if ((++i & kDrainMask) == 0) bus.clear();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusRecordInterned);

void BM_BusRecordRingBuffer(benchmark::State& state) {
  TraceBus bus;
  bus.set_capacity(4096);  // steady-state overwrite, no growth, no clear
  const auto cid = bus.intern("can0");
  const auto kid = bus.intern("tx");
  std::uint64_t i = 0;
  for (auto _ : state) {
    bus.record(SimTime::from_us(i++), cid, kid, "id=291 dlc=8");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusRecordRingBuffer);

void BM_BusRecordColdStrings(benchmark::State& state) {
  // Worst case for the new path: no pre-interned ids, the string_view
  // overload does two hash lookups per event.
  TraceBus bus;
  bus.set_capacity(4096);
  std::uint64_t i = 0;
  for (auto _ : state) {
    bus.record(SimTime::from_us(i++), "can0", "tx", "id=291 dlc=8");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BusRecordColdStrings);

void BM_ScopeDisabledMacro(benchmark::State& state) {
  // Hot sites compile to `if (scope.enabled())`; when tracing is off the
  // detail string on the right of the comma is never constructed.
  TraceScope scope("can0");
  scope.set_enabled(false);
  const auto kid = scope.kind("tx");
  std::uint64_t i = 0;
  for (auto _ : state) {
    ASECK_TRACE(scope, SimTime::from_us(i), kid,
                "id=" + std::to_string(i) + " dlc=8");
    benchmark::DoNotOptimize(++i);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopeDisabledMacro);

void BM_ScopeEnabledMacro(benchmark::State& state) {
  // Same site with tracing on: the guard passes and the event lands in the
  // scope's ring.
  TraceScope scope("can0");
  scope.bus()->set_capacity(4096);
  const auto kid = scope.kind("tx");
  std::uint64_t i = 0;
  for (auto _ : state) {
    ASECK_TRACE(scope, SimTime::from_us(i), kid, "id=291 dlc=8");
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScopeEnabledMacro);

void BM_CounterInc(benchmark::State& state) {
  MetricsRegistry reg;
  auto& c = reg.counter("can.can0.frames_ok");
  for (auto _ : state) {
    c.inc();
    benchmark::DoNotOptimize(c);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

}  // namespace

BENCHMARK_MAIN();
