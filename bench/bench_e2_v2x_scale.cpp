// Experiment E2 — V2X verification at scale (paper §5 "Verification Needs",
// §7 "Secure Interfaces").
//
// Part A sweeps the number of vehicles in radio range and reports
// per-vehicle verification workload: received SPDUs/s, ECDSA
// verifications/s demanded, CPU budget consumed (at a 350 us/verify
// automotive HSM cost), and the verification backlog ratio — showing where
// full verification stops being real-time feasible and
// sampling/prioritization becomes necessary. Broadcasts go through the
// uniform-grid spatial index (v2x/grid.hpp) — delivery is bit-identical to
// the legacy linear scan (enforced by v2x_grid_test.cpp), only neighbor
// discovery cost changes.
//
// Part B isolates that discovery cost: a city-scale field of stationary
// radios (no crypto) broadcasting once each, linear scan vs grid index.
// Reported: exact-distance checks per broadcast (the O(N) vs O(density)
// difference) and wall time.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "v2x/cert.hpp"
#include "v2x/net.hpp"

using namespace aseck;
using namespace aseck::v2x;

namespace {

/// Minimal antenna for part B: position only, counts receptions.
class FieldRadio : public V2xRadio {
 public:
  FieldRadio(std::string name, Position pos)
      : V2xRadio(std::move(name)), pos_(pos) {}
  Position position() const override { return pos_; }
  void on_spdu(const Spdu&, util::SimTime) override { ++received_; }
  std::uint64_t received() const { return received_; }

 private:
  Position pos_;
  std::uint64_t received_ = 0;
};

struct DiscoveryCost {
  std::uint64_t checks = 0;
  std::uint64_t delivered = 0;
  double wall_ms = 0;
};

DiscoveryCost discovery_run(int n, bool use_grid) {
  sim::Scheduler sched;
  V2xMedium medium(sched, 300.0, 0.0, 7);
  if (use_grid) medium.enable_grid_index();
  // ~125 radios/km^2 metro density: field side grows with sqrt(N).
  const double side = std::sqrt(static_cast<double>(n) / 125.0) * 1000.0;
  util::Rng place(4242);
  std::vector<std::unique_ptr<FieldRadio>> radios;
  radios.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<FieldRadio>(
        "r" + std::to_string(i),
        Position{place.uniform_real(0, side), place.uniform_real(0, side)}));
    medium.attach(radios.back().get());
  }
  const auto wall0 = std::chrono::steady_clock::now();
  for (auto& r : radios) medium.broadcast(r.get(), Spdu{});
  sched.run();
  const auto wall1 = std::chrono::steady_clock::now();
  DiscoveryCost c;
  c.checks = medium.receivers_checked();
  c.delivered = medium.delivered();
  c.wall_ms = std::chrono::duration<double, std::milli>(wall1 - wall0).count();
  return c;
}

}  // namespace

int main() {
  std::printf("E2: V2X verification load vs vehicles in range\n");
  std::printf("(10 Hz BSMs, 300 m range, ECDSA P-256, HSM verify = 350 us)\n\n");

  benchutil::Table table({"vehicles", "rx_per_s", "verify_per_s",
                          "hsm_util_%", "verified_ok", "rejected",
                          "wallclock_sign+verify_ms"});

  for (const int n : {2, 5, 10, 20, 40}) {
    sim::Scheduler sched;
    crypto::Drbg rng(42u);
    auto root = CertificateAuthority::make_root(rng, "root",
                                                util::SimTime::from_s(1 << 20));
    auto pca = CertificateAuthority::make_sub(rng, "pca", root,
                                              util::SimTime::from_s(1 << 20));
    TrustStore trust;
    trust.add_root(root.certificate());
    trust.add_intermediate(pca.certificate());

    V2xMedium medium(sched, 300.0, 0.0, 7);
    medium.enable_grid_index();  // bit-identical to the linear scan
    std::vector<std::unique_ptr<VehicleNode>> vehicles;
    for (int i = 0; i < n; ++i) {
      auto batch = pca.issue_pseudonyms(rng, 1, util::SimTime::zero(),
                                        util::SimTime::from_s(1 << 20));
      // All within range: a dense platoon.
      vehicles.push_back(std::make_unique<VehicleNode>(
          sched, medium, "v" + std::to_string(i),
          Position{static_cast<double>(5 * i), 0.0}, 25.0, 0.0, trust,
          std::move(batch)));
    }

    const double sim_seconds = 1.0;
    const auto wall0 = std::chrono::steady_clock::now();
    for (auto& v : vehicles) v->start();
    sched.run_until(util::SimTime::from_seconds_f(sim_seconds));
    for (auto& v : vehicles) v->stop();
    sched.run();
    const auto wall1 = std::chrono::steady_clock::now();

    std::uint64_t rx = 0, ok = 0, rej = 0;
    for (const auto& v : vehicles) {
      rx += v->stats().spdu_received;
      ok += v->stats().verified_ok;
      for (const auto& [k, c] : v->stats().rejected) rej += c;
    }
    const double rx_per_vehicle_s =
        static_cast<double>(rx) / n / sim_seconds;
    const double verify_per_s = rx_per_vehicle_s;  // full verification
    // HSM budget: 350 us per verification.
    const double hsm_util = verify_per_s * VehicleNode::kVerifyCostUs / 1e6;
    table.add_row(
        {std::to_string(n), benchutil::fmt("%.0f", rx_per_vehicle_s),
         benchutil::fmt("%.0f", verify_per_s),
         benchutil::fmt("%.1f", hsm_util * 100), benchutil::fmt_u(ok),
         benchutil::fmt_u(rej),
         benchutil::fmt("%.0f", std::chrono::duration<double, std::milli>(
                                    wall1 - wall0)
                                    .count())});
  }
  table.print();
  std::printf(
      "\nReading: verification demand grows linearly with neighbors (10 Hz x\n"
      "(N-1) per vehicle). A 350 us HSM saturates at ~2860 verifications/s,\n"
      "i.e. ~286 neighbors at BSM rates alone — dense-intersection peaks\n"
      "plus event messages exceed that, and congested channels batch far\n"
      "more. Full verification therefore cannot be a fixed-function choice:\n"
      "the architecture must support sampling/prioritization modes (E10) —\n"
      "the extensible-verification requirement the paper derives.\n");

  std::printf("\nNeighbor discovery cost: linear scan vs uniform-grid index\n");
  std::printf("(one broadcast per radio, metro density, no crypto)\n\n");
  benchutil::Table disc({"radios", "checks_linear", "checks_grid", "ratio",
                         "wall_linear_ms", "wall_grid_ms", "delivered"});
  for (const int n : {200, 800, 3200, 12800}) {
    const DiscoveryCost lin = discovery_run(n, false);
    const DiscoveryCost grid = discovery_run(n, true);
    if (lin.delivered != grid.delivered) {
      std::printf("DELIVERY MISMATCH at n=%d: linear %llu vs grid %llu\n", n,
                  static_cast<unsigned long long>(lin.delivered),
                  static_cast<unsigned long long>(grid.delivered));
      return 1;
    }
    disc.add_row({std::to_string(n), benchutil::fmt_u(lin.checks),
                  benchutil::fmt_u(grid.checks),
                  benchutil::fmt("%.1fx", static_cast<double>(lin.checks) /
                                              static_cast<double>(grid.checks)),
                  benchutil::fmt("%.1f", lin.wall_ms),
                  benchutil::fmt("%.1f", grid.wall_ms),
                  benchutil::fmt_u(lin.delivered)});
  }
  disc.print();
  std::printf(
      "\nReading: the linear scan exact-checks every attached radio per\n"
      "broadcast (O(N^2) per wave); the grid only checks candidates from\n"
      "the cells overlapping the range circle, so cost tracks local density\n"
      "instead of fleet size — the substrate E19 scales to 100k vehicles.\n");
  return 0;
}
