// Experiment E21 — campaign-storm-hardened OTA serving front (paper §5:
// fleet-scale in-field patching makes the update backend itself a
// safety-relevant component; §7: the secure-update layer has to keep
// delivering under the load its own campaigns generate).
//
// Three storm shapes, each run twice — admission control ON (the hardened
// `ota::RepositoryServer` front) and OFF (the legacy "repository cannot
// fail" control arm):
//
//   1. sync_wave  — the whole fleet is dispatched in ONE synchronized wave
//      (vehicle_stagger = 0) on top of a background-poller floor: the
//      classic wave stampede. ON sheds the burst with slotted kRetryAfter
//      and keeps the admitted queue delay under its configured bound; OFF
//      lets the virtual queue grow without limit.
//
//   2. retry_align — a repository outage sized so that blind client-side
//      exponential backoff (all clients aligned, no jitter) burns through
//      max_attempts INSIDE the outage. OFF strands the fleet
//      (kRetriesExhausted); ON answers the outage with slotted retry-after
//      deferrals that do not count as attempts, so every vehicle waits out
//      the outage de-synchronized and recovers.
//
//   3. slowdown_wave — a kRepoSlowdown brown-out (service-latency inflation,
//      not a binary outage) lands mid-campaign: the ON server walks its
//      degradation ladder (normal -> shed_delta -> shed_refresh ->
//      shed_admission) and back down after the window, while the
//      CampaignRunner's wave-level backpressure pauses dispatch until the
//      shed ratio recovers. OFF has no ladder and no backpressure — the
//      queue just absorbs the inflated service times.
//
// Preamble: measures the satellite win of Repository::snapshot() (one
// copy-on-write MetadataBundle shared per generation) against a full bundle
// copy per request. Wall-clock timing is printed only outside --smoke; the
// JSON report carries only deterministic facts.
//
// Exit code = invariant violations, capped at 255:
//   * any ON arm with unrecovered vehicles, an unfinished campaign, an
//     admitted queue delay above the configured bound, an unbounded p99
//     time-to-update, or a ladder that fails to return to kNormal;
//   * the slowdown ON arm if the ladder or the wave backpressure never
//     engaged (the brown-out must be visible to be survivable);
//   * any OFF arm that fails to look worse than its ON twin (no stranded
//     vehicles in retry_align, no queue-delay blow-up in the others) —
//     a control arm that cannot demonstrate the failure mode is a bug too.
// Output is bit-deterministic per seed: chaos-smoke CI diffs two
// `--smoke --seed 42` runs byte-for-byte.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cloud/frontend.hpp"
#include "ecu/flash.hpp"
#include "ota/campaign.hpp"
#include "ota/client.hpp"
#include "ota/repository.hpp"
#include "ota/server.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

using namespace aseck;
using ecu::Flash;
using ecu::FirmwareImage;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::SimTime;
using util::Bytes;

namespace {

Bytes patterned(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xFF);
  }
  return b;
}

constexpr std::size_t kImageBytes = 64 * 1024;
constexpr std::size_t kChunkBytes = 16 * 1024;

/// v1 is the fleet's installed image; v2 differs only in one 4 KiB region,
/// so delta-encoded chunks collapse to the diff + per-chunk frame headers.
Bytes base_image() { return patterned(kImageBytes, 0x11); }
Bytes next_image() {
  Bytes b = base_image();
  for (std::size_t i = 24 * 1024; i < 28 * 1024; ++i) b[i] ^= 0xA5;
  return b;
}

// --- Preamble: snapshot coalescing vs full bundle copies ---------------------

struct SnapshotResult {
  std::size_t iters = 0;
  bool shared = false;        // every snapshot() of one generation aliases
  bool generation_stable = false;
  double copy_us = 0.0;       // wall time, printed only when !smoke
  double snapshot_us = 0.0;
  int violations = 0;
};

SnapshotResult run_snapshot_preamble(std::uint64_t seed, bool smoke) {
  crypto::Drbg rng{seed};
  ota::Repository repo(rng, "director", SimTime::from_s(360000));
  for (int i = 0; i < 8; ++i) {
    repo.add_target("ecu" + std::to_string(i) + "-fw", patterned(4096, 0x40 + i),
                    2, "ecu-hw");
  }
  repo.publish(SimTime::from_ms(1));

  SnapshotResult r;
  r.iters = smoke ? 500 : 20000;

  volatile std::size_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < r.iters; ++i) {
    ota::MetadataBundle copy = repo.metadata();  // the pre-snapshot cost
    sink = sink + copy.targets.body.targets.size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t gen0 = repo.generation();
  std::shared_ptr<const ota::MetadataBundle> first = repo.snapshot();
  bool shared = true;
  for (std::size_t i = 0; i < r.iters; ++i) {
    std::shared_ptr<const ota::MetadataBundle> s = repo.snapshot();
    shared = shared && s.get() == first.get();
    sink = sink + s->targets.body.targets.size();
  }
  const auto t2 = std::chrono::steady_clock::now();
  (void)sink;

  r.shared = shared;
  r.generation_stable = repo.generation() == gen0;
  r.copy_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  r.snapshot_us = std::chrono::duration<double, std::micro>(t2 - t1).count();
  if (!r.shared) ++r.violations;
  if (!r.generation_stable) ++r.violations;
  return r;
}

// --- Storm shapes ------------------------------------------------------------

enum class Shape { kSyncWave, kRetryAlign, kSlowdownWave };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kSyncWave: return "sync_wave";
    case Shape::kRetryAlign: return "retry_align";
    case Shape::kSlowdownWave: return "slowdown_wave";
  }
  return "?";
}

struct StormRow {
  Shape shape = Shape::kSyncWave;
  bool admission = false;
  std::size_t fleet = 0;
  std::size_t updated = 0;
  std::size_t unrecovered = 0;
  bool campaign_finished = false;
  double p50_ms = 0.0;   // time-to-update over updated vehicles (sim time)
  double p99_ms = 0.0;
  double max_queue_ms = 0.0;  // worst admitted queueing delay
  std::uint64_t requests = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t refreshes = 0;
  double cache_hit_rate = 0.0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t delta_saved = 0;
  std::string peak_tier;
  std::string final_tier;
  std::uint64_t transitions = 0;
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t bg_ok = 0;
  std::uint64_t bg_shed = 0;
  int violations = 0;  // ON-arm absolute invariants only (pairs checked later)
};

double percentile_ms(std::vector<double> ms, double p) {
  if (ms.empty()) return 0.0;
  std::sort(ms.begin(), ms.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min(ms.size() - 1.0, p * static_cast<double>(ms.size())));
  return ms[idx];
}

StormRow run_storm(Shape shape, bool admission, std::uint64_t seed,
                   bool smoke) {
  const std::size_t fleet = smoke ? 12 : 32;
  const std::size_t pollers = smoke ? 4 : 12;
  const SimTime horizon = SimTime::from_s(240);

  Scheduler sched;
  crypto::Drbg rng{seed};
  ota::Repository director(rng, "director", SimTime::from_s(360000));
  ota::Repository images(rng, "image-repo", SimTime::from_s(360000));
  const Bytes fw = next_image();
  director.add_target("vecu-fw", fw, 2, "vecu-hw");
  images.add_target("vecu-fw", fw, 2, "vecu-hw");
  director.publish(SimTime::from_ms(1));
  images.publish(SimTime::from_ms(1));

  ota::ServerConfig scfg;
  scfg.admission_enabled = admission;
  scfg.metadata_service = SimTime::from_ms(2);
  scfg.chunk_service = SimTime::from_ms(2);
  scfg.cache_hit_service = SimTime::from_us(250);
  scfg.delta_cpu_factor = 3.0;
  scfg.max_queue_delay = SimTime::from_ms(20);
  scfg.background_rps = 400;  // above the poller floor: steady state is calm
  scfg.tier_window = SimTime::from_ms(100);
  scfg.retry_slot = SimTime::from_ms(5);
  scfg.outage_retry_base = SimTime::from_ms(300);
  ota::RepositoryServer server(director, images, scfg);
  server.register_delta_base("vecu-fw", base_image());

  FaultPlan plan(sched, seed);
  server.set_fault_port(&plan.port("ota.server"));
  if (shape == Shape::kRetryAlign) {
    // Outage long enough that 100ms-seeded exponential backoff with
    // max_attempts = 6 (backoffs 100+200+400+800+1600 = 3.1s) exhausts
    // INSIDE it when every attempt hard-fails.
    FaultSpec spec;
    spec.target = "ota.server";
    spec.kind = FaultKind::kOutage;
    plan.window(SimTime::from_ms(1), SimTime::from_s(6), spec);
  } else if (shape == Shape::kSlowdownWave) {
    FaultSpec spec;
    spec.target = "ota.server";
    spec.kind = FaultKind::kRepoSlowdown;
    spec.delay = SimTime::from_ms(8);  // brown-out: per-request inflation
    plan.window(SimTime::from_s(2), SimTime::from_s(14), spec);
  }

  ota::CampaignConfig cfg;
  // Slowdown shape: many small waves so dispatch decisions keep landing
  // inside the brown-out window — that is what the wave gate is for.
  cfg.wave_size = shape == Shape::kSlowdownWave ? std::max<std::size_t>(fleet / 8, 1) : fleet;
  cfg.wave_gap = SimTime::from_s(1);
  cfg.vehicle_stagger =
      shape == Shape::kSyncWave ? SimTime::zero() : SimTime::from_ms(50);
  cfg.wave_abort_ratio = 2.0;  // never abort: count stranded vehicles instead
  cfg.confirm_timeout = SimTime::from_s(30);
  cfg.retry.max_attempts = 6;
  cfg.retry.initial_backoff = SimTime::from_ms(100);
  cfg.retry.chunk_bytes = kChunkBytes;
  cfg.retry.link_bytes_per_sec = 2'000'000;
  cfg.retry.server = &server;
  if (admission && shape == Shape::kSlowdownWave) {
    cfg.pause_shed_ratio = 0.08;  // wave-level backpressure (ON arm only)
    cfg.resume_shed_ratio = 0.02;
    cfg.backpressure_poll = SimTime::from_ms(500);
  }

  ota::CampaignRunner camp(sched, director, images, "vecu-fw", "vecu-hw", cfg);

  std::vector<std::unique_ptr<Flash>> flashes;
  std::vector<std::unique_ptr<ota::FullVerificationClient>> clients;
  const FirmwareImage oldf{"vecu-fw", 1, base_image()};
  for (std::size_t i = 0; i < fleet; ++i) {
    const std::string id = "vm" + std::to_string(i);
    flashes.push_back(std::make_unique<Flash>());
    flashes.back()->provision(oldf);
    clients.push_back(std::make_unique<ota::FullVerificationClient>(
        id, director.trusted_root(), images.trusted_root()));
    camp.add_vehicle(id, *flashes.back(), *clients.back());
  }

  // Background metadata pollers: the load floor the campaign storms on top
  // of, and the traffic the kShedRefresh tier deliberately rejects.
  StormRow row;
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&sched, &server, &row, poll, horizon] {
    const SimTime now = sched.now();
    if (now >= horizon) return;
    const ota::MetadataResponse r =
        server.fetch_metadata(ota::ServeClass::kBackground, now);
    SimTime next = SimTime::from_ms(50);
    if (r.status == ota::ServeStatus::kOk) {
      ++row.bg_ok;
    } else {
      ++row.bg_shed;
      // Cooperative poller: honor the server-suggested backoff instead of
      // hammering the shed path (which would drag the slot cursor forward
      // for everyone).
      next = std::max(next, r.retry_after);
    }
    sched.schedule_after(next, [poll] { (*poll)(); });
  };
  for (std::size_t j = 0; j < pollers; ++j) {
    sched.schedule_at(SimTime::from_ms(5 + 7 * j), [poll] { (*poll)(); });
  }

  camp.start();
  sched.run_until(horizon);
  server.observe(sched.now());  // idle windows walk the ladder back down

  row.shape = shape;
  row.admission = admission;
  row.fleet = fleet;
  row.updated = camp.updated();
  row.unrecovered = fleet - camp.updated();
  row.campaign_finished = camp.finished();
  std::vector<double> finished_ms;
  for (const ota::VehicleLedger& l : camp.ledger()) {
    if (l.outcome == ota::VehicleOutcome::kUpdated ||
        l.outcome == ota::VehicleOutcome::kUpdatedAfterPowerLoss) {
      finished_ms.push_back(l.finished_at.ms());
    }
  }
  row.p50_ms = percentile_ms(finished_ms, 0.50);
  row.p99_ms = percentile_ms(finished_ms, 0.99);
  row.max_queue_ms = server.max_queue_delay_seen().ms();
  row.requests = server.requests();
  row.served = server.served();
  row.shed = server.shed();
  row.coalesced = server.coalesced();
  row.refreshes = server.snapshot_refreshes();
  row.cache_hit_rate = server.cache_hit_rate();
  row.bytes_sent = server.bytes_sent();
  row.delta_saved = server.delta_bytes_saved();
  row.peak_tier = server_tier_name(server.peak_tier());
  row.final_tier = server_tier_name(server.tier());
  row.transitions = server.degraded_transitions();
  row.backpressure_pauses = camp.backpressure_pauses();

  if (admission) {
    // Absolute invariants of the hardened front.
    row.violations += static_cast<int>(row.unrecovered);
    if (!row.campaign_finished) ++row.violations;
    if (row.max_queue_ms > scfg.max_queue_delay.ms() + 1e-9) ++row.violations;
    if (row.p99_ms > 120000.0 || finished_ms.empty()) ++row.violations;
    if (row.final_tier != "normal") ++row.violations;
    if (shape == Shape::kSlowdownWave) {
      if (row.peak_tier == "normal") ++row.violations;       // ladder unused
      if (row.backpressure_pauses == 0) ++row.violations;    // gate unused
    }
  }
  return row;
}

/// OFF arm must demonstrate the stampede its ON twin prevents.
int pair_violations(const StormRow& on, const StormRow& off) {
  int v = 0;
  switch (on.shape) {
    case Shape::kRetryAlign:
      if (off.unrecovered == 0) ++v;  // aligned retries should strand fleet
      break;
    case Shape::kSyncWave:
    case Shape::kSlowdownWave:
      if (off.max_queue_ms <= on.max_queue_ms) ++v;  // no queue blow-up shown
      break;
  }
  return v;
}

// --- Session frontend: handshake amortization over a storm wave --------------

struct FrontendRow {
  std::size_t vehicles = 0;
  std::uint64_t handshakes = 0;
  std::uint64_t resumptions = 0;
  double resumption_rate = 0.0;
  int violations = 0;
};

FrontendRow run_frontend(std::uint64_t seed, bool smoke) {
  crypto::Drbg rng{seed};
  crypto::EcdsaPrivateKey authority = crypto::EcdsaPrivateKey::generate(rng);
  cloud::SessionFrontend fe =
      cloud::SessionFrontend::create("ota-front", authority, rng);
  FrontendRow r;
  r.vehicles = smoke ? 8 : 24;
  // Wave 1: cold fleet (full handshakes). Waves 2-3: the re-polls and
  // server-directed re-admissions of a storm resume on cached tickets.
  for (int wave = 0; wave < 3; ++wave) {
    for (std::size_t i = 0; i < r.vehicles; ++i) {
      const cloud::ConnectResult c =
          fe.connect("vm" + std::to_string(i), SimTime::from_s(1 + wave));
      if (!c.ok) ++r.violations;
      if (wave > 0 && !c.resumed) ++r.violations;
    }
  }
  r.handshakes = fe.handshakes();
  r.resumptions = fe.resumptions();
  r.resumption_rate = fe.resumption_rate();
  if (r.handshakes != r.vehicles) ++r.violations;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  std::printf("E21: campaign-storm-hardened OTA serving front\n");
  std::printf("(seed %llu; invariant: with admission control every vehicle "
              "recovers, admitted queue delay stays bounded, and the "
              "degradation ladder returns to normal)\n\n",
              static_cast<unsigned long long>(seed));

  int violations = 0;

  // Preamble — the snapshot-coalescing satellite, measured.
  const SnapshotResult snap = run_snapshot_preamble(seed, smoke);
  violations += snap.violations;
  std::printf("Preamble: metadata snapshot coalescing (%zu iterations)\n",
              snap.iters);
  std::printf("  one shared generation per wave: %s; generation stable: %s\n",
              snap.shared ? "yes" : "NO",
              snap.generation_stable ? "yes" : "NO");
  if (!smoke) {
    std::printf("  full bundle copies: %.1f us total (%.2f us/copy); "
                "snapshot(): %.1f us total (%.3f us/acquire)\n",
                snap.copy_us,
                snap.copy_us / static_cast<double>(snap.iters),
                snap.snapshot_us,
                snap.snapshot_us / static_cast<double>(snap.iters));
  }
  std::printf("\n");

  // Storm matrix — each shape, admission ON vs OFF.
  const std::vector<Shape> shapes = {Shape::kSyncWave, Shape::kRetryAlign,
                                     Shape::kSlowdownWave};
  benchutil::Table table(
      {"shape", "admission", "updated", "stranded", "p50_ms", "p99_ms",
       "max_q_ms", "shed", "coalesced", "cache_hit", "wire_kb", "delta_kb",
       "peak_tier", "final_tier", "bp_pauses", "viol"});
  std::vector<StormRow> rows;
  for (const Shape s : shapes) {
    StormRow on = run_storm(s, /*admission=*/true, seed, smoke);
    StormRow off = run_storm(s, /*admission=*/false, seed, smoke);
    const int pv = pair_violations(on, off);
    off.violations += pv;
    violations += on.violations + off.violations;
    for (const StormRow* r : {&on, &off}) {
      table.add_row(
          {shape_name(r->shape), r->admission ? "on" : "off",
           benchutil::fmt_u(r->updated) + "/" + benchutil::fmt_u(r->fleet),
           benchutil::fmt_u(r->unrecovered), benchutil::fmt("%.1f", r->p50_ms),
           benchutil::fmt("%.1f", r->p99_ms),
           benchutil::fmt("%.2f", r->max_queue_ms), benchutil::fmt_u(r->shed),
           benchutil::fmt_u(r->coalesced),
           benchutil::fmt("%.3f", r->cache_hit_rate),
           benchutil::fmt_u(r->bytes_sent / 1024),
           benchutil::fmt_u(r->delta_saved / 1024), r->peak_tier,
           r->final_tier, benchutil::fmt_u(r->backpressure_pauses),
           std::to_string(r->violations)});
    }
    rows.push_back(on);
    rows.push_back(off);
  }
  std::printf("Storm matrix: admission control ON vs OFF\n");
  table.print();
  std::printf("\n");

  // Session frontend — handshake amortization across storm re-polls.
  const FrontendRow fe = run_frontend(seed + 7, smoke);
  violations += fe.violations;
  std::printf("Session frontend: %zu vehicles x 3 waves: %llu full "
              "handshakes, %llu ticket resumptions (rate %.3f), "
              "violations=%d\n\n",
              fe.vehicles, static_cast<unsigned long long>(fe.handshakes),
              static_cast<unsigned long long>(fe.resumptions),
              fe.resumption_rate, fe.violations);

  // Deterministic JSON report (chaos-smoke CI diffs two seeded runs; no
  // wall-clock timing in here).
  std::string json = "{\"experiment\":\"e21_campaign_storm\",\"seed\":" +
                     std::to_string(seed) +
                     ",\"snapshot\":{\"iters\":" + std::to_string(snap.iters) +
                     ",\"shared\":" + (snap.shared ? "true" : "false") +
                     ",\"generation_stable\":" +
                     (snap.generation_stable ? "true" : "false") +
                     "},\"storms\":[";
  char buf[512];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const StormRow& r = rows[i];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"shape\":\"%s\",\"admission\":%s,\"fleet\":%zu,\"updated\":%zu,"
        "\"unrecovered\":%zu,\"finished\":%s,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
        "\"max_queue_ms\":%.3f,\"requests\":%llu,\"served\":%llu,"
        "\"shed\":%llu,\"coalesced\":%llu,\"refreshes\":%llu,"
        "\"cache_hit_rate\":%.3f,\"bytes_sent\":%llu,\"delta_saved\":%llu,"
        "\"peak_tier\":\"%s\",\"final_tier\":\"%s\",\"transitions\":%llu,"
        "\"backpressure_pauses\":%llu,\"bg_ok\":%llu,\"bg_shed\":%llu,"
        "\"violations\":%d}",
        i ? "," : "", shape_name(r.shape), r.admission ? "true" : "false",
        r.fleet, r.updated, r.unrecovered,
        r.campaign_finished ? "true" : "false", r.p50_ms, r.p99_ms,
        r.max_queue_ms, static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.served),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.coalesced),
        static_cast<unsigned long long>(r.refreshes), r.cache_hit_rate,
        static_cast<unsigned long long>(r.bytes_sent),
        static_cast<unsigned long long>(r.delta_saved), r.peak_tier.c_str(),
        r.final_tier.c_str(), static_cast<unsigned long long>(r.transitions),
        static_cast<unsigned long long>(r.backpressure_pauses),
        static_cast<unsigned long long>(r.bg_ok),
        static_cast<unsigned long long>(r.bg_shed), r.violations);
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "],\"frontend\":{\"vehicles\":%zu,\"handshakes\":%llu,"
                "\"resumptions\":%llu,\"resumption_rate\":%.3f},"
                "\"violations\":%d}",
                fe.vehicles, static_cast<unsigned long long>(fe.handshakes),
                static_cast<unsigned long long>(fe.resumptions),
                fe.resumption_rate, violations);
  json += buf;
  std::printf("%s\n", json.c_str());

  return violations > 255 ? 255 : violations;
}
