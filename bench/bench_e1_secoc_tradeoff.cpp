// Experiment E1 — SecOC MAC truncation trade-off (paper §6 "Optimization
// Needs", §7 "Secure Networks").
//
// A 500 kbit/s CAN bus carries 10 periodic safety streams (10 ms period,
// 4-byte signals). We sweep the SecOC MAC truncation length and freshness
// size and report: bus load, worst-case end-to-end latency vs a 5 ms
// deadline, and the forgery probability bought at each point — the
// security/real-time trade-off the paper says architects must balance.

#include <cstdio>

#include "bench_util.hpp"
#include "ecu/ecu.hpp"
#include "ivn/can.hpp"
#include "ivn/secoc.hpp"
#include "util/stats.hpp"

using namespace aseck;
using util::Bytes;

namespace {

struct RunResult {
  double bus_load;
  double p99_latency_us;
  double max_latency_us;
  std::uint64_t deadline_misses;
  std::uint64_t frames;
};

RunResult run(std::size_t mac_bytes, std::size_t freshness_bytes) {
  sim::Scheduler sched;
  ivn::CanBus bus(sched, "chassis", 500000);
  crypto::Block k{};

  constexpr int kStreams = 10;
  std::vector<std::unique_ptr<ecu::Ecu>> senders;
  auto receiver = std::make_unique<ecu::Ecu>(sched, "receiver", 99);
  receiver->provision(ecu::FirmwareImage{"r", 1, Bytes(16, 1)}, k, k, k);
  receiver->attach_to(&bus);
  receiver->boot();

  const ivn::SecOcConfig cfg{mac_bytes == 0 ? 1 : mac_bytes, freshness_bytes, 64};
  const ivn::SecOcChannel channel(Bytes(16, 0x42), cfg);
  const bool plain = mac_bytes == 0;  // baseline: no SecOC at all

  util::Samples latencies;
  std::uint64_t deadline_misses = 0;
  std::uint64_t frames = 0;
  const double deadline_us = 5000.0;

  std::map<std::uint32_t, util::SimTime> sent_at;
  for (int s = 0; s < kStreams; ++s) {
    auto ecu_ptr = std::make_unique<ecu::Ecu>(sched, "s" + std::to_string(s),
                                              static_cast<std::uint64_t>(s));
    ecu_ptr->provision(ecu::FirmwareImage{"s", 1, Bytes(16, 1)}, k, k, k);
    ecu_ptr->attach_to(&bus);
    ecu_ptr->boot();
    senders.push_back(std::move(ecu_ptr));
  }

  for (int s = 0; s < kStreams; ++s) {
    const auto can_id = static_cast<std::uint32_t>(0x100 + s);
    receiver->subscribe(can_id, [&, can_id](const ivn::CanFrame&, sim::SimTime at) {
      const double lat = (at - sent_at[can_id]).us();
      latencies.add(lat);
      if (lat > deadline_us) ++deadline_misses;
      ++frames;
    });
  }

  // 2 seconds of 10 ms periodic traffic, staggered offsets.
  for (int s = 0; s < kStreams; ++s) {
    ecu::Ecu* sender = senders[static_cast<std::size_t>(s)].get();
    const auto can_id = static_cast<std::uint32_t>(0x100 + s);
    for (int i = 0; i < 200; ++i) {
      const auto at = sim::SimTime::from_us(
          static_cast<std::uint64_t>(i) * 10000 + static_cast<std::uint64_t>(s) * 137);
      sched.schedule_at(at, [&, sender, can_id, at] {
        sent_at[can_id] = at;
        const Bytes signal{0x12, 0x34, 0x56, 0x78};
        if (plain) {
          sender->send_frame(can_id, signal);
        } else {
          sender->send_secured(channel, static_cast<std::uint16_t>(can_id),
                               can_id, signal);
        }
      });
    }
  }
  sched.run();

  RunResult r;
  r.bus_load = bus.stats().bus_load(sched.now());
  r.p99_latency_us = latencies.percentile(99);
  r.max_latency_us = latencies.max();
  r.deadline_misses = deadline_misses;
  r.frames = frames;
  return r;
}

}  // namespace

int main() {
  std::printf("E1: SecOC MAC truncation vs bus load / latency / forgery\n");
  std::printf("(10 streams @ 10 ms, 4-byte signals, CAN 500 kbit/s, 5 ms deadline)\n\n");

  benchutil::Table table({"mac_bytes", "fresh_bytes", "pdu_bytes", "bus_load_%",
                          "p99_lat_us", "max_lat_us", "deadline_miss",
                          "forgery_prob"});

  // Baseline without SecOC.
  {
    const RunResult r = run(0, 0);
    table.add_row({"none", "-", "4", benchutil::fmt("%.1f", r.bus_load * 100),
                   benchutil::fmt("%.0f", r.p99_latency_us),
                   benchutil::fmt("%.0f", r.max_latency_us),
                   benchutil::fmt_u(r.deadline_misses), "1 (spoofable)"});
  }
  for (std::size_t mac : {1u, 2u, 4u, 8u, 16u}) {
    for (std::size_t fresh : {0u, 1u, 4u}) {
      const RunResult r = run(mac, fresh);
      const ivn::SecOcChannel ch(Bytes(16, 0), ivn::SecOcConfig{mac, fresh, 64});
      char forgery[32];
      std::snprintf(forgery, sizeof forgery, "2^-%zu", mac * 8);
      table.add_row({std::to_string(mac), std::to_string(fresh),
                     std::to_string(4 + ch.overhead()),
                     benchutil::fmt("%.1f", r.bus_load * 100),
                     benchutil::fmt("%.0f", r.p99_latency_us),
                     benchutil::fmt("%.0f", r.max_latency_us),
                     benchutil::fmt_u(r.deadline_misses), forgery});
    }
  }
  table.print();
  std::printf(
      "\nReading: longer MACs raise bus load and latency monotonically; the\n"
      "4-byte/1-byte point holds the paper's claimed sweet spot (2^-32 forgery\n"
      "at <2x baseline load). 16-byte MACs force CAN-FD frames.\n");
  return 0;
}
