// Experiment E13 (extension) — sensor attack resilience of the ADAS
// pipeline (paper §4.1: LIDAR spoofing [7], acoustic MEMS injection [13],
// TPMS spoofing [11]).
//
// 1000 AEB evaluation frames per scenario; we count phantom-braking events
// (availability attack success) and missed real threats, for a naive
// single-sensor consumer vs the corroboration-voting fusion.

#include <cstdio>

#include "adas/fusion.hpp"
#include "bench_util.hpp"

using namespace aseck;
using namespace aseck::adas;

namespace {

struct Outcome {
  int phantom_brakes = 0;   // braking with no real threat present
  int missed_threats = 0;   // no braking although a real threat existed
  std::uint64_t ghosts_rejected = 0;
};

Outcome run(bool fusion_voting, bool ghost_radar, bool ghost_lidar,
            bool blind_lidar, bool real_threat, std::uint64_t seed) {
  PerceptionSensor::Config rc;
  rc.kind = SensorKind::kRadar;
  PerceptionSensor::Config lc;
  lc.kind = SensorKind::kLidar;
  PerceptionSensor::Config cc;
  cc.kind = SensorKind::kCamera;
  PerceptionSensor radar(rc, seed);
  PerceptionSensor lidar(lc, seed + 1);
  PerceptionSensor camera(cc, seed + 2);
  SensorFusion::Config fcfg;
  fcfg.min_corroboration = fusion_voting ? 2 : 1;
  SensorFusion fusion(fcfg);
  fusion.add_sensor(&radar);
  fusion.add_sensor(&lidar);
  fusion.add_sensor(&camera);
  AebController aeb;

  if (ghost_radar) radar.inject_ghost(Detection{14.0, 0.0, 28.0, 1.0});
  if (ghost_lidar) lidar.inject_ghost(Detection{14.5, 0.0, 28.0, 1.0});
  if (blind_lidar) lidar.set_blinded(true);

  Outcome out;
  for (int frame = 0; frame < 1000; ++frame) {
    std::vector<TruthObject> truth;
    if (real_threat) truth.push_back({25.0, 0.0, 18.0});  // TTC 1.4 s
    const auto fused = fusion.fuse(truth);
    const auto decision = aeb.evaluate(fused.actionable);
    if (decision.brake && !real_threat) ++out.phantom_brakes;
    if (!decision.brake && real_threat) ++out.missed_threats;
  }
  out.ghosts_rejected = fusion.total_single_source_rejected();
  return out;
}

}  // namespace

int main() {
  std::printf("E13: ADAS sensor-attack resilience (1000 AEB frames each)\n\n");
  benchutil::Table table({"scenario", "consumer", "phantom_brakes",
                          "missed_threats", "ghosts_outvoted"});

  struct Case {
    const char* name;
    bool ghost_radar, ghost_lidar, blind_lidar, real_threat;
  };
  const std::vector<Case> cases{
      {"benign, real threat", false, false, false, true},
      {"lidar ghost, no threat", false, true, false, false},
      {"coordinated radar+lidar ghost", true, true, false, false},
      {"lidar blinded, real threat", false, false, true, true},
  };
  std::uint64_t seed = 900;
  for (const auto& c : cases) {
    for (const bool voting : {false, true}) {
      const Outcome o = run(voting, c.ghost_radar, c.ghost_lidar, c.blind_lidar,
                            c.real_threat, seed);
      table.add_row({c.name, voting ? "fusion(2-of-3)" : "naive(any sensor)",
                     std::to_string(o.phantom_brakes),
                     std::to_string(o.missed_threats),
                     benchutil::fmt_u(o.ghosts_rejected)});
      seed += 10;
    }
  }
  table.print();

  // Acoustic MEMS attack detection latency.
  std::printf("\nAcoustic MEMS injection [13]: detection latency vs bias\n\n");
  benchutil::Table imu({"bias_mps2", "detected", "latency_samples"});
  for (const double bias : {0.5, 1.0, 2.0, 4.0}) {
    MemsAccelerometer sensor(0.05, 42);
    WheelSpeedSensor wheel(0.002, 43);
    ImuPlausibilityMonitor monitor;
    sensor.set_acoustic_attack(bias);
    int latency = -1;
    for (int i = 0; i < 200; ++i) {
      if (monitor.feed(sensor.sense(0.0), wheel.sense(20.0), 0.1)) {
        latency = i;
        break;
      }
    }
    imu.add_row({benchutil::fmt("%.1f", bias), latency >= 0 ? "yes" : "no",
                 latency >= 0 ? std::to_string(latency) : "-"});
  }
  imu.print();
  std::printf(
      "\nReading: single-sensor ghosts cause 100%% phantom braking on a naive\n"
      "consumer and 0%% against 2-of-3 fusion voting; coordinated multi-\n"
      "sensor spoofing defeats voting (residual risk — the paper's point\n"
      "that creative physical-domain attacks keep moving the bar). Blinding\n"
      "degrades but does not disable detection (2 sensors remain). MEMS bias\n"
      "above the residual threshold is caught within ~5 samples; sub-\n"
      "threshold bias persists silently — plausibility bounds, not absence\n"
      "of attack, are what the monitor guarantees.\n");
  return 0;
}
