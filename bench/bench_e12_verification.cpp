// Experiment E12 — the verification burden of extensibility (paper §5
// "Verification Needs" and §6's extensibility/verification trade-off).
//
// A security architecture's configuration space grows multiplicatively with
// every extensible parameter ("reserved for future use" included). We grow
// a realistic parameter set and compare verification campaign sizes:
// exhaustive, pairwise covering arrays, and the extensibility-aware
// reduction where architecturally isolated parameters verify in isolation.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "core/verification.hpp"

using namespace aseck::core;

int main() {
  std::printf("E12: verification campaign size vs configuration-space growth\n\n");

  // The full parameter set of this library's security stack. `reducible`
  // marks parameters whose effects are isolated by the layered architecture
  // (compositional verification argument holds).
  const std::vector<ConfigParam> all_params{
      {"secoc_mac_len", 5, false},      {"secoc_freshness", 3, false},
      {"mac_suite", 2, false},          {"gateway_policy", 4, false},
      {"rate_limit_tier", 3, true},     {"ids_sensitivity", 3, true},
      {"v2x_verify_mode", 3, false},    {"pseudonym_policy", 3, true},
      {"pkes_bounding", 2, true},       {"boot_chain_mode", 2, false},
      {"debug_lock", 2, true},          {"reserved_future_a", 4, true},
      {"reserved_future_b", 4, true},
  };

  benchutil::Table table({"params", "exhaustive", "pairwise_rows",
                          "pairwise_valid", "reduced", "pairwise_gen_ms"});
  for (std::size_t n = 4; n <= all_params.size(); n += 3) {
    ConfigSpace space;
    for (std::size_t i = 0; i < n; ++i) space.add(all_params[i]);
    const auto t0 = std::chrono::steady_clock::now();
    const auto rows = space.pairwise_array(12345);
    const auto t1 = std::chrono::steady_clock::now();
    table.add_row(
        {std::to_string(n), benchutil::fmt_u(space.exhaustive_count()),
         benchutil::fmt_u(rows.size()),
         space.covers_all_pairs(rows) ? "yes" : "NO",
         benchutil::fmt_u(space.reduced_count()),
         benchutil::fmt("%.1f", std::chrono::duration<double, std::milli>(
                                    t1 - t0)
                                    .count())});
  }
  table.print();

  // The §6 point: "reserved for future use" configurations still need
  // verification because unused configurations are attack targets.
  std::printf("\nCost of the two 'reserved-for-future-use' parameters alone:\n\n");
  benchutil::Table rsv({"treatment", "campaign_size"});
  {
    ConfigSpace with_rsv, without_rsv, rsv_crossed;
    for (const auto& p : all_params) {
      with_rsv.add(p);
      if (p.name.rfind("reserved", 0) != 0) without_rsv.add(p);
      ConfigParam q = p;
      if (q.name.rfind("reserved", 0) == 0) q.reducible = false;
      rsv_crossed.add(q);
    }
    rsv.add_row({"ship without reserved params",
                 benchutil::fmt_u(without_rsv.reduced_count())});
    rsv.add_row({"reserved params, isolation argument (reducible)",
                 benchutil::fmt_u(with_rsv.reduced_count())});
    rsv.add_row({"reserved params, no isolation (full cross)",
                 benchutil::fmt_u(rsv_crossed.reduced_count())});
  }
  rsv.print();
  std::printf(
      "\nReading: exhaustive verification explodes past 10^5 configurations\n"
      "with a realistic parameter set; pairwise arrays grow ~log-linearly;\n"
      "the extensibility-aware reduction — possible only when the\n"
      "architecture provides isolation arguments — keeps the campaign\n"
      "near-linear. Without isolation, each reserved-for-future parameter\n"
      "multiplies the campaign (the §6 verification burden).\n");
  return 0;
}
