// Experiment E14 (extension) — V2X channel congestion and the DCC soft-DoS
// (paper §5: communication patterns govern the security/performance/
// bandwidth trade-off; §4.1 availability attacks).
//
// A fleet of honest vehicles shares the channel with an attacker occupying
// a swept fraction of airtime. DCC-compliant vehicles back off their beacon
// rate as CBR rises: the attack "succeeds" without touching cryptography by
// degrading everyone's situational-awareness rate. We report the honest
// beacon rate, effective CBR, and the awareness latency (time between
// position updates a neighbor sees) per attacker occupancy.

#include <cstdio>

#include "bench_util.hpp"
#include "v2x/dcc.hpp"

using namespace aseck;
using namespace aseck::v2x;

int main() {
  std::printf("E14: V2X channel congestion / DCC soft-DoS\n");
  std::printf("(20 honest vehicles, 500 us per beacon, 10 s per point)\n\n");

  benchutil::Table table({"attacker_occupancy_%", "steady_cbr", "dcc_state",
                          "honest_beacon_hz", "awareness_latency_ms",
                          "fleet_beacons_10s"});

  const int fleet = 20;
  const util::SimTime beacon_air = util::SimTime::from_us(500);

  for (const double attacker : {0.0, 0.10, 0.25, 0.40, 0.60}) {
    // Iterate the closed loop: fleet rate -> CBR -> DCC -> fleet rate.
    DccController dcc;
    CbrEstimator est;
    util::SimTime now = util::SimTime::zero();
    double cbr = 0;
    std::uint64_t fleet_beacons = 0;
    // Simulate 10 s in 100 ms steps.
    for (int step = 0; step < 100; ++step) {
      const util::SimTime interval = dcc.beacon_interval();
      const double per_vehicle_hz = 1e9 / static_cast<double>(interval.ns);
      const double beacons_this_step = per_vehicle_hz * 0.1 * fleet;
      fleet_beacons += static_cast<std::uint64_t>(beacons_this_step);
      // Channel busy time this 100 ms: honest beacons + attacker share.
      const double busy_us =
          beacons_this_step * 500.0 + attacker * 100000.0;
      est.on_air(now, util::SimTime::from_us(static_cast<std::uint64_t>(
                          std::min(busy_us, 100000.0))));
      now += util::SimTime::from_ms(100);
      cbr = est.cbr(now);
      dcc.update(cbr, now);
    }
    const double honest_hz = 1e9 / static_cast<double>(dcc.beacon_interval().ns);
    table.add_row({benchutil::fmt("%.0f", attacker * 100),
                   benchutil::fmt("%.2f", cbr),
                   dcc_state_name(dcc.state()),
                   benchutil::fmt("%.1f", honest_hz),
                   benchutil::fmt("%.0f", 1000.0 / honest_hz),
                   benchutil::fmt_u(fleet_beacons)});
  }
  table.print();
  std::printf(
      "\nReading: without an attacker the 20-vehicle fleet stabilizes in a\n"
      "low DCC state at 10 Hz. As attacker occupancy grows, DCC-honest\n"
      "vehicles back off to 1 Hz — position updates age 10x — while the\n"
      "attacker never forges a single message: availability is the paper's\n"
      "third attack model, and congestion control is its unguarded flank.\n"
      "(%.0f us of beacon airtime assumed; signature size directly scales\n"
      "this, linking back to E1/E2 overhead choices.)\n",
      static_cast<double>(beacon_air.ns) / 1000.0);
  return 0;
}
