// Experiment E19 — sharded city-scale V2X simulation (paper §4.2 at metro
// scale: the V2X workload of a whole city, not an intersection).
//
// The single-threaded scheduler tops out near 500 interacting V2X nodes
// (E2); a metropolitan deployment is 100k+ vehicles. E19 runs the
// `v2x::MetroWorld` city model on `sim::ShardedWorld`: the metro area is
// partitioned into radio-range-sized cells, each cell owns a private event
// loop, and cross-cell BSM spill + vehicle migration ride deterministic
// epoch batches (see sim/sharded.hpp for the four-point determinism
// contract).
//
// Reported per thread count: wall time, BSM throughput (msgs/sec of
// simulated radio traffic), vehicle-sim-seconds/sec, cross-shard message
// volume, and speedup vs the 1-thread run. After the sweep: modeled wire
// bytes per vehicle per second, model memory per vehicle, and the crypto
// cost — by default the REAL E22 batch pipeline (per-rotation beacon
// signatures, shard-local admitted-cache dedup, RLC batch verification;
// see v2x/citynet.hpp), with `--modeled` falling back to the E17-calibrated
// 350 us/verify HSM accounting model this bench shipped with.
//
// Determinism: every run's digest (config, totals, state hash, merged
// metrics; no wall-clock content) must be byte-identical across thread
// counts. Exit code = number of digests differing from the 1-thread
// reference. `--digest` prints the digest JSON alone, so CI can diff a
// 1-thread run against a 4-thread run byte-for-byte.
//
// Flags: --vehicles N  --sim-s S  --seed U  --threads T (sweep 1,2,..,T)
//        --smoke (small preset)  --digest (digest JSON only, no timing)
//        --modeled (cost-model crypto accounting instead of real ECDSA)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "v2x/citynet.hpp"

using namespace aseck;
using util::SimTime;

namespace {

v2x::MetroConfig make_config(std::size_t vehicles, std::uint64_t seed,
                             unsigned threads, bool real_crypto) {
  v2x::MetroConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.real_crypto = real_crypto;
  // Keep metro density (~250 vehicles/km^2) as the fleet scales, so
  // per-vehicle neighborhood load is comparable at every size. Snap to the
  // 500 m shard cell.
  const double side =
      std::sqrt(static_cast<double>(vehicles) / 100000.0) * 20000.0;
  const double snapped = std::max(1000.0, std::round(side / 500.0) * 500.0);
  cfg.width_m = snapped;
  cfg.height_m = snapped;
  return cfg;
}

struct RunResult {
  unsigned threads = 0;
  double wall_s = 0;
  v2x::MetroWorld::Totals totals;
  std::string digest;
  double bytes_per_vehicle = 0;
  std::uint32_t shards = 0;
  double verify_cost_us = 0;
};

RunResult run_once(const v2x::MetroConfig& cfg, double sim_s) {
  RunResult r;
  r.threads = cfg.threads;
  v2x::MetroWorld metro(cfg);
  const auto wall0 = std::chrono::steady_clock::now();
  metro.run_until(SimTime::from_seconds_f(sim_s));
  const auto wall1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(wall1 - wall0).count();
  r.totals = metro.totals();
  r.digest = metro.digest_json();
  r.bytes_per_vehicle = metro.bytes_per_vehicle();
  r.shards = metro.world().shard_count();
  r.verify_cost_us = cfg.verify_cost_us;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t vehicles = 100000;
  double sim_s = 1.0;
  std::uint64_t seed = 42;
  unsigned max_threads = 4;
  bool smoke = false, digest_only = false, modeled = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--vehicles") == 0 && i + 1 < argc) {
      vehicles = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--sim-s") == 0 && i + 1 < argc) {
      sim_s = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      max_threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--digest") == 0) {
      digest_only = true;
    } else if (std::strcmp(argv[i], "--modeled") == 0) {
      modeled = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--vehicles N] [--sim-s S] [--seed U] "
                   "[--threads T] [--smoke] [--digest] [--modeled]\n",
                   argv[0]);
      return 255;
    }
  }
  if (smoke) {
    vehicles = 5000;
    sim_s = 1.0;
  }
  if (max_threads == 0) max_threads = 1;

  if (digest_only) {
    // One run at exactly --threads; stdout is the digest and nothing else,
    // so CI can diff a 1-thread run against an N-thread run byte-for-byte.
    const RunResult r = run_once(make_config(vehicles, seed, max_threads, !modeled), sim_s);
    std::printf("%s\n", r.digest.c_str());
    return 0;
  }

  std::printf(
      "E19 — sharded city-scale V2X: %zu vehicles, %.1f sim-s, seed %llu\n\n",
      vehicles, sim_s, static_cast<unsigned long long>(seed));

  std::vector<unsigned> sweep{1};
  for (unsigned t = 2; t <= max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);

  benchutil::Table table({"threads", "wall_s", "bsm_msgs/s", "veh_sim_s/s",
                          "cross_msgs", "speedup", "digest"});
  std::vector<RunResult> results;
  int mismatches = 0;
  for (unsigned t : sweep) {
    const RunResult r = run_once(make_config(vehicles, seed, t, !modeled), sim_s);
    const bool match = results.empty() || r.digest == results.front().digest;
    if (!match) ++mismatches;
    const double msgs =
        static_cast<double>(r.totals.bsm_tx + r.totals.rx + r.totals.lost);
    table.add_row({std::to_string(t), benchutil::fmt("%.2f", r.wall_s),
               benchutil::fmt_u(static_cast<std::uint64_t>(msgs / r.wall_s)),
               benchutil::fmt_u(static_cast<std::uint64_t>(
                   static_cast<double>(vehicles) * sim_s / r.wall_s)),
               benchutil::fmt_u(r.totals.cross_msgs),
               benchutil::fmt("%.2fx", results.empty()
                                           ? 1.0
                                           : results.front().wall_s / r.wall_s),
               match ? "match" : "MISMATCH"});
    results.push_back(r);
  }
  table.print();

  const RunResult& ref = results.front();
  const double sim_seconds = sim_s;
  std::printf("\nworkload: %u shards, %llu BSM tx, %llu receptions "
              "(%llu cross-shard), %llu lost, %llu migrations, %llu "
              "pseudonym rotations\n",
              ref.shards, static_cast<unsigned long long>(ref.totals.bsm_tx),
              static_cast<unsigned long long>(ref.totals.rx),
              static_cast<unsigned long long>(ref.totals.rx_cross),
              static_cast<unsigned long long>(ref.totals.lost),
              static_cast<unsigned long long>(ref.totals.migrations),
              static_cast<unsigned long long>(ref.totals.rotations));
  std::printf("wire load: %.1f bytes/vehicle/sim-s tx\n",
              static_cast<double>(ref.totals.bytes_tx) /
                  static_cast<double>(vehicles) / sim_seconds);
  std::printf("model memory: %.1f bytes/vehicle\n", ref.bytes_per_vehicle);
  if (modeled) {
    // Modeled HSM load: every delivered BSM costs one P-256 verify
    // (E17-calibrated). >1.0 means a single per-vehicle HSM could not keep
    // up and batching/sampling (paper §5 cost pressure) becomes mandatory.
    const double verifies_per_vehicle_s =
        static_cast<double>(ref.totals.rx) / static_cast<double>(vehicles) /
        sim_seconds;
    std::printf("modeled HSM verify utilization: %.2f (%.0f verifies/vehicle/s "
                "x %.0f us)\n",
                verifies_per_vehicle_s * ref.verify_cost_us / 1e6,
                verifies_per_vehicle_s, ref.verify_cost_us);
  } else {
    // Real E22 pipeline: genuine P-256 signatures were produced and
    // batch-verified. The amortization line is the whole O2 story — without
    // the admitted-cache + batch kernel every reception would pay a full
    // verify, with them only the first reception per (sender, rotation) per
    // shard does.
    const std::uint64_t checks = ref.totals.admit_hits + ref.totals.verify_enqueued;
    std::printf("real crypto: %llu beacon signatures, %llu batch-verified "
                "beacons, %llu admitted-cache hits (%llu failures)\n",
                static_cast<unsigned long long>(ref.totals.beacon_signs),
                static_cast<unsigned long long>(ref.totals.verify_enqueued),
                static_cast<unsigned long long>(ref.totals.admit_hits),
                static_cast<unsigned long long>(ref.totals.verify_fail));
    std::printf("amortization: %.1f signature checks amortized per real "
                "verify (%.3f verifies/reception vs 1.0 unbatched)\n",
                checks ? static_cast<double>(checks) /
                             static_cast<double>(ref.totals.verify_enqueued)
                       : 0.0,
                ref.totals.rx ? static_cast<double>(ref.totals.verify_enqueued) /
                                    static_cast<double>(ref.totals.rx)
                              : 0.0);
  }
  std::printf("\ndeterminism: %d digest mismatch(es) across %zu thread "
              "counts (state hash %s)\n",
              mismatches, sweep.size(),
              mismatches == 0 ? "byte-identical" : "DIVERGED");
  return mismatches > 255 ? 255 : mismatches;
}
