// Experiment E15 — resilience under deterministic fault injection
// (paper §3: safety/security/reliability interplay; §6: extensible systems
// must keep their assurance case under degraded channels).
//
// For each substrate (CAN, LIN, FlexRay, Ethernet, gateway, V2X, OTA) we run
// a seeded sim::FaultPlan random campaign at swept fault arrival rates and
// measure the paired resilience mechanism: CAN bus-off auto-recovery, the
// gateway's degraded-mode load shedding + partition handling, OTA
// retry-with-backoff resumable fetch, and plain window clearance for the
// frame-level channel faults. Reported per row: faults injected / recovered /
// unrecovered, recovery latency (mean, p95), and message loss.
//
// The run is bit-deterministic: `--seed N` (default 42) fixes every random
// draw, and the report contains no wall-clock time, so two runs with the
// same seed emit byte-identical output. The chaos-smoke CI job runs this
// twice with `--smoke --seed 42`, diffs the outputs, and fails on a nonzero
// exit code (= total unrecovered faults).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gateway/gateway.hpp"
#include "ivn/can.hpp"
#include "ivn/ethernet.hpp"
#include "ivn/flexray.hpp"
#include "ivn/lin.hpp"
#include "ota/client.hpp"
#include "ota/repository.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/bytes.hpp"
#include "v2x/net.hpp"

using namespace aseck;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::SimTime;
using sim::Telemetry;
using util::Bytes;

namespace {

struct RowResult {
  std::string substrate;
  double rate_hz = 0;
  std::size_t injected = 0;
  std::size_t recovered = 0;
  std::size_t unrecovered = 0;
  double recovery_ms_mean = 0;
  double recovery_ms_p95 = 0;
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
};

// Mean/p95 recovery latency over the plan's recovered fault records.
void fill_recovery_stats(const FaultPlan& plan, RowResult& row) {
  std::vector<double> ms;
  for (const sim::FaultRecord& r : plan.records()) {
    if (r.recovered) ms.push_back(r.recovery_latency().ms());
  }
  row.injected = plan.injected();
  row.recovered = plan.recovered();
  row.unrecovered = plan.unrecovered();
  if (ms.empty()) return;
  double sum = 0;
  for (double v : ms) sum += v;
  row.recovery_ms_mean = sum / static_cast<double>(ms.size());
  std::sort(ms.begin(), ms.end());
  const std::size_t idx = std::min(
      ms.size() - 1, static_cast<std::size_t>(0.95 * static_cast<double>(ms.size())));
  row.recovery_ms_p95 = ms[idx];
}

struct Sink final : ivn::CanNode {
  using ivn::CanNode::CanNode;
  void on_frame(const ivn::CanFrame&, SimTime) override { ++rx; }
  std::uint64_t rx = 0;
};

ivn::CanFrame can_frame(std::uint32_t id) {
  ivn::CanFrame f;
  f.id = id;
  f.data = Bytes{0x01, 0x02, 0x03, 0x04};
  return f;
}

constexpr SimTime kCampaignStart = SimTime::from_s(1);
constexpr SimTime kFaultDuration = SimTime::from_ms(100);

RowResult run_can(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus bus(sched, "can0", 500'000);
  bus.bind_telemetry(t);
  bus.set_auto_recovery(SimTime::from_ms(50));
  Sink tx_node("tx"), rx_node("rx");
  bus.attach(&tx_node);
  bus.attach(&rx_node);
  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  bus.set_fault_port(&plan.port("can0"));
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"can0", FaultKind::kFrameDrop, 1.0},
                        {"can0", FaultKind::kFrameCorrupt, 1.0},
                        {"can0", FaultKind::kCrash}});

  // Healthy-again observer: the first successful transmission outside a down
  // window marks the stateful (crash) faults recovered.
  const sim::TraceId can0 = t.bus->intern("can0");
  const sim::TraceId k_tx = t.bus->intern("tx");
  t.bus->subscribe([&](const sim::TraceEvent& e) {
    if (e.component == can0 && e.kind == k_tx && !plan.port("can0").down()) {
      plan.notify_recovered("can0");
    }
  });

  std::uint64_t sent = 0;
  sim::PeriodicTask sender(
      sched, SimTime::from_ms(10),
      [&] {
        ++sent;
        if (tx_node.state() == ivn::CanNodeState::kBusOff) return;
        bus.send(&tx_node, can_frame(0x100));
      },
      SimTime::from_ms(10));
  sched.run_until(horizon + SimTime::from_s(2));
  sender.stop();

  RowResult row{"can", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = sent;
  row.lost = sent - rx_node.rx;
  return row;
}

RowResult run_lin(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  Telemetry t;
  ivn::LinMaster master(sched, "lin0");
  master.bind_telemetry(t);
  struct Slave final : ivn::LinSlave {
    using ivn::LinSlave::LinSlave;
    std::optional<Bytes> respond(std::uint8_t) override {
      return Bytes{0xAA, 0xBB};
    }
  } slave("slave");
  master.attach(&slave);
  master.set_schedule({{0x10, SimTime::from_ms(10)}});
  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  master.set_fault_port(&plan.port("lin0"));
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"lin0", FaultKind::kFrameDrop, 1.0},
                        {"lin0", FaultKind::kFrameCorrupt, 1.0}});
  master.start();
  sched.run_until(horizon + SimTime::from_s(2));
  master.stop();

  RowResult row{"lin", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = master.frames_ok() + master.dropped_fault() + master.checksum_errors();
  row.lost = master.dropped_fault() + master.checksum_errors();
  return row;
}

RowResult run_flexray(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  Telemetry t;
  ivn::FlexRayBus bus(sched, "fr0");
  bus.bind_telemetry(t);
  struct Owner final : ivn::FlexRayNode {
    using ivn::FlexRayNode::FlexRayNode;
    std::optional<Bytes> static_payload(std::uint16_t, std::uint8_t) override {
      return Bytes{0x01, 0x02};
    }
  } owner("steer");
  struct Listener final : ivn::FlexRayNode {
    using ivn::FlexRayNode::FlexRayNode;
    std::optional<Bytes> static_payload(std::uint16_t, std::uint8_t) override {
      return std::nullopt;
    }
    void on_frame(const ivn::FlexRayFrame&, SimTime) override { ++rx; }
    std::uint64_t rx = 0;
  } listener("listener");
  bus.assign_static_slot(1, &owner);
  bus.attach_listener(&listener);
  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  bus.set_fault_port(&plan.port("fr0"));
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"fr0", FaultKind::kFrameDrop, 1.0}});
  bus.start();
  sched.run_until(horizon + SimTime::from_s(2));
  bus.stop();

  RowResult row{"flexray", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = bus.static_frames() + bus.dropped_fault();
  row.lost = bus.dropped_fault();
  return row;
}

RowResult run_ethernet(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  Telemetry t;
  ivn::EthernetSwitch sw(sched, "sw0");
  sw.bind_telemetry(t);
  struct Ep final : ivn::EthernetEndpoint {
    using ivn::EthernetEndpoint::EthernetEndpoint;
    void on_frame(const ivn::EthernetFrame&, SimTime) override { ++rx; }
    std::uint64_t rx = 0;
  } a("a", ivn::mac_from_u64(1)), b("b", ivn::mac_from_u64(2));
  const std::size_t pa = sw.connect(&a);
  const std::size_t pb = sw.connect(&b);
  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  sw.set_fault_port(&plan.port("sw0"));
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"sw0", FaultKind::kFrameDrop, 1.0},
                        {"sw0", FaultKind::kFrameCorrupt, 1.0},
                        {"sw0", FaultKind::kFrameDuplicate, 1.0}});
  // Teach the FDB both directions before the campaign starts.
  {
    ivn::EthernetFrame f;
    f.src = b.mac();
    f.dst = ivn::kBroadcastMac;
    sw.send(pb, f);
  }
  std::uint64_t sent = 0;
  sim::PeriodicTask sender(
      sched, SimTime::from_ms(10),
      [&] {
        ++sent;
        ivn::EthernetFrame f;
        f.src = a.mac();
        f.dst = b.mac();
        f.payload = Bytes{0x10, 0x20, 0x30};
        sw.send(pa, f);
      },
      SimTime::from_ms(10));
  sched.run_until(horizon + SimTime::from_s(2));
  sender.stop();

  RowResult row{"ethernet", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = sent;
  row.lost = sw.dropped_fault() + sw.corrupted_fault();
  return row;
}

RowResult run_gateway(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  Telemetry t;
  ivn::CanBus body(sched, "can.body", 500'000);
  ivn::CanBus chassis(sched, "can.chassis", 500'000);
  body.bind_telemetry(t);
  chassis.bind_telemetry(t);
  body.set_auto_recovery(SimTime::from_ms(50));
  chassis.set_auto_recovery(SimTime::from_ms(50));
  gateway::SecurityGateway gw(sched, "gw");
  gw.bind_telemetry(t);
  gw.add_domain("body", &body);
  gw.add_domain("chassis", &chassis);
  gw.add_route(0x100, "body", "chassis", /*safety_critical=*/true);
  gw.add_route(0x200, "body", "chassis", /*safety_critical=*/false);
  gateway::DegradedModeConfig cfg;
  cfg.window = SimTime::from_ms(200);
  cfg.degrade_threshold = 10;
  cfg.limp_threshold = 40;
  gw.enable_degraded_mode(cfg);
  gw.enable_bus_fault_watch(t);
  Sink sender("sender"), receiver("receiver");
  body.attach(&sender);
  chassis.attach(&receiver);

  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  body.set_fault_port(&plan.port("can.body"));
  // Partition windows toggle the gateway link; the handler reports recovery
  // back to the plan the moment the link returns.
  plan.on("gw.body", FaultKind::kPartition,
          [&](const FaultSpec&, bool active) {
            gw.set_link_up("body", !active);
            if (!active) plan.notify_recovered("gw.body");
          });
  const sim::TraceId can_body = t.bus->intern("can.body");
  const sim::TraceId k_tx = t.bus->intern("tx");
  t.bus->subscribe([&](const sim::TraceEvent& e) {
    if (e.component == can_body && e.kind == k_tx &&
        !plan.port("can.body").down()) {
      plan.notify_recovered("can.body");
    }
  });
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"gw.body", FaultKind::kPartition},
                        {"can.body", FaultKind::kFrameCorrupt, 1.0},
                        {"can.body", FaultKind::kFrameDrop, 1.0}});

  std::uint64_t sent = 0;
  sim::PeriodicTask traffic(
      sched, SimTime::from_ms(10),
      [&] {
        sent += 2;
        body.send(&sender, can_frame(0x100));
        body.send(&sender, can_frame(0x200));
      },
      SimTime::from_ms(10));
  sched.run_until(horizon + SimTime::from_s(2));
  traffic.stop();

  RowResult row{"gateway", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = sent;
  row.lost = sent - receiver.rx;
  return row;
}

RowResult run_v2x(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  v2x::V2xMedium medium(sched, 300.0, 0.0, seed);
  struct Radio final : v2x::V2xRadio {
    Radio(std::string n, v2x::Position p)
        : v2x::V2xRadio(std::move(n)), pos(p) {}
    v2x::Position position() const override { return pos; }
    void on_spdu(const v2x::Spdu&, SimTime) override { ++rx; }
    v2x::Position pos;
    std::uint64_t rx = 0;
  } tx("tx", {0, 0}), rx1("rx1", {20, 0}), rx2("rx2", {0, 30});
  medium.attach(&tx);
  medium.attach(&rx1);
  medium.attach(&rx2);
  FaultPlan plan(sched, seed);
  medium.set_fault_port(&plan.port("v2x"));
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"v2x", FaultKind::kRadioLoss},
                        {"v2x", FaultKind::kFrameDrop, 0.5}});
  sim::PeriodicTask beacons(
      sched, SimTime::from_ms(100),
      [&] { medium.broadcast(&tx, v2x::Spdu{}); }, SimTime::from_ms(100));
  sched.run_until(horizon + SimTime::from_s(2));
  beacons.stop();

  RowResult row{"v2x", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = medium.transmitted();
  row.lost = medium.lost_fault();
  return row;
}

RowResult run_ota(double rate_hz, std::uint64_t seed, SimTime horizon) {
  Scheduler sched;
  Telemetry t;
  crypto::Drbg rng{seed};
  ota::Repository director(rng, "director", SimTime::from_s(36000));
  ota::Repository images(rng, "image-repo", SimTime::from_s(36000));
  const Bytes fw(256 * 1024, 0xF2);
  director.add_target("brake-fw", fw, 2, "brake-hw");
  images.add_target("brake-fw", fw, 2, "brake-hw");
  director.publish(SimTime::from_ms(1));
  images.publish(SimTime::from_ms(1));
  FaultPlan plan(sched, seed);
  plan.bind_telemetry(t);
  // Both repos share one fault target: an outage takes down the backend, not
  // a single mirror (the client falls back across mirrors otherwise).
  director.set_fault_port(&plan.port("ota"));
  images.set_fault_port(&plan.port("ota"));
  plan.random_campaign(kCampaignStart, horizon, rate_hz, kFaultDuration,
                       {{"ota", FaultKind::kOutage}});

  ota::FullVerificationClient client("primary", director.trusted_root(),
                                     images.trusted_root());
  client.bind_telemetry(t);
  ota::FullVerificationClient::RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff = SimTime::from_ms(50);
  policy.chunk_bytes = 16 * 1024;
  policy.link_bytes_per_sec = 1'000'000;

  std::uint64_t fetches = 0, failures = 0;
  int attempts_total = 0;
  // Fetch in a loop: each completed update is followed by the next check,
  // so outages across the whole horizon meet live transfers.
  std::function<void()> start_fetch = [&] {
    if (sched.now() >= horizon) return;
    ++fetches;
    client.fetch_and_verify_with_retry(
        sched, director, images, "brake-fw", "brake-hw", 1, policy,
        [&](const ota::FullVerificationClient::RetryOutcome& ro) {
          attempts_total += ro.attempts;
          if (ro.outcome.error != ota::OtaError::kOk) ++failures;
          if (!plan.port("ota").down()) plan.notify_recovered("ota");
          sched.schedule_after(SimTime::from_ms(500), start_fetch);
        });
  };
  sched.schedule_at(SimTime::from_ms(500), start_fetch);
  sched.run_until(horizon + SimTime::from_s(2));
  // End-of-run health check covers outage windows injected after the last
  // transfer finished.
  if (director.available() && images.available()) plan.notify_recovered("ota");

  RowResult row{"ota", rate_hz};
  fill_recovery_stats(plan, row);
  row.sent = static_cast<std::uint64_t>(attempts_total);
  row.lost = static_cast<std::uint64_t>(attempts_total) - (fetches - failures);
  return row;
}

std::string rows_to_json(std::uint64_t seed, const std::vector<RowResult>& rows) {
  std::string out = "{\"experiment\":\"e15_resilience\",\"seed\":" +
                    std::to_string(seed) + ",\"rows\":[";
  char buf[320];
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"substrate\":\"%s\",\"rate_hz\":%.2f,\"injected\":%zu,"
                  "\"recovered\":%zu,\"unrecovered\":%zu,"
                  "\"recovery_ms_mean\":%.3f,\"recovery_ms_p95\":%.3f,"
                  "\"sent\":%llu,\"lost\":%llu}",
                  i ? "," : "", r.substrate.c_str(), r.rate_hz, r.injected,
                  r.recovered, r.unrecovered, r.recovery_ms_mean,
                  r.recovery_ms_p95,
                  static_cast<unsigned long long>(r.sent),
                  static_cast<unsigned long long>(r.lost));
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const std::vector<double> rates =
      smoke ? std::vector<double>{1.0} : std::vector<double>{0.2, 1.0, 5.0};
  const SimTime horizon = smoke ? SimTime::from_s(6) : SimTime::from_s(20);

  std::printf("E15: resilience under deterministic fault injection\n");
  std::printf("(seed %llu, horizon %llu s, fault windows of 100 ms)\n\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(horizon.ns / 1'000'000'000ULL));

  using RunFn = RowResult (*)(double, std::uint64_t, SimTime);
  const std::vector<RunFn> substrates = {run_can,      run_lin, run_flexray,
                                         run_ethernet, run_gateway, run_v2x,
                                         run_ota};

  benchutil::Table table({"substrate", "fault_rate_hz", "injected", "recovered",
                          "unrecovered", "recovery_ms_mean", "recovery_ms_p95",
                          "sent", "lost", "loss_%"});
  std::vector<RowResult> rows;
  std::uint64_t row_idx = 0;
  std::size_t total_unrecovered = 0;
  for (const double rate : rates) {
    for (const RunFn fn : substrates) {
      const RowResult r = fn(rate, seed * 1000 + row_idx, horizon);
      ++row_idx;
      total_unrecovered += r.unrecovered;
      const double loss_pct =
          r.sent ? 100.0 * static_cast<double>(r.lost) / static_cast<double>(r.sent)
                 : 0.0;
      table.add_row({r.substrate, benchutil::fmt("%.1f", r.rate_hz),
                     benchutil::fmt_u(r.injected), benchutil::fmt_u(r.recovered),
                     benchutil::fmt_u(r.unrecovered),
                     benchutil::fmt("%.2f", r.recovery_ms_mean),
                     benchutil::fmt("%.2f", r.recovery_ms_p95),
                     benchutil::fmt_u(r.sent), benchutil::fmt_u(r.lost),
                     benchutil::fmt("%.2f", loss_pct)});
      rows.push_back(r);
    }
  }
  table.print();
  std::printf("\n%s\n", rows_to_json(seed, rows).c_str());
  std::printf("\ntotal unrecovered faults: %zu\n", total_unrecovered);
  return total_unrecovered > 255 ? 255 : static_cast<int>(total_unrecovered);
}
