// Experiment E18 — power-loss-atomic A/B updates (paper §5: long in-field
// lifetime and in-field patching demand an install path that survives the
// most common field hazard; §7: the secure-update layer's rollback
// protection must hold through torn writes).
//
// Three parts:
//
//   A. Exhaustive cut sweep: a multi-page install (journal header, every
//      page program, STAGED/ACTIVE/CONFIRMED marker writes) is re-run with
//      the power cut placed at every single write-op index, plus one
//      cut-free control run. After each cut the ECU reboots through
//      `Flash::boot()` and the invariant is checked: it boots a CRC-valid
//      image that byte-equals either the old or the new firmware — never a
//      torn one, never none — then resumes from the journal watermark and
//      finishes the update.
//
//   B. Seeded Poisson campaign sweep: a fleet updates through
//      `ota::CampaignRunner` in staggered waves while every flash write op
//      rolls Bernoulli(p) power loss (FaultKind::kPowerLoss). Reported:
//      campaign completion rate, power losses survived, resume bytes saved,
//      bricked vehicles (must be zero). A bad-image campaign shows the
//      per-wave abort threshold halting the rollout after one wave.
//
//   C. Confirm watchdog: an activated-but-never-confirmed image whose
//      deadline lapses is auto-reverted by the `safety::HealthSupervisor`
//      escalation ladder (ota::ConfirmWatchdog).
//
// Exit code = number of invariant violations (torn/bricked boots, failed
// resumes, missed auto-revert), capped at 255. Output is bit-deterministic
// per seed: the chaos-smoke CI job diffs two `--smoke --seed 42` runs.

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "ecu/flash.hpp"
#include "ota/campaign.hpp"
#include "ota/client.hpp"
#include "ota/repository.hpp"
#include "safety/supervisor.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

using namespace aseck;
using ecu::Flash;
using ecu::FirmwareImage;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using sim::SimTime;
using util::Bytes;

namespace {

Bytes patterned(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xFF);
  }
  return b;
}

// --- Part A: exhaustive write-op cut sweep -----------------------------------

struct SweepRow {
  std::int64_t cut_op = -1;
  std::string phase;  // install step the cut interrupted
  bool cut = false;
  bool boot_ok = false;
  std::uint32_t booted_version = 0;  // right after recovery
  std::uint64_t resume_saved = 0;    // journal bytes not rewritten
  std::uint32_t final_version = 0;   // after the resumed update finishes
  double recovery_us = 0.0;
  int violations = 0;
};

SweepRow run_cut(std::int64_t k, std::uint64_t seed, const FirmwareImage& oldf,
                 const FirmwareImage& newf) {
  Scheduler sched;
  FaultPlan plan(sched, seed);
  FaultSpec spec;
  spec.target = "ecu.flash";
  spec.kind = FaultKind::kPowerLoss;
  spec.probability = 0.0;  // purely scripted: exact write-op index
  spec.page_index = k;
  plan.window(SimTime::zero(), SimTime::from_s(3600), spec);
  sched.run_until(SimTime::from_ms(1));  // arm the window

  Flash flash;
  flash.provision(oldf);
  flash.set_fault_port(&plan.port("ecu.flash"));

  SweepRow row;
  row.cut_op = k;
  const SimTime t0 = SimTime::from_s(1);
  const SimTime confirm = SimTime::from_s(30);

  bool cut = false;
  if (!flash.stage(newf)) {
    if (flash.lost_power()) {
      cut = true;
      row.phase = "stage";
    } else {
      ++row.violations;  // stage refused without a cut
      row.phase = "stage_rejected";
    }
  }
  if (!cut && row.violations == 0) {
    if (!flash.activate(t0, confirm)) {
      if (flash.lost_power()) {
        cut = true;
        row.phase = "activate";
      } else {
        ++row.violations;
        row.phase = "activate_rejected";
      }
    }
  }
  if (!cut && row.violations == 0) {
    flash.commit();
    if (flash.lost_power()) {
      cut = true;
      row.phase = "commit";
    }
  }
  row.cut = cut;
  if (!cut && row.violations == 0) row.phase = "complete";

  if (cut) {
    // Reboot within the confirmation window and check the invariant.
    const SimTime t1 = t0 + SimTime::from_s(5);
    const Flash::BootReport rep = flash.boot(t1);
    row.recovery_us = rep.scan_us;
    row.boot_ok = rep.bootable;
    if (!rep.bootable) ++row.violations;  // bricked
    const FirmwareImage* a = flash.active();
    if (!a || !(a->code == oldf.code || a->code == newf.code)) {
      ++row.violations;  // booted a torn / unknown image
    }
    row.booted_version = a ? a->version : 0;
    if (rep.staging_resumable) row.resume_saved = rep.resume_watermark;

    // Resume the update from wherever the cut left it.
    if (flash.confirm_pending()) {
      flash.commit();  // cut hit the commit marker; self-test passed earlier
    } else if (!a || a->version != newf.version) {
      if (!flash.stage(newf)) {
        ++row.violations;
      } else if (!flash.activate(t1, confirm)) {
        ++row.violations;
      } else {
        flash.commit();
      }
    }
  }

  const FirmwareImage* fin = flash.active();
  row.final_version = fin ? fin->version : 0;
  if (!fin || fin->version != newf.version || !(fin->code == newf.code)) {
    ++row.violations;  // resumed update did not converge on the new image
  }
  if (flash.rollback_floor() != newf.version) ++row.violations;
  return row;
}

// --- Part B: Poisson power-loss campaign -------------------------------------

struct CampaignRow {
  std::string scenario;
  double p = 0.0;
  std::size_t fleet = 0;
  std::size_t waves = 0;
  bool aborted = false;
  std::size_t updated = 0;
  std::size_t after_power_loss = 0;
  std::size_t skipped = 0;
  std::size_t bricked = 0;
  std::size_t power_losses = 0;
  std::size_t resume_saved = 0;
  double completion = 0.0;
  double recovery_us_total = 0.0;
  std::string json;
};

CampaignRow run_campaign(const std::string& scenario, double p,
                         std::uint64_t seed, bool bad_image) {
  Scheduler sched;
  crypto::Drbg rng{seed};
  ota::Repository director(rng, "director", SimTime::from_s(360000));
  ota::Repository images(rng, "image-repo", SimTime::from_s(360000));
  const Bytes fw = patterned(96 * 1024, 0x5A);
  director.add_target("vecu-fw", fw, 2, "vecu-hw");
  images.add_target("vecu-fw", fw, 2, "vecu-hw");
  director.publish(SimTime::from_ms(1));
  images.publish(SimTime::from_ms(1));

  FaultPlan plan(sched, seed);

  ota::CampaignConfig cfg;
  cfg.wave_size = 4;
  cfg.wave_gap = SimTime::from_s(5);
  cfg.vehicle_stagger = SimTime::from_ms(200);
  cfg.wave_abort_ratio = 0.5;
  cfg.max_reboots = 6;
  cfg.reboot_delay = SimTime::from_s(1);
  cfg.confirm_timeout = SimTime::from_s(30);
  cfg.retry.max_attempts = 10;
  cfg.retry.initial_backoff = SimTime::from_ms(100);
  cfg.retry.chunk_bytes = 16 * 1024;
  cfg.retry.link_bytes_per_sec = 1'000'000;

  ota::CampaignRunner camp(sched, director, images, "vecu-fw", "vecu-hw", cfg);

  constexpr std::size_t kFleet = 12;
  std::vector<std::unique_ptr<Flash>> flashes;
  std::vector<std::unique_ptr<ota::FullVerificationClient>> clients;
  const FirmwareImage oldf{"vecu-fw", 1, patterned(64 * 1024, 0x11)};
  for (std::size_t i = 0; i < kFleet; ++i) {
    const std::string id = "vm" + std::to_string(i);
    flashes.push_back(std::make_unique<Flash>());
    flashes.back()->provision(oldf);
    flashes.back()->set_fault_port(&plan.port(id + ".flash"));
    if (p > 0) {
      FaultSpec spec;
      spec.target = id + ".flash";
      spec.kind = FaultKind::kPowerLoss;
      spec.probability = p;  // Bernoulli per write op ("Poisson-per-page")
      plan.window(SimTime::zero(), SimTime::from_s(100000), spec);
    }
    clients.push_back(std::make_unique<ota::FullVerificationClient>(
        id, director.trusted_root(), images.trusted_root()));
    camp.add_vehicle(id, *flashes.back(), *clients.back(),
                     bad_image ? std::function<bool()>([] { return false; })
                               : std::function<bool()>{});
  }
  camp.start();
  sched.run_until(SimTime::from_s(4000));

  CampaignRow row;
  row.scenario = scenario;
  row.p = p;
  row.fleet = kFleet;
  row.waves = camp.waves_dispatched();
  row.aborted = camp.aborted();
  row.updated = camp.updated();
  row.after_power_loss = camp.count(ota::VehicleOutcome::kUpdatedAfterPowerLoss);
  row.skipped = camp.count(ota::VehicleOutcome::kSkipped);
  row.bricked = camp.bricked();
  row.completion = camp.completion_rate();
  row.resume_saved = camp.total_resume_bytes_saved();
  for (const ota::VehicleLedger& l : camp.ledger()) {
    row.power_losses += static_cast<std::size_t>(l.power_losses);
    row.recovery_us_total += l.recovery_us;
  }
  row.json = camp.to_json();
  return row;
}

// --- Part C: confirm watchdog ------------------------------------------------

struct WatchdogResult {
  std::uint64_t auto_reverts = 0;
  std::uint32_t final_version = 0;
  int violations = 0;
};

WatchdogResult run_watchdog() {
  Scheduler sched;
  safety::HealthSupervisor sup(sched, "vehicle");
  Flash flash;
  const FirmwareImage oldf{"ecu-fw", 1, patterned(16 * 1024, 0x21)};
  const FirmwareImage newf{"ecu-fw", 2, patterned(20 * 1024, 0x33)};
  flash.provision(oldf);
  ota::ConfirmWatchdog wd(sched, sup, flash, "flash.confirm",
                          SimTime::from_ms(500));
  flash.stage(newf);
  flash.activate(SimTime::zero(), SimTime::from_s(2));
  // The self-test hangs: commit() never runs. The watchdog must notice the
  // lapsed deadline and auto-revert via boot-time recovery.
  wd.start();
  sched.run_until(SimTime::from_s(10));

  WatchdogResult r;
  r.auto_reverts = wd.auto_reverts();
  const FirmwareImage* a = flash.active();
  r.final_version = a ? a->version : 0;
  if (r.auto_reverts == 0) ++r.violations;
  if (!a || a->version != oldf.version || !(a->code == oldf.code)) {
    ++r.violations;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }

  std::printf("E18: power-loss-atomic A/B updates\n");
  std::printf("(seed %llu; invariant: any single cut -> bootable valid image, "
              "never torn, never bricked)\n\n",
              static_cast<unsigned long long>(seed));

  int violations = 0;

  // Part A — exhaustive cut sweep over every write op of the install.
  const FirmwareImage oldf{"ecu-fw", 1,
                           patterned(3 * Flash::kPageSize + 512, 0x11)};
  const FirmwareImage newf{"ecu-fw", 2,
                           patterned(5 * Flash::kPageSize + 1000, 0x33)};
  benchutil::Table sweep_table({"cut_op", "phase", "boot_ok", "booted_v",
                                "resume_bytes", "final_v", "recovery_us",
                                "violations"});
  std::vector<SweepRow> sweep;
  for (std::int64_t k = 0;; ++k) {
    SweepRow row = run_cut(k, seed, oldf, newf);
    const bool done = !row.cut;  // this k is past the last write op
    if (done) row.cut_op = -1;
    sweep.push_back(row);
    violations += row.violations;
    sweep_table.add_row(
        {done ? "none" : std::to_string(row.cut_op), row.phase,
         row.cut ? (row.boot_ok ? "yes" : "NO") : "-",
         std::to_string(row.booted_version),
         benchutil::fmt_u(row.resume_saved), std::to_string(row.final_version),
         benchutil::fmt("%.1f", row.recovery_us),
         std::to_string(row.violations)});
    if (done) break;
  }
  std::printf("Part A: exhaustive power-cut sweep (%zu write ops)\n",
              sweep.size() - 1);
  sweep_table.print();
  std::printf("\n");

  // Part B — Poisson power-loss fleet campaigns + bad-image wave abort.
  const std::vector<double> probs =
      smoke ? std::vector<double>{0.03} : std::vector<double>{0.01, 0.03, 0.08};
  std::vector<CampaignRow> campaigns;
  std::uint64_t cseed = seed * 1000;
  for (const double p : probs) {
    campaigns.push_back(
        run_campaign("poisson", p, ++cseed, /*bad_image=*/false));
  }
  campaigns.push_back(
      run_campaign("bad_image", 0.0, ++cseed, /*bad_image=*/true));

  benchutil::Table camp_table({"scenario", "p_cut", "fleet", "waves", "aborted",
                               "updated", "after_ploss", "skipped", "bricked",
                               "power_losses", "resume_bytes",
                               "completion_%"});
  for (const CampaignRow& r : campaigns) {
    violations += static_cast<int>(r.bricked);
    camp_table.add_row({r.scenario, benchutil::fmt("%.2f", r.p),
                        benchutil::fmt_u(r.fleet), benchutil::fmt_u(r.waves),
                        r.aborted ? "yes" : "no", benchutil::fmt_u(r.updated),
                        benchutil::fmt_u(r.after_power_loss),
                        benchutil::fmt_u(r.skipped),
                        benchutil::fmt_u(r.bricked),
                        benchutil::fmt_u(r.power_losses),
                        benchutil::fmt_u(r.resume_saved),
                        benchutil::fmt("%.1f", 100.0 * r.completion)});
  }
  // The bad-image campaign must abort after its first wave; the Poisson
  // campaigns must finish without an abort (power loss is survivable).
  for (const CampaignRow& r : campaigns) {
    if (r.scenario == "bad_image" && (!r.aborted || r.skipped == 0)) {
      ++violations;
    }
  }
  std::printf("Part B: staggered-wave campaigns under power-loss injection\n");
  camp_table.print();
  std::printf("\n");

  // Part C — supervised confirm-or-revert deadline.
  const WatchdogResult wr = run_watchdog();
  violations += wr.violations;
  std::printf("Part C: confirm watchdog: auto_reverts=%llu final_version=%u "
              "violations=%d\n\n",
              static_cast<unsigned long long>(wr.auto_reverts),
              wr.final_version, wr.violations);

  // Deterministic JSON report (chaos-smoke CI diffs two seeded runs).
  std::string json = "{\"experiment\":\"e18_update_atomicity\",\"seed\":" +
                     std::to_string(seed) + ",\"sweep\":[";
  char buf[256];
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"cut_op\":%lld,\"phase\":\"%s\",\"boot_ok\":%s,"
                  "\"booted_version\":%u,\"resume_bytes\":%llu,"
                  "\"final_version\":%u,\"recovery_us\":%.1f,"
                  "\"violations\":%d}",
                  i ? "," : "", static_cast<long long>(r.cut_op),
                  r.phase.c_str(), r.boot_ok ? "true" : "false",
                  r.booted_version,
                  static_cast<unsigned long long>(r.resume_saved),
                  r.final_version, r.recovery_us, r.violations);
    json += buf;
  }
  json += "],\"campaigns\":[";
  for (std::size_t i = 0; i < campaigns.size(); ++i) {
    if (i) json += ",";
    json += "{\"scenario\":\"" + campaigns[i].scenario + "\",\"p\":" +
            benchutil::fmt("%.3f", campaigns[i].p) +
            ",\"report\":" + campaigns[i].json + "}";
  }
  std::snprintf(buf, sizeof buf,
                "],\"watchdog\":{\"auto_reverts\":%llu,\"final_version\":%u},"
                "\"violations\":%d}",
                static_cast<unsigned long long>(wr.auto_reverts),
                wr.final_version, violations);
  json += buf;
  std::printf("%s\n", json.c_str());

  return violations > 255 ? 255 : violations;
}
