// Experiment E4 — side-channel key extraction (paper §4.2 "Side-channel
// Leakage").
//
// CPA against the leaky AES device: traces needed for full 16-byte key
// recovery as noise grows, and the effect of the masking and shuffling
// countermeasures. Also the TVLA leakage-assessment t statistic, the
// pass/fail gate a security lab would apply.

#include <cstdio>

#include "bench_util.hpp"
#include "sidechannel/power_model.hpp"

using namespace aseck;
using namespace aseck::sidechannel;

namespace {
crypto::Block device_key() {
  crypto::Block k;
  for (std::size_t i = 0; i < 16; ++i) {
    k[i] = static_cast<std::uint8_t>(0x2b + 7 * i);
  }
  return k;
}

const char* cm_name(Countermeasure c) {
  switch (c) {
    case Countermeasure::kNone: return "none";
    case Countermeasure::kMasking: return "masking";
    case Countermeasure::kShuffling: return "shuffling";
  }
  return "?";
}
}  // namespace

int main() {
  std::printf("E4: CPA key recovery vs noise and countermeasures\n");
  std::printf("(AES-128 first-round HW leakage, 16 samples/trace)\n\n");

  const std::vector<std::size_t> schedule{50, 100, 200, 400, 800, 1600, 3200, 6400};

  benchutil::Table table({"countermeasure", "noise_sigma", "traces_to_break",
                          "bytes_recovered@max", "tvla_max_t"});

  struct Config {
    Countermeasure cm;
    double noise;
  };
  const std::vector<Config> configs{
      {Countermeasure::kNone, 0.5},  {Countermeasure::kNone, 1.0},
      {Countermeasure::kNone, 2.0},  {Countermeasure::kNone, 4.0},
      {Countermeasure::kShuffling, 1.0}, {Countermeasure::kMasking, 1.0},
  };

  for (const auto& cfg : configs) {
    LeakyAesDevice dev(device_key(), LeakageConfig{cfg.noise, cfg.cm},
                       static_cast<std::uint64_t>(cfg.noise * 100) + 17);
    util::Rng rng(99);
    const std::size_t needed = cpa_traces_needed(dev, rng, schedule);

    // Bytes recovered at the maximum schedule point (for failed attacks).
    LeakyAesDevice dev2(device_key(), LeakageConfig{cfg.noise, cfg.cm}, 18);
    util::Rng rng2(100);
    std::vector<Trace> traces;
    for (std::size_t i = 0; i < schedule.back(); ++i) {
      traces.push_back(dev2.capture(rng2));
    }
    const int bytes = cpa_attack(traces).correct_bytes(device_key());

    LeakyAesDevice dev3(device_key(), LeakageConfig{cfg.noise, cfg.cm}, 19);
    util::Rng rng3(101);
    const double t = tvla_max_t(dev3, rng3, 600);

    table.add_row({cm_name(cfg.cm), benchutil::fmt("%.1f", cfg.noise),
                   needed ? std::to_string(needed) : ">" + std::to_string(schedule.back()),
                   std::to_string(bytes) + "/16", benchutil::fmt("%.1f", t)});
  }
  table.print();
  std::printf(
      "\nReading: traces-to-break grows ~quadratically with noise (classic\n"
      "CPA scaling); shuffling multiplies the requirement; first-order\n"
      "masking defeats first-order CPA entirely and drives TVLA |t| below\n"
      "the 4.5 leakage threshold. This is the physical-access channel that\n"
      "seeds the fleet-wide OTA compromise of E5.\n");
  return 0;
}
