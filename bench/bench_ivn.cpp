// Micro-benchmarks for the IVN substrate: frame-time computation, CAN bus
// event throughput, SecOC protect/verify, Ethernet switch forwarding, and
// IDS observation cost (google-benchmark).

#include <benchmark/benchmark.h>

#include "ecu/ecu.hpp"
#include "util/rng.hpp"
#include "ids/detectors.hpp"
#include "ivn/can.hpp"
#include "ivn/e2e.hpp"
#include "ivn/ethernet.hpp"
#include "ivn/secoc.hpp"
#include "ivn/someip.hpp"

using namespace aseck;
using util::Bytes;

namespace {

void BM_CanFrameWireBits(benchmark::State& state) {
  ivn::CanFrame f;
  f.id = 0x123;
  f.data = Bytes(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.wire_bits());
  }
}
BENCHMARK(BM_CanFrameWireBits)->Arg(0)->Arg(8);

void BM_CanBusThroughput(benchmark::State& state) {
  // Events simulated per second: saturated bus with two nodes.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    ivn::CanBus bus(sched, "can0", 500000);
    struct Sink : ivn::CanNode {
      using CanNode::CanNode;
      void on_frame(const ivn::CanFrame&, sim::SimTime) override {}
    } tx("tx"), rx("rx");
    bus.attach(&tx);
    bus.attach(&rx);
    ivn::CanFrame f;
    f.id = 0x100;
    f.data = Bytes(8, 0x11);
    for (int i = 0; i < 1000; ++i) bus.send(&tx, f);
    state.ResumeTiming();
    sched.run();
    benchmark::DoNotOptimize(bus.stats().frames_ok);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CanBusThroughput);

void BM_SecOcProtect(benchmark::State& state) {
  const ivn::SecOcChannel ch(Bytes(16, 0x42));
  ivn::FreshnessManager fm;
  const Bytes payload(4, 0x7F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.protect(0x100, payload, fm));
  }
}
BENCHMARK(BM_SecOcProtect);

void BM_SecOcVerify(benchmark::State& state) {
  const ivn::SecOcChannel ch(Bytes(16, 0x42));
  ivn::FreshnessManager tx_fm;
  const Bytes payload(4, 0x7F);
  for (auto _ : state) {
    state.PauseTiming();
    ivn::FreshnessManager rx_fm;
    const Bytes pdu = ch.protect(0x100, payload, tx_fm);
    state.ResumeTiming();
    benchmark::DoNotOptimize(ch.verify(0x100, pdu, rx_fm));
  }
}
BENCHMARK(BM_SecOcVerify);

void BM_EthernetSwitchForward(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    ivn::EthernetSwitch sw(sched, "sw0");
    struct Sink : ivn::EthernetEndpoint {
      using EthernetEndpoint::EthernetEndpoint;
      void on_frame(const ivn::EthernetFrame&, sim::SimTime) override {}
    } a("a", ivn::mac_from_u64(1)), b("b", ivn::mac_from_u64(2));
    const auto pa = sw.connect(&a);
    const auto pb = sw.connect(&b);
    ivn::EthernetFrame fa;
    fa.src = a.mac();
    fa.dst = b.mac();
    fa.payload = Bytes(100, 0x33);
    ivn::EthernetFrame fb;
    fb.src = b.mac();
    fb.dst = a.mac();
    fb.payload = Bytes(100, 0x44);
    sw.send(pa, fa);
    sw.send(pb, fb);
    sched.run();  // learn MACs
    state.ResumeTiming();
    for (int i = 0; i < 500; ++i) sw.send(pa, fa);
    sched.run();
    benchmark::DoNotOptimize(sw.forwarded());
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_EthernetSwitchForward);

void BM_IdsObserve(benchmark::State& state) {
  ids::IdsEnsemble ensemble = ids::make_default_ensemble();
  util::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    ivn::CanFrame f;
    f.id = 0x100;
    f.data = Bytes(8, 0x10);
    f.data[7] = static_cast<std::uint8_t>(rng.next_u64());
    ensemble.train(f, sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 10));
  }
  ensemble.finish_training();
  ivn::CanFrame live;
  live.id = 0x100;
  live.data = Bytes(8, 0x10);
  std::uint64_t t = 5'000'000;
  for (auto _ : state) {
    t += 10'000'000;
    benchmark::DoNotOptimize(ensemble.observe(live, sim::SimTime::from_ns(t)));
  }
}
BENCHMARK(BM_IdsObserve);

void BM_E2eProtectCheck(benchmark::State& state) {
  ivn::E2eProtector tx(ivn::E2eConfig{0x1234, 2});
  ivn::E2eChecker rx(ivn::E2eConfig{0x1234, 2});
  const Bytes payload(6, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx.check(tx.protect(payload)));
  }
}
BENCHMARK(BM_E2eProtectCheck);

void BM_SomeIpCall(benchmark::State& state) {
  const bool authenticated = state.range(0) != 0;
  sim::Scheduler sched;
  ivn::EthernetSwitch sw(sched, "sw0");
  ivn::ServiceAcl acl;
  acl.allow(0x1001, 1);
  ivn::SomeIpServer server(sw, "srv", ivn::mac_from_u64(0x10), &acl);
  ivn::SomeIpClient client(sw, "cli", ivn::mac_from_u64(0x20), 1);
  const Bytes key(16, 0x5A);
  server.offer(0x1001, 1, [](util::BytesView) { return Bytes{0x01}; },
               authenticated ? std::optional<Bytes>(key) : std::nullopt);
  for (auto _ : state) {
    client.call(ivn::mac_from_u64(0x10), 0x1001, 1, Bytes{0x00},
                [](ivn::SomeIpError, util::BytesView) {},
                authenticated ? std::optional<Bytes>(key) : std::nullopt);
    sched.run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SomeIpCall)->Arg(0)->Arg(1);

void BM_SheCmdLatencyModel(benchmark::State& state) {
  // Pure model arithmetic; here to keep the cost model visible in reports.
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecu::She::cmd_latency_us(64));
  }
}
BENCHMARK(BM_SheCmdLatencyModel);

}  // namespace

BENCHMARK_MAIN();
