// Experiment E22 — batch ECDSA verification pipeline (ROADMAP O2) and the
// opportunistic-admission safety window (paper §4.2: per-message signature
// verification is the dominant V2X receive cost; production stacks batch,
// cache, or defer it — each with a measurable safety/throughput trade).
//
// Four measurements:
//   1. Differential correctness: a mixed corpus (valid, hint-stripped,
//      wrong parity hint, corrupted signature, corrupted digest, malformed
//      items) through `ecdsa_verify_batch` at several batch sizes, every
//      verdict cross-checked against `ecdsa_verify_digest_slow`. The RLC
//      check, the bisection fallback, and the per-item fallback must all
//      agree with the reference bit-for-bit.
//   2. Throughput: batch sizes 1/8/32/64/128 vs the per-signature fast path
//      (E17's comb+wNAF verifier — which is also the batch pipeline's
//      fallback). The O2 acceptance bar is >=2x at batch >= 64.
//   3. VerifyPool thread invariance: the same job stream through 1/2/4
//      worker threads; per-item verdicts AND merged crypto.verify.* metrics
//      must be byte-identical (lane layout is fixed, threads only supply
//      labor). `--digest` prints the invariant digest alone for CI diffing.
//   4. Opportunistic admission: vehicles admit BSMs after the cheap
//      synchronous checks and defer the signature to the batch pipeline; a
//      forged message is acted on and revoked one flush later. The measured
//      admit->verdict window (sim-time) is priced against E11's hazard
//      oracle — what ASIL is reachable through that window.
//
// Exit code = differential mismatches + thread-invariance diffs. `--smoke`
// shrinks the corpus and suppresses wall-clock numbers so two smoke runs
// with the same seed emit byte-identical output (chaos-smoke CI diffs them).
//
// Flags: --seed N  --smoke  --threads T  --digest

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/verify_pool.hpp"
#include "safety/asil.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"
#include "v2x/cert.hpp"
#include "v2x/net.hpp"
#include "v2x/opportunistic.hpp"

using namespace aseck;
using util::SimTime;

namespace {

double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

crypto::EcdsaPrivateKey random_key(util::Rng& rng) {
  std::array<std::uint8_t, 32> secret{};
  for (auto& b : secret) b = static_cast<std::uint8_t>(rng.next_u32());
  secret[31] |= 1;  // never zero mod n
  return crypto::EcdsaPrivateKey::from_secret(
      util::BytesView(secret.data(), secret.size()));
}

struct Corpus {
  std::vector<crypto::EcdsaPrivateKey> keys;
  std::vector<crypto::Digest> digests;
  std::vector<crypto::EcdsaSignature> sigs;
  std::size_t size() const { return digests.size(); }
};

/// `n` signed digests over `key_count` keys; every `corrupt_every`-th
/// signature is corrupted (0 = none). Signer parity hints attached.
Corpus make_corpus(std::size_t n, std::size_t key_count, std::size_t corrupt_every,
                   util::Rng& rng) {
  Corpus c;
  for (std::size_t k = 0; k < key_count; ++k) c.keys.push_back(random_key(rng));
  for (std::size_t i = 0; i < n; ++i) {
    crypto::Digest d;
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_u32());
    const auto& key = c.keys[i % key_count];
    crypto::EcdsaSignature sig = key.sign_digest(d);
    if (corrupt_every && i % corrupt_every == corrupt_every - 1) {
      sig.s = crypto::U256::from_u64(rng.next_u64() | 1);
    }
    c.digests.push_back(d);
    c.sigs.push_back(sig);
  }
  return c;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Pool run digest: verdict stream + merged metrics JSON. Must not depend
/// on the worker thread count.
std::string pool_digest(const Corpus& c, unsigned threads) {
  crypto::VerifyPoolConfig cfg;
  cfg.threads = threads;
  cfg.producers = 2;
  cfg.lanes = 8;
  cfg.batch_size = 64;
  crypto::VerifyPool pool(cfg);
  for (std::size_t i = 0; i < c.size(); ++i) {
    pool.queue().push(i % 2, crypto::VerifyJob{&c.keys[i % c.keys.size()].public_key(),
                                               c.digests[i], &c.sigs[i], i});
  }
  const auto outcomes = pool.flush();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& o : outcomes) {
    h = fnv1a(h, &o.tag, sizeof o.tag);
    const std::uint8_t ok = o.ok ? 1 : 0;
    h = fnv1a(h, &ok, 1);
  }
  sim::MetricsRegistry merged;
  pool.merge_metrics_into(merged);
  const std::string json = merged.to_json();
  h = fnv1a(h, json.data(), json.size());
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"verdicts\":%zu,\"digest\":\"%016llx\"}",
                outcomes.size(), static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false, digest_only = false;
  unsigned threads = 4;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--digest") == 0) {
      digest_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--smoke] [--threads T] [--digest]\n",
                   argv[0]);
      return 255;
    }
  }
  if (threads == 0) threads = 1;
  util::Rng rng(seed);

  if (digest_only) {
    // One pool run at exactly --threads; stdout is the invariant digest and
    // nothing else, so CI can diff thread counts byte-for-byte.
    const Corpus c = make_corpus(192, 5, 7, rng);
    std::printf("%s\n", pool_digest(c, threads).c_str());
    return 0;
  }

  std::printf("E22: batch ECDSA verify pipeline + opportunistic admission\n");
  std::printf("(seed %llu%s)\n\n", static_cast<unsigned long long>(seed),
              smoke ? ", smoke" : "");
  crypto::p256::init_fixed_base_tables();  // exclude table build from timing
  std::size_t exit_count = 0;

  // -------------------------------------------------------------- part 1
  // Differential: mixed corpus vs the Shamir reference verifier.
  {
    const std::size_t n = smoke ? 96 : 384;
    Corpus c = make_corpus(n, 7, 6, rng);
    // Adversarial hint damage on valid signatures: stripped and flipped
    // hints must cost work, never verdicts.
    for (std::size_t i = 0; i < n; i += 9) c.sigs[i].r_parity = crypto::EcdsaSignature::kNoRParity;
    for (std::size_t i = 4; i < n; i += 11) {
      if (c.sigs[i].has_r_parity()) c.sigs[i].r_parity ^= 1;
    }
    std::vector<crypto::BatchVerifyItem> items;
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back({&c.keys[i % c.keys.size()].public_key(), c.digests[i],
                       &c.sigs[i]});
    }
    // Malformed tail: null pointers and out-of-range scalars.
    crypto::EcdsaSignature zero_r = c.sigs[0];
    zero_r.r = crypto::U256();
    items.push_back({nullptr, c.digests[0], &c.sigs[0]});
    items.push_back({&c.keys[0].public_key(), c.digests[0], nullptr});
    items.push_back({&c.keys[0].public_key(), c.digests[0], &zero_r});

    std::size_t mismatches = 0;
    std::size_t batch_valid = 0;
    crypto::BatchVerifyStats stats;
    for (std::size_t bs : {8u, 64u, 1024u}) {  // 1024 = whole corpus at once
      std::size_t done = 0;
      std::vector<bool> verdicts;
      while (done < items.size()) {
        const std::size_t take = std::min(bs, items.size() - done);
        const std::vector<crypto::BatchVerifyItem> chunk(
            items.begin() + static_cast<std::ptrdiff_t>(done),
            items.begin() + static_cast<std::ptrdiff_t>(done + take));
        const std::vector<bool> out = crypto::ecdsa_verify_batch(chunk, {}, &stats);
        verdicts.insert(verdicts.end(), out.begin(), out.end());
        done += take;
      }
      batch_valid = 0;
      for (std::size_t i = 0; i < items.size(); ++i) {
        const bool oracle =
            items[i].pub && items[i].sig &&
            crypto::ecdsa_verify_digest_slow(*items[i].pub, items[i].digest,
                                             *items[i].sig);
        if (verdicts[i] != oracle) ++mismatches;
        if (verdicts[i]) ++batch_valid;
      }
    }
    std::printf("[1] differential, %zu items (valid+corrupted+hint-damaged+malformed)\n",
                items.size());
    std::printf("    batch-vs-reference verdict mismatches: %zu (across batch "
                "sizes 8/64/all)\n", mismatches);
    std::printf("    valid: %zu; kernel work: %llu RLC checks, %llu bisections, "
                "%llu single fallbacks\n",
                batch_valid, static_cast<unsigned long long>(stats.rlc_checks),
                static_cast<unsigned long long>(stats.bisections),
                static_cast<unsigned long long>(stats.single_checks));
    exit_count += mismatches;
  }

  // -------------------------------------------------------------- part 2
  // Throughput: batch kernel vs the per-signature fast path.
  {
    const std::size_t n = smoke ? 128 : 512;
    const Corpus c = make_corpus(n, 11, 0, rng);
    std::vector<crypto::BatchVerifyItem> items;
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back({&c.keys[i % c.keys.size()].public_key(), c.digests[i],
                       &c.sigs[i]});
    }
    const int reps = smoke ? 1 : 5;
    double single_s = 1e300;
    std::size_t wrong = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const double t0 = cpu_seconds();
      for (const auto& it : items) {
        if (!crypto::ecdsa_verify_digest(*it.pub, it.digest, *it.sig)) ++wrong;
      }
      single_s = std::min(single_s, cpu_seconds() - t0);
    }
    benchutil::Table table({"batch", "us/item", "vs per-sig", "throughput/s"});
    if (!smoke) {
      table.add_row({"1 (per-sig)",
                     benchutil::fmt("%.1f", single_s / static_cast<double>(n) * 1e6),
                     "1.00x",
                     benchutil::fmt_u(static_cast<std::uint64_t>(
                         static_cast<double>(n) / single_s))});
    }
    for (std::size_t bs : {8u, 32u, 64u, 128u}) {
      double best = 1e300;
      for (int rep = 0; rep < reps; ++rep) {
        const double t0 = cpu_seconds();
        std::size_t done = 0;
        while (done < items.size()) {
          const std::size_t take = std::min(bs, items.size() - done);
          const std::vector<crypto::BatchVerifyItem> chunk(
              items.begin() + static_cast<std::ptrdiff_t>(done),
              items.begin() + static_cast<std::ptrdiff_t>(done + take));
          const std::vector<bool> out = crypto::ecdsa_verify_batch(chunk);
          for (bool ok : out) {
            if (!ok) ++wrong;
          }
          done += take;
        }
        best = std::min(best, cpu_seconds() - t0);
      }
      if (!smoke) {
        table.add_row({std::to_string(bs),
                       benchutil::fmt("%.1f", best / static_cast<double>(n) * 1e6),
                       benchutil::fmt("%.2fx", single_s / best),
                       benchutil::fmt_u(static_cast<std::uint64_t>(
                           static_cast<double>(n) / best))});
      }
    }
    std::printf("\n[2] throughput, %zu valid signatures (O2 bar: >=2x at batch >= 64)\n", n);
    if (smoke) {
      std::printf("    (timing suppressed in smoke mode)\n");
    } else {
      table.print();
    }
    std::printf("    unexpected-invalid verdicts: %zu\n", wrong);
    exit_count += wrong;
  }

  // -------------------------------------------------------------- part 3
  // VerifyPool thread invariance: same stream, 1/2/4 threads.
  {
    const Corpus c = make_corpus(smoke ? 160 : 480, 5, 7, rng);
    const std::string ref = pool_digest(c, 1);
    std::size_t diffs = 0;
    std::vector<unsigned> sweep{1, 2};
    for (unsigned t = 4; t <= threads; t *= 2) sweep.push_back(t);
    for (unsigned t : sweep) {
      if (pool_digest(c, t) != ref) ++diffs;
    }
    std::printf("\n[3] pool thread invariance, %zu jobs, threads {1,2,..,%u}\n",
                c.size(), sweep.back());
    std::printf("    verdict+metrics digest: %s, %zu mismatch(es)\n", ref.c_str(),
                diffs);
    exit_count += diffs;
  }

  // -------------------------------------------------------------- part 4
  // Opportunistic admission: the safety window, priced by E11's oracle.
  {
    sim::Scheduler sched;
    crypto::Drbg pki_rng(seed);
    auto root = v2x::CertificateAuthority::make_root(pki_rng, "root-ca",
                                                     SimTime::from_s(100000));
    auto pca = v2x::CertificateAuthority::make_sub(pki_rng, "pca", root,
                                                   SimTime::from_s(100000));
    v2x::TrustStore trust;
    trust.add_root(root.certificate());
    trust.add_intermediate(pca.certificate());

    v2x::V2xMedium medium(sched);
    auto b1 = pca.issue_pseudonyms(pki_rng, 1, SimTime::zero(), SimTime::from_s(1000));
    auto b2 = pca.issue_pseudonyms(pki_rng, 1, SimTime::zero(), SimTime::from_s(1000));
    v2x::VehicleNode honest(sched, medium, "honest", {0, 0}, 13.0, 0, trust,
                            std::move(b1));
    v2x::VehicleNode receiver(sched, medium, "receiver", {60, 0}, -13.0, 0,
                              trust, std::move(b2));
    v2x::DeferredSpduVerifier verifier(sched);
    receiver.enable_opportunistic(verifier);
    std::uint64_t acted_on_forgery = 0, revokes = 0;
    receiver.set_bsm_sink([&](const v2x::Bsm& b, const v2x::Spdu&, SimTime) {
      if (b.temp_id == 0xdeadbeef) ++acted_on_forgery;
    });
    receiver.set_revoke_sink(
        [&](std::uint32_t, SimTime, SimTime) { ++revokes; });

    struct Injector : v2x::V2xRadio {
      Injector() : V2xRadio("injector") {}
      v2x::Position position() const override { return {30, 0}; }
      void on_spdu(const v2x::Spdu&, SimTime) override {}
    } injector;
    medium.attach(&injector);
    const auto mallory = random_key(rng);
    const auto mallory_cert =
        pca.issue("mallory", mallory.public_key(), {v2x::Psid::kBsm},
                  SimTime::zero(), SimTime::from_s(1000));
    // A forged BSM every 330 ms: valid certificate, fresh timestamp,
    // plausible kinematics — only the signature is wrong, and that is the
    // one check the receiver deferred.
    sim::PeriodicTask forger(
        sched, SimTime::from_ms(330),
        [&] {
          v2x::Bsm fake;
          fake.temp_id = 0xdeadbeef;
          fake.pos = {30, 0};
          fake.speed_mps = 8.0;
          fake.generated = sched.now();
          v2x::Spdu msg = v2x::Spdu::sign(v2x::Psid::kBsm, sched.now(),
                                          fake.serialize(), mallory_cert,
                                          mallory);
          msg.signature.s = crypto::U256::from_u64(5);  // forge
          medium.broadcast(&injector, msg);
        },
        SimTime::from_ms(115));

    verifier.start();
    honest.start();
    receiver.start();
    sched.run_until(SimTime::from_s(2));
    honest.stop();
    receiver.stop();
    forger.stop();
    sched.run_until(SimTime::from_ms(2100));
    verifier.stop();
    sched.run();

    const auto& st = receiver.stats();
    std::printf("\n[4] opportunistic admission, 2 s of traffic + forger\n");
    std::printf("    admitted provisionally: %llu, confirmed: %llu, revoked: %llu\n",
                static_cast<unsigned long long>(st.admitted_provisional),
                static_cast<unsigned long long>(verifier.confirmed()),
                static_cast<unsigned long long>(verifier.revoked()));
    std::printf("    forged BSMs acted on before revocation: %llu (revoke "
                "callbacks: %llu)\n",
                static_cast<unsigned long long>(acted_on_forgery),
                static_cast<unsigned long long>(revokes));
    std::printf("    exposure window (sim-time): mean %.0f us, max %.0f us, "
                "%zu samples\n",
                st.exposure_window_us.mean(), st.exposure_window_us.max(),
                st.exposure_window_us.count());

    // E11's oracle: what does that window cost in safety terms? The forged
    // BSM feeds the ADAS object list, so the reachable hazard is unneeded
    // emergency braking triggered by a ghost vehicle.
    safety::HazardRegistry hazards;
    hazards.add({"phantom-braking from ghost BSM", "adas-object-fusion",
                 safety::Severity::kS2, safety::Exposure::kE4,
                 safety::Controllability::kC2});
    const std::vector<safety::SecuritySafetyLink> links = {
        {"forged BSM accepted during deferred-verify window",
         "phantom-braking from ghost BSM"}};
    for (const auto& [attack, asil] : safety::attack_criticality(hazards, links)) {
      std::printf("    E11 oracle: \"%s\" reaches %s for up to %.0f us per "
                  "message\n",
                  attack.c_str(), safety::asil_name(asil),
                  st.exposure_window_us.max());
    }
    if (st.exposure_window_us.count() == 0 || verifier.revoked() == 0) {
      std::printf("    ERROR: opportunistic path not exercised\n");
      ++exit_count;
    }
  }

  std::printf("\nE22 exit: %zu mismatch(es)\n", exit_count);
  return exit_count > 255 ? 255 : static_cast<int>(exit_count);
}
