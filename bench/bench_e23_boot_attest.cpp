// Experiment E23 — measured boot chain + power-cut-survivable provisioning
// (paper §3: the Secure Processing layer's secure boot must gate key
// release; §5/§7: fleet provisioning and update paths must survive the most
// common field hazard, a power cut, without bricking or mis-unlocking).
//
// Three parts:
//
//   A. Exhaustive power-cut sweep over the combined provisioning + install
//      path: a campaign pushes a transactional kvstore config (new image
//      signature + campaign parameters) and installs the new image into the
//      A/B flash, with ONE shared fault port cutting power at every single
//      write-op index across both substrates, plus a cut-free control run.
//      After each cut the ECU reboots through the full measured chain
//      (ROM -> SHE boot-MAC -> signed app slot) and the invariants hold:
//        * never bricked — every recovery boot lands in normal/fallback
//          mode with a verified image;
//        * keys unlock if and only if the measurement passed;
//        * the kv transaction is atomic — after recovery the store holds
//          ALL of the pushed keys or NONE of them, never a prefix;
//        * the retried push + install converges on the new image, and the
//          final attestation evidence round-trips and verifies.
//
//   B. Measurement gate: a tampered BOOT_MAC must yield a booting chain
//      (SHE semantics) whose boot-protected keys stay locked, while the
//      (unprotected) attestation key still signs the failure report.
//      Plus the boot-time budget: modeled end-to-end boot latency versus
//      app image size (flash scan + kv scan + measure + verify terms).
//
//   C. Fleet attestation: every vehicle's evidence serializes, parses, and
//      verifies (nonce freshness + PCR replay + ECDSA); one forged blob per
//      category is rejected. Verify throughput is wall-clock and therefore
//      suppressed under --smoke.
//
// Exit code = invariant violations, capped at 255. Output is
// bit-deterministic per seed: the chaos-smoke CI job diffs two
// `--smoke --seed 42` runs byte for byte.
//
// Flags: --seed N  --smoke

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/drbg.hpp"
#include "crypto/service.hpp"
#include "crypto/sha256.hpp"
#include "ecu/boot.hpp"
#include "ecu/flash.hpp"
#include "ecu/kvstore.hpp"
#include "ecu/she.hpp"
#include "sim/faultplan.hpp"
#include "sim/scheduler.hpp"
#include "util/bytes.hpp"

using namespace aseck;
using crypto::CryptoService;
using crypto::KeyHandle;
using crypto::KeyPolicy;
using crypto::ServiceStatus;
using ecu::AttestationEvidence;
using ecu::BootChain;
using ecu::BootChainConfig;
using ecu::BootMode;
using ecu::FirmwareImage;
using ecu::Flash;
using ecu::KvStore;
using ecu::KvTransaction;
using ecu::She;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;
using sim::Scheduler;
using util::Bytes;
using util::SimTime;

namespace {

Bytes patterned(std::size_t n, std::uint8_t salt) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 131 + salt) & 0xFF);
  }
  return b;
}

crypto::Block block_of(std::uint8_t fill) {
  crypto::Block b{};
  b.fill(fill);
  return b;
}

ecu::SheKeyFlags mac_flags() {
  ecu::SheKeyFlags f;
  f.key_usage_mac = true;
  return f;
}

/// Trust material shared by every run (deterministic, computed once).
struct TrustAnchors {
  crypto::EcdsaPrivateKey oem;
  Bytes anchor_bytes;       // SEC1 public key stored under "boot.anchor"
  Bytes attest_secret;      // device attestation key scalar
  FirmwareImage v1, v2;
  Bytes sig_v1, sig_v2;     // OEM signatures over the image digests
  Bytes bootloader = patterned(512, 0x5A);

  explicit TrustAnchors(std::uint64_t seed)
      : oem([&] {
          crypto::Drbg rng(seed ^ 0x0e23ULL);
          return crypto::EcdsaPrivateKey::generate(rng);
        }()),
        v1{"vecu-fw", 1, patterned(2 * Flash::kPageSize, 0x11)},
        v2{"vecu-fw", 2, patterned(3 * Flash::kPageSize + 700, 0x33)} {
    anchor_bytes = oem.public_key().to_bytes();
    crypto::Drbg drng(seed ^ 0xa77e57ULL);
    attest_secret = drng.bytes(32);
    sig_v1 = oem.sign_digest(v1.digest()).to_bytes();
    sig_v2 = oem.sign_digest(v2.digest()).to_bytes();
  }
};

/// One fully-provisioned vehicle: SHE + flash(v1) + kv(anchor, sig_v1) +
/// sealed service with an attestation key and a boot-protected SecOC key.
struct Vehicle {
  She she;
  Flash flash;
  CryptoService svc;
  KvStore kv;
  crypto::PartitionId part = 0;
  KeyHandle attest_key{};
  KeyHandle secoc_key{};
  std::unique_ptr<BootChain> chain;

  Vehicle(const TrustAnchors& t, std::uint8_t uid_salt)
      : she(Bytes(15, uid_salt), 42), svc("vecu-crypto") {
    she.provision_key(ecu::SheSlot::kBootMacKey, block_of(0xB0), mac_flags());
    she.autonomous_bootstrap(t.bootloader);
    flash.provision(t.v1);
    kv.mount();
    KvTransaction txn;
    txn.put(ecu::kKvAppAnchorKey, t.anchor_bytes);
    txn.put(ecu::boot_sig_key(t.v1.digest()), t.sig_v1);
    kv.commit(txn);
    part = svc.register_partition("boot");
    KeyPolicy sign;
    sign.usage = crypto::kUsageSign;
    attest_key = svc.import_ecdsa(part, t.attest_secret, sign);
    KeyPolicy protected_mac;
    protected_mac.usage = crypto::kUsageMac;
    protected_mac.boot_protected = true;
    secoc_key = svc.import_mac(part, block_of(0x51), protected_mac);
    svc.seal();

    BootChainConfig cfg;
    cfg.bootloader = t.bootloader;
    cfg.rom_anchor = crypto::sha256(t.bootloader);
    cfg.recovery_image = FirmwareImage{"limp", 1, Bytes(256, 0xEE)};
    chain = std::make_unique<BootChain>(she, flash, svc, &kv, std::move(cfg));
    chain->set_attestation_key(part, attest_key);
  }

  crypto::EcdsaPublicKey attest_pub() const {
    crypto::EcdsaPublicKey pub;
    svc.export_public(attest_key, &pub);
    return pub;
  }

  bool secoc_usable() {
    crypto::Block tag;
    return svc.mac(part, secoc_key, util::from_string("probe"), &tag) ==
           ServiceStatus::kOk;
  }
};

// --- Part A: exhaustive shared-port cut sweep --------------------------------

struct SweepRow {
  std::int64_t cut_op = -1;
  std::string phase;       // step the cut interrupted
  std::string mode;        // boot mode right after recovery
  bool measured = false;
  bool keys = false;
  std::string kv_state;    // "all" | "none" after recovery (atomicity)
  bool converged = false;  // retried push+install reached v2 normal boot
  bool attested = false;
  double recovery_boot_us = 0.0;
  int violations = 0;
  bool cut = false;
};

SweepRow run_cut(std::int64_t k, std::uint64_t seed, const TrustAnchors& t) {
  Scheduler sched;
  FaultPlan plan(sched, seed);
  FaultSpec spec;
  spec.target = "vecu.power";
  spec.kind = FaultKind::kPowerLoss;
  spec.probability = 0.0;  // purely scripted: exact write-op index
  spec.page_index = k;
  plan.window(SimTime::zero(), SimTime::from_s(3600), spec);
  sched.run_until(SimTime::from_ms(1));

  Vehicle v(t, 0xA5);
  // ONE power rail: kv record appends and flash page/header writes share the
  // same write-op counter, so a single cut index sweeps the whole path.
  sim::FaultPort* rail = &plan.port("vecu.power");
  v.kv.set_fault_port(rail);
  v.flash.set_fault_port(rail);

  SweepRow row;
  row.cut_op = k;
  const SimTime t0 = SimTime::from_s(1);
  const SimTime confirm = SimTime::from_s(30);

  // The campaign's transactional config push: the v2 image signature plus
  // campaign parameters land atomically or not at all.
  KvTransaction push;
  push.put(ecu::boot_sig_key(t.v2.digest()), t.sig_v2);
  push.put("campaign.wave", Bytes{2});
  push.put("campaign.deadline", Bytes{0x07});

  const auto down = [&] { return v.kv.lost_power() || v.flash.lost_power(); };
  bool cut = false;
  if (!v.kv.commit(push)) {
    cut = true;
    row.phase = "kv_push";
  }
  if (!cut && !v.flash.stage(t.v2)) {
    cut = true;
    row.phase = "stage";
  }
  if (!cut && !v.flash.activate(t0, confirm)) {
    cut = true;
    row.phase = "activate";
  }
  if (!cut) {
    v.flash.commit();
    if (down()) {
      cut = true;
      row.phase = "commit";
    }
  }
  row.cut = cut;
  if (!cut) row.phase = "complete";

  // Reboot through the measured chain (this IS the recovery pass: it mounts
  // the kvstore and runs flash boot-time recovery inside).
  const SimTime t1 = t0 + SimTime::from_s(5);
  const BootChain::Report rep = v.chain->run(t1);
  row.mode = ecu::boot_mode_name(rep.mode);
  row.measured = rep.measured_ok;
  row.keys = rep.keys_unlocked;
  row.recovery_boot_us = rep.boot_us;

  // Invariant: never bricked, never hung, never limped to recovery — both
  // A/B images are verifiable, so every single cut must still yield a
  // normal or fallback measured boot.
  if (rep.hung || rep.mode == BootMode::kNone ||
      rep.mode == BootMode::kRecovery || !rep.flash.bootable) {
    ++row.violations;
  }
  if (!rep.measured_ok) ++row.violations;
  // Invariant: keys unlock IFF the measurement passed (here: they must be
  // unlocked, and the boot-protected key must actually work).
  if (rep.keys_unlocked != rep.measured_ok) ++row.violations;
  if (rep.keys_unlocked != v.secoc_usable()) ++row.violations;

  // Invariant: kv atomicity — all three pushed keys or none of them.
  const int present =
      (v.kv.contains(ecu::boot_sig_key(t.v2.digest())) ? 1 : 0) +
      (v.kv.contains("campaign.wave") ? 1 : 0) +
      (v.kv.contains("campaign.deadline") ? 1 : 0);
  row.kv_state = present == 3 ? "all" : (present == 0 ? "none" : "TORN");
  if (present != 0 && present != 3) ++row.violations;

  // The campaign retries: re-push + re-install (no further cuts scripted —
  // the exact-index port fires once), then the final boot must be a normal
  // measured boot of v2.
  if (present == 0 && !v.kv.commit(push)) ++row.violations;
  const FirmwareImage* active = v.flash.active();
  if (active && active->version == t.v2.version) {
    if (v.flash.confirm_pending()) v.flash.commit();
  } else if (!v.flash.stage(t.v2) || !v.flash.activate(t1, confirm)) {
    ++row.violations;
  } else {
    v.flash.commit();
  }
  const BootChain::Report fin = v.chain->run(t1 + SimTime::from_s(5));
  active = v.flash.active();
  row.converged = fin.mode == BootMode::kNormal && fin.measured_ok &&
                  fin.keys_unlocked && active &&
                  active->version == t.v2.version;
  if (!row.converged) ++row.violations;

  // Final attestation round-trips and verifies against the device key.
  const Bytes nonce = util::from_string("e23-nonce");
  const auto ev = v.chain->attest(nonce);
  if (ev) {
    const auto back = AttestationEvidence::parse(ev->serialize());
    row.attested =
        back.has_value() && verify_evidence(*back, v.attest_pub(), nonce);
  }
  if (!row.attested) ++row.violations;
  return row;
}

// --- Part B: measurement gate + boot-time budget -----------------------------

int run_measurement_gate(std::uint64_t seed, std::string* summary) {
  TrustAnchors t(seed);
  Vehicle v(t, 0xB7);
  // Tamper with the stored BOOT_MAC: re-bootstrap over a different image.
  v.she.autonomous_bootstrap(patterned(512, 0x99));
  const BootChain::Report rep = v.chain->run();

  int violations = 0;
  // SHE semantics: the chain still boots the (signature-valid) app...
  if (rep.hung || rep.mode != BootMode::kNormal) ++violations;
  // ...but the measurement fails and boot-protected keys stay locked.
  if (rep.measured_ok || rep.keys_unlocked) ++violations;
  if (v.secoc_usable()) ++violations;  // the SecOC key must be dark
  if (v.svc.state() != CryptoService::State::kFailedBoot) ++violations;
  // The unprotected attestation key still reports the failure, verifiably.
  const Bytes nonce = util::from_string("gate-nonce");
  const auto ev = v.chain->attest(nonce);
  const bool attested = ev && !ev->measured_ok &&
                        verify_evidence(*ev, v.attest_pub(), nonce);
  if (!attested) ++violations;
  *summary = std::string("mode=") + ecu::boot_mode_name(rep.mode) +
             " measured=" + (rep.measured_ok ? "true" : "false") +
             " keys_locked=" + (v.secoc_usable() ? "NO" : "yes") +
             " attested_failure=" + (attested ? "yes" : "NO");
  return violations;
}

struct BudgetRow {
  std::size_t app_kib = 0;
  double boot_us = 0.0;
  double flash_scan_us = 0.0;
  double kv_scan_us = 0.0;
};

BudgetRow run_budget(std::uint64_t seed, std::size_t app_pages) {
  TrustAnchors t(seed);
  t.v1 = FirmwareImage{"vecu-fw", 1, patterned(app_pages * Flash::kPageSize,
                                               0x11)};
  t.sig_v1 = t.oem.sign_digest(t.v1.digest()).to_bytes();
  Vehicle v(t, 0xC3);
  const BootChain::Report rep = v.chain->run();
  BudgetRow row;
  row.app_kib = app_pages * Flash::kPageSize / 1024;
  row.boot_us = rep.boot_us;
  row.flash_scan_us = rep.flash.scan_us;
  row.kv_scan_us = rep.kv.scan_us;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--seed N] [--smoke]\n", argv[0]);
      return 255;
    }
  }

  std::printf("E23: measured boot chain + power-cut-survivable provisioning\n");
  std::printf("(seed %llu; invariants: never bricked, keys unlock iff "
              "measured, kv transactions atomic)\n\n",
              static_cast<unsigned long long>(seed));

  int violations = 0;
  const TrustAnchors trust(seed);

  // Part A — exhaustive shared-rail power-cut sweep.
  benchutil::Table sweep_table({"cut_op", "phase", "mode", "measured", "keys",
                                "kv", "converged", "attested", "boot_us",
                                "violations"});
  std::vector<SweepRow> sweep;
  for (std::int64_t k = 0;; ++k) {
    SweepRow row = run_cut(k, seed, trust);
    const bool done = !row.cut;  // this k is past the last write op
    if (done) row.cut_op = -1;
    sweep.push_back(row);
    violations += row.violations;
    sweep_table.add_row({done ? "none" : std::to_string(row.cut_op), row.phase,
                         row.mode, row.measured ? "yes" : "NO",
                         row.keys ? "unlocked" : "LOCKED", row.kv_state,
                         row.converged ? "yes" : "NO",
                         row.attested ? "yes" : "NO",
                         benchutil::fmt("%.1f", row.recovery_boot_us),
                         std::to_string(row.violations)});
    if (done) break;
  }
  std::printf("Part A: exhaustive power-cut sweep (%zu write ops: kv push + "
              "stage + activate + commit)\n",
              sweep.size() - 1);
  sweep_table.print();
  std::printf("\n");

  // Part B — measurement gate + boot-time budget.
  std::string gate;
  violations += run_measurement_gate(seed, &gate);
  std::printf("Part B: measurement gate (tampered BOOT_MAC): %s\n\n",
              gate.c_str());

  const std::vector<std::size_t> page_counts =
      smoke ? std::vector<std::size_t>{2, 8} : std::vector<std::size_t>{2, 8,
                                                                        32, 64};
  benchutil::Table budget_table(
      {"app_kib", "boot_us", "flash_scan_us", "kv_scan_us"});
  std::vector<BudgetRow> budget;
  for (const std::size_t pages : page_counts) {
    budget.push_back(run_budget(seed, pages));
    const BudgetRow& r = budget.back();
    budget_table.add_row({benchutil::fmt_u(r.app_kib),
                          benchutil::fmt("%.1f", r.boot_us),
                          benchutil::fmt("%.1f", r.flash_scan_us),
                          benchutil::fmt("%.1f", r.kv_scan_us)});
    if (budget.size() > 1 &&
        budget[budget.size() - 2].boot_us >= r.boot_us) {
      ++violations;  // boot time must grow with image size (scan term)
    }
  }
  std::printf("boot-time budget vs image size\n");
  budget_table.print();
  std::printf("\n");

  // Part C — fleet attestation verify.
  const std::size_t fleet = smoke ? 24 : 192;
  std::vector<Bytes> blobs;
  std::vector<crypto::EcdsaPublicKey> pubs;
  std::vector<Bytes> nonces;
  blobs.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i) {
    Vehicle v(trust, static_cast<std::uint8_t>(i + 1));
    v.chain->run();
    nonces.push_back(util::from_string("fleet-" + std::to_string(i)));
    const auto ev = v.chain->attest(nonces.back());
    if (!ev) {
      ++violations;
      continue;
    }
    blobs.push_back(ev->serialize());
    pubs.push_back(v.attest_pub());
  }
  std::size_t verified = 0;
  crypto::VerifyEngine engine;
  const auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < blobs.size(); ++i) {
    const auto ev = AttestationEvidence::parse(blobs[i]);
    if (ev && verify_evidence(*ev, pubs[i], nonces[i], &engine)) ++verified;
  }
  const auto wall1 = std::chrono::steady_clock::now();
  if (verified != fleet) ++violations;

  // Forgeries: replayed nonce, flipped verdict, truncated blob.
  std::size_t rejected = 0;
  if (!blobs.empty()) {
    const auto ev = AttestationEvidence::parse(blobs[0]);
    if (!verify_evidence(*ev, pubs[0], util::from_string("stale"), &engine)) {
      ++rejected;
    }
    AttestationEvidence forged = *ev;
    forged.measured_ok = !forged.measured_ok;
    if (!verify_evidence(forged, pubs[0], nonces[0], &engine)) ++rejected;
    if (!AttestationEvidence::parse(
             util::BytesView(blobs[0].data(), blobs[0].size() - 1))) {
      ++rejected;
    }
  }
  if (rejected != 3) ++violations;

  std::printf("Part C: fleet attestation: fleet=%zu verified=%zu "
              "forgeries_rejected=%zu/3 evidence_bytes=%zu\n",
              fleet, verified, rejected,
              blobs.empty() ? 0 : blobs[0].size());
  if (smoke) {
    std::printf("  (verify throughput suppressed in smoke mode)\n\n");
  } else {
    const double secs =
        std::chrono::duration<double>(wall1 - wall0).count();
    std::printf("  verify throughput: %.0f evidence/s (wall-clock)\n\n",
                secs > 0 ? static_cast<double>(verified) / secs : 0.0);
  }

  // Deterministic JSON report (chaos-smoke CI diffs two seeded runs).
  std::string json = "{\"experiment\":\"e23_boot_attest\",\"seed\":" +
                     std::to_string(seed) + ",\"sweep\":[";
  char buf[320];
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"cut_op\":%lld,\"phase\":\"%s\",\"mode\":\"%s\","
                  "\"measured\":%s,\"keys\":%s,\"kv\":\"%s\","
                  "\"converged\":%s,\"attested\":%s,\"boot_us\":%.1f,"
                  "\"violations\":%d}",
                  i ? "," : "", static_cast<long long>(r.cut_op),
                  r.phase.c_str(), r.mode.c_str(),
                  r.measured ? "true" : "false", r.keys ? "true" : "false",
                  r.kv_state.c_str(), r.converged ? "true" : "false",
                  r.attested ? "true" : "false", r.recovery_boot_us,
                  r.violations);
    json += buf;
  }
  json += "],\"budget\":[";
  for (std::size_t i = 0; i < budget.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"app_kib\":%zu,\"boot_us\":%.1f,\"flash_scan_us\":%.1f,"
                  "\"kv_scan_us\":%.1f}",
                  i ? "," : "", budget[i].app_kib, budget[i].boot_us,
                  budget[i].flash_scan_us, budget[i].kv_scan_us);
    json += buf;
  }
  std::snprintf(buf, sizeof buf,
                "],\"attest\":{\"fleet\":%zu,\"verified\":%zu,"
                "\"forgeries_rejected\":%zu},\"violations\":%d}",
                fleet, verified, rejected, violations);
  json += buf;
  std::printf("%s\n", json.c_str());

  return violations > 255 ? 255 : violations;
}
