// Experiment E8 — access security (paper §4.3).
//
// Part A: PKES relay-attack success vs the distance-bounding RTT budget,
// across relay link qualities (the Francillon et al. attack envelope).
// Part B: DST transponder exhaustive key search cost vs key length —
// measured on reduced key spaces and extrapolated to 2^40 (the Bono et al.
// result that 40-bit proprietary ciphers are crackable).

#include <chrono>
#include <cmath>
#include <cstdio>

#include "access/immobilizer.hpp"
#include "access/pkes.hpp"
#include "bench_util.hpp"

using namespace aseck;
using namespace aseck::access;

namespace {
crypto::Block key_of(std::uint8_t b) {
  crypto::Block k;
  k.fill(b);
  return k;
}
}  // namespace

int main() {
  std::printf("E8 part A: PKES relay success vs distance-bounding budget\n");
  std::printf("(fob at 40 m via relay; fob processing 300 us)\n\n");

  benchutil::Table pkes_table({"rtt_limit_us", "legit_unlock_%",
                               "relay_cable_20us", "relay_rf_5us",
                               "relay_ip_2000us"});
  const struct {
    const char* name;
    double link_us;
  } relays[] = {{"cable", 20.0}, {"rf", 5.0}, {"ip", 2000.0}};

  for (const double limit : {0.0, 305.0, 310.0, 320.0, 360.0, 1000.0, 10000.0}) {
    // Legitimate success rate over jittered attempts.
    PkesCar car(key_of(0x77), PkesConfig{}, 7);
    car.set_rtt_limit(limit);
    KeyFob fob(key_of(0x77));
    int legit_ok = 0;
    for (int i = 0; i < 200; ++i) {
      if (car.try_unlock(fob, 1.0).unlocked) ++legit_ok;
    }
    std::vector<std::string> row{
        limit == 0 ? "none" : benchutil::fmt("%.0f", limit),
        benchutil::fmt("%.1f", legit_ok / 2.0)};
    for (const auto& r : relays) {
      RelayAttacker relay;
      relay.active = true;
      relay.link_latency_us = r.link_us;
      int attacks_ok = 0;
      for (int i = 0; i < 200; ++i) {
        if (car.try_unlock(fob, 40.0, relay).unlocked) ++attacks_ok;
      }
      row.push_back(benchutil::fmt("%.1f%%", attacks_ok / 2.0));
    }
    pkes_table.add_row(row);
  }
  pkes_table.print();

  std::printf("\nE8 part B: DST key cracking (exhaustive search)\n\n");
  benchutil::Table crack_table({"key_bits", "keys_tried", "wallclock_s",
                                "extrapolated_2^40"});
  const std::uint64_t true_key = 0x00a5f17c33ULL & crypto::Dst40::kKeyMask;
  Transponder victim(true_key);
  util::Rng rng(3);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> pairs;
  for (int i = 0; i < 2; ++i) {
    const std::uint64_t c = rng.next_u64() & crypto::Dst40::kChallengeMask;
    pairs.emplace_back(c, victim.respond(c));
  }
  double last_rate = 0;
  for (const unsigned bits : {16u, 20u, 24u}) {
    const auto t0 = std::chrono::steady_clock::now();
    const CrackResult r = crack_transponder(pairs, true_key, bits);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    last_rate = static_cast<double>(r.keys_tried) / std::max(secs, 1e-9);
    const double full_space_s = std::pow(2.0, 40) / last_rate;
    crack_table.add_row({std::to_string(bits),
                         benchutil::fmt_u(r.keys_tried),
                         benchutil::fmt("%.3f", secs),
                         benchutil::fmt("%.1f h (1 core)", full_space_s / 3600)});
    if (!r.found) std::printf("WARNING: crack failed at %u bits\n", bits);
  }
  crack_table.print();
  std::printf(
      "\nReading: with no RTT bound every relay succeeds; a ~310 us budget\n"
      "(fob latency + margin) kills all relay variants while keeping the\n"
      "legitimate unlock rate high — the distance-bounding countermeasure.\n"
      "A 40-bit keyspace falls to hours of single-core search (and minutes\n"
      "on the FPGA farm of the original attack): key length, not secrecy of\n"
      "the cipher, is the broken assumption.\n");
  return 0;
}
