#pragma once
// Shared helpers for the experiment benches (bench_e1..e12): fixed-width
// table printing so every bench emits a reproducible, diff-able report.

#include <cstdio>
#include <string>
#include <vector>

namespace benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string();
        std::printf("%-*s  ", static_cast<int>(width[c]), s.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}
inline std::string fmt_u(unsigned long long v) { return std::to_string(v); }

}  // namespace benchutil
