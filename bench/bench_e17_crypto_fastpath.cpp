// Experiment E17 — P-256 verification fast path and verify-result caching
// (paper §4.2: V2X signature verification is the dominant per-message cost;
// §5: OTA clients re-verify identical metadata every poll cycle).
//
// Three measurements:
//   1. Raw verify throughput, Shamir 1-bit reference vs the comb/wNAF fast
//      path, over seeded random (key, digest, signature) triples. Every
//      verdict is cross-checked bit-for-bit; the process exit code is the
//      number of fast/slow disagreements (0 = equivalent).
//   2. VerifyEngine cache behavior under pseudonym churn: a receiver
//      re-validates each sender's pseudonym cert once per BSM until the
//      fleet rotates, swept over cache capacities. Hits/calls/evictions are
//      deterministic counters.
//   3. The E2 neighbor-saturation point re-derived from the measured
//      software verify cost (10 Hz BSM, single-core budget), alongside the
//      350 us HSM model E2 ships with.
//
// `--seed N` (default 42) fixes every random draw. `--smoke` shrinks the
// sweep AND suppresses every timing-derived number, so two smoke runs with
// the same seed emit byte-identical output (chaos-smoke CI diffs them).
//
// Since PR 9 the per-signature fast path measured here is also the batch
// pipeline's fallback: `ecdsa_verify_batch` (E22) resolves unhinted or
// bisection-isolated items through exactly this verifier, so E17's numbers
// are the floor the batch kernel amortizes against — see
// bench_e22_batch_verify for the batched measurement.

#include <algorithm>
#include <ctime>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/verify_engine.hpp"
#include "sim/telemetry.hpp"
#include "util/rng.hpp"

using namespace aseck;

namespace {

struct SignedDigest {
  crypto::EcdsaPrivateKey key;
  crypto::Digest digest{};
  crypto::EcdsaSignature sig;
};

crypto::EcdsaPrivateKey random_key(util::Rng& rng) {
  std::array<std::uint8_t, 32> secret{};
  for (auto& b : secret) b = static_cast<std::uint8_t>(rng.next_u32());
  secret[31] |= 1;  // never zero mod n
  return crypto::EcdsaPrivateKey::from_secret(
      util::BytesView(secret.data(), secret.size()));
}

std::vector<SignedDigest> make_corpus(std::size_t n, util::Rng& rng) {
  std::vector<SignedDigest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    crypto::EcdsaPrivateKey key = random_key(rng);
    crypto::Digest d;
    for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_u32());
    crypto::EcdsaSignature sig = key.sign_digest(d);
    if (i % 16 == 0) sig.s = crypto::U256::from_u64(rng.next_u64() | 1);
    out.push_back(SignedDigest{std::move(key), d, sig});
  }
  return out;
}

// Process CPU time, not wall clock: shared/oversubscribed runners inflate
// wall time by whatever factor the scheduler feels like that minute, while
// CPU time stays within a few percent run to run.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  util::Rng rng(seed);

  std::printf("E17: P-256 verification fast path + verify caching\n");
  std::printf("(seed %llu%s)\n\n", static_cast<unsigned long long>(seed),
              smoke ? ", smoke" : "");

  // -------------------------------------------------------------- part 1
  // Slow (Shamir reference) vs fast (comb + wNAF) verify, verdict-checked.
  const std::size_t corpus_n = smoke ? 64 : 512;
  const std::vector<SignedDigest> corpus = make_corpus(corpus_n, rng);
  crypto::p256::init_fixed_base_tables();  // exclude table build from timing

  // Alternate slow/fast passes and keep the per-pass minimum: even process
  // CPU time drifts by tens of percent on a steal-heavy host, and
  // interleaving keeps a transient slowdown from landing on only one side
  // of the ratio.
  std::vector<bool> slow_verdicts(corpus.size()), fast_verdicts(corpus.size());
  const int reps = smoke ? 1 : 5;
  double slow_s = 1e300, fast_s = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    const double t_slow = cpu_seconds();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      slow_verdicts[i] = crypto::ecdsa_verify_digest_slow(
          corpus[i].key.public_key(), corpus[i].digest, corpus[i].sig);
    }
    slow_s = std::min(slow_s, cpu_seconds() - t_slow);
    const double t_fast = cpu_seconds();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      fast_verdicts[i] = crypto::ecdsa_verify_digest(
          corpus[i].key.public_key(), corpus[i].digest, corpus[i].sig);
    }
    fast_s = std::min(fast_s, cpu_seconds() - t_fast);
  }

  std::size_t mismatches = 0;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (slow_verdicts[i] != fast_verdicts[i]) ++mismatches;
    if (fast_verdicts[i]) ++valid;
  }

  std::printf("[1] verify throughput, %zu signatures (%zu valid, %zu corrupted)\n",
              corpus.size(), valid, corpus.size() - valid);
  std::printf("    verdict mismatches (fast vs slow): %zu\n", mismatches);
  if (!smoke) {
    // The seed's measured verify cost (EXPERIMENTS.md Calibration: "ECDSA
    // verify 0.48 ms") — wall clock on a loaded runner, so only a sanity
    // anchor. The in-binary shamir row reproduces the seed's exact kernel
    // (same formulas, same per-op 512-bit reduction round trip) under the
    // same CPU-time clock as the fast row, so the vs-shamir ratio is the
    // honest "what did this PR buy" number.
    const double seed_us = 480.0;
    const double slow_us = slow_s * 1e6 / static_cast<double>(corpus.size());
    const double fast_us = fast_s * 1e6 / static_cast<double>(corpus.size());
    benchutil::Table t1({"path", "total_ms", "per_verify_us", "verifies_per_s"});
    t1.add_row({"seed_calibration", "-", benchutil::fmt("%.1f", seed_us),
                benchutil::fmt("%.0f", 1e6 / seed_us)});
    t1.add_row({"shamir_1bit", benchutil::fmt("%.1f", slow_s * 1e3),
                benchutil::fmt("%.1f", slow_us),
                benchutil::fmt("%.0f", corpus.size() / slow_s)});
    t1.add_row({"wnaf_fast", benchutil::fmt("%.1f", fast_s * 1e3),
                benchutil::fmt("%.1f", fast_us),
                benchutil::fmt("%.0f", corpus.size() / fast_s)});
    t1.print();
    std::printf("    speedup vs in-binary shamir: %.2fx\n", slow_s / fast_s);
    std::printf("    speedup vs seed calibration: %.2fx\n", seed_us / fast_us);
  }
  std::printf("\n");

  // -------------------------------------------------------------- part 2
  // VerifyEngine cache under pseudonym churn. `fleet` senders each sign one
  // cert-like digest per rotation epoch; the receiver validates the current
  // cert of a sender for every BSM it hears from it (bsm_per_epoch per
  // epoch). Distinct certs per epoch stress capacity; repeats hit.
  const std::size_t fleet = smoke ? 8 : 48;
  const std::size_t epochs = smoke ? 2 : 4;
  const std::size_t bsm_per_epoch = smoke ? 4 : 10;
  std::vector<crypto::EcdsaPrivateKey> keys;
  for (std::size_t v = 0; v < fleet; ++v) keys.push_back(random_key(rng));

  std::printf("[2] verify cache under pseudonym churn "
              "(%zu vehicles, %zu epochs, %zu BSM/epoch)\n",
              fleet, epochs, bsm_per_epoch);
  benchutil::Table t2({"cache_cap", "calls", "cache_hits", "hit_pct",
                       "evictions", "resident"});
  for (const std::size_t cap : {std::size_t{8}, std::size_t{32},
                                std::size_t{4096}}) {
    crypto::VerifyEngine eng;
    eng.set_cache_capacity(cap);
    for (std::size_t e = 0; e < epochs; ++e) {
      // Each vehicle mints a fresh pseudonym cert digest this epoch.
      std::vector<SignedDigest> certs;
      certs.reserve(fleet);
      for (std::size_t v = 0; v < fleet; ++v) {
        crypto::Digest d;
        for (auto& b : d) b = static_cast<std::uint8_t>(rng.next_u32());
        certs.push_back(SignedDigest{keys[v], d, keys[v].sign_digest(d)});
      }
      for (std::size_t r = 0; r < bsm_per_epoch; ++r) {
        for (std::size_t v = 0; v < fleet; ++v) {
          (void)eng.verify_digest(certs[v].key.public_key(), certs[v].digest,
                                  certs[v].sig);
        }
      }
    }
    const double hit_pct =
        eng.calls() ? 100.0 * static_cast<double>(eng.cache_hits()) /
                          static_cast<double>(eng.calls())
                    : 0.0;
    t2.add_row({benchutil::fmt_u(cap), benchutil::fmt_u(eng.calls()),
                benchutil::fmt_u(eng.cache_hits()),
                benchutil::fmt("%.1f", hit_pct),
                benchutil::fmt_u(eng.evictions()),
                benchutil::fmt_u(eng.cache_size())});
  }
  t2.print();
  std::printf("\n");

  // -------------------------------------------------------------- part 3
  // E2 neighbor saturation: at 10 Hz BSM a single verifying core has
  // 100000 us of budget per neighbor-second; saturation = 1e5 / verify_us.
  std::printf("[3] E2 neighbor-saturation point (10 Hz BSM, one core)\n");
  if (smoke) {
    std::printf("    (timing-derived rows skipped in smoke mode)\n");
  } else {
    const double slow_us = slow_s * 1e6 / corpus.size();
    const double fast_us = fast_s * 1e6 / corpus.size();
    benchutil::Table t3({"verify_model", "per_verify_us", "max_neighbors"});
    t3.add_row({"hsm_model_e2", benchutil::fmt("%.0f", 350.0),
                benchutil::fmt("%.0f", 1e5 / 350.0)});
    t3.add_row({"sw_shamir_1bit", benchutil::fmt("%.1f", slow_us),
                benchutil::fmt("%.0f", 1e5 / slow_us)});
    t3.add_row({"sw_wnaf_fast", benchutil::fmt("%.1f", fast_us),
                benchutil::fmt("%.0f", 1e5 / fast_us)});
    t3.print();
  }

  return static_cast<int>(mismatches);
}
