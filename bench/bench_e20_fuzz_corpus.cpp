// Experiment E20 — deterministic fuzzing campaigns + replayable attack
// corpus scored against the online defenses (paper §5/§7: the extensibility
// surfaces — diagnostics, OTA metadata, service-oriented protocols — are
// exactly the parsers an attacker reaches first).
//
// Phase A runs a fixed-seed coverage-guided campaign per protocol target
// TWICE and diffs the full result JSON: any mismatch breaks the
// reproducibility contract (util::Rng::for_stream per iteration) and counts
// as a violation, as does any surviving oracle finding on the hardened
// parsers.
//
// Phase B replays the frozen attack corpus (attacks::ScenarioCorpus) through
// a CAN bus watched by a trained IDS ensemble and bridged by a
// SecurityGateway with a whitelist routing policy, reporting per-attack-class
// detection and block rates. The replay runs twice; differing TraceBus
// timeline digests count as a violation.
//
// Flags: --seed U  --iters N  --smoke (small preset)
// Exit code = number of violations (0 = fully deterministic, no findings).

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "attacks/corpus.hpp"
#include "bench_util.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/targets.hpp"
#include "gateway/gateway.hpp"
#include "ids/detectors.hpp"
#include "ivn/can.hpp"
#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "util/rng.hpp"

using namespace aseck;
using util::Bytes;

namespace {

// --- Phase A: fixed-seed campaigns, double-run determinism ------------------

struct PhaseAResult {
  std::size_t findings = 0;
  std::size_t mismatches = 0;
};

PhaseAResult run_campaigns(std::uint64_t seed, std::uint64_t iterations) {
  std::printf("Phase A: fixed-seed campaigns (seed=%" PRIu64
              ", iters=%" PRIu64 ", run twice)\n\n",
              seed, iterations);
  benchutil::Table table({"target", "execs", "accepted", "corpus", "edges",
                          "findings", "coverage_digest", "deterministic"});
  PhaseAResult out;
  fuzz::Fuzzer::Config cfg;
  cfg.seed = seed;
  cfg.iterations = iterations;
  for (const fuzz::FuzzTarget& t : fuzz::builtin_targets()) {
    const fuzz::CampaignResult r1 = fuzz::Fuzzer(cfg).run(t);
    const fuzz::CampaignResult r2 = fuzz::Fuzzer(cfg).run(t);
    const bool same = r1.to_json() == r2.to_json();
    if (!same) ++out.mismatches;
    out.findings += r1.findings.size();
    char digest[32];
    std::snprintf(digest, sizeof digest, "%016" PRIx64, r1.coverage_digest);
    table.add_row({t.name, benchutil::fmt_u(r1.execs),
                   benchutil::fmt_u(r1.accepted),
                   benchutil::fmt_u(r1.corpus_size),
                   benchutil::fmt_u(r1.edges),
                   benchutil::fmt_u(r1.findings.size()), digest,
                   same ? "yes" : "NO"});
    for (const fuzz::Finding& f : r1.findings) {
      std::printf("  FINDING [%s] iter=%" PRIu64 " %s minimized=%s\n",
                  t.name.c_str(), f.iteration, f.violation.c_str(),
                  util::to_hex(f.minimized).c_str());
    }
  }
  table.print();
  std::printf("\n");
  return out;
}

// --- Phase B: corpus replay vs IDS + gateway --------------------------------

// Benign periodic streams the defenses are trained/configured for.
struct Stream {
  std::uint32_t id;
  std::uint64_t period_ms;
  std::uint8_t mode_byte;
};
const std::vector<Stream> kStreams{
    {0x0F0, 10, 0x10}, {0x110, 20, 0x20}, {0x300, 100, 0x02}};
constexpr std::uint32_t kDiagId = 0x7E0;  // whitelisted diagnostic carrier

ivn::CanFrame benign_frame(const Stream& s, util::Rng& rng) {
  ivn::CanFrame f;
  f.id = s.id;
  f.data = Bytes(8, 0);
  f.data[0] = s.mode_byte;
  f.data[1] = static_cast<std::uint8_t>(40 + rng.uniform(20));
  return f;
}

/// Observer on the attack-facing bus: labels frames by carrier id and feeds
/// the IDS ensemble.
class IdsTap : public ivn::CanNode {
 public:
  IdsTap(ids::IdsEnsemble& ens, std::set<std::uint32_t> benign_ids)
      : ivn::CanNode("ids-tap"), ens_(ens), benign_ids_(std::move(benign_ids)) {}

  void on_frame(const ivn::CanFrame& f, sim::SimTime at) override {
    const bool is_attack = benign_ids_.count(f.id) == 0;
    const auto v = ens_.observe_labeled(f, at, is_attack);
    if (is_attack) {
      ++attack_frames_;
      if (v.alert) ++attack_alerts_;
    }
  }

  std::uint64_t attack_frames() const { return attack_frames_; }
  std::uint64_t attack_alerts() const { return attack_alerts_; }

 private:
  ids::IdsEnsemble& ens_;
  std::set<std::uint32_t> benign_ids_;
  std::uint64_t attack_frames_ = 0;
  std::uint64_t attack_alerts_ = 0;
};

/// Counts non-benign frames that made it through the gateway.
class ForwardTap : public ivn::CanNode {
 public:
  explicit ForwardTap(std::set<std::uint32_t> benign_ids)
      : ivn::CanNode("fwd-tap"), benign_ids_(std::move(benign_ids)) {}
  void on_frame(const ivn::CanFrame& f, sim::SimTime) override {
    if (benign_ids_.count(f.id) == 0) ++attack_forwarded_;
  }
  std::uint64_t attack_forwarded() const { return attack_forwarded_; }

 private:
  std::set<std::uint32_t> benign_ids_;
  std::uint64_t attack_forwarded_ = 0;
};

ids::IdsEnsemble trained_ensemble(std::uint64_t seed) {
  util::Rng rng(seed);
  ids::IdsEnsemble ens = ids::make_default_ensemble();
  std::vector<std::pair<sim::SimTime, ivn::CanFrame>> train;
  for (const Stream& s : kStreams) {
    std::uint64_t t_us = rng.uniform(1000);
    while (t_us < 60e6) {
      train.emplace_back(sim::SimTime::from_us(t_us), benign_frame(s, rng));
      t_us += s.period_ms * 1000;
    }
  }
  std::sort(train.begin(), train.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [at, f] : train) ens.train(f, at);
  ens.finish_training();
  return ens;
}

struct ClassResult {
  std::size_t entries = 0;
  std::uint64_t attack_frames = 0;
  double ids_detection = 0;  // alerted fraction of attack frames on diag bus
  double gw_blocked = 0;     // fraction NOT forwarded to the body domain
  std::uint64_t digest = 0;  // TraceBus timeline digest of the replay
};

ClassResult replay_class(const attacks::ScenarioCorpus& corpus,
                         attacks::AttackClass cls, std::uint64_t seed) {
  sim::Scheduler sched;
  sim::Telemetry tel;
  ivn::CanBus diag(sched, "diag", 500000);
  ivn::CanBus body(sched, "body", 500000);
  diag.bind_telemetry(tel);
  body.bind_telemetry(tel);

  // Whitelist gateway: benign streams are safety-critical routes; the
  // diagnostic carrier is routed but rate-limited. Everything else has no
  // route and is blocked.
  gateway::SecurityGateway gw(sched, "gw0");
  gw.add_domain("diag", &diag);
  gw.add_domain("body", &body);
  for (const Stream& s : kStreams) gw.add_route(s.id, "diag", "body", true);
  gw.add_route(kDiagId, "diag", "body");
  gateway::FirewallRule dlc_rule;
  dlc_rule.from_domain = "diag";
  dlc_rule.id_min = dlc_rule.id_max = kDiagId;
  dlc_rule.allow = true;
  dlc_rule.max_dlc = 8;
  gw.add_rule(dlc_rule);
  gw.set_rate_limit("diag", kDiagId, {/*frames_per_sec=*/200, /*burst=*/4});

  std::set<std::uint32_t> benign_ids;
  for (const Stream& s : kStreams) benign_ids.insert(s.id);

  ids::IdsEnsemble ens = trained_ensemble(seed);
  ens.bind_telemetry(tel);
  IdsTap ids_tap(ens, benign_ids);
  ForwardTap fwd_tap(benign_ids);
  diag.attach(&ids_tap);
  body.attach(&fwd_tap);

  // Benign background traffic on the diag bus for the replay horizon.
  util::Rng rng(seed ^ 0xBE9197);
  attacks::CorpusReplayer rep(sched, diag, "corpus");
  rep.bind_telemetry(tel);
  sim::SimTime end = sim::SimTime::from_ms(50);
  ClassResult r;
  for (const attacks::ScenarioEntry* e : corpus.by_class(cls)) {
    ++r.entries;
    end = rep.schedule(*e, end) + sim::SimTime::from_ms(5);
  }
  const std::uint64_t horizon_us = end.ns / 1000 + 20'000;
  class BenignSender : public ivn::CanNode {
   public:
    using ivn::CanNode::CanNode;
    void on_frame(const ivn::CanFrame&, sim::SimTime) override {}
  } sender("benign");
  diag.attach(&sender);
  for (const Stream& s : kStreams) {
    for (std::uint64_t t_us = 1000 + s.id; t_us < horizon_us;
         t_us += s.period_ms * 1000) {
      const ivn::CanFrame f = benign_frame(s, rng);
      sched.schedule_at(sim::SimTime::from_us(t_us),
                        [&diag, &sender, f] { diag.send(&sender, f); });
    }
  }

  sched.run_until(sim::SimTime::from_us(horizon_us));
  r.attack_frames = ids_tap.attack_frames();
  r.ids_detection =
      r.attack_frames == 0
          ? 0
          : static_cast<double>(ids_tap.attack_alerts()) /
                static_cast<double>(r.attack_frames);
  r.gw_blocked = r.attack_frames == 0
                     ? 0
                     : 1.0 - static_cast<double>(fwd_tap.attack_forwarded()) /
                                 static_cast<double>(r.attack_frames);
  r.digest = attacks::timeline_digest(*tel.bus);
  return r;
}

std::size_t run_replay(std::uint64_t seed) {
  std::printf("Phase B: corpus replay vs IDS ensemble + whitelist gateway\n");
  std::printf("(benign streams 0x0F0/0x110/0x300 routed, diag 0x7E0 "
              "rate-limited, replay run twice)\n\n");
  const attacks::ScenarioCorpus corpus = attacks::ScenarioCorpus::builtin();
  benchutil::Table table({"attack_class", "entries", "attack_frames",
                          "ids_detection", "gw_blocked", "deterministic"});
  std::size_t violations = 0;
  std::size_t classes = 0;
  for (attacks::AttackClass cls : corpus.classes()) {
    const ClassResult a = replay_class(corpus, cls, seed);
    const ClassResult b = replay_class(corpus, cls, seed);
    const bool same = a.digest == b.digest &&
                      a.attack_frames == b.attack_frames;
    if (!same) ++violations;
    ++classes;
    table.add_row({attacks::attack_class_name(cls),
                   benchutil::fmt_u(a.entries),
                   benchutil::fmt_u(a.attack_frames),
                   benchutil::fmt("%.2f", a.ids_detection),
                   benchutil::fmt("%.2f", a.gw_blocked),
                   same ? "yes" : "NO"});
  }
  table.print();
  std::printf("\n");
  if (classes < 5) {
    std::printf("VIOLATION: only %zu attack classes scored (need >= 5)\n",
                classes);
    ++violations;
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::uint64_t iters = 4000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      iters = 500;
    } else {
      std::fprintf(stderr, "usage: %s [--seed U] [--iters N] [--smoke]\n",
                   argv[0]);
      return 255;
    }
  }

  std::printf("E20: deterministic fuzzing + replayable attack corpus\n\n");
  const PhaseAResult a = run_campaigns(seed, iters);
  std::size_t violations = a.findings + a.mismatches;
  if (a.mismatches > 0) {
    std::printf("VIOLATION: %zu campaign(s) not bit-reproducible\n",
                a.mismatches);
  }
  if (a.findings > 0) {
    std::printf("VIOLATION: %zu surviving oracle finding(s)\n", a.findings);
  }
  violations += run_replay(seed);

  std::printf("violations=%zu\n", violations);
  return static_cast<int>(violations);
}
