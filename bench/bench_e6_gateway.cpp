// Experiment E6 — gateway containment and overhead (paper §7 "Secure
// Gateway").
//
// Part A: an attacker on the infotainment domain injects brake commands;
// we compare architectures: flat bus (no gateway), gateway with routing
// only, + firewall, + rate limit, + IDS-triggered quarantine.
// Part B: the latency cost of the gateway on legitimate cross-domain
// diagnostics traffic.

#include <cstdio>

#include "attacks/can_attacks.hpp"
#include "bench_util.hpp"
#include "ecu/ecu.hpp"
#include "gateway/gateway.hpp"
#include "ids/detectors.hpp"
#include "util/stats.hpp"

using namespace aseck;
using util::Bytes;

namespace {

crypto::Block key_of(std::uint8_t b) {
  crypto::Block k;
  k.fill(b);
  return k;
}

enum class Arch { kFlatBus, kRoutingOnly, kFirewall, kRateLimit, kQuarantine };
const char* arch_name(Arch a) {
  switch (a) {
    case Arch::kFlatBus: return "flat bus (no gateway)";
    case Arch::kRoutingOnly: return "gateway: routing only";
    case Arch::kFirewall: return "gateway + firewall";
    case Arch::kRateLimit: return "gateway + rate limit";
    case Arch::kQuarantine: return "gateway + IDS quarantine";
  }
  return "?";
}

struct Outcome {
  std::uint64_t malicious_delivered = 0;
  std::uint64_t legit_delivered = 0;
  double chassis_load = 0;
  std::uint64_t gw_forwarded = 0;   // from the shared metrics registry
  std::uint64_t gw_drops = 0;       // from the shared metrics registry
  std::string metrics_json;         // full registry snapshot
};

Outcome run(Arch arch) {
  sim::Scheduler sched;
  sim::Telemetry telemetry;  // one registry + trace bus for the whole vehicle
  telemetry.bus->set_capacity(4096);  // bounded: this run records ~10k events
  Outcome out;
  const bool flat = arch == Arch::kFlatBus;

  ivn::CanBus chassis(sched, "chassis", 500000);
  chassis.bind_telemetry(telemetry);
  std::unique_ptr<ivn::CanBus> infotainment;
  std::unique_ptr<gateway::SecurityGateway> gw;
  ivn::CanBus* attacker_bus = &chassis;

  if (!flat) {
    infotainment = std::make_unique<ivn::CanBus>(sched, "infotainment", 500000);
    infotainment->bind_telemetry(telemetry);
    attacker_bus = infotainment.get();
    gw = std::make_unique<gateway::SecurityGateway>(sched, "cgw");
    gw->bind_telemetry(telemetry);
    gw->add_domain("chassis", &chassis);
    gw->add_domain("infotainment", infotainment.get());
    // Legit route: media telltale 0x300; the attacker abuses it plus tries
    // the brake id 0x0F0 directly.
    gw->add_route(0x300, "infotainment", "chassis");
    gw->add_route(0x0F0, "infotainment", "chassis");  // mis-configured route
    if (arch == Arch::kFirewall || arch == Arch::kRateLimit ||
        arch == Arch::kQuarantine) {
      gateway::FirewallRule deny_low;
      deny_low.from_domain = "infotainment";
      deny_low.id_min = 0x000;
      deny_low.id_max = 0x2FF;  // safety-critical range
      deny_low.allow = false;
      gw->add_rule(deny_low);
    }
    if (arch == Arch::kRateLimit || arch == Arch::kQuarantine) {
      gw->set_domain_rate_limit("infotainment", gateway::RateLimit{50.0, 10.0});
    }
  }

  ecu::Ecu brake(sched, "brake", 1);
  brake.provision(ecu::FirmwareImage{"b", 1, Bytes(16, 1)}, key_of(1),
                  key_of(2), key_of(3));
  brake.attach_to(&chassis);
  brake.boot();
  brake.subscribe(0x0F0, [&](const ivn::CanFrame& f, sim::SimTime) {
    if (!f.data.empty() && f.data[0] == 0x66) ++out.malicious_delivered;
  });
  brake.subscribe(0x300, [&](const ivn::CanFrame& f, sim::SimTime) {
    if (!f.data.empty() && f.data[0] == 0x01) ++out.legit_delivered;
  });

  // IDS tap on the chassis side drives quarantine.
  std::unique_ptr<ids::IdsEnsemble> ensemble;
  if (arch == Arch::kQuarantine && gw) {
    ensemble = std::make_unique<ids::IdsEnsemble>(ids::make_default_ensemble());
    ensemble->bind_telemetry(telemetry);
    // Train on the legitimate telltale cadence.
    for (int i = 0; i < 100; ++i) {
      ivn::CanFrame f;
      f.id = 0x300;
      f.data = Bytes{0x01};
      ensemble->train(f, sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 100));
    }
    ensemble->finish_training();
    gw->set_drop_observer([&](const std::string& domain, const ivn::CanFrame&,
                              gateway::DropReason r) {
      // Firewall/rate drops from a domain escalate to quarantine.
      if (domain == "infotainment" && r != gateway::DropReason::kNoRoute &&
          !gw->quarantined("infotainment")) {
        gw->quarantine("infotainment");
      }
    });
  }

  // Legitimate telltale every 100 ms from an infotainment ECU (or the same
  // bus when flat).
  ecu::Ecu media(sched, "media", 2);
  media.provision(ecu::FirmwareImage{"m", 1, Bytes(16, 1)}, key_of(1),
                  key_of(2), key_of(3));
  media.attach_to(attacker_bus);
  media.boot();
  sim::PeriodicTask telltale(
      sched, sim::SimTime::from_ms(100),
      [&] { media.send_frame(0x300, Bytes{0x01}); }, sim::SimTime::zero());

  // Attacker: 1 kHz brake-command injection.
  attacks::InjectionAttacker atk(sched, *attacker_bus, "attacker", 0x0F0,
                                 sim::SimTime::from_ms(1),
                                 [](std::uint64_t) { return Bytes(8, 0x66); });
  atk.start();
  sched.run_until(sim::SimTime::from_s(5));
  atk.stop();
  telltale.stop();
  sched.run();

  out.chassis_load = chassis.stats().bus_load(sched.now());
  // Report straight from the shared registry: the same numbers every
  // component sees, no ad-hoc bookkeeping in the bench.
  out.gw_forwarded = telemetry.metrics->counter_value("gateway.cgw.forwarded");
  out.gw_drops =
      telemetry.metrics->counter_value("gateway.cgw.dropped_no_route") +
      telemetry.metrics->counter_value("gateway.cgw.dropped_firewall") +
      telemetry.metrics->counter_value("gateway.cgw.dropped_rate") +
      telemetry.metrics->counter_value("gateway.cgw.dropped_quarantine");
  out.metrics_json = telemetry.metrics->to_json();
  return out;
}

}  // namespace

int main() {
  std::printf("E6: gateway containment of a compromised infotainment domain\n");
  std::printf("(1 kHz brake-command injection for 5 s; legit telltale @10 Hz)\n\n");

  benchutil::Table table({"architecture", "malicious_delivered",
                          "legit_delivered", "gw_forwarded", "gw_drops",
                          "chassis_load_%"});
  std::string last_json;
  for (const Arch a : {Arch::kFlatBus, Arch::kRoutingOnly, Arch::kFirewall,
                       Arch::kRateLimit, Arch::kQuarantine}) {
    const Outcome o = run(a);
    table.add_row({arch_name(a), benchutil::fmt_u(o.malicious_delivered),
                   benchutil::fmt_u(o.legit_delivered),
                   benchutil::fmt_u(o.gw_forwarded),
                   benchutil::fmt_u(o.gw_drops),
                   benchutil::fmt("%.1f", o.chassis_load * 100)});
    last_json = o.metrics_json;
  }
  table.print();

  std::printf("\nMetricsRegistry JSON export (gateway + IDS quarantine run):\n%s\n",
              last_json.c_str());

  // Part B: forwarding latency overhead on legitimate traffic.
  std::printf("\nGateway forwarding latency on legitimate diagnostics:\n\n");
  benchutil::Table lat({"processing_delay_us", "end_to_end_p50_us",
                        "end_to_end_p99_us"});
  for (const std::uint64_t proc_us : {10u, 50u, 100u, 500u}) {
    sim::Scheduler sched;
    ivn::CanBus a(sched, "a", 500000), b(sched, "b", 500000);
    gateway::SecurityGateway gw(sched, "cgw", sim::SimTime::from_us(proc_us));
    gw.add_domain("a", &a);
    gw.add_domain("b", &b);
    gw.add_route(0x7DF, "a", "b");
    crypto::Block k{};
    ecu::Ecu tester(sched, "tester", 1), target(sched, "ecu", 2);
    tester.provision(ecu::FirmwareImage{"t", 1, Bytes(16, 1)}, k, k, k);
    target.provision(ecu::FirmwareImage{"e", 1, Bytes(16, 1)}, k, k, k);
    tester.attach_to(&a);
    target.attach_to(&b);
    tester.boot();
    target.boot();
    util::Samples lats;
    std::map<int, sim::SimTime> sent;
    int seq = 0;
    target.subscribe(0x7DF, [&](const ivn::CanFrame& f, sim::SimTime at) {
      lats.add((at - sent[f.data[0]]).us());
    });
    for (int i = 0; i < 100; ++i) {
      const auto at = sim::SimTime::from_ms(static_cast<std::uint64_t>(i) * 20);
      sched.schedule_at(at, [&, i, at] {
        sent[i % 256] = at;
        tester.send_frame(0x7DF, Bytes{static_cast<std::uint8_t>(i % 256)});
      });
      ++seq;
    }
    sched.run();
    lat.add_row({std::to_string(proc_us),
                 benchutil::fmt("%.0f", lats.percentile(50)),
                 benchutil::fmt("%.0f", lats.percentile(99))});
  }
  lat.print();
  std::printf(
      "\nReading: a flat bus delivers every forged frame; routing alone still\n"
      "leaks via any (mis)configured route; the firewall blocks the critical\n"
      "id range; quarantine cuts the domain entirely after first abuse. The\n"
      "cost is a fixed per-hop forwarding latency (two serializations +\n"
      "processing) on legitimate cross-domain traffic.\n");
  return 0;
}
