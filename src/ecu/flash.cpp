#include "ecu/flash.hpp"

#include <algorithm>

#include "util/crc.hpp"

namespace aseck::ecu {

const char* slot_state_name(SlotState s) {
  switch (s) {
    case SlotState::kEmpty: return "empty";
    case SlotState::kStaging: return "staging";
    case SlotState::kStaged: return "staged";
    case SlotState::kActive: return "active";
    case SlotState::kConfirmed: return "confirmed";
  }
  return "?";
}

bool Flash::consume_power() {
  if (fault_port_ && fault_port_->consume_power_loss()) {
    lost_power_ = true;
    return true;
  }
  return false;
}

FlashWrite Flash::write_header(int slot, Header h) {
  if (consume_power()) {
    // Dual-copy header update: the cut tears the in-flight copy, the
    // previous header stays readable. boot() discards the torn copy.
    slots_[slot].torn_spare = true;
    return FlashWrite::kPowerLoss;
  }
  slots_[slot].header = std::move(h);
  return FlashWrite::kOk;
}

void Flash::erase_slot(int slot) {
  Slot& s = slots_[slot];
  s.header = Header{};
  s.torn_spare = false;
  s.pages.clear();
  s.durable_bytes = 0;
  img_[slot].reset();
}

FlashWrite Flash::program_page(Slot& s, util::Bytes full_page) {
  if (consume_power()) {
    // Torn page: a prefix of the data lands, the CRC never programs.
    Page p;
    const std::size_t cut = full_page.empty() ? 0 : (full_page.size() + 1) / 2;
    p.data.assign(full_page.begin(),
                  full_page.begin() + static_cast<std::ptrdiff_t>(cut));
    p.programmed = true;
    p.torn = true;
    s.pages.push_back(std::move(p));
    return FlashWrite::kPowerLoss;
  }
  Page p;
  p.crc = util::crc32_ieee(full_page);
  p.data = std::move(full_page);
  p.programmed = true;
  s.pages.push_back(std::move(p));
  s.durable_bytes += s.pages.back().data.size();
  return FlashWrite::kOk;
}

std::uint64_t Flash::scan_watermark(Slot& s, bool discard_torn,
                                    std::size_t* torn_pages) {
  std::uint64_t bytes = 0;
  std::size_t valid = 0;
  for (const Page& p : s.pages) {
    const std::uint64_t remaining = s.header.total_bytes - bytes;
    const std::size_t expect =
        static_cast<std::size_t>(std::min<std::uint64_t>(kPageSize, remaining));
    if (!p.programmed || p.torn || p.data.size() != expect ||
        util::crc32_ieee(p.data) != p.crc) {
      break;
    }
    bytes += p.data.size();
    ++valid;
  }
  if (torn_pages) *torn_pages = s.pages.size() - valid;
  if (discard_torn && valid < s.pages.size()) {
    s.pages.resize(valid);
  }
  s.durable_bytes = bytes;
  return bytes;
}

bool Flash::content_valid(const Slot& s) const {
  std::uint64_t bytes = 0;
  for (const Page& p : s.pages) {
    const std::uint64_t remaining = s.header.total_bytes - bytes;
    const std::size_t expect =
        static_cast<std::size_t>(std::min<std::uint64_t>(kPageSize, remaining));
    if (!p.programmed || p.torn || p.data.size() != expect ||
        util::crc32_ieee(p.data) != p.crc) {
      return false;
    }
    bytes += p.data.size();
  }
  if (bytes != s.header.total_bytes) return false;
  util::Bytes code;
  code.reserve(static_cast<std::size_t>(bytes));
  for (const Page& p : s.pages) {
    code.insert(code.end(), p.data.begin(), p.data.end());
  }
  return crypto::sha256_bytes(code) == s.header.sha256;
}

void Flash::materialize(int slot) {
  Slot& s = slots_[slot];
  util::Bytes code;
  code.reserve(static_cast<std::size_t>(s.header.total_bytes));
  for (const Page& p : s.pages) {
    code.insert(code.end(), p.data.begin(), p.data.end());
  }
  img_[slot] = FirmwareImage{s.header.name, s.header.version, std::move(code)};
}

void Flash::provision(FirmwareImage img) {
  erase_slot(0);
  erase_slot(1);
  Slot& s = slots_[0];
  s.header.state = SlotState::kConfirmed;
  s.header.seq = ++seq_counter_;
  s.header.name = img.name;
  s.header.version = img.version;
  s.header.total_bytes = img.code.size();
  s.header.sha256 = crypto::sha256_bytes(img.code);
  for (std::size_t off = 0; off < img.code.size(); off += kPageSize) {
    Page p;
    const std::size_t n = std::min(kPageSize, img.code.size() - off);
    p.data.assign(img.code.begin() + static_cast<std::ptrdiff_t>(off),
                  img.code.begin() + static_cast<std::ptrdiff_t>(off + n));
    p.crc = util::crc32_ieee(p.data);
    p.programmed = true;
    s.pages.push_back(std::move(p));
  }
  s.durable_bytes = img.code.size();
  rollback_floor_ = img.version;
  img_[0] = std::move(img);
  active_slot_ = 0;
  staging_slot_ = -1;
  pending_.clear();
  lost_power_ = false;
}

bool Flash::stage_begin(const StageRequest& req) {
  if (lost_power_) return false;
  if (req.version < rollback_floor_) return false;
  const int target = (active_slot_ == 0) ? 1 : 0;
  Slot& s = slots_[target];
  pending_.clear();
  const bool resumable = (s.header.state == SlotState::kStaging ||
                          s.header.state == SlotState::kStaged) &&
                         s.header.sha256 == req.sha256 &&
                         s.header.total_bytes == req.total_bytes &&
                         s.header.name == req.name &&
                         s.header.version == req.version;
  if (resumable) {
    // Same content digest: keep the journal, resume at the watermark.
    staging_slot_ = target;
    if (s.header.state == SlotState::kStaging) {
      scan_watermark(s, /*discard_torn=*/true, nullptr);
    }
    return true;
  }
  // Different image (or no journal): reset. No stale-watermark resume.
  erase_slot(target);
  Header h;
  h.state = SlotState::kStaging;
  h.seq = ++seq_counter_;
  h.name = req.name;
  h.version = req.version;
  h.total_bytes = req.total_bytes;
  h.sha256 = req.sha256;
  if (write_header(target, std::move(h)) != FlashWrite::kOk) return false;
  staging_slot_ = target;
  return true;
}

FlashWrite Flash::stage_write(util::BytesView chunk) {
  if (lost_power_) return FlashWrite::kRejected;
  if (staging_slot_ < 0) return FlashWrite::kRejected;
  Slot& s = slots_[staging_slot_];
  if (s.header.state != SlotState::kStaging) return FlashWrite::kRejected;
  if (s.durable_bytes + pending_.size() + chunk.size() > s.header.total_bytes) {
    return FlashWrite::kRejected;  // overflow past the declared image length
  }
  std::size_t off = 0;
  while (off < chunk.size()) {
    const std::size_t room = kPageSize - pending_.size();
    const std::size_t take = std::min(chunk.size() - off, room);
    pending_.insert(pending_.end(), chunk.begin() + static_cast<std::ptrdiff_t>(off),
                    chunk.begin() + static_cast<std::ptrdiff_t>(off + take));
    off += take;
    const bool image_complete =
        s.durable_bytes + pending_.size() == s.header.total_bytes;
    if (pending_.size() == kPageSize || (image_complete && !pending_.empty())) {
      util::Bytes page = std::move(pending_);
      pending_.clear();
      const FlashWrite w = program_page(s, std::move(page));
      if (w != FlashWrite::kOk) return w;
    }
  }
  return FlashWrite::kOk;
}

FlashWrite Flash::stage_finish() {
  if (lost_power_) return FlashWrite::kRejected;
  if (staging_slot_ < 0) return FlashWrite::kRejected;
  Slot& s = slots_[staging_slot_];
  if (s.header.state == SlotState::kStaged) return FlashWrite::kOk;  // idempotent
  if (s.header.state != SlotState::kStaging) return FlashWrite::kRejected;
  if (s.durable_bytes != s.header.total_bytes || !pending_.empty()) {
    return FlashWrite::kRejected;  // journal incomplete
  }
  if (!content_valid(s)) {
    // Bytes in flash do not match the declared digest: poisoned journal.
    const int slot = staging_slot_;
    staging_slot_ = -1;
    erase_slot(slot);
    return FlashWrite::kRejected;
  }
  Header h = s.header;
  h.state = SlotState::kStaged;
  h.seq = ++seq_counter_;
  const FlashWrite w = write_header(staging_slot_, std::move(h));
  if (w != FlashWrite::kOk) return w;
  materialize(staging_slot_);
  return FlashWrite::kOk;
}

std::uint64_t Flash::staging_watermark() const {
  if (staging_slot_ < 0) return 0;
  const Slot& s = slots_[staging_slot_];
  if (s.header.state == SlotState::kStaged) return s.header.total_bytes;
  if (s.header.state != SlotState::kStaging) return 0;
  return s.durable_bytes;
}

const util::Bytes* Flash::staging_digest() const {
  if (staging_slot_ < 0) return nullptr;
  const Slot& s = slots_[staging_slot_];
  if (s.header.state != SlotState::kStaging &&
      s.header.state != SlotState::kStaged) {
    return nullptr;
  }
  return &s.header.sha256;
}

bool Flash::stage(FirmwareImage img) {
  StageRequest req;
  req.name = img.name;
  req.version = img.version;
  req.total_bytes = img.code.size();
  req.sha256 = crypto::sha256_bytes(img.code);
  if (!stage_begin(req)) return false;
  const std::uint64_t wm = staging_watermark();
  if (wm < img.code.size()) {
    const util::BytesView rest(img.code.data() + wm, img.code.size() - wm);
    if (stage_write(rest) != FlashWrite::kOk) return false;
  }
  return stage_finish() == FlashWrite::kOk;
}

bool Flash::activate(util::SimTime now, util::SimTime confirm_timeout) {
  if (lost_power_) return false;
  if (staging_slot_ < 0 ||
      slots_[staging_slot_].header.state != SlotState::kStaged) {
    return false;
  }
  Header h = slots_[staging_slot_].header;
  h.state = SlotState::kActive;
  h.seq = ++seq_counter_;
  h.confirm_deadline_ns =
      confirm_timeout == util::SimTime::zero() ? 0 : (now + confirm_timeout).ns;
  if (write_header(staging_slot_, std::move(h)) != FlashWrite::kOk) {
    return false;  // cut at the activation marker; slot remains STAGED
  }
  active_slot_ = staging_slot_;
  staging_slot_ = -1;
  return true;
}

void Flash::commit() {
  if (lost_power_ || active_slot_ < 0) return;
  Slot& s = slots_[active_slot_];
  if (s.header.state == SlotState::kConfirmed) {
    rollback_floor_ = std::max(rollback_floor_, s.header.version);
    return;
  }
  if (s.header.state != SlotState::kActive) return;
  Header h = s.header;
  h.state = SlotState::kConfirmed;
  h.seq = ++seq_counter_;
  h.confirm_deadline_ns = 0;
  if (write_header(active_slot_, std::move(h)) != FlashWrite::kOk) {
    return;  // cut at the commit marker; slot stays ACTIVE-unconfirmed
  }
  // Monotonic fuse write (single word, atomic): raise the rollback floor.
  rollback_floor_ = std::max(rollback_floor_, s.header.version);
}

bool Flash::revert() {
  if (lost_power_ || active_slot_ < 0) return false;
  const int o = other_slot(active_slot_);
  if (!img_[o]) return false;
  if (img_[o]->version < rollback_floor_) return false;
  const SlotState ostate = slots_[o].header.state;
  if (ostate != SlotState::kConfirmed && ostate != SlotState::kActive) {
    return false;
  }
  erase_slot(active_slot_);
  active_slot_ = o;
  staging_slot_ = -1;
  return true;
}

const FirmwareImage* Flash::active() const {
  if (active_slot_ < 0 || !img_[active_slot_]) return nullptr;
  const SlotState st = slots_[active_slot_].header.state;
  if (st != SlotState::kActive && st != SlotState::kConfirmed) return nullptr;
  return &*img_[active_slot_];
}

const FirmwareImage* Flash::staged() const {
  if (staging_slot_ < 0 || !img_[staging_slot_]) return nullptr;
  if (slots_[staging_slot_].header.state != SlotState::kStaged) return nullptr;
  return &*img_[staging_slot_];
}

SlotState Flash::slot_state(int slot) const {
  if (slot < 0 || slot > 1) return SlotState::kEmpty;
  return slots_[slot].header.state;
}

SlotState Flash::active_state() const {
  return active_slot_ < 0 ? SlotState::kEmpty
                          : slots_[active_slot_].header.state;
}

bool Flash::confirm_pending() const {
  return active_slot_ >= 0 &&
         slots_[active_slot_].header.state == SlotState::kActive;
}

util::SimTime Flash::confirm_deadline() const {
  if (!confirm_pending()) return util::SimTime::zero();
  return util::SimTime::from_ns(slots_[active_slot_].header.confirm_deadline_ns);
}

Flash::BootReport Flash::boot(util::SimTime now) {
  BootReport rep;
  lost_power_ = false;
  pending_.clear();
  active_slot_ = -1;
  staging_slot_ = -1;

  std::size_t scanned_pages = 0;
  for (int i = 0; i < 2; ++i) {
    scanned_pages += slots_[i].pages.size();
    if (slots_[i].torn_spare) {
      ++rep.torn_headers_discarded;
      slots_[i].torn_spare = false;
    }
  }
  rep.scan_us = scan_latency_us(scanned_pages, rep.torn_headers_discarded);

  // Boot candidates: ACTIVE/CONFIRMED slots whose content survives the
  // CRC + digest scan. A candidate with torn content can never boot.
  bool valid[2] = {false, false};
  for (int i = 0; i < 2; ++i) {
    const SlotState st = slots_[i].header.state;
    if (st != SlotState::kActive && st != SlotState::kConfirmed) continue;
    if (content_valid(slots_[i])) {
      valid[i] = true;
      if (!img_[i]) materialize(i);
    } else {
      rep.fell_back_torn = true;  // resolved below if nothing else boots
      erase_slot(i);
    }
  }
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    if (valid[i] && (best < 0 || slots_[i].header.seq > slots_[best].header.seq)) {
      best = i;
    }
  }
  if (rep.fell_back_torn && best < 0) rep.fell_back_torn = false;

  // Confirm-or-revert watchdog: an ACTIVE slot whose confirmation deadline
  // lapsed is assumed to have failed its self-test on every boot attempt —
  // fall back to the previous confirmed bank while one exists.
  if (best >= 0 && slots_[best].header.state == SlotState::kActive &&
      slots_[best].header.confirm_deadline_ns != 0 &&
      now.ns > slots_[best].header.confirm_deadline_ns) {
    const int o = other_slot(best);
    if (valid[o] && img_[o] && img_[o]->version >= rollback_floor_) {
      erase_slot(best);
      best = o;
      rep.auto_reverted = true;
    }
  }

  active_slot_ = best;
  if (best >= 0) {
    rep.bootable = true;
    rep.active_slot = best;
    rep.active_version = slots_[best].header.version;
    if (slots_[best].header.state == SlotState::kConfirmed) {
      // Repair a cut between the commit marker and the fuse write.
      rollback_floor_ = std::max(rollback_floor_, slots_[best].header.version);
    }
  }

  // Staging journal recovery: discard the torn tail, keep the watermark.
  for (int i = 0; i < 2; ++i) {
    if (i == active_slot_) continue;
    Slot& s = slots_[i];
    if (s.header.state == SlotState::kStaging) {
      std::size_t torn = 0;
      rep.resume_watermark = scan_watermark(s, /*discard_torn=*/true, &torn);
      rep.torn_pages_discarded += torn;
      rep.staging_resumable = true;
      staging_slot_ = i;
    } else if (s.header.state == SlotState::kStaged) {
      if (content_valid(s)) {
        if (!img_[i]) materialize(i);
        staging_slot_ = i;
        rep.resume_watermark = s.header.total_bytes;
        rep.staging_resumable = true;
      } else {
        erase_slot(i);
        rep.staging_discarded = true;
      }
    }
  }
  return rep;
}

}  // namespace aseck::ecu
