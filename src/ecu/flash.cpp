#include "ecu/flash.hpp"

#include <algorithm>

namespace aseck::ecu {

void Flash::provision(FirmwareImage img) {
  banks_[0] = std::move(img);
  active_bank_ = 0;
  staged_bank_ = -1;
  rollback_floor_ = banks_[0]->version;
}

bool Flash::stage(FirmwareImage img) {
  if (img.version < rollback_floor_) return false;
  const int bank = (active_bank_ == 0) ? 1 : 0;
  banks_[bank] = std::move(img);
  staged_bank_ = bank;
  return true;
}

bool Flash::activate() {
  if (staged_bank_ < 0 || !banks_[staged_bank_]) return false;
  active_bank_ = staged_bank_;
  staged_bank_ = -1;
  return true;
}

void Flash::commit() {
  if (active_bank_ >= 0 && banks_[active_bank_]) {
    rollback_floor_ = std::max(rollback_floor_, banks_[active_bank_]->version);
  }
}

bool Flash::revert() {
  const int other = (active_bank_ == 0) ? 1 : 0;
  if (active_bank_ < 0 || !banks_[other]) return false;
  if (banks_[other]->version < rollback_floor_) return false;
  active_bank_ = other;
  staged_bank_ = -1;
  return true;
}

const FirmwareImage* Flash::active() const {
  return active_bank_ >= 0 && banks_[active_bank_] ? &*banks_[active_bank_]
                                                   : nullptr;
}

const FirmwareImage* Flash::staged() const {
  return staged_bank_ >= 0 && banks_[staged_bank_] ? &*banks_[staged_bank_]
                                                   : nullptr;
}

}  // namespace aseck::ecu
