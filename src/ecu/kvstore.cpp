#include "ecu/kvstore.hpp"

#include <algorithm>

#include "util/crc.hpp"

namespace aseck::ecu {

KvStore::KvStore() {
  // Factory state: region 0 formatted at epoch 1 with an empty log
  // (power-safe by assumption, like Flash::provision).
  regions_[0].epoch = 1;
  regions_[0].epoch_valid = true;
}

util::Bytes KvStore::serialize_record(const Record& r) {
  util::Bytes out;
  out.push_back(static_cast<std::uint8_t>(r.type));
  util::append_be(out, r.txn, 4);
  util::append_be(out, static_cast<std::uint32_t>(r.key.size()), 2);
  util::append_be(out, static_cast<std::uint32_t>(r.value.size()), 4);
  out.insert(out.end(), r.key.begin(), r.key.end());
  out.insert(out.end(), r.value.begin(), r.value.end());
  return out;
}

bool KvStore::consume_power() {
  if (fault_port_ && fault_port_->consume_power_loss()) {
    lost_power_ = true;
    return true;
  }
  return false;
}

bool KvStore::append(Record r) {
  Region& reg = regions_[live_region_];
  if (consume_power()) {
    // Torn record: a prefix lands, the CRC never programs. mount() stops
    // its replay scan here and discards the tail.
    r.torn = true;
    r.crc = 0;
    reg.records.push_back(std::move(r));
    return false;
  }
  r.crc = util::crc32_ieee(serialize_record(r));
  reg.records.push_back(std::move(r));
  return true;
}

KvStore::MountReport KvStore::mount() {
  MountReport rep;
  lost_power_ = false;

  // Pick the region with the highest valid epoch (dual-region contract: at
  // least one epoch header is always valid). A region whose header never
  // flipped — an interrupted compaction target — is erased.
  int best = -1;
  for (int i = 0; i < 2; ++i) {
    if (regions_[i].epoch_valid &&
        (best < 0 || regions_[i].epoch > regions_[best].epoch)) {
      best = i;
    }
  }
  if (best < 0) best = 0;  // unreachable by construction; stay deterministic
  live_region_ = best;
  const int dead = other_region();
  regions_[dead].records.clear();
  regions_[dead].epoch_valid = false;

  // Replay: committed transactions only, stopping at the first torn or
  // corrupt record (everything after a torn append is by definition gone).
  Region& reg = regions_[live_region_];
  live_.clear();
  std::map<std::uint32_t, std::vector<const Record*>> staged;
  std::size_t valid = 0;
  std::uint32_t max_txn = 0;
  for (const Record& r : reg.records) {
    if (r.torn || util::crc32_ieee(serialize_record(r)) != r.crc) break;
    ++valid;
    max_txn = std::max(max_txn, r.txn);
    if (r.type == RecordType::kCommit) {
      const auto it = staged.find(r.txn);
      if (it != staged.end()) {
        for (const Record* op : it->second) {
          if (op->type == RecordType::kErase) {
            live_.erase(op->key);
          } else {
            live_[op->key] = op->value;
          }
        }
        staged.erase(it);
      }
    } else {
      staged[r.txn].push_back(&r);
    }
  }
  rep.torn_records_discarded = reg.records.size() - valid;
  for (const auto& [txn, ops] : staged) {
    rep.uncommitted_discarded += ops.size();
  }
  rep.scan_us = scan_latency_us(reg.records.size());
  reg.records.resize(valid);

  mounted_ = true;
  next_txn_ = max_txn + 1;
  rep.mounted = true;
  rep.region = live_region_;
  rep.epoch = reg.epoch;
  rep.records_replayed = valid;
  rep.live_keys = live_.size();
  return rep;
}

const util::Bytes* KvStore::get(const std::string& key) const {
  if (!mounted_) return nullptr;
  const auto it = live_.find(key);
  return it == live_.end() ? nullptr : &it->second;
}

std::vector<std::string> KvStore::keys() const {
  std::vector<std::string> out;
  if (!mounted_) return out;
  out.reserve(live_.size());
  for (const auto& [k, v] : live_) out.push_back(k);
  return out;
}

bool KvStore::put(const std::string& key, util::Bytes value) {
  KvTransaction txn;
  txn.put(key, std::move(value));
  return commit(txn);
}

bool KvStore::erase(const std::string& key) {
  KvTransaction txn;
  txn.erase(key);
  return commit(txn);
}

bool KvStore::commit(const KvTransaction& txn) {
  if (!mounted_ || lost_power_ || txn.empty()) return false;
  const std::uint32_t id = next_txn_++;
  for (const KvTransaction::Op& op : txn.ops()) {
    Record r;
    r.type = op.is_erase ? RecordType::kErase : RecordType::kPut;
    r.txn = id;
    r.key = op.key;
    r.value = op.value;
    if (!append(std::move(r))) return false;  // cut: nothing took effect
  }
  Record commit_rec;
  commit_rec.type = RecordType::kCommit;
  commit_rec.txn = id;
  if (!append(std::move(commit_rec))) return false;

  // Durable: apply to RAM state.
  for (const KvTransaction::Op& op : txn.ops()) {
    if (op.is_erase) {
      live_.erase(op.key);
    } else {
      live_[op.key] = op.value;
    }
  }
  if (regions_[live_region_].records.size() > compaction_threshold_) {
    compact();  // a cut in here is survivable; the commit above is durable
  }
  return true;
}

void KvStore::compact() {
  const int target = other_region();
  Region& dst = regions_[target];
  dst.records.clear();
  dst.epoch_valid = false;
  // Rewrite live pairs (sorted map order: deterministic) as txn-0 records.
  for (const auto& [key, value] : live_) {
    Record r;
    r.type = RecordType::kPut;
    r.txn = 0;
    r.key = key;
    r.value = value;
    if (consume_power()) {
      r.torn = true;
      dst.records.push_back(std::move(r));
      return;  // old region's epoch still highest-valid; nothing lost
    }
    r.crc = util::crc32_ieee(serialize_record(r));
    dst.records.push_back(std::move(r));
  }
  Record c;
  c.type = RecordType::kCommit;
  c.txn = 0;
  if (consume_power()) {
    c.torn = true;
    dst.records.push_back(std::move(c));
    return;
  }
  c.crc = util::crc32_ieee(serialize_record(c));
  dst.records.push_back(std::move(c));
  // Epoch header flip: one dual-copy (atomic-or-ignored) write.
  if (consume_power()) return;  // torn header copy; old region stays live
  dst.epoch = regions_[live_region_].epoch + 1;
  dst.epoch_valid = true;
  regions_[live_region_].records.clear();
  regions_[live_region_].epoch_valid = false;
  live_region_ = target;
  ++compactions_;
}

std::size_t KvStore::log_records() const {
  return regions_[live_region_].records.size();
}

std::string KvStore::to_json() const {
  std::string out = "{\"mounted\":" + std::string(mounted_ ? "true" : "false") +
                    ",\"epoch\":" + std::to_string(epoch()) +
                    ",\"records\":" + std::to_string(log_records()) +
                    ",\"compactions\":" + std::to_string(compactions_) +
                    ",\"kv\":{";
  bool first = true;
  for (const auto& [k, v] : live_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + k + "\":\"" + util::to_hex(v) + "\"";
  }
  out += "}}";
  return out;
}

}  // namespace aseck::ecu
