#pragma once
// In-vehicle session-key distribution (AUTOSAR key-manager pattern): a key
// master periodically generates a fleet-epoch session key and wraps it for
// each ECU under that ECU's provisioned SHE keys (encrypt under the
// enc-usage key, authenticate under the mac-usage key). ECUs install the
// unwrapped key into the SHE RAM-key slot and use it for SecOC traffic of
// that epoch. Epoch counters give replay protection; rotating the session
// key bounds the exposure of any single key compromise — an in-field
// extensibility mechanism (new epoch = new key, no reflash).

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "crypto/drbg.hpp"
#include "ecu/she.hpp"

namespace aseck::ecu {

/// Wire format of one wrapped session key.
struct SessionKeyWrap {
  std::string ecu_name;
  std::uint32_t epoch = 0;
  util::Bytes wrapped_key;  // AES-ECB(K_enc, SK), 16 bytes
  util::Bytes mac;          // CMAC(K_mac, ecu||epoch||wrapped), 16 bytes

  util::Bytes mac_input() const;
};

/// Backend/gateway-side key master. Knows each ECU's wrap keys (in a real
/// vehicle these live in the key master's own SHE; modeled as raw blocks).
class SessionKeyMaster {
 public:
  explicit SessionKeyMaster(std::uint64_t seed) : rng_(seed) {}

  void register_ecu(const std::string& name, const crypto::Block& enc_key,
                    const crypto::Block& mac_key);

  /// Starts a new epoch with a fresh session key; returns one wrap per ECU.
  std::vector<SessionKeyWrap> rotate();

  std::uint32_t epoch() const { return epoch_; }
  /// Current session key (for test verification; the master holds it anyway).
  const crypto::Block& current_key() const { return session_key_; }

 private:
  struct EcuKeys {
    crypto::Block enc, mac;
  };
  crypto::Drbg rng_;
  std::map<std::string, EcuKeys> ecus_;
  std::uint32_t epoch_ = 0;
  crypto::Block session_key_{};
};

/// ECU-side installer: verifies + unwraps into the SHE RAM key slot.
class SessionKeyClient {
 public:
  /// `enc_slot`/`mac_slot`: which SHE slots hold the wrap keys.
  SessionKeyClient(std::string name, She& she,
                   SheSlot enc_slot = SheSlot::kKey2,
                   SheSlot mac_slot = SheSlot::kKey3)
      : name_(std::move(name)), she_(she), enc_slot_(enc_slot),
        mac_slot_(mac_slot) {}

  enum class Result { kInstalled, kWrongEcu, kBadMac, kReplayedEpoch,
                      kSheError };
  Result install(const SessionKeyWrap& wrap);

  std::uint32_t epoch() const { return epoch_; }
  static const char* result_name(Result r);

 private:
  std::string name_;
  She& she_;
  SheSlot enc_slot_, mac_slot_;
  std::uint32_t epoch_ = 0;
};

}  // namespace aseck::ecu
