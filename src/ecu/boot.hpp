#pragma once
// Measured boot chain (ROADMAP O4): staged boot ROM -> SHE secure-boot
// boot-MAC -> signature-verified app slot, with a PCR-style measurement
// register, signed attestation evidence, and deterministic degradation.
//
//   stage 0  ROM     measures the second-stage bootloader against a fused
//                    digest anchor (the immutable root of trust);
//   stage 1  SHE     CMD_BOOT_MAC over the bootloader (ecu::She) — a MAC
//                    mismatch does NOT halt boot (SHE semantics): the chain
//                    continues but boot-protected keys stay locked;
//   stage 2  APP     Flash::boot() recovery picks the active A/B slot, then
//                    the slot image's ECDSA signature is checked against the
//                    trust anchor provisioned in the KvStore (key
//                    "boot.anchor", per-image signatures "boot.sig.<hex>").
//
// Every stage extends a measurement register (PCR-style SHA-256 chaining)
// whether it passes or fails; the final verdict gates the CryptoService
// (`on_measurement`), so boot-protected service keys unlock ONLY after a
// fully-measured boot — SHE's boot_protection flag carried end to end.
//
// Degradation is deterministic: per-stage retry -> fall back to the other
// flash slot (revert) -> ROM-resident limp-home recovery image. A hung
// stage (modeled via the stage hook) leaves the chain in `hung()`;
// safety::BootGuard wires that to a HealthSupervisor entity whose
// escalation ladder re-runs the chain instead of letting the ECU wedge.
//
// Attestation: `attest(nonce)` emits signed `AttestationEvidence` (uid,
// boot count, mode, measurement log, PCR) with a strict serialize/parse
// round trip; `verify_evidence` checks nonce freshness, PCR consistency,
// and the ECDSA signature. Evidence is also summarized on the TraceBus.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "crypto/service.hpp"
#include "crypto/sha256.hpp"
#include "crypto/verify_engine.hpp"
#include "ecu/flash.hpp"
#include "ecu/kvstore.hpp"
#include "ecu/she.hpp"
#include "sim/telemetry.hpp"
#include "util/time.hpp"

namespace aseck::ecu {

enum class BootStage : std::uint8_t { kRom = 0, kBootloader = 1, kApp = 2 };
const char* boot_stage_name(BootStage s);

enum class BootMode : std::uint8_t {
  kNone = 0,      // never booted / chain hung
  kNormal = 1,    // preferred slot, fully verified
  kFallback = 2,  // other slot after the preferred one failed verification
  kRecovery = 3,  // ROM-resident limp-home image
};
const char* boot_mode_name(BootMode m);

/// One measurement: what was measured at a stage and whether it verified.
struct Measurement {
  BootStage stage = BootStage::kRom;
  bool passed = false;
  crypto::Digest digest{};  // of the measured object
  friend bool operator==(const Measurement&, const Measurement&) = default;
};

/// PCR-style register: extend() chains SHA-256 over (pcr | stage | verdict |
/// digest), so the final value commits to the whole ordered log.
class MeasurementRegister {
 public:
  MeasurementRegister() { reset(); }
  void reset();
  void extend(const Measurement& m);
  const crypto::Digest& pcr() const { return pcr_; }
  const std::vector<Measurement>& log() const { return log_; }
  bool all_passed() const;
  /// Recomputes the PCR a given log would produce (evidence verification).
  static crypto::Digest replay(const std::vector<Measurement>& log);

 private:
  crypto::Digest pcr_{};
  std::vector<Measurement> log_;
};

/// Signed boot attestation. Strict wire format (versioned, length-prefixed,
/// no trailing bytes); `serialize`/`parse` round-trip byte-identically.
struct AttestationEvidence {
  static constexpr std::uint8_t kVersion = 1;

  util::Bytes uid;       // 15-byte SHE device id
  std::uint32_t boot_count = 0;
  std::uint8_t mode = 0;  // BootMode
  bool measured_ok = false;
  util::Bytes nonce;     // verifier challenge (freshness)
  std::vector<Measurement> measurements;
  crypto::Digest pcr{};
  crypto::EcdsaSignature signature{};

  /// To-be-signed serialization (everything except the signature).
  util::Bytes tbs() const;
  /// tbs || 64-byte r||s signature.
  util::Bytes serialize() const;
  /// Strict parse: bad magic/version/lengths/enums or trailing bytes fail.
  static std::optional<AttestationEvidence> parse(util::BytesView blob);
};

/// Full evidence check: expected nonce, PCR replay, ECDSA signature (through
/// the VerifyEngine's cache when provided).
bool verify_evidence(const AttestationEvidence& ev,
                     const crypto::EcdsaPublicKey& pub,
                     util::BytesView expected_nonce,
                     crypto::VerifyEngine* engine = nullptr);

struct BootChainConfig {
  /// Second-stage bootloader image (measured by ROM, MACed by SHE).
  util::Bytes bootloader;
  /// ROM-fused digest the bootloader must match (the root of trust).
  crypto::Digest rom_anchor{};
  /// Extra attempts per stage before degrading (1 retry = 2 attempts).
  int stage_retries = 1;
  /// ROM-resident limp-home image booted when no slot verifies.
  std::optional<FirmwareImage> recovery_image;
  /// Fallback app trust anchor when the KvStore has no "boot.anchor".
  crypto::EcdsaPublicKey app_anchor{};
  bool has_app_anchor = false;
  /// Modeled cost of one app-image ECDSA verification.
  double sig_verify_us = 200.0;
};

/// KvStore keys the chain (and fleet campaigns) use.
inline constexpr const char* kKvAppAnchorKey = "boot.anchor";
/// Per-image signature key: kKvSigPrefix + hex(FirmwareImage::digest()).
inline constexpr const char* kKvSigPrefix = "boot.sig.";
std::string boot_sig_key(const crypto::Digest& image_digest);

class BootChain {
 public:
  struct StageRecord {
    BootStage stage = BootStage::kRom;
    int attempts = 0;
    bool passed = false;
  };
  struct Report {
    BootMode mode = BootMode::kNone;
    bool measured_ok = false;
    bool keys_unlocked = false;  // CryptoService reached kOperational
    bool hung = false;
    BootStage hung_stage = BootStage::kRom;
    bool fallback_used = false;  // reverted to the other slot
    bool recovery_used = false;
    std::uint32_t boot_count = 0;
    std::vector<StageRecord> stages;
    Flash::BootReport flash;
    KvStore::MountReport kv;
    double boot_us = 0.0;  // modeled end-to-end boot latency
  };

  /// The service is relocked and re-gated on every run(); `provisioning` may
  /// be null (then only the config anchor is available).
  BootChain(She& she, Flash& flash, crypto::CryptoService& service,
            KvStore* provisioning, BootChainConfig cfg);

  /// Attestation signing key (non-boot-protected, so failed boots can still
  /// be attested — that is the point of attestation).
  void set_attestation_key(crypto::PartitionId partition, crypto::KeyHandle h);

  /// Test/fault hook: return true to hang the given (stage, attempt) — the
  /// chain stops mid-stage with hung() set and NO measurement verdict, which
  /// is what safety::BootGuard escalates on.
  using StageHook = std::function<bool(BootStage, int attempt)>;
  void set_stage_hook(StageHook hook) { hook_ = std::move(hook); }

  /// Runs the full chain (power-on or supervisor-triggered reset).
  Report run(util::SimTime now = util::SimTime::zero());

  bool hung() const { return hung_; }
  std::uint32_t boot_count() const { return boot_count_; }
  const Report& last() const { return last_; }
  const MeasurementRegister& measurements() const { return mr_; }

  /// Signed evidence for the last run; nullopt before the first run or when
  /// the service denies the signature (no attestation key provisioned).
  std::optional<AttestationEvidence> attest(util::BytesView nonce) const;

  /// ROM measurement latency model (flash streaming + hash).
  static double measure_latency_us(std::size_t bytes) {
    return 2.0 + 0.01 * static_cast<double>(bytes);
  }

  sim::TraceScope& trace() { return trace_; }
  void bind_telemetry(const sim::Telemetry& t);

 private:
  bool stage_attempts(BootStage stage, int* attempts,
                      const std::function<bool()>& attempt);
  const util::Bytes* kv_value(const std::string& key) const;

  She& she_;
  Flash& flash_;
  crypto::CryptoService& service_;
  KvStore* kv_ = nullptr;
  BootChainConfig cfg_;
  crypto::PartitionId attest_partition_ = 0;
  crypto::KeyHandle attest_key_{};
  StageHook hook_;
  MeasurementRegister mr_;
  Report last_;
  bool hung_ = false;
  std::uint32_t boot_count_ = 0;
  crypto::VerifyEngine engine_;
  mutable sim::TraceScope trace_;
  sim::TraceId k_stage_ = 0, k_fallback_ = 0, k_recovery_ = 0, k_measured_ = 0,
               k_attest_ = 0, k_hang_ = 0;
};

}  // namespace aseck::ecu
