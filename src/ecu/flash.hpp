#pragma once
// Firmware image and A/B-slot flash model with rollback counters. OTA
// (src/ota) installs into the inactive slot and flips on successful
// verification; secure boot measures the active slot.

#include <cstdint>
#include <optional>
#include <string>

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace aseck::ecu {

struct FirmwareImage {
  std::string name;        // e.g. "brake-ctrl-fw"
  std::uint32_t version = 0;
  util::Bytes code;

  crypto::Digest digest() const {
    util::Bytes blob;
    blob.insert(blob.end(), name.begin(), name.end());
    util::append_be(blob, version, 4);
    blob.insert(blob.end(), code.begin(), code.end());
    return crypto::sha256(blob);
  }
  util::Bytes digest_bytes() const {
    const auto d = digest();
    return util::Bytes(d.begin(), d.end());
  }
};

/// Dual-bank flash with anti-rollback.
class Flash {
 public:
  /// Writes `img` into the inactive bank. Fails (returns false) if the image
  /// version is below the rollback floor.
  bool stage(FirmwareImage img);

  /// Promotes the staged bank to active. The rollback floor is NOT raised
  /// yet — the new image must pass its self-test first. Returns false if
  /// nothing staged.
  bool activate();

  /// Confirms the active image after a successful self-test; raises the
  /// rollback floor to its version, making downgrades permanent failures.
  void commit();

  /// Reverts to the previous bank (failed self-test after update); allowed
  /// only if the previous image still satisfies the rollback floor.
  bool revert();

  const FirmwareImage* active() const;
  const FirmwareImage* staged() const;
  std::uint32_t rollback_floor() const { return rollback_floor_; }
  /// Factory provisioning of the initial image.
  void provision(FirmwareImage img);

  /// Flash write latency model: ~50 us per 1 KiB page.
  static double write_latency_us(std::size_t bytes) {
    return 50.0 * static_cast<double>((bytes + 1023) / 1024);
  }

 private:
  std::optional<FirmwareImage> banks_[2];
  int active_bank_ = -1;  // -1 = unprovisioned
  int staged_bank_ = -1;
  std::uint32_t rollback_floor_ = 0;
};

}  // namespace aseck::ecu
