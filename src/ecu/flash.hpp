#pragma once
// Journaled, page-granular A/B flash with power-loss-atomic updates. OTA
// (src/ota) streams verified chunks into the inactive slot's staging journal
// and flips on successful verification; secure boot measures the active slot.
//
// The flash is modeled the way production update stacks (MCUboot, Uptane
// primaries, UEFI capsules) actually survive power cuts:
//
//   * data is programmed in 4 KiB pages, each with its own CRC-32; a write
//     interrupted by power loss leaves a *detectably torn* page (prefix of
//     the data, CRC never programmed);
//   * each slot carries a header with a state machine
//     EMPTY -> STAGING -> STAGED -> ACTIVE -> CONFIRMED and a monotonic
//     sequence number; header updates are dual-copy (write the new copy,
//     then retire the old), so a cut mid-header-write leaves the previous
//     header readable — the header update is effectively atomic;
//   * `boot()` is the recovery pass: it discards torn header copies and torn
//     journal pages, derives the staging journal watermark (contiguous
//     CRC-valid bytes, the download resume point), picks the
//     highest-sequence valid ACTIVE/CONFIRMED slot, and auto-reverts an
//     ACTIVE-but-unconfirmed slot whose confirmation deadline lapsed.
//
// Power loss is injected through a `sim::FaultPort` (FaultKind::kPowerLoss):
// every persistent write operation — page program or header write, including
// the activation and commit marker writes — consults the port and, when the
// cut hits, applies the write partially and powers the device down until
// `boot()` runs. The E18 bench sweeps the cut over every write index and
// asserts the invariant: after any single power loss the ECU boots a valid
// image (old or new), never a torn one, never none.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "sim/faultplan.hpp"
#include "util/bytes.hpp"
#include "util/time.hpp"

namespace aseck::ecu {

struct FirmwareImage {
  std::string name;        // e.g. "brake-ctrl-fw"
  std::uint32_t version = 0;
  util::Bytes code;

  crypto::Digest digest() const {
    util::Bytes blob;
    blob.insert(blob.end(), name.begin(), name.end());
    util::append_be(blob, version, 4);
    blob.insert(blob.end(), code.begin(), code.end());
    return crypto::sha256(blob);
  }
  util::Bytes digest_bytes() const {
    const auto d = digest();
    return util::Bytes(d.begin(), d.end());
  }
};

/// Slot header state machine.
enum class SlotState : std::uint8_t {
  kEmpty,      // erased / no image
  kStaging,    // journal open, pages arriving
  kStaged,     // journal complete and digest-verified
  kActive,     // booted but not yet confirmed (self-test pending)
  kConfirmed,  // self-test passed; rollback floor raised to its version
};
const char* slot_state_name(SlotState s);

/// Outcome of one persistent write operation.
enum class FlashWrite {
  kOk,
  kPowerLoss,  // the cut hit this write; device is down until boot()
  kRejected,   // no open journal / overflow / verification failure
};

/// Dual-slot journaled flash with anti-rollback.
class Flash {
 public:
  static constexpr std::size_t kPageSize = 4096;

  /// Parameters of a streaming install, keyed by the image content digest:
  /// re-opening a journal with the same digest resumes at the watermark;
  /// a different digest always resets the journal (no stale-watermark resume
  /// into a different image).
  struct StageRequest {
    std::string name;
    std::uint32_t version = 0;
    std::uint64_t total_bytes = 0;
    util::Bytes sha256;  // 32-byte digest of the raw code bytes
  };

  /// What boot-time recovery found and did.
  struct BootReport {
    bool bootable = false;  // a valid ACTIVE/CONFIRMED image exists
    int active_slot = -1;
    std::uint32_t active_version = 0;
    bool auto_reverted = false;   // ACTIVE slot past its confirm deadline
    bool fell_back_torn = false;  // preferred slot content torn; booted other
    bool staging_resumable = false;
    bool staging_discarded = false;  // STAGED content failed re-verification
    std::uint64_t resume_watermark = 0;  // valid journal bytes to resume from
    std::size_t torn_pages_discarded = 0;
    std::size_t torn_headers_discarded = 0;
    double scan_us = 0.0;  // modeled recovery latency (header + page scan)
  };

  // --- whole-image A/B API ---------------------------------------------------
  /// Writes `img` into the inactive slot through the journal (begin + stream
  /// + finish). Fails if the image version is below the rollback floor, or if
  /// an injected power cut interrupts the install (`lost_power()` is then
  /// true and the journal watermark survives for resume).
  bool stage(FirmwareImage img);

  /// Promotes the staged slot to active (the activation marker write). The
  /// rollback floor is NOT raised yet — the new image must pass its self-test
  /// first. With a nonzero `confirm_timeout`, a reboot after
  /// `now + confirm_timeout` without `commit()` auto-reverts to the previous
  /// bank (`boot()` enforces it; see ota::ConfirmWatchdog for the supervised
  /// wiring). Returns false if nothing staged or power was lost.
  bool activate(util::SimTime now = util::SimTime::zero(),
                util::SimTime confirm_timeout = util::SimTime::zero());

  /// Confirms the active image after a successful self-test (the commit
  /// marker write); raises the rollback floor to its version, making
  /// downgrades permanent failures. A power cut during the marker write
  /// leaves the slot ACTIVE-unconfirmed — the deadline machinery then decides
  /// at next boot.
  void commit();

  /// Reverts to the previous bank (failed self-test after update); allowed
  /// only if the previous image still satisfies the rollback floor. Erases
  /// the abandoned slot.
  bool revert();

  const FirmwareImage* active() const;
  const FirmwareImage* staged() const;
  std::uint32_t rollback_floor() const { return rollback_floor_; }
  /// Factory provisioning of the initial image (power-safe by assumption).
  void provision(FirmwareImage img);

  // --- journaled streaming install -------------------------------------------
  /// Opens (or resumes) the staging journal on the inactive slot. Resumes
  /// only when an existing journal carries the *same* content digest;
  /// otherwise the slot is erased and the journal restarts from zero.
  /// Fails below the rollback floor or while powered down.
  bool stage_begin(const StageRequest& req);
  /// Appends bytes to the journal. Pages are programmed as they fill (one
  /// injectable write op per page); bytes of a partially-filled page are
  /// volatile until that page programs.
  FlashWrite stage_write(util::BytesView chunk);
  /// Seals the journal: verifies every page CRC and the content digest, then
  /// writes the STAGED header. kRejected erases the journal (bad bytes).
  FlashWrite stage_finish();
  /// Contiguous durable journal bytes (the download resume offset).
  std::uint64_t staging_watermark() const;
  /// Content digest of the open/surviving journal (empty if none).
  const util::Bytes* staging_digest() const;

  // --- power-loss modeling ----------------------------------------------------
  /// Attaches a fault-injection port; FaultKind::kPowerLoss windows cut power
  /// during page programs and header writes (exact write index or
  /// per-write probability).
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }
  /// True after an injected cut until boot() runs; all writes fail meanwhile.
  bool lost_power() const { return lost_power_; }
  /// Boot-time recovery scan (see file header). Idempotent; its own writes
  /// use the same atomic header protocol, so a cut during recovery merely
  /// repeats recovery.
  BootReport boot(util::SimTime now = util::SimTime::zero());

  SlotState slot_state(int slot) const;
  /// State of the slot currently selected to boot (kEmpty if none).
  SlotState active_state() const;
  /// True while the active slot awaits its confirmation (commit) marker.
  bool confirm_pending() const;
  /// Absolute confirm-or-revert deadline (zero = none armed).
  util::SimTime confirm_deadline() const;

  /// Flash write latency model: ~50 us per 1 KiB page.
  static double write_latency_us(std::size_t bytes) {
    return 50.0 * static_cast<double>((bytes + 1023) / 1024);
  }
  /// One slot-header copy read (each slot has two copies, so a clean boot
  /// scan reads four).
  static constexpr double kHeaderReadUs = 5.0;
  /// Boot recovery scan latency model: header-copy reads + per-page CRC
  /// check. The four intact header copies are the 20 us base; each *torn*
  /// spare copy discovered during recovery is charged exactly once, when it
  /// is examined and discarded — previously the model charged torn copies
  /// through the flat base AND ignored the extra examination read, so
  /// recovery after a header cut reported the same latency as a clean boot.
  static double scan_latency_us(std::size_t pages,
                                std::size_t torn_header_copies = 0) {
    return kHeaderReadUs * static_cast<double>(4 + torn_header_copies) +
           8.0 * static_cast<double>(pages);
  }

 private:
  struct Page {
    util::Bytes data;
    std::uint32_t crc = 0;
    bool programmed = false;
    bool torn = false;  // power cut mid-program: prefix only, CRC missing
  };
  struct Header {
    SlotState state = SlotState::kEmpty;
    std::uint64_t seq = 0;  // monotonic across all header writes
    std::string name;
    std::uint32_t version = 0;
    std::uint64_t total_bytes = 0;
    util::Bytes sha256;
    std::uint64_t confirm_deadline_ns = 0;  // 0 = none
  };
  struct Slot {
    Header header;  // last durable header copy
    bool torn_spare = false;  // a cut left a torn (ignored) header copy
    std::vector<Page> pages;
    std::uint64_t durable_bytes = 0;  // bytes in fully-programmed pages
  };

  bool consume_power();            // one write op; true = the cut hits now
  FlashWrite write_header(int slot, Header h);
  void erase_slot(int slot);
  FlashWrite program_page(Slot& s, util::Bytes full_page);
  /// Contiguous valid journal bytes; optionally counts/clears torn pages.
  std::uint64_t scan_watermark(Slot& s, bool discard_torn,
                               std::size_t* torn_pages);
  bool content_valid(const Slot& s) const;
  void materialize(int slot);
  int other_slot(int slot) const { return slot == 0 ? 1 : 0; }

  std::array<Slot, 2> slots_;
  std::optional<FirmwareImage> img_[2];  // materialized complete images
  int active_slot_ = -1;   // -1 = unprovisioned
  int staging_slot_ = -1;  // slot with an open journal or a STAGED image
  util::Bytes pending_;    // volatile partial-page write buffer
  std::uint64_t seq_counter_ = 0;
  std::uint32_t rollback_floor_ = 0;  // monotonic fuse; word write is atomic
  bool lost_power_ = false;
  sim::FaultPort* fault_port_ = nullptr;
};

}  // namespace aseck::ecu
