#pragma once
// Fleet key diversification — the production countermeasure to the paper's
// §4.2 fleet-compromise scenario ("many electronic components are produced
// en masse with the same configuration of keys"). Every per-vehicle,
// per-purpose key is derived from the fleet master and the device UID via
// the SHE KDF, so extracting one vehicle's key reveals nothing about the
// rest of the fleet, while the backend can re-derive any key on demand
// (no per-vehicle key database needed).

#include <string_view>

#include "crypto/kdf.hpp"
#include "ecu/ecu.hpp"

namespace aseck::ecu {

/// Derives a 128-bit vehicle key: KDF chain over master, UID, and a purpose
/// label (e.g. "secoc", "ota-auth", "immobilizer").
crypto::Block derive_vehicle_key(const crypto::Block& fleet_master,
                                 util::BytesView uid, std::string_view purpose);

/// Factory provisioning helper: installs diversified master/boot/SecOC keys
/// on an ECU from the fleet master and the ECU's own UID.
void provision_diversified(Ecu& ecu, const crypto::Block& fleet_master,
                           FirmwareImage fw);

}  // namespace aseck::ecu
