#include "ecu/boot.hpp"

#include <utility>

#include "sim/trace.hpp"

namespace aseck::ecu {

const char* boot_stage_name(BootStage s) {
  switch (s) {
    case BootStage::kRom: return "rom";
    case BootStage::kBootloader: return "bootloader";
    case BootStage::kApp: return "app";
  }
  return "?";
}

const char* boot_mode_name(BootMode m) {
  switch (m) {
    case BootMode::kNone: return "none";
    case BootMode::kNormal: return "normal";
    case BootMode::kFallback: return "fallback";
    case BootMode::kRecovery: return "recovery";
  }
  return "?";
}

void MeasurementRegister::reset() {
  pcr_ = crypto::Digest{};  // all-zero initial PCR, TPM style
  log_.clear();
}

void MeasurementRegister::extend(const Measurement& m) {
  util::Bytes buf(pcr_.begin(), pcr_.end());
  buf.push_back(static_cast<std::uint8_t>(m.stage));
  buf.push_back(m.passed ? 1 : 0);
  buf.insert(buf.end(), m.digest.begin(), m.digest.end());
  pcr_ = crypto::sha256(buf);
  log_.push_back(m);
}

bool MeasurementRegister::all_passed() const {
  if (log_.empty()) return false;
  for (const Measurement& m : log_) {
    if (!m.passed) return false;
  }
  return true;
}

crypto::Digest MeasurementRegister::replay(const std::vector<Measurement>& log) {
  MeasurementRegister r;
  for (const Measurement& m : log) r.extend(m);
  return r.pcr();
}

namespace {
constexpr std::uint8_t kEvidenceMagic[4] = {'A', 'T', 'E', 'V'};
}  // namespace

util::Bytes AttestationEvidence::tbs() const {
  util::Bytes out(kEvidenceMagic, kEvidenceMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(uid.size()));
  out.insert(out.end(), uid.begin(), uid.end());
  util::append_be(out, boot_count, 4);
  out.push_back(mode);
  out.push_back(measured_ok ? 1 : 0);
  util::append_be(out, nonce.size(), 2);
  out.insert(out.end(), nonce.begin(), nonce.end());
  out.push_back(static_cast<std::uint8_t>(measurements.size()));
  for (const Measurement& m : measurements) {
    out.push_back(static_cast<std::uint8_t>(m.stage));
    out.push_back(m.passed ? 1 : 0);
    out.insert(out.end(), m.digest.begin(), m.digest.end());
  }
  out.insert(out.end(), pcr.begin(), pcr.end());
  return out;
}

util::Bytes AttestationEvidence::serialize() const {
  util::Bytes out = tbs();
  const util::Bytes sig = signature.to_bytes();
  out.insert(out.end(), sig.begin(), sig.end());
  return out;
}

std::optional<AttestationEvidence> AttestationEvidence::parse(
    util::BytesView blob) {
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) { return pos + n <= blob.size(); };
  const auto u8 = [&]() { return blob[pos++]; };

  if (!need(6)) return std::nullopt;
  for (std::size_t i = 0; i < 4; ++i) {
    if (u8() != kEvidenceMagic[i]) return std::nullopt;
  }
  if (u8() != kVersion) return std::nullopt;

  AttestationEvidence ev;
  const std::size_t uid_len = u8();
  if (!need(uid_len)) return std::nullopt;
  ev.uid.assign(blob.begin() + pos, blob.begin() + pos + uid_len);
  pos += uid_len;

  if (!need(4 + 1 + 1 + 2)) return std::nullopt;
  ev.boot_count = util::load_be32(blob.data() + pos);
  pos += 4;
  ev.mode = u8();
  if (ev.mode > static_cast<std::uint8_t>(BootMode::kRecovery)) {
    return std::nullopt;
  }
  const std::uint8_t ok = u8();
  if (ok > 1) return std::nullopt;
  ev.measured_ok = ok == 1;
  const std::size_t nonce_len =
      (static_cast<std::size_t>(blob[pos]) << 8) | blob[pos + 1];
  pos += 2;
  if (!need(nonce_len)) return std::nullopt;
  ev.nonce.assign(blob.begin() + pos, blob.begin() + pos + nonce_len);
  pos += nonce_len;

  if (!need(1)) return std::nullopt;
  const std::size_t n_meas = u8();
  for (std::size_t i = 0; i < n_meas; ++i) {
    if (!need(1 + 1 + 32)) return std::nullopt;
    Measurement m;
    const std::uint8_t stage = u8();
    if (stage > static_cast<std::uint8_t>(BootStage::kApp)) return std::nullopt;
    m.stage = static_cast<BootStage>(stage);
    const std::uint8_t passed = u8();
    if (passed > 1) return std::nullopt;
    m.passed = passed == 1;
    std::copy(blob.begin() + pos, blob.begin() + pos + 32, m.digest.begin());
    pos += 32;
    ev.measurements.push_back(m);
  }

  if (!need(32)) return std::nullopt;
  std::copy(blob.begin() + pos, blob.begin() + pos + 32, ev.pcr.begin());
  pos += 32;

  if (!need(64)) return std::nullopt;
  const auto sig = crypto::EcdsaSignature::from_bytes(blob.subspan(pos, 64));
  if (!sig) return std::nullopt;
  ev.signature = *sig;
  pos += 64;

  if (pos != blob.size()) return std::nullopt;  // strict: no trailing bytes
  return ev;
}

bool verify_evidence(const AttestationEvidence& ev,
                     const crypto::EcdsaPublicKey& pub,
                     util::BytesView expected_nonce,
                     crypto::VerifyEngine* engine) {
  // Freshness: the nonce must be the verifier's own challenge.
  if (ev.nonce.size() != expected_nonce.size() ||
      !std::equal(ev.nonce.begin(), ev.nonce.end(), expected_nonce.begin())) {
    return false;
  }
  // Consistency: the claimed PCR must be what the claimed log replays to,
  // and a "measured ok" verdict must match the log's verdicts.
  if (MeasurementRegister::replay(ev.measurements) != ev.pcr) return false;
  bool all = !ev.measurements.empty();
  for (const Measurement& m : ev.measurements) all = all && m.passed;
  if (ev.measured_ok != all) return false;
  const util::Bytes tbs = ev.tbs();
  if (engine) return engine->verify(pub, tbs, ev.signature);
  return crypto::ecdsa_verify(pub, tbs, ev.signature);
}

std::string boot_sig_key(const crypto::Digest& image_digest) {
  return std::string(kKvSigPrefix) +
         util::to_hex(util::BytesView(image_digest.data(), image_digest.size()));
}

BootChain::BootChain(She& she, Flash& flash, crypto::CryptoService& service,
                     KvStore* provisioning, BootChainConfig cfg)
    : she_(she),
      flash_(flash),
      service_(service),
      kv_(provisioning),
      cfg_(std::move(cfg)),
      trace_("boot") {
  k_stage_ = trace_.kind("stage");
  k_fallback_ = trace_.kind("fallback");
  k_recovery_ = trace_.kind("recovery");
  k_measured_ = trace_.kind("measured");
  k_attest_ = trace_.kind("attest");
  k_hang_ = trace_.kind("hang");
}

void BootChain::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  k_stage_ = trace_.kind("stage");
  k_fallback_ = trace_.kind("fallback");
  k_recovery_ = trace_.kind("recovery");
  k_measured_ = trace_.kind("measured");
  k_attest_ = trace_.kind("attest");
  k_hang_ = trace_.kind("hang");
}

void BootChain::set_attestation_key(crypto::PartitionId partition,
                                    crypto::KeyHandle h) {
  attest_partition_ = partition;
  attest_key_ = h;
}

const util::Bytes* BootChain::kv_value(const std::string& key) const {
  return (kv_ && kv_->mounted()) ? kv_->get(key) : nullptr;
}

BootChain::Report BootChain::run(util::SimTime now) {
  Report rep;
  rep.boot_count = ++boot_count_;
  hung_ = false;
  mr_.reset();
  // Power-on: the service is sealed until this run's measurement verdict.
  service_.relock();

  // A hang leaves the chain wedged mid-stage: no measurement verdict is ever
  // delivered, the service stays sealed (everything locked), and hung() is
  // what safety::BootGuard's supervised heartbeat trips on.
  const auto hang = [&](BootStage st, int attempt) {
    if (!hook_ || !hook_(st, attempt)) return false;
    hung_ = true;
    rep.hung = true;
    rep.hung_stage = st;
    ASECK_TRACE(trace_, now, k_hang_,
                std::string(boot_stage_name(st)) + " attempt=" +
                    std::to_string(attempt));
    return true;
  };
  const auto trace_stage = [&](const StageRecord& sr) {
    ASECK_TRACE(trace_, now, k_stage_,
                std::string(boot_stage_name(sr.stage)) +
                    (sr.passed ? " pass" : " FAIL") +
                    " attempts=" + std::to_string(sr.attempts));
  };
  const auto finish = [&]() -> Report {
    rep.measured_ok = !rep.hung && mr_.all_passed();
    if (!rep.hung) {
      service_.on_measurement(rep.measured_ok);
      rep.keys_unlocked =
          service_.state() == crypto::CryptoService::State::kOperational;
      ASECK_TRACE(trace_, now, k_measured_,
                  std::string(rep.measured_ok ? "ok" : "FAIL") + " mode=" +
                      boot_mode_name(rep.mode) + " pcr=" +
                      util::to_hex(util::BytesView(mr_.pcr().data(), 8)));
    }
    last_ = rep;
    return rep;
  };
  const auto recovery = [&]() -> Report {
    // ROM-resident limp-home image: always bootable, never measured-ok.
    rep.recovery_used = true;
    rep.mode = BootMode::kRecovery;
    if (cfg_.recovery_image) {
      rep.boot_us += measure_latency_us(cfg_.recovery_image->code.size());
    }
    ASECK_TRACE(trace_, now, k_recovery_, "limp-home");
    return finish();
  };

  // --- stage 0: ROM measures the bootloader against the fused anchor ------
  StageRecord rom{BootStage::kRom, 0, false};
  const crypto::Digest bl_digest = crypto::sha256(cfg_.bootloader);
  for (int a = 0; a <= cfg_.stage_retries && !rom.passed; ++a) {
    ++rom.attempts;
    if (hang(BootStage::kRom, a)) {
      rep.stages.push_back(rom);
      last_ = rep;
      return rep;
    }
    rep.boot_us += measure_latency_us(cfg_.bootloader.size());
    rom.passed = !cfg_.bootloader.empty() && bl_digest == cfg_.rom_anchor;
  }
  rep.stages.push_back(rom);
  trace_stage(rom);
  mr_.extend({BootStage::kRom, rom.passed, bl_digest});
  if (!rom.passed) {
    // Untrusted bootloader: nothing further may execute; straight to the
    // ROM-resident recovery image (no SHE/app measurements are extended).
    return recovery();
  }

  // --- stage 1: SHE CMD_BOOT_MAC over the bootloader ----------------------
  // SHE semantics: a MAC mismatch does NOT halt boot — the chain continues
  // with boot-protected keys locked (she_.boot_ok() false => measurement
  // verdict false => service kFailedBoot).
  StageRecord mac{BootStage::kBootloader, 0, false};
  for (int a = 0; a <= cfg_.stage_retries && !mac.passed; ++a) {
    ++mac.attempts;
    if (hang(BootStage::kBootloader, a)) {
      rep.stages.push_back(mac);
      last_ = rep;
      return rep;
    }
    rep.boot_us += She::cmd_latency_us(cfg_.bootloader.size());
    mac.passed = she_.secure_boot(cfg_.bootloader);
  }
  rep.stages.push_back(mac);
  trace_stage(mac);
  mr_.extend({BootStage::kBootloader, mac.passed, bl_digest});

  // --- stage 2: app slot (flash recovery + signature verification) --------
  rep.flash = flash_.boot(now);
  rep.boot_us += rep.flash.scan_us;
  if (kv_) {
    rep.kv = kv_->mount();
    rep.boot_us += rep.kv.scan_us;
  }

  crypto::EcdsaPublicKey anchor = cfg_.app_anchor;
  bool have_anchor = cfg_.has_app_anchor;
  if (const util::Bytes* a = kv_value(kKvAppAnchorKey)) {
    if (const auto parsed = crypto::EcdsaPublicKey::from_bytes(*a)) {
      anchor = *parsed;
      have_anchor = true;
    }
  }

  // Verifies the currently-active image against the anchor, retrying per
  // config; a hang inside returns no verdict (caller checks hung_).
  const auto verify_active = [&](StageRecord* sr) {
    const FirmwareImage* img = flash_.active();
    if (!img || !have_anchor) {
      ++sr->attempts;
      return false;
    }
    const crypto::Digest d = img->digest();
    const util::Bytes* sig_bytes = kv_value(boot_sig_key(d));
    for (int a = 0; a <= cfg_.stage_retries; ++a) {
      ++sr->attempts;
      if (hang(BootStage::kApp, a)) return false;
      rep.boot_us += cfg_.sig_verify_us;
      if (!sig_bytes) continue;
      const auto sig = crypto::EcdsaSignature::from_bytes(*sig_bytes);
      if (sig && engine_.verify_digest(anchor, d, *sig)) return true;
    }
    return false;
  };

  StageRecord app{BootStage::kApp, 0, false};
  app.passed = verify_active(&app);
  if (hung_) {
    rep.stages.push_back(app);
    last_ = rep;
    return rep;
  }
  if (!app.passed && flash_.revert()) {
    // Preferred slot failed verification: deterministic fallback to the
    // other A/B slot (rollback floor still enforced by Flash::revert).
    rep.fallback_used = true;
    rep.flash = flash_.boot(now);  // re-scan into the surviving slot
    rep.boot_us += rep.flash.scan_us;
    ASECK_TRACE(trace_, now, k_fallback_,
                "slot=" + std::to_string(rep.flash.active_slot));
    app.passed = verify_active(&app);
    if (hung_) {
      rep.stages.push_back(app);
      last_ = rep;
      return rep;
    }
  }
  rep.stages.push_back(app);
  trace_stage(app);
  if (!app.passed) {
    mr_.extend({BootStage::kApp, false, crypto::Digest{}});
    return recovery();
  }
  mr_.extend({BootStage::kApp, true, flash_.active()->digest()});
  rep.mode = rep.fallback_used ? BootMode::kFallback : BootMode::kNormal;
  return finish();
}

std::optional<AttestationEvidence> BootChain::attest(
    util::BytesView nonce) const {
  if (boot_count_ == 0 || last_.hung) return std::nullopt;
  AttestationEvidence ev;
  ev.uid = she_.uid();
  ev.boot_count = boot_count_;
  ev.mode = static_cast<std::uint8_t>(last_.mode);
  ev.measured_ok = last_.measured_ok;
  ev.nonce.assign(nonce.begin(), nonce.end());
  ev.measurements = mr_.log();
  ev.pcr = mr_.pcr();
  // The attestation key is deliberately NOT boot-protected: reporting a
  // failed measurement is the whole point of attestation.
  const auto st = service_.sign(attest_partition_, attest_key_, ev.tbs(),
                                &ev.signature);
  if (st != crypto::ServiceStatus::kOk) return std::nullopt;
  ASECK_TRACE(trace_, util::SimTime::zero(), k_attest_,
              std::string("mode=") +
                  boot_mode_name(static_cast<BootMode>(ev.mode)) +
                  (ev.measured_ok ? " ok" : " FAIL"));
  return ev;
}

}  // namespace aseck::ecu
