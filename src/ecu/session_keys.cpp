#include "ecu/session_keys.hpp"

#include "crypto/cmac.hpp"

namespace aseck::ecu {

util::Bytes SessionKeyWrap::mac_input() const {
  util::Bytes in(ecu_name.begin(), ecu_name.end());
  in.push_back(0);
  util::append_be(in, epoch, 4);
  in.insert(in.end(), wrapped_key.begin(), wrapped_key.end());
  return in;
}

void SessionKeyMaster::register_ecu(const std::string& name,
                                    const crypto::Block& enc_key,
                                    const crypto::Block& mac_key) {
  ecus_[name] = EcuKeys{enc_key, mac_key};
}

std::vector<SessionKeyWrap> SessionKeyMaster::rotate() {
  ++epoch_;
  rng_.generate(session_key_.data(), session_key_.size());
  std::vector<SessionKeyWrap> out;
  out.reserve(ecus_.size());
  for (const auto& [name, keys] : ecus_) {
    SessionKeyWrap w;
    w.ecu_name = name;
    w.epoch = epoch_;
    const crypto::Block ct = crypto::Aes(util::BytesView(keys.enc.data(), 16))
                                 .encrypt(session_key_);
    w.wrapped_key.assign(ct.begin(), ct.end());
    const crypto::Block tag = crypto::aes_cmac(
        util::BytesView(keys.mac.data(), 16), w.mac_input());
    w.mac.assign(tag.begin(), tag.end());
    out.push_back(std::move(w));
  }
  return out;
}

SessionKeyClient::Result SessionKeyClient::install(const SessionKeyWrap& wrap) {
  if (wrap.ecu_name != name_) return Result::kWrongEcu;
  if (wrap.epoch <= epoch_) return Result::kReplayedEpoch;
  bool mac_ok = false;
  if (she_.verify_mac(mac_slot_, wrap.mac_input(), wrap.mac, &mac_ok) !=
          SheError::kNoError ||
      !mac_ok) {
    return mac_ok ? Result::kSheError : Result::kBadMac;
  }
  if (wrap.wrapped_key.size() != 16) return Result::kBadMac;
  crypto::Block ct;
  std::copy(wrap.wrapped_key.begin(), wrap.wrapped_key.end(), ct.begin());
  crypto::Block sk;
  if (she_.dec_ecb(enc_slot_, ct, &sk) != SheError::kNoError) {
    return Result::kSheError;
  }
  if (she_.load_plain_key(sk) != SheError::kNoError) return Result::kSheError;
  epoch_ = wrap.epoch;
  return Result::kInstalled;
}

const char* SessionKeyClient::result_name(Result r) {
  switch (r) {
    case Result::kInstalled: return "installed";
    case Result::kWrongEcu: return "wrong_ecu";
    case Result::kBadMac: return "bad_mac";
    case Result::kReplayedEpoch: return "replayed_epoch";
    case Result::kSheError: return "she_error";
  }
  return "?";
}

}  // namespace aseck::ecu
