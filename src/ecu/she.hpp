#pragma once
// Secure Hardware Extension (SHE) module model, following the SHE functional
// specification: fixed key slots with usage/protection flags, the M1/M2/M3
// memory-update protocol (with M4/M5 verification messages), secure boot via
// BOOT_MAC, a RAM key, and a PRNG. This is the "Secure Processing" layer
// primitive of the paper's 4+1 architecture.
//
// The model is functional (no cycle-accurate datapath); command latencies are
// exposed so ECU-level simulations can account for crypto time.

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/aes.hpp"
#include "crypto/cmac.hpp"
#include "crypto/drbg.hpp"
#include "util/bytes.hpp"

namespace aseck::ecu {

using crypto::Block;

/// SHE key slot identifiers.
enum class SheSlot : std::uint8_t {
  kSecretKey = 0x0,     // device-unique, never updatable in field
  kMasterEcuKey = 0x1,  // authorizes updates of other slots
  kBootMacKey = 0x2,
  kBootMac = 0x3,
  kKey1 = 0x4,
  kKey2 = 0x5,
  kKey3 = 0x6,
  kKey4 = 0x7,
  kKey5 = 0x8,
  kKey6 = 0x9,
  kKey7 = 0xA,
  kKey8 = 0xB,
  kKey9 = 0xC,
  kKey10 = 0xD,
  kRamKey = 0xE,
};

/// Per-key protection flags (SHE FID bits).
struct SheKeyFlags {
  bool write_protection = false;   // slot becomes immutable
  bool boot_protection = false;    // unusable until secure boot passes
  bool debugger_protection = false;  // unusable when debugger attached
  bool key_usage_mac = false;      // true: CMAC only; false: encryption only
  bool wildcard_forbidden = false; // UID wildcard updates rejected
};

/// SHE error codes (subset).
enum class SheError {
  kNoError,
  kSequenceError,
  kKeyNotAvailable,   // empty slot or boot/debug protected
  kKeyInvalid,        // usage violation
  kKeyEmpty,
  kKeyUpdateError,    // M3 verification failed
  kKeyWriteProtected,
  kMemoryFailure,
  kRngSeedError,
};

/// Result of the memory-update protocol: verification messages M4/M5.
struct SheUpdateProof {
  util::Bytes m4;  // 32 bytes
  util::Bytes m5;  // 16 bytes
};

class She {
 public:
  /// `uid` is the 120-bit device unique id (15 bytes).
  She(util::Bytes uid, std::uint64_t prng_seed);

  const util::Bytes& uid() const { return uid_; }

  // --- provisioning (factory only; bypasses the update protocol) ----------
  /// Loads a key directly. Fails if the slot is write-protected.
  SheError provision_key(SheSlot slot, const Block& key, SheKeyFlags flags);

  // --- memory update protocol (SHE spec 9.1) ------------------------------
  /// Builds M1..M3 for updating `target` with `new_key`, authorized by the
  /// key in `auth` (typically MASTER_ECU_KEY or the slot itself). This is
  /// the *sender* side (e.g. OEM backend) and therefore a static helper
  /// taking the auth key value explicitly.
  struct UpdateMessages {
    util::Bytes m1, m2, m3;  // 16, 32, 16 bytes
  };
  static UpdateMessages build_update(const util::Bytes& uid, SheSlot target,
                                     SheSlot auth, const Block& auth_key,
                                     const Block& new_key,
                                     std::uint32_t new_counter,
                                     SheKeyFlags flags);

  /// Device-side CMD_LOAD_KEY: verifies and applies M1..M3; on success
  /// returns M4/M5 proof. Enforces counter monotonicity and write protection.
  std::optional<SheUpdateProof> load_key(const UpdateMessages& msgs,
                                         SheError* err = nullptr);

  /// CMD_LOAD_PLAIN_KEY: loads the RAM key in plaintext (no protection).
  SheError load_plain_key(const Block& key);

  // --- crypto commands -----------------------------------------------------
  SheError enc_ecb(SheSlot slot, const Block& plain, Block* cipher) const;
  SheError dec_ecb(SheSlot slot, const Block& cipher, Block* plain) const;
  SheError enc_cbc(SheSlot slot, const Block& iv, util::BytesView plain,
                   util::Bytes* cipher) const;
  SheError generate_mac(SheSlot slot, util::BytesView msg, Block* mac) const;
  SheError verify_mac(SheSlot slot, util::BytesView msg, util::BytesView mac,
                      bool* ok) const;

  /// CMD_RND: PRNG output (model of the TRNG-seeded PRNG).
  Block rnd();

  // --- secure boot ----------------------------------------------------------
  /// CMD_BOOT_MAC: verifies `bootloader` against the stored BOOT_MAC using
  /// BOOT_MAC_KEY. Sets the boot-ok status; boot-protected keys unlock only
  /// if verification succeeds. A zero-length bootloader is rejected loudly
  /// (kSequenceError in last_boot_error()): CMACing an empty image would
  /// happily "verify" a device whose boot flash read back blank.
  bool secure_boot(util::BytesView bootloader);
  bool boot_ok() const { return boot_ok_; }
  bool boot_finished() const { return boot_finished_; }
  /// Why the last secure_boot failed (kNoError after a passing one):
  /// kSequenceError = empty bootloader, kKeyEmpty = missing boot keys,
  /// kKeyUpdateError = MAC mismatch.
  SheError last_boot_error() const { return last_boot_error_; }
  /// Computes and stores BOOT_MAC for `bootloader` (provisioning; requires
  /// BOOT_MAC slot writable). Rejects an empty bootloader (kSequenceError) —
  /// provisioning a MAC over nothing would wedge every later secure_boot.
  SheError autonomous_bootstrap(util::BytesView bootloader);

  // --- debugger / tamper -----------------------------------------------------
  /// CMD_DEBUG: attaching a debugger wipes all keys whose
  /// debugger_protection flag is set (SHE semantics: internal debugger entry
  /// requires key erasure).
  void attach_debugger();
  bool debugger_attached() const { return debugger_; }

  /// True if the slot currently holds a key.
  bool has_key(SheSlot slot) const;
  std::uint32_t counter(SheSlot slot) const;
  SheKeyFlags flags(SheSlot slot) const;

  /// Command latency model (microseconds) used by ECU simulations.
  static double cmd_latency_us(std::size_t data_bytes);

 private:
  struct KeySlotState {
    Block key{};
    SheKeyFlags flags;
    std::uint32_t counter = 0;  // 28-bit in spec
    bool present = false;
  };

  KeySlotState& slot_ref(SheSlot s) { return slots_[static_cast<std::size_t>(s)]; }
  const KeySlotState& slot_ref(SheSlot s) const {
    return slots_[static_cast<std::size_t>(s)];
  }
  /// Checks availability for use with the given usage (mac vs enc).
  SheError usable(SheSlot slot, bool for_mac) const;

  util::Bytes uid_;
  std::array<KeySlotState, 15> slots_{};
  crypto::Drbg prng_;
  bool boot_ok_ = false;
  bool boot_finished_ = false;
  SheError last_boot_error_ = SheError::kNoError;
  bool debugger_ = false;
};

}  // namespace aseck::ecu
