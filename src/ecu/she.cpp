#include "ecu/she.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "crypto/kdf.hpp"

namespace aseck::ecu {

namespace {

using crypto::she_kdf;

std::uint8_t pack_flags(const SheKeyFlags& f) {
  return static_cast<std::uint8_t>(
      (f.write_protection << 4) | (f.boot_protection << 3) |
      (f.debugger_protection << 2) | (f.key_usage_mac << 1) |
      (f.wildcard_forbidden << 0));
}

SheKeyFlags unpack_flags(std::uint8_t v) {
  SheKeyFlags f;
  f.write_protection = (v >> 4) & 1;
  f.boot_protection = (v >> 3) & 1;
  f.debugger_protection = (v >> 2) & 1;
  f.key_usage_mac = (v >> 1) & 1;
  f.wildcard_forbidden = (v >> 0) & 1;
  return f;
}

bool auth_allowed(SheSlot target, SheSlot auth) {
  if (target == SheSlot::kSecretKey) return false;  // never updatable
  if (target == SheSlot::kRamKey) return auth == SheSlot::kSecretKey;
  return auth == SheSlot::kMasterEcuKey || auth == target;
}

}  // namespace

She::She(util::Bytes uid, std::uint64_t prng_seed)
    : uid_(std::move(uid)), prng_(prng_seed) {
  if (uid_.size() != 15) {
    throw std::invalid_argument("She: UID must be 120 bits (15 bytes)");
  }
}

SheError She::provision_key(SheSlot slot, const Block& key, SheKeyFlags flags) {
  KeySlotState& st = slot_ref(slot);
  if (st.present && st.flags.write_protection) return SheError::kKeyWriteProtected;
  st.key = key;
  st.flags = flags;
  st.counter = 0;
  st.present = true;
  return SheError::kNoError;
}

She::UpdateMessages She::build_update(const util::Bytes& uid, SheSlot target,
                                      SheSlot auth, const Block& auth_key,
                                      const Block& new_key,
                                      std::uint32_t new_counter,
                                      SheKeyFlags flags) {
  if (uid.size() != 15) throw std::invalid_argument("build_update: bad UID");
  if (!auth_allowed(target, auth)) {
    throw std::invalid_argument("build_update: illegal auth slot for target");
  }
  const Block k1 = she_kdf(auth_key, crypto::she_key_update_enc_c());
  const Block k2 = she_kdf(auth_key, crypto::she_key_update_mac_c());

  UpdateMessages out;
  // M1 = UID | ID(4) | AuthID(4)
  out.m1 = uid;
  out.m1.push_back(static_cast<std::uint8_t>(
      (static_cast<unsigned>(target) << 4) | static_cast<unsigned>(auth)));

  // M2 plaintext block 1: counter(28) | flags(5) | zeros(95); block 2: key.
  util::Bytes m2_plain(32, 0);
  const std::uint64_t hi = (static_cast<std::uint64_t>(new_counter & 0x0fffffff)
                            << 36) |
                           (static_cast<std::uint64_t>(pack_flags(flags)) << 31);
  util::store_be64(m2_plain.data(), hi);
  std::memcpy(m2_plain.data() + 16, new_key.data(), 16);
  // ENC_CBC with IV = 0, no padding (exact two blocks).
  const crypto::Aes aes_k1(util::BytesView(k1.data(), k1.size()));
  Block iv{};
  Block prev = iv;
  out.m2.resize(32);
  for (int b = 0; b < 2; ++b) {
    Block x;
    for (int i = 0; i < 16; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
          m2_plain[static_cast<std::size_t>(16 * b + i)] ^
          prev[static_cast<std::size_t>(i)]);
    }
    const Block c = aes_k1.encrypt(x);
    std::memcpy(out.m2.data() + 16 * b, c.data(), 16);
    prev = c;
  }

  // M3 = CMAC(K2, M1 | M2)
  const Block m3 = crypto::aes_cmac(util::BytesView(k2.data(), k2.size()),
                                    util::concat({out.m1, out.m2}));
  out.m3.assign(m3.begin(), m3.end());
  return out;
}

std::optional<SheUpdateProof> She::load_key(const UpdateMessages& msgs,
                                            SheError* err) {
  auto fail = [&](SheError e) {
    if (err) *err = e;
    return std::nullopt;
  };
  if (msgs.m1.size() != 16 || msgs.m2.size() != 32 || msgs.m3.size() != 16) {
    return fail(SheError::kSequenceError);
  }
  // Parse M1.
  const util::Bytes m1_uid(msgs.m1.begin(), msgs.m1.begin() + 15);
  const auto target = static_cast<SheSlot>(msgs.m1[15] >> 4);
  const auto auth = static_cast<SheSlot>(msgs.m1[15] & 0x0f);
  if (static_cast<unsigned>(target) > 14 || static_cast<unsigned>(auth) > 14) {
    return fail(SheError::kSequenceError);
  }
  if (!auth_allowed(target, auth)) return fail(SheError::kKeyInvalid);

  KeySlotState& tgt = slot_ref(target);
  if (tgt.present && tgt.flags.write_protection) {
    return fail(SheError::kKeyWriteProtected);
  }
  const bool wildcard = std::all_of(m1_uid.begin(), m1_uid.end(),
                                    [](std::uint8_t b) { return b == 0; });
  if (wildcard && tgt.present && tgt.flags.wildcard_forbidden) {
    return fail(SheError::kKeyUpdateError);
  }
  if (!wildcard && m1_uid != uid_) return fail(SheError::kKeyUpdateError);

  const KeySlotState& auth_st = slot_ref(auth);
  if (!auth_st.present) return fail(SheError::kKeyEmpty);

  // Verify M3 with K2 derived from the *device's* auth key.
  const Block k2 = she_kdf(auth_st.key, crypto::she_key_update_mac_c());
  const crypto::Cmac cmac_k2(util::BytesView(k2.data(), k2.size()));
  if (!cmac_k2.verify(util::concat({msgs.m1, msgs.m2}), msgs.m3)) {
    return fail(SheError::kKeyUpdateError);
  }

  // Decrypt M2.
  const Block k1 = she_kdf(auth_st.key, crypto::she_key_update_enc_c());
  const crypto::Aes aes_k1(util::BytesView(k1.data(), k1.size()));
  util::Bytes plain(32);
  Block prev{};  // IV = 0
  for (int b = 0; b < 2; ++b) {
    Block c;
    std::memcpy(c.data(), msgs.m2.data() + 16 * b, 16);
    const Block x = aes_k1.decrypt(c);
    for (int i = 0; i < 16; ++i) {
      plain[static_cast<std::size_t>(16 * b + i)] =
          static_cast<std::uint8_t>(x[static_cast<std::size_t>(i)] ^
                                    prev[static_cast<std::size_t>(i)]);
    }
    prev = c;
  }
  const std::uint64_t hi = util::load_be64(plain.data());
  const auto new_counter = static_cast<std::uint32_t>(hi >> 36);
  const SheKeyFlags new_flags =
      unpack_flags(static_cast<std::uint8_t>((hi >> 31) & 0x1f));
  Block new_key;
  std::memcpy(new_key.data(), plain.data() + 16, 16);

  // Rollback protection: counter must strictly increase (RAM key exempt).
  if (target != SheSlot::kRamKey && tgt.present && new_counter <= tgt.counter) {
    return fail(SheError::kKeyUpdateError);
  }

  tgt.key = new_key;
  tgt.flags = new_flags;
  tgt.counter = new_counter;
  tgt.present = true;

  // Build verification messages M4/M5 keyed by the *new* key.
  const Block k3 = she_kdf(new_key, crypto::she_key_update_enc_c());
  const Block k4 = she_kdf(new_key, crypto::she_key_update_mac_c());
  SheUpdateProof proof;
  proof.m4 = msgs.m1;  // UID | ID | AuthID
  Block m4_star_plain{};
  // counter(28) | "1" | zeros
  const std::uint64_t m4hi =
      (static_cast<std::uint64_t>(new_counter & 0x0fffffff) << 36) |
      (std::uint64_t{1} << 35);
  util::store_be64(m4_star_plain.data(), m4hi);
  const Block m4_star =
      crypto::Aes(util::BytesView(k3.data(), k3.size())).encrypt(m4_star_plain);
  proof.m4.insert(proof.m4.end(), m4_star.begin(), m4_star.end());
  const Block m5 = crypto::aes_cmac(util::BytesView(k4.data(), k4.size()), proof.m4);
  proof.m5.assign(m5.begin(), m5.end());
  if (err) *err = SheError::kNoError;
  return proof;
}

SheError She::load_plain_key(const Block& key) {
  KeySlotState& st = slot_ref(SheSlot::kRamKey);
  st.key = key;
  st.flags = SheKeyFlags{};  // plain-loaded RAM key has no protections
  st.present = true;
  return SheError::kNoError;
}

SheError She::usable(SheSlot slot, bool for_mac) const {
  const KeySlotState& st = slot_ref(slot);
  if (!st.present) return SheError::kKeyEmpty;
  if (st.flags.boot_protection && !boot_ok_) return SheError::kKeyNotAvailable;
  if (st.flags.debugger_protection && debugger_) return SheError::kKeyNotAvailable;
  // RAM key is usable for both; flagged slots enforce usage.
  if (slot != SheSlot::kRamKey && st.flags.key_usage_mac != for_mac) {
    return SheError::kKeyInvalid;
  }
  return SheError::kNoError;
}

SheError She::enc_ecb(SheSlot slot, const Block& plain, Block* cipher) const {
  const SheError e = usable(slot, /*for_mac=*/false);
  if (e != SheError::kNoError) return e;
  const KeySlotState& st = slot_ref(slot);
  *cipher = crypto::Aes(util::BytesView(st.key.data(), 16)).encrypt(plain);
  return SheError::kNoError;
}

SheError She::dec_ecb(SheSlot slot, const Block& cipher, Block* plain) const {
  const SheError e = usable(slot, /*for_mac=*/false);
  if (e != SheError::kNoError) return e;
  const KeySlotState& st = slot_ref(slot);
  *plain = crypto::Aes(util::BytesView(st.key.data(), 16)).decrypt(cipher);
  return SheError::kNoError;
}

SheError She::enc_cbc(SheSlot slot, const Block& iv, util::BytesView plain,
                      util::Bytes* cipher) const {
  const SheError e = usable(slot, /*for_mac=*/false);
  if (e != SheError::kNoError) return e;
  const KeySlotState& st = slot_ref(slot);
  *cipher = crypto::aes_cbc_encrypt(crypto::Aes(util::BytesView(st.key.data(), 16)),
                                    iv, plain);
  return SheError::kNoError;
}

SheError She::generate_mac(SheSlot slot, util::BytesView msg, Block* mac) const {
  const SheError e = usable(slot, /*for_mac=*/true);
  if (e != SheError::kNoError) return e;
  const KeySlotState& st = slot_ref(slot);
  *mac = crypto::aes_cmac(util::BytesView(st.key.data(), 16), msg);
  return SheError::kNoError;
}

SheError She::verify_mac(SheSlot slot, util::BytesView msg, util::BytesView mac,
                         bool* ok) const {
  const SheError e = usable(slot, /*for_mac=*/true);
  if (e != SheError::kNoError) return e;
  const KeySlotState& st = slot_ref(slot);
  *ok = crypto::Cmac(util::BytesView(st.key.data(), 16)).verify(msg, mac);
  return SheError::kNoError;
}

Block She::rnd() {
  Block out;
  prng_.generate(out.data(), out.size());
  return out;
}

bool She::secure_boot(util::BytesView bootloader) {
  boot_finished_ = true;
  // Reject a zero-length image outright: a blank boot flash must read as a
  // loud failure, not as a CMAC over the empty string that might even match
  // a carelessly-bootstrapped BOOT_MAC.
  if (bootloader.empty()) {
    boot_ok_ = false;
    last_boot_error_ = SheError::kSequenceError;
    return false;
  }
  const KeySlotState& key_st = slot_ref(SheSlot::kBootMacKey);
  const KeySlotState& mac_st = slot_ref(SheSlot::kBootMac);
  if (!key_st.present || !mac_st.present) {
    boot_ok_ = false;
    last_boot_error_ = SheError::kKeyEmpty;
    return false;
  }
  const Block mac =
      crypto::aes_cmac(util::BytesView(key_st.key.data(), 16), bootloader);
  boot_ok_ = util::ct_equal(util::BytesView(mac.data(), 16),
                            util::BytesView(mac_st.key.data(), 16));
  last_boot_error_ = boot_ok_ ? SheError::kNoError : SheError::kKeyUpdateError;
  return boot_ok_;
}

SheError She::autonomous_bootstrap(util::BytesView bootloader) {
  if (bootloader.empty()) return SheError::kSequenceError;
  const KeySlotState& key_st = slot_ref(SheSlot::kBootMacKey);
  if (!key_st.present) return SheError::kKeyEmpty;
  KeySlotState& mac_st = slot_ref(SheSlot::kBootMac);
  if (mac_st.present && mac_st.flags.write_protection) {
    return SheError::kKeyWriteProtected;
  }
  mac_st.key = crypto::aes_cmac(util::BytesView(key_st.key.data(), 16), bootloader);
  mac_st.present = true;
  return SheError::kNoError;
}

void She::attach_debugger() {
  debugger_ = true;
  for (auto& st : slots_) {
    if (st.present && st.flags.debugger_protection) {
      st = KeySlotState{};  // key erased on debug entry
    }
  }
}

bool She::has_key(SheSlot slot) const { return slot_ref(slot).present; }
std::uint32_t She::counter(SheSlot slot) const { return slot_ref(slot).counter; }
SheKeyFlags She::flags(SheSlot slot) const { return slot_ref(slot).flags; }

double She::cmd_latency_us(std::size_t data_bytes) {
  // Command setup ~8us + ~1.2us per 16-byte block (SHE-class AES engine).
  return 8.0 + 1.2 * static_cast<double>((data_bytes + 15) / 16);
}

}  // namespace aseck::ecu
