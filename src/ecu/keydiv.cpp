#include "ecu/keydiv.hpp"

namespace aseck::ecu {

crypto::Block derive_vehicle_key(const crypto::Block& fleet_master,
                                 util::BytesView uid,
                                 std::string_view purpose) {
  // MP-compress(master || uid || purpose) with SHE padding: binds both the
  // device identity and the key's role.
  util::Bytes msg(fleet_master.begin(), fleet_master.end());
  msg.insert(msg.end(), uid.begin(), uid.end());
  msg.insert(msg.end(), purpose.begin(), purpose.end());
  return crypto::mp_compress(msg, /*she_padding=*/true);
}

void provision_diversified(Ecu& ecu, const crypto::Block& fleet_master,
                           FirmwareImage fw) {
  const util::Bytes& uid = ecu.she().uid();
  ecu.provision(std::move(fw),
                derive_vehicle_key(fleet_master, uid, "master-ecu"),
                derive_vehicle_key(fleet_master, uid, "boot-mac"),
                derive_vehicle_key(fleet_master, uid, "secoc"));
}

}  // namespace aseck::ecu
