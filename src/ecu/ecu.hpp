#pragma once
// ECU model: a CAN-attached controller with SHE-backed secure boot, dual-bank
// flash, tamper monitoring, and hypervisor-style software partitions. This is
// the unit the gateway routes between, OTA updates, and attacks target.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/service.hpp"
#include "ecu/boot.hpp"
#include "ecu/flash.hpp"
#include "ecu/kvstore.hpp"
#include "ecu/she.hpp"
#include "ivn/can.hpp"
#include "ivn/secoc.hpp"

namespace aseck::ecu {

using ivn::CanBus;
using ivn::CanFrame;
using sim::Scheduler;
using sim::SimTime;

enum class EcuState {
  kOff,
  kOperational,
  kDegraded,   // secure boot failed or tamper detected: limp-home mode
};

/// Voltage/clock tamper monitor (the "tamper detection and resistance"
/// element of the Secure Processing layer).
struct TamperMonitor {
  double v_min = 4.5, v_max = 5.5;      // volts
  double clk_tolerance = 0.05;          // +-5% of nominal
  double clk_nominal_mhz = 100.0;
  bool tripped = false;

  /// Returns true if the sample violates the envelope (latches `tripped`).
  bool feed_voltage(double volts);
  bool feed_clock(double mhz);
};

/// Hypervisor-isolated software partition.
struct Partition {
  std::string name;
  bool compromised = false;
};

class Ecu : public ivn::CanNode {
 public:
  Ecu(Scheduler& sched, std::string name, std::uint64_t uid_seed);

  Scheduler& scheduler() { return sched_; }
  She& she() { return she_; }
  Flash& flash() { return flash_; }
  EcuState state() const { return state_; }
  TamperMonitor& tamper() { return tamper_; }
  /// Device-side PSA-style crypto service. Callers register partitions and
  /// import keys during provisioning, then seal(); the measured boot chain
  /// (install_boot_chain) delivers the unlock verdict on every boot.
  crypto::CryptoService& crypto_service() { return *crypto_; }
  /// Journaled provisioning store (trust anchors, image signatures,
  /// pseudonym/campaign config). Mounted by the boot chain.
  KvStore& kvstore() { return kv_; }

  /// Factory provisioning: installs firmware, boot-MAC, and a MAC key for
  /// SecOC traffic in KEY_1.
  void provision(FirmwareImage fw, const crypto::Block& master_key,
                 const crypto::Block& boot_mac_key,
                 const crypto::Block& secoc_key);

  /// Installs a measured boot chain over this ECU's SHE + flash + service +
  /// kvstore; subsequent boot() calls run the full chain (ROM -> boot MAC ->
  /// app signature) instead of the legacy bare SHE path.
  BootChain& install_boot_chain(BootChainConfig cfg);
  BootChain* boot_chain() { return chain_.get(); }

  /// Powers on: secure boot of the active firmware. Operational on success,
  /// degraded on failure (limp-home: only diagnostics traffic). With an
  /// installed boot chain, a normal/fallback measured boot is operational;
  /// recovery mode or a hung chain is degraded.
  EcuState boot();
  void power_off();

  /// Reports a tamper sample; a violation forces degraded mode and erases
  /// debugger-protected keys (zeroization).
  void report_voltage(double volts);
  void report_clock(double mhz);

  // --- partitions -----------------------------------------------------------
  /// Adds a software partition; returns its index.
  std::size_t add_partition(std::string name);
  /// Marks a partition compromised (attack outcome).
  void compromise_partition(std::size_t idx);
  /// With hypervisor isolation on (default), a compromised partition cannot
  /// reach others; with it off, compromise spreads to all partitions.
  void set_isolation(bool on) { isolation_ = on; }
  bool isolation() const { return isolation_; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  /// True if any partition is compromised.
  bool any_compromised() const;

  // --- CAN messaging ---------------------------------------------------------
  /// Attaches to a bus (an ECU joins exactly one bus; gateways use multiple
  /// adapters instead).
  void attach_to(CanBus* bus);
  CanBus* bus() const { return bus_; }

  using FrameHandler = std::function<void(const CanFrame&, SimTime)>;
  /// Registers a handler for a CAN id.
  void subscribe(std::uint32_t can_id, FrameHandler handler);

  /// Sends a raw frame (drops silently when degraded unless diag id >= 0x700).
  bool send_frame(std::uint32_t can_id, util::Bytes payload);

  /// Sends a SecOC-protected frame using KEY_1 via the given channel/data-id.
  bool send_secured(const ivn::SecOcChannel& ch, std::uint16_t data_id,
                    std::uint32_t can_id, util::BytesView payload);
  /// Verifies a received secured payload.
  ivn::SecOcChannel::VerifyResult verify_secured(const ivn::SecOcChannel& ch,
                                                 std::uint16_t data_id,
                                                 util::BytesView secured);

  // CanNode interface.
  void on_frame(const CanFrame& frame, SimTime at) override;

  std::uint64_t frames_received() const { return frames_received_; }

 private:
  Scheduler& sched_;
  She she_;
  Flash flash_;
  KvStore kv_;
  std::unique_ptr<crypto::CryptoService> crypto_;  // stable address (mutex)
  std::unique_ptr<BootChain> chain_;
  EcuState state_ = EcuState::kOff;
  TamperMonitor tamper_;
  bool isolation_ = true;
  std::vector<Partition> partitions_;
  CanBus* bus_ = nullptr;
  std::multimap<std::uint32_t, FrameHandler> handlers_;
  ivn::FreshnessManager freshness_;
  std::uint64_t frames_received_ = 0;
};

}  // namespace aseck::ecu
