#pragma once
// Journaled, power-loss-atomic key-value provisioning store (ROADMAP O4) —
// the device half of the TF-M reference's kvstore-backed provisioning:
// pseudonym pool indices, trust anchors, boot-image signatures, campaign
// config all live here, and fleet campaigns update them *transactionally*.
//
// The store is modeled the way production flash KV stores (TF-M ITS,
// Zephyr NVS, mbed KVStore) actually survive power cuts:
//
//   * the log is append-only records [type | txn | key | value | crc32];
//     every record append is ONE injectable write op (the same
//     sim::FaultPort/FaultKind::kPowerLoss contract as ecu::Flash), and a
//     cut mid-append leaves a *detectably torn* record (prefix only, CRC
//     never programmed);
//   * multi-key writes are transactions: kPut/kErase records carry a txn id
//     and take effect only when the txn's kCommit record lands intact —
//     mount() discards torn tails and uncommitted staging, so a cut at ANY
//     write index yields either the whole transaction or none of it;
//   * compaction is dual-region: live pairs are rewritten into the other
//     region and a monotonic epoch header flips atomically (same dual-copy
//     semantics as Flash headers); a cut anywhere mid-compaction leaves the
//     old region's epoch highest-valid, losing nothing.
//
// Everything is deterministic: mount scan latency is a pure function of the
// records scanned, iteration orders come from std::map, and to_json() has
// no wall-clock content — the E23 power-cut sweep diffs byte-for-byte.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/faultplan.hpp"
#include "util/bytes.hpp"

namespace aseck::ecu {

/// A multi-key atomic write set, built by the caller and committed as one
/// transaction. Order is preserved (later ops win on duplicate keys).
class KvTransaction {
 public:
  void put(std::string key, util::Bytes value) {
    ops_.push_back({std::move(key), std::move(value), false});
  }
  void erase(std::string key) {
    ops_.push_back({std::move(key), {}, true});
  }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  struct Op {
    std::string key;
    util::Bytes value;
    bool is_erase = false;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

class KvStore {
 public:
  /// Compaction trigger: live-log records above this start a rewrite.
  static constexpr std::size_t kDefaultCompactionThreshold = 256;

  /// What mount-time recovery found and did.
  struct MountReport {
    bool mounted = false;
    int region = -1;                 // region selected (highest valid epoch)
    std::uint64_t epoch = 0;
    std::uint64_t records_replayed = 0;
    std::uint64_t torn_records_discarded = 0;
    std::uint64_t uncommitted_discarded = 0;  // staged ops of unfinished txns
    std::uint64_t live_keys = 0;
    double scan_us = 0.0;            // modeled recovery latency
  };

  KvStore();

  // --- power-loss modeling ---------------------------------------------------
  /// FaultKind::kPowerLoss windows cut power during record/header writes
  /// (exact write index or per-write probability). A Flash and a KvStore may
  /// share one port so a single cut index sweeps the whole boot+config path.
  void set_fault_port(sim::FaultPort* port) { fault_port_ = port; }
  /// True after an injected cut until mount() runs; writes fail meanwhile.
  bool lost_power() const { return lost_power_; }

  /// Mount-time recovery scan: picks the live region, discards torn tails
  /// and uncommitted transactions, replays committed records. Idempotent.
  MountReport mount();
  bool mounted() const { return mounted_; }

  // --- reads (mounted only) --------------------------------------------------
  const util::Bytes* get(const std::string& key) const;
  bool contains(const std::string& key) const { return get(key) != nullptr; }
  std::size_t size() const { return mounted_ ? live_.size() : 0; }
  /// Sorted key list (deterministic).
  std::vector<std::string> keys() const;

  // --- writes ----------------------------------------------------------------
  /// Single-key convenience transactions.
  bool put(const std::string& key, util::Bytes value);
  bool erase(const std::string& key);
  /// All-or-nothing multi-key commit. False when unmounted, empty, or a
  /// power cut interrupts it — in which case NOTHING is visible, now or
  /// after the next mount().
  bool commit(const KvTransaction& txn);

  // --- observation -----------------------------------------------------------
  std::size_t log_records() const;
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t epoch() const { return regions_[live_region_].epoch; }
  void set_compaction_threshold(std::size_t records) {
    compaction_threshold_ = records;
  }
  /// Mount recovery latency model: epoch-header reads + per-record scan.
  static double scan_latency_us(std::size_t records) {
    return 10.0 + 2.0 * static_cast<double>(records);
  }
  /// Deterministic content digest-ish export: sorted keys with value hex.
  std::string to_json() const;

 private:
  enum class RecordType : std::uint8_t { kPut = 1, kErase = 2, kCommit = 3 };
  struct Record {
    RecordType type = RecordType::kPut;
    std::uint32_t txn = 0;
    std::string key;
    util::Bytes value;
    std::uint32_t crc = 0;
    bool torn = false;  // cut mid-append: prefix only, CRC never programmed
  };
  struct Region {
    std::uint64_t epoch = 0;
    bool epoch_valid = false;
    std::vector<Record> records;
  };

  static util::Bytes serialize_record(const Record& r);
  bool consume_power();  // one write op; true = the cut hits now
  /// Appends one record to the live region (one injectable write op).
  bool append(Record r);
  /// Rewrites live pairs into the other region and flips the epoch header.
  void compact();
  int other_region() const { return live_region_ == 0 ? 1 : 0; }

  Region regions_[2];
  int live_region_ = 0;
  std::map<std::string, util::Bytes> live_;
  std::uint32_t next_txn_ = 1;
  std::size_t compaction_threshold_ = kDefaultCompactionThreshold;
  std::uint64_t compactions_ = 0;
  bool mounted_ = false;
  bool lost_power_ = false;
  sim::FaultPort* fault_port_ = nullptr;
};

}  // namespace aseck::ecu
