#include "ecu/ecu.hpp"

#include <cmath>

namespace aseck::ecu {

namespace {
util::Bytes make_uid(std::uint64_t seed) {
  crypto::Drbg d(seed ^ 0x5ec01dULL);
  return d.bytes(15);
}
}  // namespace

bool TamperMonitor::feed_voltage(double volts) {
  if (volts < v_min || volts > v_max) {
    tripped = true;
    return true;
  }
  return false;
}

bool TamperMonitor::feed_clock(double mhz) {
  if (std::abs(mhz - clk_nominal_mhz) > clk_tolerance * clk_nominal_mhz) {
    tripped = true;
    return true;
  }
  return false;
}

Ecu::Ecu(Scheduler& sched, std::string name, std::uint64_t uid_seed)
    : ivn::CanNode(std::move(name)),
      sched_(sched),
      she_(make_uid(uid_seed), uid_seed ^ 0x9e3779b97f4a7c15ULL),
      crypto_(
          std::make_unique<crypto::CryptoService>(CanNode::name() + "-crypto")) {}

BootChain& Ecu::install_boot_chain(BootChainConfig cfg) {
  chain_ = std::make_unique<BootChain>(she_, flash_, *crypto_, &kv_,
                                       std::move(cfg));
  return *chain_;
}

void Ecu::provision(FirmwareImage fw, const crypto::Block& master_key,
                    const crypto::Block& boot_mac_key,
                    const crypto::Block& secoc_key) {
  flash_.provision(std::move(fw));
  she_.provision_key(SheSlot::kMasterEcuKey, master_key,
                     SheKeyFlags{.write_protection = false,
                                 .boot_protection = false,
                                 .debugger_protection = true,
                                 .key_usage_mac = false,
                                 .wildcard_forbidden = true});
  she_.provision_key(SheSlot::kBootMacKey, boot_mac_key,
                     SheKeyFlags{.write_protection = false,
                                 .boot_protection = false,
                                 .debugger_protection = true,
                                 .key_usage_mac = true,
                                 .wildcard_forbidden = true});
  she_.provision_key(SheSlot::kKey1, secoc_key,
                     SheKeyFlags{.write_protection = false,
                                 .boot_protection = true,
                                 .debugger_protection = true,
                                 .key_usage_mac = true,
                                 .wildcard_forbidden = true});
  she_.autonomous_bootstrap(flash_.active()->code);
}

EcuState Ecu::boot() {
  if (chain_) {
    const BootChain::Report rep = chain_->run(sched_.now());
    const bool up = !rep.hung && rep.measured_ok &&
                    (rep.mode == BootMode::kNormal ||
                     rep.mode == BootMode::kFallback);
    state_ = up ? EcuState::kOperational : EcuState::kDegraded;
    return state_;
  }
  const FirmwareImage* fw = flash_.active();
  if (!fw || !she_.secure_boot(fw->code)) {
    state_ = EcuState::kDegraded;
  } else {
    state_ = EcuState::kOperational;
  }
  return state_;
}

void Ecu::power_off() { state_ = EcuState::kOff; }

void Ecu::report_voltage(double volts) {
  if (tamper_.feed_voltage(volts)) {
    state_ = EcuState::kDegraded;
    she_.attach_debugger();  // zeroize debugger-protected keys
  }
}

void Ecu::report_clock(double mhz) {
  if (tamper_.feed_clock(mhz)) {
    state_ = EcuState::kDegraded;
    she_.attach_debugger();
  }
}

std::size_t Ecu::add_partition(std::string name) {
  partitions_.push_back(Partition{std::move(name), false});
  return partitions_.size() - 1;
}

void Ecu::compromise_partition(std::size_t idx) {
  partitions_.at(idx).compromised = true;
  if (!isolation_) {
    for (auto& p : partitions_) p.compromised = true;
  }
}

bool Ecu::any_compromised() const {
  for (const auto& p : partitions_) {
    if (p.compromised) return true;
  }
  return false;
}

void Ecu::attach_to(CanBus* bus) {
  bus_ = bus;
  bus->attach(this);
}

void Ecu::subscribe(std::uint32_t can_id, FrameHandler handler) {
  handlers_.emplace(can_id, std::move(handler));
}

bool Ecu::send_frame(std::uint32_t can_id, util::Bytes payload) {
  if (!bus_) return false;
  if (state_ == EcuState::kOff) return false;
  if (state_ == EcuState::kDegraded && can_id < 0x700) return false;
  CanFrame f;
  f.id = can_id;
  if (payload.size() > 8) {
    f.format = ivn::CanFormat::kFd;
    payload.resize(CanFrame::fd_round_up(payload.size()), 0);
  }
  f.data = std::move(payload);
  return bus_->send(this, std::move(f));
}

bool Ecu::send_secured(const ivn::SecOcChannel& ch, std::uint16_t data_id,
                       std::uint32_t can_id, util::BytesView payload) {
  // SecOC assumes a length-preserving transport, but CAN FD pads payloads up
  // to the next legal DLC size. A 1-byte length prefix (the AUTOSAR
  // dynamic-length PDU convention) lets the receiver strip that padding.
  const util::Bytes pdu = ch.protect(data_id, payload, freshness_);
  if (pdu.size() > 254) return false;
  util::Bytes framed;
  framed.reserve(1 + pdu.size());
  framed.push_back(static_cast<std::uint8_t>(pdu.size()));
  framed.insert(framed.end(), pdu.begin(), pdu.end());
  return send_frame(can_id, std::move(framed));
}

ivn::SecOcChannel::VerifyResult Ecu::verify_secured(const ivn::SecOcChannel& ch,
                                                    std::uint16_t data_id,
                                                    util::BytesView secured) {
  if (secured.empty() || secured.size() < 1u + secured[0]) {
    return {ivn::SecOcStatus::kTooShort, {}};
  }
  return ch.verify(data_id, secured.subspan(1, secured[0]), freshness_);
}

void Ecu::on_frame(const CanFrame& frame, SimTime at) {
  if (state_ != EcuState::kOperational && frame.id < 0x700) return;
  ++frames_received_;
  auto [lo, hi] = handlers_.equal_range(frame.id);
  for (auto it = lo; it != hi; ++it) it->second(frame, at);
}

}  // namespace aseck::ecu
