#pragma once
// Supervised boot: wires `ecu::BootChain` to a `safety::HealthSupervisor`
// entity so a hung boot stage escalates through the WdgM ladder instead of
// wedging the ECU (ISSUE E23 / paper §3+§7: safety mechanisms must cover the
// security plumbing too).
//
// Mirrors ota::ConfirmWatchdog's shape: a HeartbeatEmitter beats while the
// chain is healthy (`!chain.hung()`) and falls silent the moment a stage
// hangs; the supervisor's reset handler then re-runs the chain, which is
// exactly what a hardware watchdog reset does on a real ECU. Every
// detection, escalation, and re-boot lands on the shared TraceBus next to
// the chain's own stage events.

#include <cstdint>
#include <memory>
#include <string>

#include "ecu/boot.hpp"
#include "safety/supervisor.hpp"
#include "sim/scheduler.hpp"
#include "util/time.hpp"

namespace aseck::safety {

class BootGuard {
 public:
  /// Registers `entity` on `supervisor` (call before supervisor.start()).
  BootGuard(sim::Scheduler& sched, HealthSupervisor& supervisor,
            ecu::BootChain& chain, std::string entity,
            util::SimTime check_period);

  /// Starts the heartbeat (and the supervisor, if not yet running).
  void start();
  void stop();

  /// Chain re-runs performed by the supervisor's reset handler.
  std::uint64_t reboots() const { return reboots_; }
  /// Of those, how many produced a non-hung boot (any mode counts — a
  /// recovery-mode boot is a *successful* escalation outcome).
  std::uint64_t reboots_recovered() const { return reboots_recovered_; }
  const std::string& entity() const { return entity_; }

 private:
  sim::Scheduler& sched_;
  HealthSupervisor& supervisor_;
  ecu::BootChain& chain_;
  std::string entity_;
  std::unique_ptr<HeartbeatEmitter> heartbeat_;
  std::uint64_t reboots_ = 0;
  std::uint64_t reboots_recovered_ = 0;
};

}  // namespace aseck::safety
