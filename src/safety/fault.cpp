#include "safety/fault.hpp"

#include <algorithm>

namespace aseck::safety {

bool FunctionModel::operational(const std::set<std::string>& failed) const {
  // Redundancy groups: need one healthy member each.
  std::set<std::string> grouped;
  for (const auto& group : redundancy_groups) {
    bool any_alive = false;
    for (const auto& c : group) {
      grouped.insert(c);
      if (!failed.count(c)) {
        any_alive = true;
      }
    }
    if (!any_alive) return false;
  }
  // Simplex components: all must be healthy.
  for (const auto& c : components) {
    if (!grouped.count(c) && failed.count(c)) return false;
  }
  return true;
}

std::vector<std::string> single_points_of_failure(const FunctionModel& fn) {
  std::vector<std::string> spf;
  std::set<std::string> all(fn.components.begin(), fn.components.end());
  for (const auto& group : fn.redundancy_groups) {
    all.insert(group.begin(), group.end());
  }
  for (const auto& c : all) {
    if (!fn.operational({c})) spf.push_back(c);
  }
  std::sort(spf.begin(), spf.end());
  return spf;
}

namespace {

FaultCampaignResult run_campaign_impl(const std::vector<FunctionModel>& fns,
                                      double per_component_p,
                                      std::uint64_t trials, util::Rng& rng) {
  FaultCampaignResult result;
  result.trials = trials;

  // Collect the component universe.
  std::set<std::string> universe;
  for (const auto& fn : fns) {
    universe.insert(fn.components.begin(), fn.components.end());
    for (const auto& g : fn.redundancy_groups) universe.insert(g.begin(), g.end());
  }

  for (std::uint64_t t = 0; t < trials; ++t) {
    std::set<std::string> failed;
    for (const auto& c : universe) {
      if (rng.chance(per_component_p)) failed.insert(c);
    }
    if (failed.empty()) continue;
    for (const auto& fn : fns) {
      if (!fn.operational(failed)) ++result.function_failures[fn.name];
    }
  }
  return result;
}

}  // namespace

FaultCampaignResult run_fault_campaign(const std::vector<FunctionModel>& fns,
                                       double per_component_p,
                                       std::uint64_t trials,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  return run_campaign_impl(fns, per_component_p, trials, rng);
}

FaultCampaignResult run_fault_campaign(const std::vector<FunctionModel>& fns,
                                       double per_component_p,
                                       std::uint64_t trials,
                                       sim::FaultPlan& plan) {
  const FaultCampaignResult result =
      run_campaign_impl(fns, per_component_p, trials, plan.rng());
  std::uint64_t failures = 0;
  for (const auto& [fn, n] : result.function_failures) failures += n;
  ASECK_TRACE(plan.trace(), plan.now(), "campaign",
              "trials=" + std::to_string(trials) +
                  " failures=" + std::to_string(failures));
  return result;
}

}  // namespace aseck::safety
