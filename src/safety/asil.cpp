#include "safety/asil.hpp"

namespace aseck::safety {

const char* asil_name(Asil a) {
  switch (a) {
    case Asil::kQM: return "QM";
    case Asil::kA: return "A";
    case Asil::kB: return "B";
    case Asil::kC: return "C";
    case Asil::kD: return "D";
  }
  return "?";
}

Asil determine_asil(Severity s, Exposure e, Controllability c) {
  // ISO 26262-3: S0, E0, or C0 -> QM. Otherwise the standard's table is
  // equivalent to: level = S + E + C - 5 (with S in 1..3, E in 1..4,
  // C in 1..3), mapping 1->QM? No: <=2 -> QM? The canonical closed form:
  //   index = (S-1) + (E-1) + (C-1);  index 0..2 -> QM grows to D at 6.
  // Concretely: S3/E4/C3 = D, and each single-step reduction lowers one
  // ASIL level, bottoming out at QM.
  if (s == Severity::kS0 || e == Exposure::kE0 || c == Controllability::kC0) {
    return Asil::kQM;
  }
  const int si = static_cast<int>(s);        // 1..3
  const int ei = static_cast<int>(e);        // 1..4
  const int ci = static_cast<int>(c);        // 1..3
  const int level = si + ei + ci - 10 + 4;   // S3+E4+C3 -> 4 (= D)
  switch (level) {
    case 4: return Asil::kD;
    case 3: return Asil::kC;
    case 2: return Asil::kB;
    case 1: return Asil::kA;
    default: return Asil::kQM;
  }
}

std::vector<const Hazard*> HazardRegistry::for_function(
    const std::string& function) const {
  std::vector<const Hazard*> out;
  for (const auto& h : hazards_) {
    if (h.function == function) out.push_back(&h);
  }
  return out;
}

Asil HazardRegistry::function_asil(const std::string& function) const {
  Asil worst = Asil::kQM;
  for (const auto& h : hazards_) {
    if (h.function == function && static_cast<int>(h.asil()) > static_cast<int>(worst)) {
      worst = h.asil();
    }
  }
  return worst;
}

std::map<Asil, std::size_t> HazardRegistry::histogram() const {
  std::map<Asil, std::size_t> out;
  for (const auto& h : hazards_) ++out[h.asil()];
  return out;
}

std::vector<std::pair<std::string, Asil>> attack_criticality(
    const HazardRegistry& reg, const std::vector<SecuritySafetyLink>& links) {
  std::vector<std::pair<std::string, Asil>> out;
  for (const auto& link : links) {
    Asil a = Asil::kQM;
    for (const auto& h : reg.all()) {
      if (h.name == link.hazard_name) {
        a = h.asil();
        break;
      }
    }
    out.emplace_back(link.attack, a);
  }
  return out;
}

}  // namespace aseck::safety
