#pragma once
// Fault tolerance analysis: random fault injection into a component graph
// and single-point-of-failure (SPF) detection. Functional safety (ISO
// 26262) requires that no single random hardware fault disables a
// safety-critical function — the paper's "SPF is unacceptable" requirement.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/faultplan.hpp"
#include "util/rng.hpp"

namespace aseck::safety {

/// A vehicle function realized by components; the function survives as long
/// as, for every redundancy group, at least one member is healthy.
/// Components not in any group are simplex (their failure kills the
/// function).
struct FunctionModel {
  std::string name;
  std::vector<std::string> components;                  // all involved
  std::vector<std::set<std::string>> redundancy_groups; // each needs >=1 alive

  /// True if the function still operates given the failed set.
  bool operational(const std::set<std::string>& failed) const;
};

/// Finds all single points of failure of a function.
std::vector<std::string> single_points_of_failure(const FunctionModel& fn);

/// Monte-Carlo campaign results share the sim-layer schema so bus-level
/// fault sweeps (sim::FaultPlan) and ASIL component campaigns report through
/// one shape: trials + failures per named function.
using FaultCampaignResult = sim::FaultCampaignResult;

/// Each trial fails each component independently with `per_component_p` and
/// evaluates every function.
FaultCampaignResult run_fault_campaign(const std::vector<FunctionModel>& fns,
                                       double per_component_p,
                                       std::uint64_t trials,
                                       std::uint64_t seed);

/// Variant driven by a sim::FaultPlan: draws from the plan's single seeded
/// RNG stream (so the campaign is reproducible alongside the plan's bus
/// faults) and records a "campaign" event on the plan's trace timeline.
FaultCampaignResult run_fault_campaign(const std::vector<FunctionModel>& fns,
                                       double per_component_p,
                                       std::uint64_t trials,
                                       sim::FaultPlan& plan);

}  // namespace aseck::safety
