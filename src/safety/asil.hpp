#pragma once
// ISO 26262 hazard analysis and risk assessment (paper Section 3).
// ASIL = f(Severity, Exposure, Controllability) per the standard's table;
// the hazard registry ties vehicle functions to hazards, and the
// safety/security interplay maps attack outcomes onto hazards.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aseck::safety {

enum class Severity { kS0, kS1, kS2, kS3 };          // no injury .. fatal
enum class Exposure { kE0, kE1, kE2, kE3, kE4 };     // incredible .. high
enum class Controllability { kC0, kC1, kC2, kC3 };   // controllable .. not

enum class Asil { kQM, kA, kB, kC, kD };
const char* asil_name(Asil a);

/// ISO 26262-3 Table 4 determination.
Asil determine_asil(Severity s, Exposure e, Controllability c);

struct Hazard {
  std::string name;         // e.g. "unintended full braking at speed"
  std::string function;     // e.g. "brake-by-wire"
  Severity severity;
  Exposure exposure;
  Controllability controllability;

  Asil asil() const { return determine_asil(severity, exposure, controllability); }
};

class HazardRegistry {
 public:
  void add(Hazard h) { hazards_.push_back(std::move(h)); }
  const std::vector<Hazard>& all() const { return hazards_; }

  /// Hazards attached to a vehicle function.
  std::vector<const Hazard*> for_function(const std::string& function) const;
  /// Highest ASIL across a function's hazards (QM if none).
  Asil function_asil(const std::string& function) const;
  /// Count per ASIL level.
  std::map<Asil, std::size_t> histogram() const;

 private:
  std::vector<Hazard> hazards_;
};

/// A security attack outcome mapped to the hazard it can trigger: the
/// paper's point that an external hack "reduces functional safety to a
/// security issue".
struct SecuritySafetyLink {
  std::string attack;       // e.g. "CAN injection of brake command"
  std::string hazard_name;  // must exist in the registry
};

/// Returns, for each link, the ASIL of the hazard now reachable by a purely
/// electronic attack (the security-criticality of each attack surface).
std::vector<std::pair<std::string, Asil>> attack_criticality(
    const HazardRegistry& reg, const std::vector<SecuritySafetyLink>& links);

}  // namespace aseck::safety
