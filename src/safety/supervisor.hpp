#pragma once
// AUTOSAR-WdgM-style health supervision (paper §3: ISO 26262 safety
// mechanisms must coexist with security; §7: the assurance architecture
// needs faults *detected and isolated*, not just survived).
//
// One `HealthSupervisor` owns a set of supervised entities, each with its
// own reference cycle scheduled on `sim::Scheduler`. Three supervision
// functions, mirroring WdgM:
//
//   * alive supervision     — counted alive indications (`alive()`) per
//                             reference cycle must land in
//                             [expected - min_margin, expected + max_margin];
//   * deadline supervision  — `deadline_start()`/`deadline_end()` pairs must
//                             complete within [min, max];
//   * logical supervision   — `checkpoint(id)` sequences must follow the
//                             registered transition graph.
//
// Per-entity state machine: kOk -> kFailed (violating cycles within the
// tolerance) -> kExpired (tolerance exhausted). Expiry starts the escalation
// ladder: local watchdog reset attempts with bounded exponential backoff
// (restart-storm protection) -> domain degradation (wired to the gateway's
// degraded-mode policy or a RedundantGateway failover) -> limp-home. A
// successful reset ends the incident and steps everything back to kOk.
//
// Every transition, reset attempt, and escalation is emitted on the shared
// TraceBus, so `fault inject -> missed heartbeat -> expired -> failover ->
// reset_ok` reads as one causal chain next to the chaos plane's own events,
// and detection latency (last good alive indication -> expiry) lands in a
// registry histogram. `HeartbeatEmitter` is the producer-side helper: a
// periodic scheduler task that emits alive indications while its health
// probe holds, which is how a `sim::FaultPlan` ECU-crash window turns into
// missed heartbeats without the supervisor knowing about fault ports.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace aseck::safety {

using sim::Scheduler;
using sim::SimTime;

/// WdgM local supervision status of one entity.
enum class EntityStatus { kOk, kFailed, kExpired };
const char* entity_status_name(EntityStatus s);

/// Escalation ladder rung currently applied for an entity (kNone = healthy).
enum class EscalationLevel { kNone, kLocalReset, kDomainDegrade, kLimpHome };
const char* escalation_level_name(EscalationLevel l);

/// Alive-supervision parameters for one entity.
struct AliveSupervision {
  /// Reference cycle: the window over which indications are counted.
  SimTime period = SimTime::from_ms(100);
  std::uint32_t expected = 1;    // indications per cycle
  std::uint32_t min_margin = 0;  // tolerate expected - min_margin
  std::uint32_t max_margin = 0;  // tolerate expected + max_margin
};

/// Deadline-supervision parameters (checkpoint start -> end).
struct DeadlineSupervision {
  SimTime min = SimTime::zero();
  SimTime max = SimTime::from_ms(10);
};

/// Escalation policy for one entity.
struct EscalationPolicy {
  /// Consecutive FAILED cycles tolerated before the entity expires.
  std::uint32_t failed_tolerance = 1;
  /// Reset attempts before escalating one ladder rung (restart-storm bound).
  std::uint32_t max_resets = 3;
  SimTime reset_backoff = SimTime::from_ms(10);  // delay before first retry
  double backoff_multiplier = 2.0;
  SimTime max_backoff = SimTime::from_s(1);
  /// Domain handed to the degrade handler at kDomainDegrade/kLimpHome
  /// (empty = skip those rungs; the ladder stays at kLocalReset).
  std::string domain;
};

class HealthSupervisor {
 public:
  HealthSupervisor(Scheduler& sched, std::string name);
  ~HealthSupervisor();
  HealthSupervisor(const HealthSupervisor&) = delete;
  HealthSupervisor& operator=(const HealthSupervisor&) = delete;

  // --- registration (before start()) ----------------------------------------
  void supervise_alive(const std::string& entity, AliveSupervision cfg,
                       EscalationPolicy esc = {});
  /// Adds deadline supervision to an already-registered entity.
  void set_deadline(const std::string& entity, DeadlineSupervision cfg);
  /// Adds an allowed logical transition `from -> to` to a registered entity.
  /// The first checkpoint of a cycle is unconstrained.
  void add_logical_transition(const std::string& entity, std::uint32_t from,
                              std::uint32_t to);

  // --- runtime indications ---------------------------------------------------
  void alive(const std::string& entity);
  void deadline_start(const std::string& entity);
  void deadline_end(const std::string& entity);
  void checkpoint(const std::string& entity, std::uint32_t cp);

  // --- escalation wiring -----------------------------------------------------
  /// Attempts to reset/restart the entity; returns true when the component
  /// is back up (the supervisor then re-arms it as kOk). Returning false
  /// schedules another attempt after the (growing, bounded) backoff.
  using ResetHandler = std::function<bool(const std::string& entity)>;
  void set_reset_handler(const std::string& entity, ResetHandler h);
  /// Invoked when an entity's ladder reaches kDomainDegrade or kLimpHome,
  /// and again with kNone when the incident ends (recovery).
  using DegradeHandler =
      std::function<void(const std::string& domain, EscalationLevel level)>;
  void set_degrade_handler(DegradeHandler h);
  /// Invoked on every entity status transition.
  using StatusHandler =
      std::function<void(const std::string& entity, EntityStatus status)>;
  void set_status_handler(StatusHandler h);

  /// Arms one periodic supervision task per registered entity.
  void start();
  void stop();
  bool running() const { return running_; }

  // --- observation -----------------------------------------------------------
  EntityStatus status(const std::string& entity) const;
  EscalationLevel escalation(const std::string& entity) const;
  /// Any entity currently escalated to limp-home.
  bool limp_home() const;
  std::size_t expired_count() const;
  /// Time the entity last expired (zero if never).
  SimTime expired_at(const std::string& entity) const;
  /// Last measured detection latency (last good alive indication -> expiry;
  /// zero if the entity never expired).
  SimTime detection_latency(const std::string& entity) const;

  /// Supervision cycles evaluated (the CPU-overhead proxy for E16).
  std::uint64_t cycles() const { return c_cycles_->value(); }
  /// Alive indications received.
  std::uint64_t heartbeats() const { return c_heartbeats_->value(); }
  std::uint64_t resets_attempted() const { return c_reset_attempts_->value(); }
  std::uint64_t resets_succeeded() const { return c_reset_ok_->value(); }
  std::uint64_t expirations() const { return c_expired_->value(); }

  sim::TraceScope& trace() { return trace_; }
  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  struct Entity {
    AliveSupervision alive_cfg;
    EscalationPolicy esc;
    std::optional<DeadlineSupervision> deadline_cfg;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> transitions;
    ResetHandler reset;

    EntityStatus status = EntityStatus::kOk;
    EscalationLevel level = EscalationLevel::kNone;
    std::uint32_t alive_count = 0;    // indications in the current cycle
    std::uint32_t failed_streak = 0;  // consecutive violating cycles
    std::uint32_t violations = 0;     // deadline/logical hits this cycle
    SimTime last_alive_at = SimTime::zero();
    std::optional<SimTime> deadline_started;
    std::optional<std::uint32_t> last_checkpoint;
    SimTime expired_at = SimTime::zero();
    SimTime detection_latency = SimTime::zero();
    std::uint32_t reset_attempts = 0;  // within the current incident
    bool skip_cycle = false;  // don't evaluate the partial post-reset window
    std::unique_ptr<sim::PeriodicTask> cycle_task;
    sim::EventId reset_timer;
  };

  Entity& entity(const std::string& name);
  const Entity& entity(const std::string& name) const;
  void evaluate_cycle(const std::string& name, Entity& e);
  void set_status(const std::string& name, Entity& e, EntityStatus s);
  void expire(const std::string& name, Entity& e);
  void attempt_reset(const std::string& name);
  void escalate(const std::string& name, Entity& e);
  void recover(const std::string& name, Entity& e);
  void wire_telemetry();

  Scheduler& sched_;
  std::string name_;
  bool running_ = false;
  std::map<std::string, Entity> entities_;
  DegradeHandler degrade_;
  StatusHandler status_handler_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_cycles_ = nullptr;
  sim::Counter* c_heartbeats_ = nullptr;
  sim::Counter* c_failed_ = nullptr;
  sim::Counter* c_expired_ = nullptr;
  sim::Counter* c_reset_attempts_ = nullptr;
  sim::Counter* c_reset_ok_ = nullptr;
  sim::Counter* c_escalations_ = nullptr;
  sim::LatencyHistogram* h_detect_ms_ = nullptr;
  sim::TraceId k_ok_ = 0, k_failed_ = 0, k_expired_ = 0, k_reset_attempt_ = 0,
               k_reset_ok_ = 0, k_reset_backoff_ = 0, k_escalate_ = 0,
               k_recovered_ = 0, k_deadline_violation_ = 0,
               k_logical_violation_ = 0;
};

/// Producer-side heartbeat source: a periodic scheduler task that emits an
/// alive indication while the health probe holds. Wire the probe to a fault
/// port (`[&] { return !plan.port("ecu.x").down(); }`) and a `FaultPlan`
/// crash window becomes missed heartbeats with zero supervisor coupling.
/// `on_beat` additionally fires for every emitted indication, so demos and
/// benches can put the heartbeat on a real bus and charge its cost there.
class HeartbeatEmitter {
 public:
  using HealthProbe = std::function<bool()>;
  HeartbeatEmitter(Scheduler& sched, HealthSupervisor& supervisor,
                   std::string entity, SimTime period, HealthProbe probe = {});
  ~HeartbeatEmitter();
  HeartbeatEmitter(const HeartbeatEmitter&) = delete;
  HeartbeatEmitter& operator=(const HeartbeatEmitter&) = delete;

  void set_on_beat(std::function<void()> fn) { on_beat_ = std::move(fn); }
  void start();
  void stop();
  std::uint64_t beats() const { return beats_; }
  std::uint64_t suppressed() const { return suppressed_; }

 private:
  Scheduler& sched_;
  HealthSupervisor& supervisor_;
  std::string entity_;
  SimTime period_;
  HealthProbe probe_;
  std::function<void()> on_beat_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::uint64_t beats_ = 0;
  std::uint64_t suppressed_ = 0;
};

}  // namespace aseck::safety
