#include "safety/supervisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace aseck::safety {

const char* entity_status_name(EntityStatus s) {
  switch (s) {
    case EntityStatus::kOk: return "ok";
    case EntityStatus::kFailed: return "failed";
    case EntityStatus::kExpired: return "expired";
  }
  return "?";
}

const char* escalation_level_name(EscalationLevel l) {
  switch (l) {
    case EscalationLevel::kNone: return "none";
    case EscalationLevel::kLocalReset: return "local_reset";
    case EscalationLevel::kDomainDegrade: return "domain_degrade";
    case EscalationLevel::kLimpHome: return "limp_home";
  }
  return "?";
}

HealthSupervisor::HealthSupervisor(Scheduler& sched, std::string name)
    : sched_(sched),
      name_(std::move(name)),
      trace_("supervisor." + name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

HealthSupervisor::~HealthSupervisor() { stop(); }

void HealthSupervisor::wire_telemetry() {
  const std::string p = "supervisor." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_cycles_, "cycles");
  rewire(c_heartbeats_, "heartbeats");
  rewire(c_failed_, "failed_cycles");
  rewire(c_expired_, "expirations");
  rewire(c_reset_attempts_, "reset_attempts");
  rewire(c_reset_ok_, "resets_ok");
  rewire(c_escalations_, "escalations");
  h_detect_ms_ = &metrics_->histogram(p + "detect_ms", 0.0, 1000.0, 50);
  k_ok_ = trace_.kind("entity_ok");
  k_failed_ = trace_.kind("entity_failed");
  k_expired_ = trace_.kind("entity_expired");
  k_reset_attempt_ = trace_.kind("reset_attempt");
  k_reset_ok_ = trace_.kind("reset_ok");
  k_reset_backoff_ = trace_.kind("reset_backoff");
  k_escalate_ = trace_.kind("escalate");
  k_recovered_ = trace_.kind("entity_recovered");
  k_deadline_violation_ = trace_.kind("deadline_violation");
  k_logical_violation_ = trace_.kind("logical_violation");
}

void HealthSupervisor::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void HealthSupervisor::supervise_alive(const std::string& entity,
                                       AliveSupervision cfg,
                                       EscalationPolicy esc) {
  if (cfg.period.ns == 0) {
    throw std::invalid_argument("HealthSupervisor: zero alive period");
  }
  if (entities_.count(entity)) {
    throw std::invalid_argument("HealthSupervisor: duplicate entity " + entity);
  }
  Entity e;
  e.alive_cfg = cfg;
  e.esc = std::move(esc);
  entities_[entity] = std::move(e);
  metrics_->gauge("supervisor." + name_ + ".status." + entity)
      .set(static_cast<double>(EntityStatus::kOk));
}

HealthSupervisor::Entity& HealthSupervisor::entity(const std::string& name) {
  const auto it = entities_.find(name);
  if (it == entities_.end()) {
    throw std::invalid_argument("HealthSupervisor: unknown entity " + name);
  }
  return it->second;
}

const HealthSupervisor::Entity& HealthSupervisor::entity(
    const std::string& name) const {
  const auto it = entities_.find(name);
  if (it == entities_.end()) {
    throw std::invalid_argument("HealthSupervisor: unknown entity " + name);
  }
  return it->second;
}

void HealthSupervisor::set_deadline(const std::string& name,
                                    DeadlineSupervision cfg) {
  entity(name).deadline_cfg = cfg;
}

void HealthSupervisor::add_logical_transition(const std::string& name,
                                              std::uint32_t from,
                                              std::uint32_t to) {
  entity(name).transitions.emplace_back(from, to);
}

void HealthSupervisor::set_reset_handler(const std::string& name,
                                         ResetHandler h) {
  entity(name).reset = std::move(h);
}

void HealthSupervisor::set_degrade_handler(DegradeHandler h) {
  degrade_ = std::move(h);
}

void HealthSupervisor::set_status_handler(StatusHandler h) {
  status_handler_ = std::move(h);
}

void HealthSupervisor::alive(const std::string& name) {
  Entity& e = entity(name);
  ++e.alive_count;
  e.last_alive_at = sched_.now();
  c_heartbeats_->inc();
}

void HealthSupervisor::deadline_start(const std::string& name) {
  entity(name).deadline_started = sched_.now();
}

void HealthSupervisor::deadline_end(const std::string& name) {
  Entity& e = entity(name);
  if (!e.deadline_cfg) return;
  if (!e.deadline_started) {
    ++e.violations;  // end without start is itself a violation
    ASECK_TRACE(trace_, sched_.now(), k_deadline_violation_, name + " no_start");
    return;
  }
  const SimTime elapsed = sched_.now() - *e.deadline_started;
  e.deadline_started.reset();
  if (elapsed < e.deadline_cfg->min || elapsed > e.deadline_cfg->max) {
    ++e.violations;
    ASECK_TRACE(trace_, sched_.now(), k_deadline_violation_,
                name + " ns=" + std::to_string(elapsed.ns));
  }
}

void HealthSupervisor::checkpoint(const std::string& name, std::uint32_t cp) {
  Entity& e = entity(name);
  if (e.transitions.empty()) return;
  if (e.last_checkpoint) {
    const auto ok = std::any_of(
        e.transitions.begin(), e.transitions.end(),
        [&](const auto& t) { return t.first == *e.last_checkpoint && t.second == cp; });
    if (!ok) {
      ++e.violations;
      ASECK_TRACE(trace_, sched_.now(), k_logical_violation_,
                  name + " " + std::to_string(*e.last_checkpoint) + "->" +
                      std::to_string(cp));
    }
  }
  e.last_checkpoint = cp;
}

void HealthSupervisor::start() {
  if (running_) return;
  running_ = true;
  for (auto& [name, e] : entities_) {
    Entity* ent = &e;  // map nodes are stable
    e.cycle_task = std::make_unique<sim::PeriodicTask>(
        sched_, e.alive_cfg.period,
        [this, nm = name, ent] { evaluate_cycle(nm, *ent); },
        e.alive_cfg.period);
  }
}

void HealthSupervisor::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& [name, e] : entities_) {
    e.cycle_task.reset();
    if (e.reset_timer.valid()) {
      sched_.cancel(e.reset_timer);
      e.reset_timer = {};
    }
  }
}

void HealthSupervisor::set_status(const std::string& name, Entity& e,
                                  EntityStatus s) {
  if (e.status == s) return;
  e.status = s;
  metrics_->gauge("supervisor." + name_ + ".status." + name)
      .set(static_cast<double>(s));
  const sim::TraceId k = s == EntityStatus::kOk       ? k_ok_
                         : s == EntityStatus::kFailed ? k_failed_
                                                      : k_expired_;
  ASECK_TRACE(trace_, sched_.now(), k, name);
  if (status_handler_) status_handler_(name, s);
}

void HealthSupervisor::evaluate_cycle(const std::string& name, Entity& e) {
  c_cycles_->inc();
  // An expired entity is owned by the escalation machinery; its cycle keeps
  // ticking but contributes nothing until a reset re-arms it.
  if (e.status == EntityStatus::kExpired) {
    e.alive_count = 0;
    e.violations = 0;
    return;
  }
  if (e.skip_cycle) {
    e.skip_cycle = false;
    e.alive_count = 0;
    e.violations = 0;
    return;
  }
  const std::uint32_t lo =
      e.alive_cfg.expected > e.alive_cfg.min_margin
          ? e.alive_cfg.expected - e.alive_cfg.min_margin
          : 0;
  const std::uint32_t hi = e.alive_cfg.expected + e.alive_cfg.max_margin;
  const bool alive_ok = e.alive_count >= lo && e.alive_count <= hi;
  const bool ok = alive_ok && e.violations == 0;
  e.alive_count = 0;
  e.violations = 0;
  if (ok) {
    e.failed_streak = 0;
    set_status(name, e, EntityStatus::kOk);
    return;
  }
  c_failed_->inc();
  ++e.failed_streak;
  if (e.failed_streak > e.esc.failed_tolerance) {
    expire(name, e);
  } else {
    set_status(name, e, EntityStatus::kFailed);
  }
}

void HealthSupervisor::expire(const std::string& name, Entity& e) {
  c_expired_->inc();
  e.expired_at = sched_.now();
  // Detection latency: from the last good alive indication (or from start
  // if none ever arrived) to the supervision decision.
  e.detection_latency = sched_.now() - e.last_alive_at;
  h_detect_ms_->record(e.detection_latency.ms());
  set_status(name, e, EntityStatus::kExpired);
  e.level = EscalationLevel::kLocalReset;
  e.reset_attempts = 0;
  ASECK_TRACE(trace_, sched_.now(), k_escalate_, name + " local_reset");
  c_escalations_->inc();
  attempt_reset(name);
}

void HealthSupervisor::attempt_reset(const std::string& name) {
  Entity& e = entity(name);
  e.reset_timer = {};
  if (e.status != EntityStatus::kExpired) return;  // incident already over
  ++e.reset_attempts;
  c_reset_attempts_->inc();
  ASECK_TRACE(trace_, sched_.now(), k_reset_attempt_,
              name + " n=" + std::to_string(e.reset_attempts));
  const bool up = e.reset && e.reset(name);
  if (up) {
    c_reset_ok_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_reset_ok_, name);
    recover(name, e);
    return;
  }
  // Bounded restart-storm backoff; each exhausted round of max_resets
  // attempts climbs one escalation rung.
  if (e.reset_attempts % std::max(1u, e.esc.max_resets) == 0) {
    escalate(name, e);
  }
  const std::uint32_t exp = e.reset_attempts > 0 ? e.reset_attempts - 1 : 0;
  double backoff_s = e.esc.reset_backoff.seconds();
  for (std::uint32_t i = 0; i < exp && backoff_s < e.esc.max_backoff.seconds();
       ++i) {
    backoff_s *= e.esc.backoff_multiplier;
  }
  backoff_s = std::min(backoff_s, e.esc.max_backoff.seconds());
  const SimTime backoff = SimTime::from_seconds_f(backoff_s);
  ASECK_TRACE(trace_, sched_.now(), k_reset_backoff_,
              name + " ns=" + std::to_string(backoff.ns));
  e.reset_timer =
      sched_.schedule_after(backoff, [this, name] { attempt_reset(name); });
}

void HealthSupervisor::escalate(const std::string& name, Entity& e) {
  if (e.esc.domain.empty() || e.level == EscalationLevel::kLimpHome) return;
  e.level = e.level == EscalationLevel::kLocalReset
                ? EscalationLevel::kDomainDegrade
                : EscalationLevel::kLimpHome;
  c_escalations_->inc();
  ASECK_TRACE(trace_, sched_.now(), k_escalate_,
              name + " " + escalation_level_name(e.level));
  if (degrade_) degrade_(e.esc.domain, e.level);
}

void HealthSupervisor::recover(const std::string& name, Entity& e) {
  const EscalationLevel prev = e.level;
  e.level = EscalationLevel::kNone;
  e.failed_streak = 0;
  // The partial supervision window the reset landed in is not evaluated:
  // the fresh component cannot have beaten earlier in it.
  e.skip_cycle = true;
  e.alive_count = 0;
  e.violations = 0;
  e.reset_attempts = 0;
  e.last_alive_at = sched_.now();  // grace: the fresh component gets a full cycle
  e.last_checkpoint.reset();
  e.deadline_started.reset();
  set_status(name, e, EntityStatus::kOk);
  ASECK_TRACE(trace_, sched_.now(), k_recovered_, name);
  if (prev >= EscalationLevel::kDomainDegrade && degrade_ &&
      !e.esc.domain.empty()) {
    degrade_(e.esc.domain, EscalationLevel::kNone);
  }
}

EntityStatus HealthSupervisor::status(const std::string& name) const {
  return entity(name).status;
}

EscalationLevel HealthSupervisor::escalation(const std::string& name) const {
  return entity(name).level;
}

bool HealthSupervisor::limp_home() const {
  for (const auto& [n, e] : entities_) {
    if (e.level == EscalationLevel::kLimpHome) return true;
  }
  return false;
}

std::size_t HealthSupervisor::expired_count() const {
  std::size_t n = 0;
  for (const auto& [name, e] : entities_) {
    if (e.status == EntityStatus::kExpired) ++n;
  }
  return n;
}

SimTime HealthSupervisor::expired_at(const std::string& name) const {
  return entity(name).expired_at;
}

SimTime HealthSupervisor::detection_latency(const std::string& name) const {
  return entity(name).detection_latency;
}

// --- HeartbeatEmitter --------------------------------------------------------

HeartbeatEmitter::HeartbeatEmitter(Scheduler& sched,
                                   HealthSupervisor& supervisor,
                                   std::string entity, SimTime period,
                                   HealthProbe probe)
    : sched_(sched),
      supervisor_(supervisor),
      entity_(std::move(entity)),
      period_(period),
      probe_(std::move(probe)) {}

HeartbeatEmitter::~HeartbeatEmitter() { stop(); }

void HeartbeatEmitter::start() {
  if (task_) return;
  task_ = std::make_unique<sim::PeriodicTask>(
      sched_, period_,
      [this] {
        if (probe_ && !probe_()) {
          ++suppressed_;
          return;
        }
        ++beats_;
        supervisor_.alive(entity_);
        if (on_beat_) on_beat_();
      },
      period_);
}

void HeartbeatEmitter::stop() { task_.reset(); }

}  // namespace aseck::safety
