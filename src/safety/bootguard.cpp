#include "safety/bootguard.hpp"

#include <algorithm>

namespace aseck::safety {

BootGuard::BootGuard(sim::Scheduler& sched, HealthSupervisor& supervisor,
                     ecu::BootChain& chain, std::string entity,
                     util::SimTime check_period)
    : sched_(sched),
      supervisor_(supervisor),
      chain_(chain),
      entity_(std::move(entity)) {
  AliveSupervision alive;
  alive.period = check_period;
  alive.expected = 1;
  alive.min_margin = 0;
  alive.max_margin = 3;  // heartbeat runs at 2x the cycle; allow phase drift
  EscalationPolicy esc;
  esc.failed_tolerance = 0;  // first silent cycle expires the entity
  esc.max_resets = 3;
  supervisor_.supervise_alive(entity_, alive, esc);
  supervisor_.set_reset_handler(entity_, [this](const std::string&) {
    // The watchdog reset IS the reboot: re-run the measured chain. The
    // chain's own degradation ladder (retry -> fallback slot -> recovery
    // image) decides what comes up; any non-hung outcome is "back up".
    ++reboots_;
    const auto rep = chain_.run(sched_.now());
    if (!rep.hung) ++reboots_recovered_;
    return !rep.hung;
  });
  heartbeat_ = std::make_unique<HeartbeatEmitter>(
      sched_, supervisor_, entity_,
      util::SimTime::from_ns(std::max<std::uint64_t>(1, check_period.ns / 2)),
      [this] { return !chain_.hung(); });
}

void BootGuard::start() {
  heartbeat_->start();
  if (!supervisor_.running()) supervisor_.start();
}

void BootGuard::stop() { heartbeat_->stop(); }

}  // namespace aseck::safety
