#include "gateway/redundant.hpp"

namespace aseck::gateway {

RedundantGateway::RedundantGateway(Scheduler& sched, std::string name,
                                   SimTime processing_delay)
    : sched_(sched),
      name_(std::move(name)),
      a_(std::make_unique<SecurityGateway>(sched, name_ + ".a",
                                           processing_delay)),
      b_(std::make_unique<SecurityGateway>(sched, name_ + ".b",
                                           processing_delay)),
      active_(a_.get()),
      standby_(b_.get()),
      trace_("rgw." + name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  standby_->set_forwarding(false);
  wire_telemetry();
}

void RedundantGateway::wire_telemetry() {
  const std::string p = "rgw." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_syncs_, "state_syncs");
  rewire(c_failovers_, "failovers");
  h_detect_ms_ = &metrics_->histogram(p + "detect_ms", 0.0, 1000.0, 50);
  k_sync_ = trace_.kind("state_sync");
  k_failover_ = trace_.kind("failover");
  k_active_down_ = trace_.kind("active_down");
  k_active_up_ = trace_.kind("active_up");
  k_rejoin_ = trace_.kind("standby_rejoin");
}

void RedundantGateway::bind_telemetry(const sim::Telemetry& t) {
  a_->bind_telemetry(t);
  b_->bind_telemetry(t);
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

void RedundantGateway::add_domain(const std::string& domain, ivn::CanBus* bus) {
  a_->add_domain(domain, bus);
  b_->add_domain(domain, bus);
}

void RedundantGateway::add_route(std::uint32_t id, const std::string& from,
                                 const std::string& to, bool safety_critical) {
  a_->add_route(id, from, to, safety_critical);
  b_->add_route(id, from, to, safety_critical);
}

void RedundantGateway::add_rule(FirewallRule rule) {
  a_->add_rule(rule);
  b_->add_rule(std::move(rule));
}

void RedundantGateway::set_rate_limit(const std::string& domain,
                                      std::uint32_t id, RateLimit rl) {
  a_->set_rate_limit(domain, id, rl);
  b_->set_rate_limit(domain, id, rl);
}

void RedundantGateway::set_domain_rate_limit(const std::string& domain,
                                             RateLimit rl) {
  a_->set_domain_rate_limit(domain, rl);
  b_->set_domain_rate_limit(domain, rl);
}

void RedundantGateway::enable_degraded_mode(DegradedModeConfig cfg) {
  a_->enable_degraded_mode(cfg);
  b_->enable_degraded_mode(cfg);
}

void RedundantGateway::enable_bus_fault_watch(const sim::Telemetry& t) {
  a_->enable_bus_fault_watch(t);
  b_->enable_bus_fault_watch(t);
}

void RedundantGateway::quarantine(const std::string& domain, bool on) {
  a_->quarantine(domain, on);
  b_->quarantine(domain, on);
}

void RedundantGateway::start_sync(SimTime period) {
  sync_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, period,
      [this] {
        // A dead active is no state source; replication resumes when it is
        // repaired or after the standby is promoted.
        if (active_->offline()) return;
        standby_->import_state(active_->export_state());
        c_syncs_->inc();
        ASECK_TRACE(trace_, sched_.now(), k_sync_,
                    active_->forwarding() ? "a->b" : "b->a");
      },
      period);
}

void RedundantGateway::stop_sync() { sync_task_.reset(); }

void RedundantGateway::set_active_down(bool down) {
  if (down == active_down_) return;
  if (down) {
    active_down_ = true;
    down_at_ = sched_.now();
    down_shadow_mark_ = standby_->shadow_forwarded();
    active_->set_offline(true);
    ASECK_TRACE(trace_, sched_.now(), k_active_down_, active_->trace().component());
    return;
  }
  active_down_ = false;
  // If a failover promoted the standby meanwhile, the repaired unit is now
  // pointed to by standby_: it rejoins in shadow mode, primed with the
  // current active's replicated state. Otherwise the blip was shorter than
  // detection and the active simply resumes.
  if (!standby_->forwarding() && standby_->offline()) {
    standby_->set_offline(false);
    standby_->import_state(active_->export_state());
    ASECK_TRACE(trace_, sched_.now(), k_rejoin_, standby_->trace().component());
  } else {
    active_->set_offline(false);
    ASECK_TRACE(trace_, sched_.now(), k_active_up_, active_->trace().component());
  }
}

bool RedundantGateway::failover() {
  if (!standby_ || standby_->offline()) return false;
  // Downtime in frames: what the standby's shadow pipeline admitted (and
  // would have forwarded) since the active went down. When failover is
  // invoked without a recorded down mark (manual switchover), downtime is 0.
  if (active_down_) {
    last_frames_lost_ = standby_->shadow_forwarded() - down_shadow_mark_;
    last_detect_latency_ = sched_.now() - down_at_;
  } else {
    last_frames_lost_ = 0;
    last_detect_latency_ = SimTime::zero();
  }
  h_detect_ms_->record(last_detect_latency_.ms());
  active_->set_forwarding(false);
  standby_->set_forwarding(true);
  std::swap(active_, standby_);
  c_failovers_->inc();
  ASECK_TRACE(trace_, sched_.now(), k_failover_,
              "to=" + active_->trace().component() +
                  " frames_lost=" + std::to_string(last_frames_lost_) +
                  " detect_ns=" + std::to_string(last_detect_latency_.ns));
  return true;
}

}  // namespace aseck::gateway
