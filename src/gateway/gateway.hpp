#pragma once
// Central secure gateway — layer 2 of the paper's 4+1 security assurance
// architecture. Bridges in-vehicle network domains (e.g. powertrain,
// chassis, body, infotainment, telematics), enforcing:
//   * a routing table (which IDs cross which domain boundary),
//   * stateful firewall rules (direction, ID ranges, payload constraints),
//   * per-flow token-bucket rate limiting (DoS mitigation), and
//   * domain quarantine (isolating a compromised IVN, Section 7).
//
// Experiment E6 measures containment and the forwarding-latency overhead.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ivn/can.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace.hpp"

namespace aseck::gateway {

using ivn::CanBus;
using ivn::CanFrame;
using sim::Scheduler;
using sim::SimTime;

/// Why a frame was not forwarded.
enum class DropReason {
  kNoRoute,
  kFirewallDeny,
  kRateLimited,
  kQuarantined,
  kPayloadRule,
  kLinkDown,      // source or destination domain link is partitioned
  kDegradedShed,  // non-safety-critical route shed in degraded/limp mode
};

/// Graceful-degradation state of a domain (paper §7: a gateway under attack
/// or fault pressure sheds load instead of failing open or failing silent).
enum class GatewayMode { kNormal, kDegraded, kLimpHome };
const char* gateway_mode_name(GatewayMode m);

/// Health-tick policy for automatic mode transitions. Every `window`, each
/// domain's fault count (reported faults + link-down drops + watched bus
/// errors) is compared against the thresholds; `healthy_windows` consecutive
/// calm windows step the mode back down one level.
struct DegradedModeConfig {
  SimTime window = SimTime::from_ms(500);
  std::uint32_t degrade_threshold = 20;  // faults/window -> kDegraded
  std::uint32_t limp_threshold = 60;     // faults/window -> kLimpHome
  std::uint32_t healthy_windows = 2;
};

/// Firewall rule: matches a frame by source domain, destination domain, and
/// ID range; the first matching rule decides. `max_dlc` optionally bounds
/// the payload size (e.g. diagnostics writes).
struct FirewallRule {
  std::string from_domain = "*";  // "*" = any
  std::string to_domain = "*";    // "*" = any
  std::uint32_t id_min = 0;
  std::uint32_t id_max = 0x1fffffff;
  bool allow = false;
  std::optional<std::size_t> max_dlc;

  bool matches(const std::string& from, const std::string& to,
               const CanFrame& f) const;
};

/// Token bucket for (domain, id) flows.
struct RateLimit {
  double frames_per_sec = 0;  // 0 = unlimited
  double burst = 10;
};

/// Statistics snapshot (registry-backed; see SecurityGateway::stats()).
struct GatewayStats {
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_firewall = 0;
  std::uint64_t dropped_rate = 0;
  std::uint64_t dropped_quarantine = 0;
  std::uint64_t dropped_link_down = 0;
  std::uint64_t dropped_degraded = 0;
  std::uint64_t total_drops() const {
    return dropped_no_route + dropped_firewall + dropped_rate +
           dropped_quarantine + dropped_link_down + dropped_degraded;
  }
};

class SecurityGateway {
 public:
  /// `processing_delay` models firewall/lookup cost per frame.
  SecurityGateway(Scheduler& sched, std::string name,
                  SimTime processing_delay = SimTime::from_us(50));
  ~SecurityGateway();

  SecurityGateway(const SecurityGateway&) = delete;
  SecurityGateway& operator=(const SecurityGateway&) = delete;

  /// Attaches a bus as a named domain.
  void add_domain(const std::string& domain, CanBus* bus);

  /// Adds a route: frames with `id` arriving from `from` are forwarded to
  /// `to` (subject to firewall/rate/quarantine checks). Safety-critical
  /// routes survive degraded/limp-home mode; others are shed.
  void add_route(std::uint32_t id, const std::string& from,
                 const std::string& to, bool safety_critical = false);

  /// Appends a firewall rule (first match wins; default = allow if routed).
  void add_rule(FirewallRule rule);

  /// Sets a rate limit for frames with `id` arriving from `domain`.
  void set_rate_limit(const std::string& domain, std::uint32_t id, RateLimit rl);
  /// Domain-wide rate limit applied to every flow from `domain` without a
  /// per-id limit.
  void set_domain_rate_limit(const std::string& domain, RateLimit rl);

  /// Quarantines / releases a domain.
  void quarantine(const std::string& domain, bool on = true);
  bool quarantined(const std::string& domain) const;

  /// Marks a domain link physically up/down (partition fault). Frames from
  /// or to a down domain are dropped (kLinkDown) and count as domain faults.
  void set_link_up(const std::string& domain, bool up);
  bool link_up(const std::string& domain) const;

  /// Starts the periodic health tick driving per-domain mode transitions.
  void enable_degraded_mode(DegradedModeConfig cfg = {});
  GatewayMode mode(const std::string& domain) const;
  /// Feeds the health counter directly (IDS verdicts, substrate callbacks).
  void report_domain_fault(const std::string& domain, std::uint32_t n = 1);

  /// Subscribes to a shared TraceBus and counts "tx_error"/"bus_off" events
  /// from attached domain buses as domain faults (bus_off weighs 10). Call
  /// after add_domain() and after the buses are bound to the same telemetry.
  void enable_bus_fault_watch(const sim::Telemetry& t);

  // --- hot-standby support (gateway::RedundantGateway) -----------------------
  /// Forwarding on (active, default) or off (hot standby). A passive gateway
  /// runs the full admission pipeline in *shadow* — route lookup, quarantine,
  /// link, mode, firewall, and rate-limit token consumption all happen, so
  /// its dynamic state stays warm for an instant failover — but nothing is
  /// emitted on the destination bus and no drop counters/observers fire;
  /// would-have-forwarded frames land in `shadow_forwarded()` instead.
  void set_forwarding(bool on) { forwarding_ = on; }
  bool forwarding() const { return forwarding_; }
  /// Crash simulation: an offline gateway ignores traffic entirely (no
  /// shadow processing), modeling a dead unit rather than a passive one.
  void set_offline(bool off) { offline_ = off; }
  bool offline() const { return offline_; }
  /// Frames the shadow pipeline would have forwarded while passive.
  std::uint64_t shadow_forwarded() const { return c_shadow_forwarded_->value(); }
  /// Frames that reached the admission pipeline (any role, incl. shadow).
  std::uint64_t frames_seen() const { return c_frames_seen_->value(); }

  /// Replicable dynamic state for active -> standby sync. Static config
  /// (routes, rules, limits) is mirrored at setup time by RedundantGateway;
  /// this covers what mutates at runtime.
  struct SyncState {
    struct DomainState {
      bool quarantined = false;
      bool link_up = true;
      GatewayMode mode = GatewayMode::kNormal;
      std::uint32_t fault_count = 0;
      std::uint32_t calm_windows = 0;
    };
    std::map<std::string, DomainState> domains;
  };
  SyncState export_state() const;
  /// Applies a replicated snapshot (mode gauges updated, no trace events —
  /// replication is not a local mode decision).
  void import_state(const SyncState& s);

  /// Snapshot materialized from the metrics registry (compat accessor).
  GatewayStats stats() const;
  sim::TraceScope& trace() { return trace_; }

  /// Rebinds trace events and counters onto a shared telemetry plane.
  void bind_telemetry(const sim::Telemetry& t);

  /// Observer invoked for each drop (used by the IDS/policy layers).
  using DropObserver =
      std::function<void(const std::string& domain, const CanFrame&, DropReason)>;
  void set_drop_observer(DropObserver obs) { drop_observer_ = std::move(obs); }

  SimTime processing_delay() const { return processing_delay_; }
  void set_processing_delay(SimTime d) { processing_delay_ = d; }

 private:
  class Port;  // CanNode adapter per domain

  struct Flow {
    RateLimit limit;
    double tokens = 0;
    SimTime last = SimTime::zero();
    bool admit(SimTime now);
  };

  struct Domain;

  void on_domain_frame(const std::string& domain, const CanFrame& frame,
                       SimTime at);
  void drop(const std::string& domain, const CanFrame& frame, DropReason r);
  void wire_telemetry();
  void health_tick();
  void set_mode(const std::string& name, Domain& d, GatewayMode m);

  Scheduler& sched_;
  std::string name_;
  SimTime processing_delay_;
  bool forwarding_ = true;
  bool offline_ = false;
  struct Domain {
    CanBus* bus = nullptr;
    std::unique_ptr<Port> port;
    bool quarantined = false;
    std::optional<RateLimit> domain_limit;
    bool link_up = true;
    GatewayMode mode = GatewayMode::kNormal;
    std::uint32_t fault_count = 0;   // faults in the current health window
    std::uint32_t calm_windows = 0;  // consecutive windows under threshold
  };
  std::map<std::string, Domain> domains_;
  struct RouteDest {
    std::string to;
    bool critical = false;
  };
  // id -> (from domain -> list of destination domains)
  std::map<std::uint32_t, std::map<std::string, std::vector<RouteDest>>> routes_;
  std::vector<FirewallRule> rules_;
  std::map<std::string, std::map<std::uint32_t, Flow>> flows_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_forwarded_ = nullptr;
  sim::Counter* c_dropped_no_route_ = nullptr;
  sim::Counter* c_dropped_firewall_ = nullptr;
  sim::Counter* c_dropped_rate_ = nullptr;
  sim::Counter* c_dropped_quarantine_ = nullptr;
  sim::Counter* c_dropped_link_down_ = nullptr;
  sim::Counter* c_dropped_degraded_ = nullptr;
  sim::Counter* c_frames_seen_ = nullptr;
  sim::Counter* c_shadow_forwarded_ = nullptr;
  sim::TraceId k_forward_ = 0, k_drop_ = 0, k_quarantine_ = 0, k_release_ = 0,
               k_mode_normal_ = 0, k_mode_degraded_ = 0, k_mode_limp_ = 0,
               k_link_up_ = 0, k_link_down_ = 0;
  DropObserver drop_observer_;
  DegradedModeConfig degraded_cfg_;
  std::unique_ptr<sim::PeriodicTask> health_task_;
  // Bus-fault watch state: shared bus, live-tap token, and the mapping from
  // interned bus-component ids to domain names.
  std::shared_ptr<sim::TraceBus> watch_bus_;
  std::uint64_t watch_token_ = 0;
  sim::TraceId k_watch_tx_error_ = 0, k_watch_bus_off_ = 0;
  std::map<sim::TraceId, std::string> watch_domains_;
};

}  // namespace aseck::gateway
