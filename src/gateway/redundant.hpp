#pragma once
// Hot-standby redundant gateway pair — removes the single point of failure
// the paper's 4+1 architecture (§7) places at the Secure Gateway. Two
// `SecurityGateway` units attach to the same domain buses: the active unit
// forwards, the standby runs the identical admission pipeline in shadow
// (see SecurityGateway::set_forwarding), so rate-limit tokens, health
// windows, and modes stay warm. A periodic sync task additionally
// replicates the active's dynamic state (quarantine flags, link state,
// degradation modes, health counters) onto the standby, covering state the
// shadow pipeline cannot observe on its own (operator quarantines, direct
// fault reports).
//
// Failover is *policy-free* here: detection belongs to the
// safety::HealthSupervisor (missed gateway heartbeats expire the entity and
// the escalation handler calls `failover()`), and crash injection belongs
// to the sim::FaultPlan (`plan.on("gw.active", kCrash, ...)` calls
// `set_active_down`). The pair itself only measures: switchover downtime is
// reported in frames lost — frames the standby's shadow pipeline would have
// forwarded between the active going down and promotion — plus the
// detection latency, which is exactly the paper's §6 optimization (tight
// heartbeat periods) vs. extensibility (supervision overhead) trade-off
// quantified in bench_e16_supervision.

#include <cstdint>
#include <memory>
#include <string>

#include "gateway/gateway.hpp"

namespace aseck::gateway {

class RedundantGateway {
 public:
  /// Builds the pair `<name>.a` (initially active) and `<name>.b` (standby).
  RedundantGateway(Scheduler& sched, std::string name,
                   SimTime processing_delay = SimTime::from_us(50));

  RedundantGateway(const RedundantGateway&) = delete;
  RedundantGateway& operator=(const RedundantGateway&) = delete;

  SecurityGateway& active() { return *active_; }
  const SecurityGateway& active() const { return *active_; }
  SecurityGateway& standby() { return *standby_; }
  const SecurityGateway& standby() const { return *standby_; }

  // --- mirrored configuration (applied to both units) ------------------------
  void add_domain(const std::string& domain, ivn::CanBus* bus);
  void add_route(std::uint32_t id, const std::string& from,
                 const std::string& to, bool safety_critical = false);
  void add_rule(FirewallRule rule);
  void set_rate_limit(const std::string& domain, std::uint32_t id, RateLimit rl);
  void set_domain_rate_limit(const std::string& domain, RateLimit rl);
  void enable_degraded_mode(DegradedModeConfig cfg = {});
  void enable_bus_fault_watch(const sim::Telemetry& t);
  void quarantine(const std::string& domain, bool on = true);

  /// Starts periodic active -> standby state replication.
  void start_sync(SimTime period);
  void stop_sync();
  std::uint64_t syncs() const { return c_syncs_->value(); }

  // --- fault + supervision wiring --------------------------------------------
  /// Marks the active unit crashed (down=true) or repaired (down=false);
  /// typically driven by a FaultPlan kCrash handler. A repaired unit that
  /// was failed-over rejoins as the new standby in shadow mode, primed with
  /// the current active's state.
  void set_active_down(bool down);
  bool active_down() const { return active_down_; }

  /// Promotes the standby (supervisor escalation handler). Records frames
  /// lost and detection latency for the incident. Returns false if a
  /// failover is already in effect with the old active still down-and-unswapped
  /// state (i.e. nothing to promote).
  bool failover();

  // --- measurements -----------------------------------------------------------
  std::uint64_t failovers() const { return c_failovers_->value(); }
  /// Shadow-would-have-forwarded frames between active-down and promotion of
  /// the most recent failover (the switchover downtime, in frames).
  std::uint64_t last_failover_frames_lost() const { return last_frames_lost_; }
  /// Active-down -> failover() of the most recent incident.
  SimTime last_detection_latency() const { return last_detect_latency_; }

  sim::TraceScope& trace() { return trace_; }
  /// Rebinds both units and the pair's own events onto a shared plane.
  void bind_telemetry(const sim::Telemetry& t);

 private:
  void wire_telemetry();

  Scheduler& sched_;
  std::string name_;
  std::unique_ptr<SecurityGateway> a_;
  std::unique_ptr<SecurityGateway> b_;
  SecurityGateway* active_ = nullptr;
  SecurityGateway* standby_ = nullptr;
  bool active_down_ = false;
  SimTime down_at_ = SimTime::zero();
  std::uint64_t down_shadow_mark_ = 0;  // standby shadow counter at down
  std::uint64_t last_frames_lost_ = 0;
  SimTime last_detect_latency_ = SimTime::zero();
  std::unique_ptr<sim::PeriodicTask> sync_task_;
  sim::TraceScope trace_;
  std::shared_ptr<sim::MetricsRegistry> metrics_;
  sim::Counter* c_syncs_ = nullptr;
  sim::Counter* c_failovers_ = nullptr;
  sim::LatencyHistogram* h_detect_ms_ = nullptr;
  sim::TraceId k_sync_ = 0, k_failover_ = 0, k_active_down_ = 0,
               k_active_up_ = 0, k_rejoin_ = 0;
};

}  // namespace aseck::gateway
