#include "gateway/gateway.hpp"

#include <algorithm>
#include <stdexcept>

namespace aseck::gateway {

const char* gateway_mode_name(GatewayMode m) {
  switch (m) {
    case GatewayMode::kNormal: return "normal";
    case GatewayMode::kDegraded: return "degraded";
    case GatewayMode::kLimpHome: return "limp_home";
  }
  return "?";
}

bool FirewallRule::matches(const std::string& from, const std::string& to,
                           const CanFrame& f) const {
  if (from_domain != "*" && from_domain != from) return false;
  if (to_domain != "*" && to_domain != to) return false;
  return f.id >= id_min && f.id <= id_max;
}

bool SecurityGateway::Flow::admit(SimTime now) {
  if (limit.frames_per_sec <= 0) return true;
  tokens = std::min(limit.burst,
                    tokens + (now - last).seconds() * limit.frames_per_sec);
  last = now;
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return true;
  }
  return false;
}

/// Per-domain CAN attachment: relays received frames into the gateway core.
class SecurityGateway::Port : public ivn::CanNode {
 public:
  Port(SecurityGateway* gw, std::string domain)
      : ivn::CanNode("gw:" + domain), gw_(gw), domain_(std::move(domain)) {}

  void on_frame(const CanFrame& frame, SimTime at) override {
    gw_->on_domain_frame(domain_, frame, at);
  }

 private:
  SecurityGateway* gw_;
  std::string domain_;
};

SecurityGateway::SecurityGateway(Scheduler& sched, std::string name,
                                 SimTime processing_delay)
    : sched_(sched),
      name_(std::move(name)),
      processing_delay_(processing_delay),
      trace_(name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

void SecurityGateway::wire_telemetry() {
  const std::string p = "gateway." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_forwarded_, "forwarded");
  rewire(c_dropped_no_route_, "dropped_no_route");
  rewire(c_dropped_firewall_, "dropped_firewall");
  rewire(c_dropped_rate_, "dropped_rate");
  rewire(c_dropped_quarantine_, "dropped_quarantine");
  rewire(c_dropped_link_down_, "dropped_link_down");
  rewire(c_dropped_degraded_, "dropped_degraded");
  rewire(c_frames_seen_, "frames_seen");
  rewire(c_shadow_forwarded_, "shadow_forwarded");
  k_forward_ = trace_.kind("forward");
  k_drop_ = trace_.kind("drop");
  k_quarantine_ = trace_.kind("quarantine");
  k_release_ = trace_.kind("release");
  k_mode_normal_ = trace_.kind("mode_normal");
  k_mode_degraded_ = trace_.kind("mode_degraded");
  k_mode_limp_ = trace_.kind("mode_limp_home");
  k_link_up_ = trace_.kind("link_up");
  k_link_down_ = trace_.kind("link_down");
  for (auto& [dom, d] : domains_) {
    metrics_->gauge(p + "mode." + dom).set(static_cast<double>(d.mode));
  }
}

void SecurityGateway::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

GatewayStats SecurityGateway::stats() const {
  GatewayStats s;
  s.forwarded = c_forwarded_->value();
  s.dropped_no_route = c_dropped_no_route_->value();
  s.dropped_firewall = c_dropped_firewall_->value();
  s.dropped_rate = c_dropped_rate_->value();
  s.dropped_quarantine = c_dropped_quarantine_->value();
  s.dropped_link_down = c_dropped_link_down_->value();
  s.dropped_degraded = c_dropped_degraded_->value();
  return s;
}

SecurityGateway::~SecurityGateway() {
  if (watch_bus_ && watch_token_) watch_bus_->unsubscribe(watch_token_);
  for (auto& [dom, d] : domains_) {
    if (d.bus && d.port) d.bus->detach(d.port.get());
  }
}

void SecurityGateway::add_domain(const std::string& domain, CanBus* bus) {
  if (domains_.count(domain)) {
    throw std::invalid_argument("SecurityGateway: duplicate domain " + domain);
  }
  Domain d;
  d.bus = bus;
  d.port = std::make_unique<Port>(this, domain);
  bus->attach(d.port.get());
  domains_[domain] = std::move(d);
}

void SecurityGateway::add_route(std::uint32_t id, const std::string& from,
                                const std::string& to, bool safety_critical) {
  if (!domains_.count(from) || !domains_.count(to)) {
    throw std::invalid_argument("SecurityGateway: route references unknown domain");
  }
  routes_[id][from].push_back(RouteDest{to, safety_critical});
}

void SecurityGateway::add_rule(FirewallRule rule) {
  rules_.push_back(std::move(rule));
}

void SecurityGateway::set_rate_limit(const std::string& domain, std::uint32_t id,
                                     RateLimit rl) {
  Flow f;
  f.limit = rl;
  f.tokens = rl.burst;
  f.last = sched_.now();
  flows_[domain][id] = f;
}

void SecurityGateway::set_domain_rate_limit(const std::string& domain,
                                            RateLimit rl) {
  domains_.at(domain).domain_limit = rl;
}

void SecurityGateway::quarantine(const std::string& domain, bool on) {
  domains_.at(domain).quarantined = on;
  ASECK_TRACE(trace_, sched_.now(), on ? k_quarantine_ : k_release_, domain);
}

bool SecurityGateway::quarantined(const std::string& domain) const {
  return domains_.at(domain).quarantined;
}

void SecurityGateway::set_link_up(const std::string& domain, bool up) {
  Domain& d = domains_.at(domain);
  if (d.link_up == up) return;
  d.link_up = up;
  if (!up) ++d.fault_count;  // a partition is itself a fault signal
  ASECK_TRACE(trace_, sched_.now(), up ? k_link_up_ : k_link_down_, domain);
}

bool SecurityGateway::link_up(const std::string& domain) const {
  return domains_.at(domain).link_up;
}

GatewayMode SecurityGateway::mode(const std::string& domain) const {
  return domains_.at(domain).mode;
}

void SecurityGateway::report_domain_fault(const std::string& domain,
                                          std::uint32_t n) {
  domains_.at(domain).fault_count += n;
}

void SecurityGateway::enable_degraded_mode(DegradedModeConfig cfg) {
  if (cfg.window.ns == 0) {
    throw std::invalid_argument("SecurityGateway: zero health window");
  }
  degraded_cfg_ = cfg;
  health_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, cfg.window, [this] { health_tick(); }, cfg.window);
}

void SecurityGateway::set_mode(const std::string& name, Domain& d,
                               GatewayMode m) {
  if (d.mode == m) return;
  d.mode = m;
  const sim::TraceId k = m == GatewayMode::kNormal     ? k_mode_normal_
                         : m == GatewayMode::kDegraded ? k_mode_degraded_
                                                       : k_mode_limp_;
  ASECK_TRACE(trace_, sched_.now(), k, name);
  metrics_->gauge("gateway." + name_ + ".mode." + name)
      .set(static_cast<double>(m));
}

void SecurityGateway::health_tick() {
  for (auto& [dom, d] : domains_) {
    const std::uint32_t n = d.fault_count;
    d.fault_count = 0;
    if (n >= degraded_cfg_.limp_threshold) {
      d.calm_windows = 0;
      set_mode(dom, d, GatewayMode::kLimpHome);
    } else if (n >= degraded_cfg_.degrade_threshold) {
      d.calm_windows = 0;
      // Escalate to degraded; an already-limp domain stays limp until calm.
      if (d.mode == GatewayMode::kNormal) set_mode(dom, d, GatewayMode::kDegraded);
    } else if (d.mode != GatewayMode::kNormal) {
      if (++d.calm_windows >= degraded_cfg_.healthy_windows) {
        d.calm_windows = 0;
        set_mode(dom, d,
                 d.mode == GatewayMode::kLimpHome ? GatewayMode::kDegraded
                                                  : GatewayMode::kNormal);
      }
    }
  }
}

void SecurityGateway::enable_bus_fault_watch(const sim::Telemetry& t) {
  if (watch_bus_ && watch_token_) watch_bus_->unsubscribe(watch_token_);
  watch_bus_ = t.bus;
  watch_domains_.clear();
  for (auto& [dom, d] : domains_) {
    if (d.bus) watch_domains_[t.bus->intern(d.bus->name())] = dom;
  }
  k_watch_tx_error_ = t.bus->intern("tx_error");
  k_watch_bus_off_ = t.bus->intern("bus_off");
  watch_token_ = t.bus->subscribe([this](const sim::TraceEvent& e) {
    if (e.kind != k_watch_tx_error_ && e.kind != k_watch_bus_off_) return;
    const auto it = watch_domains_.find(e.component);
    if (it == watch_domains_.end()) return;
    // Bus-off is a much stronger degradation signal than one TX error.
    domains_.at(it->second).fault_count +=
        e.kind == k_watch_bus_off_ ? 10 : 1;
  });
}

SecurityGateway::SyncState SecurityGateway::export_state() const {
  SyncState s;
  for (const auto& [dom, d] : domains_) {
    SyncState::DomainState ds;
    ds.quarantined = d.quarantined;
    ds.link_up = d.link_up;
    ds.mode = d.mode;
    ds.fault_count = d.fault_count;
    ds.calm_windows = d.calm_windows;
    s.domains[dom] = ds;
  }
  return s;
}

void SecurityGateway::import_state(const SyncState& s) {
  for (const auto& [dom, ds] : s.domains) {
    const auto it = domains_.find(dom);
    if (it == domains_.end()) continue;  // config drift: unknown domain
    Domain& d = it->second;
    d.quarantined = ds.quarantined;
    d.link_up = ds.link_up;
    d.fault_count = ds.fault_count;
    d.calm_windows = ds.calm_windows;
    if (d.mode != ds.mode) {
      d.mode = ds.mode;
      metrics_->gauge("gateway." + name_ + ".mode." + dom)
          .set(static_cast<double>(ds.mode));
    }
  }
}

void SecurityGateway::drop(const std::string& domain, const CanFrame& frame,
                           DropReason r) {
  if (!forwarding_) return;  // shadow pipeline: no drop accounting/observers
  switch (r) {
    case DropReason::kNoRoute: c_dropped_no_route_->inc(); break;
    case DropReason::kFirewallDeny:
    case DropReason::kPayloadRule: c_dropped_firewall_->inc(); break;
    case DropReason::kRateLimited: c_dropped_rate_->inc(); break;
    case DropReason::kQuarantined: c_dropped_quarantine_->inc(); break;
    case DropReason::kLinkDown: c_dropped_link_down_->inc(); break;
    case DropReason::kDegradedShed: c_dropped_degraded_->inc(); break;
  }
  ASECK_TRACE(trace_, sched_.now(), k_drop_,
              domain + " id=" + std::to_string(frame.id));
  if (drop_observer_) drop_observer_(domain, frame, r);
}

void SecurityGateway::on_domain_frame(const std::string& domain,
                                      const CanFrame& frame, SimTime at) {
  (void)at;
  if (offline_) return;  // crashed unit: no processing at all
  c_frames_seen_->inc();
  Domain& src = domains_.at(domain);
  if (src.quarantined) {
    drop(domain, frame, DropReason::kQuarantined);
    return;
  }
  if (!src.link_up) {
    ++src.fault_count;
    drop(domain, frame, DropReason::kLinkDown);
    return;
  }

  const auto rit = routes_.find(frame.id);
  if (rit == routes_.end()) {
    drop(domain, frame, DropReason::kNoRoute);
    return;
  }
  const auto dit = rit->second.find(domain);
  if (dit == rit->second.end()) {
    drop(domain, frame, DropReason::kNoRoute);
    return;
  }

  // Rate limiting: per-id flow if configured, else domain-wide flow.
  auto& domain_flows = flows_[domain];
  auto fit = domain_flows.find(frame.id);
  if (fit == domain_flows.end() && src.domain_limit) {
    Flow f;
    f.limit = *src.domain_limit;
    f.tokens = src.domain_limit->burst;
    f.last = sched_.now();
    fit = domain_flows.emplace(frame.id, f).first;
  }
  if (fit != domain_flows.end() && !fit->second.admit(sched_.now())) {
    drop(domain, frame, DropReason::kRateLimited);
    return;
  }

  for (const RouteDest& rd : dit->second) {
    const std::string& to = rd.to;
    Domain& dst = domains_.at(to);
    if (dst.quarantined) {
      drop(domain, frame, DropReason::kQuarantined);
      continue;
    }
    if (!dst.link_up) {
      ++dst.fault_count;
      drop(domain, frame, DropReason::kLinkDown);
      continue;
    }
    // Graceful degradation: a degraded source domain sheds its non-critical
    // outbound routes; a limp-home domain sheds non-critical routes in both
    // directions. Safety-critical routes always survive.
    if (!rd.critical && (src.mode != GatewayMode::kNormal ||
                         dst.mode == GatewayMode::kLimpHome)) {
      drop(domain, frame, DropReason::kDegradedShed);
      continue;
    }
    // Firewall: first matching rule wins; routed traffic defaults to allow.
    bool allow = true;
    for (const FirewallRule& rule : rules_) {
      if (rule.matches(domain, to, frame)) {
        allow = rule.allow &&
                (!rule.max_dlc || frame.data.size() <= *rule.max_dlc);
        break;
      }
    }
    if (!allow) {
      drop(domain, frame, DropReason::kFirewallDeny);
      continue;
    }
    if (!forwarding_) {
      // Hot standby: the frame passed the whole pipeline (state is warm),
      // but only the active unit may emit on the destination bus.
      c_shadow_forwarded_->inc();
      continue;
    }
    c_forwarded_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_forward_,
                domain + "->" + to + " id=" + std::to_string(frame.id));
    CanFrame copy = frame;
    CanBus* bus = dst.bus;
    ivn::CanNode* port = dst.port.get();
    sched_.schedule_in(processing_delay_, [bus, port, copy = std::move(copy)] {
      bus->send(port, copy);
    });
  }
}

}  // namespace aseck::gateway
