#include "gateway/gateway.hpp"

#include <algorithm>
#include <stdexcept>

namespace aseck::gateway {

bool FirewallRule::matches(const std::string& from, const std::string& to,
                           const CanFrame& f) const {
  if (from_domain != "*" && from_domain != from) return false;
  if (to_domain != "*" && to_domain != to) return false;
  return f.id >= id_min && f.id <= id_max;
}

bool SecurityGateway::Flow::admit(SimTime now) {
  if (limit.frames_per_sec <= 0) return true;
  tokens = std::min(limit.burst,
                    tokens + (now - last).seconds() * limit.frames_per_sec);
  last = now;
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return true;
  }
  return false;
}

/// Per-domain CAN attachment: relays received frames into the gateway core.
class SecurityGateway::Port : public ivn::CanNode {
 public:
  Port(SecurityGateway* gw, std::string domain)
      : ivn::CanNode("gw:" + domain), gw_(gw), domain_(std::move(domain)) {}

  void on_frame(const CanFrame& frame, SimTime at) override {
    gw_->on_domain_frame(domain_, frame, at);
  }

 private:
  SecurityGateway* gw_;
  std::string domain_;
};

SecurityGateway::SecurityGateway(Scheduler& sched, std::string name,
                                 SimTime processing_delay)
    : sched_(sched),
      name_(std::move(name)),
      processing_delay_(processing_delay),
      trace_(name_),
      metrics_(std::make_shared<sim::MetricsRegistry>()) {
  wire_telemetry();
}

void SecurityGateway::wire_telemetry() {
  const std::string p = "gateway." + name_ + ".";
  const auto rewire = [this, &p](sim::Counter*& c, const char* key) {
    sim::Counter& nc = metrics_->counter(p + key);
    if (c && c != &nc) nc.inc(c->value());
    c = &nc;
  };
  rewire(c_forwarded_, "forwarded");
  rewire(c_dropped_no_route_, "dropped_no_route");
  rewire(c_dropped_firewall_, "dropped_firewall");
  rewire(c_dropped_rate_, "dropped_rate");
  rewire(c_dropped_quarantine_, "dropped_quarantine");
  k_forward_ = trace_.kind("forward");
  k_drop_ = trace_.kind("drop");
  k_quarantine_ = trace_.kind("quarantine");
  k_release_ = trace_.kind("release");
}

void SecurityGateway::bind_telemetry(const sim::Telemetry& t) {
  trace_.bind(t.bus);
  const auto old = metrics_;  // keep old counters alive across the rewire
  metrics_ = t.metrics;
  wire_telemetry();
}

GatewayStats SecurityGateway::stats() const {
  GatewayStats s;
  s.forwarded = c_forwarded_->value();
  s.dropped_no_route = c_dropped_no_route_->value();
  s.dropped_firewall = c_dropped_firewall_->value();
  s.dropped_rate = c_dropped_rate_->value();
  s.dropped_quarantine = c_dropped_quarantine_->value();
  return s;
}

SecurityGateway::~SecurityGateway() {
  for (auto& [dom, d] : domains_) {
    if (d.bus && d.port) d.bus->detach(d.port.get());
  }
}

void SecurityGateway::add_domain(const std::string& domain, CanBus* bus) {
  if (domains_.count(domain)) {
    throw std::invalid_argument("SecurityGateway: duplicate domain " + domain);
  }
  Domain d;
  d.bus = bus;
  d.port = std::make_unique<Port>(this, domain);
  bus->attach(d.port.get());
  domains_[domain] = std::move(d);
}

void SecurityGateway::add_route(std::uint32_t id, const std::string& from,
                                const std::string& to) {
  if (!domains_.count(from) || !domains_.count(to)) {
    throw std::invalid_argument("SecurityGateway: route references unknown domain");
  }
  routes_[id][from].push_back(to);
}

void SecurityGateway::add_rule(FirewallRule rule) {
  rules_.push_back(std::move(rule));
}

void SecurityGateway::set_rate_limit(const std::string& domain, std::uint32_t id,
                                     RateLimit rl) {
  Flow f;
  f.limit = rl;
  f.tokens = rl.burst;
  f.last = sched_.now();
  flows_[domain][id] = f;
}

void SecurityGateway::set_domain_rate_limit(const std::string& domain,
                                            RateLimit rl) {
  domains_.at(domain).domain_limit = rl;
}

void SecurityGateway::quarantine(const std::string& domain, bool on) {
  domains_.at(domain).quarantined = on;
  ASECK_TRACE(trace_, sched_.now(), on ? k_quarantine_ : k_release_, domain);
}

bool SecurityGateway::quarantined(const std::string& domain) const {
  return domains_.at(domain).quarantined;
}

void SecurityGateway::drop(const std::string& domain, const CanFrame& frame,
                           DropReason r) {
  switch (r) {
    case DropReason::kNoRoute: c_dropped_no_route_->inc(); break;
    case DropReason::kFirewallDeny:
    case DropReason::kPayloadRule: c_dropped_firewall_->inc(); break;
    case DropReason::kRateLimited: c_dropped_rate_->inc(); break;
    case DropReason::kQuarantined: c_dropped_quarantine_->inc(); break;
  }
  ASECK_TRACE(trace_, sched_.now(), k_drop_,
              domain + " id=" + std::to_string(frame.id));
  if (drop_observer_) drop_observer_(domain, frame, r);
}

void SecurityGateway::on_domain_frame(const std::string& domain,
                                      const CanFrame& frame, SimTime at) {
  (void)at;
  Domain& src = domains_.at(domain);
  if (src.quarantined) {
    drop(domain, frame, DropReason::kQuarantined);
    return;
  }

  const auto rit = routes_.find(frame.id);
  if (rit == routes_.end()) {
    drop(domain, frame, DropReason::kNoRoute);
    return;
  }
  const auto dit = rit->second.find(domain);
  if (dit == rit->second.end()) {
    drop(domain, frame, DropReason::kNoRoute);
    return;
  }

  // Rate limiting: per-id flow if configured, else domain-wide flow.
  auto& domain_flows = flows_[domain];
  auto fit = domain_flows.find(frame.id);
  if (fit == domain_flows.end() && src.domain_limit) {
    Flow f;
    f.limit = *src.domain_limit;
    f.tokens = src.domain_limit->burst;
    f.last = sched_.now();
    fit = domain_flows.emplace(frame.id, f).first;
  }
  if (fit != domain_flows.end() && !fit->second.admit(sched_.now())) {
    drop(domain, frame, DropReason::kRateLimited);
    return;
  }

  for (const std::string& to : dit->second) {
    Domain& dst = domains_.at(to);
    if (dst.quarantined) {
      drop(domain, frame, DropReason::kQuarantined);
      continue;
    }
    // Firewall: first matching rule wins; routed traffic defaults to allow.
    bool allow = true;
    for (const FirewallRule& rule : rules_) {
      if (rule.matches(domain, to, frame)) {
        allow = rule.allow &&
                (!rule.max_dlc || frame.data.size() <= *rule.max_dlc);
        break;
      }
    }
    if (!allow) {
      drop(domain, frame, DropReason::kFirewallDeny);
      continue;
    }
    c_forwarded_->inc();
    ASECK_TRACE(trace_, sched_.now(), k_forward_,
                domain + "->" + to + " id=" + std::to_string(frame.id));
    CanFrame copy = frame;
    CanBus* bus = dst.bus;
    ivn::CanNode* port = dst.port.get();
    sched_.schedule_in(processing_delay_, [bus, port, copy = std::move(copy)] {
      bus->send(port, copy);
    });
  }
}

}  // namespace aseck::gateway
