#pragma once
// City-scale V2X metro simulation on the sharded world (E19).
//
// `MetroWorld` scales the V2X workload of net.hpp to 100k+ vehicles by
// running on `sim::ShardedWorld`: vehicles live in the
// shard that owns their position, BSM broadcast and reception happen
// shard-locally through the shard-cell geometry (cell edge >= radio
// range), and two kinds of cross-shard traffic ride the epoch batches:
//
//  * BSM spill — a transmission whose range circle overlaps an adjacent
//    cell posts one message per overlapped neighbor; the receiving shard
//    scans its own vehicles next epoch (reception is delayed by up to one
//    epoch across a cell boundary — the conservative-sync lookahead).
//  * Migration — a vehicle that crosses a cell boundary is removed from
//    its shard on its transmit tick and arrives in the destination shard's
//    vehicle list at the epoch boundary (it misses exactly one of its own
//    BSM ticks in transit).
//
// Pseudonym churn (the Yoshizawa et al. workload): each vehicle rotates
// its temp id on a fixed period with per-vehicle phase; new ids derive
// from (vehicle id, rotation count) alone, so rotation is stable across
// shard layouts and thread counts. Channel loss draws from the *receiving*
// shard's RNG stream in scan order — deterministic for any thread count.
//
// Crypto comes in two modes. With `real_crypto` off (the default), crypto
// cost is pure accounting: E17's measured per-verify latency
// (`verify_cost_us`) prices the reception counts after the fact. With
// `real_crypto` on, every reception runs genuine ECDSA-P256 through the
// shard's batch verify pipeline (E22): each vehicle signs one beacon per
// pseudonym rotation over (id, rotations, temp_id) with a key derived
// deterministically from (id, rotations); receivers verify each (sender,
// rotation) beacon once — an `admitted` LRU dedups repeat receptions, and
// misses accumulate into the shard's `VerifyEngine` RLC batch. Keys,
// signatures, and flush points are all pure functions of the workload, so
// the digest stays bit-identical across thread counts.
//
// Everything observable — per-shard metrics, merged totals, and the FNV
// state hash over final vehicle states — is bit-identical between a
// 1-thread and an N-thread run of the same seed (`digest_json`, diffed
// byte-for-byte in CI).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/ecdsa.hpp"
#include "crypto/verify_engine.hpp"
#include "sim/sharded.hpp"
#include "util/lru.hpp"

namespace aseck::v2x {

struct MetroConfig {
  std::size_t vehicles = 100000;
  double width_m = 20000.0;
  double height_m = 20000.0;
  /// Shard cell edge; must be >= range_m so spill only reaches the 8
  /// adjacent cells.
  double cell_m = 500.0;
  double range_m = 300.0;
  /// Per-delivery channel loss probability (receiving shard's RNG).
  double loss_prob = 0.02;
  util::SimTime bsm_period = util::SimTime::from_ms(100);
  /// Transmit phases within a BSM period (spreads events in sim time).
  unsigned slots = 5;
  util::SimTime epoch = util::SimTime::from_ms(100);
  util::SimTime pseudonym_period = util::SimTime::from_s(5);
  double min_speed_mps = 3.0;
  double max_speed_mps = 25.0;
  unsigned threads = 1;
  std::uint64_t seed = 42;
  /// Modeled wire size of a signed BSM (payload + 1609.2 header + implicit
  /// cert + ECDSA signature) for bytes-per-vehicle accounting.
  std::size_t bsm_wire_bytes = 246;
  /// Modeled HSM verify cost per received BSM (E17-calibrated). Used for
  /// utilization accounting only, and only when `real_crypto` is false.
  double verify_cost_us = 350.0;
  /// Run genuine ECDSA-P256 on the receive path: per-(vehicle, rotation)
  /// beacon signatures, shard-local admitted-cache dedup, and the E22 RLC
  /// batch kernel for the misses.
  bool real_crypto = false;
  /// Target RLC batch per shard; pending checks flush when this many
  /// accumulate (and at every tick / end of run).
  std::size_t crypto_batch = 64;
  /// Per-shard capacity of the admitted (sender id, rotation) cache and the
  /// derived-public-key cache.
  std::size_t crypto_cache_capacity = 4096;
};

/// One simulated vehicle. POD by design: it migrates between shards inside
/// a cross-shard message's inline payload.
struct CityVehicle {
  std::uint64_t id = 0;
  double x = 0, y = 0;    // position at time t0
  double vx = 0, vy = 0;  // straight segments, wall bounce on tick
  util::SimTime t0;
  std::uint32_t temp_id = 0;
  std::uint32_t rotations = 0;
  util::SimTime next_rotation;
  /// Real-crypto mode: signature over the rotation beacon (id, rotations,
  /// temp_id), produced lazily on the first transmit after each rotation.
  crypto::EcdsaSignature beacon_sig;
  std::uint8_t beacon_signed = 0;
};

class MetroWorld {
 public:
  explicit MetroWorld(MetroConfig cfg);
  ~MetroWorld();

  /// Advances the whole metro to sim time `until` (epoch barriers inside).
  void run_until(util::SimTime until);

  sim::ShardedWorld& world() { return *world_; }
  const MetroConfig& config() const { return cfg_; }

  struct Totals {
    std::uint64_t bsm_tx = 0;
    std::uint64_t rx = 0;        // delivered receptions (incl. cross)
    std::uint64_t rx_cross = 0;  // receptions via cross-shard spill
    std::uint64_t lost = 0;      // channel-loss suppressions
    std::uint64_t migrations = 0;
    std::uint64_t rotations = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t cross_msgs = 0;  // epoch-batch messages handled
    // Real-crypto mode only (zero otherwise).
    std::uint64_t beacon_signs = 0;    // one per (vehicle, rotation) that tx'd
    std::uint64_t admit_hits = 0;      // receptions deduped by admitted cache
    std::uint64_t verify_enqueued = 0; // receptions that queued a real verify
    std::uint64_t verify_fail = 0;     // must stay 0 (honest senders only)
  };
  /// Deterministic merged totals (ascending shard id).
  Totals totals() const;

  /// FNV-1a over every shard's vehicle list in canonical order — a cheap
  /// whole-state fingerprint for determinism diffs.
  std::uint64_t state_hash() const;

  /// Canonical JSON digest of config (minus threads), totals, state hash,
  /// and the merged metrics registry. Byte-identical across thread counts
  /// for a fixed seed; contains no wall-clock quantities.
  std::string digest_json() const;

  /// Model-state memory per vehicle in bytes (vehicle records + epoch
  /// mailboxes; excludes allocator overhead).
  double bytes_per_vehicle() const;

  /// Derives the rotation-r temp id of vehicle `id` (pure function).
  static std::uint32_t temp_id_for(std::uint64_t id, std::uint32_t rotation);
  /// Deterministic per-(vehicle, rotation) signing key — the simulation's
  /// stand-in for pseudonym certificate provisioning: any party can derive
  /// the public half, so receivers skip certificate transport entirely.
  static crypto::EcdsaPrivateKey beacon_key(std::uint64_t id,
                                            std::uint32_t rotation);
  /// SHA-256 of the rotation beacon (id, rotations, temp_id) — what
  /// `CityVehicle::beacon_sig` signs.
  static crypto::Digest beacon_digest(std::uint64_t id, std::uint32_t rotation,
                                      std::uint32_t temp_id);

 private:
  struct ShardCrypto {
    crypto::VerifyEngine engine;
    /// Derived public keys, keyed (id << 32) | rotation.
    util::LruCache<std::uint64_t, crypto::EcdsaPublicKey> pubs;
    /// (sender, rotation) beacons already verified by this shard.
    util::LruCache<std::uint64_t, char> admitted;
    struct PendingItem {
      std::uint64_t key;  // (id << 32) | rotation
      crypto::EcdsaPublicKey pub;
      crypto::Digest digest;
      crypto::EcdsaSignature sig;
    };
    std::vector<PendingItem> pending;
    sim::Counter* signs = nullptr;
    sim::Counter* admit_hits = nullptr;
    sim::Counter* enqueued = nullptr;
    sim::Counter* verified_ok = nullptr;
    sim::Counter* verified_fail = nullptr;
  };

  struct ShardLocal {
    std::vector<CityVehicle> vehicles;
    sim::Counter* bsm_tx = nullptr;
    sim::Counter* rx = nullptr;
    sim::Counter* rx_cross = nullptr;
    sim::Counter* lost = nullptr;
    sim::Counter* migrations = nullptr;
    sim::Counter* rotations = nullptr;
    sim::Counter* bytes_tx = nullptr;
    std::uint64_t tick = 0;
    std::unique_ptr<ShardCrypto> crypto;  // real_crypto mode only
  };

  void tick(std::uint32_t shard_index);
  void send_bsm(sim::Shard& shard, ShardLocal& local, const CityVehicle& v,
                util::SimTime now);
  void receive_scan(sim::Shard& shard, ShardLocal& local, double sx, double sy,
                    std::uint64_t sender_id, bool cross,
                    std::uint32_t sender_rotation, std::uint32_t sender_temp_id,
                    const crypto::EcdsaSignature& sender_sig);
  /// Runs the accumulated RLC batch; admits what verifies.
  void flush_crypto(ShardLocal& local);

  MetroConfig cfg_;
  std::unique_ptr<sim::ShardedWorld> world_;
  std::vector<ShardLocal> locals_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> tick_tasks_;
};

}  // namespace aseck::v2x
