#include "v2x/cert.hpp"

#include "crypto/sha256.hpp"

namespace aseck::v2x {

std::string cert_id_hex(const CertId& id) {
  return util::to_hex(util::BytesView(id.data(), id.size()));
}

util::Bytes Certificate::tbs_bytes() const {
  util::Bytes out;
  out.insert(out.end(), subject.begin(), subject.end());
  out.push_back(0);
  out.insert(out.end(), issuer_id.begin(), issuer_id.end());
  util::append_be(out, valid_from.ns, 8);
  util::append_be(out, valid_until.ns, 8);
  for (Psid p : app_permissions) {
    util::append_be(out, static_cast<std::uint32_t>(p), 4);
  }
  out.push_back(is_ca ? 1 : 0);
  const util::Bytes key = verify_key.to_bytes();
  out.insert(out.end(), key.begin(), key.end());
  return out;
}

CertId Certificate::id() const {
  const crypto::Digest d = crypto::sha256(tbs_bytes());
  CertId out;
  std::copy(d.begin(), d.begin() + 8, out.begin());
  return out;
}

namespace {
/// One backend HSM per CA, with the signing key behind a handle. The DRBG
/// draw order matches the pre-service code (one generate per CA), so seeded
/// hierarchies keep their exact key material across the migration.
struct CaHsm {
  std::shared_ptr<crypto::CryptoService> svc;
  crypto::PartitionId part = 0;
  crypto::KeyHandle key;
};
CaHsm make_ca_hsm(crypto::Drbg& rng, const std::string& name) {
  CaHsm h;
  h.svc = std::make_shared<crypto::CryptoService>(name + "-hsm");
  h.part = h.svc->register_partition("ca");
  crypto::KeyPolicy policy;
  policy.usage = crypto::kUsageSign;  // the CA key never leaves the service
  h.key = h.svc->generate_ecdsa(h.part, rng, policy);
  return h;
}
}  // namespace

crypto::EcdsaSignature CertificateAuthority::sign_tbs(
    util::BytesView tbs) const {
  crypto::EcdsaSignature sig;
  hsm_->sign(part_, key_, tbs, &sig);
  return sig;
}

CertificateAuthority CertificateAuthority::make_root(crypto::Drbg& rng,
                                                     std::string name,
                                                     SimTime valid_until) {
  CaHsm h = make_ca_hsm(rng, name);
  Certificate cert;
  cert.subject = std::move(name);
  cert.issuer_id = {};  // self-signed
  cert.valid_from = SimTime::zero();
  cert.valid_until = valid_until;
  cert.app_permissions = {Psid::kBsm, Psid::kIntersection, Psid::kRoadsideAlert,
                          Psid::kMisbehaviorReport, Psid::kOtaDistribution};
  cert.is_ca = true;
  h.svc->export_public(h.key, &cert.verify_key);
  CertificateAuthority ca(std::move(h.svc), h.part, h.key, std::move(cert));
  ca.cert_.signature = ca.sign_tbs(ca.cert_.tbs_bytes());
  return ca;
}

CertificateAuthority CertificateAuthority::make_sub(
    crypto::Drbg& rng, std::string name, const CertificateAuthority& parent,
    SimTime valid_until) {
  CaHsm h = make_ca_hsm(rng, name);
  crypto::EcdsaPublicKey pub;
  h.svc->export_public(h.key, &pub);
  Certificate cert = parent.issue(name, pub,
                                  parent.certificate().app_permissions,
                                  SimTime::zero(), valid_until, /*is_ca=*/true);
  return CertificateAuthority(std::move(h.svc), h.part, h.key, std::move(cert));
}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const crypto::EcdsaPublicKey& key,
                                        std::set<Psid> psids, SimTime from,
                                        SimTime until, bool is_ca) const {
  Certificate cert;
  cert.subject = subject;
  cert.issuer_id = cert_.id();
  cert.valid_from = from;
  cert.valid_until = until;
  cert.app_permissions = std::move(psids);
  cert.is_ca = is_ca;
  cert.verify_key = key;
  cert.signature = sign_tbs(cert.tbs_bytes());
  return cert;
}

CertificateAuthority::PseudonymBatch CertificateAuthority::issue_pseudonyms(
    crypto::Drbg& rng, std::size_t n, SimTime from, SimTime lifetime) const {
  PseudonymBatch batch;
  batch.certs.reserve(n);
  batch.keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto key = crypto::EcdsaPrivateKey::generate(rng);
    const SimTime start = from + lifetime * i;
    // Pseudonyms carry no linkable subject; diagnostic name is the index.
    batch.certs.push_back(issue("pseudo", key.public_key(), {Psid::kBsm}, start,
                                start + lifetime, false));
    batch.keys.push_back(std::move(key));
  }
  return batch;
}

const Certificate* TrustStore::find_issuer(const CertId& id) const {
  for (const auto& c : roots_) {
    if (c.id() == id) return &c;
  }
  for (const auto& c : intermediates_) {
    if (c.id() == id) return &c;
  }
  return nullptr;
}

TrustStore::Result TrustStore::validate(const Certificate& cert, SimTime t,
                                        Psid psid) const {
  if (!cert.valid_at(t)) return Result::kExpired;
  if (!cert.permits(psid)) return Result::kPermissionDenied;
  if (crl_ && crl_->is_revoked(cert.id())) return Result::kRevoked;

  // Walk the chain up to a trusted root (bounded depth). Time/revocation
  // checks always run; the expensive signature verifications are cached per
  // certificate id.
  const Certificate* current = &cert;
  for (int depth = 0; depth < 4; ++depth) {
    // Self-signed: must literally be one of our roots.
    const bool self_signed = current->issuer_id == CertId{};
    if (self_signed) {
      for (const auto& r : roots_) {
        if (r.id() == current->id()) return Result::kOk;
      }
      return Result::kUnknownIssuer;
    }
    const Certificate* issuer = find_issuer(current->issuer_id);
    if (!issuer) return Result::kUnknownIssuer;
    if (!issuer->is_ca) return Result::kNotCa;
    if (!issuer->valid_at(t)) return Result::kExpired;
    if (crl_ && crl_->is_revoked(issuer->id())) return Result::kRevoked;
    const CertId cid = current->id();
    Result sig_result;
    if (const Result* cached = chain_cache_.find(cid)) {
      sig_result = *cached;
    } else {
      const util::Bytes tbs = current->tbs_bytes();
      const bool ok = engine_
                          ? engine_->verify(issuer->verify_key, tbs,
                                            current->signature)
                          : crypto::ecdsa_verify(issuer->verify_key, tbs,
                                                 current->signature);
      sig_result = ok ? Result::kOk : Result::kBadSignature;
      chain_cache_.put(cid, sig_result);
    }
    if (sig_result != Result::kOk) return sig_result;
    // Issuer found in the store; if it is a root we are done.
    for (const auto& r : roots_) {
      if (r.id() == issuer->id()) return Result::kOk;
    }
    current = issuer;
  }
  return Result::kUnknownIssuer;
}

const char* TrustStore::result_name(Result r) {
  switch (r) {
    case Result::kOk: return "ok";
    case Result::kExpired: return "expired";
    case Result::kRevoked: return "revoked";
    case Result::kBadSignature: return "bad_signature";
    case Result::kUnknownIssuer: return "unknown_issuer";
    case Result::kPermissionDenied: return "permission_denied";
    case Result::kNotCa: return "not_ca";
  }
  return "?";
}

}  // namespace aseck::v2x
