#pragma once
// Decentralized congestion control (ETSI DCC-style) for the V2X channel —
// the paper's §5 "communication patterns govern trade-offs between
// security, performance, and network bandwidth" made concrete: under
// channel load, vehicles back off their beacon rate through a reactive
// state machine, trading situational-awareness freshness for channel
// availability. Security interaction: a jammer or beacon-flooding attacker
// drives everyone into the restrictive state (a soft DoS that never breaks
// a single signature).

#include <cstdint>

#include "util/time.hpp"

namespace aseck::v2x {

/// Reactive DCC states with target beacon intervals.
enum class DccState { kRelaxed, kActive1, kActive2, kRestrictive };
const char* dcc_state_name(DccState s);

/// CBR thresholds separating the DCC states.
struct DccThresholds {
  double relaxed_below = 0.30;  // CBR below this -> relaxed
  double active1_below = 0.40;
  double active2_below = 0.50;  // above -> restrictive
};

/// Channel-busy-ratio (CBR) driven controller.
class DccController {
 public:
  using Thresholds = DccThresholds;
  explicit DccController(Thresholds th = {}) : th_(th) {}

  /// Feeds a CBR measurement (0..1); returns the new state. Transitions up
  /// (more restrictive) are immediate; transitions down require the lower
  /// CBR to persist for `down_dwell` (ramp-down hysteresis).
  DccState update(double cbr, util::SimTime now);

  DccState state() const { return state_; }
  /// Beacon interval mandated by the current state.
  util::SimTime beacon_interval() const;
  std::uint32_t transitions() const { return transitions_; }

  util::SimTime down_dwell = util::SimTime::from_s(1);

 private:
  static int rank(DccState s) { return static_cast<int>(s); }
  DccState target_for(double cbr) const;

  Thresholds th_;
  DccState state_ = DccState::kRelaxed;
  util::SimTime below_since_ = util::SimTime::zero();
  bool tracking_down_ = false;
  std::uint32_t transitions_ = 0;
};

/// Sliding-window CBR estimator fed with per-message airtime.
class CbrEstimator {
 public:
  /// `window`: measurement period (ETSI uses 100 ms).
  explicit CbrEstimator(util::SimTime window = util::SimTime::from_ms(100))
      : window_(window) {}

  /// Records a transmission overheard on-channel at `now` lasting `airtime`.
  void on_air(util::SimTime now, util::SimTime airtime);
  /// CBR for the window ending at `now`.
  double cbr(util::SimTime now);

 private:
  util::SimTime window_;
  util::SimTime window_start_ = util::SimTime::zero();
  util::SimTime busy_in_window_ = util::SimTime::zero();
  double last_cbr_ = 0.0;
};

}  // namespace aseck::v2x
