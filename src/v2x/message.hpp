#pragma once
// V2X signed messages (1609.2 SPDU-style) and the Basic Safety Message.

#include <optional>

#include "v2x/cert.hpp"

namespace aseck::v2x {

/// 2D position in meters (local ENU frame; adequate for intersection-scale
/// scenarios).
struct Position {
  double x = 0, y = 0;
  double distance_to(const Position& o) const;
};

/// SAE J2735-style Basic Safety Message (core fields).
struct Bsm {
  std::uint32_t temp_id = 0;   // pseudonym-scoped temporary id
  Position pos;
  double speed_mps = 0;
  double heading_rad = 0;
  SimTime generated = SimTime::zero();

  util::Bytes serialize() const;
  static std::optional<Bsm> parse(util::BytesView b);
};

/// Signed Protocol Data Unit: payload + PSID + time + signer cert + ECDSA
/// signature over (psid || generation_time || payload || cert_id).
struct Spdu {
  Psid psid = Psid::kBsm;
  SimTime generation_time = SimTime::zero();
  util::Bytes payload;
  Certificate signer;             // certificate included (1609.2 "certificate"
                                  // signer-identifier option)
  crypto::EcdsaSignature signature;

  util::Bytes signed_portion() const;

  static Spdu sign(Psid psid, SimTime at, util::Bytes payload,
                   const Certificate& signer_cert,
                   const crypto::EcdsaPrivateKey& key);
};

/// Verification policy knobs.
struct VerifyPolicy {
  SimTime max_age = SimTime::from_ms(500);     // freshness window
  double max_relevance_m = 1000.0;             // geo relevance radius
};

enum class VerifyStatus {
  kOk,
  kStale,
  kCertInvalid,
  kBadSignature,
  kIrrelevant,
};
const char* verify_status_name(VerifyStatus s);

/// Full receive-side verification: cert chain, signature, freshness,
/// relevance (when both positions supplied). When `engine` is supplied the
/// payload signature check runs through it (verify-result cache + shared
/// crypto.verify.* metrics); the chain check uses whatever engine the
/// TrustStore was bound to.
VerifyStatus verify_spdu(const Spdu& msg, const TrustStore& trust, SimTime now,
                         const VerifyPolicy& policy,
                         const Position* receiver_pos = nullptr,
                         const Position* claimed_pos = nullptr,
                         crypto::VerifyEngine* engine = nullptr);

/// The cheap synchronous subset of verify_spdu — freshness, cert chain,
/// relevance — with the payload signature check left out. Opportunistic
/// admission runs this before provisionally accepting a message and defers
/// only the signature to the batch pipeline. Note the status difference vs
/// the full check: a message failing BOTH signature and relevance reports
/// kIrrelevant here (rejected before the deferred signature ever runs).
VerifyStatus verify_spdu_presig(const Spdu& msg, const TrustStore& trust,
                                SimTime now, const VerifyPolicy& policy,
                                const Position* receiver_pos = nullptr,
                                const Position* claimed_pos = nullptr);

}  // namespace aseck::v2x
